#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace marsit {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(MARSIT_CHECK(1 + 1 == 2) << "never evaluated");
}

TEST(CheckTest, FailingCheckThrowsWithContext) {
  try {
    MARSIT_CHECK(2 + 2 == 5) << "math is " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("math is 42"), std::string::npos);
    EXPECT_NE(what.find("util_misc_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, MessageIsOptional) {
  EXPECT_THROW(MARSIT_CHECK(false), CheckError);
}

TEST(RunningStatsTest, EmptyStats) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(PercentileTest, Median) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(PercentileTest, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 1.0), 5.0);
}

TEST(PercentileTest, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), CheckError);
  EXPECT_THROW(percentile({1.0}, 1.5), CheckError);
}

TEST(BinomialZTest, ExactExpectationGivesZero) {
  EXPECT_DOUBLE_EQ(binomial_z_score(500, 1000, 0.5), 0.0);
}

TEST(BinomialZTest, KnownDeviation) {
  // 600/1000 at p=0.5: z = 100 / sqrt(250) ≈ 6.32.
  EXPECT_NEAR(binomial_z_score(600, 1000, 0.5), 6.3245, 1e-3);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(TextTableTest, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
}

TEST(TextTableTest, CsvQuotesSpecialCharacters) {
  TextTable table({"k"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  std::ostringstream out;
  table.print_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(FormatTest, FixedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(FormatTest, Scientific) {
  EXPECT_EQ(format_scientific(38041538408549000937472.0, 1), "3.8e+22");
  EXPECT_EQ(format_scientific(0.00125), "1.25e-03");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024 * 1024), "3.50 GB");
}

TEST(FormatTest, Durations) {
  EXPECT_EQ(format_duration(0.5e-3), "500.0 us");
  EXPECT_EQ(format_duration(0.25), "250.0 ms");
  EXPECT_EQ(format_duration(42.0), "42.00 s");
  EXPECT_EQ(format_duration(300.0), "5.00 min");
}

TEST(LoggingTest, LevelFiltersAreHonored) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold records must not evaluate their stream arguments.
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return "x";
  };
  MARSIT_LOG(kDebug) << touch();
  EXPECT_FALSE(evaluated);
  set_log_level(before);
}

}  // namespace
}  // namespace marsit
