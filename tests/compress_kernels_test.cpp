// Bit-exactness property tests for the word-parallel kernels
// (compress/kernels.hpp) against their *_scalar references, across sizes
// that exercise empty, sub-word, word-aligned and ragged-tail extents —
// the contract the sharded synchronization pipeline and the benchmark
// harness both rely on.
#include "compress/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "compress/sign_codec.hpp"
#include "compress/sign_sum.hpp"
#include "core/one_bit.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

// Ragged sizes around the 64-element word quantum plus a few large ones.
const std::vector<std::size_t> kSizes = {1,    5,    63,        64,
                                         65,   127,  128,       1000,
                                         4113, 65536, 100013};

std::vector<float> random_gradient(std::size_t d, std::uint64_t seed) {
  std::vector<float> g(d);
  Rng rng(seed);
  fill_normal({g.data(), d}, rng, 0.0f, 1.0f);
  // Sprinkle exact zeros and negative zeros: the sign convention maps both
  // to +1 and the word path must agree.
  for (std::size_t i = 0; i < d; i += 7) {
    g[i] = (i % 14 == 0) ? 0.0f : -0.0f;
  }
  return g;
}

TEST(KernelsTest, WordsForRounding) {
  EXPECT_EQ(kernels::words_for(0), 0u);
  EXPECT_EQ(kernels::words_for(1), 1u);
  EXPECT_EQ(kernels::words_for(64), 1u);
  EXPECT_EQ(kernels::words_for(65), 2u);
  EXPECT_EQ(kernels::words_for(128), 2u);
}

TEST(KernelsTest, PackMatchesScalar) {
  for (const std::size_t d : kSizes) {
    const std::vector<float> g = random_gradient(d, 11 + d);
    const BitVector expected = pack_signs_scalar({g.data(), d});
    const BitVector actual = pack_signs({g.data(), d});
    EXPECT_EQ(actual, expected) << "d=" << d;
  }
}

TEST(KernelsTest, PackOverwritesStaleWords) {
  // The kernel must fully overwrite its word span, including tail-word
  // zeroing — scratch reuse across rounds depends on it.
  const std::size_t d = 130;
  const std::vector<float> g = random_gradient(d, 29);
  std::vector<std::uint64_t> words(kernels::words_for(d), ~std::uint64_t{0});
  kernels::pack_signs_words({g.data(), d}, words);
  const BitVector expected = pack_signs_scalar({g.data(), d});
  for (std::size_t w = 0; w < words.size(); ++w) {
    EXPECT_EQ(words[w], expected.words()[w]) << "word " << w;
  }
}

TEST(KernelsTest, UnpackMatchesScalarBitExactly) {
  for (const std::size_t d : kSizes) {
    const std::vector<float> g = random_gradient(d, 17 + d);
    const BitVector bits = pack_signs_scalar({g.data(), d});
    std::vector<float> expected(d), actual(d);
    for (const float scale : {1.0f, 0.125f, 3.7e-3f}) {
      unpack_signs_scalar(bits, scale, {expected.data(), d});
      unpack_signs(bits, scale, {actual.data(), d});
      for (std::size_t i = 0; i < d; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(actual[i]),
                  std::bit_cast<std::uint32_t>(expected[i]))
            << "d=" << d << " i=" << i << " scale=" << scale;
      }
    }
  }
}

TEST(KernelsTest, AccumulateMatchesScalarBitExactly) {
  for (const std::size_t d : kSizes) {
    const std::vector<float> g = random_gradient(d, 23 + d);
    const BitVector bits = pack_signs_scalar({g.data(), d});
    std::vector<float> expected = random_gradient(d, 31 + d);
    std::vector<float> actual = expected;
    accumulate_signs_scalar(bits, 0.25f, {expected.data(), d});
    accumulate_signs(bits, 0.25f, {actual.data(), d});
    for (std::size_t i = 0; i < d; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(actual[i]),
                std::bit_cast<std::uint32_t>(expected[i]))
          << "d=" << d << " i=" << i;
    }
  }
}

TEST(KernelsTest, SignSumAccumulateAndMajorityMatchScalar) {
  for (const std::size_t d : kSizes) {
    SignSum word_sum(d), scalar_sum(d);
    for (std::size_t m = 0; m < 5; ++m) {
      const std::vector<float> g = random_gradient(d, 100 * d + m);
      const BitVector bits = pack_signs_scalar({g.data(), d});
      word_sum.accumulate(bits);
      scalar_sum.accumulate_scalar(bits);
    }
    EXPECT_EQ(word_sum.contributions(), scalar_sum.contributions());
    for (std::size_t i = 0; i < d; ++i) {
      ASSERT_EQ(word_sum.value(i), scalar_sum.value(i))
          << "d=" << d << " i=" << i;
    }
    EXPECT_EQ(word_sum.majority(), scalar_sum.majority_scalar()) << "d=" << d;
  }
}

TEST(KernelsTest, SsdmPackMatchesScalarAtEqualSeeds) {
  for (const std::size_t d : kSizes) {
    const std::vector<float> g = random_gradient(d, 41 + d);
    for (const std::size_t block : {std::size_t{0}, std::size_t{64}}) {
      Rng rng_a(d + 1), rng_b(d + 1);
      const BitVector expected = ssdm_pack_scalar({g.data(), d}, rng_a, block);
      const BitVector actual = ssdm_pack({g.data(), d}, rng_b, block);
      EXPECT_EQ(actual, expected) << "d=" << d << " block=" << block;
    }
  }
}

TEST(KernelsTest, SsdmPackWordsOverwritesStaleWords) {
  const std::size_t d = 200;
  const std::vector<float> g = random_gradient(d, 47);
  Rng rng_a(3), rng_b(3);
  const BitVector expected = ssdm_pack_scalar({g.data(), d}, rng_a, 64);
  std::vector<std::uint64_t> words(kernels::words_for(d), ~std::uint64_t{0});
  ssdm_pack_words({g.data(), d}, rng_b, 64, words);
  for (std::size_t w = 0; w < words.size(); ++w) {
    EXPECT_EQ(words[w], expected.words()[w]) << "word " << w;
  }
}

TEST(KernelsTest, InPlaceCombineMatchesAllocating) {
  for (const std::size_t d : kSizes) {
    if (d == 0) {
      continue;
    }
    const std::vector<float> ga = random_gradient(d, 53 + d);
    const std::vector<float> gb = random_gradient(d, 59 + d);
    const BitVector a = pack_signs({ga.data(), d});
    const BitVector b = pack_signs({gb.data(), d});
    Rng rng_alloc(d), rng_into(d), rng_words(d);
    const BitVector expected = one_bit_combine(a, 3, b, 2, rng_alloc);
    BitVector into = a;
    one_bit_combine_into(into, 3, b, 2, rng_into);
    EXPECT_EQ(into, expected) << "d=" << d;
    BitVector words_copy = a;
    one_bit_combine_words(words_copy.words(), 3, b.words(), 2, rng_words);
    EXPECT_EQ(words_copy, expected) << "d=" << d;
  }
}

TEST(KernelsTest, InPlaceFoldMatchesAllocating) {
  const std::size_t d = 1000;
  std::vector<BitVector> signs;
  for (std::size_t m = 0; m < 6; ++m) {
    const std::vector<float> g = random_gradient(d, 61 + m);
    signs.push_back(pack_signs({g.data(), d}));
  }
  Rng rng_alloc(5), rng_into(5);
  const BitVector expected = one_bit_fold(signs, rng_alloc);
  std::vector<BitVector> scratch = signs;
  one_bit_fold_into(scratch, rng_into);
  EXPECT_EQ(scratch.front(), expected);
}

TEST(KernelsTest, NanPacksAsNegative) {
  // The scalar convention: NaN >= 0 is false, so NaN packs as −1.  The
  // AVX compare must agree (ordered non-signalling GE).
  std::vector<float> g(130, 1.0f);
  g[0] = std::nanf("");
  g[65] = std::nanf("");
  const BitVector scalar = pack_signs_scalar({g.data(), g.size()});
  const BitVector word = pack_signs({g.data(), g.size()});
  EXPECT_EQ(word, scalar);
  EXPECT_FALSE(word.get(0));
  EXPECT_FALSE(word.get(65));
  EXPECT_TRUE(word.get(1));
}

}  // namespace
}  // namespace marsit
