#include "nn/models.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "nn/linear.hpp"
#include "tensor/ops.hpp"
#include "nn/loss.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

TEST(SequentialTest, RejectsShapeMismatch) {
  Sequential model;
  model.add(std::make_unique<Linear>(4, 8));
  EXPECT_THROW(model.add(std::make_unique<Linear>(9, 2)), CheckError);
}

TEST(SequentialTest, ParamRoundTrip) {
  Sequential model = make_mlp(6, {5}, 3);
  Rng rng(60);
  model.init(rng);
  const std::size_t d = model.param_count();
  EXPECT_EQ(d, 6u * 5u + 5u + 5u * 3u + 3u);

  std::vector<float> saved(d);
  model.copy_params_into({saved.data(), d});
  std::vector<float> reloaded(d, 0.0f);
  model.load_params({saved.data(), d});
  model.copy_params_into({reloaded.data(), d});
  EXPECT_EQ(saved, reloaded);
}

TEST(SequentialTest, ApplyUpdateSubtractsDelta) {
  Sequential model = make_mlp(2, {}, 2);
  Rng rng(61);
  model.init(rng);
  const std::size_t d = model.param_count();
  std::vector<float> before(d), delta(d, 0.5f), after(d);
  model.copy_params_into({before.data(), d});
  model.apply_update({delta.data(), d});
  model.copy_params_into({after.data(), d});
  for (std::size_t i = 0; i < d; ++i) {
    ASSERT_FLOAT_EQ(after[i], before[i] - 0.5f);
  }
}

TEST(SequentialTest, SameSeedGivesIdenticalReplicas) {
  // The consistent-replica invariant every strategy depends on.
  Sequential a = make_alexnet_mini({1, 14, 14}, 10);
  Sequential b = make_alexnet_mini({1, 14, 14}, 10);
  Rng ra(62), rb(62);
  a.init(ra);
  b.init(rb);
  const std::size_t d = a.param_count();
  std::vector<float> pa(d), pb(d);
  a.copy_params_into({pa.data(), d});
  b.copy_params_into({pb.data(), d});
  EXPECT_EQ(pa, pb);
}

TEST(SequentialTest, GradAccumulationAndZero) {
  Sequential model = make_mlp(3, {4}, 2);
  Rng rng(63);
  model.init(rng);
  std::vector<float> x{1.0f, -0.5f, 0.25f};
  const auto y = model.forward({x.data(), 3}, 1);
  std::vector<float> dy(y.size(), 1.0f);
  model.backward({dy.data(), dy.size()}, 1);
  std::vector<float> grads(model.param_count());
  model.copy_grads_into({grads.data(), grads.size()});
  EXPECT_GT(l2_norm({grads.data(), grads.size()}), 0.0f);
  model.zero_grads();
  model.copy_grads_into({grads.data(), grads.size()});
  EXPECT_FLOAT_EQ(l2_norm({grads.data(), grads.size()}), 0.0f);
}

TEST(SequentialTest, DescribeListsLayers) {
  Sequential model = make_alexnet_mini({3, 16, 16}, 10);
  const std::string description = model.describe();
  EXPECT_NE(description.find("Conv2d"), std::string::npos);
  EXPECT_NE(description.find("Linear"), std::string::npos);
  EXPECT_NE(description.find("params"), std::string::npos);
}

TEST(ModelFactoryTest, AlexNetMiniShapes) {
  Sequential model = make_alexnet_mini({3, 16, 16}, 10);
  EXPECT_EQ(model.in_size(), 3u * 16u * 16u);
  EXPECT_EQ(model.out_size(), 10u);
  EXPECT_GT(model.param_count(), 10000u);
  EXPECT_GT(model.flops_per_sample(), 0.0);
}

TEST(ModelFactoryTest, ResNetPresetsOrderedBySize) {
  // Parameter ordering mirrors the paper's lineup:
  // ResNet-20 (0.27M) < ResNet-18 (11M) < ResNet-50 (25M), scaled down.
  const ImageDims dims{3, 16, 16};
  const std::size_t p20 = make_resnet20_mini(dims, 10).param_count();
  const std::size_t p18 = make_resnet18_mini(dims, 10).param_count();
  const std::size_t p50 = make_resnet50_mini(dims, 10).param_count();
  EXPECT_LT(p20, p18);
  EXPECT_LT(p18, p50);
}

TEST(ModelFactoryTest, ResNetForwardRuns) {
  Sequential model = make_resnet20_mini({3, 16, 16}, 10);
  Rng rng(64);
  model.init(rng);
  std::vector<float> x(2 * model.in_size());
  fill_normal({x.data(), x.size()}, rng, 0.0f, 1.0f);
  const auto y = model.forward({x.data(), x.size()}, 2);
  EXPECT_EQ(y.size(), 2u * 10u);
  EXPECT_TRUE(all_finite(y));
}

TEST(ModelFactoryTest, TextClassifierShapes) {
  Sequential model = make_text_classifier(500, 16, 12, 2);
  EXPECT_EQ(model.in_size(), 16u);
  EXPECT_EQ(model.out_size(), 2u);
  // Embedding dominates the parameter count.
  EXPECT_GT(model.param_count(), 500u * 12u);
}

TEST(ModelFactoryTest, TextClassifierForwardOnTokenIds) {
  Sequential model = make_text_classifier(100, 8, 6, 2);
  Rng rng(65);
  model.init(rng);
  std::vector<float> ids(8);
  for (auto& id : ids) {
    id = static_cast<float>(rng.next_below(100));
  }
  const auto y = model.forward({ids.data(), 8}, 1);
  EXPECT_EQ(y.size(), 2u);
  EXPECT_TRUE(all_finite(y));
}

TEST(ModelFactoryTest, MlpWithoutHiddenIsSingleLinear) {
  Sequential model = make_mlp(4, {}, 3);
  EXPECT_EQ(model.num_layers(), 1u);
  EXPECT_EQ(model.param_count(), 4u * 3u + 3u);
}

TEST(ModelFactoryTest, ResNetMiniValidatesArguments) {
  EXPECT_THROW(make_resnet_mini({3, 16, 16}, 10, 0, 8), CheckError);
  EXPECT_THROW(make_resnet_mini({3, 16, 16}, 10, 2, 1), CheckError);
}

TEST(SequentialTest, TrainingStepReducesLossOnTinyProblem) {
  // One gradient step with a small LR must reduce the loss on the same
  // batch (sanity of the whole fwd/bwd/update loop).
  Sequential model = make_mlp(4, {8}, 2);
  Rng rng(66);
  model.init(rng);
  std::vector<float> x(8 * 4);
  fill_normal({x.data(), x.size()}, rng, 0.0f, 1.0f);
  std::vector<std::size_t> labels(8);
  for (auto& label : labels) {
    label = rng.next_below(2);
  }

  auto loss_of = [&] {
    const auto y = model.forward({x.data(), x.size()}, 8);
    return softmax_cross_entropy_eval(y, {labels.data(), 8}, 2).loss;
  };

  const double before = loss_of();
  model.zero_grads();
  const auto y = model.forward({x.data(), x.size()}, 8);
  std::vector<float> dy(y.size());
  softmax_cross_entropy(y, {labels.data(), 8}, 2, {dy.data(), dy.size()});
  model.backward({dy.data(), dy.size()}, 8);
  std::vector<float> update(model.param_count());
  model.copy_grads_into({update.data(), update.size()});
  scale({update.data(), update.size()}, 0.1f);
  model.apply_update({update.data(), update.size()});
  EXPECT_LT(loss_of(), before);
}

}  // namespace
}  // namespace marsit
