// Unit tests for the chi-square machinery in util/stats — the p-value
// transform the statistical harness (core_one_bit_stat_test) rejects on.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace marsit {
namespace {

TEST(ChiSquareTest, ZeroStatisticHasPValueOne) {
  for (std::size_t dof : {1u, 2u, 5u, 30u}) {
    EXPECT_DOUBLE_EQ(chi_square_p_value(0.0, dof), 1.0);
  }
}

TEST(ChiSquareTest, TwoDofIsExactlyExponential) {
  // With 2 dof, P(X² ≥ x) = exp(−x/2) in closed form.
  for (double x : {0.5, 1.0, 3.0, 10.0, 40.0}) {
    EXPECT_NEAR(chi_square_p_value(x, 2), std::exp(-x / 2.0),
                1e-12 * std::exp(-x / 2.0) + 1e-300);
  }
}

TEST(ChiSquareTest, OneDofMatchesErfc) {
  // With 1 dof, P(X² ≥ x) = erfc(√(x/2)).
  for (double x : {0.1, 1.0, 3.841, 6.635, 25.0}) {
    EXPECT_NEAR(chi_square_p_value(x, 1), std::erfc(std::sqrt(x / 2.0)),
                1e-10);
  }
}

TEST(ChiSquareTest, MatchesTabulatedCriticalValues) {
  // Classic critical-value table rows: p(upper tail) at the 5% and 1%
  // quantiles for a few dof.
  EXPECT_NEAR(chi_square_p_value(3.841, 1), 0.05, 5e-4);
  EXPECT_NEAR(chi_square_p_value(11.070, 5), 0.05, 5e-4);
  EXPECT_NEAR(chi_square_p_value(18.307, 10), 0.05, 5e-4);
  EXPECT_NEAR(chi_square_p_value(23.209, 10), 0.01, 5e-4);
  EXPECT_NEAR(chi_square_p_value(43.773, 30), 0.05, 5e-4);
}

TEST(ChiSquareTest, MonotoneDecreasingInStatistic) {
  double prev = 1.1;
  for (double x = 0.0; x <= 60.0; x += 1.5) {
    const double p = chi_square_p_value(x, 7);
    EXPECT_LT(p, prev);
    EXPECT_GE(p, 0.0);
    prev = p;
  }
}

TEST(ChiSquareTest, DeepTailStaysFiniteAndPositive) {
  // The stat harness thresholds at 1e−7; the transform must stay usable far
  // past that without underflowing to zero or going negative.
  const double p = chi_square_p_value(120.0, 10);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-18);
}

TEST(ChiSquareTest, RejectsDegenerateArguments) {
  EXPECT_THROW(chi_square_p_value(1.0, 0), CheckError);
  EXPECT_THROW(chi_square_p_value(-0.5, 3), CheckError);
  EXPECT_THROW(upper_regularized_gamma(0.0, 1.0), CheckError);
  EXPECT_THROW(upper_regularized_gamma(1.0, -1.0), CheckError);
}

TEST(ChiSquareTest, RegularizedGammaComplement) {
  // Q(a, x) → 1 at x = 0 and → 0 as x → ∞, and matches erfc at a = 1/2:
  // Q(1/2, x) = erfc(√x).
  EXPECT_DOUBLE_EQ(upper_regularized_gamma(3.0, 0.0), 1.0);
  EXPECT_LT(upper_regularized_gamma(3.0, 100.0), 1e-30);
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(upper_regularized_gamma(0.5, x), std::erfc(std::sqrt(x)),
                1e-10);
  }
}

TEST(ChiSquareStatisticTest, PerfectFitIsZero) {
  EXPECT_DOUBLE_EQ(
      chi_square_statistic({10, 20, 30}, {10.0, 20.0, 30.0}), 0.0);
}

TEST(ChiSquareStatisticTest, HandComputedExample) {
  // Cells (observed 8, expected 10) and (observed 12, expected 10):
  // 4/10 + 4/10 = 0.8.
  EXPECT_NEAR(chi_square_statistic({8, 12}, {10.0, 10.0}), 0.8, 1e-12);
}

TEST(ChiSquareStatisticTest, RejectsShapeMismatches) {
  EXPECT_THROW(chi_square_statistic({}, {}), CheckError);
  EXPECT_THROW(chi_square_statistic({1, 2}, {1.0}), CheckError);
  EXPECT_THROW(chi_square_statistic({1}, {0.0}), CheckError);
}

TEST(ChiSquareTest, UniformSamplesPassAndSkewedSamplesFail) {
  // Sanity of the whole pipeline: a fair 6-sided tally passes at p > 1e−7,
  // a loaded one fails decisively.
  const std::vector<double> expected(6, 100.0);
  const double fair =
      chi_square_statistic({95, 104, 99, 108, 96, 98}, expected);
  EXPECT_GT(chi_square_p_value(fair, 5), 0.5);
  const double loaded =
      chi_square_statistic({200, 80, 80, 80, 80, 80}, expected);
  EXPECT_LT(chi_square_p_value(loaded, 5), 1e-15);
}

}  // namespace
}  // namespace marsit
