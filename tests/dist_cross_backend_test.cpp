// The cross-backend determinism contract (DESIGN.md §14) as a conformance
// matrix: {ring, 2×2 / 2×4 torus, parameter server, binomial tree} ×
// {legacy all-gather, reduce-scatter} × {4, 8 ranks}.  For every cell, one
// seed drives three executions — the simulator (DistributedTrainer +
// MarsitSync), the distributed worker over SimTransport, and the
// distributed worker over real loopback sockets — and every rank of every
// backend must finish with bit-identical parameters, witnessed by FNV-1a
// digests.  The α–β predictions and wire accounting must also agree
// bit-for-bit across the two transport backends, and the per-rank payload
// bits must sum to the round's total on every backend.
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/snapshot.hpp"
#include "core/sync_strategy.hpp"
#include "data/synthetic_digits.hpp"
#include "dist/worker.hpp"
#include "net/sim_transport.hpp"
#include "net/socket_transport.hpp"
#include "nn/models.hpp"
#include "sim/trainer.hpp"
#include "tensor/tensor.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

constexpr std::size_t kRounds = 6;

dist::WorkerConfig worker_config(MarParadigm paradigm, SyncMode mode,
                                 std::size_t world) {
  dist::WorkerConfig config;
  config.batch_size_per_worker = 8;
  config.optimizer = OptimizerKind::kSgd;
  config.eta_l = 0.05f;
  config.rounds = kRounds;
  config.trainer_seed = 11;
  config.sync_seed = 2022;
  config.paradigm = paradigm;
  config.sync_mode = mode;
  if (paradigm == MarParadigm::kTorus2d) {
    config.torus_rows = 2;
    config.torus_cols = world / 2;
  }
  config.options.eta_s = 2e-3f;
  config.options.full_precision_period = 3;
  config.shard_chunk_elements = 128;
  return config;
}

Sequential make_model(const SyntheticDigits& digits) {
  return make_mlp(digits.sample_size(), {8}, digits.num_classes());
}

/// The oracle: the simulator run every backend must reproduce.
std::uint64_t trainer_digest(const dist::WorkerConfig& config,
                             std::size_t world) {
  SyntheticDigits digits;
  const auto factory = [&digits] { return make_model(digits); };
  SyncConfig sync_config;
  sync_config.num_workers = world;
  sync_config.paradigm = config.paradigm;
  sync_config.torus_rows = config.torus_rows;
  sync_config.torus_cols = config.torus_cols;
  sync_config.sync_mode = config.sync_mode;
  sync_config.seed = config.sync_seed;
  sync_config.shard_chunk_elements = config.shard_chunk_elements;
  MarsitSync strategy(sync_config, config.options);

  TrainerConfig trainer_config;
  trainer_config.batch_size_per_worker = config.batch_size_per_worker;
  trainer_config.optimizer = config.optimizer;
  trainer_config.eta_l = config.eta_l;
  trainer_config.rounds = config.rounds;
  trainer_config.eval_interval = config.rounds + 1;  // digests only
  trainer_config.seed = config.trainer_seed;

  DistributedTrainer trainer(digits, factory, strategy, trainer_config);
  (void)trainer.train();
  Tensor params(trainer.param_count());
  trainer.copy_params_into(params.span());
  return ckpt::fnv1a(params.span().data(), params.size() * sizeof(float));
}

/// Runs `world` ranks on threads, one transport each, and returns the
/// per-rank results in rank order.
std::vector<dist::WorkerResult> run_ranks(
    const dist::WorkerConfig& config, std::size_t world,
    const std::function<std::unique_ptr<Transport>(std::size_t)>& make) {
  std::vector<dist::WorkerResult> results(world);
  std::vector<std::thread> ranks;
  for (std::size_t r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      SyntheticDigits digits;
      const auto factory = [&digits] { return make_model(digits); };
      std::unique_ptr<Transport> transport = make(r);
      results[r] = dist::run_marsit_worker(*transport, digits, factory,
                                           config);
    });
  }
  for (std::thread& t : ranks) {
    t.join();
  }
  return results;
}

std::vector<dist::WorkerResult> run_over_sim_fabric(
    const dist::WorkerConfig& config, std::size_t world) {
  SimFabric fabric(world, config.cost_model);
  std::vector<std::unique_ptr<Transport>> endpoints;
  for (std::size_t r = 0; r < world; ++r) {
    endpoints.push_back(fabric.endpoint(r));
  }
  auto results = run_ranks(config, world, [&](std::size_t r) {
    return std::move(endpoints[r]);
  });
  EXPECT_GT(fabric.simulated_seconds(), 0.0);
  EXPECT_GT(fabric.total_bytes(), 0.0);
  return results;
}

std::vector<dist::WorkerResult> run_over_sockets(
    const dist::WorkerConfig& config, std::size_t world) {
  std::vector<int> listeners(world);
  std::vector<std::uint16_t> ports(world);
  for (std::size_t r = 0; r < world; ++r) {
    listeners[r] = bind_loopback_listener(&ports[r]);
  }
  return run_ranks(config, world,
                   [&](std::size_t r) -> std::unique_ptr<Transport> {
    std::vector<int> fds = connect_socket_mesh(r, world, listeners[r],
                                               {ports.data(), ports.size()});
    return std::make_unique<SocketTransport>(r, std::move(fds));
  });
}

void check_reports(const std::vector<dist::WorkerResult>& results,
                   const dist::WorkerConfig& config) {
  for (std::size_t r = 0; r < results.size(); ++r) {
    ASSERT_EQ(results[r].rounds.size(), kRounds) << "rank " << r;
    for (const dist::RoundReport& report : results[r].rounds) {
      // Round t flushes full precision iff t % K == 0.
      EXPECT_EQ(report.full_precision,
                report.round % config.options.full_precision_period == 0);
      EXPECT_GT(report.predicted_comm_seconds, 0.0);
      EXPECT_GE(report.measured_comm_seconds, 0.0);
      EXPECT_GT(report.wire_bits, 0.0);
      EXPECT_GT(report.total_wire_bits, 0.0);
    }
    // A flush round moves 32× the sign bits; the ratio must show up in the
    // payload accounting of every rank's round totals.
    EXPECT_GT(results[r].rounds[0].total_wire_bits,
              8.0 * results[r].rounds[1].total_wire_bits);
  }
  // total_wire_bits is the whole-round, all-ranks figure: identical on
  // every rank and exactly the sum of the per-rank measured payload bits.
  for (std::size_t t = 0; t < kRounds; ++t) {
    double sum = 0.0;
    for (const dist::WorkerResult& result : results) {
      sum += result.rounds[t].wire_bits;
      EXPECT_DOUBLE_EQ(result.rounds[t].total_wire_bits,
                       results[0].rounds[t].total_wire_bits);
    }
    EXPECT_DOUBLE_EQ(sum, results[0].rounds[t].total_wire_bits)
        << "round " << t;
  }
}

void run_cell(MarParadigm paradigm, SyncMode mode, std::size_t world) {
  SCOPED_TRACE(testing::Message()
               << mar_paradigm_name(paradigm) << " / " << sync_mode_name(mode)
               << " / " << world << " ranks");
  const dist::WorkerConfig config = worker_config(paradigm, mode, world);
  const std::uint64_t oracle = trainer_digest(config, world);

  const std::vector<dist::WorkerResult> sim =
      run_over_sim_fabric(config, world);
  check_reports(sim, config);
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_EQ(sim[r].param_digest, oracle) << "SimTransport rank " << r;
  }

  const std::vector<dist::WorkerResult> sockets =
      run_over_sockets(config, world);
  check_reports(sockets, config);
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_EQ(sockets[r].param_digest, oracle) << "SocketTransport rank "
                                               << r;
    // The α–β prediction and wire accounting are deterministic and
    // backend-independent: both transports replay the same hop schedule
    // through NetworkSim and send the same payload bytes.
    for (std::size_t t = 0; t < kRounds; ++t) {
      EXPECT_DOUBLE_EQ(sockets[r].rounds[t].predicted_comm_seconds,
                       sim[r].rounds[t].predicted_comm_seconds);
      EXPECT_DOUBLE_EQ(sockets[r].rounds[t].wire_bits,
                       sim[r].rounds[t].wire_bits);
      EXPECT_DOUBLE_EQ(sockets[r].rounds[t].total_wire_bits,
                       sim[r].rounds[t].total_wire_bits);
    }
  }
}

void run_matrix(MarParadigm paradigm, SyncMode mode) {
  set_log_level(LogLevel::kWarning);
  for (const std::size_t world : {std::size_t{4}, std::size_t{8}}) {
    run_cell(paradigm, mode, world);
  }
}

TEST(DistCrossBackendTest, RingLegacyAllGather) {
  run_matrix(MarParadigm::kRing, SyncMode::kLegacyAllGather);
}

TEST(DistCrossBackendTest, RingReduceScatter) {
  run_matrix(MarParadigm::kRing, SyncMode::kReduceScatter);
}

TEST(DistCrossBackendTest, TorusLegacyAllGather) {
  run_matrix(MarParadigm::kTorus2d, SyncMode::kLegacyAllGather);
}

TEST(DistCrossBackendTest, TorusReduceScatter) {
  run_matrix(MarParadigm::kTorus2d, SyncMode::kReduceScatter);
}

TEST(DistCrossBackendTest, ParameterServerLegacyAllGather) {
  run_matrix(MarParadigm::kParameterServer, SyncMode::kLegacyAllGather);
}

TEST(DistCrossBackendTest, ParameterServerReduceScatter) {
  run_matrix(MarParadigm::kParameterServer, SyncMode::kReduceScatter);
}

TEST(DistCrossBackendTest, TreeLegacyAllGather) {
  run_matrix(MarParadigm::kTree, SyncMode::kLegacyAllGather);
}

TEST(DistCrossBackendTest, TreeReduceScatter) {
  run_matrix(MarParadigm::kTree, SyncMode::kReduceScatter);
}

}  // namespace
}  // namespace marsit
