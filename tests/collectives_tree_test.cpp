// Tree all-reduce schedule + the tree one-bit fold — the paper's claimed
// extension fabric ("can be easily extended to ... tree all-reduce").
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "collectives/timing.hpp"
#include "core/sync_strategy.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace marsit {
namespace {

CostModel test_model() {
  CostModel model;
  model.link_alpha = 1.0;
  model.link_bandwidth = 100.0;
  model.server_bandwidth = 100.0;
  model.sign_pack_rate = 1e18;
  model.sign_unpack_rate = 1e18;
  model.stochastic_sign_rate = 1e18;
  model.one_bit_combine_rate = 1e18;
  model.cascade_recompress_rate = 1e18;
  model.elias_code_rate = 1e18;
  return model;
}

TEST(TreeTimingTest, TwoWorkersIsOneRoundTrip) {
  const CostModel model = test_model();
  NetworkSim net(2, model);
  const auto timing =
      tree_allreduce_timing(2, 100, full_precision_wire(), net);
  // One 400-byte reduce transfer + one broadcast transfer: 2·(1 + 4).
  EXPECT_NEAR(timing.completion_seconds, 2.0 * (1.0 + 4.0), 1e-9);
  EXPECT_NEAR(timing.total_wire_bits, 2.0 * 3200.0, 1e-9);
}

TEST(TreeTimingTest, LogDepthScaling) {
  // Latency-bound: completion grows ~2·⌈log2 M⌉·α, far below the ring's
  // 2(M−1)·α.
  CostModel model = test_model();
  model.link_bandwidth = 1e12;
  const std::size_t d = 1000;
  NetworkSim tree_net(16, model);
  const auto tree = tree_allreduce_timing(16, d, full_precision_wire(),
                                          tree_net);
  NetworkSim ring_net(16, model);
  const auto ring = ring_allreduce_timing(16, d, full_precision_wire(),
                                          ring_net);
  EXPECT_LT(tree.completion_seconds, ring.completion_seconds / 2.0);
}

TEST(TreeTimingTest, BandwidthBoundRingWins) {
  // The tree moves whole-vector messages; the ring moves 1/M segments in
  // parallel.  With α = 0 the ring's completion is ~2D/β versus the tree's
  // ~2·log2(M)·D/β.
  CostModel model = test_model();
  model.link_alpha = 0.0;
  const std::size_t d = 100000;
  NetworkSim tree_net(16, model);
  const auto tree = tree_allreduce_timing(16, d, full_precision_wire(),
                                          tree_net);
  NetworkSim ring_net(16, model);
  const auto ring = ring_allreduce_timing(16, d, full_precision_wire(),
                                          ring_net);
  EXPECT_GT(tree.completion_seconds, ring.completion_seconds);
}

TEST(TreeTimingTest, NonPowerOfTwoWorkerCounts) {
  const CostModel model = test_model();
  for (std::size_t m : {3u, 5u, 6u, 7u, 12u}) {
    NetworkSim net(m, model);
    const auto timing =
        tree_allreduce_timing(m, 64, marsit_wire(model), net);
    EXPECT_GT(timing.completion_seconds, 0.0) << "M=" << m;
    // Reduce needs M−1 merges, broadcast M−1 sends: 2(M−1) messages total.
    EXPECT_EQ(net.total_messages(), 2 * (m - 1)) << "M=" << m;
  }
}

TEST(TreeTimingTest, SignSumPayloadsGrowUpTheTree) {
  const CostModel model = test_model();
  NetworkSim fixed_net(8, model);
  const auto fixed = tree_allreduce_timing(8, 6400, sign_sum_wire(model),
                                           fixed_net);
  NetworkSim one_bit_net(8, model);
  const auto one_bit = tree_allreduce_timing(8, 6400, marsit_wire(model),
                                             one_bit_net);
  EXPECT_GT(fixed.total_wire_bits, one_bit.total_wire_bits);
}

TEST(TreeTimingTest, RejectsDegenerateArguments) {
  const CostModel model = test_model();
  NetworkSim net(4, model);
  EXPECT_THROW(tree_allreduce_timing(1, 10, marsit_wire(model), net),
               CheckError);
  EXPECT_THROW(tree_allreduce_timing(8, 10, marsit_wire(model), net),
               CheckError);
  EXPECT_THROW(tree_allreduce_timing(4, 0, marsit_wire(model), net),
               CheckError);
}

// --- tree schedule under an active FaultPlan --------------------------------

TEST(TreeFaultTest, PacketLossBurnsRetransmittedBitsNotPayload) {
  const CostModel model = test_model();
  FaultPlan plan;
  plan.seed = 77;
  plan.packet_loss = 0.4;
  plan.validate();

  NetworkSim clean_net(8, model);
  clean_net.begin_round(0);
  const auto clean =
      tree_allreduce_timing(8, 256, full_precision_wire(), clean_net);
  EXPECT_EQ(clean.retransmissions, 0u);
  EXPECT_DOUBLE_EQ(clean.retransmitted_wire_bits, 0.0);

  NetworkSim lossy_net(8, model);
  lossy_net.set_fault_plan(&plan);
  lossy_net.begin_round(0);
  const auto lossy =
      tree_allreduce_timing(8, 256, full_precision_wire(), lossy_net);

  // Payload accounting counts each message once; lost attempts land on the
  // retransmitted side channel and stretch completion via retry timeouts.
  EXPECT_DOUBLE_EQ(lossy.total_wire_bits, clean.total_wire_bits);
  EXPECT_GT(lossy.retransmissions, 0u);
  EXPECT_GT(lossy.completion_seconds, clean.completion_seconds);
  // Every tree message here is a whole 256-float vector, so each lost
  // attempt burns exactly 32·256 bits.
  EXPECT_DOUBLE_EQ(lossy.retransmitted_wire_bits,
                   static_cast<double>(lossy.retransmissions) * 32.0 * 256.0);
}

TEST(TreeFaultTest, FaultStreamIsDeterministicPerRound) {
  // The link-level fault stream is a pure function of (plan seed, round,
  // transfer order) — not of simulator history.
  const CostModel model = test_model();
  FaultPlan plan;
  plan.seed = 123;
  plan.packet_loss = 0.3;
  plan.latency_jitter = 1e-3;

  auto run = [&model, &plan](NetworkSim& net, std::size_t round) {
    net.set_fault_plan(&plan);
    net.begin_round(round);
    return tree_allreduce_timing(8, 64, marsit_wire(model), net);
  };
  NetworkSim net_a(8, model), net_b(8, model), net_c(8, model);
  const auto a = run(net_a, 5);
  const auto b = run(net_b, 5);
  EXPECT_DOUBLE_EQ(a.completion_seconds, b.completion_seconds);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_DOUBLE_EQ(a.retransmitted_wire_bits, b.retransmitted_wire_bits);

  // Replaying round 5 after a different round on the same simulator matches
  // a fresh simulator: begin_round() fully reseeds the stream.
  (void)run(net_c, 4);
  const auto c = run(net_c, 5);
  EXPECT_DOUBLE_EQ(c.completion_seconds, a.completion_seconds);
  EXPECT_EQ(c.retransmissions, a.retransmissions);
}

TEST(TreeFaultTest, RootStragglerStretchesCompletion) {
  // Node 0 is the binomial-tree root: it terminates every reduce level and
  // originates the broadcast, so slowing its NICs stretches the whole
  // collective without losing a single payload.
  const CostModel model = test_model();
  FaultPlan plan;
  plan.stragglers.push_back(FaultPlan::Straggler{.node = 0, .slowdown = 8.0});
  plan.validate();

  NetworkSim clean_net(8, model);
  const auto clean =
      tree_allreduce_timing(8, 1000, full_precision_wire(), clean_net);
  NetworkSim slow_net(8, model);
  slow_net.set_fault_plan(&plan);
  slow_net.begin_round(0);
  const auto slow =
      tree_allreduce_timing(8, 1000, full_precision_wire(), slow_net);
  EXPECT_GT(slow.completion_seconds, clean.completion_seconds);
  EXPECT_EQ(slow.retransmissions, 0u);
  EXPECT_DOUBLE_EQ(slow.total_wire_bits, clean.total_wire_bits);
}

TEST(TreeFaultTest, RootOutageDefersTheWholeReduce) {
  const CostModel model = test_model();
  FaultPlan plan;
  plan.outages.push_back(
      FaultPlan::Outage{.node = 0, .start = 0.0, .end = 50.0});
  plan.validate();

  NetworkSim net(8, model);
  net.set_fault_plan(&plan);
  net.begin_round(0);
  const auto timing =
      tree_allreduce_timing(8, 100, full_precision_wire(), net);
  // Nothing can land on the root before its NICs come back up.
  EXPECT_GT(timing.completion_seconds, 50.0);
  NetworkSim clean_net(8, model);
  const auto clean =
      tree_allreduce_timing(8, 100, full_precision_wire(), clean_net);
  EXPECT_GT(timing.completion_seconds, clean.completion_seconds);
}

TEST(TreeFaultTest, StrategyReportsRetransmissionAccounting) {
  // The lossy timing flows through SyncStrategy::synchronize into
  // SyncStepResult, where the trainer picks it up for TrainResult.
  SyncConfig config;
  config.num_workers = 8;
  config.paradigm = MarParadigm::kTree;
  config.seed = 31;
  config.fault_plan.seed = 9;
  config.fault_plan.packet_loss = 0.4;
  PsgdSync sync(config);

  const std::size_t d = 64;
  std::vector<Tensor> inputs(8, Tensor(d));
  Rng rng(32);
  WorkerSpans spans;
  for (auto& t : inputs) {
    fill_normal(t.span(), rng, 0.0f, 1.0f);
    spans.push_back(t.span());
  }
  Tensor out(d), expected(d);
  const auto step = sync.synchronize(spans, out.span());
  EXPECT_GT(step.timing.retransmissions, 0u);
  // PSGD tree messages are whole 32·d-bit vectors.
  EXPECT_DOUBLE_EQ(
      step.timing.retransmitted_wire_bits,
      static_cast<double>(step.timing.retransmissions) * 32.0 * d);
  EXPECT_DOUBLE_EQ(step.timing.total_wire_bits, 2.0 * 7.0 * 32.0 * d);
  // Link faults delay delivery but never corrupt it: values stay exact.
  aggregate_mean(spans, expected.span());
  for (std::size_t i = 0; i < d; ++i) {
    ASSERT_FLOAT_EQ(out[i], expected[i]);
  }
}

TEST(TreeFaultTest, DegradedMembershipShrinksTheTree) {
  // Two workers sit out round 0: the reduction re-forms as a 6-node
  // binomial tree over the survivors — 2·(6−1) whole-vector messages
  // instead of 2·(8−1) — and the absentees' updates must not leak into the
  // aggregate.
  SyncConfig config;
  config.num_workers = 8;
  config.paradigm = MarParadigm::kTree;
  config.seed = 31;
  config.fault_plan.dropouts.push_back(
      FaultPlan::DropOut{.worker = 3, .from_round = 0, .to_round = 1});
  config.fault_plan.dropouts.push_back(
      FaultPlan::DropOut{.worker = 5, .from_round = 0, .to_round = 1});
  MarsitOptions options;
  options.eta_s = 0.5f;
  MarsitSync sync(config, options);

  const std::size_t d = 64;
  std::vector<Tensor> inputs(8, Tensor(d));
  WorkerSpans spans;
  for (std::size_t w = 0; w < 8; ++w) {
    const float value = (w == 3 || w == 5) ? -1.0f : 1.0f;
    std::fill(inputs[w].span().begin(), inputs[w].span().end(), value);
    spans.push_back(inputs[w].span());
  }
  Tensor out(d);
  const auto degraded = sync.synchronize(spans, out.span());
  EXPECT_EQ(degraded.active_workers, 6u);
  // Marsit's constant one-bit payloads: 2·(m−1)·d bits on a tree of m.
  EXPECT_DOUBLE_EQ(degraded.timing.total_wire_bits, 2.0 * 5.0 * d);
  // All six survivors agree on +1, so the stochastic fold is deterministic;
  // the dissenting absentees (−1) would flip bits if they leaked in.
  for (std::size_t i = 0; i < d; ++i) {
    ASSERT_FLOAT_EQ(out[i], 0.5f);
  }

  // Round 1: everyone is back and the full 8-node tree re-forms.
  const auto healthy = sync.synchronize(spans, out.span());
  EXPECT_EQ(healthy.active_workers, 8u);
  EXPECT_DOUBLE_EQ(healthy.timing.total_wire_bits, 2.0 * 7.0 * d);
}

TEST(TreeMarsitTest, TreeParadigmNameAndTiming) {
  SyncConfig config;
  config.num_workers = 8;
  config.paradigm = MarParadigm::kTree;
  config.seed = 21;
  MarsitOptions options;
  options.eta_s = 0.5f;
  MarsitSync sync(config, options);
  EXPECT_EQ(sync.name(), "Marsit-TREE");

  std::vector<Tensor> inputs(8, Tensor(32));
  Rng rng(22);
  WorkerSpans spans;
  for (auto& t : inputs) {
    fill_normal(t.span(), rng, 0.0f, 1.0f);
    spans.push_back(t.span());
  }
  Tensor out(32);
  const auto step = sync.synchronize(spans, out.span());
  EXPECT_GT(step.timing.completion_seconds, 0.0);
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_FLOAT_EQ(std::fabs(out[i]), 0.5f);
  }
}

TEST(TreeMarsitTest, TreeFoldIsUnbiased) {
  // 3 of 5 workers positive on element 0, 1 of 5 on element 1: the binomial
  // fold's weighted merges must keep P(bit=1) = k/M exactly.
  SyncConfig config;
  config.num_workers = 5;
  config.paradigm = MarParadigm::kTree;
  MarsitOptions options;
  options.eta_s = 1.0f;

  std::vector<Tensor> inputs;
  inputs.push_back(Tensor{1.0f, 1.0f});
  inputs.push_back(Tensor{1.0f, -1.0f});
  inputs.push_back(Tensor{1.0f, -1.0f});
  inputs.push_back(Tensor{-1.0f, -1.0f});
  inputs.push_back(Tensor{-1.0f, -1.0f});
  WorkerSpans spans;
  for (const auto& t : inputs) {
    spans.push_back(t.span());
  }

  double mean0 = 0.0, mean1 = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    SyncConfig cfg = config;
    cfg.seed = 3000 + t;
    MarsitSync fresh(cfg, options);
    Tensor out(2);
    fresh.synchronize(spans, out.span());
    mean0 += out[0];
    mean1 += out[1];
  }
  // E[±1] = (2k − M)/M: (6−5)/5 = 0.2 and (2−5)/5 = −0.6.
  EXPECT_NEAR(mean0 / trials, 0.2, 5.0 / std::sqrt(trials));
  EXPECT_NEAR(mean1 / trials, -0.6, 5.0 / std::sqrt(trials));
}

TEST(TreePsgdTest, ExactMeanOnTree) {
  SyncConfig config;
  config.num_workers = 6;
  config.paradigm = MarParadigm::kTree;
  config.seed = 23;
  PsgdSync sync(config);
  EXPECT_EQ(sync.name(), "PSGD-TREE");

  std::vector<Tensor> inputs(6, Tensor(16));
  Rng rng(24);
  WorkerSpans spans;
  for (auto& t : inputs) {
    fill_normal(t.span(), rng, 0.0f, 1.0f);
    spans.push_back(t.span());
  }
  Tensor out(16), expected(16);
  sync.synchronize(spans, out.span());
  aggregate_mean(spans, expected.span());
  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_FLOAT_EQ(out[i], expected[i]);
  }
}

}  // namespace
}  // namespace marsit
