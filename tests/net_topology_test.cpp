#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace marsit {
namespace {

TEST(RingTopologyTest, NeighborsWrapAround) {
  const Topology ring = Topology::ring(4);
  EXPECT_EQ(ring.kind(), TopologyKind::kRing);
  EXPECT_EQ(ring.num_nodes(), 4u);
  EXPECT_EQ(ring.num_workers(), 4u);
  EXPECT_EQ(ring.ring_next(0), 1u);
  EXPECT_EQ(ring.ring_next(3), 0u);
  EXPECT_EQ(ring.ring_prev(0), 3u);
  EXPECT_EQ(ring.ring_prev(2), 1u);
}

TEST(RingTopologyTest, RejectsTooFewNodes) {
  EXPECT_THROW(Topology::ring(1), CheckError);
}

TEST(RingTopologyTest, NonRingAccessorsThrow) {
  const Topology ring = Topology::ring(3);
  EXPECT_THROW(ring.torus_rows(), CheckError);
  EXPECT_THROW(ring.star_server(), CheckError);
  EXPECT_THROW(ring.ring_next(3), CheckError);
}

TEST(TorusTopologyTest, CoordinateMapping) {
  const Topology torus = Topology::torus2d(3, 4);
  EXPECT_EQ(torus.num_nodes(), 12u);
  EXPECT_EQ(torus.torus_rows(), 3u);
  EXPECT_EQ(torus.torus_cols(), 4u);
  EXPECT_EQ(torus.torus_node(1, 2), 6u);
  EXPECT_EQ(torus.torus_row_of(6), 1u);
  EXPECT_EQ(torus.torus_col_of(6), 2u);
}

TEST(TorusTopologyTest, RowAndColumnRingsWrap) {
  const Topology torus = Topology::torus2d(2, 3);
  // Row ring of node (0,2) wraps to (0,0).
  EXPECT_EQ(torus.torus_row_next(2), 0u);
  EXPECT_EQ(torus.torus_row_next(0), 1u);
  // Column ring of node (1,1) wraps to (0,1).
  EXPECT_EQ(torus.torus_col_next(4), 1u);
  EXPECT_EQ(torus.torus_col_next(1), 4u);
}

TEST(TorusTopologyTest, EveryNodeVisitsWholeRowRing) {
  const Topology torus = Topology::torus2d(3, 5);
  std::size_t node = torus.torus_node(2, 0);
  for (std::size_t step = 0; step < 5; ++step) {
    EXPECT_EQ(torus.torus_row_of(node), 2u);
    node = torus.torus_row_next(node);
  }
  EXPECT_EQ(node, torus.torus_node(2, 0));
}

TEST(TorusTopologyTest, RejectsDegenerateShape) {
  EXPECT_THROW(Topology::torus2d(1, 4), CheckError);
  EXPECT_THROW(Topology::torus2d(4, 1), CheckError);
}

TEST(StarTopologyTest, ServerIsLastNode) {
  const Topology star = Topology::star(5);
  EXPECT_EQ(star.num_nodes(), 6u);
  EXPECT_EQ(star.num_workers(), 5u);
  EXPECT_EQ(star.star_server(), 5u);
}

TEST(StarTopologyTest, RejectsZeroWorkers) {
  EXPECT_THROW(Topology::star(0), CheckError);
}

TEST(TopologyTest, DebugStrings) {
  EXPECT_EQ(Topology::ring(4).debug_string(), "ring(4 workers)");
  EXPECT_EQ(Topology::torus2d(2, 3).debug_string(), "torus2d(2x3)");
  EXPECT_EQ(Topology::star(8).debug_string(), "star(8 workers)");
}

TEST(TopologyTest, KindNames) {
  EXPECT_STREQ(topology_kind_name(TopologyKind::kRing), "ring");
  EXPECT_STREQ(topology_kind_name(TopologyKind::kTorus2d), "torus2d");
  EXPECT_STREQ(topology_kind_name(TopologyKind::kStar), "star");
}

}  // namespace
}  // namespace marsit
