// Determinism tests for the sharded synchronization pipeline: the chunk grid
// and per-chunk rng streams depend only on (seed, round, payload geometry),
// so every strategy must produce bit-identical outputs for any thread-pool
// size.  Also pins signSGD-MV's sharded output to the serial scalar
// reference (pack → sign-sum → majority → unpack).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compress/sign_codec.hpp"
#include "compress/sign_sum.hpp"
#include "core/one_bit.hpp"
#include "core/sync_strategy.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

// Ragged dimension spanning many chunks at the test chunk size below.
constexpr std::size_t kDim = 5000;
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kChunk = 256;  // → 20 chunks at kDim
constexpr std::size_t kRounds = 3;

std::vector<std::vector<float>> make_inputs(std::size_t round) {
  std::vector<std::vector<float>> inputs(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    inputs[w].resize(kDim);
    Rng rng(derive_seed(1000 + round, w));
    fill_normal({inputs[w].data(), kDim}, rng, 0.0f, 1.0f);
  }
  return inputs;
}

SyncConfig base_config(MarParadigm paradigm, ThreadPool* pool) {
  SyncConfig config;
  config.num_workers = kWorkers;
  config.paradigm = paradigm;
  if (paradigm == MarParadigm::kTorus2d) {
    config.torus_rows = 2;
    config.torus_cols = 2;
  }
  config.seed = 77;
  config.pool = pool;
  config.shard_chunk_elements = kChunk;
  return config;
}

/// Runs kRounds synchronize() calls and returns the concatenated outputs.
std::vector<float> run_rounds(SyncMethod method, MarParadigm paradigm,
                              ThreadPool* pool, bool use_elias = false) {
  SyncConfig config = base_config(paradigm, pool);
  config.use_elias = use_elias;
  config.elias_refresh_interval = 2;  // hit both refresh and cached rounds
  auto strategy = make_sync_strategy(method, config);
  std::vector<float> all;
  std::vector<float> out(kDim);
  for (std::size_t t = 0; t < kRounds; ++t) {
    const auto inputs = make_inputs(t);
    WorkerSpans spans;
    for (const auto& in : inputs) {
      spans.emplace_back(in.data(), in.size());
    }
    strategy->synchronize(spans, {out.data(), out.size()});
    all.insert(all.end(), out.begin(), out.end());
  }
  return all;
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << label << ": outputs differ across pool sizes";
}

void check_pool_invariance(SyncMethod method, MarParadigm paradigm,
                           const char* label) {
  ThreadPool pool1(1), pool4(4), pool_hw(0);
  const std::vector<float> ref = run_rounds(method, paradigm, &pool1);
  expect_bit_identical(run_rounds(method, paradigm, &pool4), ref, label);
  expect_bit_identical(run_rounds(method, paradigm, &pool_hw), ref, label);
}

TEST(ShardedSyncTest, MarsitRingPoolInvariant) {
  check_pool_invariance(SyncMethod::kMarsit, MarParadigm::kRing,
                        "Marsit-RAR");
}

TEST(ShardedSyncTest, MarsitTorusPoolInvariant) {
  check_pool_invariance(SyncMethod::kMarsit, MarParadigm::kTorus2d,
                        "Marsit-TAR");
}

TEST(ShardedSyncTest, MarsitTreePoolInvariant) {
  check_pool_invariance(SyncMethod::kMarsit, MarParadigm::kTree,
                        "Marsit-TREE");
}

TEST(ShardedSyncTest, SignSgdPoolInvariant) {
  check_pool_invariance(SyncMethod::kSignSgdMv, MarParadigm::kRing,
                        "signSGD-MV");
}

TEST(ShardedSyncTest, SsdmPoolInvariant) {
  check_pool_invariance(SyncMethod::kSsdm, MarParadigm::kRing, "SSDM-RAR");
}

TEST(ShardedSyncTest, SsdmPsPoolInvariant) {
  check_pool_invariance(SyncMethod::kSsdmPs, MarParadigm::kParameterServer,
                        "SSDM-PS");
}

TEST(ShardedSyncTest, EliasRefreshDoesNotChangeOutputs) {
  // Elias refresh rounds materialize per-worker sign vectors instead of
  // packing into scratch; the packing consumes rng identically either way,
  // so outputs must not depend on the wire encoding choice.
  ThreadPool pool(2);
  for (const SyncMethod method : {SyncMethod::kSignSgdMv, SyncMethod::kSsdm}) {
    const auto plain = run_rounds(method, MarParadigm::kRing, &pool, false);
    const auto elias = run_rounds(method, MarParadigm::kRing, &pool, true);
    expect_bit_identical(elias, plain, sync_method_name(method));
  }
}

TEST(ShardedSyncTest, SignSgdMatchesScalarReference) {
  // The whole sharded pipeline, pinned against the serial scalar path:
  // per-worker pack_signs_scalar → SignSum::accumulate_scalar →
  // majority_scalar → unpack_signs_scalar.
  ThreadPool pool(3);
  const float eta_s = 1e-3f;  // MethodOptions default
  const auto inputs = make_inputs(0);
  WorkerSpans spans;
  for (const auto& in : inputs) {
    spans.emplace_back(in.data(), in.size());
  }

  SignSum sum(kDim);
  for (const auto& in : inputs) {
    sum.accumulate_scalar(pack_signs_scalar({in.data(), in.size()}));
  }
  std::vector<float> expected(kDim);
  unpack_signs_scalar(sum.majority_scalar(), eta_s,
                      {expected.data(), expected.size()});

  auto strategy = make_sync_strategy(SyncMethod::kSignSgdMv,
                                     base_config(MarParadigm::kRing, &pool));
  std::vector<float> out(kDim);
  strategy->synchronize(spans, {out.data(), out.size()});
  EXPECT_EQ(
      std::memcmp(out.data(), expected.data(), kDim * sizeof(float)), 0)
      << "sharded signSGD-MV diverges from the scalar reference";
}

TEST(ShardedSyncTest, SingleChunkMatchesSerialRoundStream) {
  // Chunk 0 continues the round stream, so a payload that fits in one chunk
  // reproduces the original serial implementation's rng consumption —
  // checked here by comparing a huge-chunk run against a Marsit fold done
  // by hand with Rng(derive_seed(seed, round)).
  ThreadPool pool(2);
  SyncConfig config = base_config(MarParadigm::kRing, &pool);
  config.shard_chunk_elements = 1 << 20;  // whole payload in chunk 0
  auto strategy = make_sync_strategy(SyncMethod::kMarsit, config);

  const auto inputs = make_inputs(0);
  WorkerSpans spans;
  for (const auto& in : inputs) {
    spans.emplace_back(in.data(), in.size());
  }
  std::vector<float> out(kDim);
  strategy->synchronize(spans, {out.data(), out.size()});

  // Serial reference: round 0 compensation is zero, so the fold runs on the
  // raw inputs with the round stream.
  std::vector<BitVector> signs;
  for (const auto& in : inputs) {
    signs.push_back(pack_signs({in.data(), in.size()}));
  }
  Rng rng(derive_seed(config.seed, 0));
  BitVector folded = one_bit_fold(signs, rng);
  std::vector<float> expected(kDim);
  unpack_signs(folded, MarsitOptions{}.eta_s,
               {expected.data(), expected.size()});
  EXPECT_EQ(
      std::memcmp(out.data(), expected.data(), kDim * sizeof(float)), 0)
      << "single-chunk Marsit diverges from the serial round stream";
}

}  // namespace
}  // namespace marsit
