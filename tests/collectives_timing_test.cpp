#include "collectives/timing.hpp"

#include <gtest/gtest.h>

#include "net/crc32.hpp"
#include "net/fault_plan.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

CostModel test_model() {
  CostModel model;
  model.link_alpha = 1.0;
  model.link_bandwidth = 100.0;  // bytes/s
  model.server_bandwidth = 100.0;
  // Make local processing negligible so closed-form checks are exact.
  model.sign_pack_rate = 1e18;
  model.sign_unpack_rate = 1e18;
  model.stochastic_sign_rate = 1e18;
  model.one_bit_combine_rate = 1e18;
  model.cascade_recompress_rate = 1e18;
  model.elias_code_rate = 1e18;
  return model;
}

TEST(RingTimingTest, FullPrecisionMatchesClosedForm) {
  const CostModel model = test_model();
  NetworkSim net(4, model);
  const std::size_t m = 4, d = 400;  // seg = 100 elements = 400 bytes
  const CollectiveTiming timing =
      ring_allreduce_timing(m, d, full_precision_wire(), net);
  // 2(M−1) synchronous steps of (α + 400/β) each.
  EXPECT_NEAR(timing.completion_seconds, 6.0 * (1.0 + 4.0), 1e-9);
  // Total bits: 2(M−1) steps × M segments × 32·seg bits.
  EXPECT_NEAR(timing.total_wire_bits, 6.0 * 4.0 * 3200.0, 1e-9);
  EXPECT_NEAR(timing.bits_per_worker, timing.total_wire_bits / 4.0, 1e-9);
}

TEST(RingTimingTest, MarsitWireIs32xSmaller) {
  const CostModel model = test_model();
  NetworkSim net(4, model);
  const auto full = ring_allreduce_timing(4, 3200, full_precision_wire(), net);
  net.reset();
  const auto one_bit = ring_allreduce_timing(4, 3200, marsit_wire(model), net);
  EXPECT_NEAR(full.total_wire_bits / one_bit.total_wire_bits, 32.0, 1e-9);
  EXPECT_LT(one_bit.completion_seconds, full.completion_seconds);
}

TEST(RingTimingTest, MarsitTotalBitsFormula) {
  // One-bit ring: 2(M−1)·D bits total when M | D.
  const CostModel model = test_model();
  NetworkSim net(8, model);
  const auto timing = ring_allreduce_timing(8, 800, marsit_wire(model), net);
  EXPECT_NEAR(timing.total_wire_bits, 2.0 * 7.0 * 800.0, 1e-9);
}

TEST(RingTimingTest, CascadingSlowerThanMarsitWithRealRates) {
  CostModel model = test_model();
  model.cascade_recompress_rate = 10.0;  // 10 elements/s: brutal hops
  NetworkSim net(4, model);
  const auto cascade =
      ring_allreduce_timing(4, 400, cascading_wire(model), net);
  net.reset();
  const auto one_bit = ring_allreduce_timing(4, 400, marsit_wire(model), net);
  EXPECT_GT(cascade.completion_seconds, one_bit.completion_seconds);
  EXPECT_GT(cascade.compression_seconds_per_worker(),
            one_bit.compression_seconds_per_worker());
}

TEST(RingTimingTest, SignSumBitsGrowWithContributions) {
  const CostModel model = test_model();
  const WireFormat wire = sign_sum_wire(model);
  EXPECT_LT(wire.reduce_bits(100, 1), wire.reduce_bits(100, 3));
  EXPECT_LT(wire.reduce_bits(100, 3), wire.reduce_bits(100, 8));
  // Gather carries the finalized one-bit decision.
  EXPECT_NEAR(wire.gather_bits(100), 100.0, 1e-12);
}

TEST(RingTimingTest, SignSumWireCostsMoreThanMarsit) {
  const CostModel model = test_model();
  NetworkSim net(8, model);
  const auto sign_sum =
      ring_allreduce_timing(8, 6400, sign_sum_wire(model), net);
  net.reset();
  const auto one_bit = ring_allreduce_timing(8, 6400, marsit_wire(model), net);
  EXPECT_GT(sign_sum.total_wire_bits, one_bit.total_wire_bits);
  EXPECT_GT(sign_sum.completion_seconds, one_bit.completion_seconds);
}

TEST(RingTimingTest, RejectsDegenerateArguments) {
  const CostModel model = test_model();
  NetworkSim net(4, model);
  EXPECT_THROW(ring_allreduce_timing(1, 100, marsit_wire(model), net),
               CheckError);
  EXPECT_THROW(ring_allreduce_timing(4, 0, marsit_wire(model), net),
               CheckError);
  EXPECT_THROW(ring_allreduce_timing(8, 100, marsit_wire(model), net),
               CheckError);  // network smaller than worker count
}

TEST(PsTimingTest, ServerCongestionScalesWithWorkers) {
  const CostModel model = test_model();
  // Same per-worker payload; PS completion grows ~linearly with M while
  // ring grows only in step count with shrinking segments.
  NetworkSim net4(5, model);
  const auto ps4 = ps_allreduce_timing(4, 400, full_precision_wire(), net4);
  NetworkSim net8(9, model);
  const auto ps8 = ps_allreduce_timing(8, 400, full_precision_wire(), net8);
  EXPECT_GT(ps8.completion_seconds, 1.7 * ps4.completion_seconds);
}

TEST(PsTimingTest, PsSlowerThanRingForFullPrecision) {
  // The motivating comparison of §3.1 / Figure 1a.
  const CostModel model = test_model();
  const std::size_t m = 8, d = 8000;
  NetworkSim ps_net(m + 1, model);
  const auto ps = ps_allreduce_timing(m, d, full_precision_wire(), ps_net);
  NetworkSim ring_net(m, model);
  const auto ring = ring_allreduce_timing(m, d, full_precision_wire(),
                                          ring_net);
  EXPECT_GT(ps.completion_seconds, ring.completion_seconds);
}

TEST(PsTimingTest, RequiresServerNode) {
  const CostModel model = test_model();
  NetworkSim net(4, model);  // no room for a server
  EXPECT_THROW(ps_allreduce_timing(4, 100, full_precision_wire(), net),
               CheckError);
}

TEST(TorusTimingTest, CompletesAndCountsBits) {
  const CostModel model = test_model();
  NetworkSim net(16, model);
  const auto timing = torus_allreduce_timing(4, 4, 1600, marsit_wire(model),
                                             net);
  EXPECT_GT(timing.completion_seconds, 0.0);
  EXPECT_GT(timing.total_wire_bits, 0.0);
  EXPECT_GT(timing.bits_per_worker, 0.0);
}

TEST(TorusTimingTest, FewerLatencyStepsThanRingWhenAlphaDominates) {
  // 2(√M−1)·2 torus steps vs 2(M−1) ring steps: with α ≫ size/β the torus
  // wins — the paper's "each baseline takes less time under TAR".
  CostModel model = test_model();
  model.link_alpha = 10.0;
  model.link_bandwidth = 1e12;  // latency-bound
  const std::size_t m = 16, d = 16000;
  NetworkSim ring_net(m, model);
  const auto ring = ring_allreduce_timing(m, d, full_precision_wire(),
                                          ring_net);
  NetworkSim torus_net(m, model);
  const auto torus = torus_allreduce_timing(4, 4, d, full_precision_wire(),
                                            torus_net);
  EXPECT_LT(torus.completion_seconds, ring.completion_seconds);
}

TEST(TorusTimingTest, RejectsDegenerateShapes) {
  const CostModel model = test_model();
  NetworkSim net(16, model);
  EXPECT_THROW(torus_allreduce_timing(1, 16, 100, marsit_wire(model), net),
               CheckError);
  EXPECT_THROW(torus_allreduce_timing(8, 4, 100, marsit_wire(model), net),
               CheckError);  // 32 nodes > 16-node network
}

TEST(WireFormatTest, EliasWireUsesMeasuredSizes) {
  const CostModel model = test_model();
  const WireFormat wire = sign_sum_elias_wire(
      model, [](std::size_t contributions) {
        return 1.0 + static_cast<double>(contributions);
      });
  EXPECT_NEAR(wire.reduce_bits(10, 3), 40.0, 1e-12);
  EXPECT_NEAR(wire.gather_bits(10), 10.0, 1e-12);
}

TEST(WireFormatTest, CascadingCarriesNormScalar) {
  const CostModel model = test_model();
  const WireFormat wire = cascading_wire(model);
  EXPECT_NEAR(wire.reduce_bits(100, 5), 132.0, 1e-12);
  EXPECT_GT(wire.serial_seconds_per_element, 0.0);
}

TEST(RingTimingTest, CorruptionChargesFooterOncePerDeliveredMessage) {
  // ISSUE satellite: under a corruption plan every delivered message grows
  // by exactly one 32-bit CRC footer in total_wire_bits — added in one
  // place, never double-counted against retransmission accounting.
  const CostModel model = test_model();
  NetworkSim clean_net(4, model);
  const auto clean =
      ring_allreduce_timing(4, 400, full_precision_wire(), clean_net);

  FaultPlan plan;
  plan.corruption_rate = 1e-12;  // footer cost without actual corruption
  plan.retry_timeout = 1.0;
  NetworkSim net(4, model);
  net.set_fault_plan(&plan);
  net.begin_round(0);
  const auto lossy = ring_allreduce_timing(4, 400, full_precision_wire(), net);
  // The M=4 ring moves 2(M−1) steps × M segments = 24 messages.
  EXPECT_DOUBLE_EQ(lossy.total_wire_bits,
                   clean.total_wire_bits + kCrcFooterBits * 24.0);
  EXPECT_DOUBLE_EQ(lossy.retransmitted_wire_bits, 0.0);
  // Payload accounting stays footer-free.
  EXPECT_DOUBLE_EQ(lossy.bits_per_worker, clean.bits_per_worker);
}

TEST(PipelinedTimingTest, SerialCacheKeysOnChunkGeometry) {
  // ISSUE satellite regression: the serial reference used to be cached by
  // element count alone, so a mixed-geometry plan (different schedule per
  // chunk) reused chunk 0's measurement for every same-size chunk.  The
  // cache now keys on the chunk's full geometry fingerprint.
  const CostModel model = test_model();
  const WireFormat wire = full_precision_wire();
  NetworkSim ref(4, model);
  const double t_ring =
      ring_allreduce_timing(4, 64, wire, ref).completion_seconds;
  ref.reset();
  const double t_tree =
      tree_allreduce_timing(4, 64, wire, ref).completion_seconds;
  ASSERT_NE(t_ring, t_tree) << "geometries must differ for this regression";

  NetworkSim net(4, model);
  const auto timing = pipelined_collective_timing(
      128, 64, wire, net,
      [](std::size_t chunk_index, std::size_t elements,
         const WireFormat& chunk_wire, NetworkSim& chunk_net,
         double start_time) {
        return chunk_index == 0
                   ? ring_allreduce_timing(4, elements, chunk_wire, chunk_net,
                                           start_time)
                   : tree_allreduce_timing(4, elements, chunk_wire, chunk_net,
                                           start_time);
      });
  // Two 64-element chunks over distinct topologies: the serial reference
  // must price each with its own schedule (the old cache returned
  // 2 × t_ring here).
  EXPECT_NEAR(timing.serial_completion_seconds, t_ring + t_tree, 1e-9);
}

TEST(WireFormatTest, MarsitCombineIsOverlapped) {
  CostModel model = test_model();
  model.one_bit_combine_rate = 100.0;
  const WireFormat wire = marsit_wire(model);
  EXPECT_DOUBLE_EQ(wire.serial_seconds_per_element, 0.0);
  EXPECT_GT(wire.overlapped_seconds_per_element, 0.0);
}

}  // namespace
}  // namespace marsit
