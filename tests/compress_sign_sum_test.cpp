#include "compress/sign_sum.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "compress/sign_codec.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

BitVector signs_of(const std::vector<float>& v) {
  return pack_signs({v.data(), v.size()});
}

TEST(SignSumTest, AccumulateCountsContributions) {
  SignSum sum(3);
  EXPECT_EQ(sum.contributions(), 0u);
  sum.accumulate(signs_of({1.0f, -1.0f, 1.0f}));
  sum.accumulate(signs_of({1.0f, 1.0f, -1.0f}));
  EXPECT_EQ(sum.contributions(), 2u);
  EXPECT_EQ(sum.value(0), 2);
  EXPECT_EQ(sum.value(1), 0);
  EXPECT_EQ(sum.value(2), 0);
}

TEST(SignSumTest, FromSigns) {
  SignSum sum = SignSum::from_signs(signs_of({-1.0f, 1.0f}));
  EXPECT_EQ(sum.contributions(), 1u);
  EXPECT_EQ(sum.value(0), -1);
  EXPECT_EQ(sum.value(1), 1);
}

TEST(SignSumTest, MergeAddsValuesAndContributions) {
  SignSum a = SignSum::from_signs(signs_of({1.0f, 1.0f}));
  SignSum b = SignSum::from_signs(signs_of({1.0f, -1.0f}));
  b.accumulate(signs_of({1.0f, -1.0f}));
  a.merge(b);
  EXPECT_EQ(a.contributions(), 3u);
  EXPECT_EQ(a.value(0), 3);
  EXPECT_EQ(a.value(1), -1);
}

TEST(SignSumTest, MajorityTiesToPositive) {
  SignSum sum(2);
  sum.accumulate(signs_of({1.0f, -1.0f}));
  sum.accumulate(signs_of({-1.0f, -1.0f}));
  const BitVector majority = sum.majority();
  EXPECT_TRUE(majority.get(0));   // 0 ties to +
  EXPECT_FALSE(majority.get(1));  // −2
}

TEST(SignSumTest, MeanInto) {
  SignSum sum(2);
  sum.accumulate(signs_of({1.0f, -1.0f}));
  sum.accumulate(signs_of({1.0f, 1.0f}));
  std::vector<float> mean(2);
  sum.mean_into({mean.data(), 2});
  EXPECT_FLOAT_EQ(mean[0], 1.0f);
  EXPECT_FLOAT_EQ(mean[1], 0.0f);
}

TEST(SignSumTest, MeanOfZeroContributionsThrows) {
  SignSum sum(2);
  std::vector<float> mean(2);
  EXPECT_THROW(sum.mean_into({mean.data(), 2}), CheckError);
}

TEST(SignSumTest, ExtentMismatchThrows) {
  SignSum sum(3);
  EXPECT_THROW(sum.accumulate(BitVector(4)), CheckError);
  SignSum other(4);
  EXPECT_THROW(sum.merge(other), CheckError);
}

TEST(SignSumBitsTest, WidthFormula) {
  // ⌈log2(m+1)⌉ + 1.
  EXPECT_EQ(sign_sum_bits_per_element(1), 1u);
  EXPECT_EQ(sign_sum_bits_per_element(2), 3u);   // values in {−2,0,2}
  EXPECT_EQ(sign_sum_bits_per_element(3), 3u);
  EXPECT_EQ(sign_sum_bits_per_element(4), 4u);
  EXPECT_EQ(sign_sum_bits_per_element(7), 4u);
  EXPECT_EQ(sign_sum_bits_per_element(8), 5u);
  EXPECT_EQ(sign_sum_bits_per_element(32), 7u);
}

TEST(SignSumBitsTest, FixedWireBits) {
  SignSum sum(100);
  sum.accumulate(BitVector(100));
  sum.accumulate(BitVector(100));
  sum.accumulate(BitVector(100));
  EXPECT_EQ(sum.wire_bits_fixed(), 100u * 3u);
}

TEST(SignSumBitsTest, EliasBitsArePositiveAndDecodable) {
  SignSum sum(64);
  BitVector all_plus(64);
  all_plus.fill(true);
  sum.accumulate(all_plus);
  sum.accumulate(BitVector(64));  // all minus
  // Every value is 0 → zig-zag 1 → γ length 1 bit each.
  EXPECT_EQ(sum.wire_bits_elias(), 64u);
}

TEST(SignSumTest, ValuesSpanMatchesAccessors) {
  SignSum sum(3);
  sum.accumulate(signs_of({1.0f, -1.0f, 1.0f}));
  auto values = sum.values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[1], -1);
}

}  // namespace
}  // namespace marsit
