// Pins marsit_lint's rule registry: each rule R1–R5 has a fixture snippet
// that triggers it exactly once, the suppression mechanism is exercised in
// both its valid and malformed forms, and — the actual quality gate — the
// checked-in tree itself must lint clean.
//
// Fixtures are linted in-process via lint_source with synthetic repo paths;
// rule applicability is path-based, so the path chooses which rules see the
// snippet.  Fixture code lives in string literals, which the linter's lexer
// consumes whole — so this file cannot trip the clean-tree scan over tests/.

#include "marsit_lint/linter.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace marsit_lint {
namespace {

std::string describe(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& finding : findings) {
    out += format_finding(finding);
    out += '\n';
  }
  return out;
}

TEST(MarsitLintTest, RuleRegistryIsStable) {
  const auto& rules = all_rules();
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_TRUE(is_known_rule("rng-discipline"));
  EXPECT_TRUE(is_known_rule("determinism"));
  EXPECT_TRUE(is_known_rule("kernel-safety"));
  EXPECT_TRUE(is_known_rule("header-hygiene"));
  EXPECT_TRUE(is_known_rule("obs-gating"));
  EXPECT_FALSE(is_known_rule("suppression"));  // pseudo-rule, not allowable
}

TEST(MarsitLintTest, R1FlagsStdRngOnce) {
  const auto findings = lint_source(
      "src/data/fixture.cpp",
      "#include <random>\n"
      "int f() { std::mt19937 gen; return static_cast<int>(gen()); }\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(MarsitLintTest, R1FlagsLiteralSeedOnce) {
  const auto findings = lint_source(
      "src/sim/fixture.cpp", "marsit::Rng rng(12345);\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
}

TEST(MarsitLintTest, R1AcceptsDerivedSeed) {
  const auto findings = lint_source(
      "src/sim/fixture.cpp", "marsit::Rng rng(derive_seed(seed, 7));\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R1AcceptsSegmentAndChunkSeedHelpers) {
  // The sanctioned wrappers around derive_seed: the legacy per-chunk grid
  // and the reduce-scatter per-(segment, op) streams.
  EXPECT_TRUE(lint_source("src/core/fixture.cpp",
                          "Rng rng(segment_fold_seed(round_seed, 3));\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/fixture.cpp",
                          "Rng rng(segment_op_rng(segment_seed, 0));\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/dist/fixture.cpp",
                          "Rng rng(marsit_chunk_rng(round_seed, 2));\n")
                  .empty());
}

TEST(MarsitLintTest, R2FlagsWallClockOnce) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(MarsitLintTest, R2IgnoresTestsAndObs) {
  const std::string snippet = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("tests/fixture.cpp", snippet).empty());
  EXPECT_TRUE(lint_source("src/obs/fixture.cpp", snippet).empty());
}

TEST(MarsitLintTest, R3FlagsPlainIntShiftOnce) {
  const auto findings = lint_source(
      "src/compress/fixture.cpp", "int shifted(int k) { return 1 << k; }\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "kernel-safety");
}

TEST(MarsitLintTest, R3AcceptsSizedShiftAndStaticCast) {
  const auto findings = lint_source(
      "src/compress/fixture.cpp",
      "std::uint64_t bit(int k) { return std::uint64_t{1} << k; }\n"
      "int narrowed(double x) { return static_cast<int>(x); }\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R3FlagsCStyleCastAndRawNew) {
  const auto cast = lint_source("src/core/fixture.cpp",
                                "int narrowed(double x) { return (int)x; }\n");
  ASSERT_EQ(cast.size(), 1u) << describe(cast);
  EXPECT_EQ(cast[0].rule, "kernel-safety");

  const auto raw = lint_source("src/core/fixture.cpp",
                               "float* alloc() { return new float[4]; }\n");
  ASSERT_EQ(raw.size(), 1u) << describe(raw);
  EXPECT_EQ(raw[0].rule, "kernel-safety");

  // `= delete` is declaration syntax, not deallocation.
  const auto deleted = lint_source(
      "src/core/fixture.hpp",
      "#pragma once\n#include <cstddef>\n"
      "struct S { S(const S&) = delete; };\n");
  EXPECT_TRUE(deleted.empty()) << describe(deleted);
}

TEST(MarsitLintTest, R4FlagsUsingNamespaceOnce) {
  const auto findings = lint_source("src/nn/fixture.hpp",
                                    "#pragma once\nusing namespace std;\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "header-hygiene");
}

TEST(MarsitLintTest, R4FlagsMissingIncludeForStdSymbol) {
  const auto findings = lint_source(
      "src/nn/fixture.hpp",
      "#pragma once\nstd::vector<int> xs();\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "header-hygiene");

  const auto satisfied = lint_source(
      "src/nn/fixture.hpp",
      "#pragma once\n#include <vector>\nstd::vector<int> xs();\n");
  EXPECT_TRUE(satisfied.empty()) << describe(satisfied);
}

TEST(MarsitLintTest, R5FlagsUnguardedMetricOnce) {
  const auto findings = lint_source(
      "src/collectives/fixture.cpp",
      "void publish() {\n"
      "  static const obs::Counter rounds(\"sync.rounds\");\n"
      "  rounds.add(1.0);\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "obs-gating");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(MarsitLintTest, R5AcceptsGuardedMetric) {
  const auto findings = lint_source(
      "src/collectives/fixture.cpp",
      "void publish() {\n"
      "  if (obs::metrics_enabled()) {\n"
      "    static const obs::Counter rounds(\"sync.rounds\");\n"
      "    rounds.add(1.0);\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, TrailingSuppressionWithReasonSilencesFinding) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "auto t = std::chrono::steady_clock::now();"
      "  // marsit-lint: allow(determinism): fixture demonstrating "
      "suppression\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, StandaloneSuppressionCoversNextCodeLine) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "// marsit-lint: allow(determinism): fixture demonstrating "
      "suppression\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, SuppressionWithoutReasonIsItselfAFinding) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "// marsit-lint: allow(determinism)\n"
      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  // The malformed suppression is reported, and the finding it meant to
  // silence survives (order within one file is unspecified here).
  EXPECT_TRUE((findings[0].rule == "suppression" &&
               findings[1].rule == "determinism") ||
              (findings[0].rule == "determinism" &&
               findings[1].rule == "suppression"))
      << describe(findings);
}

TEST(MarsitLintTest, SuppressionOfUnknownRuleIsReported) {
  const auto findings = lint_source(
      "tests/fixture.cpp",
      "int x = 0;  // marsit-lint: allow(no-such-rule): stale comment\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "suppression");
}

TEST(MarsitLintTest, FixtureCodeInsideStringsNeverTriggers) {
  const auto findings = lint_source(
      "tests/fixture.cpp",
      "const char* snippet = \"std::mt19937 gen; (int)1.5;\";\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// The gate: the tree this test was built from lints clean.  CI also runs the
// CLI (`marsit_lint --check src tests bench examples tools`); this assertion
// keeps the property pinned for anyone running plain ctest.
TEST(MarsitLintTest, CheckedInTreeLintsClean) {
  const std::string root = MARSIT_LINT_SOURCE_ROOT;
  const auto findings =
      lint_paths({root + "/src", root + "/tests", root + "/bench",
                  root + "/examples", root + "/tools"});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

}  // namespace
}  // namespace marsit_lint
