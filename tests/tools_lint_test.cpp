// Pins marsit_lint's rule registry: each rule R1–R7 has a fixture snippet
// that triggers it exactly once, the suppression mechanism is exercised in
// both its valid and malformed forms, and — the actual quality gate — the
// checked-in tree itself must lint clean.
//
// Fixtures are linted in-process via lint_source with synthetic repo paths;
// rule applicability is path-based, so the path chooses which rules see the
// snippet.  Fixture code lives in string literals, which the linter's lexer
// consumes whole — so this file cannot trip the clean-tree scan over tests/.

#include "marsit_lint/linter.hpp"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "marsit_lint/layers.hpp"

namespace marsit_lint {
namespace {

std::string describe(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& finding : findings) {
    out += format_finding(finding);
    out += '\n';
  }
  return out;
}

/// Swaps the R7 layer graph for a fixture spec, restoring the committed
/// graph on scope exit so the clean-tree test sees the real DAG regardless
/// of test order.
class ScopedLayerGraph {
 public:
  explicit ScopedLayerGraph(std::string_view spec)
      : saved_(active_layer_graph()) {
    set_active_layer_graph(parse_layer_graph(spec));
  }
  ~ScopedLayerGraph() { set_active_layer_graph(std::move(saved_)); }

  ScopedLayerGraph(const ScopedLayerGraph&) = delete;
  ScopedLayerGraph& operator=(const ScopedLayerGraph&) = delete;

 private:
  LayerGraph saved_;
};

TEST(MarsitLintTest, RuleRegistryIsStable) {
  const auto& rules = all_rules();
  ASSERT_EQ(rules.size(), 7u);
  EXPECT_TRUE(is_known_rule("rng-discipline"));
  EXPECT_TRUE(is_known_rule("determinism"));
  EXPECT_TRUE(is_known_rule("kernel-safety"));
  EXPECT_TRUE(is_known_rule("header-hygiene"));
  EXPECT_TRUE(is_known_rule("obs-gating"));
  EXPECT_TRUE(is_known_rule("concurrency-discipline"));
  EXPECT_TRUE(is_known_rule("layering"));
  EXPECT_FALSE(is_known_rule("suppression"));  // pseudo-rule, not allowable
}

TEST(MarsitLintTest, R1FlagsStdRngOnce) {
  const auto findings = lint_source(
      "src/data/fixture.cpp",
      "#include <random>\n"
      "int f() { std::mt19937 gen; return static_cast<int>(gen()); }\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(MarsitLintTest, R1FlagsLiteralSeedOnce) {
  const auto findings = lint_source(
      "src/sim/fixture.cpp", "marsit::Rng rng(12345);\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
}

TEST(MarsitLintTest, R1AcceptsDerivedSeed) {
  const auto findings = lint_source(
      "src/sim/fixture.cpp", "marsit::Rng rng(derive_seed(seed, 7));\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R1AcceptsSegmentAndChunkSeedHelpers) {
  // The sanctioned wrappers around derive_seed: the legacy per-chunk grid
  // and the reduce-scatter per-(segment, op) streams.
  EXPECT_TRUE(lint_source("src/core/fixture.cpp",
                          "Rng rng(segment_fold_seed(round_seed, 3));\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/fixture.cpp",
                          "Rng rng(segment_op_rng(segment_seed, 0));\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/dist/fixture.cpp",
                          "Rng rng(marsit_chunk_rng(round_seed, 2));\n")
                  .empty());
}

TEST(MarsitLintTest, R2FlagsWallClockOnce) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(MarsitLintTest, R2IgnoresTestsAndObs) {
  const std::string snippet = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("tests/fixture.cpp", snippet).empty());
  EXPECT_TRUE(lint_source("src/obs/fixture.cpp", snippet).empty());
}

TEST(MarsitLintTest, R3FlagsPlainIntShiftOnce) {
  const auto findings = lint_source(
      "src/compress/fixture.cpp", "int shifted(int k) { return 1 << k; }\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "kernel-safety");
}

TEST(MarsitLintTest, R3AcceptsSizedShiftAndStaticCast) {
  const auto findings = lint_source(
      "src/compress/fixture.cpp",
      "std::uint64_t bit(int k) { return std::uint64_t{1} << k; }\n"
      "int narrowed(double x) { return static_cast<int>(x); }\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R3FlagsCStyleCastAndRawNew) {
  const auto cast = lint_source("src/core/fixture.cpp",
                                "int narrowed(double x) { return (int)x; }\n");
  ASSERT_EQ(cast.size(), 1u) << describe(cast);
  EXPECT_EQ(cast[0].rule, "kernel-safety");

  const auto raw = lint_source("src/core/fixture.cpp",
                               "float* alloc() { return new float[4]; }\n");
  ASSERT_EQ(raw.size(), 1u) << describe(raw);
  EXPECT_EQ(raw[0].rule, "kernel-safety");

  // `= delete` is declaration syntax, not deallocation.
  const auto deleted = lint_source(
      "src/core/fixture.hpp",
      "#pragma once\n#include <cstddef>\n"
      "struct S { S(const S&) = delete; };\n");
  EXPECT_TRUE(deleted.empty()) << describe(deleted);
}

TEST(MarsitLintTest, R4FlagsUsingNamespaceOnce) {
  const auto findings = lint_source("src/nn/fixture.hpp",
                                    "#pragma once\nusing namespace std;\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "header-hygiene");
}

TEST(MarsitLintTest, R4FlagsMissingIncludeForStdSymbol) {
  const auto findings = lint_source(
      "src/nn/fixture.hpp",
      "#pragma once\nstd::vector<int> xs();\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "header-hygiene");

  const auto satisfied = lint_source(
      "src/nn/fixture.hpp",
      "#pragma once\n#include <vector>\nstd::vector<int> xs();\n");
  EXPECT_TRUE(satisfied.empty()) << describe(satisfied);
}

TEST(MarsitLintTest, R5FlagsUnguardedMetricOnce) {
  const auto findings = lint_source(
      "src/collectives/fixture.cpp",
      "void publish() {\n"
      "  static const obs::Counter rounds(\"sync.rounds\");\n"
      "  rounds.add(1.0);\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "obs-gating");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(MarsitLintTest, R5AcceptsGuardedMetric) {
  const auto findings = lint_source(
      "src/collectives/fixture.cpp",
      "void publish() {\n"
      "  if (obs::metrics_enabled()) {\n"
      "    static const obs::Counter rounds(\"sync.rounds\");\n"
      "    rounds.add(1.0);\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// --- R6 concurrency-discipline ----------------------------------------------

TEST(MarsitLintTest, R6FlagsRawLockAndUnlock) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "void f(std::mutex& m) {\n"
      "  m.lock();\n"
      "  m.unlock();\n"
      "}\n");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "concurrency-discipline");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
}

TEST(MarsitLintTest, R6AcceptsLockCallsOnRaiiGuards) {
  // Hand-over-hand on a declared guard (MutexLock or a std guard) is the
  // sanctioned way to drop a lock around a long stage body.
  const auto findings = lint_source(
      "src/parallel/fixture.cpp",
      "void f(marsit::Mutex& m) {\n"
      "  marsit::MutexLock lock(m);\n"
      "  lock.unlock();\n"
      "  lock.lock();\n"
      "}\n"
      "void g(std::mutex& m) {\n"
      "  std::unique_lock<std::mutex> guard(m);\n"
      "  guard.unlock();\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R6SuppressedRawLockWithReasonIsSilenced) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "void f(std::mutex& m) {\n"
      "  m.lock();  // marsit-lint: allow(concurrency-discipline): fixture "
      "demonstrating suppression\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R6ExemptsTheAnnotationHeaderItself) {
  // util/thread_safety.hpp implements Mutex over std::mutex, so it is the
  // one file allowed raw lock()/unlock().
  const auto findings = lint_source(
      "src/util/thread_safety.hpp",
      "#pragma once\n"
      "#include <mutex>\n"
      "class Mutex {\n"
      "  std::mutex raw_;\n"
      " public:\n"
      "  void lock() { raw_.lock(); }\n"
      "  void unlock() { raw_.unlock(); }\n"
      "};\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R6FlagsThreadMemberWithoutDestructorInHeader) {
  const auto findings = lint_source(
      "src/net/fixture.hpp",
      "#pragma once\n"
      "#include <thread>\n"
      "struct Watcher { std::thread worker; };\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "concurrency-discipline");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(MarsitLintTest, R6AcceptsThreadMemberWithDeclaredDestructor) {
  // A header may defer the join to its .cpp as long as a destructor exists
  // to do it.
  const auto findings = lint_source(
      "src/net/fixture.hpp",
      "#pragma once\n"
      "#include <thread>\n"
      "struct Watcher {\n"
      "  ~Watcher();\n"
      "  std::thread worker;\n"
      "};\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R6FlagsLocalThreadWithoutJoin) {
  const auto findings = lint_source(
      "src/sim/fixture.cpp", "void f() { std::thread t(work); }\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "concurrency-discipline");

  const auto joined = lint_source(
      "src/sim/fixture.cpp",
      "void f() { std::thread t(work); t.join(); }\n");
  EXPECT_TRUE(joined.empty()) << describe(joined);

  const auto suppressed = lint_source(
      "src/sim/fixture.cpp",
      "// marsit-lint: allow(concurrency-discipline): fixture demonstrating "
      "suppression\n"
      "void f() { std::thread t(work); }\n");
  EXPECT_TRUE(suppressed.empty()) << describe(suppressed);
}

TEST(MarsitLintTest, R6FlagsDetachAnywhereInSrc) {
  const auto findings = lint_source(
      "src/sim/fixture.cpp", "void f(std::thread& t) { t.detach(); }\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "concurrency-discipline");

  const auto suppressed = lint_source(
      "src/sim/fixture.cpp",
      "void f(std::thread& t) {\n"
      "  t.detach();  // marsit-lint: allow(concurrency-discipline): fixture "
      "demonstrating suppression\n"
      "}\n");
  EXPECT_TRUE(suppressed.empty()) << describe(suppressed);

  // tests/ may detach (harness teardown owns the process lifetime).
  const auto in_tests = lint_source(
      "tests/fixture.cpp", "void f(std::thread& t) { t.detach(); }\n");
  EXPECT_TRUE(in_tests.empty()) << describe(in_tests);
}

TEST(MarsitLintTest, R6FlagsMutableStaticInThreadedLayerOnly) {
  const std::string snippet =
      "int counter() { static int count = 0; return ++count; }\n";
  const auto findings = lint_source("src/parallel/fixture.cpp", snippet);
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "concurrency-discipline");

  // tensor/ is single-threaded by contract; the sub-rule stays out.
  EXPECT_TRUE(lint_source("src/tensor/fixture.cpp", snippet).empty());

  const auto suppressed = lint_source(
      "src/parallel/fixture.cpp",
      "int counter() {\n"
      "  // marsit-lint: allow(concurrency-discipline): fixture "
      "demonstrating suppression\n"
      "  static int count = 0;\n"
      "  return ++count;\n"
      "}\n");
  EXPECT_TRUE(suppressed.empty()) << describe(suppressed);
}

TEST(MarsitLintTest, R6AcceptsConstAtomicAndGuardedStatics) {
  const auto findings = lint_source(
      "src/obs/fixture.cpp",
      "#include <atomic>\n"
      "int f() { static std::atomic<int> count{0}; return ++count; }\n"
      "int g() { static const int kBase = 7; return kBase; }\n"
      "int h() { static constexpr int kStep = 2; return kStep; }\n"
      "marsit::Mutex& mu() { static marsit::Mutex m; return m; }\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R6FlagsPredicateLessWait) {
  const auto findings = lint_source(
      "src/net/fixture.cpp", "void f() { cv.wait(lk); }\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "concurrency-discipline");

  const auto with_predicate = lint_source(
      "src/net/fixture.cpp",
      "void f() { cv.wait(lk, [&] { return ready; }); }\n");
  EXPECT_TRUE(with_predicate.empty()) << describe(with_predicate);

  const auto suppressed = lint_source(
      "src/net/fixture.cpp",
      "void f() {\n"
      "  cv.wait(lk);  // marsit-lint: allow(concurrency-discipline): "
      "fixture demonstrating suppression\n"
      "}\n");
  EXPECT_TRUE(suppressed.empty()) << describe(suppressed);
}

// --- R7 layering -------------------------------------------------------------

TEST(MarsitLintTest, R7FlagsBackEdgeInclude) {
  const ScopedLayerGraph graph("util:\nnet: util\ncore: net util\n");
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "#include \"core/api.hpp\"\n#include \"util/check.hpp\"\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("core/api.hpp"), std::string::npos)
      << findings[0].message;
}

TEST(MarsitLintTest, R7AcceptsAllowedAndIntraLayerIncludes) {
  const ScopedLayerGraph graph("util:\nnet: util\ncore: net util\n");
  const auto findings = lint_source(
      "src/core/fixture.cpp",
      "#include \"core/other.hpp\"\n"
      "#include \"net/transport.hpp\"\n"
      "#include \"util/check.hpp\"\n"
      "#include <vector>\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R7FlagsUndeclaredLayer) {
  const ScopedLayerGraph graph("util:\n");
  const auto findings =
      lint_source("src/mystery/fixture.cpp", "int x = 0;\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("mystery"), std::string::npos);
}

TEST(MarsitLintTest, R7SuppressionSilencesBackEdge) {
  const ScopedLayerGraph graph("util:\nnet: util\ncore: net util\n");
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "// marsit-lint: allow(layering): fixture demonstrating suppression\n"
      "#include \"core/api.hpp\"\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, R7StaysOutOfTestsAndTools) {
  const ScopedLayerGraph graph("util:\nnet: util\n");
  const auto findings = lint_source(
      "tests/fixture.cpp", "#include \"net/transport.hpp\"\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, LayerGraphParsesDepsCommentsAndBlanks) {
  const LayerGraph graph = parse_layer_graph(
      "# comment\n"
      "\n"
      "util:\n"
      "net: util  # trailing comment\n");
  EXPECT_TRUE(graph.ok()) << describe({});
  ASSERT_EQ(graph.deps.size(), 2u);
  EXPECT_EQ(graph.deps.at("net").count("util"), 1u);
  EXPECT_TRUE(graph.deps.at("util").empty());
}

TEST(MarsitLintTest, LayerGraphRejectsMalformedInput) {
  EXPECT_FALSE(parse_layer_graph("nonsense line\n").ok());
  EXPECT_FALSE(parse_layer_graph("a: b\n").ok());       // undeclared dep
  EXPECT_FALSE(parse_layer_graph("a: a\n").ok());       // self-dependency
  EXPECT_FALSE(parse_layer_graph("a:\na: \n").ok());    // duplicate layer
  EXPECT_FALSE(parse_layer_graph("a: b\nb: a\n").ok()); // cycle
}

TEST(MarsitLintTest, LayerGraphCycleIsNamedInErrors) {
  const LayerGraph graph = parse_layer_graph("a: b\nb: c\nc: a\n");
  ASSERT_FALSE(graph.ok());
  bool mentioned = false;
  for (const std::string& error : graph.errors) {
    mentioned = mentioned || error.find("cycle") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST(MarsitLintTest, R7ReportsBrokenGraphInsteadOfPassing) {
  const ScopedLayerGraph graph("a: b\nb: a\n");  // cycle -> graph has errors
  const auto findings = lint_source("src/net/fixture.cpp", "int x = 0;\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("unavailable"), std::string::npos);
}

TEST(MarsitLintTest, DefaultLayerGraphIsTheCommittedFile) {
  const LayerGraph& graph = active_layer_graph();
  ASSERT_TRUE(graph.ok()) << (graph.errors.empty() ? "" : graph.errors[0]);
  EXPECT_EQ(graph.deps.count("util"), 1u);
  EXPECT_EQ(graph.deps.count("core"), 1u);
  // The bottom layer depends on nothing; core may reach the collectives.
  EXPECT_TRUE(graph.deps.at("util").empty());
  EXPECT_EQ(graph.deps.at("core").count("collectives"), 1u);
}

// --- output formats ----------------------------------------------------------

TEST(MarsitLintTest, JsonOutputEscapesAndRoundTrips) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "determinism",
       "message with \"quotes\" and \\backslash"}};
  EXPECT_EQ(format_findings_json(findings),
            "[\n"
            "  {\"path\": \"src/a.cpp\", \"line\": 3, "
            "\"rule\": \"determinism\", "
            "\"message\": \"message with \\\"quotes\\\" and "
            "\\\\backslash\"}\n"
            "]\n");
  EXPECT_EQ(format_findings_json({}), "[]\n");
}

TEST(MarsitLintTest, TrailingSuppressionWithReasonSilencesFinding) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "auto t = std::chrono::steady_clock::now();"
      "  // marsit-lint: allow(determinism): fixture demonstrating "
      "suppression\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, StandaloneSuppressionCoversNextCodeLine) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "// marsit-lint: allow(determinism): fixture demonstrating "
      "suppression\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(MarsitLintTest, SuppressionWithoutReasonIsItselfAFinding) {
  const auto findings = lint_source(
      "src/net/fixture.cpp",
      "// marsit-lint: allow(determinism)\n"
      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  // The malformed suppression is reported, and the finding it meant to
  // silence survives (order within one file is unspecified here).
  EXPECT_TRUE((findings[0].rule == "suppression" &&
               findings[1].rule == "determinism") ||
              (findings[0].rule == "determinism" &&
               findings[1].rule == "suppression"))
      << describe(findings);
}

TEST(MarsitLintTest, SuppressionOfUnknownRuleIsReported) {
  const auto findings = lint_source(
      "tests/fixture.cpp",
      "int x = 0;  // marsit-lint: allow(no-such-rule): stale comment\n");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "suppression");
}

TEST(MarsitLintTest, FixtureCodeInsideStringsNeverTriggers) {
  const auto findings = lint_source(
      "tests/fixture.cpp",
      "const char* snippet = \"std::mt19937 gen; (int)1.5;\";\n");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// The gate: the tree this test was built from lints clean.  CI also runs the
// CLI (`marsit_lint --check src tests bench examples tools`); this assertion
// keeps the property pinned for anyone running plain ctest.
TEST(MarsitLintTest, CheckedInTreeLintsClean) {
  const std::string root = MARSIT_LINT_SOURCE_ROOT;
  const auto findings =
      lint_paths({root + "/src", root + "/tests", root + "/bench",
                  root + "/examples", root + "/tools"});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

}  // namespace
}  // namespace marsit_lint
