// Fault injection at the strategy level: membership faults re-form the
// reduction over the survivors, compensation state of absent workers is
// carried forward untouched, and a plan with no effective faults leaves
// outputs and timings bit-identical to no plan at all.  Also regression
// coverage for the sync-path bug sweep that rode along with the fault layer
// (Elias cache clamping, the sharded scratch reallocation guard, the
// measurement-only Elias sizing helper).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collectives/aggregators.hpp"
#include "core/sync_strategy.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

constexpr std::size_t kDim = 1500;
constexpr std::size_t kRounds = 4;

std::vector<std::vector<float>> make_inputs(std::size_t workers,
                                            std::size_t round) {
  std::vector<std::vector<float>> inputs(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    inputs[w].resize(kDim);
    Rng rng(derive_seed(5000 + round, w));
    fill_normal({inputs[w].data(), kDim}, rng, 0.0f, 1.0f);
  }
  return inputs;
}

WorkerSpans as_spans(const std::vector<std::vector<float>>& inputs) {
  WorkerSpans spans;
  for (const auto& in : inputs) {
    spans.emplace_back(in.data(), in.size());
  }
  return spans;
}

SyncConfig base_config(std::size_t workers,
                       MarParadigm paradigm = MarParadigm::kRing) {
  SyncConfig config;
  config.num_workers = workers;
  config.paradigm = paradigm;
  config.seed = 77;
  return config;
}

struct RunTrace {
  std::vector<float> outputs;            // kRounds × kDim, concatenated
  std::vector<double> completion;        // per-round completion seconds
  std::vector<std::size_t> active;       // per-round surviving workers
};

/// Runs kRounds rounds; absent workers still hand in their (ignored) input,
/// exactly as the trainer does.
RunTrace run_rounds(SyncMethod method, SyncConfig config) {
  auto strategy = make_sync_strategy(method, config);
  RunTrace trace;
  std::vector<float> out(kDim);
  for (std::size_t t = 0; t < kRounds; ++t) {
    const auto inputs = make_inputs(config.num_workers, t);
    const SyncStepResult step =
        strategy->synchronize(as_spans(inputs), {out.data(), out.size()});
    trace.outputs.insert(trace.outputs.end(), out.begin(), out.end());
    trace.completion.push_back(step.timing.completion_seconds);
    trace.active.push_back(step.active_workers);
  }
  return trace;
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << label;
}

const SyncMethod kValueMethods[] = {
    SyncMethod::kPsgd,     SyncMethod::kSignSgdMv, SyncMethod::kEfSignSgd,
    SyncMethod::kSsdm,     SyncMethod::kMarsit,
};

TEST(FaultInjectionTest, IneffectivePlanIsBitIdentical) {
  // A plan whose drop-out windows never intersect the executed rounds takes
  // the membership code path but must change nothing — outputs and timings
  // bit-identical to the default empty plan.
  SyncConfig faulty = base_config(4);
  faulty.fault_plan.dropouts.push_back({2, 100, 200});
  for (const SyncMethod method : kValueMethods) {
    const RunTrace clean = run_rounds(method, base_config(4));
    const RunTrace armed = run_rounds(method, faulty);
    expect_bit_identical(armed.outputs, clean.outputs,
                         sync_method_name(method));
    EXPECT_EQ(armed.completion, clean.completion) << sync_method_name(method);
    EXPECT_EQ(armed.active, std::vector<std::size_t>(kRounds, 4));
  }
}

TEST(FaultInjectionTest, DegradedRingMatchesNativeSmallerRing) {
  // Worker 3 of a 4-worker ring sits out every round: outputs, per-round
  // timings and the fold's rng consumption must all match a native 3-worker
  // ring — the reduction genuinely re-forms, it doesn't just skip a hop.
  SyncConfig degraded = base_config(4);
  degraded.fault_plan.dropouts.push_back({3, 0, kRounds});
  for (const SyncMethod method : kValueMethods) {
    const RunTrace expect = run_rounds(method, base_config(3));
    const RunTrace actual = run_rounds(method, degraded);
    expect_bit_identical(actual.outputs, expect.outputs,
                         sync_method_name(method));
    EXPECT_EQ(actual.completion, expect.completion)
        << sync_method_name(method);
    EXPECT_EQ(actual.active, std::vector<std::size_t>(kRounds, 3));
  }
}

TEST(FaultInjectionTest, DegradedTorusMatchesNativeSmallerTorus) {
  // A 3×2 torus losing its last row re-forms as the 2×2 torus over the four
  // survivors (whole rows survive, so the torus shape is preserved).
  SyncConfig degraded = base_config(6, MarParadigm::kTorus2d);
  degraded.torus_rows = 3;
  degraded.torus_cols = 2;
  degraded.fault_plan.dropouts.push_back({4, 0, kRounds});
  degraded.fault_plan.dropouts.push_back({5, 0, kRounds});

  SyncConfig native = base_config(4, MarParadigm::kTorus2d);
  native.torus_rows = 2;
  native.torus_cols = 2;

  const RunTrace expect = run_rounds(SyncMethod::kMarsit, native);
  const RunTrace actual = run_rounds(SyncMethod::kMarsit, degraded);
  expect_bit_identical(actual.outputs, expect.outputs, "Marsit-TAR");
  EXPECT_EQ(actual.completion, expect.completion);
}

TEST(FaultInjectionTest, MajorityVoteRunsOverSurvivorsOnly) {
  // Workers 2 and 3 vote −1 but are absent; the surviving {+1, +1} majority
  // must win every element.  If the dropped votes leaked in, the 2–2 tie
  // would zero (or flip) elements.
  SyncConfig config = base_config(4);
  config.fault_plan.dropouts.push_back({2, 0, 1});
  config.fault_plan.dropouts.push_back({3, 0, 1});
  auto strategy = make_sync_strategy(SyncMethod::kSignSgdMv, config);

  std::vector<std::vector<float>> inputs(4, std::vector<float>(kDim, 1.0f));
  inputs[2].assign(kDim, -1.0f);
  inputs[3].assign(kDim, -1.0f);
  std::vector<float> out(kDim);
  const SyncStepResult step =
      strategy->synchronize(as_spans(inputs), {out.data(), out.size()});
  EXPECT_EQ(step.active_workers, 2u);
  const float eta_s = MethodOptions{}.eta_s;
  for (std::size_t i = 0; i < kDim; ++i) {
    ASSERT_EQ(out[i], eta_s) << "element " << i;
  }
}

TEST(FaultInjectionTest, QuorumReadmitsWorkersBelowTwoSurvivors) {
  // Every worker is scheduled out; the quorum rule re-admits the two
  // lowest-indexed ones so the collective stays well-formed.
  SyncConfig config = base_config(4);
  for (std::size_t w = 0; w < 4; ++w) {
    config.fault_plan.dropouts.push_back({w, 0, kRounds});
  }
  const RunTrace actual = run_rounds(SyncMethod::kPsgd, config);
  EXPECT_EQ(actual.active, std::vector<std::size_t>(kRounds, 2));
  const RunTrace expect = run_rounds(SyncMethod::kPsgd, base_config(2));
  expect_bit_identical(actual.outputs, expect.outputs, "quorum PSGD");
}

TEST(FaultInjectionTest, AbsentWorkerStateCarriedForwardUntouched) {
  // While worker 3 is absent (round 1), its input must be ignored and its
  // compensation state left alone: corrupting the absent round's input
  // changes nothing, in that round or any later one.
  SyncConfig config = base_config(4);
  config.fault_plan.dropouts.push_back({3, 1, 2});
  for (const SyncMethod method :
       {SyncMethod::kMarsit, SyncMethod::kEfSignSgd}) {
    auto clean = make_sync_strategy(method, config);
    auto corrupted = make_sync_strategy(method, config);
    std::vector<float> out_clean(kDim), out_corrupted(kDim);
    for (std::size_t t = 0; t < kRounds; ++t) {
      auto inputs = make_inputs(4, t);
      clean->synchronize(as_spans(inputs),
                         {out_clean.data(), out_clean.size()});
      if (t == 1) {
        inputs[3].assign(kDim, 1e6f);  // garbage only the absent worker sees
      }
      corrupted->synchronize(as_spans(inputs),
                             {out_corrupted.data(), out_corrupted.size()});
      expect_bit_identical(out_corrupted, out_clean, sync_method_name(method));
    }
  }
}

TEST(FaultInjectionTest, BernoulliDropoutRoundsAreDeterministic) {
  SyncConfig config = base_config(6);
  config.fault_plan.seed = 13;
  config.fault_plan.dropout_rate = 0.3;
  const RunTrace first = run_rounds(SyncMethod::kSignSgdMv, config);
  const RunTrace replay = run_rounds(SyncMethod::kSignSgdMv, config);
  expect_bit_identical(replay.outputs, first.outputs, "replay");
  EXPECT_EQ(replay.active, first.active);
  // The schedule must actually degrade some rounds at this rate/length.
  bool any_degraded = false;
  for (const std::size_t m : first.active) {
    EXPECT_GE(m, 2u);
    EXPECT_LE(m, 6u);
    any_degraded = any_degraded || m < 6;
  }
  EXPECT_TRUE(any_degraded);
}

// --- satellite regressions --------------------------------------------------------

TEST(EliasCacheTest, ClampsContributionsIntoCacheRange) {
  const std::vector<double> cache = {2.0, 2.5, 2.9};
  // contributions == 0 used to wrap to SIZE_MAX and index out of bounds.
  EXPECT_DOUBLE_EQ(elias_cache_bits_per_element(cache, 0), 2.0);
  EXPECT_DOUBLE_EQ(elias_cache_bits_per_element(cache, 1), 2.0);
  EXPECT_DOUBLE_EQ(elias_cache_bits_per_element(cache, 3), 2.9);
  // Membership can grow past the count the cache was measured at (a worker
  // returning after a degraded refresh round): clamp to the last entry.
  EXPECT_DOUBLE_EQ(elias_cache_bits_per_element(cache, 5), 2.9);
  EXPECT_DOUBLE_EQ(elias_cache_bits_per_element({}, 4), 2.0);
}

TEST(EliasMeasureTest, MatchesAggregateSignSumSizes) {
  // The measurement-only helper must agree entry-for-entry with the sizes
  // aggregate_sign_sum records while folding — with and without the
  // precomputed final sum (the reuse path the refresh rounds take).
  std::vector<BitVector> signs;
  Rng rng(9);
  for (std::size_t w = 0; w < 5; ++w) {
    BitVector bits(700);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      bits.set(i, rng.bernoulli(0.4));
    }
    signs.push_back(std::move(bits));
  }
  const SignSumAggregate reference = aggregate_sign_sum(signs, true);
  EXPECT_EQ(measure_elias_bits_per_element(signs),
            reference.elias_bits_per_element);
  EXPECT_EQ(measure_elias_bits_per_element(signs, &reference.sum),
            reference.elias_bits_per_element);
}

TEST(FaultInjectionTest, ShardedScratchReallocatedWhenMembershipGrows) {
  // S2 regression: the scratch sign vectors are sized by the previous
  // round's survivor count; when membership grows back on an Elias refresh
  // round the guard must notice the worker-count change, not just the
  // dimension.  Round 1's output must match a fault-free run's round 1
  // (signSGD keeps no cross-round value state).
  SyncConfig config = base_config(4);
  config.use_elias = true;
  config.elias_refresh_interval = 1;  // refresh (and materialize) every round
  SyncConfig faulty = config;
  faulty.fault_plan.dropouts.push_back({3, 0, 1});

  auto clean = make_sync_strategy(SyncMethod::kSignSgdMv, config);
  auto degraded = make_sync_strategy(SyncMethod::kSignSgdMv, faulty);
  std::vector<float> out_clean(kDim), out_degraded(kDim);
  for (std::size_t t = 0; t < 2; ++t) {
    const auto inputs = make_inputs(4, t);
    clean->synchronize(as_spans(inputs),
                       {out_clean.data(), out_clean.size()});
    degraded->synchronize(as_spans(inputs),
                          {out_degraded.data(), out_degraded.size()});
  }
  expect_bit_identical(out_degraded, out_clean,
                       "post-recovery refresh round");
}

// --- elastic rejoin at the K-round flush -------------------------------------------

/// Runs `rounds` rounds of Marsit with flush period K = 4, recording
/// outputs and per-round step results.
struct RejoinTrace {
  std::vector<float> outputs;
  std::vector<SyncStepResult> steps;
};

RejoinTrace run_marsit_rejoin(const FaultPlan& plan, std::size_t rounds) {
  SyncConfig config = base_config(4);
  config.fault_plan = plan;
  MethodOptions options;
  options.full_precision_period = 4;  // flushes at rounds 0, 4, 8
  auto strategy = make_sync_strategy(SyncMethod::kMarsit, config, options);
  RejoinTrace trace;
  std::vector<float> out(kDim);
  for (std::size_t t = 0; t < rounds; ++t) {
    const auto inputs = make_inputs(4, t);
    trace.steps.push_back(
        strategy->synchronize(as_spans(inputs), {out.data(), out.size()}));
    trace.outputs.insert(trace.outputs.end(), out.begin(), out.end());
  }
  return trace;
}

TEST(FaultInjectionTest, RejoinAtFlushWaitsForBarrierAndReportsRejoins) {
  // Worker 2 drops at round 2 with to_round = 3; the rejoin_at_flush window
  // holds it out through round 3 and re-admits it exactly at the flush
  // (round 4), where the strategy reports a flush rejoin.
  FaultPlan plan;
  plan.dropouts.push_back({2, 2, 3, true});
  const RejoinTrace trace = run_marsit_rejoin(plan, 6);
  const std::vector<std::size_t> active = {4, 4, 3, 3, 4, 4};
  for (std::size_t t = 0; t < active.size(); ++t) {
    EXPECT_EQ(trace.steps[t].active_workers, active[t]) << "round " << t;
  }
  EXPECT_EQ(trace.steps[4].rejoined_workers, 1u);
  EXPECT_EQ(trace.steps[4].flush_rejoined_workers, 1u);
  EXPECT_EQ(trace.steps[3].rejoined_workers, 0u);
  EXPECT_EQ(trace.steps[5].rejoined_workers, 0u);

  // Without the flag the worker returns at round 3 — a plain carry-forward
  // rejoin, exactly the PR-2 semantics.
  FaultPlan carry;
  carry.dropouts.push_back({2, 2, 3, false});
  const RejoinTrace plain = run_marsit_rejoin(carry, 6);
  EXPECT_EQ(plain.steps[2].active_workers, 3u);
  EXPECT_EQ(plain.steps[3].active_workers, 4u);
  EXPECT_EQ(plain.steps[3].rejoined_workers, 1u);
  EXPECT_EQ(plain.steps[3].flush_rejoined_workers, 0u);
}

TEST(FaultInjectionTest, FlushRejoinDiscardsStaleCompensation) {
  // Worker 2 accumulates compensation on one-bit rounds 1–2, then drops
  // over [3, 4).  Both plans re-admit it at round 4 (the flush), but only
  // the rejoin_at_flush one discards its stale residual at the barrier —
  // so the runs agree bit-for-bit up to the flush and differ exactly there
  // (the flush folds c into the mean).
  FaultPlan barrier;
  barrier.dropouts.push_back({2, 3, 4, true});
  FaultPlan carry;
  carry.dropouts.push_back({2, 3, 4, false});
  const RejoinTrace discarded = run_marsit_rejoin(barrier, 5);
  const RejoinTrace carried = run_marsit_rejoin(carry, 5);

  const auto round_span = [](const RejoinTrace& t, std::size_t r) {
    return std::vector<float>(t.outputs.begin() + r * kDim,
                              t.outputs.begin() + (r + 1) * kDim);
  };
  for (std::size_t t = 0; t < 4; ++t) {
    expect_bit_identical(round_span(discarded, t), round_span(carried, t),
                         "pre-flush round");
  }
  EXPECT_NE(round_span(discarded, 4), round_span(carried, 4))
      << "flush rejoin must discard the stale compensation the carry run "
         "folds in";
  EXPECT_EQ(discarded.steps[4].flush_rejoined_workers, 1u);
  EXPECT_EQ(carried.steps[4].flush_rejoined_workers, 0u);
}

// --- corruption demotion -----------------------------------------------------------

TEST(FaultInjectionTest, DemotedSenderNeverFoldsIntoAggregate) {
  // The aggregate of a corruption-demoting run must equal the aggregate of
  // a run whose explicit drop-out windows mirror the demotion pattern: a
  // demoted sender is excluded exactly like an absent worker (values; the
  // timing additionally carries the burned retransmissions).
  FaultPlan corrupt;
  corrupt.seed = 31;
  corrupt.corruption_rate = 0.5;
  corrupt.max_retries = 1;  // demotion probability 0.25 per (worker, round)
  corrupt.retry_timeout = 1e-6;

  FaultPlan mirrored;  // membership-only twin of the demotion pattern
  std::size_t demotions = 0;
  for (std::size_t t = 0; t < kRounds; ++t) {
    for (std::size_t w = 0; w < 4; ++w) {
      if (corrupt.sender_demoted(w, t)) {
        mirrored.dropouts.push_back({w, t, t + 1});
        ++demotions;
      }
    }
  }
  ASSERT_GT(demotions, 0u) << "seed produced no demotions; pick another";

  SyncConfig corrupt_config = base_config(4);
  corrupt_config.fault_plan = corrupt;
  SyncConfig mirrored_config = base_config(4);
  mirrored_config.fault_plan = mirrored;
  for (const SyncMethod method : kValueMethods) {
    const RunTrace demoted = run_rounds(method, corrupt_config);
    const RunTrace absent = run_rounds(method, mirrored_config);
    expect_bit_identical(demoted.outputs, absent.outputs,
                         sync_method_name(method));
    EXPECT_EQ(demoted.active, absent.active) << sync_method_name(method);
  }
}

TEST(FaultInjectionTest, DemotionChargesBurnedRetransmissions) {
  FaultPlan plan;
  plan.seed = 31;
  plan.corruption_rate = 0.5;
  plan.max_retries = 1;
  plan.retry_timeout = 1e-6;
  SyncConfig config = base_config(4);
  config.fault_plan = plan;
  auto strategy = make_sync_strategy(SyncMethod::kSignSgdMv, config);
  std::vector<float> out(kDim);
  for (std::size_t t = 0; t < kRounds; ++t) {
    const auto inputs = make_inputs(4, t);
    const SyncStepResult step =
        strategy->synchronize(as_spans(inputs), {out.data(), out.size()});
    std::size_t expected_demoted = 0;
    for (std::size_t w = 0; w < 4; ++w) {
      expected_demoted += plan.sender_demoted(w, t) ? 1 : 0;
    }
    EXPECT_EQ(step.demoted_workers, expected_demoted) << "round " << t;
    if (expected_demoted > 0) {
      // Each demoted sender burned (max_retries + 1) full payloads (plus
      // CRC footers) before giving up; those bits are charged as
      // retransmitted on top of the delivered traffic.
      const double per_sender =
          2.0 * (step.bits_per_element * static_cast<double>(kDim) + 32.0);
      EXPECT_GE(step.timing.retransmitted_wire_bits,
                per_sender * static_cast<double>(expected_demoted))
          << "round " << t;
      EXPECT_GE(step.timing.retransmissions, 2 * expected_demoted)
          << "round " << t;
    }
  }
}

TEST(FaultInjectionTest, SaturatedCorruptionFallsBackToQuorum) {
  // With every sender demoted every round, the quorum rule re-admits the
  // two lowest-indexed workers (modeled as retransmit-until-clean) so the
  // collective stays well-formed.
  FaultPlan plan;
  plan.corruption_rate = 0.999999;
  plan.max_retries = 1;
  plan.retry_timeout = 1e-6;
  SyncConfig config = base_config(4);
  config.fault_plan = plan;
  const RunTrace trace = run_rounds(SyncMethod::kPsgd, config);
  EXPECT_EQ(trace.active, std::vector<std::size_t>(kRounds, 2));
  const RunTrace expect = run_rounds(SyncMethod::kPsgd, base_config(2));
  expect_bit_identical(trace.outputs, expect.outputs, "quorum after demotion");
}

}  // namespace
}  // namespace marsit
