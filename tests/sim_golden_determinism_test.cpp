// Golden determinism regression (ISSUE satellite): a fixed-seed,
// quickstart-shaped training run per strategy, hashed (final parameters +
// TrainResult accounting) and asserted against a committed golden file —
// and asserted identical across thread-pool sizes 1, 4, and hardware.
//
// The pool-size invariance check is unconditional: it guards the sharded
// pipelines' (seed, round, chunk) rng discipline.  The golden-file check
// pins the exact numeric trajectory so an accidental change to rng
// consumption order, fold order, or accounting shows up as a diff — not as
// a silent drift.  To regenerate after an *intentional* change:
//
//   MARSIT_REGEN_GOLDEN=1 ./build/tests/sim_golden_determinism_test
//
// then commit tests/golden/train_golden.txt with the behavior change.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

/// FNV-1a over raw bit patterns: float/size_t values hash by representation,
/// so two runs hash equal iff they are bit-identical.
class Fnv1a {
 public:
  void add_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void add(float v) { add_bytes(&v, sizeof(v)); }
  void add(double v) { add_bytes(&v, sizeof(v)); }
  void add(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct GoldenCase {
  const char* key;
  SyncMethod method;
};

constexpr GoldenCase kCases[] = {
    {"psgd-rar", SyncMethod::kPsgd},
    {"signsgd-rar", SyncMethod::kSignSgdMv},
    {"ef-signsgd-rar", SyncMethod::kEfSignSgd},
    {"ssdm-rar", SyncMethod::kSsdm},
    {"cascading-rar", SyncMethod::kCascading},
    {"marsit-rar", SyncMethod::kMarsit},
};

/// One quickstart-shaped run (4 workers on a ring, small MLP on the digit
/// dataset) with the given pool; returns the FNV digest of the final
/// parameters and the TrainResult accounting.
std::uint64_t run_digest(SyncMethod method, ThreadPool* pool) {
  SyntheticDigits digits;
  SyncConfig sync_config;
  sync_config.num_workers = 4;
  sync_config.paradigm = MarParadigm::kRing;
  sync_config.seed = 2024;
  sync_config.pool = pool;

  MethodOptions options;
  options.eta_s = 2e-3f;
  if (method == SyncMethod::kMarsit) {
    options.full_precision_period = 5;
  }
  auto strategy = make_sync_strategy(method, sync_config, options);

  TrainerConfig config;
  config.batch_size_per_worker = 16;
  config.eta_l = 0.05f;
  config.rounds = 12;
  config.eval_interval = 6;
  config.eval_samples = 128;
  config.seed = 99;
  config.track_matching_rate = true;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {24}, digits.num_classes());
  };
  DistributedTrainer trainer(digits, factory, *strategy, config);
  const TrainResult result = trainer.train();

  std::vector<float> params(trainer.param_count());
  trainer.copy_params_into({params.data(), params.size()});

  Fnv1a hash;
  for (const float p : params) {
    hash.add(p);
  }
  hash.add(static_cast<std::uint64_t>(result.rounds_completed));
  hash.add(result.sim_seconds);
  hash.add(result.total_wire_bits);
  hash.add(result.mean_bits_per_element);
  hash.add(result.mean_matching_rate);
  hash.add(result.mean_active_workers);
  hash.add(result.final_test_accuracy);
  hash.add(result.best_test_accuracy);
  hash.add(result.mean_round_phases.compute);
  hash.add(result.mean_round_phases.compression);
  hash.add(result.mean_round_phases.communication);
  hash.add(static_cast<std::uint64_t>(result.diverged ? 1 : 0));
  return hash.digest();
}

std::string golden_path() {
  return std::string(MARSIT_GOLDEN_DIR) + "/train_golden.txt";
}

struct GoldenFile {
  /// Toolchain + flags that produced the digests.  Float trajectories are
  /// deterministic per build configuration, not across configurations
  /// (-ffp-contract, -march, libm all shift the last ulps), so digests only
  /// compare when the fingerprints match.
  std::string fingerprint;
  std::map<std::string, std::uint64_t> digests;
};

GoldenFile load_golden() {
  GoldenFile golden;
  std::ifstream in(golden_path());
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "fingerprint") {
      fields >> std::ws;
      std::getline(fields, golden.fingerprint);
      continue;
    }
    std::string hex;
    if (fields >> hex) {
      golden.digests[key] = std::strtoull(hex.c_str(), nullptr, 16);
    }
  }
  return golden;
}

std::string to_hex(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex << v;
  return out.str();
}

TEST(GoldenDeterminismTest, PoolSizeInvariantAndMatchesGolden) {
  set_log_level(LogLevel::kError);
  ThreadPool pool1(1), pool4(4), pool_hw(0);

  std::map<std::string, std::uint64_t> digests;
  for (const GoldenCase& c : kCases) {
    const std::uint64_t d1 = run_digest(c.method, &pool1);
    const std::uint64_t d4 = run_digest(c.method, &pool4);
    const std::uint64_t dh = run_digest(c.method, &pool_hw);
    EXPECT_EQ(d1, d4) << c.key << ": pool sizes 1 vs 4 diverge";
    EXPECT_EQ(d1, dh) << c.key << ": pool sizes 1 vs hardware diverge";
    digests[c.key] = d1;
  }

  if (std::getenv("MARSIT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << "fingerprint " << MARSIT_GOLDEN_FINGERPRINT << "\n";
    for (const auto& [key, digest] : digests) {
      out << key << " " << to_hex(digest) << "\n";
    }
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  const GoldenFile golden = load_golden();
  ASSERT_FALSE(golden.digests.empty())
      << "missing/empty " << golden_path()
      << " — run with MARSIT_REGEN_GOLDEN=1 to create it";
  if (golden.fingerprint != MARSIT_GOLDEN_FINGERPRINT) {
    GTEST_SKIP() << "golden digests were produced by a different build "
                    "configuration (\""
                 << golden.fingerprint << "\" vs \""
                 << MARSIT_GOLDEN_FINGERPRINT
                 << "\"); pool-size invariance was still asserted above.";
  }
  for (const auto& [key, digest] : digests) {
    const auto it = golden.digests.find(key);
    ASSERT_NE(it, golden.digests.end()) << "no golden entry for " << key;
    EXPECT_EQ(digest, it->second)
        << key << ": numeric trajectory changed (got " << to_hex(digest)
        << ", golden " << to_hex(it->second)
        << ").  If intentional, regenerate with MARSIT_REGEN_GOLDEN=1.";
  }
}

}  // namespace
}  // namespace marsit
