// TraceSession + exporters: span bookkeeping, the JsonWriter, chrome-trace
// JSON validity, the per-round JSONL stream, and the end-to-end acceptance
// contract — span counts match rounds × (compute + sync) and the JSONL
// wire-bit stream sums exactly to TrainResult::total_wire_bits.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "obs/exporter.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "sim/trainer.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace marsit::obs {
namespace {

// --- minimal JSON validity checker -----------------------------------------
// Recursive-descent parser that accepts exactly the JSON grammar (objects,
// arrays, strings with escapes, numbers, true/false/null) without building
// any values.  Strict enough to catch the classic emitter bugs: trailing
// commas, unescaped quotes, bare NaN/inf, unbalanced brackets.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!parse_value()) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool parse_value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
        return parse_literal("true");
      case 'f':
        return parse_literal("false");
      case 'n':
        return parse_literal("null");
      default:
        return parse_number();
    }
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriterTest, EmitsValidNestedStructure) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.kv("name", "hello \"world\"\n\t\x01");
    json.kv("count", std::size_t{42});
    json.kv("ratio", 0.1);
    json.kv("flag", true);
    json.key("items");
    json.begin_array();
    json.value(1);
    json.value(-2);
    json.value(2.5e-9);
    json.end_array();
    json.end_object();
  }
  EXPECT_TRUE(JsonChecker(out.str()).valid()) << out.str();
  EXPECT_NE(out.str().find("\\u0001"), std::string::npos);
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  for (double v : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0}) {
    std::ostringstream out;
    {
      JsonWriter json(out);
      json.value(v);
    }
    EXPECT_EQ(std::stod(out.str()), v) << out.str();
  }
}

TEST(JsonWriterTest, StructuralMisuseThrows) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  EXPECT_THROW(json.value(1.0), CheckError);  // value without key
  EXPECT_THROW(json.end_array(), CheckError);  // mismatched close
}

// --- TraceSession -----------------------------------------------------------

TEST(TraceSessionTest, CountsSpansByCategory) {
  TraceSession session;
  session.add_span("round 0", "round", 0.0, 2.0, 0);
  session.add_span("sync", "sync", 1.0, 2.0, 0);
  session.add_instant("elias-refresh", "refresh", 1.5, 0);
  EXPECT_EQ(session.span_count(), 3u);
  EXPECT_EQ(session.span_count("round"), 1u);
  EXPECT_EQ(session.span_count("sync"), 1u);
  EXPECT_EQ(session.span_count("refresh"), 1u);
  EXPECT_EQ(session.span_count("nope"), 0u);
}

TEST(TraceSessionTest, RejectsBackwardsSpans) {
  TraceSession session;
  EXPECT_THROW(session.add_span("bad", "sync", 2.0, 1.0, 0), CheckError);
}

TEST(TraceSessionTest, TimeOffsetRoundTrips) {
  TraceSession session;
  EXPECT_DOUBLE_EQ(session.time_offset(), 0.0);
  session.set_time_offset(3.25);
  EXPECT_DOUBLE_EQ(session.time_offset(), 3.25);
}

TEST(TraceSessionTest, InstallMakesCurrentNonNull) {
  EXPECT_EQ(TraceSession::current(), nullptr);
  {
    TraceSession session;
    TraceSession::install(&session);
    EXPECT_EQ(TraceSession::current(), &session);
    EXPECT_TRUE(tracing_enabled());
    TraceSession::install(nullptr);
  }
  EXPECT_FALSE(tracing_enabled());
}

// --- exporters ---------------------------------------------------------------

TEST(ExporterTest, ChromeTraceIsValidJsonWithExpectedEvents) {
  TraceSession session;
  session.add_span("round 0", "round", 0.0, 2.0, 0);
  session.add_span("compute", "compute", 0.0, 1.0, 0);
  session.add_span("sync", "sync", 1.0, 2.0, 0);
  session.add_span("hop 0→1", "hop", 1.0, 1.5, 1);
  session.add_instant("elias-refresh", "refresh", 1.0, 0);
  RoundRecord record;
  record.round = 0;
  record.set("wire_bits", 128.0);
  session.add_round_record(std::move(record));

  std::ostringstream out;
  write_chrome_trace(session, out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  // 4 complete events, 1 instant, plus thread_name metadata for the two
  // used tracks.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), 4u);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_occurrences(text, "\"thread_name\""), 2u);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"roundMetrics\""), std::string::npos);
}

TEST(ExporterTest, RoundJsonlOneValidObjectPerLine) {
  TraceSession session;
  for (std::size_t t = 0; t < 3; ++t) {
    RoundRecord record;
    record.round = t;
    record.set("wire_bits", 100.0 * static_cast<double>(t));
    record.set("sync_seconds", 0.5);
    session.add_round_record(std::move(record));
  }
  std::ostringstream out;
  write_round_jsonl(session, out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

// --- end-to-end acceptance ---------------------------------------------------

TEST(ObsEndToEndTest, TrainerSessionMeetsAcceptanceContract) {
  set_log_level(LogLevel::kError);
  auto& registry = MetricsRegistry::global();
  registry.reset();
  set_metrics_enabled(true);
  TraceSession session;
  TraceSession::install(&session);

  SyntheticDigits digits;
  SyncConfig sync_config;
  sync_config.num_workers = 4;
  sync_config.paradigm = MarParadigm::kRing;
  sync_config.seed = 7;
  PsgdSync strategy(sync_config);
  TrainerConfig config;
  config.rounds = 5;
  config.eval_interval = 0;
  config.eval_samples = 64;
  config.eta_l = 0.05f;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {16}, digits.num_classes());
  };
  DistributedTrainer trainer(digits, factory, strategy, config);
  const TrainResult result = trainer.train();

  TraceSession::install(nullptr);
  set_metrics_enabled(false);

  const std::size_t rounds = result.rounds_completed;
  ASSERT_EQ(rounds, 5u);
  // Acceptance: span count = rounds × (round + compute + sync), plus
  // per-hop spans and the collectives' phase spans.
  EXPECT_EQ(session.span_count("round"), rounds);
  EXPECT_EQ(session.span_count("compute"), rounds);
  EXPECT_EQ(session.span_count("sync"), rounds);
  // Ring all-reduce: reduce-scatter + all-gather per round.
  EXPECT_EQ(session.span_count("phase"), 2 * rounds);
  // 2(M−1) hops per phase per... in total 2(M−1)·M messages per round.
  EXPECT_EQ(session.span_count("hop"),
            rounds * 2 * (sync_config.num_workers - 1) *
                sync_config.num_workers);

  // Spans nest: every compute/sync span sits inside its round span, hops
  // inside the sync window.
  const std::vector<TraceSpan> spans = session.spans();
  double max_end = 0.0;
  for (const TraceSpan& span : spans) {
    EXPECT_GE(span.end_seconds, span.start_seconds);
    max_end = std::max(max_end, span.end_seconds);
  }
  EXPECT_NEAR(max_end, result.sim_seconds, 1e-9);

  // Acceptance: the JSONL per-round wire-bit stream sums exactly to
  // TrainResult::total_wire_bits.
  const std::vector<RoundRecord> records = session.rounds();
  ASSERT_EQ(records.size(), rounds);
  double wire_bits = 0.0;
  for (const RoundRecord& record : records) {
    bool found = false;
    for (const auto& [key, value] : record.fields) {
      if (key == "wire_bits") {
        wire_bits += value;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "round record missing wire_bits";
  }
  EXPECT_DOUBLE_EQ(wire_bits, result.total_wire_bits);

  // Metrics agree with the trainer's own accounting.
  EXPECT_DOUBLE_EQ(registry.value("sync.wire_bits"), result.total_wire_bits);
  EXPECT_DOUBLE_EQ(registry.value("sync.rounds"),
                   static_cast<double>(rounds));
  EXPECT_DOUBLE_EQ(registry.value("trainer.rounds"),
                   static_cast<double>(rounds));
  EXPECT_DOUBLE_EQ(registry.value("sync.active_workers"), 4.0);
  const MetricSnapshot hop_seconds = registry.find("net.hop_seconds");
  EXPECT_EQ(hop_seconds.count,
            static_cast<std::uint64_t>(session.span_count("hop")));
  registry.reset();
}

TEST(ObsEndToEndTest, CorruptionRunWireBitsStreamSumsToTotal) {
  // ISSUE satellite: under a corruption plan every message grows by the
  // CRC footer, and that charge must land exactly once — the per-round
  // JSONL stream still sums bit-for-bit to TrainResult::total_wire_bits,
  // and the footer-inflated total stays above the fault-free payload.
  set_log_level(LogLevel::kError);
  TraceSession session;
  TraceSession::install(&session);

  SyntheticDigits digits;
  SyncConfig sync_config;
  sync_config.num_workers = 4;
  sync_config.paradigm = MarParadigm::kRing;
  sync_config.seed = 7;
  sync_config.fault_plan.corruption_rate = 0.2;
  sync_config.fault_plan.retry_timeout = 0.01;
  MarsitSync strategy(sync_config, MarsitOptions{});
  TrainerConfig config;
  config.rounds = 6;
  config.eval_interval = 0;
  config.eval_samples = 64;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {16}, digits.num_classes());
  };
  DistributedTrainer trainer(digits, factory, strategy, config);
  const TrainResult result = trainer.train();
  TraceSession::install(nullptr);

  const std::vector<RoundRecord> records = session.rounds();
  ASSERT_EQ(records.size(), result.rounds_completed);
  double wire_bits = 0.0;
  double retransmitted = 0.0;
  for (const RoundRecord& record : records) {
    for (const auto& [key, value] : record.fields) {
      if (key == "wire_bits") {
        wire_bits += value;
      } else if (key == "retransmitted_wire_bits") {
        retransmitted += value;
      }
    }
  }
  EXPECT_DOUBLE_EQ(wire_bits, result.total_wire_bits);
  EXPECT_DOUBLE_EQ(retransmitted, result.total_retransmitted_wire_bits);

  // Footer-exactly-once pin: at a vanishing corruption rate no retry or
  // demotion ever draws, so the whole-run total is the fault-free payload
  // plus exactly one 32-bit footer per message — 2(M−1)·M ring messages
  // per round.
  SyncConfig clean_config = sync_config;
  clean_config.fault_plan = FaultPlan{};
  MarsitSync clean_strategy(clean_config, MarsitOptions{});
  DistributedTrainer clean_trainer(digits, factory, clean_strategy, config);
  const TrainResult clean = clean_trainer.train();

  SyncConfig tiny_config = sync_config;
  tiny_config.fault_plan = FaultPlan{};
  tiny_config.fault_plan.corruption_rate = 1e-12;
  tiny_config.fault_plan.retry_timeout = 0.01;
  MarsitSync tiny_strategy(tiny_config, MarsitOptions{});
  DistributedTrainer tiny_trainer(digits, factory, tiny_strategy, config);
  const TrainResult tiny = tiny_trainer.train();
  const double messages_per_round = 2.0 * 3.0 * 4.0;
  EXPECT_DOUBLE_EQ(tiny.total_wire_bits,
                   clean.total_wire_bits +
                       32.0 * messages_per_round *
                           static_cast<double>(clean.rounds_completed));
  EXPECT_DOUBLE_EQ(tiny.total_retransmitted_wire_bits, 0.0);
}

TEST(ObsEndToEndTest, DisabledRunRecordsNothing) {
  set_log_level(LogLevel::kError);
  auto& registry = MetricsRegistry::global();
  registry.reset();
  ASSERT_FALSE(metrics_enabled());
  ASSERT_EQ(TraceSession::current(), nullptr);

  SyntheticDigits digits;
  SyncConfig sync_config;
  sync_config.num_workers = 2;
  sync_config.paradigm = MarParadigm::kRing;
  PsgdSync strategy(sync_config);
  TrainerConfig config;
  config.rounds = 2;
  config.eval_interval = 0;
  config.eval_samples = 64;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {16}, digits.num_classes());
  };
  DistributedTrainer trainer(digits, factory, strategy, config);
  trainer.train();

  for (const MetricSnapshot& snap : registry.scrape()) {
    EXPECT_EQ(snap.count, 0u) << snap.name << " published while disabled";
  }
}

}  // namespace
}  // namespace marsit::obs
