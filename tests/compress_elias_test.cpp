#include "compress/elias.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

TEST(BitWriterTest, WritesAndCountsBits) {
  BitWriter writer;
  writer.write_bit(true);
  writer.write_bit(false);
  writer.write_bit(true);
  EXPECT_EQ(writer.bit_count(), 3u);

  BitReader reader(writer.bytes(), writer.bit_count());
  EXPECT_TRUE(reader.read_bit());
  EXPECT_FALSE(reader.read_bit());
  EXPECT_TRUE(reader.read_bit());
  EXPECT_TRUE(reader.exhausted());
}

TEST(BitWriterTest, MsbFirstRoundTrip) {
  BitWriter writer;
  writer.write_bits_msb_first(0b10110, 5);
  BitReader reader(writer.bytes(), writer.bit_count());
  EXPECT_EQ(reader.read_bits_msb_first(5), 0b10110u);
}

TEST(BitReaderTest, ExhaustionThrows) {
  BitWriter writer;
  writer.write_bit(true);
  BitReader reader(writer.bytes(), writer.bit_count());
  reader.read_bit();
  EXPECT_THROW(reader.read_bit(), CheckError);
}

TEST(EliasGammaTest, KnownCodeLengths) {
  // γ(1)=1 bit, γ(2..3)=3, γ(4..7)=5, γ(8..15)=7.
  EXPECT_EQ(elias_gamma_length(1), 1u);
  EXPECT_EQ(elias_gamma_length(2), 3u);
  EXPECT_EQ(elias_gamma_length(3), 3u);
  EXPECT_EQ(elias_gamma_length(4), 5u);
  EXPECT_EQ(elias_gamma_length(7), 5u);
  EXPECT_EQ(elias_gamma_length(8), 7u);
}

TEST(EliasGammaTest, RejectsZero) {
  BitWriter writer;
  EXPECT_THROW(elias_gamma_encode(0, writer), CheckError);
  EXPECT_THROW(elias_gamma_length(0), CheckError);
}

class EliasRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EliasRoundTrip, GammaRoundTrips) {
  const std::uint64_t n = GetParam();
  BitWriter writer;
  elias_gamma_encode(n, writer);
  EXPECT_EQ(writer.bit_count(), elias_gamma_length(n));
  BitReader reader(writer.bytes(), writer.bit_count());
  EXPECT_EQ(elias_gamma_decode(reader), n);
  EXPECT_TRUE(reader.exhausted());
}

TEST_P(EliasRoundTrip, DeltaRoundTrips) {
  const std::uint64_t n = GetParam();
  BitWriter writer;
  elias_delta_encode(n, writer);
  EXPECT_EQ(writer.bit_count(), elias_delta_length(n));
  BitReader reader(writer.bytes(), writer.bit_count());
  EXPECT_EQ(elias_delta_decode(reader), n);
  EXPECT_TRUE(reader.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Values, EliasRoundTrip,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 7ull,
                                           8ull, 100ull, 255ull, 256ull,
                                           65535ull, 1ull << 20,
                                           (1ull << 32) + 5));

TEST(EliasTest, SequenceRoundTrip) {
  Rng rng(10);
  std::vector<std::uint64_t> values;
  BitWriter writer;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t n = 1 + rng.next_below(10000);
    values.push_back(n);
    elias_gamma_encode(n, writer);
  }
  BitReader reader(writer.bytes(), writer.bit_count());
  for (std::uint64_t expected : values) {
    ASSERT_EQ(elias_gamma_decode(reader), expected);
  }
}

TEST(EliasTest, DeltaShorterThanGammaForLargeValues) {
  EXPECT_LT(elias_delta_length(1u << 20), elias_gamma_length(1u << 20));
}

TEST(ZigZagTest, MapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_map(0), 1u);
  EXPECT_EQ(zigzag_map(-1), 2u);
  EXPECT_EQ(zigzag_map(1), 3u);
  EXPECT_EQ(zigzag_map(-2), 4u);
  EXPECT_EQ(zigzag_map(2), 5u);
}

TEST(ZigZagTest, Bijection) {
  for (std::int64_t v = -100; v <= 100; ++v) {
    EXPECT_EQ(zigzag_unmap(zigzag_map(v)), v) << "value " << v;
  }
}

TEST(ZigZagTest, UnmapRejectsZero) {
  EXPECT_THROW(zigzag_unmap(0), CheckError);
}

TEST(EliasSignedTest, SignedSequenceRoundTrip) {
  std::vector<std::int32_t> values{0, -1, 1, -5, 5, 100, -100, 0, 0, 7};
  BitWriter writer;
  const std::size_t bits = elias_gamma_encode_signed(
      {values.data(), values.size()}, writer);
  EXPECT_EQ(bits, writer.bit_count());
  BitReader reader(writer.bytes(), writer.bit_count());
  const auto decoded = elias_gamma_decode_signed(reader, values.size());
  EXPECT_EQ(decoded, values);
}

TEST(EliasSignedTest, NearZeroDataCompressesBelowFixedWidth) {
  // Sign sums concentrated near zero (the common case for i.i.d. gradients)
  // must beat the ⌈log2(M+1)⌉+1 fixed width; that is why the paper bothers
  // with Elias coding.
  Rng rng(11);
  std::vector<std::int32_t> values(4096);
  for (auto& v : values) {
    // Sum of 32 random ±1: mean 0, sd ≈ 5.7 — like a 32-worker sign-sum.
    int sum = 0;
    for (int i = 0; i < 32; ++i) {
      sum += rng.bernoulli(0.5) ? 1 : -1;
    }
    v = sum;
  }
  BitWriter writer;
  const std::size_t bits = elias_gamma_encode_signed(
      {values.data(), values.size()}, writer);
  const std::size_t fixed_bits = values.size() * 7;  // ⌈log2 33⌉ + 1
  EXPECT_LT(bits, fixed_bits);
}

}  // namespace
}  // namespace marsit
