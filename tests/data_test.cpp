#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "data/synthetic_digits.hpp"
#include "data/synthetic_images.hpp"
#include "data/synthetic_sentiment.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace marsit {
namespace {

template <typename DatasetT>
void expect_deterministic(const DatasetT& dataset) {
  std::vector<float> a(dataset.sample_size()), b(dataset.sample_size());
  const std::size_t label_a = dataset.fill_sample(12345, {a.data(), a.size()});
  const std::size_t label_b = dataset.fill_sample(12345, {b.data(), b.size()});
  EXPECT_EQ(label_a, label_b);
  EXPECT_EQ(a, b);
}

template <typename DatasetT>
void expect_label_balance(const DatasetT& dataset, std::size_t samples) {
  std::map<std::size_t, std::size_t> counts;
  std::vector<float> buffer(dataset.sample_size());
  for (std::size_t i = 0; i < samples; ++i) {
    ++counts[dataset.fill_sample(i, {buffer.data(), buffer.size()})];
  }
  const double expected =
      static_cast<double>(samples) / dataset.num_classes();
  for (const auto& [label, count] : counts) {
    EXPECT_LT(label, dataset.num_classes());
    EXPECT_NEAR(static_cast<double>(count), expected,
                5.0 * std::sqrt(expected))
        << "label " << label;
  }
  EXPECT_EQ(counts.size(), dataset.num_classes());
}

TEST(SyntheticDigitsTest, DeterministicAndBalanced) {
  SyntheticDigits digits;
  expect_deterministic(digits);
  expect_label_balance(digits, 20000);
}

TEST(SyntheticDigitsTest, GeometryAndRange) {
  SyntheticDigits digits;
  EXPECT_EQ(digits.sample_size(), 14u * 14u);
  EXPECT_EQ(digits.num_classes(), 10u);
  EXPECT_EQ(digits.image_dims().channels, 1u);
  std::vector<float> sample(digits.sample_size());
  digits.fill_sample(0, {sample.data(), sample.size()});
  EXPECT_TRUE(all_finite({sample.data(), sample.size()}));
  // Lit glyph pixels exist.
  EXPECT_GT(max_abs({sample.data(), sample.size()}), 0.3f);
}

TEST(SyntheticDigitsTest, ClassesAreSeparableByNearestPrototype) {
  // Build per-class mean images from one index range and classify samples
  // from a disjoint range by nearest prototype: accuracy must be far above
  // chance (the dataset is learnable).
  SyntheticDigits digits;
  const std::size_t d = digits.sample_size();
  std::vector<std::vector<double>> prototypes(10,
                                              std::vector<double>(d, 0.0));
  std::vector<std::size_t> counts(10, 0);
  std::vector<float> buffer(d);
  for (std::size_t i = 0; i < 5000; ++i) {
    const std::size_t label = digits.fill_sample(i, {buffer.data(), d});
    for (std::size_t j = 0; j < d; ++j) {
      prototypes[label][j] += buffer[j];
    }
    ++counts[label];
  }
  for (std::size_t c = 0; c < 10; ++c) {
    ASSERT_GT(counts[c], 0u);
    for (auto& v : prototypes[c]) {
      v /= static_cast<double>(counts[c]);
    }
  }
  std::size_t correct = 0;
  const std::size_t test_samples = 1000;
  for (std::size_t i = 0; i < test_samples; ++i) {
    const std::size_t label =
        digits.fill_sample(100000 + i, {buffer.data(), d});
    double best = 1e300;
    std::size_t best_class = 0;
    for (std::size_t c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = buffer[j] - prototypes[c][j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_class = c;
      }
    }
    correct += best_class == label;
  }
  // Nearest-prototype is translation-sensitive, so it underuses the data; a
  // conv net does far better (see sim_trainer_test).  Chance level is 0.1.
  EXPECT_GT(static_cast<double>(correct) / test_samples, 0.5);
}

TEST(SyntheticImagesTest, DeterministicAndBalanced) {
  SyntheticImages images;
  expect_deterministic(images);
  expect_label_balance(images, 20000);
}

TEST(SyntheticImagesTest, GeometryMatchesConfig) {
  SyntheticImagesConfig config;
  config.num_classes = 7;
  config.channels = 2;
  config.height = 10;
  config.width = 12;
  SyntheticImages images(config);
  EXPECT_EQ(images.sample_size(), 2u * 10u * 12u);
  EXPECT_EQ(images.num_classes(), 7u);
  EXPECT_EQ(images.image_dims().height, 10u);
}

TEST(SyntheticImagesTest, ImagenetLikeConfigIsBigger) {
  const auto config = SyntheticImagesConfig::imagenet_like();
  EXPECT_GT(config.num_classes, 10u);
  EXPECT_GT(config.height, 16u);
  SyntheticImages images(config);
  expect_deterministic(images);
}

TEST(SyntheticImagesTest, DistinctClassesHaveDistinctTextures) {
  // Noise-free samples of different classes must differ much more than two
  // noise-free samples of the same class at different translations differ
  // from the class mean... keep it simple: cross-class distance > 0.
  SyntheticImagesConfig config;
  config.noise_stddev = 0.0f;
  config.max_translation = 0.0f;
  config.amplitude_jitter = 0.0f;
  SyntheticImages images(config);
  std::vector<float> a(images.sample_size()), b(images.sample_size());
  // Find two indices with different labels.
  std::size_t la = images.fill_sample(0, {a.data(), a.size()});
  std::size_t i = 1;
  std::size_t lb = la;
  while (lb == la) {
    lb = images.fill_sample(i++, {b.data(), b.size()});
  }
  Tensor diff(images.sample_size());
  sub({a.data(), a.size()}, {b.data(), b.size()}, diff.span());
  EXPECT_GT(l2_norm(diff.span()), 1.0f);
}

TEST(SyntheticImagesTest, RejectsDegenerateConfig) {
  SyntheticImagesConfig config;
  config.num_classes = 1;
  EXPECT_THROW(SyntheticImages{config}, CheckError);
}

TEST(SyntheticSentimentTest, DeterministicAndBalanced) {
  SyntheticSentiment sentiment;
  expect_deterministic(sentiment);
  expect_label_balance(sentiment, 20000);
}

TEST(SyntheticSentimentTest, TokensStayInVocab) {
  SyntheticSentiment sentiment;
  std::vector<float> tokens(sentiment.sample_size());
  for (std::size_t i = 0; i < 200; ++i) {
    sentiment.fill_sample(i, {tokens.data(), tokens.size()});
    for (float t : tokens) {
      ASSERT_GE(t, 0.0f);
      ASSERT_LT(t, static_cast<float>(sentiment.vocab_size()));
      ASSERT_EQ(t, std::floor(t));  // integral ids
    }
  }
}

TEST(SyntheticSentimentTest, SentimentLexiconsCorrelateWithLabels) {
  SyntheticSentimentConfig config;
  SyntheticSentiment sentiment(config);
  std::vector<float> tokens(sentiment.sample_size());
  std::size_t pos_hits_in_pos = 0, pos_hits_in_neg = 0;
  std::size_t pos_docs = 0, neg_docs = 0;
  for (std::size_t i = 0; i < 4000; ++i) {
    const std::size_t label =
        sentiment.fill_sample(i, {tokens.data(), tokens.size()});
    std::size_t positive_tokens = 0;
    for (float t : tokens) {
      if (t < static_cast<float>(config.lexicon)) {
        ++positive_tokens;
      }
    }
    if (label == 1) {
      pos_hits_in_pos += positive_tokens;
      ++pos_docs;
    } else {
      pos_hits_in_neg += positive_tokens;
      ++neg_docs;
    }
  }
  const double rate_pos =
      static_cast<double>(pos_hits_in_pos) / (pos_docs * config.seq_len);
  const double rate_neg =
      static_cast<double>(pos_hits_in_neg) / (neg_docs * config.seq_len);
  EXPECT_GT(rate_pos, 2.0 * rate_neg);
}

TEST(SyntheticSentimentTest, RejectsDegenerateConfig) {
  SyntheticSentimentConfig config;
  config.vocab_size = 100;
  config.lexicon = 60;  // 2·60 > 100
  EXPECT_THROW(SyntheticSentiment{config}, CheckError);
}

TEST(ShardedSamplerTest, DeterministicPerWorkerAndRound) {
  SyntheticDigits digits;
  ShardedSampler sampler(digits, 4, 8, 10000, 1000, 99);
  Batch a, b;
  sampler.worker_batch(2, 5, a);
  sampler.worker_batch(2, 5, b);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.inputs.span()[0], b.inputs.span()[0]);

  Batch c;
  sampler.worker_batch(3, 5, c);
  EXPECT_NE(a.labels, c.labels);  // different worker, different draw
}

TEST(ShardedSamplerTest, BatchGeometry) {
  SyntheticDigits digits;
  ShardedSampler sampler(digits, 2, 16, 10000, 1000, 100);
  Batch batch;
  sampler.worker_batch(0, 0, batch);
  EXPECT_EQ(batch.size(), 16u);
  EXPECT_EQ(batch.inputs.size(), 16u * digits.sample_size());
}

TEST(ShardedSamplerTest, TestBatchComesFromHeldOutRange) {
  // Train draws must never collide with test indices: verify by checking a
  // test sample differs from every possible train index's sample... cheaper
  // proxy: the sampler's test indices start past the train range, so the
  // same block always reproduces identically.
  SyntheticDigits digits;
  ShardedSampler sampler(digits, 2, 4, 1000, 100, 101);
  Batch a, b;
  sampler.test_batch(32, 0, a);
  sampler.test_batch(32, 0, b);
  EXPECT_EQ(a.labels, b.labels);
  Batch c;
  sampler.test_batch(32, 1, c);
  EXPECT_NE(a.labels, c.labels);
}

TEST(ShardedSamplerTest, ValidatesArguments) {
  SyntheticDigits digits;
  EXPECT_THROW(ShardedSampler(digits, 0, 8, 100, 10, 1), CheckError);
  EXPECT_THROW(ShardedSampler(digits, 2, 0, 100, 10, 1), CheckError);
  EXPECT_THROW(ShardedSampler(digits, 2, 200, 100, 10, 1), CheckError);
  ShardedSampler sampler(digits, 2, 8, 100, 10, 1);
  Batch batch;
  EXPECT_THROW(sampler.worker_batch(2, 0, batch), CheckError);
}

}  // namespace
}  // namespace marsit
