#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace marsit {
namespace {

TEST(SgdOptimizerTest, IdentityTransform) {
  SgdOptimizer opt;
  std::vector<float> grad{1.0f, -2.0f, 3.0f};
  std::vector<float> direction(3);
  opt.transform({grad.data(), 3}, {direction.data(), 3});
  EXPECT_EQ(direction, grad);
}

TEST(MomentumOptimizerTest, VelocityRecursion) {
  MomentumOptimizer opt(0.5f);
  std::vector<float> grad{1.0f};
  std::vector<float> direction(1);
  opt.transform({grad.data(), 1}, {direction.data(), 1});
  EXPECT_FLOAT_EQ(direction[0], 1.0f);  // v1 = 0.5·0 + 1
  opt.transform({grad.data(), 1}, {direction.data(), 1});
  EXPECT_FLOAT_EQ(direction[0], 1.5f);  // v2 = 0.5·1 + 1
  opt.transform({grad.data(), 1}, {direction.data(), 1});
  EXPECT_FLOAT_EQ(direction[0], 1.75f);
}

TEST(MomentumOptimizerTest, RejectsBadMu) {
  EXPECT_THROW(MomentumOptimizer(1.0f), CheckError);
  EXPECT_THROW(MomentumOptimizer(-0.1f), CheckError);
}

TEST(AdamOptimizerTest, FirstStepIsSignLikeUnitStep) {
  // With bias correction, step 1 gives m̂ = g, v̂ = g², so direction =
  // g/(|g|+ε) ≈ sign(g).
  AdamOptimizer opt;
  std::vector<float> grad{0.3f, -0.7f};
  std::vector<float> direction(2);
  opt.transform({grad.data(), 2}, {direction.data(), 2});
  EXPECT_NEAR(direction[0], 1.0f, 1e-4f);
  EXPECT_NEAR(direction[1], -1.0f, 1e-4f);
}

TEST(AdamOptimizerTest, MatchesReferenceImplementation) {
  const float b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
  AdamOptimizer opt(b1, b2, eps);
  std::vector<float> direction(1);

  double m = 0.0, v = 0.0;
  const std::vector<float> grads{0.5f, -0.25f, 1.0f, 0.0f, 2.0f};
  for (std::size_t step = 1; step <= grads.size(); ++step) {
    const double g = grads[step - 1];
    m = b1 * m + (1.0 - b1) * g;
    v = b2 * v + (1.0 - b2) * g * g;
    const double m_hat = m / (1.0 - std::pow(b1, step));
    const double v_hat = v / (1.0 - std::pow(b2, step));
    const double expected = m_hat / (std::sqrt(v_hat) + eps);

    std::vector<float> grad{grads[step - 1]};
    opt.transform({grad.data(), 1}, {direction.data(), 1});
    EXPECT_NEAR(direction[0], expected, 1e-4) << "step " << step;
  }
}

TEST(AdamOptimizerTest, RejectsBadHyperparameters) {
  EXPECT_THROW(AdamOptimizer(1.0f, 0.999f, 1e-8f), CheckError);
  EXPECT_THROW(AdamOptimizer(0.9f, 1.0f, 1e-8f), CheckError);
  EXPECT_THROW(AdamOptimizer(0.9f, 0.999f, 0.0f), CheckError);
}

TEST(CloneFreshTest, ClonesStartStateless) {
  MomentumOptimizer opt(0.9f);
  std::vector<float> grad{1.0f};
  std::vector<float> direction(1);
  opt.transform({grad.data(), 1}, {direction.data(), 1});
  opt.transform({grad.data(), 1}, {direction.data(), 1});

  auto fresh = opt.clone_fresh();
  fresh->transform({grad.data(), 1}, {direction.data(), 1});
  EXPECT_FLOAT_EQ(direction[0], 1.0f);  // no inherited velocity
}

TEST(FactoryTest, BuildsEachKind) {
  EXPECT_EQ(make_optimizer(OptimizerKind::kSgd)->name(), "SGD");
  EXPECT_EQ(make_optimizer(OptimizerKind::kMomentum)->name(), "Momentum");
  EXPECT_EQ(make_optimizer(OptimizerKind::kAdam)->name(), "Adam");
}

TEST(OptimizerTest, StateResizesWithDimension) {
  // Dimension change mid-stream (new model) must not crash; state resets.
  MomentumOptimizer opt(0.9f);
  std::vector<float> g1{1.0f}, d1(1);
  opt.transform({g1.data(), 1}, {d1.data(), 1});
  std::vector<float> g2{1.0f, 2.0f}, d2(2);
  opt.transform({g2.data(), 2}, {d2.data(), 2});
  EXPECT_FLOAT_EQ(d2[0], 1.0f);
  EXPECT_FLOAT_EQ(d2[1], 2.0f);
}

}  // namespace
}  // namespace marsit
