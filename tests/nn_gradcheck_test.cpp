// Finite-difference gradient verification for every layer and for the loss:
// the single most load-bearing test in the repository, since every
// experiment rests on these gradients being correct.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/residual.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

/// Scalar probe: f(x, θ) = Σ_i y_i(x, θ) · probe_i, whose analytic gradients
/// are exactly what backward(probe) returns.
double probe_forward(Layer& layer, std::span<const float> x,
                     std::size_t batch, std::span<const float> probe) {
  std::vector<float> y(batch * layer.out_size());
  layer.forward(x, batch, {y.data(), y.size()});
  double total = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    total += static_cast<double>(y[i]) * static_cast<double>(probe[i]);
  }
  return total;
}

struct GradCheckOptions {
  float epsilon = 1e-2f;
  double rel_tolerance = 2e-2;
  double abs_tolerance = 2e-3;
  bool check_inputs = true;  // Embedding has no input gradient
};

void gradcheck(Layer& layer, std::size_t batch, std::uint64_t seed,
               GradCheckOptions options = {}) {
  Rng rng(seed);
  layer.init(rng);

  std::vector<float> x(batch * layer.in_size());
  fill_normal({x.data(), x.size()}, rng, 0.0f, 1.0f);
  std::vector<float> probe(batch * layer.out_size());
  fill_normal({probe.data(), probe.size()}, rng, 0.0f, 1.0f);

  // Analytic gradients.
  layer.zero_grads();
  std::vector<float> y(batch * layer.out_size());
  layer.forward({x.data(), x.size()}, batch, {y.data(), y.size()});
  std::vector<float> dx(batch * layer.in_size());
  layer.backward({probe.data(), probe.size()}, batch, {dx.data(), dx.size()});
  std::vector<float> analytic_param_grads(layer.grads().begin(),
                                          layer.grads().end());

  auto expect_match = [&](double analytic, double numeric,
                          const char* what, std::size_t index) {
    const double scale =
        std::max({std::fabs(analytic), std::fabs(numeric), 1.0});
    EXPECT_NEAR(analytic, numeric,
                options.abs_tolerance + options.rel_tolerance * scale)
        << what << "[" << index << "]";
  };

  // Input gradients by central differences.
  if (options.check_inputs) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const float saved = x[i];
      x[i] = saved + options.epsilon;
      const double plus =
          probe_forward(layer, {x.data(), x.size()}, batch,
                        {probe.data(), probe.size()});
      x[i] = saved - options.epsilon;
      const double minus =
          probe_forward(layer, {x.data(), x.size()}, batch,
                        {probe.data(), probe.size()});
      x[i] = saved;
      const double numeric =
          (plus - minus) / (2.0 * static_cast<double>(options.epsilon));
      expect_match(dx[i], numeric, "dx", i);
    }
  }

  // Parameter gradients by central differences.
  auto params = layer.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float saved = params[i];
    params[i] = saved + options.epsilon;
    const double plus = probe_forward(layer, {x.data(), x.size()}, batch,
                                      {probe.data(), probe.size()});
    params[i] = saved - options.epsilon;
    const double minus = probe_forward(layer, {x.data(), x.size()}, batch,
                                       {probe.data(), probe.size()});
    params[i] = saved;
    const double numeric =
        (plus - minus) / (2.0 * static_cast<double>(options.epsilon));
    expect_match(analytic_param_grads[i], numeric, "dparam", i);
  }
}

TEST(GradCheckTest, Linear) {
  Linear layer(7, 5);
  gradcheck(layer, 3, 1001);
}

TEST(GradCheckTest, LinearWithoutBias) {
  Linear layer(4, 6, /*with_bias=*/false);
  gradcheck(layer, 2, 1002);
}

TEST(GradCheckTest, Relu) {
  // Keep inputs away from the kink: with N(0,1) draws and ε=1e-2 the chance
  // of crossing is small; a fixed seed keeps the test deterministic.
  Relu layer(11);
  gradcheck(layer, 4, 1003);
}

TEST(GradCheckTest, Flatten) {
  Flatten layer(9);
  gradcheck(layer, 2, 1004);
}

TEST(GradCheckTest, Conv2dNoPadding) {
  Conv2d layer({2, 5, 5}, 3, /*kernel=*/3, /*stride=*/1, /*padding=*/0);
  gradcheck(layer, 2, 1005);
}

TEST(GradCheckTest, Conv2dWithPadding) {
  Conv2d layer({1, 4, 4}, 2, 3, 1, 1);
  gradcheck(layer, 2, 1006);
}

TEST(GradCheckTest, Conv2dStrided) {
  Conv2d layer({2, 6, 6}, 2, 3, 2, 1);
  gradcheck(layer, 2, 1007);
}

TEST(GradCheckTest, MaxPool) {
  MaxPool2d layer({2, 4, 4}, 2);
  gradcheck(layer, 2, 1008);
}

TEST(GradCheckTest, MaxPoolOverlapping) {
  MaxPool2d layer({1, 5, 5}, 3, /*stride=*/2);
  gradcheck(layer, 2, 1009);
}

TEST(GradCheckTest, GlobalAvgPool) {
  GlobalAvgPool layer({3, 4, 4});
  gradcheck(layer, 2, 1010);
}

TEST(GradCheckTest, MeanPool) {
  MeanPool layer(5, 6);
  gradcheck(layer, 3, 1011);
}

TEST(GradCheckTest, ResidualBlock) {
  ResidualConvBlock layer({2, 4, 4});
  gradcheck(layer, 2, 1012);
}

TEST(GradCheckTest, EmbeddingParamsOnly) {
  Embedding layer(13, 4, 6);
  // Token-id inputs: integers in [0, vocab); no input gradient exists.
  Rng rng(1013);
  layer.init(rng);
  const std::size_t batch = 2;
  std::vector<float> x(batch * 6);
  for (auto& id : x) {
    id = static_cast<float>(rng.next_below(13));
  }
  std::vector<float> probe(batch * layer.out_size());
  fill_normal({probe.data(), probe.size()}, rng, 0.0f, 1.0f);

  layer.zero_grads();
  std::vector<float> y(batch * layer.out_size());
  layer.forward({x.data(), x.size()}, batch, {y.data(), y.size()});
  std::vector<float> dx(batch * 6);
  layer.backward({probe.data(), probe.size()}, batch, {dx.data(), dx.size()});
  std::vector<float> analytic(layer.grads().begin(), layer.grads().end());

  auto params = layer.params();
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double plus = probe_forward(layer, {x.data(), x.size()}, batch,
                                      {probe.data(), probe.size()});
    params[i] = saved - eps;
    const double minus = probe_forward(layer, {x.data(), x.size()}, batch,
                                       {probe.data(), probe.size()});
    params[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    ASSERT_NEAR(analytic[i], numeric, 2e-3 + 2e-2 * std::fabs(numeric))
        << "table[" << i << "]";
  }
  // Ids carry no gradient.
  for (float v : dx) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(GradCheckTest, SoftmaxCrossEntropyGradient) {
  const std::size_t batch = 4, classes = 5;
  Rng rng(1014);
  std::vector<float> logits(batch * classes);
  fill_normal({logits.data(), logits.size()}, rng, 0.0f, 1.5f);
  std::vector<std::size_t> labels(batch);
  for (auto& label : labels) {
    label = rng.next_below(classes);
  }

  std::vector<float> dlogits(logits.size());
  softmax_cross_entropy({logits.data(), logits.size()},
                        {labels.data(), labels.size()}, classes,
                        {dlogits.data(), dlogits.size()});

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double plus =
        softmax_cross_entropy_eval({logits.data(), logits.size()},
                                   {labels.data(), labels.size()}, classes)
            .loss;
    logits[i] = saved - eps;
    const double minus =
        softmax_cross_entropy_eval({logits.data(), logits.size()},
                                   {labels.data(), labels.size()}, classes)
            .loss;
    logits[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    ASSERT_NEAR(dlogits[i], numeric, 1e-3 + 1e-2 * std::fabs(numeric))
        << "logit " << i;
  }
}

}  // namespace
}  // namespace marsit
