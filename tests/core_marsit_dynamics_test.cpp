// Numerical verification of the key lemma in the paper's Appendix B proof:
// the auxiliary sequence ỹ_t = x̃_t − c̄_t follows EXACT averaged SGD,
//   ỹ_{t+1} = ỹ_t − (1/M) Σ_m u_m(t),
// regardless of what the stochastic one-bit aggregation emitted — the whole
// convergence guarantee of Theorem 1 rests on this identity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sync_strategy.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

SyncConfig ring_config(std::size_t workers, std::uint64_t seed) {
  SyncConfig config;
  config.num_workers = workers;
  config.paradigm = MarParadigm::kRing;
  config.seed = seed;
  return config;
}

class MarsitDynamicsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarsitDynamicsTest, AuxiliarySequenceFollowsExactSgd) {
  const std::size_t m = GetParam();
  const std::size_t d = 64;
  const std::size_t rounds = 40;

  MarsitOptions options;
  options.eta_s = 0.05f;
  options.full_precision_period = 0;
  MarsitSync sync(ring_config(m, 131 + m), options);

  Rng rng(7 * m + 1);
  Tensor x(d);
  fill_normal(x.span(), rng, 0.0f, 1.0f);

  Tensor mean_c(d), y_prev(d), y_now(d), expected(d), g(d), mean_u(d);
  // ỹ_0 = x_0 (c starts at zero).
  copy_into(x.span(), y_prev.span());

  std::vector<Tensor> inputs(m, Tensor(d));
  for (std::size_t t = 0; t < rounds; ++t) {
    WorkerSpans spans;
    for (auto& u : inputs) {
      fill_normal(u.span(), rng, 0.0f, 0.1f);
      spans.push_back(u.span());
    }
    aggregate_mean(spans, mean_u.span());

    sync.synchronize(spans, g.span());
    axpy(-1.0f, g.span(), x.span());  // x̃_{t+1} = x̃_t − g_t

    sync.mean_compensation_into(mean_c.span());
    sub(x.span(), mean_c.span(), y_now.span());  // ỹ_{t+1}

    sub(y_prev.span(), mean_u.span(), expected.span());
    for (std::size_t i = 0; i < d; ++i) {
      ASSERT_NEAR(y_now[i], expected[i], 1e-4f)
          << "round " << t << " element " << i << " (M=" << m << ")";
    }
    copy_into(y_now.span(), y_prev.span());
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MarsitDynamicsTest,
                         ::testing::Values(2, 3, 5, 8));

TEST(MarsitDynamicsTest, IdentityHoldsAcrossFullPrecisionFlushes) {
  const std::size_t m = 4, d = 32;
  MarsitOptions options;
  options.eta_s = 0.05f;
  options.full_precision_period = 5;  // flush at t = 0, 5, 10, ...
  MarsitSync sync(ring_config(m, 555), options);

  Rng rng(556);
  Tensor x(d);
  Tensor mean_c(d), y_prev(d), y_now(d), expected(d), g(d), mean_u(d);
  copy_into(x.span(), y_prev.span());

  std::vector<Tensor> inputs(m, Tensor(d));
  for (std::size_t t = 0; t < 17; ++t) {
    WorkerSpans spans;
    for (auto& u : inputs) {
      fill_normal(u.span(), rng, 0.0f, 0.1f);
      spans.push_back(u.span());
    }
    aggregate_mean(spans, mean_u.span());
    sync.synchronize(spans, g.span());
    axpy(-1.0f, g.span(), x.span());
    sync.mean_compensation_into(mean_c.span());
    sub(x.span(), mean_c.span(), y_now.span());
    sub(y_prev.span(), mean_u.span(), expected.span());
    for (std::size_t i = 0; i < d; ++i) {
      ASSERT_NEAR(y_now[i], expected[i], 1e-4f)
          << "round " << t << " element " << i;
    }
    copy_into(y_now.span(), y_prev.span());
  }
}

TEST(MarsitDynamicsTest, FlushTrustRegionBreaksIdentityOnlyWhenActive) {
  // With the trust-region cap engaged the flush is no longer the exact
  // mean, so ỹ deviates at exactly (and only) the capped flush rounds —
  // pin that the deviation is bounded by the cap.
  const std::size_t m = 2, d = 16;
  MarsitOptions options;
  options.eta_s = 0.5f;
  options.full_precision_period = 3;
  options.full_precision_max_norm = 0.01f;  // tiny: every flush is capped
  MarsitSync sync(ring_config(m, 557), options);

  std::vector<Tensor> inputs(m, Tensor(d));
  Rng rng(558);
  WorkerSpans spans;
  for (auto& u : inputs) {
    fill_normal(u.span(), rng, 0.0f, 1.0f);
    spans.push_back(u.span());
  }
  Tensor g(d);
  sync.synchronize(spans, g.span());  // round 0: full precision, capped
  EXPECT_LE(l2_norm(g.span()), 0.01f + 1e-6f);
}

}  // namespace
}  // namespace marsit
