// Property tests for the ⊙ operator — the heart of the paper.  The central
// invariant (paper §4.1.1): after folding M workers' sign vectors, each bit
// is 1 with probability exactly (#positive)/M.
#include "core/one_bit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace marsit {
namespace {

TEST(OneBitCombineTest, AgreementKeepsBits) {
  BitVector a(100);
  for (std::size_t i = 0; i < 100; i += 3) {
    a.set(i, true);
  }
  Rng rng(1);
  // Combining identical vectors can never change a bit, whatever the
  // weights.
  for (std::size_t wa : {1u, 2u, 7u}) {
    for (std::size_t wb : {1u, 3u}) {
      EXPECT_EQ(one_bit_combine(a, wa, a, wb, rng), a);
    }
  }
}

TEST(OneBitCombineTest, RejectsBadArguments) {
  BitVector a(10), b(11);
  Rng rng(2);
  EXPECT_THROW(one_bit_combine(a, 1, b, 1, rng), CheckError);
  BitVector c(10);
  EXPECT_THROW(one_bit_combine(a, 0, c, 1, rng), CheckError);
  EXPECT_THROW(one_bit_combine(a, 1, c, 0, rng), CheckError);
}

TEST(OneBitCombineTest, DisagreementFollowsWeightRatio) {
  // a = all ones (weight 2), b = all zeros (weight 3): every bit disagrees,
  // so P(result bit = 1) must be 2/5 exactly.
  const std::size_t d = 64 * 50;
  BitVector a(d), b(d);
  a.fill(true);
  Rng rng(3);
  std::size_t ones = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    ones += one_bit_combine(a, 2, b, 3, rng).popcount();
  }
  const std::size_t n = d * trials;
  EXPECT_LT(std::fabs(binomial_z_score(ones, n, 0.4)), 5.0);
}

TEST(OneBitCombineTest, PaperEquation2SpecialCase) {
  // Eq. 2 with local weight 1 at chain position m: incoming bit survives a
  // disagreement with probability (m−1)/m.
  const std::size_t d = 64 * 50;
  const std::size_t m = 7;
  BitVector incoming(d);  // all zeros: aggregate says −1
  BitVector local(d);
  local.fill(true);       // local says +1
  Rng rng(4);
  std::size_t ones = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    ones += one_bit_combine(incoming, m - 1, local, 1, rng).popcount();
  }
  // P(result = 1) = P(take local) = 1/m.
  EXPECT_LT(std::fabs(binomial_z_score(ones, d * trials, 1.0 / m)), 5.0);
}

TEST(OneBitCombineTest, TailBitsStayZero) {
  BitVector a(70), b(70);
  a.fill(true);
  b.fill(true);
  Rng rng(5);
  const BitVector result = one_bit_combine(a, 1, b, 1, rng);
  EXPECT_EQ(result.words()[1] >> 6, 0u);  // bits beyond size() clear
}

TEST(OneBitFoldTest, SingleWorkerIsIdentity) {
  BitVector a(50);
  a.set(7, true);
  Rng rng(6);
  EXPECT_EQ(one_bit_fold({a}, rng), a);
}

TEST(OneBitFoldTest, RejectsEmptyInput) {
  Rng rng(7);
  EXPECT_THROW(one_bit_fold({}, rng), CheckError);
}

TEST(OneBitFoldTest, UnanimousWorkersAreDeterministic) {
  const std::size_t d = 100;
  BitVector pattern(d);
  for (std::size_t i = 0; i < d; i += 2) {
    pattern.set(i, true);
  }
  Rng rng(8);
  const BitVector result = one_bit_fold({pattern, pattern, pattern}, rng);
  EXPECT_EQ(result, pattern);
}

/// The core unbiasedness property, swept over worker counts: element j is
/// constructed so exactly k_j of the M workers carry a 1; the folded bit
/// must be 1 with probability k_j/M.
class OneBitFoldUnbiasedness : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(OneBitFoldUnbiasedness, FoldedBitFrequencyMatchesPositiveFraction) {
  const std::size_t m = GetParam();
  // Element j (0..m): first j workers say 1, the rest say 0.  Replicate the
  // pattern across 64 lanes for throughput.
  const std::size_t reps = 64;
  const std::size_t d = (m + 1) * reps;
  std::vector<BitVector> signs(m, BitVector(d));
  for (std::size_t w = 0; w < m; ++w) {
    for (std::size_t j = 0; j <= m; ++j) {
      if (w < j) {
        for (std::size_t r = 0; r < reps; ++r) {
          signs[w].set(j * reps + r, true);
        }
      }
    }
  }

  Rng rng(100 + m);
  const int trials = 400;
  std::vector<std::size_t> ones(m + 1, 0);
  for (int t = 0; t < trials; ++t) {
    const BitVector folded = one_bit_fold(signs, rng);
    for (std::size_t j = 0; j <= m; ++j) {
      for (std::size_t r = 0; r < reps; ++r) {
        ones[j] += folded.get(j * reps + r);
      }
    }
  }

  const std::size_t n = reps * trials;
  for (std::size_t j = 0; j <= m; ++j) {
    const double p = static_cast<double>(j) / static_cast<double>(m);
    if (j == 0) {
      EXPECT_EQ(ones[j], 0u) << "all-negative element emitted a 1";
    } else if (j == m) {
      EXPECT_EQ(ones[j], n) << "all-positive element emitted a 0";
    } else {
      EXPECT_LT(std::fabs(binomial_z_score(ones[j], n, p)), 5.0)
          << "M=" << m << " k=" << j << " freq="
          << static_cast<double>(ones[j]) / static_cast<double>(n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, OneBitFoldUnbiasedness,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

TEST(OneBitFoldTest, TorusStyleWeightedMergeIsAlsoUnbiased) {
  // 2×2 torus: fold rows, then merge row aggregates with weights (2, 2).
  // Element j has k_j = j of the 4 workers positive; the merged bit must be
  // 1 with probability j/4.
  const std::size_t reps = 64;
  const std::size_t d = 5 * reps;
  std::vector<BitVector> signs(4, BitVector(d));
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t j = 0; j <= 4; ++j) {
      if (w < j) {
        for (std::size_t r = 0; r < reps; ++r) {
          signs[w].set(j * reps + r, true);
        }
      }
    }
  }

  Rng rng(200);
  const int trials = 500;
  std::vector<std::size_t> ones(5, 0);
  for (int t = 0; t < trials; ++t) {
    BitVector row0 = one_bit_combine(signs[0], 1, signs[1], 1, rng);
    BitVector row1 = one_bit_combine(signs[2], 1, signs[3], 1, rng);
    const BitVector merged = one_bit_combine(row0, 2, row1, 2, rng);
    for (std::size_t j = 0; j <= 4; ++j) {
      for (std::size_t r = 0; r < reps; ++r) {
        ones[j] += merged.get(j * reps + r);
      }
    }
  }
  const std::size_t n = reps * trials;
  EXPECT_EQ(ones[0], 0u);
  EXPECT_EQ(ones[4], n);
  for (std::size_t j = 1; j <= 3; ++j) {
    EXPECT_LT(std::fabs(binomial_z_score(ones[j], n, j / 4.0)), 5.0)
        << "k=" << j;
  }
}

TEST(OneBitFoldTest, UnevenWeightedMergeIsAlsoUnbiased) {
  // Degraded reductions merge aggregates of *unequal* weights (a ragged
  // torus row, a shortened chain tail).  Fold 8 workers as a weight-5 chain
  // ⊙ a weight-3 chain: element j has k_j = j of the 8 positive, and the
  // law of total probability gives P(merged bit = 1) = (5/8)·(k_A/5) +
  // (3/8)·(k_B/3) = j/8 — the same invariant as the balanced shapes.
  const std::size_t m = 8;
  const std::size_t split = 5;
  const std::size_t reps = 64;
  const std::size_t d = (m + 1) * reps;
  std::vector<BitVector> signs(m, BitVector(d));
  for (std::size_t w = 0; w < m; ++w) {
    for (std::size_t j = 0; j <= m; ++j) {
      if (w < j) {
        for (std::size_t r = 0; r < reps; ++r) {
          signs[w].set(j * reps + r, true);
        }
      }
    }
  }

  Rng rng(400);
  const int trials = 500;
  std::vector<std::size_t> ones(m + 1, 0);
  for (int t = 0; t < trials; ++t) {
    BitVector left = signs[0];
    for (std::size_t w = 1; w < split; ++w) {
      one_bit_combine_into(left, w, signs[w], 1, rng);
    }
    BitVector right = signs[split];
    for (std::size_t w = split + 1; w < m; ++w) {
      one_bit_combine_into(right, w - split, signs[w], 1, rng);
    }
    const BitVector merged =
        one_bit_combine(left, split, right, m - split, rng);
    for (std::size_t j = 0; j <= m; ++j) {
      for (std::size_t r = 0; r < reps; ++r) {
        ones[j] += merged.get(j * reps + r);
      }
    }
  }
  const std::size_t n = reps * trials;
  EXPECT_EQ(ones[0], 0u);
  EXPECT_EQ(ones[m], n);
  for (std::size_t j = 1; j < m; ++j) {
    EXPECT_LT(std::fabs(binomial_z_score(
                  ones[j], n, static_cast<double>(j) / m)),
              5.0)
        << "k=" << j << " under a 5⊕3 weighted merge";
  }
}

TEST(OneBitFoldTest, ExpectedSignEqualsMeanSign) {
  // Mapping bits to ±1, E[folded] = mean of worker signs — the property the
  // global update g_t relies on.  Check one element with 3/5 positive.
  const std::size_t d = 64 * 20;
  std::vector<BitVector> signs(5, BitVector(d));
  signs[0].fill(true);
  signs[1].fill(true);
  signs[2].fill(true);
  Rng rng(300);
  double total = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const BitVector folded = one_bit_fold(signs, rng);
    total += 2.0 * static_cast<double>(folded.popcount()) -
             static_cast<double>(d);
  }
  const double mean_sign = total / (trials * static_cast<double>(d));
  // True mean sign = (3 − 2)/5 = 0.2; sd per element ≈ 0.98.
  EXPECT_NEAR(mean_sign, 0.2, 5.0 * 0.98 / std::sqrt(trials * d / 4.0));
}

}  // namespace
}  // namespace marsit
