// Every synchronization strategy must actually optimize: run each one on
// the noisy quadratic benchmark and require a large loss reduction.  This
// is the cheapest end-to-end regression net over the whole strategy family.
#include <gtest/gtest.h>

#include "core/distributed_sgd.hpp"
#include "tensor/ops.hpp"

namespace marsit {
namespace {

SyncConfig ring_config(std::size_t workers) {
  SyncConfig config;
  config.num_workers = workers;
  config.paradigm = MarParadigm::kRing;
  config.seed = 61;
  return config;
}

struct QuadraticCase {
  SyncMethod method;
  float eta_l;
  float eta_s;
  std::size_t rounds;
  double required_reduction;  // final loss < reduction · initial loss
};

class StrategyQuadraticTest : public ::testing::TestWithParam<QuadraticCase> {
};

TEST_P(StrategyQuadraticTest, ReducesLossSubstantially) {
  const QuadraticCase param = GetParam();
  const std::size_t d = 64, m = 4;
  const auto objective = make_quadratic_objective(d, m, /*sigma=*/0.05, 62);

  MethodOptions options;
  options.eta_s = param.eta_s;
  auto strategy = make_sync_strategy(param.method, ring_config(m), options);

  Tensor x0(d);
  fill(x0.span(), 4.0f);
  DistributedSgdOptions run;
  run.eta_l = param.eta_l;
  run.rounds = param.rounds;
  run.eval_interval = 0;
  const auto trace = run_distributed_sgd(*strategy, objective, x0, run);

  ASSERT_FALSE(trace.diverged) << strategy->name();
  const double initial = trace.losses.front().second;
  const double final_loss = trace.losses.back().second;
  EXPECT_LT(final_loss, param.required_reduction * initial)
      << strategy->name() << ": " << initial << " -> " << final_loss;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, StrategyQuadraticTest,
    ::testing::Values(
        // PSGD: contraction to near the noise floor.
        QuadraticCase{SyncMethod::kPsgd, 0.2f, 0.0f, 120, 0.1},
        // signSGD: η_s-paced sign descent.
        QuadraticCase{SyncMethod::kSignSgdMv, 0.2f, 0.05f, 250, 0.25},
        // EF-signSGD: error feedback recovers magnitudes.
        QuadraticCase{SyncMethod::kEfSignSgd, 0.2f, 0.0f, 250, 0.15},
        // SSDM (block-wise stochastic signs): the per-element probability
        // shift is O(1/sqrt(block)), so it is by far the noisiest sign
        // method — require a looser but still substantial reduction.
        QuadraticCase{SyncMethod::kSsdm, 0.2f, 0.02f, 500, 0.5},
        // Marsit, no full precision.
        QuadraticCase{SyncMethod::kMarsit, 0.1f, 0.05f, 400, 0.25}),
    [](const ::testing::TestParamInfo<QuadraticCase>& info) {
      // gtest parameter names must be alphanumeric.
      std::string name = sync_method_name(info.param.method);
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name;
    });

TEST(StrategyQuadraticTest, TreeFabricOptimizesToo) {
  const std::size_t d = 64, m = 8;
  const auto objective = make_quadratic_objective(d, m, 0.05, 63);
  SyncConfig config = ring_config(m);
  config.paradigm = MarParadigm::kTree;
  MethodOptions options;
  options.eta_s = 0.05f;
  auto strategy = make_sync_strategy(SyncMethod::kMarsit, config, options);

  Tensor x0(d);
  fill(x0.span(), 4.0f);
  DistributedSgdOptions run;
  run.eta_l = 0.1f;
  run.rounds = 400;
  run.eval_interval = 0;
  const auto trace = run_distributed_sgd(*strategy, objective, x0, run);
  ASSERT_FALSE(trace.diverged);
  EXPECT_LT(trace.losses.back().second, 0.3 * trace.losses.front().second);
}

TEST(StrategyQuadraticTest, TorusFabricOptimizesToo) {
  const std::size_t d = 64, m = 4;
  const auto objective = make_quadratic_objective(d, m, 0.05, 64);
  SyncConfig config = ring_config(m);
  config.paradigm = MarParadigm::kTorus2d;
  config.torus_rows = 2;
  config.torus_cols = 2;
  MethodOptions options;
  options.eta_s = 0.05f;
  auto strategy = make_sync_strategy(SyncMethod::kMarsit, config, options);

  Tensor x0(d);
  fill(x0.span(), 4.0f);
  DistributedSgdOptions run;
  run.eta_l = 0.1f;
  run.rounds = 400;
  run.eval_interval = 0;
  const auto trace = run_distributed_sgd(*strategy, objective, x0, run);
  ASSERT_FALSE(trace.diverged);
  EXPECT_LT(trace.losses.back().second, 0.3 * trace.losses.front().second);
}

}  // namespace
}  // namespace marsit
