// Checkpoint/snapshot layer (ISSUE satellite): byte-stability of the
// writer/reader pair, full-checkpoint round-trips, and — the integrity
// contract — rejection of truncated, bit-flipped, mis-versioned, and
// section-shuffled files.  A corrupted snapshot must never restore
// silently, in any build mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/snapshot.hpp"
#include "util/check.hpp"

namespace marsit::ckpt {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

TEST(SnapshotTest, WriterReaderRoundTrip) {
  SnapshotWriter writer;
  writer.u8(0xab);
  writer.u32(0xdeadbeefu);
  writer.u64(0x0123456789abcdefULL);
  writer.f32(-1.5f);
  writer.f64(3.14159);
  writer.str("marsit");
  const std::vector<float> floats = {1.0f, -2.0f, 0.25f};
  writer.f32_span({floats.data(), floats.size()});
  writer.f64_vec({0.5, -0.125});
  const std::vector<std::uint8_t> blob_in = {1, 2, 3};
  writer.blob({blob_in.data(), blob_in.size()});

  SnapshotReader reader({writer.bytes().data(), writer.size()});
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.f32(), -1.5f);
  EXPECT_EQ(reader.f64(), 3.14159);
  EXPECT_EQ(reader.str(), "marsit");
  EXPECT_EQ(reader.f32_vec(), (std::vector<float>{1.0f, -2.0f, 0.25f}));
  EXPECT_EQ(reader.f64_vec(), (std::vector<double>{0.5, -0.125}));
  EXPECT_EQ(reader.blob(), blob_in);
  EXPECT_TRUE(reader.done());
}

TEST(SnapshotTest, SerializationIsByteStable) {
  auto build = [] {
    SnapshotWriter writer;
    writer.u64(42);
    writer.str("stable");
    const std::vector<float> floats = {1.0f, 2.0f};
    writer.f32_span({floats.data(), floats.size()});
    return writer.bytes();
  };
  EXPECT_EQ(build(), build()) << "same state must serialize identically";
}

TEST(SnapshotTest, ReaderRejectsOverrun) {
  SnapshotWriter writer;
  writer.u32(7);
  SnapshotReader reader({writer.bytes().data(), writer.size()});
  (void)reader.u32();
  EXPECT_THROW((void)reader.u8(), CheckError);
}

TEST(SnapshotTest, ReaderRejectsHostileLengthPrefix) {
  // A length prefix claiming more elements than bytes remain must throw,
  // not wrap around and read garbage.
  SnapshotWriter writer;
  writer.u64(0xffffffffffffffffULL);
  SnapshotReader reader({writer.bytes().data(), writer.size()});
  EXPECT_THROW((void)reader.f32_vec(), CheckError);
}

TEST(SnapshotTest, FileRoundTripAndIntegrity) {
  SnapshotWriter writer;
  writer.str("payload");
  writer.u64(99);
  const std::string path = temp_path("snapshot_roundtrip.bin");
  write_snapshot_file(path, 1, {writer.bytes().data(), writer.size()});

  const SnapshotFile file = read_snapshot_file(path, 1);
  EXPECT_EQ(file.version, 1u);
  EXPECT_EQ(file.payload, writer.bytes());
  EXPECT_EQ(file.payload_digest,
            fnv1a(writer.bytes().data(), writer.size()));
}

TEST(SnapshotTest, RejectsBadMagicVersionTruncationAndBitFlip) {
  SnapshotWriter writer;
  writer.str("integrity");
  const std::string path = temp_path("snapshot_integrity.bin");
  write_snapshot_file(path, 1, {writer.bytes().data(), writer.size()});
  const std::vector<std::uint8_t> good = read_file(path);

  // Future version: the reader must refuse to guess at layouts it does not
  // know.
  write_snapshot_file(path, 2, {writer.bytes().data(), writer.size()});
  EXPECT_THROW((void)read_snapshot_file(path, 1), CheckError);

  // Wrong magic.
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xff;
  write_file(path, bad);
  EXPECT_THROW((void)read_snapshot_file(path, 1), CheckError);

  // Truncated payload (declared size vs bytes on disk).
  bad = good;
  bad.pop_back();
  write_file(path, bad);
  EXPECT_THROW((void)read_snapshot_file(path, 1), CheckError);

  // Single payload bit-flip: caught by the FNV-1a digest.
  bad = good;
  bad.back() ^= 0x01;
  write_file(path, bad);
  EXPECT_THROW((void)read_snapshot_file(path, 1), CheckError);

  // The pristine bytes still load.
  write_file(path, good);
  EXPECT_NO_THROW((void)read_snapshot_file(path, 1));
}

Checkpoint make_checkpoint() {
  Checkpoint checkpoint;
  checkpoint.meta.round = 7;
  checkpoint.meta.param_count = 3;
  checkpoint.meta.num_workers = 4;
  checkpoint.meta.trainer_seed = 99;
  checkpoint.meta.strategy_seed = 2024;
  checkpoint.meta.fault_seed = 11;
  checkpoint.meta.strategy_name = "Marsit-RAR";
  checkpoint.params = {0.5f, -1.0f, 2.0f};
  checkpoint.optimizer_state = {1, 2, 3, 4};
  checkpoint.strategy_state = {5, 6};
  checkpoint.trainer_state = {7};
  return checkpoint;
}

TEST(CheckpointTest, SaveLoadSaveIsByteStable) {
  const Checkpoint original = make_checkpoint();
  const std::string path_a = temp_path("checkpoint_a.bin");
  const std::string path_b = temp_path("checkpoint_b.bin");
  save_checkpoint(path_a, original);

  const Checkpoint loaded = load_checkpoint(path_a);
  EXPECT_EQ(loaded.meta.round, original.meta.round);
  EXPECT_EQ(loaded.meta.param_count, original.meta.param_count);
  EXPECT_EQ(loaded.meta.num_workers, original.meta.num_workers);
  EXPECT_EQ(loaded.meta.trainer_seed, original.meta.trainer_seed);
  EXPECT_EQ(loaded.meta.strategy_seed, original.meta.strategy_seed);
  EXPECT_EQ(loaded.meta.fault_seed, original.meta.fault_seed);
  EXPECT_EQ(loaded.meta.strategy_name, original.meta.strategy_name);
  EXPECT_EQ(loaded.params, original.params);
  EXPECT_EQ(loaded.optimizer_state, original.optimizer_state);
  EXPECT_EQ(loaded.strategy_state, original.strategy_state);
  EXPECT_EQ(loaded.trainer_state, original.trainer_state);
  EXPECT_EQ(loaded.version, kFormatVersion);

  // Round-trip byte stability: load → save must reproduce the exact file.
  save_checkpoint(path_b, loaded);
  EXPECT_EQ(read_file(path_a), read_file(path_b));
}

TEST(CheckpointTest, RejectsCorruptedFile) {
  const std::string path = temp_path("checkpoint_corrupt.bin");
  save_checkpoint(path, make_checkpoint());
  std::vector<std::uint8_t> bytes = read_file(path);
  // Flip one bit in the middle of the payload (params land there).
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(path, bytes);
  EXPECT_THROW((void)load_checkpoint(path), CheckError);
}

TEST(CheckpointTest, RejectsShuffledSections) {
  // A structurally valid snapshot whose first section is not META must be
  // rejected by the section-order check, not mis-parsed.
  SnapshotWriter payload;
  payload.u32(0x50415241);  // "PARA" where "META" belongs
  payload.blob({});
  const std::string path = temp_path("checkpoint_shuffled.bin");
  write_snapshot_file(path, kFormatVersion,
                      {payload.bytes().data(), payload.size()});
  EXPECT_THROW((void)load_checkpoint(path), CheckError);
}

TEST(CheckpointTest, ExpandsRoundPlaceholder) {
  EXPECT_EQ(expand_checkpoint_path("ckpt_{round}.bin", 12), "ckpt_12.bin");
  EXPECT_EQ(expand_checkpoint_path("ckpt.bin", 12), "ckpt.bin");
  // Every occurrence expands, including round-numbered directories.
  EXPECT_EQ(expand_checkpoint_path("{round}/{round}", 3), "3/3");
  EXPECT_EQ(expand_checkpoint_path("runs/{round}/ckpt-{round}.bin", 7),
            "runs/7/ckpt-7.bin");
}

TEST(CheckpointTest, ExpandPathEdgeCases) {
  // No placeholder at all: the template passes through verbatim.
  EXPECT_EQ(expand_checkpoint_path("", 4), "");
  EXPECT_EQ(expand_checkpoint_path("round", 4), "round");
  // Bare filename with no directory component.
  EXPECT_EQ(expand_checkpoint_path("{round}", 42), "42");
  EXPECT_EQ(expand_checkpoint_path("{round}{round}", 5), "55");
  // Expansion must not rescan its own output: a template whose pieces only
  // spell "{round}" after one replacement stays un-expanded.
  EXPECT_EQ(expand_checkpoint_path("{rou{round}nd}", 0), "{rou0nd}");
  // Partial / malformed markers are literal text.
  EXPECT_EQ(expand_checkpoint_path("{round", 9), "{round");
  EXPECT_EQ(expand_checkpoint_path("round}", 9), "round}");
  // Large round numbers survive the uint64 range.
  EXPECT_EQ(expand_checkpoint_path("ckpt_{round}.bin", 18446744073709551615ULL),
            "ckpt_18446744073709551615.bin");
}

}  // namespace
}  // namespace marsit::ckpt
