// Cross-module integration tests: miniature versions of the paper's
// headline comparisons, small enough for CI but large enough to show the
// qualitative effects.
#include <gtest/gtest.h>

#include "core/sync_strategy.hpp"
#include "data/synthetic_digits.hpp"
#include "data/synthetic_sentiment.hpp"
#include "nn/models.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::kError); }

  SyncConfig ring_config(std::size_t workers) {
    SyncConfig config;
    config.num_workers = workers;
    config.paradigm = MarParadigm::kRing;
    config.seed = 77;
    return config;
  }

  TrainResult train_digits(SyncStrategy& strategy, std::size_t rounds,
                           float eta_l = 0.08f) {
    SyntheticDigits digits;
    auto factory = [&digits] {
      return make_mlp(digits.sample_size(), {32}, digits.num_classes());
    };
    TrainerConfig config;
    config.batch_size_per_worker = 32;
    config.eta_l = eta_l;
    config.rounds = rounds;
    config.eval_interval = rounds;
    config.eval_samples = 512;
    config.seed = 5;
    DistributedTrainer trainer(digits, factory, strategy, config);
    return trainer.train();
  }
};

TEST_F(IntegrationTest, MarsitMatchesPsgdAccuracyWithFractionOfTraffic) {
  // The paper's central claim in miniature.
  PsgdSync psgd(ring_config(4));
  const TrainResult psgd_result = train_digits(psgd, 80);

  MarsitOptions options;
  options.eta_s = 2e-3f;
  options.full_precision_period = 40;
  MarsitSync marsit(ring_config(4), options);
  const TrainResult marsit_result = train_digits(marsit, 80);

  ASSERT_FALSE(psgd_result.diverged);
  ASSERT_FALSE(marsit_result.diverged);
  EXPECT_GT(marsit_result.final_test_accuracy,
            psgd_result.final_test_accuracy - 0.15);
  EXPECT_LT(marsit_result.total_wire_bits,
            psgd_result.total_wire_bits / 10.0);
  EXPECT_LT(marsit_result.sim_seconds, psgd_result.sim_seconds);
}

TEST_F(IntegrationTest, MarsitBitsPerElementFollowsKFormula) {
  // Figure 3's "Bits" column: mean bits/element = (K−1 + 32)/K.
  for (std::size_t k : {2u, 4u, 8u}) {
    MarsitOptions options;
    options.eta_s = 2e-3f;
    options.full_precision_period = k;
    MarsitSync marsit(ring_config(2), options);
    const TrainResult result = train_digits(marsit, 2 * k);
    const double expected =
        (static_cast<double>(k - 1) + 32.0) / static_cast<double>(k);
    EXPECT_NEAR(result.mean_bits_per_element, expected, 1e-9) << "K=" << k;
  }
}

TEST_F(IntegrationTest, CascadingDegradesWithMoreWorkers) {
  // Table 1's phenomenon: cascading compression gets *worse* as M grows
  // while PSGD gets better (or stays equal).  Compare final accuracy of
  // cascading at M=3 vs M=8 after the same number of rounds.
  CascadingSync cascade3(ring_config(3));
  const TrainResult result3 = train_digits(cascade3, 60, 0.05f);

  CascadingSync cascade8(ring_config(8));
  const TrainResult result8 = train_digits(cascade8, 60, 0.05f);

  PsgdSync psgd8(ring_config(8));
  const TrainResult psgd_result = train_digits(psgd8, 60, 0.05f);

  ASSERT_FALSE(psgd_result.diverged);
  // Cascading at M=8 must be clearly worse than PSGD at M=8 (diverged runs
  // count as accuracy 0).
  const double cascade8_acc =
      result8.diverged ? 0.0 : result8.final_test_accuracy;
  EXPECT_LT(cascade8_acc + 0.1, psgd_result.final_test_accuracy);
  // ... and no better than cascading at M=3.
  const double cascade3_acc =
      result3.diverged ? 0.0 : result3.final_test_accuracy;
  EXPECT_LE(cascade8_acc, cascade3_acc + 0.05);
}

TEST_F(IntegrationTest, SignSumBaselinesLearnButCostMoreBitsThanMarsit) {
  SignSgdMvSync sign_sgd(ring_config(4), 2e-3f);
  const TrainResult sign_result = train_digits(sign_sgd, 80);

  MarsitOptions options;
  options.eta_s = 2e-3f;
  MarsitSync marsit(ring_config(4), options);
  const TrainResult marsit_result = train_digits(marsit, 80);

  ASSERT_FALSE(sign_result.diverged);
  EXPECT_GT(sign_result.final_test_accuracy, 0.25);
  // signSGD's sign-sums need up to ⌈log2(M+1)⌉+1 = 4 bits on reduce hops
  // (1-bit gather), vs Marsit's 1 bit everywhere: ratio (1+3+3+3·1)/6 = 5/3.
  EXPECT_GT(sign_result.total_wire_bits,
            1.3 * marsit_result.total_wire_bits);
}

TEST_F(IntegrationTest, TorusAndRingMarsitBothLearn) {
  MarsitOptions options;
  options.eta_s = 2e-3f;

  MarsitSync ring(ring_config(4), options);
  const TrainResult ring_result = train_digits(ring, 60);

  SyncConfig torus_config = ring_config(4);
  torus_config.paradigm = MarParadigm::kTorus2d;
  torus_config.torus_rows = 2;
  torus_config.torus_cols = 2;
  MarsitSync torus(torus_config, options);
  const TrainResult torus_result = train_digits(torus, 60);

  ASSERT_FALSE(ring_result.diverged);
  ASSERT_FALSE(torus_result.diverged);
  EXPECT_GT(ring_result.final_test_accuracy, 0.35);
  EXPECT_GT(torus_result.final_test_accuracy, 0.35);
}

TEST_F(IntegrationTest, AdamTextClassificationWithMarsit) {
  // The sentiment task end-to-end (DistilBERT stand-in with Adam).
  SyntheticSentimentConfig data_config;
  data_config.vocab_size = 400;
  data_config.seq_len = 16;
  data_config.lexicon = 50;
  SyntheticSentiment sentiment(data_config);
  auto factory = [&] {
    return make_text_classifier(sentiment.vocab_size(), sentiment.seq_len(),
                                8, 2);
  };

  MarsitOptions options;
  options.eta_s = 1e-3f;
  options.full_precision_period = 30;
  MarsitSync strategy(ring_config(4), options);

  TrainerConfig config;
  config.batch_size_per_worker = 32;
  config.optimizer = OptimizerKind::kAdam;
  config.eta_l = 0.02f;
  config.rounds = 90;
  config.eval_interval = 90;
  config.eval_samples = 512;
  DistributedTrainer trainer(sentiment, factory, strategy, config);
  const TrainResult result = trainer.train();

  ASSERT_FALSE(result.diverged);
  EXPECT_GT(result.final_test_accuracy, 0.7);  // chance = 0.5
}

TEST_F(IntegrationTest, MomentumImageClassificationWithEfSignSgd) {
  SyntheticDigits digits;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {32}, digits.num_classes());
  };
  EfSignSgdSync strategy(ring_config(4));
  TrainerConfig config;
  config.batch_size_per_worker = 32;
  config.optimizer = OptimizerKind::kMomentum;
  config.eta_l = 0.03f;
  config.rounds = 80;
  config.eval_interval = 80;
  config.eval_samples = 512;
  DistributedTrainer trainer(digits, factory, strategy, config);
  const TrainResult result = trainer.train();
  ASSERT_FALSE(result.diverged);
  EXPECT_GT(result.final_test_accuracy, 0.5);
}

}  // namespace
}  // namespace marsit
