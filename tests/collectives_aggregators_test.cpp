#include "collectives/aggregators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/sign_codec.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

std::vector<Tensor> random_workers(std::size_t m, std::size_t d,
                                   std::uint64_t seed) {
  std::vector<Tensor> workers;
  Rng rng(seed);
  for (std::size_t w = 0; w < m; ++w) {
    Tensor t(d);
    fill_normal(t.span(), rng, 0.0f, 1.0f);
    workers.push_back(std::move(t));
  }
  return workers;
}

WorkerSpans spans_of(const std::vector<Tensor>& workers) {
  WorkerSpans spans;
  for (const auto& t : workers) {
    spans.push_back(t.span());
  }
  return spans;
}

TEST(AggregateMeanTest, ExactMean) {
  std::vector<Tensor> workers;
  workers.push_back(Tensor{1.0f, 2.0f});
  workers.push_back(Tensor{3.0f, 6.0f});
  Tensor out(2);
  aggregate_mean(spans_of(workers), out.span());
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(AggregateMeanTest, RejectsEmptyAndMismatched) {
  Tensor out(2);
  EXPECT_THROW(aggregate_mean({}, out.span()), CheckError);
  std::vector<Tensor> workers;
  workers.push_back(Tensor(3));
  EXPECT_THROW(aggregate_mean(spans_of(workers), out.span()), CheckError);
}

TEST(AggregateSignSumTest, MatchesManualFold) {
  const auto workers = random_workers(5, 200, 77);
  std::vector<BitVector> signs;
  for (const auto& w : workers) {
    signs.push_back(pack_signs(w.span()));
  }
  const auto aggregate = aggregate_sign_sum(signs);
  EXPECT_EQ(aggregate.sum.contributions(), 5u);
  for (std::size_t i = 0; i < 200; ++i) {
    int expected = 0;
    for (const auto& w : workers) {
      expected += w[i] >= 0.0f ? 1 : -1;
    }
    ASSERT_EQ(aggregate.sum.value(i), expected) << "element " << i;
  }
  EXPECT_TRUE(aggregate.elias_bits_per_element.empty());
}

TEST(AggregateSignSumTest, RecordsEliasSizesPerContribution) {
  const auto workers = random_workers(4, 512, 78);
  std::vector<BitVector> signs;
  for (const auto& w : workers) {
    signs.push_back(pack_signs(w.span()));
  }
  const auto aggregate = aggregate_sign_sum(signs, true);
  ASSERT_EQ(aggregate.elias_bits_per_element.size(), 4u);
  for (double bits : aggregate.elias_bits_per_element) {
    EXPECT_GT(bits, 0.0);
    EXPECT_LT(bits, 32.0);
  }
}

TEST(CascadingTest, SingleWorkerIsPlainSsdm) {
  // With M=1, cascading reduces to Q(s)/1 whose expectation is s.
  std::vector<Tensor> workers;
  workers.push_back(Tensor{0.5f, -0.5f});
  Rng rng(80);
  Tensor out(2);
  std::vector<double> mean(2, 0.0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    cascading_aggregate(spans_of(workers), rng, out.span(),
                        CascadeDecode::kUnbiased);
    mean[0] += out[0];
    mean[1] += out[1];
  }
  const double norm = std::sqrt(0.5);
  EXPECT_NEAR(mean[0] / trials, 0.5, 5.0 * norm / std::sqrt(trials));
  EXPECT_NEAR(mean[1] / trials, -0.5, 5.0 * norm / std::sqrt(trials));
}

TEST(CascadingTest, ExpectationStaysUnbiasedButVarianceExplodesWithM) {
  // Theorem 3's phenomenon: E[s₃] = s₁ but the deviation grows sharply in M
  // (compare mean squared deviation at M=2 vs M=6 on matched data).
  const std::size_t d = 64;
  auto deviation_for = [&](std::size_t m, std::uint64_t seed) {
    const auto workers = random_workers(m, d, seed);
    Tensor exact(d);
    aggregate_mean(spans_of(workers), exact.span());
    Rng rng(seed + 1);
    Tensor out(d);
    Tensor diff(d);
    double total = 0.0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      cascading_aggregate(spans_of(workers), rng, out.span(),
                          CascadeDecode::kUnbiased);
      sub(out.span(), exact.span(), diff.span());
      total += squared_l2_norm(diff.span());
    }
    return total / trials;
  };
  const double dev2 = deviation_for(2, 500);
  const double dev6 = deviation_for(6, 501);
  EXPECT_GT(dev6, 3.0 * dev2);
}

TEST(CascadingTest, NormPreservingDecodeStaysBounded) {
  // The deployable decode keeps magnitudes at gradient scale even at M=12,
  // where the unbiased decode has blown up by ~(√D)^M.
  const std::size_t d = 256;
  const auto workers = random_workers(12, d, 502);
  Rng rng(503);
  Tensor out(d);
  cascading_aggregate(spans_of(workers), rng, out.span(),
                      CascadeDecode::kNormPreserving);
  EXPECT_TRUE(all_finite(out.span()));
  Tensor exact(d);
  aggregate_mean(spans_of(workers), exact.span());
  // Same order of magnitude as the exact mean (within ~50x), unlike the
  // unbiased decode whose norm is astronomically larger.
  EXPECT_LT(l2_norm(out.span()), 50.0f * l2_norm(exact.span()) + 50.0f);
}

TEST(SsdmPsTest, UnbiasedAggregate) {
  const auto workers = random_workers(3, 32, 90);
  Tensor exact(32);
  aggregate_mean(spans_of(workers), exact.span());
  Rng rng(91);
  Tensor out(32);
  std::vector<double> mean(32, 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    ssdm_ps_aggregate(spans_of(workers), rng, out.span());
    for (std::size_t i = 0; i < 32; ++i) {
      mean[i] += out[i];
    }
  }
  // sd of one PS-aggregated element ≈ mean norm / M ≈ 2; 5σ band.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(mean[i] / trials, exact[i], 5.0 * 2.5 / std::sqrt(trials))
        << "element " << i;
  }
}

TEST(MatchingRateTest, IdenticalVectorsMatchFully) {
  Tensor a{1.0f, -2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(sign_matching_rate(a.span(), a.span()), 1.0);
}

TEST(MatchingRateTest, OppositeVectorsMatchZero) {
  Tensor a{1.0f, -2.0f};
  Tensor b{-1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(sign_matching_rate(a.span(), b.span()), 0.0);
}

TEST(MatchingRateTest, PartialMatch) {
  Tensor a{1.0f, 1.0f, -1.0f, -1.0f};
  Tensor b{1.0f, -1.0f, -1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(sign_matching_rate(a.span(), b.span()), 0.5);
}

TEST(MatchingRateTest, ZeroTreatedAsPositive) {
  Tensor a{0.0f};
  Tensor b{1.0f};
  EXPECT_DOUBLE_EQ(sign_matching_rate(a.span(), b.span()), 1.0);
}

TEST(MatchingRateTest, RejectsMismatchedExtents) {
  Tensor a(2), b(3);
  EXPECT_THROW(sign_matching_rate(a.span(), b.span()), CheckError);
}

TEST(WeightedMatchingRateTest, WeightsByReferenceMagnitude) {
  // Element 0 carries 9/10 of the mass and matches; element 1 mismatches.
  Tensor a{9.0f, -1.0f};
  Tensor b{1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(weighted_sign_matching_rate(a.span(), b.span()), 0.9);
}

TEST(WeightedMatchingRateTest, EqualWeightsReduceToUnweighted) {
  Tensor a{1.0f, 1.0f, -1.0f, -1.0f};
  Tensor b{1.0f, -1.0f, -1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(weighted_sign_matching_rate(a.span(), b.span()),
                   sign_matching_rate(a.span(), b.span()));
}

TEST(WeightedMatchingRateTest, RejectsZeroReference) {
  Tensor a(3), b(3);
  EXPECT_THROW(weighted_sign_matching_rate(a.span(), b.span()), CheckError);
}

}  // namespace
}  // namespace marsit
