// Contract-layer tests (util/validate.hpp), meaningful in BOTH build modes:
//
//   * The checker functions are always compiled, so every precondition —
//     ⊙ fold weights, probability tables, membership, torus shape, shard
//     grids — is pinned here regardless of MARSIT_VALIDATE.
//   * The MARSIT_VALIDATE macro itself is mode-dependent: validate builds
//     must throw ValidateError on a violated contract, plain builds must not
//     even evaluate the contract expression (zero-cost guarantee).
//
// Digest parity between the modes (the other half of the acceptance
// criterion) is enforced by sim_golden_determinism_test: its golden
// fingerprint deliberately excludes MARSIT_VALIDATE, so a validate build
// compares against the same committed Release digests.

#include "util/validate.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/shard.hpp"

namespace marsit {
namespace {

TEST(ValidateContractTest, HopWeightsRequireBothPositive) {
  EXPECT_NO_THROW(validate::hop_weights(1, 1));
  EXPECT_NO_THROW(validate::hop_weights(63, 1));  // Eq. 2: m-th hop merge
  EXPECT_THROW(validate::hop_weights(0, 1), ValidateError);
  EXPECT_THROW(validate::hop_weights(1, 0), ValidateError);
}

TEST(ValidateContractTest, HopWeightsRejectOverflowingSum) {
  const std::size_t huge = ~std::size_t{0};
  EXPECT_THROW(validate::hop_weights(huge, 2), ValidateError);
  EXPECT_NO_THROW(validate::hop_weights(huge - 1, 1));
}

TEST(ValidateContractTest, ProbabilityBounds) {
  EXPECT_NO_THROW(validate::probability(0.0, "p"));
  EXPECT_NO_THROW(validate::probability(1.0, "p"));
  EXPECT_THROW(validate::probability(-0.01, "p"), ValidateError);
  EXPECT_THROW(validate::probability(1.01, "p"), ValidateError);
  EXPECT_THROW(validate::probability(std::nan(""), "p"), ValidateError);
}

TEST(ValidateContractTest, ProbabilityTableMustSumToOne) {
  const std::vector<double> take = {0.75, 0.25};  // ⊙ at hop m = 3
  EXPECT_NO_THROW(validate::probability_table(take, "take"));
  const std::vector<double> leaky = {0.75, 0.2};
  EXPECT_THROW(validate::probability_table(leaky, "take"), ValidateError);
  const std::vector<double> negative = {1.25, -0.25};  // sums to 1, invalid
  EXPECT_THROW(validate::probability_table(negative, "take"), ValidateError);
}

TEST(ValidateContractTest, MembershipRequiresSortedUniqueQuorum) {
  const std::vector<std::size_t> good = {0, 2, 3};
  EXPECT_NO_THROW(validate::membership(good, 4));
  const std::vector<std::size_t> below_quorum = {1};
  EXPECT_THROW(validate::membership(below_quorum, 4), ValidateError);
  const std::vector<std::size_t> duplicate = {1, 1};
  EXPECT_THROW(validate::membership(duplicate, 4), ValidateError);
  const std::vector<std::size_t> unsorted = {2, 1};
  EXPECT_THROW(validate::membership(unsorted, 4), ValidateError);
  const std::vector<std::size_t> out_of_range = {0, 4};
  EXPECT_THROW(validate::membership(out_of_range, 4), ValidateError);
}

TEST(ValidateContractTest, TorusShapeMustTileMembership) {
  EXPECT_NO_THROW(validate::torus_shape(2, 2, 4));
  EXPECT_NO_THROW(validate::torus_shape(3, 4, 12));
  EXPECT_THROW(validate::torus_shape(1, 4, 4), ValidateError);
  EXPECT_THROW(validate::torus_shape(4, 1, 4), ValidateError);
  EXPECT_THROW(validate::torus_shape(2, 3, 5), ValidateError);
}

TEST(ValidateContractTest, SnapshotHeaderConsistency) {
  // version in [1, supported], digest equality, trainable shape.
  EXPECT_NO_THROW(validate::snapshot_header(1, 1, 0xabcd, 0xabcd, 10, 4));
  EXPECT_NO_THROW(validate::snapshot_header(1, 2, 0xabcd, 0xabcd, 10, 4));
  EXPECT_THROW(validate::snapshot_header(0, 1, 1, 1, 10, 4), ValidateError);
  EXPECT_THROW(validate::snapshot_header(2, 1, 1, 1, 10, 4), ValidateError);
  EXPECT_THROW(validate::snapshot_header(1, 1, 1, 2, 10, 4), ValidateError);
  EXPECT_THROW(validate::snapshot_header(1, 1, 1, 1, 0, 4), ValidateError);
  EXPECT_THROW(validate::snapshot_header(1, 1, 1, 1, 10, 1), ValidateError);
}

TEST(ValidateContractTest, RejoinMembershipFlushBoundaryOnly) {
  const std::vector<std::size_t> rejoined = {1, 3};
  // Flush-gated rejoins may land only on multiples of the flush period.
  EXPECT_NO_THROW(validate::rejoin_membership(rejoined, 4, 8, 4));
  EXPECT_THROW(validate::rejoin_membership(rejoined, 4, 7, 4),
               ValidateError);
  // Ungated rejoins (flush_period 0) may land anywhere; so may empty sets.
  EXPECT_NO_THROW(validate::rejoin_membership(rejoined, 4, 7, 0));
  EXPECT_NO_THROW(validate::rejoin_membership({}, 4, 7, 4));
  // The rejoined set must be strictly increasing configured workers.
  const std::vector<std::size_t> out_of_range = {4};
  EXPECT_THROW(validate::rejoin_membership(out_of_range, 4, 8, 4),
               ValidateError);
  const std::vector<std::size_t> unsorted = {3, 1};
  EXPECT_THROW(validate::rejoin_membership(unsorted, 4, 8, 4),
               ValidateError);
  const std::vector<std::size_t> duplicate = {1, 1};
  EXPECT_THROW(validate::rejoin_membership(duplicate, 4, 8, 4),
               ValidateError);
}

TEST(ValidateContractTest, ShardPlansCoverExactly) {
  // The real planner's grids always satisfy the contract, across odd sizes,
  // word-multiples, and hints smaller than a word.
  for (const std::size_t total : {1u, 63u, 64u, 65u, 1000u, 65536u}) {
    for (const std::size_t hint : {0u, 1u, 64u, 100u, 65536u}) {
      const ShardPlan plan(total, hint);
      EXPECT_NO_THROW(validate_shard_plan(plan))
          << "total=" << total << " hint=" << hint;
    }
  }
  EXPECT_NO_THROW(validate_shard_plan(ShardPlan(0, 64)));  // empty grid
}

TEST(ValidateMacroTest, EnabledModeThrowsDisabledModeSkipsEvaluation) {
#if MARSIT_VALIDATE_ENABLED
  EXPECT_THROW(
      [] { MARSIT_VALIDATE(1 + 1 == 3) << "forced contract failure"; }(),
      ValidateError);
  EXPECT_NO_THROW([] { MARSIT_VALIDATE(1 + 1 == 2) << "holds"; }());
  EXPECT_THROW(
      [] {
        const std::vector<std::size_t> lonely = {0};
        MARSIT_VALIDATE_CALL(validate::membership(lonely, 4));
      }(),
      ValidateError);
#else
  // Zero-cost guarantee: the contract expression is type-checked but never
  // evaluated, and gated calls vanish.
  bool evaluated = false;
  const auto touch = [&evaluated] {
    evaluated = true;
    return false;
  };
  MARSIT_VALIDATE(touch()) << "never reached";
  EXPECT_FALSE(evaluated);
  const std::vector<std::size_t> lonely = {0};
  EXPECT_NO_THROW(MARSIT_VALIDATE_CALL(validate::membership(lonely, 4)));
#endif
}

TEST(ValidateErrorTest, IsACheckError) {
  // Catch sites that treat failed checks as programming errors also see
  // contract violations.
  try {
    validate::fail("fixture", "detail text");
    FAIL() << "validate::fail returned";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("fixture"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("detail text"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace marsit
