#include "core/sync_strategy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/sign_codec.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

SyncConfig ring_config(std::size_t workers, std::uint64_t seed = 11) {
  SyncConfig config;
  config.num_workers = workers;
  config.paradigm = MarParadigm::kRing;
  config.seed = seed;
  return config;
}

std::vector<Tensor> random_inputs(std::size_t m, std::size_t d,
                                  std::uint64_t seed) {
  std::vector<Tensor> inputs;
  Rng rng(seed);
  for (std::size_t w = 0; w < m; ++w) {
    Tensor t(d);
    fill_normal(t.span(), rng, 0.0f, 1.0f);
    inputs.push_back(std::move(t));
  }
  return inputs;
}

WorkerSpans spans_of(const std::vector<Tensor>& inputs) {
  WorkerSpans spans;
  for (const auto& t : inputs) {
    spans.push_back(t.span());
  }
  return spans;
}

TEST(SyncStrategyTest, ValidatesInputs) {
  PsgdSync psgd(ring_config(3));
  Tensor out(4);
  auto inputs = random_inputs(2, 4, 1);  // wrong worker count
  EXPECT_THROW(psgd.synchronize(spans_of(inputs), out.span()), CheckError);
  auto inputs3 = random_inputs(3, 5, 1);  // extent mismatch with out
  EXPECT_THROW(psgd.synchronize(spans_of(inputs3), out.span()), CheckError);
}

TEST(SyncStrategyTest, RoundCounterAdvances) {
  PsgdSync psgd(ring_config(2));
  auto inputs = random_inputs(2, 8, 2);
  Tensor out(8);
  EXPECT_EQ(psgd.round(), 0u);
  psgd.synchronize(spans_of(inputs), out.span());
  psgd.synchronize(spans_of(inputs), out.span());
  EXPECT_EQ(psgd.round(), 2u);
}

TEST(PsgdSyncTest, ProducesExactMean) {
  PsgdSync psgd(ring_config(4));
  auto inputs = random_inputs(4, 64, 3);
  Tensor out(64);
  const auto step = psgd.synchronize(spans_of(inputs), out.span());
  Tensor expected(64);
  aggregate_mean(spans_of(inputs), expected.span());
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_FLOAT_EQ(out[i], expected[i]);
  }
  EXPECT_TRUE(step.full_precision);
  EXPECT_DOUBLE_EQ(step.bits_per_element, 32.0);
}

TEST(PsgdSyncTest, WorksOnTorusAndPs) {
  SyncConfig torus = ring_config(4);
  torus.paradigm = MarParadigm::kTorus2d;
  torus.torus_rows = 2;
  torus.torus_cols = 2;
  PsgdSync torus_sync(torus);
  EXPECT_EQ(torus_sync.name(), "PSGD-TAR");

  SyncConfig ps = ring_config(4);
  ps.paradigm = MarParadigm::kParameterServer;
  PsgdSync ps_sync(ps);
  EXPECT_EQ(ps_sync.name(), "PSGD-PS");

  auto inputs = random_inputs(4, 32, 4);
  Tensor out(32);
  EXPECT_GT(torus_sync.synchronize(spans_of(inputs), out.span())
                .timing.completion_seconds,
            0.0);
  EXPECT_GT(ps_sync.synchronize(spans_of(inputs), out.span())
                .timing.completion_seconds,
            0.0);
}

TEST(SignSgdMvSyncTest, OutputIsScaledMajoritySign) {
  const float eta_s = 0.25f;
  SignSgdMvSync sync(ring_config(3), eta_s);
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor{1.0f, -1.0f, 1.0f});
  inputs.push_back(Tensor{1.0f, -1.0f, -1.0f});
  inputs.push_back(Tensor{-1.0f, -1.0f, 1.0f});
  Tensor out(3);
  const auto step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_FLOAT_EQ(out[0], eta_s);
  EXPECT_FLOAT_EQ(out[1], -eta_s);
  EXPECT_FLOAT_EQ(out[2], eta_s);
  EXPECT_FALSE(step.full_precision);
  // Fixed-width sign-sum for 3 workers: ⌈log2 4⌉+1 = 3 bits.
  EXPECT_DOUBLE_EQ(step.bits_per_element, 3.0);
}

TEST(SignSgdMvSyncTest, RejectsNonPositiveStepsize) {
  EXPECT_THROW(SignSgdMvSync(ring_config(2), 0.0f), CheckError);
}

TEST(EfSignSgdSyncTest, ErrorFeedbackIdentityHolds) {
  // After one round, each worker's error memory must equal p − decode(C(p)),
  // with p = input (+ zero initial error).
  EfSignSgdSync sync(ring_config(2));
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor{0.9f, -0.1f, 0.4f, -0.6f});
  inputs.push_back(Tensor{0.2f, 0.2f, -0.2f, -0.2f});
  Tensor out(4);
  sync.synchronize(spans_of(inputs), out.span());

  // Output = (mean scale)·(mean sign).  Worker scales: ‖p‖₁/4.
  const float s0 = 0.5f;   // (0.9+0.1+0.4+0.6)/4
  const float s1 = 0.2f;
  const float mean_scale = (s0 + s1) / 2.0f;
  // Element 0: both positive → mean sign +1.
  EXPECT_NEAR(out[0], mean_scale, 1e-6f);
  // Element 1: signs −,+ → mean sign 0.
  EXPECT_NEAR(out[1], 0.0f, 1e-6f);
}

TEST(EfSignSgdSyncTest, ErrorAccumulatesAcrossRounds) {
  EfSignSgdSync sync(ring_config(2));
  auto inputs = random_inputs(2, 128, 5);
  Tensor out(128);
  sync.synchronize(spans_of(inputs), out.span());
  Tensor first = out;
  // Feeding zero gradients next round still flushes stored error: output
  // should be nonzero.
  std::vector<Tensor> zeros(2, Tensor(128));
  sync.synchronize(spans_of(zeros), out.span());
  EXPECT_GT(l2_norm(out.span()), 0.0f);
  (void)first;
}

TEST(SsdmMarSyncTest, OutputIsSignDescentStep) {
  const float eta_s = 0.125f;
  SsdmMarSync sync(ring_config(2), eta_s);
  auto inputs = random_inputs(2, 256, 6);
  Tensor out(256);
  const auto step = sync.synchronize(spans_of(inputs), out.span());
  // SSDM descends on the aggregated sign: every element is ±eta_s.
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_FLOAT_EQ(std::fabs(out[i]), eta_s) << "element " << i;
  }
  EXPECT_FALSE(step.full_precision);
}

TEST(SsdmMarSyncTest, StochasticSignFollowsGradientOnDominantElements) {
  // A strongly positive element must come out +eta_s almost always.
  SsdmMarSync sync(ring_config(2), 1.0f);
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor{10.0f, 0.1f});
  inputs.push_back(Tensor{10.0f, -0.1f});
  Tensor out(2);
  int positive = 0;
  for (int t = 0; t < 50; ++t) {
    sync.synchronize(spans_of(inputs), out.span());
    positive += out[0] > 0.0f;
  }
  EXPECT_GE(positive, 48);  // p(+) per worker ≈ 0.5 + 10/(2·10.0005)
}

TEST(SsdmPsSyncTest, RequiresPsParadigm) {
  EXPECT_THROW(SsdmPsSync(ring_config(2), 0.1f), CheckError);
  SyncConfig ps = ring_config(3);
  ps.paradigm = MarParadigm::kParameterServer;
  SsdmPsSync sync(ps, 0.1f);
  EXPECT_EQ(sync.name(), "SSDM-PS");
  auto inputs = random_inputs(3, 64, 7);
  Tensor out(64);
  const auto step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_DOUBLE_EQ(step.bits_per_element, 1.0);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_FLOAT_EQ(std::fabs(out[i]), 0.1f);
  }
}

TEST(CascadingSyncTest, RingOnlyAndFinite) {
  SyncConfig torus = ring_config(4);
  torus.paradigm = MarParadigm::kTorus2d;
  torus.torus_rows = 2;
  torus.torus_cols = 2;
  EXPECT_THROW(CascadingSync{torus}, CheckError);

  CascadingSync sync(ring_config(4));
  auto inputs = random_inputs(4, 128, 8);
  Tensor out(128);
  const auto step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_TRUE(all_finite(out.span()));
  EXPECT_GT(l2_norm(out.span()), 0.0f);
  EXPECT_DOUBLE_EQ(step.bits_per_element, 1.0);
}

TEST(MarsitSyncTest, AcceptsPsParadigm) {
  // Once ring-or-torus only; the parameter server (server colocated at
  // rank 0) is now a supported comparison baseline with the same ⊙ fold
  // semantics, so the cross-backend conformance matrix can cover it.
  SyncConfig ps = ring_config(4);
  ps.paradigm = MarParadigm::kParameterServer;
  MarsitOptions options;
  MarsitSync sync(ps, options);
  auto inputs = random_inputs(4, 128, 8);
  Tensor out(128);
  const auto step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_TRUE(all_finite(out.span()));
  EXPECT_GT(l2_norm(out.span()), 0.0f);
}

TEST(MarsitSyncTest, OneBitRoundOutputsScaledSigns) {
  MarsitOptions options;
  options.eta_s = 0.01f;
  options.full_precision_period = 0;  // never full precision
  MarsitSync sync(ring_config(3), options);
  auto inputs = random_inputs(3, 200, 9);
  Tensor out(200);
  const auto step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_FALSE(step.full_precision);
  EXPECT_DOUBLE_EQ(step.bits_per_element, 1.0);
  for (std::size_t i = 0; i < 200; ++i) {
    ASSERT_FLOAT_EQ(std::fabs(out[i]), options.eta_s) << "element " << i;
  }
}

TEST(MarsitSyncTest, CompensationIdentityHolds) {
  // After a one-bit round: c_{t+1}^{(m)} = (u_m + c_t^{(m)}) − g_t.  With
  // c_0 = 0 the mean compensation norm equals ‖mean(u) − g‖-ish; check the
  // exact per-worker identity via a second round with zero inputs: the
  // strategy must now aggregate signs of c_1 alone.
  MarsitOptions options;
  options.eta_s = 0.5f;
  MarsitSync sync(ring_config(2), options);
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor{2.0f, -2.0f});
  inputs.push_back(Tensor{2.0f, -2.0f});
  Tensor out(2);
  sync.synchronize(spans_of(inputs), out.span());
  // Unanimous signs: g = (+0.5, −0.5); c_m = (2−0.5, −2+0.5) = (1.5, −1.5).
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[1], -0.5f);
  EXPECT_NEAR(sync.mean_compensation_norm(),
              std::sqrt(1.5 * 1.5 * 2.0), 1e-6);

  // Round 2 with zero inputs: updates come purely from compensation, whose
  // signs are (+, −) on both workers → deterministic output again.
  std::vector<Tensor> zeros(2, Tensor(2));
  sync.synchronize(spans_of(zeros), out.span());
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[1], -0.5f);
}

TEST(MarsitSyncTest, FullPrecisionRoundResetsCompensation) {
  MarsitOptions options;
  options.eta_s = 0.5f;
  options.full_precision_period = 2;  // rounds 0, 2, 4... full precision
  MarsitSync sync(ring_config(2), options);
  auto inputs = random_inputs(2, 16, 10);
  Tensor out(16);

  // Round 0: full precision → exact mean, c = 0.
  auto step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_TRUE(step.full_precision);
  Tensor expected(16);
  aggregate_mean(spans_of(inputs), expected.span());
  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_FLOAT_EQ(out[i], expected[i]);
  }
  EXPECT_DOUBLE_EQ(sync.mean_compensation_norm(), 0.0);

  // Round 1: one-bit → compensation accumulates.
  step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_FALSE(step.full_precision);
  EXPECT_GT(sync.mean_compensation_norm(), 0.0);

  // Round 2: full precision again → compensation folded in, then reset.
  step = sync.synchronize(spans_of(inputs), out.span());
  EXPECT_TRUE(step.full_precision);
  EXPECT_DOUBLE_EQ(sync.mean_compensation_norm(), 0.0);
}

TEST(MarsitSyncTest, NamesEncodeKAndParadigm) {
  MarsitOptions options;
  options.full_precision_period = 100;
  MarsitSync with_k(ring_config(2), options);
  EXPECT_EQ(with_k.name(), "Marsit-100-RAR");
  options.full_precision_period = 0;
  MarsitSync plain(ring_config(2), options);
  EXPECT_EQ(plain.name(), "Marsit-RAR");
}

TEST(MarsitSyncTest, TorusFoldIsUnbiasedInTraining) {
  SyncConfig torus = ring_config(4, 12);
  torus.paradigm = MarParadigm::kTorus2d;
  torus.torus_rows = 2;
  torus.torus_cols = 2;
  MarsitOptions options;
  options.eta_s = 1.0f;
  MarsitSync sync(torus, options);

  // 3 of 4 workers positive on element 0, 1 of 4 on element 1.  Average the
  // global update over fresh strategies (new rng per round inside).
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor{1.0f, 1.0f});
  inputs.push_back(Tensor{1.0f, -1.0f});
  inputs.push_back(Tensor{1.0f, -1.0f});
  inputs.push_back(Tensor{-1.0f, -1.0f});
  // Compensation must not leak between trials: disable by resetting with a
  // full-precision period of 1?  No — use per-trial fresh strategies.
  double mean0 = 0.0, mean1 = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    SyncConfig cfg = torus;
    cfg.seed = 1000 + t;
    MarsitSync fresh(cfg, options);
    Tensor out(2);
    fresh.synchronize(spans_of(inputs), out.span());
    mean0 += out[0];
    mean1 += out[1];
  }
  // E[g_0] = (3−1)/4 = 0.5, E[g_1] = (1−3)/4 = −0.5; sd per trial = √(1−p²).
  EXPECT_NEAR(mean0 / trials, 0.5, 5.0 / std::sqrt(trials));
  EXPECT_NEAR(mean1 / trials, -0.5, 5.0 / std::sqrt(trials));
}

TEST(FactoryTest, BuildsEveryMethod) {
  SyncConfig config = ring_config(4);
  MethodOptions options;
  options.eta_s = 0.1f;
  options.full_precision_period = 10;
  for (SyncMethod method :
       {SyncMethod::kPsgd, SyncMethod::kSignSgdMv, SyncMethod::kEfSignSgd,
        SyncMethod::kSsdm, SyncMethod::kCascading, SyncMethod::kMarsit}) {
    auto strategy = make_sync_strategy(method, config, options);
    ASSERT_NE(strategy, nullptr) << sync_method_name(method);
    EXPECT_FALSE(strategy->name().empty());
  }
  SyncConfig ps = config;
  ps.paradigm = MarParadigm::kParameterServer;
  EXPECT_NE(make_sync_strategy(SyncMethod::kSsdmPs, ps, options), nullptr);
}

TEST(FactoryTest, MethodNames) {
  EXPECT_STREQ(sync_method_name(SyncMethod::kPsgd), "PSGD");
  EXPECT_STREQ(sync_method_name(SyncMethod::kMarsit), "Marsit");
  EXPECT_STREQ(sync_method_name(SyncMethod::kCascading), "Cascading");
}

TEST(SyncConfigTest, TorusShapeValidated) {
  SyncConfig bad = ring_config(6);
  bad.paradigm = MarParadigm::kTorus2d;
  bad.torus_rows = 2;
  bad.torus_cols = 2;  // 4 != 6
  EXPECT_THROW(PsgdSync{bad}, CheckError);
}

TEST(TimingConsistencyTest, MarsitRoundCheaperThanPsgdRound) {
  auto inputs = random_inputs(4, 4096, 13);
  Tensor out(4096);

  PsgdSync psgd(ring_config(4));
  const auto psgd_step = psgd.synchronize(spans_of(inputs), out.span());

  MarsitOptions options;
  MarsitSync mar(ring_config(4), options);
  const auto mar_step = mar.synchronize(spans_of(inputs), out.span());

  EXPECT_LT(mar_step.timing.completion_seconds,
            psgd_step.timing.completion_seconds);
  EXPECT_LT(mar_step.timing.total_wire_bits,
            psgd_step.timing.total_wire_bits / 20.0);
}

}  // namespace
}  // namespace marsit
