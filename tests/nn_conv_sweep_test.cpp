// Property sweep: Conv2d forward/backward against a brute-force reference
// over a grid of geometries (channels × spatial × kernel × stride ×
// padding).  Complements nn_gradcheck_test with exact-value checks — the
// im2col + GEMM implementation must match the definition of convolution,
// not merely have consistent gradients.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nn/conv.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

/// Direct (definition) convolution for reference.
void reference_conv(const std::vector<float>& x, const std::vector<float>& w,
                    const std::vector<float>& bias, std::vector<float>& y,
                    std::size_t batch, ImageDims in, std::size_t out_ch,
                    std::size_t k, std::size_t stride, std::size_t pad,
                    ImageDims out) {
  const std::size_t in_plane = in.height * in.width;
  const std::size_t out_plane = out.height * out.width;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_ch; ++oc) {
      for (std::size_t oy = 0; oy < out.height; ++oy) {
        for (std::size_t ox = 0; ox < out.width; ++ox) {
          double acc = bias[oc];
          for (std::size_t ic = 0; ic < in.channels; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy * stride + ky) -
                    static_cast<std::ptrdiff_t>(pad);
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (iy < 0 || ix < 0 ||
                    iy >= static_cast<std::ptrdiff_t>(in.height) ||
                    ix >= static_cast<std::ptrdiff_t>(in.width)) {
                  continue;
                }
                acc += static_cast<double>(
                           x[n * in.size() + ic * in_plane +
                             static_cast<std::size_t>(iy) * in.width +
                             static_cast<std::size_t>(ix)]) *
                       static_cast<double>(
                           w[((oc * in.channels + ic) * k + ky) * k + kx]);
              }
            }
          }
          y[n * out_ch * out_plane + oc * out_plane + oy * out.width + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
}

// (channels, height, width, out_channels, kernel, stride, padding)
using Geometry =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
               std::size_t, std::size_t, std::size_t>;

class ConvSweepTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(ConvSweepTest, ForwardMatchesDefinition) {
  const auto [c, h, w, oc, k, s, p] = GetParam();
  const ImageDims in{c, h, w};
  Conv2d conv(in, oc, k, s, p);
  Rng rng(1000 + c * 31 + h * 7 + k);
  conv.init(rng);

  const std::size_t batch = 2;
  std::vector<float> x(batch * in.size());
  fill_normal({x.data(), x.size()}, rng, 0.0f, 1.0f);

  std::vector<float> y(batch * conv.out_size());
  conv.forward({x.data(), x.size()}, batch, {y.data(), y.size()});

  std::vector<float> weights(conv.params().begin(), conv.params().end());
  const std::size_t weight_count = oc * c * k * k;
  std::vector<float> kernel(weights.begin(), weights.begin() + weight_count);
  std::vector<float> bias(weights.begin() + weight_count, weights.end());
  std::vector<float> expected(y.size());
  reference_conv(x, kernel, bias, expected, batch, in, oc, k, s, p,
                 conv.out_dims());

  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], expected[i], 1e-3f) << "output " << i;
  }
}

TEST_P(ConvSweepTest, BackwardInputGradientMatchesTransposedForward) {
  // For a linear operator, <y, C(x)> must equal <Cᵀ(y), x> for all x, y —
  // the adjoint identity that ties backward to forward without finite
  // differences (exact up to float rounding).
  const auto [c, h, w, oc, k, s, p] = GetParam();
  const ImageDims in{c, h, w};
  Conv2d conv(in, oc, k, s, p);
  Rng rng(2000 + c * 31 + h * 7 + k);
  conv.init(rng);
  // Remove the bias so the map is purely linear.
  auto params = conv.params();
  for (std::size_t i = oc * c * k * k; i < params.size(); ++i) {
    params[i] = 0.0f;
  }

  const std::size_t batch = 1;
  std::vector<float> x(in.size());
  fill_normal({x.data(), x.size()}, rng, 0.0f, 1.0f);
  std::vector<float> y(conv.out_size());
  conv.forward({x.data(), x.size()}, batch, {y.data(), y.size()});

  std::vector<float> probe(conv.out_size());
  fill_normal({probe.data(), probe.size()}, rng, 0.0f, 1.0f);
  conv.zero_grads();
  std::vector<float> dx(in.size());
  conv.backward({probe.data(), probe.size()}, batch, {dx.data(), dx.size()});

  const float lhs = dot({y.data(), y.size()}, {probe.data(), probe.size()});
  const float rhs = dot({dx.data(), dx.size()}, {x.data(), x.size()});
  EXPECT_NEAR(lhs, rhs, 1e-2f + 1e-3f * std::abs(lhs));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweepTest,
    ::testing::Values(Geometry{1, 4, 4, 1, 1, 1, 0},
                      Geometry{1, 5, 5, 2, 3, 1, 0},
                      Geometry{2, 5, 5, 3, 3, 1, 1},
                      Geometry{3, 6, 6, 2, 3, 2, 1},
                      Geometry{2, 7, 5, 4, 3, 2, 0},
                      Geometry{1, 8, 8, 2, 5, 1, 2},
                      Geometry{4, 4, 4, 4, 3, 1, 1},
                      Geometry{2, 9, 9, 2, 3, 3, 1}));

}  // namespace
}  // namespace marsit
