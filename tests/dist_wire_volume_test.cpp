// Wire-volume pinning for the socket backend (DESIGN.md §14): the paper's
// ultimate-compression claim, measured at the byte level on real TCP
// sockets rather than inferred from the α–β model.
//
// SocketTransport counts every payload byte and data frame it send()s.
// This test runs real one-bit rounds over loopback and pins:
//
//   * reduce-scatter mode moves exactly 2(M−1)·D sign bits per round
//     (D = the word-padded dimension), as M(M−1) reduce-scatter messages
//     plus M(M−1) all-gather messages — so the only bytes on the wire
//     beyond the paper's volume are the per-message frame header and CRC
//     footer, whose exact total the frame counters expose;
//   * legacy all-gather mode still moves M(M−1)·D sign bits;
//   * RoundReport accounting agrees bit-for-bit with the transport's own
//     byte counters: per-rank wire_bits equals 8 × measured payload bytes,
//     and total_wire_bits equals their sum on every rank.
#include "dist/worker.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "compress/kernels.hpp"
#include "data/synthetic_digits.hpp"
#include "net/frame.hpp"
#include "net/socket_transport.hpp"
#include "nn/models.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

constexpr std::size_t kWorkers = 4;
constexpr std::size_t kRounds = 3;

dist::WorkerConfig worker_config(SyncMode mode) {
  dist::WorkerConfig config;
  config.batch_size_per_worker = 8;
  config.optimizer = OptimizerKind::kSgd;
  config.eta_l = 0.05f;
  config.rounds = kRounds;
  config.trainer_seed = 5;
  config.sync_seed = 1177;
  config.paradigm = MarParadigm::kRing;
  config.sync_mode = mode;
  config.options.eta_s = 2e-3f;
  // No flush rounds: every round is a one-bit round, so the byte counters
  // pin the sign-bit volume alone.
  config.options.full_precision_period = 0;
  return config;
}

struct SocketRun {
  std::vector<dist::WorkerResult> results;
  std::vector<std::uint64_t> payload_bytes;  // per rank
  std::vector<std::uint64_t> data_frames;    // per rank
};

/// Runs the job over real loopback sockets, keeping the transports alive
/// past the workers so their byte/frame counters can be read back.
SocketRun run_over_sockets(const dist::WorkerConfig& config) {
  SyntheticDigits digits;
  std::vector<int> listeners(kWorkers);
  std::vector<std::uint16_t> ports(kWorkers);
  for (std::size_t r = 0; r < kWorkers; ++r) {
    listeners[r] = bind_loopback_listener(&ports[r]);
  }
  std::vector<std::unique_ptr<SocketTransport>> transports(kWorkers);
  SocketRun run;
  run.results.resize(kWorkers);
  std::vector<std::thread> ranks;
  for (std::size_t r = 0; r < kWorkers; ++r) {
    ranks.emplace_back([&, r] {
      std::vector<int> fds = connect_socket_mesh(
          r, kWorkers, listeners[r], {ports.data(), ports.size()});
      transports[r] = std::make_unique<SocketTransport>(r, std::move(fds));
      const auto factory = [&digits] {
        return make_mlp(digits.sample_size(), {8}, digits.num_classes());
      };
      run.results[r] =
          dist::run_marsit_worker(*transports[r], digits, factory, config);
    });
  }
  for (std::thread& t : ranks) {
    t.join();
  }
  for (std::size_t r = 0; r < kWorkers; ++r) {
    run.payload_bytes.push_back(transports[r]->payload_bytes_sent());
    run.data_frames.push_back(transports[r]->data_frames_sent());
  }
  return run;
}

/// The word-padded model dimension the sign plane actually carries.
std::size_t sign_words() {
  SyntheticDigits digits;
  Sequential model =
      make_mlp(digits.sample_size(), {8}, digits.num_classes());
  return kernels::words_for(model.param_count());
}

/// RoundReport accounting must agree with the transport's byte counters:
/// wire_bits is 8 × this rank's payload bytes, total_wire_bits their sum.
void check_reports_match_counters(const SocketRun& run) {
  double total_payload_bits = 0.0;
  for (std::size_t r = 0; r < kWorkers; ++r) {
    total_payload_bits += static_cast<double>(run.payload_bytes[r]) * 8.0;
  }
  for (std::size_t r = 0; r < kWorkers; ++r) {
    double rank_bits = 0.0;
    double rank_total_bits = 0.0;
    for (const dist::RoundReport& report : run.results[r].rounds) {
      rank_bits += report.wire_bits;
      rank_total_bits += report.total_wire_bits;
    }
    EXPECT_DOUBLE_EQ(rank_bits,
                     static_cast<double>(run.payload_bytes[r]) * 8.0)
        << "rank " << r;
    EXPECT_DOUBLE_EQ(rank_total_bits, total_payload_bits) << "rank " << r;
  }
}

TEST(DistWireVolumeTest, ReduceScatterMovesExactlyTwiceMMinusOneD) {
  set_log_level(LogLevel::kWarning);
  const SocketRun run = run_over_sockets(worker_config(
      SyncMode::kReduceScatter));
  const std::uint64_t w = sign_words();
  ASSERT_GE(w, kWorkers) << "model too small: empty ring segments";

  // Payload: each round's reduce-scatter pass moves (M−1)·D sign bits and
  // the all-gather pass moves them again — 2(M−1)·D total, D = 64·w.
  std::uint64_t payload = 0;
  std::uint64_t frames = 0;
  for (std::size_t r = 0; r < kWorkers; ++r) {
    payload += run.payload_bytes[r];
    frames += run.data_frames[r];
  }
  const std::uint64_t word_bytes = w * sizeof(std::uint64_t);
  EXPECT_EQ(payload, kRounds * 2 * (kWorkers - 1) * word_bytes);

  // Frames: one message per rank per step, M−1 steps per pass, two passes —
  // every non-payload byte on the wire is these frames' header + CRC.
  EXPECT_EQ(frames, kRounds * 2 * kWorkers * (kWorkers - 1));
  const std::uint64_t framed_bytes =
      payload + frames * (kFrameHeaderBytes + kFrameFooterBytes);
  EXPECT_EQ(framed_bytes,
            kRounds * 2 * (kWorkers - 1) * word_bytes +
                kRounds * 2 * kWorkers * (kWorkers - 1) *
                    (kFrameHeaderBytes + kFrameFooterBytes));

  // The α–β report pins the same number: 2(M−1)·D bits per round.
  for (std::size_t r = 0; r < kWorkers; ++r) {
    for (const dist::RoundReport& report : run.results[r].rounds) {
      EXPECT_EQ(report.total_wire_bits,
                static_cast<double>(2 * (kWorkers - 1) * word_bytes * 8));
    }
  }
  check_reports_match_counters(run);
}

TEST(DistWireVolumeTest, LegacyAllGatherStillMovesMTimesMMinusOneD) {
  set_log_level(LogLevel::kWarning);
  const SocketRun run = run_over_sockets(worker_config(
      SyncMode::kLegacyAllGather));
  const std::uint64_t w = sign_words();
  const std::uint64_t word_bytes = w * sizeof(std::uint64_t);

  std::uint64_t payload = 0;
  std::uint64_t frames = 0;
  for (std::size_t r = 0; r < kWorkers; ++r) {
    // Ring all-gather: every rank forwards one full sign vector per step.
    EXPECT_EQ(run.payload_bytes[r],
              kRounds * (kWorkers - 1) * word_bytes);
    EXPECT_EQ(run.data_frames[r], kRounds * (kWorkers - 1));
    payload += run.payload_bytes[r];
    frames += run.data_frames[r];
  }
  EXPECT_EQ(payload, kRounds * kWorkers * (kWorkers - 1) * word_bytes);
  EXPECT_EQ(frames, kRounds * kWorkers * (kWorkers - 1));

  for (std::size_t r = 0; r < kWorkers; ++r) {
    for (const dist::RoundReport& report : run.results[r].rounds) {
      EXPECT_EQ(report.total_wire_bits,
                static_cast<double>(kWorkers * (kWorkers - 1) * word_bytes *
                                    8));
    }
  }
  check_reports_match_counters(run);
}

}  // namespace
}  // namespace marsit
