// Statistical harness for the ⊙ operator (ISSUE: `ctest -L stat`).
//
// Where tests/core_one_bit_test.cpp spot-checks single configurations with
// binomial z-scores, this file runs the distributional checks the paper's
// Eq. 2 actually claims:
//
//   * a chi-square goodness-of-fit over *every* hop position m ∈ {2..16},
//     for both disagreement branches (the incoming aggregate survives w.p.
//     (m−1)/m; the local worker wins w.p. 1/m);
//   * end-to-end unbiasedness of the full ring chain fold and the
//     ragged-torus fold (the degraded-membership shape from
//     MarsitSync::fold_signs_words) against the exact mean sign;
//   * the same two families with the fold split across independently
//     seeded segments (core/one_bit.hpp's segment_fold_seed /
//     segment_op_rng — the reduce-scatter rng discipline), at segment
//     counts {1, 2, 7, 64}, including the production segmented_ring_fold.
//
// Every check is seeded and thresholded so loosely (|z| < 5.5, p > 1e−7)
// that a correct implementation fails with probability < 1e−6 per run —
// the harness can run at distinct seeds (MARSIT_STAT_SEED) forever without
// flaking, while a biased branch fails deterministically.
#include "core/one_bit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <functional>
#include <vector>

#include "core/segmented_fold.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace marsit {
namespace {

constexpr double kMaxAbsZ = 5.5;
constexpr double kMinP = 1e-7;

/// Base seed for every check in this file; override with MARSIT_STAT_SEED to
/// re-run the whole harness on an independent sample.
std::uint64_t stat_seed() {
  if (const char* env = std::getenv("MARSIT_STAT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedu;
}

/// Draws `trials` combines of two fully-disagreeing vectors with weights
/// (weight_a, 1) and returns the number of surviving a-bits out of `n`.
std::size_t disagreement_ones(bool a_value, std::size_t weight_a,
                              std::size_t d, int trials, Rng& rng) {
  BitVector a(d), b(d);
  if (a_value) {
    a.fill(true);
  } else {
    b.fill(true);
  }
  std::size_t ones = 0;
  for (int t = 0; t < trials; ++t) {
    ones += one_bit_combine(a, weight_a, b, 1, rng).popcount();
  }
  return ones;
}

/// Chi-square GOF of per-hop disagreement outcomes across m ∈ {2..16}.
/// `a_is_one` selects the branch: the incoming aggregate carries 1-bits
/// (survival probability (m−1)/m) or the local worker does (1/m).
void check_disagreement_branch(bool a_is_one, std::uint64_t salt) {
  const std::size_t d = 64 * 256;
  const int trials = 4;
  const double n = static_cast<double>(d) * trials;
  std::vector<std::size_t> observed;
  std::vector<double> expected;
  for (std::size_t m = 2; m <= 16; ++m) {
    Rng rng(derive_seed(derive_seed(stat_seed(), salt), m));
    const std::size_t ones =
        disagreement_ones(a_is_one, m - 1, d, trials, rng);
    const double p_one =
        a_is_one ? static_cast<double>(m - 1) / static_cast<double>(m)
                 : 1.0 / static_cast<double>(m);
    observed.push_back(ones);
    observed.push_back(static_cast<std::size_t>(n) - ones);
    expected.push_back(n * p_one);
    expected.push_back(n * (1.0 - p_one));
  }
  // Each hop position contributes one free cell (ones + zeros are
  // complementary), so dof = #positions.
  const double statistic = chi_square_statistic(observed, expected);
  const std::size_t dof = 15;
  EXPECT_GT(chi_square_p_value(statistic, dof), kMinP)
      << "Eq. 2 " << (a_is_one ? "(m-1)/m" : "1/m")
      << " branch failed GOF: chi2=" << statistic << " dof=" << dof;
}

TEST(OneBitStatTest, AggregateSurvivalBranchMatchesEq2AcrossHops) {
  check_disagreement_branch(/*a_is_one=*/true, /*salt=*/0xa001);
}

TEST(OneBitStatTest, LocalWorkerBranchMatchesEq2AcrossHops) {
  check_disagreement_branch(/*a_is_one=*/false, /*salt=*/0xa002);
}

/// One segment-seeded combine of two fully-disagreeing vectors: the word
/// range is partitioned into `segments` slices and each slice draws from
/// its own segment_op_rng stream — exactly the reduce-scatter rng
/// discipline, where no rank ever sees another segment's stream.
std::size_t segmented_disagreement_ones(bool a_value, std::size_t weight_a,
                                        std::size_t d, int trials,
                                        std::uint64_t round_seed,
                                        std::size_t segments) {
  BitVector a(d), b(d);
  if (a_value) {
    a.fill(true);
  } else {
    b.fill(true);
  }
  const std::size_t num_words = a.words().size();
  std::size_t ones = 0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t trial_seed =
        derive_seed(round_seed, static_cast<std::uint64_t>(t));
    BitVector acc = a;
    for (std::size_t s = 0; s < segments; ++s) {
      const WordSegment seg = word_segment(num_words, segments, s);
      if (seg.count == 0) {
        continue;
      }
      Rng rng = segment_op_rng(segment_fold_seed(trial_seed, s), 0);
      one_bit_combine_words(acc.words().subspan(seg.begin, seg.count),
                            weight_a,
                            b.words().subspan(seg.begin, seg.count), 1, rng);
    }
    ones += acc.popcount();
  }
  return ones;
}

/// Chi-square GOF of the segment-seeded disagreement outcomes across
/// m ∈ {2..16}, at one segment count.  Splitting the fold across
/// independent streams must leave both Eq. 2 branch probabilities intact.
void check_segmented_disagreement_branch(bool a_is_one, std::size_t segments,
                                         std::uint64_t salt) {
  const std::size_t d = 64 * 256;  // 256 words: divisible down to 64 slices
  const int trials = 4;
  const double n = static_cast<double>(d) * trials;
  std::vector<std::size_t> observed;
  std::vector<double> expected;
  for (std::size_t m = 2; m <= 16; ++m) {
    const std::uint64_t round_seed =
        derive_seed(derive_seed(stat_seed(), salt), m);
    const std::size_t ones = segmented_disagreement_ones(
        a_is_one, m - 1, d, trials, round_seed, segments);
    const double p_one =
        a_is_one ? static_cast<double>(m - 1) / static_cast<double>(m)
                 : 1.0 / static_cast<double>(m);
    observed.push_back(ones);
    observed.push_back(static_cast<std::size_t>(n) - ones);
    expected.push_back(n * p_one);
    expected.push_back(n * (1.0 - p_one));
  }
  const double statistic = chi_square_statistic(observed, expected);
  const std::size_t dof = 15;
  EXPECT_GT(chi_square_p_value(statistic, dof), kMinP)
      << "Eq. 2 " << (a_is_one ? "(m-1)/m" : "1/m") << " branch over "
      << segments << " seeded segments failed GOF: chi2=" << statistic
      << " dof=" << dof;
}

TEST(OneBitStatTest, AggregateSurvivalBranchUnbiasedAcrossSeededSegments) {
  std::uint64_t salt = 0xa101;
  for (const std::size_t segments : {1u, 2u, 7u, 64u}) {
    check_segmented_disagreement_branch(/*a_is_one=*/true, segments, salt++);
  }
}

TEST(OneBitStatTest, LocalWorkerBranchUnbiasedAcrossSeededSegments) {
  std::uint64_t salt = 0xa201;
  for (const std::size_t segments : {1u, 2u, 7u, 64u}) {
    check_segmented_disagreement_branch(/*a_is_one=*/false, segments, salt++);
  }
}

/// Element layout for the fold checks: element j of every repetition block
/// has exactly j of the m workers positive, so the folded bit must be 1
/// with probability j/m exactly.
std::vector<BitVector> ladder_signs(std::size_t m, std::size_t reps) {
  const std::size_t d = (m + 1) * reps;
  std::vector<BitVector> signs(m, BitVector(d));
  for (std::size_t w = 0; w < m; ++w) {
    for (std::size_t j = w + 1; j <= m; ++j) {
      for (std::size_t r = 0; r < reps; ++r) {
        signs[w].set(j * reps + r, true);
      }
    }
  }
  return signs;
}

/// Tallies per-element-class one-counts over repeated trial-indexed folds
/// and z-tests every class against its exact mean-sign probability j/m.
void check_fold_unbiased_by_trial(
    std::size_t m, std::size_t reps, int trials,
    const std::function<BitVector(std::size_t)>& fold, const char* what) {
  std::vector<std::size_t> ones(m + 1, 0);
  for (int t = 0; t < trials; ++t) {
    const BitVector folded = fold(static_cast<std::size_t>(t));
    for (std::size_t j = 0; j <= m; ++j) {
      for (std::size_t r = 0; r < reps; ++r) {
        ones[j] += folded.get(j * reps + r);
      }
    }
  }
  const std::size_t n = reps * static_cast<std::size_t>(trials);
  EXPECT_EQ(ones[0], 0u) << what << ": unanimous −1 element flipped";
  EXPECT_EQ(ones[m], n) << what << ": unanimous +1 element flipped";
  for (std::size_t j = 1; j < m; ++j) {
    const double p = static_cast<double>(j) / static_cast<double>(m);
    EXPECT_LT(std::fabs(binomial_z_score(ones[j], n, p)), kMaxAbsZ)
        << what << ": element class k=" << j << "/" << m << " biased (freq "
        << static_cast<double>(ones[j]) / static_cast<double>(n) << ")";
  }
}

/// Single-stream adapter: one Rng drives every trial, as the legacy
/// all-gather fold does.
void check_fold_unbiased(std::size_t m, std::size_t reps, int trials,
                         const std::function<BitVector(Rng&)>& fold,
                         std::uint64_t salt, const char* what) {
  Rng rng(derive_seed(stat_seed(), salt));
  check_fold_unbiased_by_trial(
      m, reps, trials, [&](std::size_t) { return fold(rng); }, what);
}

TEST(OneBitStatTest, FullRingFoldIsUnbiasedForMeanSign) {
  const std::size_t m = 8;
  const std::size_t reps = 64;
  const std::vector<BitVector> signs = ladder_signs(m, reps);
  check_fold_unbiased(
      m, reps, /*trials=*/400,
      [&signs](Rng& rng) { return one_bit_fold(signs, rng); },
      /*salt=*/0xb001, "ring chain fold");
}

TEST(OneBitStatTest, RaggedTorusFoldIsUnbiasedForMeanSign) {
  // The degraded-torus shape from MarsitSync::fold_signs_words: 7 survivors
  // re-form as rows of 3 (last row short), rows fold internally with weights
  // 1..len, then whole-row aggregates merge into row 0 carrying their true
  // accumulated weights.  Unbiasedness must hold for the ragged shape too.
  const std::size_t m = 7;
  const std::size_t cols = 3;
  const std::size_t reps = 64;
  const std::vector<BitVector> signs = ladder_signs(m, reps);
  auto ragged_fold = [&signs, m, cols](Rng& rng) {
    std::vector<BitVector> work = signs;  // fold mutates in place
    std::size_t merged_weight = 0;
    for (std::size_t base = 0; base < m; base += cols) {
      const std::size_t len = std::min(cols, m - base);
      for (std::size_t c = 1; c < len; ++c) {
        one_bit_combine_words(work[base].words(), c,
                              work[base + c].words(), 1, rng);
      }
      if (base == 0) {
        merged_weight = len;
      } else {
        one_bit_combine_words(work[0].words(), merged_weight,
                              work[base].words(), len, rng);
        merged_weight += len;
      }
    }
    return work[0];
  };
  check_fold_unbiased(m, reps, /*trials=*/400, ragged_fold,
                      /*salt=*/0xb002, "ragged torus fold");
}

TEST(OneBitStatTest, RandomGradientRingFoldMatchesExactMeanSign) {
  // End-to-end on *random* sign patterns rather than the ladder layout:
  // group elements by their exact positive count k (which fully determines
  // the fold distribution) and z-test each group's pooled one-frequency
  // against k/M.
  const std::size_t m = 5;
  const std::size_t d = 64 * 64;
  std::vector<BitVector> signs(m, BitVector(d));
  Rng init(derive_seed(stat_seed(), 0xc001));
  for (std::size_t w = 0; w < m; ++w) {
    for (std::size_t word = 0; word < signs[w].words().size(); ++word) {
      signs[w].words()[word] = init.next_u64();
    }
  }
  std::vector<std::size_t> k_of(d, 0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t w = 0; w < m; ++w) {
      k_of[i] += signs[w].get(i);
    }
  }
  std::vector<std::size_t> group_size(m + 1, 0);
  for (std::size_t i = 0; i < d; ++i) {
    ++group_size[k_of[i]];
  }

  const int trials = 200;
  std::vector<std::size_t> ones(m + 1, 0);
  Rng rng(derive_seed(stat_seed(), 0xc002));
  for (int t = 0; t < trials; ++t) {
    const BitVector folded = one_bit_fold(signs, rng);
    for (std::size_t i = 0; i < d; ++i) {
      ones[k_of[i]] += folded.get(i);
    }
  }
  for (std::size_t k = 1; k < m; ++k) {
    ASSERT_GT(group_size[k], 100u) << "degenerate random draw";
    const std::size_t n = group_size[k] * static_cast<std::size_t>(trials);
    const double p = static_cast<double>(k) / static_cast<double>(m);
    EXPECT_LT(std::fabs(binomial_z_score(ones[k], n, p)), kMaxAbsZ)
        << "random-gradient fold biased for k=" << k << "/" << m;
  }
}

/// Chain-folds the m ladder vectors with the word range split into
/// `segments` independently seeded slices: segment s's chain runs ops
/// k = 0..m−2 with segment_op_rng(segment_fold_seed(round_seed, s), k) —
/// the reduce-scatter discipline at an arbitrary segment count.
BitVector segmented_chain_fold_trial(const std::vector<BitVector>& signs,
                                     std::size_t segments,
                                     std::uint64_t round_seed) {
  std::vector<BitVector> work = signs;  // fold mutates in place
  const std::size_t num_words = work[0].words().size();
  for (std::size_t s = 0; s < segments; ++s) {
    const WordSegment seg = word_segment(num_words, segments, s);
    if (seg.count == 0) {
      continue;
    }
    const std::uint64_t segment_seed = segment_fold_seed(round_seed, s);
    auto slice = work[0].words().subspan(seg.begin, seg.count);
    for (std::size_t k = 0; k + 1 < work.size(); ++k) {
      Rng rng = segment_op_rng(segment_seed, k);
      one_bit_combine_words(slice, k + 1,
                            work[k + 1].words().subspan(seg.begin, seg.count),
                            1, rng);
    }
  }
  return work[0];
}

TEST(OneBitStatTest, SegmentSeededChainFoldIsUnbiasedForMeanSign) {
  // reps = 512 so the ladder spans (m+1)·512 = 4608 bits = 72 words —
  // enough for every slice of the 64-segment split to be non-empty.
  const std::size_t m = 8;
  const std::size_t reps = 512;
  const std::vector<BitVector> signs = ladder_signs(m, reps);
  std::uint64_t salt = 0xb101;
  for (const std::size_t segments : {1u, 2u, 7u, 64u}) {
    const std::uint64_t base = derive_seed(stat_seed(), salt++);
    check_fold_unbiased_by_trial(
        m, reps, /*trials=*/64,
        [&signs, segments, base](std::size_t trial) {
          return segmented_chain_fold_trial(
              signs, segments, derive_seed(base, trial));
        },
        "segment-seeded chain fold");
  }
}

TEST(OneBitStatTest, ProductionSegmentedRingFoldIsUnbiasedForMeanSign) {
  // The exact production path reduce-scatter rounds run in the simulator
  // (core/segmented_fold.hpp): m rank-owned segments, each chain starting
  // at its owner rank, result gathered into signs[0].
  const std::size_t m = 8;
  const std::size_t reps = 512;
  const std::vector<BitVector> signs = ladder_signs(m, reps);
  const std::uint64_t base = derive_seed(stat_seed(), 0xb201);
  check_fold_unbiased_by_trial(
      m, reps, /*trials=*/64,
      [&signs, base](std::size_t trial) {
        std::vector<BitVector> work = signs;
        segmented_ring_fold(work, work.size(), work[0].words().size(),
                            derive_seed(base, trial));
        return work[0];
      },
      "production segmented ring fold");
}

TEST(OneBitStatTest, ProductionSegmentedTorusFoldIsUnbiasedForMeanSign) {
  // The four-phase torus reduce-scatter (2×4 shape), again via the exact
  // production entry point.
  const std::size_t rows = 2;
  const std::size_t cols = 4;
  const std::size_t m = rows * cols;
  const std::size_t reps = 512;
  const std::vector<BitVector> signs = ladder_signs(m, reps);
  const std::uint64_t base = derive_seed(stat_seed(), 0xb202);
  check_fold_unbiased_by_trial(
      m, reps, /*trials=*/64,
      [&signs, rows, cols, base](std::size_t trial) {
        std::vector<BitVector> work = signs;
        segmented_torus_fold(work, work.size(), rows, cols,
                             work[0].words().size(), derive_seed(base, trial));
        return work[0];
      },
      "production segmented torus fold");
}

}  // namespace
}  // namespace marsit
