#include "compress/bit_vector.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace marsit {
namespace {

TEST(BitVectorTest, ConstructedAllZero) {
  BitVector bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.num_words(), 2u);
  EXPECT_EQ(bits.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(bits.get(i));
  }
}

TEST(BitVectorTest, SetAndGet) {
  BitVector bits(70);
  bits.set(0, true);
  bits.set(63, true);
  bits.set(64, true);
  bits.set(69, true);
  EXPECT_TRUE(bits.get(0));
  EXPECT_TRUE(bits.get(63));
  EXPECT_TRUE(bits.get(64));
  EXPECT_TRUE(bits.get(69));
  EXPECT_FALSE(bits.get(1));
  EXPECT_EQ(bits.popcount(), 4u);
  bits.set(63, false);
  EXPECT_FALSE(bits.get(63));
  EXPECT_EQ(bits.popcount(), 3u);
}

TEST(BitVectorTest, OutOfRangeThrows) {
  BitVector bits(10);
  EXPECT_THROW(bits.get(10), CheckError);
  EXPECT_THROW(bits.set(10, true), CheckError);
}

TEST(BitVectorTest, FillKeepsTailZero) {
  BitVector bits(70);  // 6 tail bits in word 1
  bits.fill(true);
  EXPECT_EQ(bits.popcount(), 70u);
  // The tail of the last word must stay clear so word-wise ops are exact.
  EXPECT_EQ(bits.words()[1] >> 6, 0u);
}

TEST(BitVectorTest, LogicalOps) {
  BitVector a(130), b(130);
  a.set(0, true);
  a.set(100, true);
  b.set(100, true);
  b.set(129, true);

  BitVector and_result = a;
  and_result &= b;
  EXPECT_EQ(and_result.popcount(), 1u);
  EXPECT_TRUE(and_result.get(100));

  BitVector or_result = a;
  or_result |= b;
  EXPECT_EQ(or_result.popcount(), 3u);

  BitVector xor_result = a;
  xor_result ^= b;
  EXPECT_EQ(xor_result.popcount(), 2u);
  EXPECT_TRUE(xor_result.get(0));
  EXPECT_TRUE(xor_result.get(129));
}

TEST(BitVectorTest, OpsRejectSizeMismatch) {
  BitVector a(10), b(11);
  EXPECT_THROW(a &= b, CheckError);
  EXPECT_THROW(a |= b, CheckError);
  EXPECT_THROW(a ^= b, CheckError);
  EXPECT_THROW((void)a.hamming_distance(b), CheckError);
}

TEST(BitVectorTest, HammingDistance) {
  BitVector a(65), b(65);
  EXPECT_EQ(a.hamming_distance(b), 0u);
  a.set(3, true);
  b.set(64, true);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  b.set(3, true);
  EXPECT_EQ(a.hamming_distance(b), 1u);
}

TEST(BitVectorTest, EqualityAndCopies) {
  BitVector a(40);
  a.set(5, true);
  BitVector b = a;
  EXPECT_EQ(a, b);
  b.set(6, true);
  EXPECT_NE(a, b);
}

TEST(BitVectorTest, WireBitsEqualsSize) {
  BitVector a(123);
  EXPECT_EQ(a.wire_bits(), 123u);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bits;
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.num_words(), 0u);
  EXPECT_EQ(bits.popcount(), 0u);
}

TEST(BitVectorTest, ExactWordBoundary) {
  BitVector bits(128);
  EXPECT_EQ(bits.num_words(), 2u);
  bits.fill(true);
  EXPECT_EQ(bits.popcount(), 128u);
}

}  // namespace
}  // namespace marsit
