#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TensorTest, SizeConstructorZeroFills) {
  Tensor t(5);
  EXPECT_EQ(t.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, ShapeConstructor) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(2), 4u);
  EXPECT_THROW(t.dim(3), CheckError);
}

TEST(TensorTest, InitializerList) {
  Tensor t{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], 2.0f);
}

TEST(TensorTest, BoundsCheckedAccess) {
  Tensor t(3);
  t.at(2) = 5.0f;
  EXPECT_EQ(t.at(2), 5.0f);
  EXPECT_THROW(t.at(3), CheckError);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t{1, 2, 3, 4, 5, 6};
  t.reshape({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t[5], 6.0f);
  EXPECT_THROW(t.reshape({7}), CheckError);
}

TEST(TensorTest, FromVectorMovesData) {
  Tensor t = Tensor::from_vector({9.0f, 8.0f});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], 9.0f);
}

TEST(TensorTest, DebugString) {
  Tensor t = Tensor::zeros({2, 2});
  EXPECT_EQ(t.debug_string(), "shape=[2,2] size=4");
}

TEST(TensorTest, BracedIntegerListIsValuesNotShape) {
  // Documented hazard: a braced integer list selects the float-values
  // constructor; Tensor::zeros is the shape-based path.
  Tensor values{2, 3, 4};
  EXPECT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], 2.0f);
}

TEST(OpsTest, AxpyAndScale) {
  Tensor x{1, 2, 3};
  Tensor y{10, 20, 30};
  axpy(2.0f, x.span(), y.span());
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[2], 36.0f);
  scale(y.span(), 0.5f);
  EXPECT_EQ(y[0], 6.0f);
}

TEST(OpsTest, AddSubHadamardSupportAliasing) {
  Tensor a{1, 2, 3};
  Tensor b{4, 5, 6};
  add(a.span(), b.span(), a.span());
  EXPECT_EQ(a[2], 9.0f);
  sub(a.span(), b.span(), a.span());
  EXPECT_EQ(a[2], 3.0f);
  hadamard(a.span(), b.span(), a.span());
  EXPECT_EQ(a[2], 18.0f);
}

TEST(OpsTest, ExtentMismatchThrows) {
  Tensor a(3), b(4);
  EXPECT_THROW(add(a.span(), b.span(), a.span()), CheckError);
  EXPECT_THROW(dot(a.span(), b.span()), CheckError);
}

TEST(OpsTest, Reductions) {
  Tensor x{3, -4, 0};
  EXPECT_FLOAT_EQ(dot(x.span(), x.span()), 25.0f);
  EXPECT_FLOAT_EQ(l1_norm(x.span()), 7.0f);
  EXPECT_FLOAT_EQ(l2_norm(x.span()), 5.0f);
  EXPECT_FLOAT_EQ(squared_l2_norm(x.span()), 25.0f);
  EXPECT_FLOAT_EQ(sum(x.span()), -1.0f);
  EXPECT_FLOAT_EQ(mean(x.span()), -1.0f / 3.0f);
  EXPECT_FLOAT_EQ(max_abs(x.span()), 4.0f);
  EXPECT_EQ(argmax(x.span()), 0u);
}

TEST(OpsTest, ArgmaxFirstOnTies) {
  Tensor x{1, 3, 3, 2};
  EXPECT_EQ(argmax(x.span()), 1u);
}

TEST(OpsTest, AllFiniteDetectsNanAndInf) {
  Tensor x{1, 2, 3};
  EXPECT_TRUE(all_finite(x.span()));
  x[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(all_finite(x.span()));
  x[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(all_finite(x.span()));
}

TEST(OpsTest, FillNormalMoments) {
  Tensor x(50000);
  Rng rng(3);
  fill_normal(x.span(), rng, 2.0f, 0.5f);
  EXPECT_NEAR(mean(x.span()), 2.0f, 0.02f);
}

TEST(OpsTest, FillUniformRange) {
  Tensor x(10000);
  Rng rng(4);
  fill_uniform(x.span(), rng, -1.0f, 1.0f);
  for (float v : x.span()) {
    ASSERT_GE(v, -1.0f);
    ASSERT_LT(v, 1.0f);
  }
  EXPECT_NEAR(mean(x.span()), 0.0f, 0.05f);
}

// Reference (i,j,k) triple-loop GEMM to validate the optimized kernels.
void naive_matmul(const std::vector<float>& a, const std::vector<float>& b,
                  std::vector<float>& c, std::size_t m, std::size_t k,
                  std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(b[p * n + j]);
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class MatmulTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MatmulTest, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(42);
  std::vector<float> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  std::vector<float> expected(m * n);
  naive_matmul(a, b, expected, m, k, n);

  std::vector<float> c(m * n, 99.0f);
  matmul({a.data(), a.size()}, {b.data(), b.size()}, {c.data(), c.size()},
         m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-3f) << "index " << i;
  }

  // aᵀ·b variant: store a transposed (k×m) and expect the same product.
  std::vector<float> at(k * m);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      at[p * m + i] = a[i * k + p];
    }
  }
  std::vector<float> c2(m * n, 0.0f);
  matmul_at_b({at.data(), at.size()}, {b.data(), b.size()},
              {c2.data(), c2.size()}, m, k, n);
  for (std::size_t i = 0; i < c2.size(); ++i) {
    ASSERT_NEAR(c2[i], expected[i], 1e-3f);
  }

  // a·bᵀ variant: store b transposed (n×k).
  std::vector<float> bt(n * k);
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) {
      bt[j * k + p] = b[p * n + j];
    }
  }
  std::vector<float> c3(m * n, 0.0f);
  matmul_a_bt({a.data(), a.size()}, {bt.data(), bt.size()},
              {c3.data(), c3.size()}, m, k, n);
  for (std::size_t i = 0; i < c3.size(); ++i) {
    ASSERT_NEAR(c3[i], expected[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 32, 8), std::make_tuple(33, 17, 9)));

TEST(OpsTest, MatmulBetaAccumulates) {
  std::vector<float> a{1, 0, 0, 1};  // identity 2x2
  std::vector<float> b{1, 2, 3, 4};
  std::vector<float> c{10, 10, 10, 10};
  matmul({a.data(), 4}, {b.data(), 4}, {c.data(), 4}, 2, 2, 2, /*beta=*/1.0f);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(OpsTest, MatmulExtentChecks) {
  std::vector<float> a(6), b(6), c(5);
  EXPECT_THROW(matmul({a.data(), 6}, {b.data(), 6}, {c.data(), 5}, 2, 3, 2),
               CheckError);
}

TEST(OpsTest, CopyInto) {
  Tensor src{1, 2, 3};
  Tensor dst(3);
  copy_into(src.span(), dst.span());
  EXPECT_EQ(dst[2], 3.0f);
}

TEST(OpsTest, MeanOfEmptyThrows) {
  EXPECT_THROW(mean({}), CheckError);
  EXPECT_THROW(argmax({}), CheckError);
}

}  // namespace
}  // namespace marsit
