#include "core/distributed_sgd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

SyncConfig ring_config(std::size_t workers, std::uint64_t seed) {
  SyncConfig config;
  config.num_workers = workers;
  config.paradigm = MarParadigm::kRing;
  config.seed = seed;
  return config;
}

TEST(QuadraticObjectiveTest, GradientPointsAtTarget) {
  const auto objective = make_quadratic_objective(8, 3, /*sigma=*/0.0, 21);
  Tensor x(8);
  Tensor grad(8);
  // Noise-free gradient of worker w at x is x − b_w; at the per-worker
  // minimum the mean-gradient over workers vanishes only at mean(b).
  objective.gradient(0, 0, x.span(), grad.span());
  EXPECT_TRUE(all_finite(grad.span()));
  // Deterministic: same (worker, round, x) gives the same gradient.
  Tensor grad2(8);
  objective.gradient(0, 0, x.span(), grad2.span());
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_FLOAT_EQ(grad[i], grad2[i]);
  }
}

TEST(QuadraticObjectiveTest, NoiseHasRequestedScale) {
  const auto objective = make_quadratic_objective(4096, 2, /*sigma=*/0.5, 22);
  Tensor x(4096);
  Tensor noisy(4096), clean(4096);
  objective.gradient(0, 0, x.span(), noisy.span());
  const auto clean_objective = make_quadratic_objective(4096, 2, 0.0, 22);
  clean_objective.gradient(0, 0, x.span(), clean.span());
  Tensor diff(4096);
  sub(noisy.span(), clean.span(), diff.span());
  const double sd = l2_norm(diff.span()) / std::sqrt(4096.0);
  EXPECT_NEAR(sd, 0.5, 0.05);
}

TEST(DistributedSgdTest, PsgdConvergesOnQuadratic) {
  const std::size_t d = 32, m = 4;
  const auto objective = make_quadratic_objective(d, m, 0.1, 23);
  PsgdSync strategy(ring_config(m, 23));
  Tensor x0(d);
  fill(x0.span(), 5.0f);

  DistributedSgdOptions options;
  options.eta_l = 0.2f;
  options.rounds = 150;
  options.eval_interval = 50;
  const auto trace = run_distributed_sgd(strategy, objective, x0, options);

  ASSERT_FALSE(trace.diverged);
  ASSERT_GE(trace.losses.size(), 2u);
  const double first = trace.losses.front().second;
  const double last = trace.losses.back().second;
  EXPECT_LT(last, 0.1 * first);
  EXPECT_GT(trace.simulated_seconds, 0.0);
  EXPECT_GT(trace.total_wire_bits, 0.0);
}

TEST(DistributedSgdTest, MarsitConvergesOnQuadratic) {
  const std::size_t d = 32, m = 4;
  const auto objective = make_quadratic_objective(d, m, 0.1, 24);
  MarsitOptions marsit_options;
  marsit_options.eta_s = 0.02f;
  // Stability note: a full-precision round flushes ~K·η_l-scaled
  // compensation mass in one update, so K·η_l must stay well below 2.
  marsit_options.full_precision_period = 25;
  MarsitSync strategy(ring_config(m, 24), marsit_options);
  Tensor x0(d);
  fill(x0.span(), 5.0f);

  DistributedSgdOptions options;
  options.eta_l = 0.02f;
  options.rounds = 600;
  options.eval_interval = 100;
  const auto trace = run_distributed_sgd(strategy, objective, x0, options);

  ASSERT_FALSE(trace.diverged);
  const double first = trace.losses.front().second;
  const double last = trace.losses.back().second;
  EXPECT_LT(last, 0.2 * first);
}

TEST(DistributedSgdTest, MarsitUsesFarFewerBitsThanPsgd) {
  const std::size_t d = 1024, m = 4;
  const auto objective = make_quadratic_objective(d, m, 0.1, 25);
  Tensor x0(d);
  fill(x0.span(), 1.0f);
  DistributedSgdOptions options;
  options.eta_l = 0.1f;
  options.rounds = 20;
  options.eval_interval = 0;

  PsgdSync psgd(ring_config(m, 25));
  const auto psgd_trace = run_distributed_sgd(psgd, objective, x0, options);

  MarsitOptions marsit_options;
  marsit_options.eta_s = 0.01f;
  MarsitSync marsit(ring_config(m, 25), marsit_options);
  const auto marsit_trace =
      run_distributed_sgd(marsit, objective, x0, options);

  EXPECT_LT(marsit_trace.total_wire_bits,
            psgd_trace.total_wire_bits / 20.0);
  EXPECT_LT(marsit_trace.simulated_seconds, psgd_trace.simulated_seconds);
}

TEST(DistributedSgdTest, LinearSpeedupShapeInWorkerCount) {
  // Theorem 1: with η_l = √(M/T), more workers reach a lower loss in the
  // same number of rounds on a noisy objective.  Use PSGD (the bound's
  // leading term is the same) to keep the check sharp.
  const std::size_t d = 64;
  auto loss_with_workers = [&](std::size_t m) {
    const auto objective = make_quadratic_objective(d, m, /*sigma=*/2.0, 26);
    PsgdSync strategy(ring_config(m, 26));
    Tensor x0(d);
    fill(x0.span(), 3.0f);
    DistributedSgdOptions options;
    options.eta_l = 0.05f;
    options.rounds = 200;
    options.eval_interval = 0;
    const auto trace = run_distributed_sgd(strategy, objective, x0, options);
    // Squared norm of the mean worker gradient at the end; its stochastic
    // floor is d·σ²/M plus the optimization residual — both shrink with M.
    return trace.grad_norms_sq.back();
  };
  const double floor2 = loss_with_workers(2);
  const double floor16 = loss_with_workers(16);
  EXPECT_LT(floor16, 0.5 * floor2);
}

TEST(DistributedSgdTest, ValidatesArguments) {
  const auto objective = make_quadratic_objective(8, 2, 0.0, 27);
  PsgdSync strategy(ring_config(2, 27));
  Tensor wrong_x0(9);
  DistributedSgdOptions options;
  EXPECT_THROW(run_distributed_sgd(strategy, objective, wrong_x0, options),
               CheckError);
  options.rounds = 0;
  Tensor x0(8);
  EXPECT_THROW(run_distributed_sgd(strategy, objective, x0, options),
               CheckError);
}

TEST(DistributedSgdTest, FinalPointReturned) {
  const auto objective = make_quadratic_objective(8, 2, 0.0, 28);
  PsgdSync strategy(ring_config(2, 28));
  Tensor x0(8);
  DistributedSgdOptions options;
  options.rounds = 5;
  const auto trace = run_distributed_sgd(strategy, objective, x0, options);
  EXPECT_EQ(trace.final_point.size(), 8u);
  EXPECT_TRUE(all_finite(trace.final_point.span()));
}

}  // namespace
}  // namespace marsit
