// net/frame.hpp + SocketTransport: the framed wire format and its
// hostile-reader discipline (DESIGN.md §14).  A short buffer means "read
// more"; a bad magic, an oversized declared length, or a CRC mismatch is
// desynchronization and throws — and a SocketTransport fed such bytes
// surfaces the failure to blocked callers instead of guessing past it.
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.hpp"
#include "net/socket_transport.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (const int v : values) {
    out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

TEST(FrameTest, DataRoundTrip) {
  const std::vector<std::uint8_t> payload = bytes_of({1, 2, 3, 0xff, 0});
  const std::vector<std::uint8_t> wire =
      encode_frame(kDataMagic, 42, {payload.data(), payload.size()});
  EXPECT_EQ(wire.size(),
            kFrameHeaderBytes + payload.size() + kFrameFooterBytes);
  Frame frame;
  const std::size_t consumed = try_decode_frame({wire.data(), wire.size()},
                                                frame);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame.magic, kDataMagic);
  EXPECT_FALSE(frame.is_ack());
  EXPECT_EQ(frame.tag, 42u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, AckRoundTripCarriesNoPayload) {
  const std::vector<std::uint8_t> wire = encode_frame(kAckMagic, 7, {});
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + kFrameFooterBytes);
  Frame frame;
  EXPECT_EQ(try_decode_frame({wire.data(), wire.size()}, frame), wire.size());
  EXPECT_TRUE(frame.is_ack());
  EXPECT_EQ(frame.tag, 7u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, EveryTruncationIsWaitForMore) {
  const std::vector<std::uint8_t> payload = bytes_of({9, 8, 7});
  const std::vector<std::uint8_t> wire =
      encode_frame(kDataMagic, 3, {payload.data(), payload.size()});
  // Every strict prefix — including an empty buffer and a complete header
  // with a partial body — decodes to "0 consumed", never to garbage.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Frame frame;
    EXPECT_EQ(try_decode_frame({wire.data(), cut}, frame), 0u)
        << "prefix of " << cut << " bytes";
  }
}

TEST(FrameTest, UnknownMagicThrows) {
  std::vector<std::uint8_t> wire = encode_frame(kDataMagic, 1, {});
  wire[0] ^= 0x01;  // no longer "MRSF"/"MRSA"
  Frame frame;
  EXPECT_THROW(try_decode_frame({wire.data(), wire.size()}, frame),
               CheckError);
}

TEST(FrameTest, HostileLengthPrefixThrowsBeforeAllocation) {
  // A full header whose length field claims 0xffffffff bytes: the ceiling
  // check must reject it outright rather than report "wait for 4 GiB".
  std::vector<std::uint8_t> wire = encode_frame(kDataMagic, 1, {});
  wire[8] = 0xff;
  wire[9] = 0xff;
  wire[10] = 0xff;
  wire[11] = 0xff;
  Frame frame;
  EXPECT_THROW(try_decode_frame({wire.data(), wire.size()}, frame),
               CheckError);
  // Just above the ceiling is equally hostile, even with a plausible CRC.
  const std::uint32_t above = kMaxFramePayloadBytes + 1;
  wire[8] = static_cast<std::uint8_t>(above & 0xff);
  wire[9] = static_cast<std::uint8_t>((above >> 8) & 0xff);
  wire[10] = static_cast<std::uint8_t>((above >> 16) & 0xff);
  wire[11] = static_cast<std::uint8_t>((above >> 24) & 0xff);
  EXPECT_THROW(try_decode_frame({wire.data(), wire.size()}, frame),
               CheckError);
}

TEST(FrameTest, EncodeRejectsOversizedPayloadAndBadMagic) {
  EXPECT_THROW(encode_frame(0xdeadbeef, 0, {}), CheckError);
}

TEST(FrameTest, CorruptedBytesFailTheCrc) {
  const std::vector<std::uint8_t> payload = bytes_of({4, 4, 4, 4});
  const std::vector<std::uint8_t> clean =
      encode_frame(kDataMagic, 11, {payload.data(), payload.size()});
  // Flip one bit anywhere past the magic (tag, length would desync the
  // total-size math too, so restrict to payload and footer bytes).
  for (const std::size_t at : {kFrameHeaderBytes, clean.size() - 1}) {
    std::vector<std::uint8_t> wire = clean;
    wire[at] ^= 0x10;
    Frame frame;
    EXPECT_THROW(try_decode_frame({wire.data(), wire.size()}, frame),
                 CheckError)
        << "bit flip at byte " << at;
  }
}

/// Two connected SocketTransport endpoints over a socketpair — the smallest
/// real mesh.
struct TransportPair {
  TransportPair() {
    int fds[2] = {-1, -1};
    MARSIT_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0)
        << "socketpair failed";
    a = std::make_unique<SocketTransport>(0, std::vector<int>{-1, fds[0]});
    b = std::make_unique<SocketTransport>(1, std::vector<int>{fds[1], -1});
  }
  std::unique_ptr<SocketTransport> a;
  std::unique_ptr<SocketTransport> b;
};

TEST(SocketTransportTest, DeliversTaggedStreamsInFifoOrder) {
  TransportPair pair;
  const std::vector<std::uint8_t> first = bytes_of({1, 2, 3});
  const std::vector<std::uint8_t> second = bytes_of({4});
  const std::vector<std::uint8_t> other = bytes_of({5, 6});
  // Interleave two tags; each tag's stream keeps its own FIFO order and the
  // other tag's traffic never bleeds in.
  std::thread sender([&] {
    pair.a->send(1, 10, {first.data(), first.size()});
    pair.a->send(1, 20, {other.data(), other.size()});
    pair.a->send(1, 10, {second.data(), second.size()});
  });
  EXPECT_EQ(pair.b->recv(0, 10), first);
  EXPECT_EQ(pair.b->recv(0, 10), second);
  EXPECT_EQ(pair.b->recv(0, 20), other);
  sender.join();
}

TEST(SocketTransportTest, SymmetricSendsDoNotDeadlock) {
  // Both endpoints send before either receives — the classic blocking-ring
  // deadlock.  The reader-thread ack design must absorb it.
  TransportPair pair;
  const std::vector<std::uint8_t> from_a = bytes_of({0xaa});
  const std::vector<std::uint8_t> from_b = bytes_of({0xbb});
  std::vector<std::uint8_t> b_got;
  std::thread peer([&] {
    pair.b->send(0, 1, {from_b.data(), from_b.size()});
    b_got = pair.b->recv(0, 1);
  });
  pair.a->send(1, 1, {from_a.data(), from_a.size()});
  EXPECT_EQ(pair.a->recv(1, 1), from_b);
  peer.join();
  EXPECT_EQ(b_got, from_a);
}

TEST(SocketTransportTest, HostileLengthPrefixPoisonsTheConnection) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketTransport transport(0, std::vector<int>{-1, fds[0]});
  // Raw peer writes a header whose length field is all-ones: the reader
  // must refuse the allocation and poison the connection, and the blocked
  // recv surfaces that as CheckError instead of hanging.
  const std::vector<std::uint8_t> hostile = bytes_of(
      {0x46, 0x53, 0x52, 0x4d,   // "MRSF" little-endian
       0x01, 0x00, 0x00, 0x00,   // tag 1
       0xff, 0xff, 0xff, 0xff});  // length 0xffffffff
  ASSERT_EQ(::write(fds[1], hostile.data(), hostile.size()),
            static_cast<ssize_t>(hostile.size()));
  EXPECT_THROW(transport.recv(1, 1), CheckError);
  ::close(fds[1]);
}

TEST(SocketTransportTest, CorruptFrameBytesPoisonTheConnection) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketTransport transport(0, std::vector<int>{-1, fds[0]});
  const std::vector<std::uint8_t> payload = bytes_of({1, 2, 3, 4});
  std::vector<std::uint8_t> wire =
      encode_frame(kDataMagic, 5, {payload.data(), payload.size()});
  wire[kFrameHeaderBytes] ^= 0x80;  // flip one payload bit: CRC must catch it
  ASSERT_EQ(::write(fds[1], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  EXPECT_THROW(transport.recv(1, 5), CheckError);
  ::close(fds[1]);
}

TEST(SocketTransportTest, PeerShutdownUnblocksWithError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketTransport transport(0, std::vector<int>{-1, fds[0]});
  ::close(fds[1]);  // peer vanishes; the pending recv must not hang forever
  EXPECT_THROW(transport.recv(1, 0), CheckError);
}

TEST(SocketTransportTest, LoopbackMeshExchangesAllPairs) {
  // Three ranks over real loopback TCP via the example's mesh helpers:
  // every ordered pair exchanges one message tagged by the sender.
  constexpr std::size_t kWorld = 3;
  std::vector<int> listeners(kWorld);
  std::vector<std::uint16_t> ports(kWorld);
  for (std::size_t r = 0; r < kWorld; ++r) {
    listeners[r] = bind_loopback_listener(&ports[r]);
  }
  std::vector<std::thread> ranks;
  std::vector<bool> ok(kWorld, false);
  for (std::size_t r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      std::vector<int> fds = connect_socket_mesh(
          r, kWorld, listeners[r], {ports.data(), ports.size()});
      SocketTransport transport(r, std::move(fds));
      for (std::size_t peer = 0; peer < kWorld; ++peer) {
        if (peer == r) {
          continue;
        }
        const std::vector<std::uint8_t> note =
            bytes_of({static_cast<int>(r), static_cast<int>(peer)});
        transport.send(peer, static_cast<std::uint32_t>(r),
                       {note.data(), note.size()});
      }
      bool all = true;
      for (std::size_t peer = 0; peer < kWorld; ++peer) {
        if (peer == r) {
          continue;
        }
        const std::vector<std::uint8_t> note =
            transport.recv(peer, static_cast<std::uint32_t>(peer));
        all = all && note == bytes_of({static_cast<int>(peer),
                                       static_cast<int>(r)});
      }
      ok[r] = all;
    });
  }
  for (std::thread& t : ranks) {
    t.join();
  }
  for (std::size_t r = 0; r < kWorld; ++r) {
    EXPECT_TRUE(ok[r]) << "rank " << r;
  }
}

}  // namespace
}  // namespace marsit
