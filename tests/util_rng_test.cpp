#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace marsit {
namespace {

TEST(SplitMix64Test, KnownFirstOutputsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, DeriveSeedProducesDecorrelatedStreams) {
  // Streams derived from the same parent must not collide for practical
  // stream counts.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 10000; ++s) {
    seeds.insert(derive_seed(99, s));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowRejectsZeroBound) {
  Rng rng(5);
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(6);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  // Each bucket expects 10000 with sd ≈ 95; allow 5 sigma.
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 5 * 95) << "bucket " << b;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, NormalHasCorrectMoments) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal(3.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(10);
  const double p = 0.3;
  std::size_t hits = 0;
  const std::size_t trials = 100000;
  for (std::size_t i = 0; i < trials; ++i) {
    hits += rng.bernoulli(p) ? 1 : 0;
  }
  EXPECT_LT(std::fabs(binomial_z_score(hits, trials, p)), 5.0);
}

TEST(RngTest, BernoulliWordEdgeCases) {
  Rng rng(11);
  EXPECT_EQ(rng.bernoulli_word(0.0), 0u);
  EXPECT_EQ(rng.bernoulli_word(-1.0), 0u);
  EXPECT_EQ(rng.bernoulli_word(1.0), ~std::uint64_t{0});
  EXPECT_EQ(rng.bernoulli_word(2.0), ~std::uint64_t{0});
}

/// The unbiasedness of the ⊙ operator rests on bernoulli_word being exact
/// for non-dyadic probabilities like 1/M and (M−1)/M; sweep those.
class BernoulliWordExactness : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliWordExactness, BitMeanMatchesP) {
  const double p = GetParam();
  Rng rng(12 + static_cast<std::uint64_t>(p * 1e6));
  std::size_t bits = 0;
  const std::size_t words = 40000;
  for (std::size_t i = 0; i < words; ++i) {
    bits += static_cast<std::size_t>(__builtin_popcountll(
        rng.bernoulli_word(p)));
  }
  const std::size_t trials = words * 64;
  EXPECT_LT(std::fabs(binomial_z_score(bits, trials, p)), 5.0)
      << "p=" << p << " observed " << bits << "/" << trials;
}

INSTANTIATE_TEST_SUITE_P(
    Probabilities, BernoulliWordExactness,
    ::testing::Values(0.5, 0.25, 1.0 / 3.0, 2.0 / 3.0, 1.0 / 7.0, 6.0 / 7.0,
                      1.0 / 31.0, 30.0 / 31.0, 0.001, 0.999, 1.0 / 64.0));

TEST(RngTest, BernoulliWordBitsAreIndependentAcrossLanes) {
  // Adjacent-lane correlation should vanish: count 11 pairs at p=0.5.
  Rng rng(13);
  std::size_t pairs11 = 0;
  const std::size_t words = 20000;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t w = rng.bernoulli_word(0.5);
    pairs11 += static_cast<std::size_t>(__builtin_popcountll(w & (w >> 1)));
  }
  const std::size_t trials = words * 63;
  EXPECT_LT(std::fabs(binomial_z_score(pairs11, trials, 0.25)), 5.0);
}

TEST(RngTest, DeterministicShuffleIsPermutation) {
  std::vector<int> values(257);
  std::iota(values.begin(), values.end(), 0);
  Rng rng(14);
  deterministic_shuffle(values.begin(), values.end(), rng);
  std::set<int> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), values.size());
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 256);
}

TEST(RngTest, DeterministicShuffleReproducible) {
  std::vector<int> a(100), b(100);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng ra(15), rb(15);
  deterministic_shuffle(a.begin(), a.end(), ra);
  deterministic_shuffle(b.begin(), b.end(), rb);
  EXPECT_EQ(a, b);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(16);
  EXPECT_GE(rng(), Rng::min());
}

}  // namespace
}  // namespace marsit
