#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/check.hpp"

namespace marsit {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, PendingTasksFinishBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), CheckError);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleItemRunsInline) {
  ThreadPool pool(2);
  int value = 0;
  parallel_for(pool, 1, [&value](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ParallelForTest, MoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  parallel_for(pool, 1000, [&total](std::size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 1000u * 999u / 2u);
}

TEST(ParallelForTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int pass = 0; pass < 10; ++pass) {
    std::atomic<int> count{0};
    parallel_for(pool, 37, [&count](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 37);
  }
}

TEST(GlobalThreadPoolTest, IsSingleton) {
  EXPECT_EQ(&global_thread_pool(), &global_thread_pool());
  EXPECT_GE(global_thread_pool().num_threads(), 1u);
}

}  // namespace
}  // namespace marsit
