// Local-update support: H optimizer steps per synchronization (paper §5:
// "clients perform multiple local updates between two successive
// synchronizations").
#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

class LocalStepsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::kError); }

  SyncConfig ring_config(std::size_t workers) {
    SyncConfig config;
    config.num_workers = workers;
    config.paradigm = MarParadigm::kRing;
    config.seed = 91;
    return config;
  }

  std::function<Sequential()> digit_model() {
    return [this] {
      return make_mlp(digits_.sample_size(), {24}, digits_.num_classes());
    };
  }

  SyntheticDigits digits_;
};

TEST_F(LocalStepsTest, OneLocalStepMatchesDefaultPath) {
  auto run_with = [&](std::size_t local_steps) {
    PsgdSync strategy(ring_config(2));
    TrainerConfig config;
    config.rounds = 6;
    config.eval_interval = 6;
    config.eval_samples = 128;
    config.eta_l = 0.05f;
    config.local_steps = local_steps;
    DistributedTrainer trainer(digits_, digit_model(), strategy, config);
    return trainer.train().final_test_accuracy;
  };
  // local_steps = 1 must take the exact same code path result as the
  // default (0 is clamped to 1).
  EXPECT_DOUBLE_EQ(run_with(1), run_with(0));
}

TEST_F(LocalStepsTest, LocalStepsLearnFasterPerSynchronization) {
  auto accuracy_with = [&](std::size_t local_steps, std::size_t rounds) {
    PsgdSync strategy(ring_config(2));
    TrainerConfig config;
    config.rounds = rounds;
    config.eval_interval = rounds;
    config.eval_samples = 512;
    config.eta_l = 0.08f;
    config.local_steps = local_steps;
    DistributedTrainer trainer(digits_, digit_model(), strategy, config);
    return trainer.train().final_test_accuracy;
  };
  // 4 local steps over 20 synchronizations sees as many minibatches as 80
  // plain rounds; it must clearly beat 20 plain rounds.
  const double plain = accuracy_with(1, 20);
  const double local = accuracy_with(4, 20);
  EXPECT_GT(local, plain + 0.05);
}

TEST_F(LocalStepsTest, ReplicasStayConsistentWithLocalSteps) {
  // Determinism across two identical runs implies the local walk is fully
  // rewound before the shared global update (otherwise replica drift would
  // surface as run-to-run divergence through the strategy's state).
  auto run_once = [&] {
    MarsitOptions options;
    options.eta_s = 2e-3f;
    MarsitSync strategy(ring_config(3), options);
    TrainerConfig config;
    config.rounds = 8;
    config.eval_interval = 8;
    config.eval_samples = 128;
    config.eta_l = 0.03f;
    config.local_steps = 3;
    DistributedTrainer trainer(digits_, digit_model(), strategy, config);
    return trainer.train().final_test_accuracy;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST_F(LocalStepsTest, ComputeTimeScalesWithLocalSteps) {
  PsgdSync strategy1(ring_config(2));
  TrainerConfig config;
  config.local_steps = 1;
  DistributedTrainer trainer1(digits_, digit_model(), strategy1, config);

  PsgdSync strategy4(ring_config(2));
  config.local_steps = 4;
  DistributedTrainer trainer4(digits_, digit_model(), strategy4, config);

  EXPECT_NEAR(trainer4.compute_seconds_per_round(),
              4.0 * trainer1.compute_seconds_per_round(), 1e-12);
}

TEST_F(LocalStepsTest, LocalStepsReduceTrafficPerSample) {
  // Same number of minibatches, 4x fewer synchronizations: the wire traffic
  // must drop ~4x.
  auto traffic_with = [&](std::size_t local_steps, std::size_t rounds) {
    PsgdSync strategy(ring_config(2));
    TrainerConfig config;
    config.rounds = rounds;
    config.eval_interval = 0;
    config.eta_l = 0.05f;
    config.local_steps = local_steps;
    DistributedTrainer trainer(digits_, digit_model(), strategy, config);
    return trainer.train().total_wire_bits;
  };
  const double plain = traffic_with(1, 16);
  const double local = traffic_with(4, 4);
  EXPECT_NEAR(local, plain / 4.0, plain * 0.01);
}

}  // namespace
}  // namespace marsit
