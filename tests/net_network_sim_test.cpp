#include "net/network_sim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/crc32.hpp"

namespace marsit {
namespace {

CostModel simple_model() {
  CostModel model;
  model.link_alpha = 1.0;          // 1 s latency
  model.link_bandwidth = 100.0;    // 100 B/s
  model.server_bandwidth = 100.0;
  return model;
}

TEST(NetworkSimTest, AlphaBetaTransferTime) {
  NetworkSim net(2, simple_model());
  // 200 bytes at 100 B/s + 1 s latency = 3 s.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0), 3.0);
}

TEST(NetworkSimTest, TransferBitsConvertsToBytes) {
  NetworkSim net(2, simple_model());
  EXPECT_DOUBLE_EQ(net.transfer_bits(0, 1, 800.0, 0.0), 2.0);
}

TEST(NetworkSimTest, ReadyTimeDelaysStart) {
  NetworkSim net(2, simple_model());
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 10.0), 12.0);
}

TEST(NetworkSimTest, EgressSerializesBackToBackSends) {
  NetworkSim net(3, simple_model());
  const double first = net.transfer(0, 1, 100.0, 0.0);   // 0 → 2
  const double second = net.transfer(0, 2, 100.0, 0.0);  // must wait
  EXPECT_DOUBLE_EQ(first, 2.0);
  EXPECT_DOUBLE_EQ(second, 4.0);
}

TEST(NetworkSimTest, IngressSerializesConcurrentReceives) {
  NetworkSim net(3, simple_model());
  const double first = net.transfer(0, 2, 100.0, 0.0);
  const double second = net.transfer(1, 2, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(first, 2.0);
  EXPECT_DOUBLE_EQ(second, 4.0);
}

TEST(NetworkSimTest, DisjointPairsRunInParallel) {
  NetworkSim net(4, simple_model());
  const double a = net.transfer(0, 1, 100.0, 0.0);
  const double b = net.transfer(2, 3, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(a, 2.0);
  EXPECT_DOUBLE_EQ(b, 2.0);  // different NICs: no serialization
}

TEST(NetworkSimTest, PsIngestCongestionScalesWithSenders) {
  // M workers pushing to one server: completion grows linearly in M — the
  // congestion Figure 1a attributes to PS.
  for (std::size_t m : {2u, 4u, 8u}) {
    NetworkSim net(m + 1, simple_model());
    double last = 0.0;
    for (std::size_t w = 0; w < m; ++w) {
      last = std::max(last, net.transfer(w, m, 100.0, 0.0, true));
    }
    EXPECT_DOUBLE_EQ(last, 2.0 * static_cast<double>(m));
  }
}

TEST(NetworkSimTest, ServerBandwidthUsedForServerEndpoint) {
  CostModel model = simple_model();
  model.server_bandwidth = 200.0;  // faster server NIC
  NetworkSim net(2, model);
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0, true), 2.0);
  net.reset();
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0, false), 3.0);
}

TEST(NetworkSimTest, StatisticsAccumulate) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  net.transfer(1, 0, 50.0, 0.0);
  EXPECT_DOUBLE_EQ(net.total_bytes(), 150.0);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(NetworkSimTest, ResetClearsState) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  net.reset();
  EXPECT_DOUBLE_EQ(net.total_bytes(), 0.0);
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_DOUBLE_EQ(net.egress_free(0), 0.0);
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 2.0);
}

TEST(NetworkSimTest, InvalidArgumentsThrow) {
  NetworkSim net(2, simple_model());
  EXPECT_THROW(net.transfer(0, 0, 10.0, 0.0), CheckError);   // self-send
  EXPECT_THROW(net.transfer(0, 5, 10.0, 0.0), CheckError);   // out of range
  EXPECT_THROW(net.transfer(0, 1, -1.0, 0.0), CheckError);   // negative size
  EXPECT_THROW(NetworkSim(1, simple_model()), CheckError);   // too small
}

TEST(NetworkSimTest, NicFreeTimesVisible) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(net.egress_free(0), 2.0);
  EXPECT_DOUBLE_EQ(net.ingress_free(1), 2.0);
  EXPECT_DOUBLE_EQ(net.ingress_free(0), 0.0);
}

// --- fault injection --------------------------------------------------------------

TEST(NetworkSimFaultTest, EmptyPlanTakesFaultFreePath) {
  // An attached but empty plan (and membership-only plans) must leave the
  // arithmetic bit-identical to no plan at all.
  FaultPlan empty;
  FaultPlan membership_only;
  membership_only.dropout_rate = 0.5;
  for (const FaultPlan* plan : {&empty, &membership_only}) {
    NetworkSim net(2, simple_model());
    net.set_fault_plan(plan);
    net.begin_round(3);
    EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(net.retransmitted_bytes(), 0.0);
    EXPECT_EQ(net.retransmissions(), 0u);
  }
}

TEST(NetworkSimFaultTest, StragglerSlowsEitherEndpoint) {
  FaultPlan plan;
  plan.stragglers.push_back({1, 3.0});
  NetworkSim net(3, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // 1 s alpha + 200 B · 3 / 100 B/s = 7 s whenever node 1 is an endpoint.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0), 7.0);
  net.begin_round(1);
  EXPECT_DOUBLE_EQ(net.transfer(1, 0, 200.0, 0.0), 7.0);
  net.begin_round(2);
  EXPECT_DOUBLE_EQ(net.transfer(0, 2, 200.0, 0.0), 3.0);  // avoids node 1
}

TEST(NetworkSimFaultTest, OutageDefersAcrossAbuttingWindows) {
  FaultPlan plan;
  plan.outages.push_back({1, 0.0, 5.0});
  plan.outages.push_back({1, 5.0, 8.0});
  NetworkSim net(3, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // Start slides past both windows: 8 s + (1 + 1) s transfer.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 10.0);
  // A transfer avoiding node 1 is unaffected.
  EXPECT_DOUBLE_EQ(net.transfer(0, 2, 100.0, 0.0), 12.0);  // egress busy til 10
}

TEST(NetworkSimFaultTest, PacketLossRetriesWithBackoffAndCountsBits) {
  FaultPlan plan;
  plan.packet_loss = 0.999999;  // effectively always lost, still valid
  plan.max_retries = 3;
  plan.retry_timeout = 1.0;
  plan.retry_backoff = 2.0;
  NetworkSim net(2, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // 3 losses burn timeouts 1 + 2 + 4 = 7 s, then the message lands:
  // 7 + 1 + 100/100 = 9 s.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 9.0);
  EXPECT_DOUBLE_EQ(net.retransmitted_bytes(), 300.0);
  EXPECT_EQ(net.retransmissions(), 3u);
  // Retransmissions consume real bandwidth: 4 attempts on the wire.
  EXPECT_DOUBLE_EQ(net.total_bytes(), 400.0);
  // begin_round clears the counters with the rest of the statistics.
  net.begin_round(1);
  EXPECT_DOUBLE_EQ(net.retransmitted_bytes(), 0.0);
  EXPECT_EQ(net.retransmissions(), 0u);
}

TEST(NetworkSimFaultTest, JitterBoundedAndDeterministicPerRound) {
  FaultPlan plan;
  plan.seed = 17;
  plan.latency_jitter = 0.5;
  const auto run = [&plan](std::size_t round) {
    NetworkSim net(2, simple_model());
    net.set_fault_plan(&plan);
    net.begin_round(round);
    return net.transfer(0, 1, 100.0, 0.0);
  };
  const double first = run(4);
  EXPECT_GE(first, 2.0);
  EXPECT_LT(first, 2.5);
  EXPECT_DOUBLE_EQ(run(4), first);  // same (seed, round) => same draw
  EXPECT_NE(run(5), first);         // per-round streams are independent
}

TEST(NetworkSimFaultTest, InvalidPlansRejected) {
  const auto attach = [](const FaultPlan& plan) {
    NetworkSim net(2, simple_model());
    net.set_fault_plan(&plan);
  };
  FaultPlan loss;
  loss.packet_loss = 1.0;  // must stay below 1 (retry loop must terminate)
  EXPECT_THROW(attach(loss), CheckError);
  FaultPlan slow;
  slow.stragglers.push_back({0, 0.5});  // speedups are not faults
  EXPECT_THROW(attach(slow), CheckError);
  FaultPlan outage;
  outage.outages.push_back({0, 5.0, 2.0});  // inverted window
  EXPECT_THROW(attach(outage), CheckError);
  FaultPlan dropout;
  dropout.dropout_rate = -0.1;
  EXPECT_THROW(attach(dropout), CheckError);
}

TEST(FaultPlanTest, ExplicitDropoutWindows) {
  FaultPlan plan;
  plan.dropouts.push_back({2, 5, 8});
  EXPECT_FALSE(plan.worker_absent(2, 4));
  EXPECT_TRUE(plan.worker_absent(2, 5));
  EXPECT_TRUE(plan.worker_absent(2, 7));
  EXPECT_FALSE(plan.worker_absent(2, 8));  // [from, to) is half-open
  EXPECT_FALSE(plan.worker_absent(1, 6));  // other workers unaffected
}

TEST(FaultPlanTest, BernoulliDropoutDeterministicAndCalibrated) {
  FaultPlan plan;
  plan.seed = 99;
  plan.dropout_rate = 0.3;
  std::size_t absent = 0;
  const std::size_t draws = 4000;
  for (std::size_t round = 0; round < draws / 4; ++round) {
    for (std::size_t worker = 0; worker < 4; ++worker) {
      const bool a = plan.worker_absent(worker, round);
      EXPECT_EQ(a, plan.worker_absent(worker, round));  // pure function
      absent += a ? 1 : 0;
    }
  }
  const double rate = static_cast<double>(absent) / draws;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

// --- wire integrity (corruption + CRC32) -------------------------------------------

TEST(Crc32Test, MatchesReferenceCheckValue) {
  // The standard CRC-32/IEEE check value: crc32("123456789").
  const char* digits = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  EXPECT_TRUE(crc32_matches(digits, 9, 0xCBF43926u));
  EXPECT_FALSE(crc32_matches(digits, 9, 0xCBF43927u));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> payload(64, 0xa5);
  const std::uint32_t footer = crc32(payload.data(), payload.size());
  payload[17] ^= 0x04;
  EXPECT_FALSE(crc32_matches(payload.data(), payload.size(), footer));
}

TEST(NetworkSimFaultTest, CorruptionAddsCrcFooterToEveryMessage) {
  FaultPlan plan;
  plan.corruption_rate = 1e-12;  // footer cost even when nothing corrupts
  plan.retry_timeout = 1.0;
  NetworkSim net(2, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // 100 payload bytes + 4 CRC footer bytes at 100 B/s + 1 s latency.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 2.04);
  EXPECT_DOUBLE_EQ(net.total_bytes(), 104.0);
  EXPECT_EQ(net.retransmissions(), 0u);
}

TEST(NetworkSimFaultTest, CorruptionRetriesWithBackoffAndCountsBits) {
  FaultPlan plan;
  plan.corruption_rate = 0.999999;  // effectively always corrupted
  plan.max_retries = 3;
  plan.retry_timeout = 1.0;
  plan.retry_backoff = 2.0;
  NetworkSim net(2, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // 3 corrupted attempts burn timeouts 1 + 2 + 4 = 7 s, then the CRC
  // passes: 7 + 1 + 104/100 = 9.04 s.  Every burned attempt carries the
  // footer too.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 9.04);
  EXPECT_DOUBLE_EQ(net.retransmitted_bytes(), 3.0 * 104.0);
  EXPECT_EQ(net.retransmissions(), 3u);
  EXPECT_DOUBLE_EQ(net.total_bytes(), 4.0 * 104.0);
}

TEST(NetworkSimFaultTest, LossAndCorruptionRetryPathsChargeIdentically) {
  // ISSUE satellite: both retry loops route through one engine, so an
  // identical (seed, attempts) draw must charge identical retransmitted
  // bytes and elapsed time — the only corruption-path difference is the
  // CRC footer riding on every attempt.
  FaultPlan loss;
  loss.seed = 99;
  loss.packet_loss = 0.6;
  loss.max_retries = 6;
  loss.retry_timeout = 1.0;
  loss.retry_backoff = 2.0;
  FaultPlan corruption = loss;
  corruption.packet_loss = 0.0;
  corruption.corruption_rate = 0.6;
  std::size_t rounds_with_retries = 0;
  for (std::size_t round = 0; round < 12; ++round) {
    NetworkSim a(2, simple_model());
    a.set_fault_plan(&loss);
    a.begin_round(round);
    NetworkSim b(2, simple_model());
    b.set_fault_plan(&corruption);
    b.begin_round(round);
    const double end_loss = a.transfer(0, 1, 100.0, 0.0);
    const double end_corruption = b.transfer(0, 1, 100.0, 0.0);
    // Same seed and rate => the same Bernoulli draws => the same attempts.
    ASSERT_EQ(a.retransmissions(), b.retransmissions());
    const double r = static_cast<double>(a.retransmissions());
    rounds_with_retries += a.retransmissions() > 0 ? 1 : 0;
    // Elapsed: equal timeouts, plus one footer serialization on delivery
    // (NEAR: the backoff sums are rounded differently before subtracting).
    EXPECT_NEAR(end_corruption - end_loss, kCrcFooterBytes / 100.0, 1e-9);
    // Retransmitted bytes: equal payload burn, plus a footer per attempt.
    EXPECT_DOUBLE_EQ(b.retransmitted_bytes() - a.retransmitted_bytes(),
                     r * kCrcFooterBytes);
    EXPECT_DOUBLE_EQ(b.total_bytes() - a.total_bytes(),
                     (r + 1.0) * kCrcFooterBytes);
  }
  EXPECT_GT(rounds_with_retries, 0u) << "the sweep never drew a retry";
}

TEST(NetworkSimFaultTest, CorruptionRateValidated) {
  const auto attach = [](const FaultPlan& plan) {
    NetworkSim net(2, simple_model());
    net.set_fault_plan(&plan);
  };
  FaultPlan saturated;
  saturated.corruption_rate = 1.0;  // retry loop must terminate
  EXPECT_THROW(attach(saturated), CheckError);
  FaultPlan no_timeout;
  no_timeout.corruption_rate = 0.5;
  no_timeout.retry_timeout = 0.0;
  EXPECT_THROW(attach(no_timeout), CheckError);
}

TEST(FaultPlanTest, CorruptionOnlyPlanReportsFaults) {
  // ISSUE satellite fix: a default-constructed plan with only the
  // corruption knob (or only a rejoin window) set must still trip the
  // fault-path predicates.
  FaultPlan corruption_only;
  corruption_only.corruption_rate = 0.25;
  EXPECT_TRUE(corruption_only.has_faults());
  EXPECT_TRUE(corruption_only.has_link_faults());
  EXPECT_FALSE(corruption_only.has_membership_faults());
  EXPECT_TRUE(corruption_only.affects_membership());

  FaultPlan rejoin_only;
  rejoin_only.dropouts.push_back({1, 3, 6, true});
  EXPECT_TRUE(rejoin_only.has_faults());
  EXPECT_TRUE(rejoin_only.has_membership_faults());
  EXPECT_TRUE(rejoin_only.affects_membership());

  FaultPlan empty;
  EXPECT_FALSE(empty.has_faults());
  EXPECT_FALSE(empty.affects_membership());
}

TEST(FaultPlanTest, SenderDemotionIsDeterministicAndRateBound) {
  FaultPlan plan;
  plan.seed = 5;
  plan.corruption_rate = 0.999999;
  plan.max_retries = 2;
  // Nearly-certain corruption exhausts the retry budget essentially always.
  std::size_t demoted = 0;
  for (std::size_t round = 0; round < 50; ++round) {
    const bool d = plan.sender_demoted(0, round);
    EXPECT_EQ(d, plan.sender_demoted(0, round));  // pure function
    demoted += d ? 1 : 0;
  }
  EXPECT_EQ(demoted, 50u);
  // A clean wire never demotes.
  plan.corruption_rate = 0.0;
  EXPECT_FALSE(plan.sender_demoted(0, 0));
  // Moderate corruption demotes at ~rate^(max_retries+1): p=0.5^3 = 0.125.
  plan.corruption_rate = 0.5;
  std::size_t rare = 0;
  const std::size_t draws = 4000;
  for (std::size_t round = 0; round < draws / 4; ++round) {
    for (std::size_t worker = 0; worker < 4; ++worker) {
      rare += plan.sender_demoted(worker, round) ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(rare) / draws, 0.125, 0.02);
}

TEST(FaultPlanTest, RejoinAtFlushExtendsWindowToBoundary) {
  FaultPlan plan;
  plan.dropouts.push_back({2, 3, 6, true});
  // With flush period K = 4, the window [3, 6) stretches to the next
  // multiple of 4: [3, 8).
  EXPECT_FALSE(plan.worker_absent(2, 2, 4));
  EXPECT_TRUE(plan.worker_absent(2, 5, 4));
  EXPECT_TRUE(plan.worker_absent(2, 6, 4));   // would have returned at 6
  EXPECT_TRUE(plan.worker_absent(2, 7, 4));
  EXPECT_FALSE(plan.worker_absent(2, 8, 4));  // back at the flush
  EXPECT_TRUE(plan.flush_rejoin_at(2, 8, 4));
  EXPECT_FALSE(plan.flush_rejoin_at(2, 6, 4));
  EXPECT_FALSE(plan.flush_rejoin_at(1, 8, 4));
  // A window already ending on a boundary gains nothing.
  FaultPlan aligned;
  aligned.dropouts.push_back({1, 2, 8, true});
  EXPECT_TRUE(aligned.worker_absent(1, 7, 4));
  EXPECT_FALSE(aligned.worker_absent(1, 8, 4));
  EXPECT_TRUE(aligned.flush_rejoin_at(1, 8, 4));
  // No flush period (K = 0): plain [from, to) semantics, no flush rejoin.
  EXPECT_FALSE(plan.worker_absent(2, 6, 0));
  EXPECT_FALSE(plan.flush_rejoin_at(2, 8, 0));
}

}  // namespace
}  // namespace marsit
