#include "net/network_sim.hpp"

#include <gtest/gtest.h>

namespace marsit {
namespace {

CostModel simple_model() {
  CostModel model;
  model.link_alpha = 1.0;          // 1 s latency
  model.link_bandwidth = 100.0;    // 100 B/s
  model.server_bandwidth = 100.0;
  return model;
}

TEST(NetworkSimTest, AlphaBetaTransferTime) {
  NetworkSim net(2, simple_model());
  // 200 bytes at 100 B/s + 1 s latency = 3 s.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0), 3.0);
}

TEST(NetworkSimTest, TransferBitsConvertsToBytes) {
  NetworkSim net(2, simple_model());
  EXPECT_DOUBLE_EQ(net.transfer_bits(0, 1, 800.0, 0.0), 2.0);
}

TEST(NetworkSimTest, ReadyTimeDelaysStart) {
  NetworkSim net(2, simple_model());
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 10.0), 12.0);
}

TEST(NetworkSimTest, EgressSerializesBackToBackSends) {
  NetworkSim net(3, simple_model());
  const double first = net.transfer(0, 1, 100.0, 0.0);   // 0 → 2
  const double second = net.transfer(0, 2, 100.0, 0.0);  // must wait
  EXPECT_DOUBLE_EQ(first, 2.0);
  EXPECT_DOUBLE_EQ(second, 4.0);
}

TEST(NetworkSimTest, IngressSerializesConcurrentReceives) {
  NetworkSim net(3, simple_model());
  const double first = net.transfer(0, 2, 100.0, 0.0);
  const double second = net.transfer(1, 2, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(first, 2.0);
  EXPECT_DOUBLE_EQ(second, 4.0);
}

TEST(NetworkSimTest, DisjointPairsRunInParallel) {
  NetworkSim net(4, simple_model());
  const double a = net.transfer(0, 1, 100.0, 0.0);
  const double b = net.transfer(2, 3, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(a, 2.0);
  EXPECT_DOUBLE_EQ(b, 2.0);  // different NICs: no serialization
}

TEST(NetworkSimTest, PsIngestCongestionScalesWithSenders) {
  // M workers pushing to one server: completion grows linearly in M — the
  // congestion Figure 1a attributes to PS.
  for (std::size_t m : {2u, 4u, 8u}) {
    NetworkSim net(m + 1, simple_model());
    double last = 0.0;
    for (std::size_t w = 0; w < m; ++w) {
      last = std::max(last, net.transfer(w, m, 100.0, 0.0, true));
    }
    EXPECT_DOUBLE_EQ(last, 2.0 * static_cast<double>(m));
  }
}

TEST(NetworkSimTest, ServerBandwidthUsedForServerEndpoint) {
  CostModel model = simple_model();
  model.server_bandwidth = 200.0;  // faster server NIC
  NetworkSim net(2, model);
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0, true), 2.0);
  net.reset();
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0, false), 3.0);
}

TEST(NetworkSimTest, StatisticsAccumulate) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  net.transfer(1, 0, 50.0, 0.0);
  EXPECT_DOUBLE_EQ(net.total_bytes(), 150.0);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(NetworkSimTest, ResetClearsState) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  net.reset();
  EXPECT_DOUBLE_EQ(net.total_bytes(), 0.0);
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_DOUBLE_EQ(net.egress_free(0), 0.0);
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 2.0);
}

TEST(NetworkSimTest, InvalidArgumentsThrow) {
  NetworkSim net(2, simple_model());
  EXPECT_THROW(net.transfer(0, 0, 10.0, 0.0), CheckError);   // self-send
  EXPECT_THROW(net.transfer(0, 5, 10.0, 0.0), CheckError);   // out of range
  EXPECT_THROW(net.transfer(0, 1, -1.0, 0.0), CheckError);   // negative size
  EXPECT_THROW(NetworkSim(1, simple_model()), CheckError);   // too small
}

TEST(NetworkSimTest, NicFreeTimesVisible) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(net.egress_free(0), 2.0);
  EXPECT_DOUBLE_EQ(net.ingress_free(1), 2.0);
  EXPECT_DOUBLE_EQ(net.ingress_free(0), 0.0);
}

}  // namespace
}  // namespace marsit
