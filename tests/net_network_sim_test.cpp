#include "net/network_sim.hpp"

#include <gtest/gtest.h>

namespace marsit {
namespace {

CostModel simple_model() {
  CostModel model;
  model.link_alpha = 1.0;          // 1 s latency
  model.link_bandwidth = 100.0;    // 100 B/s
  model.server_bandwidth = 100.0;
  return model;
}

TEST(NetworkSimTest, AlphaBetaTransferTime) {
  NetworkSim net(2, simple_model());
  // 200 bytes at 100 B/s + 1 s latency = 3 s.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0), 3.0);
}

TEST(NetworkSimTest, TransferBitsConvertsToBytes) {
  NetworkSim net(2, simple_model());
  EXPECT_DOUBLE_EQ(net.transfer_bits(0, 1, 800.0, 0.0), 2.0);
}

TEST(NetworkSimTest, ReadyTimeDelaysStart) {
  NetworkSim net(2, simple_model());
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 10.0), 12.0);
}

TEST(NetworkSimTest, EgressSerializesBackToBackSends) {
  NetworkSim net(3, simple_model());
  const double first = net.transfer(0, 1, 100.0, 0.0);   // 0 → 2
  const double second = net.transfer(0, 2, 100.0, 0.0);  // must wait
  EXPECT_DOUBLE_EQ(first, 2.0);
  EXPECT_DOUBLE_EQ(second, 4.0);
}

TEST(NetworkSimTest, IngressSerializesConcurrentReceives) {
  NetworkSim net(3, simple_model());
  const double first = net.transfer(0, 2, 100.0, 0.0);
  const double second = net.transfer(1, 2, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(first, 2.0);
  EXPECT_DOUBLE_EQ(second, 4.0);
}

TEST(NetworkSimTest, DisjointPairsRunInParallel) {
  NetworkSim net(4, simple_model());
  const double a = net.transfer(0, 1, 100.0, 0.0);
  const double b = net.transfer(2, 3, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(a, 2.0);
  EXPECT_DOUBLE_EQ(b, 2.0);  // different NICs: no serialization
}

TEST(NetworkSimTest, PsIngestCongestionScalesWithSenders) {
  // M workers pushing to one server: completion grows linearly in M — the
  // congestion Figure 1a attributes to PS.
  for (std::size_t m : {2u, 4u, 8u}) {
    NetworkSim net(m + 1, simple_model());
    double last = 0.0;
    for (std::size_t w = 0; w < m; ++w) {
      last = std::max(last, net.transfer(w, m, 100.0, 0.0, true));
    }
    EXPECT_DOUBLE_EQ(last, 2.0 * static_cast<double>(m));
  }
}

TEST(NetworkSimTest, ServerBandwidthUsedForServerEndpoint) {
  CostModel model = simple_model();
  model.server_bandwidth = 200.0;  // faster server NIC
  NetworkSim net(2, model);
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0, true), 2.0);
  net.reset();
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0, false), 3.0);
}

TEST(NetworkSimTest, StatisticsAccumulate) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  net.transfer(1, 0, 50.0, 0.0);
  EXPECT_DOUBLE_EQ(net.total_bytes(), 150.0);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(NetworkSimTest, ResetClearsState) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  net.reset();
  EXPECT_DOUBLE_EQ(net.total_bytes(), 0.0);
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_DOUBLE_EQ(net.egress_free(0), 0.0);
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 2.0);
}

TEST(NetworkSimTest, InvalidArgumentsThrow) {
  NetworkSim net(2, simple_model());
  EXPECT_THROW(net.transfer(0, 0, 10.0, 0.0), CheckError);   // self-send
  EXPECT_THROW(net.transfer(0, 5, 10.0, 0.0), CheckError);   // out of range
  EXPECT_THROW(net.transfer(0, 1, -1.0, 0.0), CheckError);   // negative size
  EXPECT_THROW(NetworkSim(1, simple_model()), CheckError);   // too small
}

TEST(NetworkSimTest, NicFreeTimesVisible) {
  NetworkSim net(2, simple_model());
  net.transfer(0, 1, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(net.egress_free(0), 2.0);
  EXPECT_DOUBLE_EQ(net.ingress_free(1), 2.0);
  EXPECT_DOUBLE_EQ(net.ingress_free(0), 0.0);
}

// --- fault injection --------------------------------------------------------------

TEST(NetworkSimFaultTest, EmptyPlanTakesFaultFreePath) {
  // An attached but empty plan (and membership-only plans) must leave the
  // arithmetic bit-identical to no plan at all.
  FaultPlan empty;
  FaultPlan membership_only;
  membership_only.dropout_rate = 0.5;
  for (const FaultPlan* plan : {&empty, &membership_only}) {
    NetworkSim net(2, simple_model());
    net.set_fault_plan(plan);
    net.begin_round(3);
    EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(net.retransmitted_bytes(), 0.0);
    EXPECT_EQ(net.retransmissions(), 0u);
  }
}

TEST(NetworkSimFaultTest, StragglerSlowsEitherEndpoint) {
  FaultPlan plan;
  plan.stragglers.push_back({1, 3.0});
  NetworkSim net(3, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // 1 s alpha + 200 B · 3 / 100 B/s = 7 s whenever node 1 is an endpoint.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 200.0, 0.0), 7.0);
  net.begin_round(1);
  EXPECT_DOUBLE_EQ(net.transfer(1, 0, 200.0, 0.0), 7.0);
  net.begin_round(2);
  EXPECT_DOUBLE_EQ(net.transfer(0, 2, 200.0, 0.0), 3.0);  // avoids node 1
}

TEST(NetworkSimFaultTest, OutageDefersAcrossAbuttingWindows) {
  FaultPlan plan;
  plan.outages.push_back({1, 0.0, 5.0});
  plan.outages.push_back({1, 5.0, 8.0});
  NetworkSim net(3, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // Start slides past both windows: 8 s + (1 + 1) s transfer.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 10.0);
  // A transfer avoiding node 1 is unaffected.
  EXPECT_DOUBLE_EQ(net.transfer(0, 2, 100.0, 0.0), 12.0);  // egress busy til 10
}

TEST(NetworkSimFaultTest, PacketLossRetriesWithBackoffAndCountsBits) {
  FaultPlan plan;
  plan.packet_loss = 0.999999;  // effectively always lost, still valid
  plan.max_retries = 3;
  plan.retry_timeout = 1.0;
  plan.retry_backoff = 2.0;
  NetworkSim net(2, simple_model());
  net.set_fault_plan(&plan);
  net.begin_round(0);
  // 3 losses burn timeouts 1 + 2 + 4 = 7 s, then the message lands:
  // 7 + 1 + 100/100 = 9 s.
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 100.0, 0.0), 9.0);
  EXPECT_DOUBLE_EQ(net.retransmitted_bytes(), 300.0);
  EXPECT_EQ(net.retransmissions(), 3u);
  // Retransmissions consume real bandwidth: 4 attempts on the wire.
  EXPECT_DOUBLE_EQ(net.total_bytes(), 400.0);
  // begin_round clears the counters with the rest of the statistics.
  net.begin_round(1);
  EXPECT_DOUBLE_EQ(net.retransmitted_bytes(), 0.0);
  EXPECT_EQ(net.retransmissions(), 0u);
}

TEST(NetworkSimFaultTest, JitterBoundedAndDeterministicPerRound) {
  FaultPlan plan;
  plan.seed = 17;
  plan.latency_jitter = 0.5;
  const auto run = [&plan](std::size_t round) {
    NetworkSim net(2, simple_model());
    net.set_fault_plan(&plan);
    net.begin_round(round);
    return net.transfer(0, 1, 100.0, 0.0);
  };
  const double first = run(4);
  EXPECT_GE(first, 2.0);
  EXPECT_LT(first, 2.5);
  EXPECT_DOUBLE_EQ(run(4), first);  // same (seed, round) => same draw
  EXPECT_NE(run(5), first);         // per-round streams are independent
}

TEST(NetworkSimFaultTest, InvalidPlansRejected) {
  const auto attach = [](const FaultPlan& plan) {
    NetworkSim net(2, simple_model());
    net.set_fault_plan(&plan);
  };
  FaultPlan loss;
  loss.packet_loss = 1.0;  // must stay below 1 (retry loop must terminate)
  EXPECT_THROW(attach(loss), CheckError);
  FaultPlan slow;
  slow.stragglers.push_back({0, 0.5});  // speedups are not faults
  EXPECT_THROW(attach(slow), CheckError);
  FaultPlan outage;
  outage.outages.push_back({0, 5.0, 2.0});  // inverted window
  EXPECT_THROW(attach(outage), CheckError);
  FaultPlan dropout;
  dropout.dropout_rate = -0.1;
  EXPECT_THROW(attach(dropout), CheckError);
}

TEST(FaultPlanTest, ExplicitDropoutWindows) {
  FaultPlan plan;
  plan.dropouts.push_back({2, 5, 8});
  EXPECT_FALSE(plan.worker_absent(2, 4));
  EXPECT_TRUE(plan.worker_absent(2, 5));
  EXPECT_TRUE(plan.worker_absent(2, 7));
  EXPECT_FALSE(plan.worker_absent(2, 8));  // [from, to) is half-open
  EXPECT_FALSE(plan.worker_absent(1, 6));  // other workers unaffected
}

TEST(FaultPlanTest, BernoulliDropoutDeterministicAndCalibrated) {
  FaultPlan plan;
  plan.seed = 99;
  plan.dropout_rate = 0.3;
  std::size_t absent = 0;
  const std::size_t draws = 4000;
  for (std::size_t round = 0; round < draws / 4; ++round) {
    for (std::size_t worker = 0; worker < 4; ++worker) {
      const bool a = plan.worker_absent(worker, round);
      EXPECT_EQ(a, plan.worker_absent(worker, round));  // pure function
      absent += a ? 1 : 0;
    }
  }
  const double rate = static_cast<double>(absent) / draws;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

}  // namespace
}  // namespace marsit
