// Behavioral (non-gradient) layer tests: shapes, caching contracts,
// forward semantics on known inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/residual.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {
namespace {

TEST(LinearTest, KnownAffineMap) {
  Linear layer(2, 2);
  // W = [[1, 2], [3, 4]], b = [10, 20].
  auto w = layer.weights();
  w[0] = 1;
  w[1] = 2;
  w[2] = 3;
  w[3] = 4;
  auto b = layer.bias();
  b[0] = 10;
  b[1] = 20;
  std::vector<float> x{1.0f, 1.0f};
  std::vector<float> y(2);
  layer.forward({x.data(), 2}, 1, {y.data(), 2});
  EXPECT_FLOAT_EQ(y[0], 13.0f);  // 1·1 + 2·1 + 10
  EXPECT_FLOAT_EQ(y[1], 27.0f);  // 3·1 + 4·1 + 20
}

TEST(LinearTest, ParamLayout) {
  Linear with_bias(3, 4);
  EXPECT_EQ(with_bias.param_count(), 16u);
  Linear no_bias(3, 4, false);
  EXPECT_EQ(no_bias.param_count(), 12u);
  EXPECT_TRUE(no_bias.bias().empty());
}

TEST(LinearTest, ExtentChecks) {
  Linear layer(2, 3);
  std::vector<float> x(4), y(5);
  EXPECT_THROW(layer.forward({x.data(), 4}, 1, {y.data(), 5}), CheckError);
}

TEST(LinearTest, BackwardWithoutForwardThrows) {
  Linear layer(2, 3);
  std::vector<float> dy(3), dx(2);
  EXPECT_THROW(layer.backward({dy.data(), 3}, 1, {dx.data(), 2}),
               CheckError);
}

TEST(ReluTest, ClampsNegatives) {
  Relu layer(4);
  std::vector<float> x{-1.0f, 0.0f, 2.0f, -3.0f};
  std::vector<float> y(4);
  layer.forward({x.data(), 4}, 1, {y.data(), 4});
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReluTest, MaskGatesGradient) {
  Relu layer(3);
  std::vector<float> x{-1.0f, 1.0f, 0.0f};
  std::vector<float> y(3), dy{5.0f, 5.0f, 5.0f}, dx(3);
  layer.forward({x.data(), 3}, 1, {y.data(), 3});
  layer.backward({dy.data(), 3}, 1, {dx.data(), 3});
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 5.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);  // x == 0 has zero sub-gradient
}

TEST(Conv2dTest, OutputGeometry) {
  Conv2d same({3, 8, 8}, 16, 3, 1, 1);
  EXPECT_EQ(same.out_dims().height, 8u);
  EXPECT_EQ(same.out_dims().channels, 16u);
  Conv2d strided({3, 8, 8}, 16, 3, 2, 1);
  EXPECT_EQ(strided.out_dims().height, 4u);
  Conv2d valid({1, 5, 5}, 1, 3, 1, 0);
  EXPECT_EQ(valid.out_dims().height, 3u);
}

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  Conv2d layer({1, 3, 3}, 1, 1, 1, 0);  // 1×1 kernel
  layer.params()[0] = 1.0f;             // weight
  layer.params()[1] = 0.0f;             // bias
  std::vector<float> x{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> y(9);
  layer.forward({x.data(), 9}, 1, {y.data(), 9});
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);
  }
}

TEST(Conv2dTest, BoxFilterSumsNeighborhood) {
  Conv2d layer({1, 3, 3}, 1, 3, 1, 1);
  for (std::size_t i = 0; i < 9; ++i) {
    layer.params()[i] = 1.0f;  // all-ones 3×3 kernel
  }
  layer.params()[9] = 0.0f;  // bias
  std::vector<float> x(9, 1.0f);
  std::vector<float> y(9);
  layer.forward({x.data(), 9}, 1, {y.data(), 9});
  EXPECT_FLOAT_EQ(y[4], 9.0f);  // center sees the full neighborhood
  EXPECT_FLOAT_EQ(y[0], 4.0f);  // corner sees 2×2
}

TEST(Conv2dTest, KernelLargerThanInputThrows) {
  EXPECT_THROW(Conv2d({1, 2, 2}, 1, 5, 1, 0), CheckError);
}

TEST(MaxPoolTest, PicksMaxima) {
  MaxPool2d layer({1, 2, 4}, 2);
  std::vector<float> x{1, 5, 2, 0,
                       3, 4, 8, 7};
  std::vector<float> y(2);
  layer.forward({x.data(), 8}, 1, {y.data(), 2});
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(MaxPoolTest, GradientRoutesToArgmax) {
  MaxPool2d layer({1, 2, 2}, 2);
  std::vector<float> x{1, 9, 3, 4};
  std::vector<float> y(1), dy{2.0f}, dx(4);
  layer.forward({x.data(), 4}, 1, {y.data(), 1});
  layer.backward({dy.data(), 1}, 1, {dx.data(), 4});
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 2.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(GlobalAvgPoolTest, AveragesPerChannel) {
  GlobalAvgPool layer({2, 2, 2});
  std::vector<float> x{1, 2, 3, 4,    // channel 0
                       10, 20, 30, 40};  // channel 1
  std::vector<float> y(2);
  layer.forward({x.data(), 8}, 1, {y.data(), 2});
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
}

TEST(EmbeddingTest, LooksUpRows) {
  Embedding layer(3, 2, 2);
  auto table = layer.params();
  // Row r = [r, 10r].
  for (std::size_t r = 0; r < 3; ++r) {
    table[r * 2] = static_cast<float>(r);
    table[r * 2 + 1] = static_cast<float>(10 * r);
  }
  std::vector<float> ids{2.0f, 0.0f};
  std::vector<float> y(4);
  layer.forward({ids.data(), 2}, 1, {y.data(), 4});
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 20.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(EmbeddingTest, RejectsOutOfVocabIds) {
  Embedding layer(3, 2, 1);
  std::vector<float> ids{3.0f};
  std::vector<float> y(2);
  EXPECT_THROW(layer.forward({ids.data(), 1}, 1, {y.data(), 2}), CheckError);
}

TEST(MeanPoolTest, AveragesSequence) {
  MeanPool layer(2, 3);
  std::vector<float> x{1, 2, 3, 5, 6, 7};
  std::vector<float> y(3);
  layer.forward({x.data(), 6}, 1, {y.data(), 3});
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
  EXPECT_FLOAT_EQ(y[2], 5.0f);
}

TEST(ResidualBlockTest, ZeroWeightsActAsReluIdentity) {
  ResidualConvBlock block({1, 3, 3});
  // Zero convolutions: y = ReLU(0 + x) = ReLU(x).
  Rng rng(55);
  block.init(rng);
  std::vector<Layer*> leaves;
  block.collect_leaves(leaves);
  for (Layer* leaf : leaves) {
    zero(leaf->params());
  }
  std::vector<float> x{-1, 2, -3, 4, -5, 6, -7, 8, -9};
  std::vector<float> y(9);
  block.forward({x.data(), 9}, 1, {y.data(), 9});
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i] > 0 ? x[i] : 0.0f) << "index " << i;
  }
}

TEST(ResidualBlockTest, CollectsTwoConvLeaves) {
  ResidualConvBlock block({2, 4, 4});
  std::vector<Layer*> leaves;
  block.collect_leaves(leaves);
  EXPECT_EQ(leaves.size(), 2u);
  EXPECT_GT(leaves[0]->param_count(), 0u);
}

TEST(LossTest, UniformLogitsGiveLogC) {
  const std::size_t classes = 4;
  std::vector<float> logits(classes, 0.0f);
  std::vector<std::size_t> labels{1};
  const auto result = softmax_cross_entropy_eval(
      {logits.data(), logits.size()}, {labels.data(), 1}, classes);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
}

TEST(LossTest, CorrectCountsTop1) {
  std::vector<float> logits{
      5.0f, 0.0f, 0.0f,   // predicts 0
      0.0f, 5.0f, 0.0f};  // predicts 1
  std::vector<std::size_t> labels{0, 2};
  const auto result = softmax_cross_entropy_eval(
      {logits.data(), logits.size()}, {labels.data(), 2}, 3);
  EXPECT_EQ(result.correct, 1u);
}

TEST(LossTest, GradientRowsSumToZero) {
  std::vector<float> logits{1.0f, 2.0f, 3.0f};
  std::vector<std::size_t> labels{0};
  std::vector<float> dlogits(3);
  softmax_cross_entropy({logits.data(), 3}, {labels.data(), 1}, 3,
                        {dlogits.data(), 3});
  EXPECT_NEAR(dlogits[0] + dlogits[1] + dlogits[2], 0.0f, 1e-6f);
}

TEST(LossTest, RejectsBadLabels) {
  std::vector<float> logits(3);
  std::vector<std::size_t> labels{5};
  std::vector<float> dlogits(3);
  EXPECT_THROW(softmax_cross_entropy({logits.data(), 3}, {labels.data(), 1},
                                     3, {dlogits.data(), 3}),
               CheckError);
}

TEST(LossTest, ExtremeLogitsStayFinite) {
  std::vector<float> logits{1000.0f, -1000.0f};
  std::vector<std::size_t> labels{1};
  const auto result = softmax_cross_entropy_eval({logits.data(), 2},
                                                 {labels.data(), 1}, 2);
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_GT(result.loss, 10.0);
}

}  // namespace
}  // namespace marsit
