// Tests for the chunked compute/comm overlap pipeline (DESIGN.md §12):
// the wavefront scheduler, the per-thread scratch arenas, and the
// max-of-stages timing composition.  The load-bearing contract: the
// pipeline_overlap switch changes *when* work happens and what timing is
// reported, never the ⊙/majority arithmetic or the rng stream — every
// strategy's outputs must be bit-identical with it on or off, for any pool
// size and chunk geometry.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <vector>

#include "core/sync_strategy.hpp"
#include "net/fault_plan.hpp"
#include "obs/trace.hpp"
#include "parallel/pipeline.hpp"
#include "parallel/shard.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

constexpr std::size_t kDim = 5000;
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kRounds = 3;

std::vector<std::vector<float>> make_inputs(std::size_t round) {
  std::vector<std::vector<float>> inputs(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    inputs[w].resize(kDim);
    Rng rng(derive_seed(1000 + round, w));
    fill_normal({inputs[w].data(), kDim}, rng, 0.0f, 1.0f);
  }
  return inputs;
}

/// The five strategies whose rounds run through the sharded/pipelined sync
/// paths, each on its home paradigm.
struct StrategyCase {
  SyncMethod method;
  MarParadigm paradigm;
  const char* label;
};

const StrategyCase kCases[] = {
    {SyncMethod::kMarsit, MarParadigm::kRing, "Marsit-RAR"},
    {SyncMethod::kSignSgdMv, MarParadigm::kRing, "signSGD-MV"},
    {SyncMethod::kEfSignSgd, MarParadigm::kRing, "EF-signSGD"},
    {SyncMethod::kSsdm, MarParadigm::kRing, "SSDM-RAR"},
    {SyncMethod::kSsdmPs, MarParadigm::kParameterServer, "SSDM-PS"},
};

SyncConfig make_config(const StrategyCase& c, ThreadPool* pool,
                       std::size_t chunk, bool overlap) {
  SyncConfig config;
  config.num_workers = kWorkers;
  config.paradigm = c.paradigm;
  config.seed = 77;
  config.pool = pool;
  config.shard_chunk_elements = chunk;
  config.pipeline_overlap = overlap;
  return config;
}

struct RunOutput {
  std::vector<float> outputs;         // kRounds × kDim, concatenated
  std::vector<SyncStepResult> steps;  // one per round
};

RunOutput run_rounds(const StrategyCase& c, ThreadPool* pool,
                     std::size_t chunk, bool overlap,
                     const FaultPlan& plan = {}) {
  SyncConfig config = make_config(c, pool, chunk, overlap);
  config.fault_plan = plan;
  auto strategy = make_sync_strategy(c.method, config);
  RunOutput run;
  std::vector<float> out(kDim);
  for (std::size_t t = 0; t < kRounds; ++t) {
    const auto inputs = make_inputs(t);
    WorkerSpans spans;
    for (const auto& in : inputs) {
      spans.emplace_back(in.data(), in.size());
    }
    run.steps.push_back(strategy->synchronize(spans, {out.data(), out.size()}));
    run.outputs.insert(run.outputs.end(), out.begin(), out.end());
  }
  return run;
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << label << ": pipelined outputs diverge from the serial digest";
}

// --- scheduler ----------------------------------------------------------------

TEST(ChunkPipelineTest, SchedulerHonorsWavefrontDependencies) {
  // Task (s, c) must run after (s−1, c) and (s, c−1).  Record a global
  // completion sequence and check both edges for every task.
  constexpr std::size_t kStages = 3;
  constexpr std::size_t kChunks = 7;
  std::mutex mu;
  std::vector<std::size_t> order(kStages * kChunks, 0);
  std::size_t next = 1;
  auto record = [&](std::size_t s, std::size_t c) {
    const std::lock_guard<std::mutex> lock(mu);
    order[s * kChunks + c] = next++;
  };
  ThreadPool pool(4);
  const PipelineStage stages[] = {
      {[&](std::size_t c, ScratchArena&) { record(0, c); }},
      {[&](std::size_t c, ScratchArena&) { record(1, c); }},
      {[&](std::size_t c, ScratchArena&) { record(2, c); }},
  };
  run_chunk_pipeline(pool, kChunks, stages);
  for (std::size_t s = 0; s < kStages; ++s) {
    for (std::size_t c = 0; c < kChunks; ++c) {
      ASSERT_GT(order[s * kChunks + c], 0u) << "task never ran";
      if (s > 0) {
        EXPECT_GT(order[s * kChunks + c], order[(s - 1) * kChunks + c])
            << "stage " << s << " chunk " << c << " ran before its input";
      }
      if (c > 0) {
        EXPECT_GT(order[s * kChunks + c], order[s * kChunks + c - 1])
            << "stage " << s << " chunk " << c << " overtook its lane";
      }
    }
  }
}

TEST(ChunkPipelineTest, ScratchArenaReusesBlocksAfterWarmup) {
  ScratchArena& arena = this_thread_arena();
  arena.reset();
  const std::span<std::uint64_t> w1 = arena.words(37);
  const std::span<float> f1 = arena.floats(129);
  // Distinct requests in one stage get distinct blocks.
  const std::span<std::uint64_t> w2 = arena.words(37);
  EXPECT_NE(w1.data(), w2.data());
  EXPECT_EQ(w1.size(), 37u);
  EXPECT_EQ(f1.size(), 129u);
  // After reset, the same request sequence reuses the warm blocks: the grow
  // counter (the zero-allocation hook the sync tests pin) stays flat.
  const std::uint64_t grows = ScratchArena::total_grows();
  for (int repeat = 0; repeat < 8; ++repeat) {
    arena.reset();
    (void)arena.words(37);
    (void)arena.floats(129);
    (void)arena.words(30);  // smaller fits the warm 37-word block
  }
  EXPECT_EQ(ScratchArena::total_grows(), grows)
      << "arena grew on a repeated request sequence";
  arena.reset();
}

// --- digest invariance --------------------------------------------------------

TEST(ChunkPipelineTest, PipelinedDigestMatchesSerial) {
  // chunk grids: many ragged chunks, a handful, and one covering the payload.
  const std::size_t chunks[] = {std::size_t{1} << 12, std::size_t{1} << 16,
                                kDim};
  ThreadPool pool1(1), pool4(4), pool_hw(0);
  for (const StrategyCase& c : kCases) {
    for (const std::size_t chunk : chunks) {
      const RunOutput ref = run_rounds(c, &pool1, chunk, /*overlap=*/false);
      for (ThreadPool* pool : {&pool1, &pool4, &pool_hw}) {
        const RunOutput piped = run_rounds(c, pool, chunk, /*overlap=*/true);
        expect_bit_identical(piped.outputs, ref.outputs, c.label);
      }
    }
  }
}

// --- timing invariants --------------------------------------------------------

TEST(ChunkPipelineTest, OverlappedNeverExceedsSerial) {
  ThreadPool pool(2);
  for (const StrategyCase& c : kCases) {
    // 256-element chunks → 20 chunks at kDim: a real wavefront.
    const RunOutput run = run_rounds(c, &pool, 256, /*overlap=*/true);
    for (const SyncStepResult& step : run.steps) {
      ASSERT_GT(step.timing.pipeline_chunks, 1u) << c.label;
      ASSERT_EQ(step.chunk_stages.size(), step.timing.pipeline_chunks)
          << c.label;
      EXPECT_LE(step.timing.completion_seconds,
                step.timing.serial_completion_seconds *
                    (1.0 + 1e-9))
          << c.label << ": overlap made the round slower than serial";
      // Lane structure: pack and fold lanes are serialized chains, a
      // chunk's transfer starts when its pack ends, its fold after both
      // the transfer and the previous fold.
      for (std::size_t i = 0; i < step.chunk_stages.size(); ++i) {
        const ChunkStageTiming& stage = step.chunk_stages[i];
        EXPECT_LE(stage.pack_start, stage.pack_end);
        EXPECT_EQ(stage.transfer_start, stage.pack_end);
        EXPECT_LE(stage.transfer_start, stage.transfer_end);
        EXPECT_LE(stage.transfer_end, stage.fold_start);
        EXPECT_LE(stage.fold_start, stage.fold_end);
        if (i > 0) {
          EXPECT_GE(stage.pack_start, step.chunk_stages[i - 1].pack_end);
          EXPECT_GE(stage.fold_start, step.chunk_stages[i - 1].fold_end);
        }
      }
      EXPECT_DOUBLE_EQ(step.chunk_stages.back().fold_end,
                       step.timing.completion_seconds);
    }
    // Single chunk: nothing overlaps, the two figures coincide (the serial
    // reference is shift-invariant on a fresh fault-free fabric).
    const RunOutput single = run_rounds(c, &pool, kDim, /*overlap=*/true);
    for (const SyncStepResult& step : single.steps) {
      ASSERT_EQ(step.timing.pipeline_chunks, 1u) << c.label;
      EXPECT_NEAR(step.timing.completion_seconds,
                  step.timing.serial_completion_seconds,
                  step.timing.serial_completion_seconds * 1e-9)
          << c.label;
    }
  }
}

TEST(ChunkPipelineTest, UnpipelinedRoundsReportNoOverlap) {
  ThreadPool pool(2);
  const RunOutput run = run_rounds(kCases[0], &pool, 256, /*overlap=*/false);
  for (const SyncStepResult& step : run.steps) {
    EXPECT_EQ(step.timing.pipeline_chunks, 0u);
    EXPECT_EQ(step.timing.serial_completion_seconds, 0.0);
    EXPECT_TRUE(step.chunk_stages.empty());
  }
}

// --- fault containment --------------------------------------------------------

TEST(ChunkPipelineTest, RetryStallsOnlyDownstreamOfItsChunk) {
  // Link loss delays chunk messages (retries on the shared fabric) but must
  // not move the pack lane — packing is local work, upstream of the wire —
  // and must not change any output bit.
  ThreadPool pool(2);
  FaultPlan plan;
  plan.packet_loss = 0.3;
  plan.seed = 9;
  const StrategyCase& c = kCases[0];  // Marsit ring
  const RunOutput clean = run_rounds(c, &pool, 256, /*overlap=*/true);
  const RunOutput faulty = run_rounds(c, &pool, 256, /*overlap=*/true, plan);
  expect_bit_identical(faulty.outputs, clean.outputs, "faulty pipelined run");
  std::size_t retransmissions = 0;
  bool transfer_moved = false;
  for (std::size_t t = 0; t < kRounds; ++t) {
    const SyncStepResult& a = clean.steps[t];
    const SyncStepResult& b = faulty.steps[t];
    retransmissions += b.timing.retransmissions;
    ASSERT_EQ(a.chunk_stages.size(), b.chunk_stages.size());
    for (std::size_t i = 0; i < a.chunk_stages.size(); ++i) {
      EXPECT_DOUBLE_EQ(b.chunk_stages[i].pack_start,
                       a.chunk_stages[i].pack_start)
          << "round " << t << " chunk " << i;
      EXPECT_DOUBLE_EQ(b.chunk_stages[i].pack_end,
                       a.chunk_stages[i].pack_end)
          << "round " << t << " chunk " << i;
      if (b.chunk_stages[i].transfer_end != a.chunk_stages[i].transfer_end) {
        transfer_moved = true;
      }
    }
    EXPECT_GE(b.timing.completion_seconds, a.timing.completion_seconds);
  }
  EXPECT_GT(retransmissions, 0u) << "fault plan injected no retries";
  EXPECT_TRUE(transfer_moved) << "retries never stalled a transfer slot";
}

// --- allocation discipline ----------------------------------------------------

TEST(ChunkPipelineTest, HotLoopIsAllocationFreeAfterWarmup) {
  // Single-thread pool: the inline fast path funnels every stage through one
  // arena, so the steady state is deterministic — after one warm round the
  // grow counter must stay exactly flat.
  ThreadPool pool(1);
  for (const StrategyCase& c : kCases) {
    SyncConfig config = make_config(c, &pool, 256, /*overlap=*/false);
    auto strategy = make_sync_strategy(c.method, config);
    std::vector<float> out(kDim);
    const auto inputs = make_inputs(0);
    WorkerSpans spans;
    for (const auto& in : inputs) {
      spans.emplace_back(in.data(), in.size());
    }
    strategy->synchronize(spans, {out.data(), out.size()});  // warmup
    const std::uint64_t grows = ScratchArena::total_grows();
    for (std::size_t t = 1; t < 4; ++t) {
      strategy->synchronize(spans, {out.data(), out.size()});
    }
    EXPECT_EQ(ScratchArena::total_grows(), grows)
        << c.label << ": sync hot loop allocated arena blocks per round";
  }
}

TEST(ChunkPipelineTest, MultiThreadArenaGrowthIsBoundedNotPerRound) {
  // With a real pool the stage→thread assignment is nondeterministic, so
  // per-thread warm sets can still fill in lazily — but growth must be a
  // small constant (bounded by threads × block kinds), never proportional
  // to rounds × chunks the way the old per-chunk vector was.
  ThreadPool pool(4);
  SyncConfig config = make_config(kCases[1], &pool, 256, /*overlap=*/false);
  auto strategy = make_sync_strategy(kCases[1].method, config);
  std::vector<float> out(kDim);
  const auto inputs = make_inputs(0);
  WorkerSpans spans;
  for (const auto& in : inputs) {
    spans.emplace_back(in.data(), in.size());
  }
  for (std::size_t t = 0; t < 3; ++t) {  // warmup
    strategy->synchronize(spans, {out.data(), out.size()});
  }
  const std::uint64_t grows = ScratchArena::total_grows();
  constexpr std::size_t kMoreRounds = 10;
  for (std::size_t t = 0; t < kMoreRounds; ++t) {
    strategy->synchronize(spans, {out.data(), out.size()});
  }
  // 10 rounds × 20 chunks would be ≥ 200 grows with per-chunk allocation.
  EXPECT_LE(ScratchArena::total_grows() - grows, 8u)
      << "arena growth scales with rounds — per-chunk allocation is back";
}

// --- trace lanes --------------------------------------------------------------

TEST(ChunkPipelineTest, StageSpansLandOnThreeLanes) {
  ThreadPool pool(2);
  obs::TraceSession session;
  obs::TraceSession::install(&session);
  const RunOutput run = run_rounds(kCases[0], &pool, 256, /*overlap=*/true);
  obs::TraceSession::install(nullptr);
  const std::size_t chunks = run.steps.front().timing.pipeline_chunks;
  ASSERT_GT(chunks, 1u);
  // Three lane spans per chunk per round; the serial-reference measurement
  // runs trace-suppressed, so per-chunk collectives emit exactly one set of
  // "phase" spans (2 per ring sub-collective) with no phantom duplicates.
  EXPECT_EQ(session.span_count("stage"), 3 * chunks * kRounds);
  EXPECT_EQ(session.span_count("phase"), 2 * chunks * kRounds);
}

}  // namespace
}  // namespace marsit
