// MetricsRegistry: registration, per-kind publish semantics, cross-thread
// shard merging, the disabled fast path, and histogram bucket geometry.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace marsit::obs {
namespace {

TEST(MetricsRegistryTest, RegisterIsIdempotentPerName) {
  MetricsRegistry registry;
  const auto id = registry.register_metric("a.counter", MetricKind::kCounter);
  EXPECT_EQ(registry.register_metric("a.counter", MetricKind::kCounter), id);
  EXPECT_NE(registry.register_metric("a.other", MetricKind::kCounter), id);
  EXPECT_EQ(registry.metric_count(), 2u);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.register_metric("a.counter", MetricKind::kCounter);
  EXPECT_THROW(registry.register_metric("a.counter", MetricKind::kGauge),
               CheckError);
}

TEST(MetricsRegistryTest, RegistrationCapEnforced) {
  MetricsRegistry registry;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxMetrics; ++i) {
    // Append, not operator+: gcc 12's -Wrestrict misfires when it inlines
    // libstdc++'s operator+(const char*, string&&) here.
    std::string name = "m";
    name += std::to_string(i);
    registry.register_metric(name, MetricKind::kCounter);
  }
  EXPECT_THROW(registry.register_metric("overflow", MetricKind::kCounter),
               CheckError);
}

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  const auto id = registry.register_metric("c", MetricKind::kCounter);
  registry.add(id, 2.0);
  registry.add(id, 0.5);
  const MetricSnapshot snap = registry.find("c");
  EXPECT_EQ(snap.kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap.value, 2.5);
  EXPECT_EQ(snap.count, 2u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriterWins) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  const auto id = registry.register_metric("g", MetricKind::kGauge);
  registry.set(id, 7.0);
  registry.set(id, 3.0);
  const MetricSnapshot snap = registry.find("g");
  EXPECT_DOUBLE_EQ(snap.value, 3.0);
  EXPECT_EQ(snap.count, 2u);
}

TEST(MetricsRegistryTest, HistogramTracksSumCountExtremaAndBuckets) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  const auto id = registry.register_metric("h", MetricKind::kHistogram);
  registry.observe(id, 1.0);
  registry.observe(id, 4.0);
  registry.observe(id, 0.25);
  const MetricSnapshot snap = registry.find("h");
  EXPECT_DOUBLE_EQ(snap.value, 5.25);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
  ASSERT_EQ(snap.buckets.size(), kHistogramBuckets);
  std::uint64_t total = 0;
  for (const std::uint64_t b : snap.buckets) {
    total += b;
  }
  EXPECT_EQ(total, 3u);
  // The three observations land in distinct power-of-two buckets.
  EXPECT_EQ(snap.buckets[histogram_bucket(1.0)], 1u);
  EXPECT_EQ(snap.buckets[histogram_bucket(4.0)], 1u);
  EXPECT_EQ(snap.buckets[histogram_bucket(0.25)], 1u);
}

TEST(MetricsRegistryTest, BucketGeometry) {
  // Bucket floors are powers of two; each value lands in the bucket whose
  // floor is the largest power of two ≤ value.
  for (double v : {1e-9, 0.125, 1.0, 3.9, 1024.0}) {
    const std::size_t b = histogram_bucket(v);
    ASSERT_LT(b, kHistogramBuckets);
    EXPECT_LE(histogram_bucket_floor(b), v);
    if (b + 1 < kHistogramBuckets) {
      EXPECT_GT(histogram_bucket_floor(b + 1), v);
    }
  }
  // Non-positive values land in bucket 0 rather than throwing.
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(-5.0), 0u);
}

TEST(MetricsRegistryTest, DisabledPublishesAreDropped) {
  MetricsRegistry registry;
  const auto c = registry.register_metric("c", MetricKind::kCounter);
  const auto g = registry.register_metric("g", MetricKind::kGauge);
  const auto h = registry.register_metric("h", MetricKind::kHistogram);
  registry.add(c, 1.0);
  registry.set(g, 1.0);
  registry.observe(h, 1.0);
  EXPECT_EQ(registry.find("c").count, 0u);
  EXPECT_EQ(registry.find("g").count, 0u);
  EXPECT_EQ(registry.find("h").count, 0u);
}

TEST(MetricsRegistryTest, ScrapeMergesThreadShards) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  const auto c = registry.register_metric("c", MetricKind::kCounter);
  const auto h = registry.register_metric("h", MetricKind::kHistogram);
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, c, h] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        registry.add(c, 1.0);
        registry.observe(h, 2.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(registry.find("c").value, kThreads * kAddsPerThread);
  EXPECT_EQ(registry.find("h").count,
            static_cast<std::uint64_t>(kThreads * kAddsPerThread));
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  const auto c = registry.register_metric("c", MetricKind::kCounter);
  registry.add(c, 5.0);
  registry.reset();
  EXPECT_EQ(registry.metric_count(), 1u);
  EXPECT_DOUBLE_EQ(registry.find("c").value, 0.0);
  EXPECT_EQ(registry.find("c").count, 0u);
  registry.add(c, 1.0);  // still publishable after reset
  EXPECT_DOUBLE_EQ(registry.find("c").value, 1.0);
}

TEST(MetricsRegistryTest, FindUnregisteredReturnsEmptySnapshot) {
  MetricsRegistry registry;
  const MetricSnapshot snap = registry.find("nope");
  EXPECT_TRUE(snap.name.empty());
  EXPECT_EQ(snap.count, 0u);
}

TEST(MetricsRegistryTest, ScrapePreservesRegistrationOrder) {
  MetricsRegistry registry;
  registry.register_metric("z.last", MetricKind::kCounter);
  registry.register_metric("a.first", MetricKind::kGauge);
  const auto snaps = registry.scrape();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].name, "z.last");
  EXPECT_EQ(snaps[1].name, "a.first");
}

TEST(MetricsHandleTest, HandlesPublishToGlobalOnlyWhenEnabled) {
  auto& global = MetricsRegistry::global();
  global.reset();
  set_metrics_enabled(false);
  const Counter counter("obs_test.handle_counter");
  const Gauge gauge("obs_test.handle_gauge");
  const Histogram histogram("obs_test.handle_histogram");
  counter.increment();
  gauge.set(9.0);
  histogram.observe(1.5);
  EXPECT_EQ(global.find("obs_test.handle_counter").count, 0u);

  set_metrics_enabled(true);
  counter.add(2.0);
  gauge.set(4.0);
  histogram.observe(0.5);
  set_metrics_enabled(false);
  EXPECT_DOUBLE_EQ(global.value("obs_test.handle_counter"), 2.0);
  EXPECT_DOUBLE_EQ(global.value("obs_test.handle_gauge"), 4.0);
  EXPECT_EQ(global.find("obs_test.handle_histogram").count, 1u);
  global.reset();
}

}  // namespace
}  // namespace marsit::obs
