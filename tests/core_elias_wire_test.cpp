// The Elias-coded wire path of the sign-sum strategies: coding must change
// timing/accounting only — never the aggregated values — and the measured
// sizes must refresh on schedule.
#include <gtest/gtest.h>

#include "core/sync_strategy.hpp"
#include "tensor/ops.hpp"

namespace marsit {
namespace {

SyncConfig ring_config(std::size_t workers, bool use_elias) {
  SyncConfig config;
  config.num_workers = workers;
  config.paradigm = MarParadigm::kRing;
  config.seed = 71;
  config.use_elias = use_elias;
  config.elias_refresh_interval = 2;
  return config;
}

std::vector<Tensor> random_inputs(std::size_t m, std::size_t d,
                                  std::uint64_t seed) {
  std::vector<Tensor> inputs;
  Rng rng(seed);
  for (std::size_t w = 0; w < m; ++w) {
    Tensor t(d);
    fill_normal(t.span(), rng, 0.0f, 1.0f);
    inputs.push_back(std::move(t));
  }
  return inputs;
}

WorkerSpans spans_of(const std::vector<Tensor>& inputs) {
  WorkerSpans spans;
  for (const auto& t : inputs) {
    spans.push_back(t.span());
  }
  return spans;
}

TEST(EliasWireTest, ValuesIdenticalWithAndWithoutElias) {
  const std::size_t m = 4, d = 512;
  SignSgdMvSync plain(ring_config(m, false), 0.1f);
  SignSgdMvSync coded(ring_config(m, true), 0.1f);
  const auto inputs = random_inputs(m, d, 72);
  Tensor out_plain(d), out_coded(d);
  for (int round = 0; round < 5; ++round) {
    plain.synchronize(spans_of(inputs), out_plain.span());
    coded.synchronize(spans_of(inputs), out_coded.span());
    for (std::size_t i = 0; i < d; ++i) {
      ASSERT_FLOAT_EQ(out_plain[i], out_coded[i])
          << "round " << round << " element " << i;
    }
  }
}

TEST(EliasWireTest, CodedBitsDifferFromFixedWidth) {
  const std::size_t m = 8, d = 4096;
  SignSgdMvSync plain(ring_config(m, false), 0.1f);
  SignSgdMvSync coded(ring_config(m, true), 0.1f);
  const auto inputs = random_inputs(m, d, 73);
  Tensor out(d);
  const auto fixed_step = plain.synchronize(spans_of(inputs), out.span());
  const auto coded_step = coded.synchronize(spans_of(inputs), out.span());
  // Random uncorrelated signs: γ coding beats the 5-bit fixed width on the
  // deep hops, so the coded round moves fewer bits.
  EXPECT_NE(fixed_step.timing.total_wire_bits,
            coded_step.timing.total_wire_bits);
  EXPECT_GT(coded_step.timing.total_wire_bits, 0.0);
  EXPECT_LT(coded_step.bits_per_element, 32.0);
}

TEST(EliasWireTest, WorksForEfAndSsdmToo) {
  const std::size_t m = 4, d = 256;
  const auto inputs = random_inputs(m, d, 74);
  Tensor out(d);

  EfSignSgdSync ef(ring_config(m, true));
  const auto ef_step = ef.synchronize(spans_of(inputs), out.span());
  EXPECT_TRUE(all_finite(out.span()));
  EXPECT_GT(ef_step.timing.total_wire_bits, 0.0);

  SsdmMarSync ssdm(ring_config(m, true), 0.1f);
  const auto ssdm_step = ssdm.synchronize(spans_of(inputs), out.span());
  EXPECT_TRUE(all_finite(out.span()));
  EXPECT_GT(ssdm_step.timing.total_wire_bits, 0.0);
}

TEST(EliasWireTest, CacheRefreshKeepsAccountingFinite) {
  // Run past several refresh intervals; sizes must stay positive and sane.
  const std::size_t m = 4, d = 256;
  SignSgdMvSync coded(ring_config(m, true), 0.1f);
  Tensor out(d);
  for (int round = 0; round < 7; ++round) {
    const auto inputs = random_inputs(m, d, 75 + round);
    const auto step = coded.synchronize(spans_of(inputs), out.span());
    ASSERT_GT(step.bits_per_element, 0.0) << "round " << round;
    ASSERT_LT(step.bits_per_element, 33.0) << "round " << round;
  }
}

}  // namespace
}  // namespace marsit
