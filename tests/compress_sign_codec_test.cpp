#include "compress/sign_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace marsit {
namespace {

TEST(PackSignsTest, SignConvention) {
  std::vector<float> g{1.5f, -2.0f, 0.0f, -0.0001f, 3.0f};
  BitVector bits = pack_signs({g.data(), g.size()});
  EXPECT_TRUE(bits.get(0));
  EXPECT_FALSE(bits.get(1));
  EXPECT_TRUE(bits.get(2));  // zero maps to +1
  EXPECT_FALSE(bits.get(3));
  EXPECT_TRUE(bits.get(4));
}

TEST(PackSignsTest, RoundTripThroughUnpack) {
  std::vector<float> g(200);
  Rng rng(1);
  fill_normal({g.data(), g.size()}, rng, 0.0f, 1.0f);
  BitVector bits = pack_signs({g.data(), g.size()});
  std::vector<float> decoded(g.size());
  unpack_signs(bits, 1.0f, {decoded.data(), decoded.size()});
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(decoded[i], g[i] >= 0.0f ? 1.0f : -1.0f) << "index " << i;
  }
}

TEST(UnpackSignsTest, ScaleApplied) {
  std::vector<float> g{2.0f, -3.0f};
  BitVector bits = pack_signs({g.data(), g.size()});
  std::vector<float> decoded(2);
  unpack_signs(bits, 0.5f, {decoded.data(), 2});
  EXPECT_FLOAT_EQ(decoded[0], 0.5f);
  EXPECT_FLOAT_EQ(decoded[1], -0.5f);
}

TEST(UnpackSignsTest, ExtentMismatchThrows) {
  BitVector bits(4);
  std::vector<float> out(5);
  EXPECT_THROW(unpack_signs(bits, 1.0f, {out.data(), out.size()}),
               CheckError);
}

TEST(AccumulateSignsTest, AddsScaledSigns) {
  std::vector<float> g{1.0f, -1.0f};
  BitVector bits = pack_signs({g.data(), g.size()});
  std::vector<float> acc{10.0f, 10.0f};
  accumulate_signs(bits, 2.0f, {acc.data(), 2});
  EXPECT_FLOAT_EQ(acc[0], 12.0f);
  EXPECT_FLOAT_EQ(acc[1], 8.0f);
}

TEST(SsdmTest, ZeroVectorPacksAllPositive) {
  std::vector<float> g(10, 0.0f);
  Rng rng(2);
  BitVector bits = ssdm_pack({g.data(), g.size()}, rng);
  EXPECT_EQ(bits.popcount(), 10u);
}

TEST(SsdmTest, DecodedExpectationIsUnbiased) {
  // E[ norm · sign~(g) ] = g elementwise (Appendix A); check a fixed vector
  // over many stochastic compressions.
  std::vector<float> g{0.6f, -0.3f, 0.1f, -0.8f};
  const float norm = ssdm_norm({g.data(), g.size()});
  Rng rng(3);
  std::vector<double> mean(g.size(), 0.0);
  const int trials = 60000;
  std::vector<float> decoded(g.size());
  for (int t = 0; t < trials; ++t) {
    BitVector bits = ssdm_pack({g.data(), g.size()}, rng);
    unpack_signs(bits, norm, {decoded.data(), decoded.size()});
    for (std::size_t i = 0; i < g.size(); ++i) {
      mean[i] += decoded[i];
    }
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    mean[i] /= trials;
    // sd of one decoded element is ≈ norm; sd of the mean ≈ norm/√trials.
    EXPECT_NEAR(mean[i], g[i], 5.0 * norm / std::sqrt(trials))
        << "element " << i;
  }
}

TEST(SsdmTest, ProbabilityMatchesFormula) {
  // A single dominant positive element should be +1 with probability
  // 1/2 + g_i/(2‖g‖).
  std::vector<float> g{3.0f, -4.0f};  // norm 5; p(+) = 0.8 and 0.1
  Rng rng(4);
  std::size_t plus0 = 0, plus1 = 0;
  const std::size_t trials = 50000;
  for (std::size_t t = 0; t < trials; ++t) {
    BitVector bits = ssdm_pack({g.data(), g.size()}, rng);
    plus0 += bits.get(0);
    plus1 += bits.get(1);
  }
  EXPECT_LT(std::abs(binomial_z_score(plus0, trials, 0.8)), 5.0);
  EXPECT_LT(std::abs(binomial_z_score(plus1, trials, 0.1)), 5.0);
}

TEST(ScaledSignTest, ScaleIsMeanAbsoluteValue) {
  std::vector<float> g{1.0f, -3.0f, 2.0f, 0.0f};
  EXPECT_FLOAT_EQ(scaled_sign_scale({g.data(), g.size()}), 1.5f);
}

TEST(ScaledSignTest, EmptyThrows) {
  EXPECT_THROW(scaled_sign_scale({}), CheckError);
}

TEST(ScaledSignTest, CompressorReducesL2AtMostIdentity) {
  // ‖C(g)‖ ≤ ‖g‖ for the scaled-sign compressor (contraction property that
  // error feedback relies on).
  std::vector<float> g(128);
  Rng rng(5);
  fill_normal({g.data(), g.size()}, rng, 0.0f, 1.0f);
  const float scale = scaled_sign_scale({g.data(), g.size()});
  BitVector bits = pack_signs({g.data(), g.size()});
  std::vector<float> decoded(g.size());
  unpack_signs(bits, scale, {decoded.data(), decoded.size()});
  EXPECT_LE(l2_norm({decoded.data(), decoded.size()}),
            l2_norm({g.data(), g.size()}) + 1e-5f);
}

}  // namespace
}  // namespace marsit
