#include "sim/trainer.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::kError); }

  SyncConfig ring_config(std::size_t workers) {
    SyncConfig config;
    config.num_workers = workers;
    config.paradigm = MarParadigm::kRing;
    config.seed = 31;
    return config;
  }

  std::function<Sequential()> digit_model() {
    return [this] {
      return make_mlp(digits_.sample_size(), {32}, digits_.num_classes());
    };
  }

  SyntheticDigits digits_;
};

TEST_F(TrainerTest, PsgdLearnsDigits) {
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  config.batch_size_per_worker = 32;
  config.eta_l = 0.1f;
  config.rounds = 120;
  config.eval_interval = 60;
  config.eval_samples = 256;
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  const TrainResult result = trainer.train();

  EXPECT_FALSE(result.diverged);
  EXPECT_EQ(result.rounds_completed, 120u);
  EXPECT_GT(result.final_test_accuracy, 0.5);  // chance = 0.1
  EXPECT_GT(result.sim_seconds, 0.0);
  EXPECT_GT(result.total_wire_bits, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_bits_per_element, 32.0);
}

TEST_F(TrainerTest, DeterministicAcrossRuns) {
  auto run_once = [&] {
    PsgdSync strategy(ring_config(2));
    TrainerConfig config;
    config.rounds = 10;
    config.eval_interval = 10;
    config.eval_samples = 128;
    config.eta_l = 0.05f;
    DistributedTrainer trainer(digits_, digit_model(), strategy, config);
    return trainer.train().final_test_accuracy;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST_F(TrainerTest, ParallelAndSerialWorkersAgree) {
  auto run_with = [&](bool parallel) {
    PsgdSync strategy(ring_config(4));
    TrainerConfig config;
    config.rounds = 8;
    config.eval_interval = 8;
    config.eval_samples = 128;
    config.eta_l = 0.05f;
    config.parallel_workers = parallel;
    DistributedTrainer trainer(digits_, digit_model(), strategy, config);
    return trainer.train().final_test_accuracy;
  };
  EXPECT_DOUBLE_EQ(run_with(true), run_with(false));
}

TEST_F(TrainerTest, MarsitTracksMatchingRate) {
  MarsitOptions options;
  options.eta_s = 2e-3f;
  options.full_precision_period = 10;  // keep compensation from dominating
  MarsitSync strategy(ring_config(4), options);
  TrainerConfig config;
  config.rounds = 20;
  config.eval_interval = 20;
  config.eval_samples = 128;
  config.eta_l = 0.01f;
  config.track_matching_rate = true;
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  const TrainResult result = trainer.train();
  // The one-bit aggregate must agree with the exact mean sign far above
  // coin-flip level (Figure 1b shows ≳75 % for Marsit).
  EXPECT_GT(result.mean_matching_rate, 0.55);
  EXPECT_LE(result.mean_matching_rate, 1.0);
}

TEST_F(TrainerTest, StopAccuracyShortensRun) {
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  config.rounds = 300;
  config.eval_interval = 10;
  config.eval_samples = 256;
  config.eta_l = 0.1f;
  config.stop_accuracy = 0.4;  // easily reached long before 300 rounds
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  const TrainResult result = trainer.train();
  EXPECT_TRUE(result.reached_stop_accuracy);
  EXPECT_LT(result.rounds_completed, 300u);
}

TEST_F(TrainerTest, DivergenceDetected) {
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  config.rounds = 80;
  config.eval_interval = 0;
  config.eta_l = 1e6f;  // absurd stepsize
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  const TrainResult result = trainer.train();
  EXPECT_TRUE(result.diverged);
  EXPECT_LT(result.rounds_completed, 80u);
}

TEST_F(TrainerTest, LrDecayApplied) {
  // A decay to ~zero LR freezes learning: accuracy after decay-at-round-1
  // stays near the one-round level even after many more rounds.  We only
  // check it runs and stays finite — the precise effect is covered by the
  // integration tests.
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  config.rounds = 20;
  config.eval_interval = 20;
  config.eval_samples = 128;
  config.lr_decay_rounds = {1};
  config.lr_decay_factor = 0.0f;
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  const TrainResult result = trainer.train();
  EXPECT_FALSE(result.diverged);
}

TEST_F(TrainerTest, EvalPointsCarryCumulativeAxes) {
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  config.rounds = 30;
  config.eval_interval = 10;
  config.eval_samples = 128;
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  const TrainResult result = trainer.train();
  ASSERT_GE(result.evals.size(), 3u);
  for (std::size_t i = 1; i < result.evals.size(); ++i) {
    EXPECT_GT(result.evals[i].round, result.evals[i - 1].round);
    EXPECT_GT(result.evals[i].sim_seconds, result.evals[i - 1].sim_seconds);
    EXPECT_GT(result.evals[i].wire_gigabits,
              result.evals[i - 1].wire_gigabits);
  }
}

TEST_F(TrainerTest, PhaseSplitIsPopulated) {
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  config.rounds = 5;
  config.eval_interval = 0;
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  const TrainResult result = trainer.train();
  EXPECT_GT(result.mean_round_phases.compute, 0.0);
  EXPECT_GT(result.mean_round_phases.communication, 0.0);
  EXPECT_GE(result.mean_round_phases.compression, 0.0);
}

TEST_F(TrainerTest, ModelDatasetMismatchRejected) {
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  auto bad_factory = [] { return make_mlp(10, {4}, 10); };  // wrong input
  EXPECT_THROW(DistributedTrainer(digits_, bad_factory, strategy, config),
               CheckError);
}

TEST_F(TrainerTest, ParamCountExposed) {
  PsgdSync strategy(ring_config(2));
  TrainerConfig config;
  DistributedTrainer trainer(digits_, digit_model(), strategy, config);
  EXPECT_EQ(trainer.param_count(),
            digits_.sample_size() * 32 + 32 + 32 * 10 + 10);
  EXPECT_GT(trainer.compute_seconds_per_round(), 0.0);
}

}  // namespace
}  // namespace marsit
