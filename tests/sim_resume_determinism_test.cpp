// Crash-restart equivalence (ISSUE tentpole): checkpoint a run at round r,
// rebuild trainer + strategy from scratch, resume, and train to round T —
// the digest of the final parameters and the complete TrainResult
// accounting must equal the uninterrupted run's, bit for bit, for every
// checkpoint round (including one mid-flush-period and one exactly at the
// Marsit K-round flush), for one-bit and sign-sum strategies, and for
// thread-pool sizes 1 and 4.  Also pinned: a run that *writes* checkpoints
// is bit-identical to one that does not (checkpointing never perturbs).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/trainer.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

constexpr std::size_t kRounds = 12;

/// FNV-1a over raw bit patterns (mirrors sim_golden_determinism_test): two
/// runs hash equal iff their trajectories are bit-identical.
class Fnv1a {
 public:
  void add_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void add(float v) { add_bytes(&v, sizeof(v)); }
  void add(double v) { add_bytes(&v, sizeof(v)); }
  void add(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct ResumeCase {
  const char* key;
  SyncMethod method;
};

// Marsit (per-worker compensation + the K-round flush), signSGD-MV and SSDM
// (Elias size caches) cover every kind of cross-round strategy state.
constexpr ResumeCase kCases[] = {
    {"marsit", SyncMethod::kMarsit},
    {"signsgd-mv", SyncMethod::kSignSgdMv},
    {"ssdm", SyncMethod::kSsdm},
};

std::unique_ptr<SyncStrategy> build_strategy(SyncMethod method,
                                             ThreadPool* pool) {
  SyncConfig sync_config;
  sync_config.num_workers = 4;
  sync_config.paradigm = MarParadigm::kRing;
  sync_config.seed = 2024;
  sync_config.pool = pool;
  MethodOptions options;
  options.eta_s = 2e-3f;
  if (method == SyncMethod::kMarsit) {
    options.full_precision_period = 5;  // K: flush at rounds 5 and 10
  }
  return make_sync_strategy(method, sync_config, options);
}

TrainerConfig base_config() {
  TrainerConfig config;
  config.batch_size_per_worker = 16;
  config.optimizer = OptimizerKind::kMomentum;  // cross-round velocity state
  config.eta_l = 0.05f;
  config.rounds = kRounds;
  config.eval_interval = 6;
  config.eval_samples = 128;
  config.seed = 99;
  config.track_matching_rate = true;
  return config;
}

std::uint64_t run_digest(SyncMethod method, ThreadPool* pool,
                         const TrainerConfig& config) {
  SyntheticDigits digits;
  auto strategy = build_strategy(method, pool);
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {24}, digits.num_classes());
  };
  DistributedTrainer trainer(digits, factory, *strategy, config);
  const TrainResult result = trainer.train();

  std::vector<float> params(trainer.param_count());
  trainer.copy_params_into({params.data(), params.size()});

  Fnv1a hash;
  for (const float p : params) {
    hash.add(p);
  }
  hash.add(static_cast<std::uint64_t>(result.rounds_completed));
  hash.add(result.sim_seconds);
  hash.add(result.total_wire_bits);
  hash.add(result.mean_bits_per_element);
  hash.add(result.mean_matching_rate);
  hash.add(result.mean_active_workers);
  hash.add(result.final_test_accuracy);
  hash.add(result.best_test_accuracy);
  hash.add(result.mean_round_phases.compute);
  hash.add(result.mean_round_phases.compression);
  hash.add(result.mean_round_phases.communication);
  hash.add(result.total_retransmitted_wire_bits);
  hash.add(static_cast<std::uint64_t>(result.total_retransmissions));
  hash.add(static_cast<std::uint64_t>(result.total_rejoins));
  hash.add(static_cast<std::uint64_t>(result.total_flush_rejoins));
  hash.add(static_cast<std::uint64_t>(result.total_corruption_demotions));
  hash.add(static_cast<std::uint64_t>(result.degraded_rounds));
  for (const EvalPoint& eval : result.evals) {
    hash.add(static_cast<std::uint64_t>(eval.round));
    hash.add(eval.sim_seconds);
    hash.add(eval.wire_gigabits);
    hash.add(eval.test_accuracy);
    hash.add(eval.test_loss);
  }
  hash.add(static_cast<std::uint64_t>(result.diverged ? 1 : 0));
  return hash.digest();
}

std::string checkpoint_template(const char* key, std::size_t pool_size) {
  return ::testing::TempDir() + "resume_" + key + "_p" +
         std::to_string(pool_size) + "_{round}.bin";
}

TEST(ResumeDeterminismTest, ResumeReproducesUninterruptedRun) {
  set_log_level(LogLevel::kError);
  // Checkpoint rounds: 1 (earliest), 4 (K−1, compensation at its fullest),
  // 5 (exactly the Marsit flush, compensation just zeroed), 7 (mid-epoch,
  // past an eval at round 6 so the evals list must restore too).
  const std::size_t resume_rounds[] = {1, 4, 5, 7};

  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(pool_size);
    for (const ResumeCase& c : kCases) {
      const std::uint64_t uninterrupted =
          run_digest(c.method, &pool, base_config());

      // A run that writes a checkpoint every round must not perturb the
      // trajectory...
      TrainerConfig writing = base_config();
      writing.checkpoint_every = 1;
      writing.checkpoint_path = checkpoint_template(c.key, pool_size);
      const std::uint64_t with_checkpoints =
          run_digest(c.method, &pool, writing);
      EXPECT_EQ(with_checkpoints, uninterrupted)
          << c.key << " pool " << pool_size
          << ": writing checkpoints changed the run";

      // ... and resuming from any of its checkpoints must land on the same
      // digest as never having stopped.
      for (const std::size_t r : resume_rounds) {
        TrainerConfig resumed = base_config();
        resumed.resume_from =
            ckpt::expand_checkpoint_path(writing.checkpoint_path, r);
        EXPECT_EQ(run_digest(c.method, &pool, resumed), uninterrupted)
            << c.key << " pool " << pool_size << ": resume from round " << r
            << " diverged from the uninterrupted run";
      }
    }
  }
}

TEST(ResumeDeterminismTest, RejectsMismatchedRun) {
  set_log_level(LogLevel::kError);
  ThreadPool pool(1);
  TrainerConfig writing = base_config();
  writing.checkpoint_every = 4;
  writing.checkpoint_path =
      ::testing::TempDir() + "resume_mismatch_{round}.bin";
  (void)run_digest(SyncMethod::kMarsit, &pool, writing);
  const std::string path =
      ckpt::expand_checkpoint_path(writing.checkpoint_path, 4);

  SyntheticDigits digits;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {24}, digits.num_classes());
  };

  // Wrong strategy: a signSGD run must refuse a Marsit checkpoint.
  {
    auto strategy = build_strategy(SyncMethod::kSignSgdMv, &pool);
    TrainerConfig config = base_config();
    config.resume_from = path;
    DistributedTrainer trainer(digits, factory, *strategy, config);
    EXPECT_THROW((void)trainer.train(), CheckError);
  }
  // Wrong trainer seed: same shape, different run.
  {
    auto strategy = build_strategy(SyncMethod::kMarsit, &pool);
    TrainerConfig config = base_config();
    config.resume_from = path;
    config.seed = 100;
    DistributedTrainer trainer(digits, factory, *strategy, config);
    EXPECT_THROW((void)trainer.train(), CheckError);
  }
}

}  // namespace
}  // namespace marsit
