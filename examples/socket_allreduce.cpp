// Socket-backend drill: the cross-backend determinism contract, end to end
// over real OS processes (DESIGN.md §14).
//
// For each scenario — the legacy all-gather plane on ring and 2×2 torus,
// then the reduce-scatter plane on ring, torus, parameter server and
// binomial tree — the launcher
//
//   1. binds one loopback listener per worker (before any threads exist —
//      the trainer's pool must not leak into forked children),
//   2. forks 4 worker processes; each mesh-connects over TCP, runs
//      dist::run_marsit_worker over a SocketTransport, and pipes back its
//      FNV-1a param digest plus per-round measured/predicted timings,
//   3. runs the identical seeds through the simulator
//      (DistributedTrainer + MarsitSync) in the parent,
//   4. asserts every socket rank's digest equals the simulator's, that
//      reduce-scatter one-bit rounds move exactly 2(M−1)·D sign bits
//      (legacy ones M(M−1)·D), and prints measured wall-clock next to the
//      α–β prediction per round.
//
// A watchdog bounds every scenario: result pipes are read with a poll()
// deadline and children that outlive it are SIGKILLed and reaped, so a
// wedged collective fails the drill instead of hanging CI.
//
// Exit status 0 iff every digest matches — CI's socket-loopback job runs
// this binary under Release and ASan.
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "compress/kernels.hpp"
#include "core/sync_strategy.hpp"
#include "data/synthetic_digits.hpp"
#include "dist/worker.hpp"
#include "net/socket_transport.hpp"
#include "nn/models.hpp"
#include "sim/trainer.hpp"
#include "tensor/tensor.hpp"
#include "util/logging.hpp"

namespace marsit {
namespace {

constexpr std::size_t kWorkers = 4;
constexpr std::size_t kRounds = 10;
constexpr std::uint64_t kTrainerSeed = 7;
constexpr std::uint64_t kSyncSeed = 2022;
/// Watchdog budget per scenario: pipe reads past this deadline fail and
/// surviving children are killed.  Generous — a healthy drill finishes in
/// well under a second even under sanitizers.
constexpr double kScenarioTimeoutSeconds = 120.0;

double now_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

dist::WorkerConfig worker_config(MarParadigm paradigm, SyncMode mode) {
  dist::WorkerConfig config;
  config.batch_size_per_worker = 16;
  config.optimizer = OptimizerKind::kSgd;
  config.eta_l = 0.05f;
  config.rounds = kRounds;
  config.trainer_seed = kTrainerSeed;
  config.sync_seed = kSyncSeed;
  config.paradigm = paradigm;
  config.sync_mode = mode;
  if (paradigm == MarParadigm::kTorus2d) {
    config.torus_rows = 2;
    config.torus_cols = 2;
  }
  config.options.eta_s = 2e-3f;
  config.options.full_precision_period = 5;
  config.shard_chunk_elements = 256;
  return config;
}

/// Fixed-size wire record a child pipes back per round.
struct RoundWire {
  std::uint64_t round;
  std::uint64_t full_precision;
  double measured_comm_seconds;
  double predicted_comm_seconds;
  double wire_bits;
  double total_wire_bits;
};

/// Reads `size` bytes, failing once `deadline` (CLOCK_MONOTONIC seconds)
/// passes — the watchdog half of the child protocol.
bool read_exact(int fd, void* data, std::size_t size, double deadline) {
  std::size_t done = 0;
  auto* bytes = static_cast<std::uint8_t*>(data);
  while (done < size) {
    const double remaining = deadline - now_seconds();
    if (remaining <= 0.0) {
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining * 1e3) + 1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (ready == 0) {
      return false;  // deadline
    }
    const ssize_t n = ::read(fd, bytes + done, size - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const void* data, std::size_t size) {
  std::size_t done = 0;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  while (done < size) {
    const ssize_t n = ::write(fd, bytes + done, size - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Child body: connect the mesh, train, pipe back digest + rounds.
[[noreturn]] void run_child(std::size_t rank, int listen_fd,
                            const std::vector<std::uint16_t>& ports,
                            const dist::WorkerConfig& config, int out_fd) {
  SyntheticDigits digits;
  const auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {16}, digits.num_classes());
  };
  std::vector<int> fds = connect_socket_mesh(
      rank, kWorkers, listen_fd, {ports.data(), ports.size()});
  int status = 0;
  {
    SocketTransport transport(rank, std::move(fds));
    const dist::WorkerResult result =
        dist::run_marsit_worker(transport, digits, factory, config);
    const std::uint64_t count = result.rounds.size();
    bool ok = write_exact(out_fd, &result.param_digest,
                          sizeof(result.param_digest)) &&
              write_exact(out_fd, &count, sizeof(count));
    for (const dist::RoundReport& report : result.rounds) {
      const RoundWire wire{report.round, report.full_precision ? 1u : 0u,
                           report.measured_comm_seconds,
                           report.predicted_comm_seconds, report.wire_bits,
                           report.total_wire_bits};
      ok = ok && write_exact(out_fd, &wire, sizeof(wire));
    }
    status = ok ? 0 : 1;
  }
  ::close(out_fd);
  ::_exit(status);
}

/// The oracle: same seeds through the simulator, digest of the final
/// parameters.
std::uint64_t simulator_digest(const dist::WorkerConfig& config) {
  SyntheticDigits digits;
  const auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {16}, digits.num_classes());
  };
  SyncConfig sync_config;
  sync_config.num_workers = kWorkers;
  sync_config.paradigm = config.paradigm;
  sync_config.torus_rows = config.torus_rows;
  sync_config.torus_cols = config.torus_cols;
  sync_config.sync_mode = config.sync_mode;
  sync_config.seed = config.sync_seed;
  sync_config.shard_chunk_elements = config.shard_chunk_elements;
  MarsitSync strategy(sync_config, config.options);

  TrainerConfig trainer_config;
  trainer_config.batch_size_per_worker = config.batch_size_per_worker;
  trainer_config.optimizer = config.optimizer;
  trainer_config.eta_l = config.eta_l;
  trainer_config.rounds = config.rounds;
  trainer_config.eval_interval = config.rounds + 1;  // digests only
  trainer_config.seed = config.trainer_seed;

  DistributedTrainer trainer(digits, factory, strategy, trainer_config);
  (void)trainer.train();
  Tensor params(trainer.param_count());
  trainer.copy_params_into(params.span());
  return ckpt::fnv1a(params.span().data(),
                     params.size() * sizeof(float));
}

/// Reaps every child without blocking forever: polls WNOHANG until the
/// deadline, then SIGKILLs and reaps whatever is left.  Returns true when
/// every child exited cleanly on its own.
bool reap_children(const std::vector<pid_t>& children, double deadline) {
  bool ok = true;
  for (std::size_t w = 0; w < children.size(); ++w) {
    int status = 0;
    for (;;) {
      const pid_t reaped = ::waitpid(children[w], &status, WNOHANG);
      if (reaped == children[w]) {
        break;
      }
      if (reaped < 0) {
        std::perror("waitpid");
        ok = false;
        break;
      }
      if (now_seconds() > deadline) {
        std::fprintf(stderr, "rank %zu: watchdog timeout, killing\n", w);
        ::kill(children[w], SIGKILL);
        ::waitpid(children[w], &status, 0);
        ok = false;
        break;
      }
      ::usleep(20'000);
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "rank %zu exited abnormally\n", w);
      ok = false;
    }
  }
  return ok;
}

/// The sign-plane dimension D: the model's parameter count padded to whole
/// 64-bit words — what every one-bit wire-volume formula counts.
double sign_plane_bits() {
  SyntheticDigits digits;
  Sequential model =
      make_mlp(digits.sample_size(), {16}, digits.num_classes());
  return static_cast<double>(kernels::words_for(model.param_count())) * 64.0;
}

/// One scenario's drill; returns true when all 4 socket digests match the
/// simulator and every one-bit round moved exactly the mode's wire volume.
bool run_scenario(const char* name, MarParadigm paradigm, SyncMode mode) {
  const dist::WorkerConfig config = worker_config(paradigm, mode);
  const double deadline = now_seconds() + kScenarioTimeoutSeconds;
  std::printf("=== %s [%s]: %zu workers, %zu rounds ===\n", name,
              sync_mode_name(mode), kWorkers, kRounds);

  // Listeners and pipes exist before any fork; each child inherits the lot
  // and closes what is not its own.
  std::vector<int> listeners(kWorkers);
  std::vector<std::uint16_t> ports(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    listeners[w] = bind_loopback_listener(&ports[w]);
  }
  std::vector<int> read_fds(kWorkers);
  std::vector<pid_t> children(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      std::perror("pipe");
      return false;
    }
    read_fds[w] = pipe_fds[0];
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return false;
    }
    if (pid == 0) {
      ::close(pipe_fds[0]);
      for (std::size_t other = 0; other < kWorkers; ++other) {
        if (other != w) {
          ::close(listeners[other]);
        }
        if (other < w) {
          ::close(read_fds[other]);
        }
      }
      run_child(w, listeners[w], ports, config, pipe_fds[1]);
    }
    children[w] = pid;
    ::close(pipe_fds[1]);
  }
  for (const int fd : listeners) {
    ::close(fd);
  }

  // Collect results under the watchdog deadline, then reap.
  std::vector<std::uint64_t> digests(kWorkers, 0);
  std::vector<std::vector<RoundWire>> reports(kWorkers);
  bool ok = true;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    std::uint64_t count = 0;
    if (!read_exact(read_fds[w], &digests[w], sizeof(digests[w]),
                    deadline) ||
        !read_exact(read_fds[w], &count, sizeof(count), deadline) ||
        count != kRounds) {
      std::fprintf(stderr, "rank %zu: result pipe broken or timed out\n", w);
      ok = false;
    } else {
      reports[w].resize(count);
      for (RoundWire& wire : reports[w]) {
        if (!read_exact(read_fds[w], &wire, sizeof(wire), deadline)) {
          std::fprintf(stderr, "rank %zu: truncated round reports\n", w);
          ok = false;
          break;
        }
      }
    }
    ::close(read_fds[w]);
  }
  ok = reap_children(children, deadline) && ok;
  if (!ok) {
    return false;
  }

  // Measured wall-clock vs the α–β prediction, per round (rank 0's view;
  // measured varies run to run, predicted is deterministic).
  std::printf("%6s  %5s  %14s  %14s  %12s  %14s\n", "round", "kind",
              "measured s", "predicted s", "wire bits", "total bits");
  for (const RoundWire& wire : reports[0]) {
    std::printf("%6llu  %5s  %14.6f  %14.6f  %12.0f  %14.0f\n",
                static_cast<unsigned long long>(wire.round),
                wire.full_precision != 0 ? "flush" : "1-bit",
                wire.measured_comm_seconds, wire.predicted_comm_seconds,
                wire.wire_bits, wire.total_wire_bits);
  }

  // The paper's wire volume, pinned on every rank's every one-bit round:
  // 2(M−1)·D sign bits under reduce-scatter, M(M−1)·D under the legacy
  // all-gather (D = the word-padded dimension; framing rides on top).
  const double d_bits = sign_plane_bits();
  const double expected_one_bit =
      mode == SyncMode::kReduceScatter
          ? 2.0 * static_cast<double>(kWorkers - 1) * d_bits
          : static_cast<double>(kWorkers * (kWorkers - 1)) * d_bits;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    for (const RoundWire& wire : reports[w]) {
      if (wire.full_precision == 0 && wire.total_wire_bits !=
                                          expected_one_bit) {
        std::fprintf(stderr,
                     "rank %zu round %llu: %.0f wire bits, expected %.0f\n",
                     w, static_cast<unsigned long long>(wire.round),
                     wire.total_wire_bits, expected_one_bit);
        ok = false;
      }
    }
  }

  const std::uint64_t oracle = simulator_digest(config);
  std::printf("simulator digest: %016llx\n",
              static_cast<unsigned long long>(oracle));
  for (std::size_t w = 0; w < kWorkers; ++w) {
    const bool match = digests[w] == oracle;
    std::printf("rank %zu digest:    %016llx  %s\n", w,
                static_cast<unsigned long long>(digests[w]),
                match ? "OK" : "MISMATCH");
    ok = ok && match;
  }
  return ok;
}

}  // namespace
}  // namespace marsit

int main() {
  using namespace marsit;
  set_log_level(LogLevel::kWarning);
  bool ok = run_scenario("Marsit ring (RAR)", MarParadigm::kRing,
                         SyncMode::kLegacyAllGather);
  ok = run_scenario("Marsit 2x2 torus (TAR)", MarParadigm::kTorus2d,
                    SyncMode::kLegacyAllGather) &&
       ok;
  ok = run_scenario("Marsit ring (RAR)", MarParadigm::kRing,
                    SyncMode::kReduceScatter) &&
       ok;
  ok = run_scenario("Marsit 2x2 torus (TAR)", MarParadigm::kTorus2d,
                    SyncMode::kReduceScatter) &&
       ok;
  ok = run_scenario("Marsit parameter server (PS)",
                    MarParadigm::kParameterServer,
                    SyncMode::kReduceScatter) &&
       ok;
  ok = run_scenario("Marsit binomial tree (TREE)", MarParadigm::kTree,
                    SyncMode::kReduceScatter) &&
       ok;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: socket backend diverged from the simulator\n");
    return 1;
  }
  std::printf("all socket digests match the simulator\n");
  return 0;
}
