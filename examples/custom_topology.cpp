// Example: using the lower-level building blocks directly — no trainer.
//
// Demonstrates (1) the ⊙ one-bit aggregation on raw sign vectors, (2) the
// timing schedules for ring / torus / PS fabrics at a model size of your
// choice, and (3) how to plug a custom wire format into the schedules —
// everything an integrator needs to evaluate Marsit for their own cluster
// shape before touching training code.
//
//   ./build/examples/custom_topology [million_params] [--trace out.trace.json]
#include <cstdlib>
#include <iostream>

#include "collectives/timing.hpp"
#include "compress/sign_codec.hpp"
#include "core/one_bit.hpp"
#include "obs/exporter.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marsit;
  obs::ScopedTrace trace(argc, argv);

  const std::size_t million = argc > 1 && argv[1][0] != '-'
                                  ? static_cast<std::size_t>(std::atol(argv[1]))
                                  : 25;
  const std::size_t d = million * 1000 * 1000;  // ResNet-50 scale by default

  // --- 1. one-bit aggregation on raw vectors --------------------------------
  std::cout << "1. Unbiased one-bit aggregation (8 workers, 10k elements)\n";
  const std::size_t small_d = 10000;
  Rng rng(1);
  std::vector<Tensor> gradients;
  std::vector<BitVector> signs;
  for (int w = 0; w < 8; ++w) {
    Tensor g(small_d);
    fill_normal(g.span(), rng, 0.1f, 1.0f);  // slight positive drift
    signs.push_back(pack_signs(g.span()));
    gradients.push_back(std::move(g));
  }
  const BitVector folded = one_bit_fold(signs, rng);
  std::cout << "   positive-sign fraction after fold: "
            << format_fixed(static_cast<double>(folded.popcount()) / small_d,
                            3)
            << "  (workers' mean positive fraction: "
            << format_fixed(
                   [&] {
                     double total = 0;
                     for (const auto& s : signs) {
                       total += static_cast<double>(s.popcount()) / small_d;
                     }
                     return total / 8.0;
                   }(),
                   3)
            << ")\n\n";

  // --- 2. fabric comparison at your model size -----------------------------
  std::cout << "2. One synchronization of a " << million
            << "M-parameter model\n\n";
  const CostModel model;
  TextTable table({"fabric", "wire format", "completion", "bits/worker"});

  auto add_row = [&](const std::string& fabric, const std::string& format,
                     const CollectiveTiming& timing) {
    table.add_row({fabric, format, format_duration(timing.completion_seconds),
                   format_bytes(timing.bits_per_worker / 8.0)});
  };

  for (const auto& [name, wire] :
       std::vector<std::pair<std::string, WireFormat>>{
           {"float32", full_precision_wire()},
           {"Marsit 1-bit", marsit_wire(model)}}) {
    {
      NetworkSim net(32, model);
      add_row("ring x32", name, ring_allreduce_timing(32, d, wire, net));
    }
    {
      NetworkSim net(32, model);
      add_row("torus 4x8", name, torus_allreduce_timing(4, 8, d, wire, net));
    }
    {
      NetworkSim net(33, model);
      add_row("PS x32", name, ps_allreduce_timing(32, d, wire, net));
    }
  }
  table.print(std::cout);

  // --- 3. a custom wire format ----------------------------------------------
  std::cout << "\n3. Custom wire format: 4-bit quantization with a "
               "per-message float scale\n";
  WireFormat int4;
  int4.reduce_bits = [](std::size_t elements, std::size_t) {
    return 4.0 * static_cast<double>(elements) + 32.0;
  };
  int4.gather_bits = [](std::size_t elements) {
    return 4.0 * static_cast<double>(elements) + 32.0;
  };
  int4.initial_pack_seconds_per_element = 1.0 / model.sign_pack_rate;
  int4.serial_seconds_per_element = 1.0 / model.sign_unpack_rate;
  int4.final_unpack_seconds_per_element = 1.0 / model.sign_unpack_rate;
  NetworkSim net(32, model);
  const CollectiveTiming timing = ring_allreduce_timing(32, d, int4, net);
  std::cout << "   ring x32 completion: "
            << format_duration(timing.completion_seconds) << ", "
            << format_bytes(timing.bits_per_worker / 8.0) << " per worker\n";
  return 0;
}
