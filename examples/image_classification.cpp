// Example: the paper's headline workload in miniature — a residual conv net
// on the synthetic CIFAR-like image dataset, trained with all six methods
// from the evaluation, comparing accuracy, simulated time, and traffic.
//
//   ./build/examples/image_classification [rounds] [--trace out.trace.json]
#include <cstdlib>
#include <iostream>

#include "core/sync_strategy.hpp"
#include "data/synthetic_images.hpp"
#include "nn/models.hpp"
#include "obs/exporter.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marsit;
  set_log_level(LogLevel::kWarning);
  obs::ScopedTrace trace(argc, argv);

  const std::size_t rounds = argc > 1 && argv[1][0] != '-'
                                 ? static_cast<std::size_t>(std::atol(argv[1]))
                                 : 200;
  const std::size_t workers = 4;

  SyntheticImages images;
  auto factory = [&images] {
    return make_resnet20_mini(images.image_dims(), images.num_classes());
  };

  {
    Sequential probe = factory();
    std::cout << "Task: 10-way image classification, "
              << images.image_dims().channels << "x"
              << images.image_dims().height << "x"
              << images.image_dims().width << " inputs\n"
              << "Model: ResNet20-mini, " << probe.param_count()
              << " parameters\n"
              << "Workers: " << workers << " on a ring, " << rounds
              << " rounds\n\n";
  }

  struct Entry {
    const char* label;
    SyncMethod method;
    std::size_t k;
  };
  const Entry entries[] = {
      {"PSGD", SyncMethod::kPsgd, 0},
      {"signSGD", SyncMethod::kSignSgdMv, 0},
      {"EF-signSGD", SyncMethod::kEfSignSgd, 0},
      {"SSDM", SyncMethod::kSsdm, 0},
      {"Marsit-K", SyncMethod::kMarsit, 25},
      {"Marsit", SyncMethod::kMarsit, 0},
  };

  TextTable table({"method", "test acc", "sim time", "traffic"});
  for (const Entry& entry : entries) {
    SyncConfig sync_config;
    sync_config.num_workers = workers;
    sync_config.paradigm = MarParadigm::kRing;
    sync_config.seed = 3;

    MethodOptions options;
    options.eta_s = 2e-3f;
    options.full_precision_period = entry.k;
    options.full_precision_max_norm = 0.5f;
    auto strategy = make_sync_strategy(entry.method, sync_config, options);

    TrainerConfig config;
    config.batch_size_per_worker = 16;
    config.optimizer = OptimizerKind::kMomentum;
    config.clip_grad_norm = 2.0f;
    config.eta_l = 0.015f;
    config.rounds = rounds;
    config.eval_interval = rounds / 4;
    config.eval_samples = 512;
    config.seed = 4;

    DistributedTrainer trainer(images, factory, *strategy, config);
    const TrainResult result = trainer.train();
    table.add_row({entry.label,
                   format_fixed(100.0 * result.best_test_accuracy, 1) + " %",
                   format_duration(result.sim_seconds),
                   format_bytes(result.total_wire_bits / 8.0)});
  }
  table.print(std::cout);
  std::cout << "\n(time and traffic are simulated; see DESIGN.md)\n";
  return 0;
}
