// Example: the paper's NLP workload in miniature — binary sentiment
// classification over synthetic token sequences with a text classifier
// trained by Adam, synchronized with Marsit on a 2-D torus (TAR).
//
//   ./build/examples/sentiment_analysis [rounds] [--trace out.trace.json]
#include <cstdlib>
#include <iostream>

#include "core/sync_strategy.hpp"
#include "data/synthetic_sentiment.hpp"
#include "nn/models.hpp"
#include "obs/exporter.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marsit;
  set_log_level(LogLevel::kWarning);
  obs::ScopedTrace trace(argc, argv);

  const std::size_t rounds = argc > 1 && argv[1][0] != '-'
                                 ? static_cast<std::size_t>(std::atol(argv[1]))
                                 : 150;

  SyntheticSentiment sentiment;
  auto factory = [&sentiment] {
    return make_text_classifier(sentiment.vocab_size(), sentiment.seq_len(),
                                16, sentiment.num_classes());
  };
  {
    Sequential probe = factory();
    std::cout << "Task: binary sentiment over " << sentiment.seq_len()
              << "-token sequences, vocab " << sentiment.vocab_size() << "\n"
              << "Model: embedding + mean-pool classifier, "
              << probe.param_count() << " parameters, Adam optimizer\n"
              << "Workers: 2x2 torus (TAR), " << rounds << " rounds\n\n";
  }

  // Marsit on the torus vs full-precision PSGD on the torus.
  TextTable table({"method", "test acc", "sim time", "traffic",
                   "bits/elem"});
  for (const bool marsit : {false, true}) {
    SyncConfig sync_config;
    sync_config.num_workers = 4;
    sync_config.paradigm = MarParadigm::kTorus2d;
    sync_config.torus_rows = 2;
    sync_config.torus_cols = 2;
    sync_config.seed = 5;

    std::unique_ptr<SyncStrategy> strategy;
    if (marsit) {
      MethodOptions options;
      options.eta_s = 1e-3f;
      options.full_precision_period = 50;
      strategy = make_sync_strategy(SyncMethod::kMarsit, sync_config, options);
    } else {
      strategy = make_sync_strategy(SyncMethod::kPsgd, sync_config);
    }

    TrainerConfig config;
    config.batch_size_per_worker = 32;
    config.optimizer = OptimizerKind::kAdam;
    config.eta_l = 0.02f;
    config.rounds = rounds;
    config.eval_interval = rounds / 5;
    config.eval_samples = 512;
    config.seed = 6;

    DistributedTrainer trainer(sentiment, factory, *strategy, config);
    const TrainResult result = trainer.train();
    table.add_row({strategy->name(),
                   format_fixed(100.0 * result.final_test_accuracy, 1) + " %",
                   format_duration(result.sim_seconds),
                   format_bytes(result.total_wire_bits / 8.0),
                   format_fixed(result.mean_bits_per_element, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(time and traffic are simulated; see DESIGN.md)\n";
  return 0;
}
