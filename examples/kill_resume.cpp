// Kill-and-resume drill: crash-restart equivalence with a real SIGKILL.
//
// Two modes over the same fixed training job (4-worker ring, Marsit with
// K = 5, momentum optimizer):
//
//   --digest
//       Run uninterrupted and print the FNV-1a digest of the final
//       parameters plus the TrainResult accounting.
//
//   --kill-at R --dir DIR
//       Fork a child that trains with a checkpoint every round; as soon as
//       the round-R snapshot appears in DIR the parent delivers SIGKILL —
//       the child dies mid-round, exactly like a crashed job — then a fresh
//       trainer resumes from that snapshot and prints the same digest.
//
// The two digests must be identical (DESIGN.md §11): a resumed run is
// bit-for-bit the run that never died.  CI drills this in Release and
// contract-validation builds:
//
//   ./build/examples/kill_resume --digest
//   ./build/examples/kill_resume --kill-at 7 --dir /tmp/marsit_ckpt
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <iostream>

#include "ckpt/checkpoint.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "sim/trainer.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace {

using namespace marsit;

constexpr std::size_t kRounds = 40;

/// FNV-1a over raw bit patterns (the golden-test digest convention).
class Fnv1a {
 public:
  void add_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  template <typename T>
  void add(T value) {
    add_bytes(&value, sizeof(value));
  }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

TrainerConfig job_config() {
  TrainerConfig config;
  config.batch_size_per_worker = 16;
  config.optimizer = OptimizerKind::kMomentum;
  config.eta_l = 0.05f;
  config.rounds = kRounds;
  config.eval_interval = 10;
  config.eval_samples = 256;
  config.seed = 99;
  return config;
}

std::uint64_t run_digest(const TrainerConfig& config) {
  SyntheticDigits digits;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {24}, digits.num_classes());
  };
  SyncConfig sync_config;
  sync_config.num_workers = 4;
  sync_config.paradigm = MarParadigm::kRing;
  sync_config.seed = 2024;
  MethodOptions options;
  options.eta_s = 2e-3f;
  options.full_precision_period = 5;
  auto strategy = make_sync_strategy(SyncMethod::kMarsit, sync_config, options);

  DistributedTrainer trainer(digits, factory, *strategy, config);
  const TrainResult result = trainer.train();

  std::vector<float> params(trainer.param_count());
  trainer.copy_params_into({params.data(), params.size()});

  Fnv1a hash;
  for (const float p : params) {
    hash.add(p);
  }
  hash.add(static_cast<std::uint64_t>(result.rounds_completed));
  hash.add(result.sim_seconds);
  hash.add(result.total_wire_bits);
  hash.add(result.mean_bits_per_element);
  hash.add(result.final_test_accuracy);
  hash.add(result.best_test_accuracy);
  for (const EvalPoint& eval : result.evals) {
    hash.add(static_cast<std::uint64_t>(eval.round));
    hash.add(eval.test_accuracy);
    hash.add(eval.test_loss);
  }
  return hash.digest();
}

bool file_exists(const std::string& path) {
  struct stat info {};
  return ::stat(path.c_str(), &info) == 0;
}

std::string arg_value(int argc, char** argv, const std::string& key,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == key) {
      return argv[i + 1];
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& key) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == key) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarning);

  if (has_flag(argc, argv, "--digest")) {
    std::cout << std::hex << run_digest(job_config()) << "\n";
    return 0;
  }

  const std::string kill_at_text = arg_value(argc, argv, "--kill-at", "");
  if (kill_at_text.empty()) {
    std::cerr << "usage: kill_resume --digest | --kill-at R [--dir DIR]\n";
    return 2;
  }
  const std::size_t kill_at =
      static_cast<std::size_t>(std::atol(kill_at_text.c_str()));
  MARSIT_CHECK(kill_at > 0 && kill_at < kRounds)
      << "--kill-at must lie in (0, " << kRounds << ")";
  const std::string dir = arg_value(argc, argv, "--dir", "/tmp/marsit_ckpt");
  ::mkdir(dir.c_str(), 0755);
  const std::string ckpt_template = dir + "/drill_{round}.bin";
  const std::string kill_trigger =
      ckpt::expand_checkpoint_path(ckpt_template, kill_at);

  const pid_t child = ::fork();
  MARSIT_CHECK(child >= 0) << "fork failed";
  if (child == 0) {
    // Child: train the full job, snapshotting every round.  It never prints
    // a digest — the parent kills it long before round 40.
    TrainerConfig config = job_config();
    config.checkpoint_every = 1;
    config.checkpoint_path = ckpt_template;
    (void)run_digest(config);
    ::_exit(0);
  }

  // Parent: the instant the round-R snapshot lands, SIGKILL the child —
  // no flush, no destructors, a genuine crash.
  while (!file_exists(kill_trigger)) {
    ::usleep(2000);
    int status = 0;
    MARSIT_CHECK(::waitpid(child, &status, WNOHANG) == 0)
        << "trainer exited before writing " << kill_trigger;
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  std::cerr << "killed trainer pid " << child << " after round " << kill_at
            << " snapshot; resuming from " << kill_trigger << "\n";

  TrainerConfig config = job_config();
  config.resume_from = kill_trigger;
  std::cout << std::hex << run_digest(config) << "\n";
  return 0;
}
