// Quickstart: train a small conv net on the synthetic digit dataset with
// 4 simulated workers, once with full-precision PSGD and once with Marsit's
// one-bit synchronization, and compare accuracy / simulated time / traffic.
//
//   ./build/examples/quickstart [--trace out.trace.json]
#include <cstdio>

#include "core/sync_strategy.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "obs/exporter.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace marsit;
  set_log_level(LogLevel::kWarning);
  obs::ScopedTrace trace(argc, argv);

  const std::size_t workers = 4;
  const std::size_t rounds = 150;

  SyntheticDigits digits;
  auto model_factory = [&digits] {
    return make_alexnet_mini(digits.image_dims(), digits.num_classes());
  };

  // Show what we are training.
  Sequential probe = model_factory();
  std::cout << "Model:\n" << probe.describe() << "\n";

  SyncConfig sync_config;
  sync_config.num_workers = workers;
  sync_config.paradigm = MarParadigm::kRing;
  sync_config.seed = 2022;

  TrainerConfig trainer_config;
  trainer_config.batch_size_per_worker = 32;
  trainer_config.eta_l = 0.05f;
  trainer_config.rounds = rounds;
  trainer_config.eval_interval = 30;
  trainer_config.eval_samples = 512;
  trainer_config.seed = 7;

  TextTable table({"method", "test acc", "sim time", "wire traffic",
                   "bits/elem"});

  for (const SyncMethod method : {SyncMethod::kPsgd, SyncMethod::kMarsit}) {
    MethodOptions options;
    options.eta_s = 2e-3f;              // Marsit's global stepsize
    options.full_precision_period = 50; // Marsit-50
    auto strategy = make_sync_strategy(method, sync_config, options);

    DistributedTrainer trainer(digits, model_factory, *strategy,
                               trainer_config);
    const TrainResult result = trainer.train();

    table.add_row({strategy->name(),
                   format_fixed(100.0 * result.final_test_accuracy, 1) + " %",
                   format_duration(result.sim_seconds),
                   format_bytes(result.total_wire_bits / 8.0),
                   format_fixed(result.mean_bits_per_element, 2)});
  }

  table.print(std::cout);
  std::cout << "\n(time and traffic are simulated; see DESIGN.md)\n";
  return 0;
}
