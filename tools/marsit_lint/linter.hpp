// marsit_lint — the project-specific static-analysis pass.
//
// A standalone binary (tools/marsit_lint) that scans src/, tests/, bench/,
// and examples/ for violations of invariants the compiler cannot see: RNG
// discipline, determinism hygiene, kernel safety, header hygiene, and obs
// gating (rules.hpp documents each).  CI runs `marsit_lint --check` on every
// PR; tests/tools_lint_test.cpp pins each rule with fixture snippets.
//
// The library layer (this header) exists so the test can lint in-memory
// fixture sources without shelling out; the binary is a thin CLI over it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "marsit_lint/rules.hpp"

namespace marsit_lint {

/// Lints one in-memory source.  `path` both names findings and classifies
/// the file for rule applicability; it should be repo-relative with forward
/// slashes (e.g. "src/core/one_bit.cpp").  Suppressions are applied and
/// malformed suppressions (unknown rule, missing reason) are reported under
/// the pseudo-rule "suppression", which is itself unsuppressible.
std::vector<Finding> lint_source(std::string path, std::string_view content);

/// Lints one on-disk file.  The stored finding path is the repo-relative
/// tail of `file_path` (starting at the first src/ | tests/ | bench/ |
/// examples/ | tools/ component) so classification works for absolute paths.
std::vector<Finding> lint_file(const std::string& file_path);

/// Expands files and directories (recursing into directories for
/// .hpp/.h/.cpp/.cc files, skipping build trees and VCS metadata), lints
/// each, and returns all findings sorted by path then line.
std::vector<Finding> lint_paths(const std::vector<std::string>& paths);

/// "path:line: [rule] message" — one line per finding.
std::string format_finding(const Finding& finding);

/// All findings as one JSON array — `[{"path": ..., "line": ..., "rule":
/// ..., "message": ...}, ...]` — for machine consumers (the CI job renders
/// these as GitHub annotations).  Always a valid document: `[]` when clean.
std::string format_findings_json(const std::vector<Finding>& findings);

}  // namespace marsit_lint
