#include "marsit_lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace marsit_lint {

namespace {

namespace fs = std::filesystem;

bool has_lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool is_skipped_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  // Build trees carry generated sources (CMake compiler probes, gtest
  // copies) that are not project code.
  return name == ".git" || name.rfind("build", 0) == 0 ||
         name == "third_party";
}

/// Repo-relative tail of a possibly absolute path, normalized to forward
/// slashes: ".../repo/src/core/x.cpp" -> "src/core/x.cpp".
std::string normalize_path(const std::string& file_path) {
  std::string path = file_path;
  std::replace(path.begin(), path.end(), '\\', '/');
  static const char* kRoots[] = {"src/", "tests/", "bench/", "examples/",
                                 "tools/"};
  std::size_t best = std::string::npos;
  for (const char* root : kRoots) {
    // Match at the start or just after a '/', whichever comes first in the
    // path; the earliest marker wins so nested names cannot confuse it.
    std::size_t at = path.rfind(std::string("/") + root);
    if (at != std::string::npos) {
      at += 1;
    } else if (path.rfind(root, 0) == 0) {
      at = 0;
    }
    if (at != std::string::npos && at < best) {
      best = at;
    }
  }
  return best == std::string::npos ? path : path.substr(best);
}

bool is_header_path(const std::string& path) {
  return path.size() > 2 && (path.rfind(".hpp") == path.size() - 4 ||
                             path.rfind(".h") == path.size() - 2);
}

}  // namespace

std::vector<Finding> lint_source(std::string path,
                                 std::string_view content) {
  FileContext file;
  file.path = std::move(path);
  file.is_header = is_header_path(file.path);
  file.lex = lex(content);

  std::vector<Finding> findings;
  for (const Rule& rule : all_rules()) {
    rule.check(file, findings);
  }

  // Validate suppressions, then apply the well-formed ones.  target_line ->
  // set of rule ids allowed there.
  std::map<int, std::set<std::string, std::less<>>> allowed;
  for (const Suppression& suppression : file.lex.suppressions) {
    if (suppression.rule.empty() || !is_known_rule(suppression.rule)) {
      findings.push_back(
          {file.path, suppression.line, "suppression",
           "suppression names unknown rule '" + suppression.rule +
               "'; run marsit_lint --list-rules for the registry"});
      continue;
    }
    if (suppression.reason.empty()) {
      findings.push_back(
          {file.path, suppression.line, "suppression",
           "suppression of '" + suppression.rule +
               "' gives no reason; write // marsit-lint: allow(" +
               suppression.rule + "): <why this site is legitimate>"});
      continue;
    }
    // Trailing comments cover their own line; standalone comments cover the
    // next code line (skipping the rest of their comment block).
    int target = suppression.line;
    if (suppression.standalone) {
      int next_code = 0;
      for (const Token& token : file.lex.tokens) {
        if (token.line > suppression.line) {
          next_code = token.line;
          break;
        }
      }
      for (const Include& include : file.lex.includes) {
        if (include.line > suppression.line &&
            (next_code == 0 || include.line < next_code)) {
          next_code = include.line;
        }
      }
      target = next_code != 0 ? next_code : suppression.line + 1;
    }
    allowed[target].insert(suppression.rule);
  }
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& finding) {
                       if (finding.rule == "suppression") {
                         return false;
                       }
                       const auto at = allowed.find(finding.line);
                       return at != allowed.end() &&
                              at->second.count(finding.rule) > 0;
                     }),
      findings.end());
  return findings;
}

std::vector<Finding> lint_file(const std::string& file_path) {
  std::ifstream in(file_path, std::ios::binary);
  if (!in) {
    return {{normalize_path(file_path), 0, "io", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(normalize_path(file_path), buffer.str());
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(
          path, fs::directory_options::skip_permission_denied, ec);
      const fs::recursive_directory_iterator end;
      for (; it != end; ++it) {
        if (it->is_directory() && is_skipped_directory(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && has_lintable_extension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::vector<Finding> file_findings = lint_file(file);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.path != b.path ? a.path < b.path
                                             : a.line < b.line;
                   });
  return findings;
}

std::string format_finding(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

namespace {

void append_json_string(const std::string& text, std::ostringstream& out) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string format_findings_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& finding = findings[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"path\": ";
    append_json_string(finding.path, out);
    out << ", \"line\": " << finding.line << ", \"rule\": ";
    append_json_string(finding.rule, out);
    out << ", \"message\": ";
    append_json_string(finding.message, out);
    out << "}";
  }
  out << (findings.empty() ? "]\n" : "\n]\n");
  return out.str();
}

}  // namespace marsit_lint
