#include "marsit_lint/rules.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>

#include "marsit_lint/layers.hpp"

namespace marsit_lint {

namespace {

bool is_id(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kIdentifier && token.text == text;
}

bool is_punct(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kPunct && token.text == text;
}

void add_finding(const FileContext& file, const Rule& rule, int line,
                 std::string message, std::vector<Finding>& out) {
  out.push_back({file.path, line, rule.id,
                 std::string(rule.label) + ": " + std::move(message)});
}

/// True for an integer literal with no size/signedness suffix (1, 63, 0x7f
/// — but not 1u, 1ULL, 0x7fULL, 1.0, 1e3).
bool is_plain_int_literal(std::string_view text) {
  if (text.empty() || text == "0x" || text == "0X") {
    return false;
  }
  std::size_t i = 0;
  bool hex = false;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    hex = true;
    i = 2;
  }
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\'') {
      continue;  // digit separator
    }
    const bool digit =
        (c >= '0' && c <= '9') ||
        (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')));
    if (!digit) {
      return false;  // suffix, '.', exponent — not a plain int
    }
  }
  return true;
}

// --- R1 rng-discipline -------------------------------------------------------

const std::set<std::string, std::less<>>& forbidden_rngs() {
  static const std::set<std::string, std::less<>> kSet = {
      "rand",          "srand",       "rand_r",
      "drand48",       "lrand48",     "mrand48",
      "random_device", "mt19937",     "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "knuth_b",       "ranlux24",    "ranlux48",
      "random_shuffle",
  };
  return kSet;
}

void check_rng_discipline(const FileContext& file, const Rule& rule,
                          std::vector<Finding>& out) {
  const auto& tokens = file.lex.tokens;
  // R1a: standard-library RNG machinery, anywhere in the tree.  The project
  // RNG (xoshiro256** behind marsit::Rng) is the only generator whose bit
  // stream is pinned across standard libraries; util/rng.* implements it and
  // is the one file allowed to talk about generators at all.
  const bool rng_impl =
      file.is("src/util/rng.hpp") || file.is("src/util/rng.cpp");
  if (!rng_impl) {
    for (const Token& token : tokens) {
      if (token.kind == TokenKind::kIdentifier &&
          forbidden_rngs().count(token.text) > 0) {
        add_finding(file, rule, token.line,
                    "'" + token.text +
                        "' bypasses the project RNG; draw from marsit::Rng "
                        "streams derived via derive_seed() (util/rng.hpp)",
                    out);
      }
    }
  }
  // R1b: Rng constructed over an inline literal seed (src/ only).  A magic
  // seed decouples the stream from the experiment's root seed, so the run
  // stops being a pure function of (seed, round, entity).
  if (!file.under("src/")) {
    return;
  }
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_id(tokens[i], "Rng")) {
      continue;
    }
    std::size_t open = i + 1;
    if (open < tokens.size() &&
        tokens[open].kind == TokenKind::kIdentifier) {
      ++open;  // `Rng name(...)` declaration form
    }
    if (open >= tokens.size() || !is_punct(tokens[open], "(")) {
      continue;
    }
    int depth = 1;
    bool has_literal = false;
    bool has_derivation = false;
    for (std::size_t j = open + 1; j < tokens.size() && depth > 0; ++j) {
      if (is_punct(tokens[j], "(")) {
        ++depth;
      } else if (is_punct(tokens[j], ")")) {
        --depth;
      } else if (tokens[j].kind == TokenKind::kNumber) {
        has_literal = true;
      } else if (is_id(tokens[j], "derive_seed") ||
                 is_id(tokens[j], "marsit_chunk_rng") ||
                 is_id(tokens[j], "segment_fold_seed") ||
                 is_id(tokens[j], "segment_op_rng")) {
        // The sanctioned seed-derivation helpers: the root derive_seed plus
        // the chunk- and segment-stream wrappers built on it (the legacy
        // per-chunk grid and the reduce-scatter per-(segment, op) grid).
        has_derivation = true;
      }
    }
    if (has_literal && !has_derivation) {
      add_finding(file, rule, tokens[i].line,
                  "Rng seeded from an inline literal; derive the stream via "
                  "derive_seed(seed, stream) so it stays a pure function of "
                  "the root seed",
                  out);
    }
  }
}

// --- R2 determinism ----------------------------------------------------------

void check_determinism(const FileContext& file, const Rule& rule,
                       std::vector<Finding>& out) {
  // Wire payloads, digests, and timings must be pure functions of the
  // config; src/obs is the one layer allowed to look at the world (and even
  // there, only at export time).
  if (!file.under("src/") || file.under("src/obs/")) {
    return;
  }
  static const std::set<std::string, std::less<>> kClockIds = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "clock_gettime", "gettimeofday", "timespec_get",
      "localtime",     "gmtime",       "strftime",
      "getenv",
  };
  const bool wire_layer =
      file.under("src/core") || file.under("src/compress") ||
      file.under("src/collectives") || file.under("src/net") ||
      file.under("src/sim");
  static const std::set<std::string, std::less<>> kUnorderedIds = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& tokens = file.lex.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kIdentifier) {
      continue;
    }
    if (kClockIds.count(token.text) > 0) {
      add_finding(file, rule, token.line,
                  "'" + token.text +
                      "' reads ambient state; simulated time and seeded "
                      "streams are the only clocks src/ may consult "
                      "(wall-clock lives in src/obs)",
                  out);
      continue;
    }
    if ((token.text == "time" || token.text == "clock") &&
        i + 1 < tokens.size() && is_punct(tokens[i + 1], "(") &&
        (i == 0 || (!is_punct(tokens[i - 1], ".") &&
                    !is_punct(tokens[i - 1], "->")))) {
      add_finding(file, rule, token.line,
                  "'" + token.text +
                      "()' is a wall-clock read; derive timing from the "
                      "simulated cost model instead",
                  out);
      continue;
    }
    if (wire_layer && kUnorderedIds.count(token.text) > 0) {
      add_finding(file, rule, token.line,
                  "'" + token.text +
                      "' has unspecified iteration order, which leaks into "
                      "digests and wire payloads; use std::map or sorted "
                      "vectors on this layer",
                  out);
    }
  }
}

// --- R3 kernel-safety --------------------------------------------------------

/// Identifier tokens that may appear inside the type of a C-style cast.
bool is_type_word(const Token& token) {
  if (token.kind == TokenKind::kPunct) {
    return token.text == "::" || token.text == "*" || token.text == "&";
  }
  if (token.kind != TokenKind::kIdentifier) {
    return false;
  }
  static const std::set<std::string, std::less<>> kKeywords = {
      "int",   "unsigned", "signed", "long",     "short",
      "char",  "float",    "double", "bool",     "wchar_t",
      "std",   "const",    "volatile"};
  if (kKeywords.count(token.text) > 0) {
    return true;
  }
  // size_t, uint64_t, ptrdiff_t, ...
  const std::string& text = token.text;
  return text.size() > 2 && text.compare(text.size() - 2, 2, "_t") == 0;
}

/// Tokens that make the `(type)` prefix an actual cast when they follow it.
bool starts_cast_operand(const Token& token) {
  if (token.kind == TokenKind::kIdentifier ||
      token.kind == TokenKind::kNumber ||
      token.kind == TokenKind::kString) {
    return true;
  }
  return token.kind == TokenKind::kPunct &&
         (token.text == "(" || token.text == "~");
}

void check_kernel_safety(const FileContext& file, const Rule& rule,
                         std::vector<Finding>& out) {
  if (!file.under("src/compress") && !file.under("src/core") &&
      !file.under("src/parallel")) {
    return;
  }
  const auto& tokens = file.lex.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    // Raw allocation: the kernel layers hold memory in BitVector / Tensor /
    // std containers only, so bounds and lifetimes stay checkable.
    // `= delete` (deleted special members) is declaration syntax, not
    // deallocation.
    if ((is_id(token, "new") || is_id(token, "delete")) &&
        (i == 0 || !is_punct(tokens[i - 1], "="))) {
      add_finding(file, rule, token.line,
                  "raw '" + token.text +
                      "' in a kernel layer; use BitVector/Tensor/std "
                      "containers (RAII) instead",
                  out);
      continue;
    }
    // Shift of a plain int literal: `1 << k` promotes to int and overflows
    // at k >= 31 — exactly the word-parallel kernels' operating range.
    if (token.kind == TokenKind::kNumber &&
        is_plain_int_literal(token.text) && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "<<") &&
        (i == 0 || !is_punct(tokens[i - 1], "<<"))) {
      add_finding(file, rule, token.line,
                  "left shift of plain int literal '" + token.text +
                      "' overflows at bit 31; use a sized unsigned literal "
                      "(1ULL << k or std::uint64_t{1} << k)",
                  out);
      continue;
    }
    // C-style cast: `(type) operand`.  Narrowing must be spelled
    // static_cast so -Wconversion and reviewers can see it.
    if (!is_punct(token, "(")) {
      continue;
    }
    if (i > 0 && (is_id(tokens[i - 1], "sizeof") ||
                  is_id(tokens[i - 1], "alignof") ||
                  is_id(tokens[i - 1], "decltype") ||
                  is_id(tokens[i - 1], "operator"))) {
      continue;
    }
    std::size_t j = i + 1;
    bool saw_core_type = false;
    while (j < tokens.size() && is_type_word(tokens[j])) {
      if (tokens[j].kind == TokenKind::kIdentifier &&
          tokens[j].text != "std" && tokens[j].text != "const" &&
          tokens[j].text != "volatile") {
        saw_core_type = true;
      }
      ++j;
    }
    if (saw_core_type && j < tokens.size() && is_punct(tokens[j], ")") &&
        j + 1 < tokens.size() && starts_cast_operand(tokens[j + 1])) {
      add_finding(file, rule, token.line,
                  "C-style cast; spell conversions as "
                  "static_cast/reinterpret_cast so narrowing is visible",
                  out);
    }
  }
}

// --- R4 header-hygiene -------------------------------------------------------

/// std symbols the IWYU-lite check maps to their defining headers.  Small on
/// purpose: only symbols whose home header is unambiguous and whose
/// transitive availability is a known portability trap.
const std::map<std::string, std::vector<std::string>, std::less<>>&
iwyu_symbol_headers() {
  static const std::map<std::string, std::vector<std::string>, std::less<>>
      kMap = {
          {"vector", {"vector"}},
          {"string", {"string"}},
          {"string_view", {"string_view"}},
          {"array", {"array"}},
          {"span", {"span"}},
          {"optional", {"optional"}},
          {"unique_ptr", {"memory"}},
          {"shared_ptr", {"memory"}},
          {"make_unique", {"memory"}},
          {"make_shared", {"memory"}},
          {"function", {"functional"}},
          {"map", {"map"}},
          {"set", {"set"}},
          {"pair", {"utility"}},
          {"move", {"utility"}},
          {"swap", {"utility"}},
          {"atomic", {"atomic"}},
          {"memory_order", {"atomic"}},
          {"memory_order_relaxed", {"atomic"}},
          {"memory_order_acquire", {"atomic"}},
          {"memory_order_release", {"atomic"}},
          {"memory_order_acq_rel", {"atomic"}},
          {"memory_order_seq_cst", {"atomic"}},
          {"mutex", {"mutex"}},
          {"lock_guard", {"mutex"}},
          {"unique_lock", {"mutex"}},
          {"scoped_lock", {"mutex"}},
          {"once_flag", {"mutex"}},
          {"call_once", {"mutex"}},
          {"shared_mutex", {"shared_mutex"}},
          {"shared_lock", {"shared_mutex"}},
          {"condition_variable", {"condition_variable"}},
          {"condition_variable_any", {"condition_variable"}},
          {"deque", {"deque"}},
          {"thread", {"thread"}},
          {"jthread", {"thread"}},
          {"stop_token", {"stop_token"}},
          {"stop_source", {"stop_token"}},
          {"ostringstream", {"sstream"}},
          {"istringstream", {"sstream"}},
          {"ifstream", {"fstream"}},
          {"ofstream", {"fstream"}},
          {"memcpy", {"cstring"}},
          {"memcmp", {"cstring"}},
          {"to_string", {"string"}},
          {"size_t", {"cstddef"}},
          {"ptrdiff_t", {"cstddef"}},
          {"uint8_t", {"cstdint"}},
          {"uint16_t", {"cstdint"}},
          {"uint32_t", {"cstdint"}},
          {"uint64_t", {"cstdint"}},
          {"int8_t", {"cstdint"}},
          {"int16_t", {"cstdint"}},
          {"int32_t", {"cstdint"}},
          {"int64_t", {"cstdint"}},
      };
  return kMap;
}

void check_header_hygiene(const FileContext& file, const Rule& rule,
                          std::vector<Finding>& out) {
  if (!file.is_header) {
    return;
  }
  const auto& tokens = file.lex.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (is_id(tokens[i], "using") && is_id(tokens[i + 1], "namespace")) {
      add_finding(file, rule, tokens[i].line,
                  "'using namespace' in a header leaks into every includer; "
                  "qualify names instead",
                  out);
    }
  }
  std::set<std::string, std::less<>> included;
  for (const Include& include : file.lex.includes) {
    included.insert(include.header);
    if (include.angled && include.header == "iostream") {
      add_finding(file, rule, include.line,
                  "<iostream> in a header drags in static stream "
                  "initializers; include <ostream> or <iosfwd> instead",
                  out);
    }
  }
  // IWYU-lite: `std::X` used directly requires X's home header directly.
  std::set<std::string, std::less<>> reported;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!is_id(tokens[i], "std") || !is_punct(tokens[i + 1], "::") ||
        tokens[i + 2].kind != TokenKind::kIdentifier) {
      continue;
    }
    const auto entry = iwyu_symbol_headers().find(tokens[i + 2].text);
    if (entry == iwyu_symbol_headers().end()) {
      continue;
    }
    const bool satisfied =
        std::any_of(entry->second.begin(), entry->second.end(),
                    [&](const std::string& h) { return included.count(h); });
    if (!satisfied && reported.insert(entry->first).second) {
      add_finding(file, rule, tokens[i].line,
                  "std::" + entry->first + " used but <" +
                      entry->second.front() +
                      "> is not included directly (include-what-you-use)",
                  out);
    }
  }
}

// --- R5 obs-gating -----------------------------------------------------------

void check_obs_gating(const FileContext& file, const Rule& rule,
                      std::vector<Finding>& out) {
  if (!file.under("src/") || file.under("src/obs/")) {
    return;
  }
  const auto& tokens = file.lex.tokens;
  int depth = 0;
  // Depths at which an obs guard (metrics_enabled() / TraceSession::current)
  // was seen; a guard covers everything until its scope closes.  This is the
  // AST-lite approximation of "dominated by a guard": over-accepting within
  // one function, never across functions.
  std::vector<int> guard_depths;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (is_punct(token, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(token, "}")) {
      --depth;
      while (!guard_depths.empty() && guard_depths.back() > depth) {
        guard_depths.pop_back();
      }
      continue;
    }
    if (is_id(token, "metrics_enabled") ||
        (is_id(token, "TraceSession") && i + 2 < tokens.size() &&
         is_punct(tokens[i + 1], "::") && is_id(tokens[i + 2], "current"))) {
      guard_depths.push_back(depth);
      continue;
    }
    const bool is_metric =
        is_id(token, "obs") && i + 2 < tokens.size() &&
        is_punct(tokens[i + 1], "::") &&
        (is_id(tokens[i + 2], "Counter") || is_id(tokens[i + 2], "Gauge") ||
         is_id(tokens[i + 2], "Histogram"));
    if (is_metric && guard_depths.empty()) {
      add_finding(file, rule, token.line,
                  "obs::" + tokens[i + 2].text +
                      " touched outside a metrics_enabled() / "
                      "TraceSession::current() guard; disabled observability "
                      "must cost hot loops nothing",
                  out);
    }
  }
}

// --- R6 concurrency-discipline -----------------------------------------------

/// RAII guard types whose named instances may legitimately call
/// .lock()/.unlock() (hand-over-hand around long stage bodies).
const std::set<std::string, std::less<>>& guard_types() {
  static const std::set<std::string, std::less<>> kSet = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock", "MutexLock"};
  return kSet;
}

/// Names of variables declared with a guard type in this file: `MutexLock
/// lock(mu)` or `std::unique_lock<std::mutex> lock(mu)`.
std::set<std::string, std::less<>> collect_guard_names(
    const std::vector<Token>& tokens) {
  std::set<std::string, std::less<>> guards;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        guard_types().count(tokens[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < tokens.size() && is_punct(tokens[j], "<")) {
      int depth = 0;
      for (; j < tokens.size(); ++j) {
        if (is_punct(tokens[j], "<")) {
          ++depth;
        } else if (is_punct(tokens[j], ">")) {
          --depth;
        } else if (is_punct(tokens[j], ">>")) {
          depth -= 2;
        }
        if (depth <= 0) {
          ++j;
          break;
        }
      }
    }
    if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
      guards.insert(tokens[j].text);
    }
  }
  return guards;
}

/// True when the tokens starting at `begin` (just past `static`) read like a
/// declaration of mutable data: stop at ';' or '=' having seen no
/// synchronization-safe type word.  A '(' before either means a function
/// declaration (or a constructor call, which the rule deliberately lets
/// pass — initialization syntax is rare enough to review by hand).
bool is_mutable_static_decl(const std::vector<Token>& tokens,
                            std::size_t begin) {
  static const std::set<std::string, std::less<>> kExempt = {
      "const",     "constexpr", "constinit",
      "thread_local", "atomic", "mutex",
      "Mutex",     "CondVar",   "once_flag",
      "condition_variable", "condition_variable_any", "shared_mutex"};
  constexpr std::size_t kScanLimit = 24;
  for (std::size_t j = begin, scanned = 0;
       j < tokens.size() && scanned < kScanLimit; ++j, ++scanned) {
    const Token& token = tokens[j];
    if (is_punct(token, ";") || is_punct(token, "=") ||
        is_punct(token, "{")) {
      return true;  // data declaration ended with nothing exempting it
    }
    if (is_punct(token, "(")) {
      return false;  // function declaration / definition
    }
    if (token.kind == TokenKind::kIdentifier && kExempt.count(token.text)) {
      return false;
    }
  }
  return false;  // ran off the scan window: give the benefit of the doubt
}

void check_concurrency(const FileContext& file, const Rule& rule,
                       std::vector<Finding>& out) {
  if (!file.under("src/")) {
    return;
  }
  // util/thread_safety.hpp *implements* the lock vocabulary (Mutex wraps the
  // raw std::mutex), so it is the one file allowed raw lock()/unlock().
  const bool annotation_home = file.is("src/util/thread_safety.hpp");
  const bool threaded_layer =
      file.under("src/net") || file.under("src/parallel") ||
      file.under("src/obs") || file.under("src/dist");
  const auto& tokens = file.lex.tokens;
  const std::set<std::string, std::less<>> guards =
      collect_guard_names(tokens);

  // R6b bookkeeping: first std::thread declaration, and whether the file has
  // the machinery (a join, or at least a declared destructor for headers
  // whose .cpp owns the join) to end those threads.
  int thread_decl_line = 0;
  bool has_join = false;
  bool has_dtor = false;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (is_id(token, "join")) {
      has_join = true;
    } else if (is_punct(token, "~")) {
      has_dtor = true;
    }

    // R6a: .lock()/.unlock() on anything that is not a named RAII guard.
    if (!annotation_home &&
        (is_punct(token, ".") || is_punct(token, "->")) &&
        i + 2 < tokens.size() &&
        (is_id(tokens[i + 1], "lock") || is_id(tokens[i + 1], "unlock")) &&
        is_punct(tokens[i + 2], "(")) {
      const std::string receiver =
          (i > 0 && tokens[i - 1].kind == TokenKind::kIdentifier)
              ? tokens[i - 1].text
              : std::string();
      if (guards.count(receiver) == 0) {
        add_finding(file, rule, tokens[i + 1].line,
                    "raw ." + tokens[i + 1].text +
                        "() on a mutex; hold locks through RAII guards "
                        "(MutexLock / std::lock_guard) so no exit path can "
                        "leak the capability",
                    out);
      }
    }

    // R6c: detach() abandons a running thread past any join/destructor.
    if (is_id(token, "detach") && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "(")) {
      add_finding(file, rule, token.line,
                  "detach() leaves a thread running past every join point; "
                  "src/ threads must be join()ed on all destructor paths",
                  out);
    }

    // R6b: record `std::thread name;` / `std::vector<std::thread> names_;`
    // declarations (jthread self-joins and is exempt by spelling).
    if (is_id(token, "thread")) {
      std::size_t j = i + 1;
      while (j < tokens.size() &&
             (is_punct(tokens[j], ">") || is_punct(tokens[j], ">>"))) {
        ++j;
      }
      if (j + 1 < tokens.size() &&
          tokens[j].kind == TokenKind::kIdentifier &&
          (is_punct(tokens[j + 1], ";") || is_punct(tokens[j + 1], "{") ||
           is_punct(tokens[j + 1], "(")) &&
          thread_decl_line == 0) {
        thread_decl_line = token.line;
      }
    }

    // R6e: a condition-variable wait with no predicate argument wakes
    // spuriously; count top-level commas inside .wait(...).
    if ((is_punct(token, ".") || is_punct(token, "->")) &&
        i + 2 < tokens.size() && is_id(tokens[i + 1], "wait") &&
        is_punct(tokens[i + 2], "(")) {
      int depth = 1;
      int commas = 0;
      for (std::size_t j = i + 3; j < tokens.size() && depth > 0; ++j) {
        if (tokens[j].kind != TokenKind::kPunct) {
          continue;
        }
        const std::string& p = tokens[j].text;
        if (p == "(" || p == "[" || p == "{") {
          ++depth;
        } else if (p == ")" || p == "]" || p == "}") {
          --depth;
        } else if (p == "," && depth == 1) {
          ++commas;
        }
      }
      if (commas == 0) {
        add_finding(file, rule, tokens[i + 1].line,
                    "wait() without a predicate returns on spurious wakeups; "
                    "pass the condition as a predicate so the wait re-checks "
                    "it under the lock",
                    out);
      }
    }

    // R6d: mutable static state in the threaded layers is shared across
    // every thread that touches the code; require const/atomic/guarded
    // types or a reasoned suppression.
    if (threaded_layer && is_id(token, "static") &&
        is_mutable_static_decl(tokens, i + 1)) {
      add_finding(file, rule, token.line,
                  "mutable 'static' state in a threaded layer; make it "
                  "const/atomic/Mutex-protected or suppress with the reason "
                  "it is safe",
                  out);
    }
  }

  if (thread_decl_line != 0 && !has_join &&
      !(file.is_header && has_dtor)) {
    add_finding(file, rule, thread_decl_line,
                "std::thread declared but never join()ed in this file; every "
                "destructor path must join (headers may defer to a declared "
                "destructor)",
                out);
  }
}

// --- R7 layering -------------------------------------------------------------

void check_layering(const FileContext& file, const Rule& rule,
                    std::vector<Finding>& out) {
  if (!file.under("src/")) {
    return;
  }
  const LayerGraph& graph = active_layer_graph();
  if (!graph.ok()) {
    // A broken graph must fail loudly, not silently allow every edge.
    add_finding(file, rule, 0,
                "layer graph unavailable (" + graph.errors.front() +
                    "); fix tools/marsit_lint/layers.txt or pass --layers",
                out);
    return;
  }
  const std::size_t slash = file.path.find('/', 4);  // past "src/"
  if (slash == std::string::npos) {
    return;  // file directly under src/ — not part of a layer
  }
  const std::string layer = file.path.substr(4, slash - 4);
  const auto self = graph.deps.find(layer);
  if (self == graph.deps.end()) {
    add_finding(file, rule, 0,
                "layer '" + layer +
                    "' is not declared in tools/marsit_lint/layers.txt; add "
                    "it with its allowed dependencies",
                out);
    return;
  }
  for (const Include& include : file.lex.includes) {
    if (include.angled) {
      continue;
    }
    const std::size_t sep = include.header.find('/');
    if (sep == std::string::npos) {
      continue;
    }
    const std::string target = include.header.substr(0, sep);
    if (target == layer || graph.deps.count(target) == 0) {
      continue;  // intra-layer, or not a layer-prefixed include
    }
    if (self->second.count(target) == 0) {
      add_finding(file, rule, include.line,
                  "include \"" + include.header +
                      "\" is a layering back-edge: '" + layer +
                      "' may not depend on '" + target +
                      "' (tools/marsit_lint/layers.txt)",
                  out);
    }
  }
}

// --- registry ----------------------------------------------------------------

template <void (*Check)(const FileContext&, const Rule&,
                        std::vector<Finding>&),
          int Index>
void dispatch(const FileContext& file, std::vector<Finding>& out) {
  Check(file, all_rules()[Index], out);
}

}  // namespace

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = {
      {"rng-discipline", "R1",
       "stochastic draws come only from derive_seed()-derived marsit::Rng "
       "streams; no std RNGs, no inline literal seeds",
       dispatch<check_rng_discipline, 0>},
      {"determinism", "R2",
       "no wall-clock/env reads in src/ outside obs; no unordered-container "
       "iteration on digest/wire layers",
       dispatch<check_determinism, 1>},
      {"kernel-safety", "R3",
       "src/compress + src/core: no raw new/delete, no C-style casts, no "
       "shifts of plain int literals",
       dispatch<check_kernel_safety, 2>},
      {"header-hygiene", "R4",
       "headers: no `using namespace`, no <iostream>, direct includes for "
       "the std symbols they use",
       dispatch<check_header_hygiene, 3>},
      {"obs-gating", "R5",
       "obs metrics outside src/obs sit behind metrics_enabled() / "
       "TraceSession::current() guards",
       dispatch<check_obs_gating, 4>},
      {"concurrency-discipline", "R6",
       "src/: locks held through RAII guards only, threads joined on every "
       "destructor path, no detach(), no mutable statics in threaded "
       "layers, condition waits take predicates",
       dispatch<check_concurrency, 5>},
      {"layering", "R7",
       "src/ includes respect the layer DAG committed in "
       "tools/marsit_lint/layers.txt; back-edges are findings",
       dispatch<check_layering, 6>},
  };
  return kRules;
}

bool is_known_rule(std::string_view id) {
  const auto& rules = all_rules();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const Rule& rule) { return id == rule.id; });
}

}  // namespace marsit_lint
