// Layering DAG behind marsit_lint's R7 rule.
//
// The committed tools/marsit_lint/layers.txt names every src/ layer and the
// layers it may include directly (`layer: dep dep ...`).  R7 reads the
// active graph and reports any `#include "other_layer/..."` whose edge the
// graph does not allow — a back-edge in the architecture DAG.
//
// The graph is process-global state so rule checks (which only see one file
// at a time) can consult it: the default loads the committed file via the
// MARSIT_LINT_LAYERS_FILE compile definition, the CLI's --layers flag and
// the fixture tests override it through set_active_layer_graph().
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace marsit_lint {

struct LayerGraph {
  /// layer -> layers it may include directly (never contains the layer
  /// itself; intra-layer includes are always allowed).
  std::map<std::string, std::set<std::string, std::less<>>, std::less<>> deps;
  /// Parse/validation problems, in file order: malformed lines, deps naming
  /// undeclared layers, self-dependencies, cycles.  R7 refuses to run on a
  /// graph with errors (and says so), so a broken layers.txt fails loudly
  /// instead of silently allowing everything.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

/// Parses `layer: dep dep ...` lines.  '#' starts a comment; blank lines are
/// skipped.  Validation (unknown deps, duplicates, cycles) lands in
/// `errors`; the structural part of `deps` is filled either way.
LayerGraph parse_layer_graph(std::string_view content);

/// Reads and parses `path`; an unreadable file is one error.
LayerGraph load_layer_graph(const std::string& path);

/// The graph R7 consults.  Defaults to the committed layers.txt (baked in
/// as MARSIT_LINT_LAYERS_FILE at build time).
const LayerGraph& active_layer_graph();

/// Replaces the active graph (CLI --layers, fixture tests).
void set_active_layer_graph(LayerGraph graph);

}  // namespace marsit_lint
