#include "marsit_lint/layers.hpp"

#include <fstream>
#include <sstream>
#include <utility>

namespace marsit_lint {

namespace {

std::string strip(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\r')) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

/// Depth-first cycle search over the declared layers.  Reports one error per
/// back-edge found, naming both endpoints.
void find_cycles(const LayerGraph& graph, std::vector<std::string>& errors) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color, std::less<>> color;
  for (const auto& [layer, deps] : graph.deps) {
    color[layer] = Color::kWhite;
  }
  // Iterative DFS: stack of (layer, next-dep iterator position).
  for (const auto& [root, root_deps] : graph.deps) {
    if (color[root] != Color::kWhite) {
      continue;
    }
    std::vector<std::pair<std::string, std::set<std::string,
                                                std::less<>>::const_iterator>>
        stack;
    color[root] = Color::kGray;
    stack.emplace_back(root, graph.deps.at(root).begin());
    while (!stack.empty()) {
      auto& [layer, it] = stack.back();
      const auto& deps = graph.deps.at(layer);
      if (it == deps.end()) {
        color[layer] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const std::string dep = *it++;
      const auto dep_color = color.find(dep);
      if (dep_color == color.end()) {
        continue;  // undeclared dep; reported separately
      }
      if (dep_color->second == Color::kGray) {
        errors.push_back("cycle: layer '" + dep + "' is reachable from '" +
                         layer + "' which depends on it");
        continue;
      }
      if (dep_color->second == Color::kWhite) {
        dep_color->second = Color::kGray;
        stack.emplace_back(dep, graph.deps.at(dep).begin());
      }
    }
  }
}

}  // namespace

LayerGraph parse_layer_graph(std::string_view content) {
  LayerGraph graph;
  int line_number = 0;
  std::istringstream in{std::string(content)};
  for (std::string raw; std::getline(in, raw);) {
    ++line_number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    const std::string line = strip(raw);
    if (line.empty()) {
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      graph.errors.push_back("line " + std::to_string(line_number) +
                             ": expected 'layer: dep dep ...', got '" + line +
                             "'");
      continue;
    }
    const std::string layer = strip(line.substr(0, colon));
    if (layer.empty() || layer.find(' ') != std::string::npos) {
      graph.errors.push_back("line " + std::to_string(line_number) +
                             ": bad layer name '" + layer + "'");
      continue;
    }
    if (graph.deps.count(layer) > 0) {
      graph.errors.push_back("line " + std::to_string(line_number) +
                             ": layer '" + layer + "' declared twice");
      continue;
    }
    auto& deps = graph.deps[layer];
    std::istringstream dep_stream(line.substr(colon + 1));
    for (std::string dep; dep_stream >> dep;) {
      if (dep == layer) {
        graph.errors.push_back("line " + std::to_string(line_number) +
                               ": layer '" + layer + "' depends on itself");
        continue;
      }
      deps.insert(dep);
    }
  }
  // Every dep must itself be a declared layer, so typos cannot silently
  // authorize an edge.
  for (const auto& [layer, deps] : graph.deps) {
    for (const std::string& dep : deps) {
      if (graph.deps.count(dep) == 0) {
        graph.errors.push_back("layer '" + layer + "' depends on '" + dep +
                               "', which is not declared");
      }
    }
  }
  find_cycles(graph, graph.errors);
  return graph;
}

LayerGraph load_layer_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LayerGraph graph;
    graph.errors.push_back("cannot read layer file '" + path + "'");
    return graph;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_layer_graph(buffer.str());
}

namespace {

LayerGraph& mutable_active_graph() {
  static LayerGraph graph =
#ifdef MARSIT_LINT_LAYERS_FILE
      load_layer_graph(MARSIT_LINT_LAYERS_FILE);
#else
      [] {
        LayerGraph g;
        g.errors.push_back(
            "no layers file baked in; pass --layers <path> or build with "
            "MARSIT_LINT_LAYERS_FILE");
        return g;
      }();
#endif
  return graph;
}

}  // namespace

const LayerGraph& active_layer_graph() { return mutable_active_graph(); }

void set_active_layer_graph(LayerGraph graph) {
  mutable_active_graph() = std::move(graph);
}

}  // namespace marsit_lint
