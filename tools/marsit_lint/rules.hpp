// marsit_lint's rule registry.
//
// Each rule encodes one project invariant a generic compiler or clang-tidy
// cannot know (see DESIGN.md §10 for the full table):
//
//   R1 rng-discipline   Stochastic code draws only from marsit::Rng streams
//                       derived via derive_seed(seed, stream).  Standard
//                       library RNGs and ad-hoc literal seeds silently break
//                       the golden-digest determinism tests and the
//                       unbiasedness of the ⊙ operator (paper Eq. 2).
//   R2 determinism      No wall-clock reads, environment reads, or
//                       unordered-container iteration on paths that feed
//                       digests or wire payloads.
//   R3 kernel-safety    Bit-plane kernels and ⊙ folds: no raw new/delete,
//                       no C-style casts, no shifts of plain int literals.
//   R4 header-hygiene   Headers: no `using namespace`, no <iostream>, and
//                       direct includes for the std symbols they use.
//   R5 obs-gating       Observability calls outside src/obs must sit behind
//                       obs::metrics_enabled() / TraceSession::current().
//   R6 concurrency-     Lock discipline in src/: no raw .lock()/.unlock()
//      discipline       outside RAII guards, std::thread members joined on
//                       every destructor path, no detach(), no mutable
//                       static state in threaded layers, condition-variable
//                       waits always take a predicate.
//   R7 layering         The include graph respects the committed layer DAG
//                       (tools/marsit_lint/layers.txt); back-edges are
//                       reported at the offending #include line.
//
// Rules fire as Findings; a finding is suppressed by a same-line or
// preceding-line comment `// marsit-lint: allow(<rule>): <reason>` whose
// reason is mandatory (an empty reason is itself a finding).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "marsit_lint/lexer.hpp"

namespace marsit_lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One file, lexed and classified.  `path` is repo-relative with forward
/// slashes ("src/core/one_bit.cpp"); classification is purely path-based so
/// the linter needs no build graph.
struct FileContext {
  std::string path;
  bool is_header = false;
  LexResult lex;

  bool under(std::string_view prefix) const {
    return path.size() >= prefix.size() &&
           path.compare(0, prefix.size(), prefix) == 0;
  }
  bool is(std::string_view exact) const { return path == exact; }
};

struct Rule {
  const char* id;       // suppression key, e.g. "rng-discipline"
  const char* label;    // short tag for messages, e.g. "R1"
  const char* summary;  // one-line description for --list-rules
  void (*check)(const FileContext&, std::vector<Finding>&);
};

/// The registry, in R1..R5 order.
const std::vector<Rule>& all_rules();

/// True iff `id` names a registered rule.
bool is_known_rule(std::string_view id);

}  // namespace marsit_lint
