// marsit_lint CLI.
//
//   marsit_lint --check src tests bench examples   # lint, exit 1 on findings
//   marsit_lint --check --format=json src          # machine-readable output
//   marsit_lint --list-rules                       # print the rule registry
//
// Findings print as "path:line: [rule] message" (or as a JSON array of
// {path, line, rule, message} objects with --format=json — the CI lint job
// consumes that to render GitHub annotations); suppress a deliberate
// violation with `// marsit-lint: allow(<rule>): <reason>` on the same line
// or the line above (the reason is mandatory).  --layers overrides the
// committed layering DAG the R7 rule checks against.
#include <cstdio>
#include <string>
#include <vector>

#include "marsit_lint/layers.hpp"
#include "marsit_lint/linter.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check] [--list-rules] [--format=human|json]\n"
               "          [--layers <file>] <files-or-dirs>...\n"
               "  --check           lint the given paths (default command)\n"
               "  --list-rules      describe the rule registry and exit\n"
               "  --format=json     emit findings as a JSON array\n"
               "  --layers <file>   layering DAG for R7 (default: the\n"
               "                    committed tools/marsit_lint/layers.txt)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool list_rules = false;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--check") {
      // default behavior; accepted for explicitness
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=human") {
      json = false;
    } else if (arg == "--layers") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--layers needs a file argument\n");
        return usage(argv[0]);
      }
      marsit_lint::LayerGraph graph =
          marsit_lint::load_layer_graph(argv[++i]);
      if (!graph.ok()) {
        for (const std::string& error : graph.errors) {
          std::fprintf(stderr, "marsit_lint: --layers: %s\n", error.c_str());
        }
        return 2;
      }
      marsit_lint::set_active_layer_graph(std::move(graph));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const marsit_lint::Rule& rule : marsit_lint::all_rules()) {
      std::printf("%-24s %s  %s\n", rule.id, rule.label, rule.summary);
    }
    return 0;
  }
  if (paths.empty()) {
    return usage(argv[0]);
  }

  const std::vector<marsit_lint::Finding> findings =
      marsit_lint::lint_paths(paths);
  if (json) {
    std::printf("%s", marsit_lint::format_findings_json(findings).c_str());
  } else {
    for (const marsit_lint::Finding& finding : findings) {
      std::printf("%s\n", marsit_lint::format_finding(finding).c_str());
    }
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "marsit_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
