#include "marsit_lint/lexer.hpp"

#include <cctype>

namespace marsit_lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Cursor over the source with line tracking.
class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  bool done() const { return pos_ >= source_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }
  int line() const { return line_; }
  std::size_t pos() const { return pos_; }
  std::string_view slice(std::size_t from) const {
    return source_.substr(from, pos_ - from);
  }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Consumes a quoted literal whose opening quote was already consumed.
/// Handles backslash escapes; stops at the closing quote or end of line
/// (a lexer-level recovery for malformed code).
void skip_quoted(Cursor& cursor, char quote) {
  while (!cursor.done()) {
    const char c = cursor.peek();
    if (c == '\\') {
      cursor.advance();
      if (!cursor.done()) {
        cursor.advance();
      }
      continue;
    }
    if (c == '\n') {
      return;  // unterminated on this line; do not swallow the file
    }
    cursor.advance();
    if (c == quote) {
      return;
    }
  }
}

/// Consumes a raw string literal; the cursor sits just past `R"`.
void skip_raw_string(Cursor& cursor) {
  std::string delimiter;
  while (!cursor.done() && cursor.peek() != '(') {
    delimiter.push_back(cursor.advance());
  }
  if (cursor.done()) {
    return;
  }
  cursor.advance();  // '('
  const std::string closer = ")" + delimiter + "\"";
  std::string window;
  while (!cursor.done()) {
    window.push_back(cursor.advance());
    if (window.size() > closer.size()) {
      window.erase(window.begin());
    }
    if (window == closer) {
      return;
    }
  }
}

/// True for a plausible rule-id spelling: lowercase words joined by dashes.
/// Comments that merely *document* the suppression syntax (allow(<rule>))
/// fail this and are ignored entirely; ignoring is safe because a typo'd
/// suppression leaves its underlying finding visible.
bool looks_like_rule_id(std::string_view rule) {
  if (rule.empty()) {
    return false;
  }
  for (const char c : rule) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-')) {
      return false;
    }
  }
  return true;
}

/// Parses one `marsit-lint: allow(<rule>): <reason>` comment body; returns
/// whether the marker was present (malformed bodies still return true, with
/// an empty rule or reason the linter reports on).
bool parse_suppression(std::string_view comment, int line, bool standalone,
                       std::vector<Suppression>& out) {
  const std::string_view marker = "marsit-lint:";
  const std::size_t at = comment.find(marker);
  if (at == std::string_view::npos) {
    return false;
  }
  Suppression suppression;
  suppression.line = line;
  suppression.standalone = standalone;
  std::string_view rest = comment.substr(at + marker.size());
  const std::size_t allow = rest.find("allow(");
  if (allow != std::string_view::npos) {
    rest = rest.substr(allow + 6);
    const std::size_t close = rest.find(')');
    if (close != std::string_view::npos) {
      suppression.rule = std::string(rest.substr(0, close));
      if (!looks_like_rule_id(suppression.rule)) {
        return true;  // documentation about the syntax, not a suppression
      }
      rest = rest.substr(close + 1);
      // Reason: everything after the closing paren, optionally led by ':'.
      std::size_t begin = 0;
      while (begin < rest.size() &&
             (rest[begin] == ':' || rest[begin] == ' ' ||
              rest[begin] == '\t')) {
        ++begin;
      }
      std::size_t end = rest.size();
      while (end > begin && (rest[end - 1] == ' ' || rest[end - 1] == '\t' ||
                             rest[end - 1] == '\r')) {
        --end;
      }
      suppression.reason = std::string(rest.substr(begin, end - begin));
    }
  }
  out.push_back(std::move(suppression));
  return true;
}

/// Extracts an #include target from a preprocessor line.
void parse_include(std::string_view text, int line,
                   std::vector<Include>& out) {
  std::size_t i = 0;
  auto skip_space = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) {
      ++i;
    }
  };
  skip_space();
  if (i >= text.size() || text[i] != '#') {
    return;
  }
  ++i;
  skip_space();
  const std::string_view directive = "include";
  if (text.substr(i, directive.size()) != directive) {
    return;
  }
  i += directive.size();
  skip_space();
  if (i >= text.size()) {
    return;
  }
  const char open = text[i];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') {
    return;
  }
  ++i;
  const std::size_t end = text.find(close, i);
  if (end == std::string_view::npos) {
    return;
  }
  Include include;
  include.header = std::string(text.substr(i, end - i));
  include.angled = open == '<';
  include.line = line;
  out.push_back(std::move(include));
}

}  // namespace

LexResult lex(std::string_view source) {
  LexResult result;
  Cursor cursor(source);
  // Tracks whether any token/preprocessor content was seen on the current
  // line, so a `//` comment can be classified trailing vs standalone.
  int last_code_line = 0;

  while (!cursor.done()) {
    const char c = cursor.peek();

    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
        c == '\v') {
      cursor.advance();
      continue;
    }

    // Preprocessor directive: record includes, then skip to the (logical)
    // end of line, honoring backslash continuations.
    if (c == '#') {
      const int line = cursor.line();
      const std::size_t start = cursor.pos();
      while (!cursor.done()) {
        if (cursor.peek() == '\\' && cursor.peek(1) == '\n') {
          cursor.advance();
          cursor.advance();
          continue;
        }
        if (cursor.peek() == '\n') {
          break;
        }
        // Comments may open inside a directive line; a block comment can
        // hide the newline, so handle it here rather than mis-skipping.
        if (cursor.peek() == '/' && cursor.peek(1) == '*') {
          break;
        }
        if (cursor.peek() == '/' && cursor.peek(1) == '/') {
          break;
        }
        cursor.advance();
      }
      parse_include(cursor.slice(start), line, result.includes);
      last_code_line = line;
      continue;
    }

    // Comments.
    if (c == '/' && cursor.peek(1) == '/') {
      const int line = cursor.line();
      const std::size_t start = cursor.pos();
      while (!cursor.done() && cursor.peek() != '\n') {
        cursor.advance();
      }
      parse_suppression(cursor.slice(start), line,
                        /*standalone=*/last_code_line != line,
                        result.suppressions);
      continue;
    }
    if (c == '/' && cursor.peek(1) == '*') {
      cursor.advance();
      cursor.advance();
      while (!cursor.done()) {
        if (cursor.peek() == '*' && cursor.peek(1) == '/') {
          cursor.advance();
          cursor.advance();
          break;
        }
        cursor.advance();
      }
      continue;
    }

    const int line = cursor.line();
    last_code_line = line;

    // String / char literals (including raw strings and common prefixes).
    if (c == '"') {
      const std::size_t start = cursor.pos();
      cursor.advance();
      skip_quoted(cursor, '"');
      result.tokens.push_back(
          {TokenKind::kString, std::string(cursor.slice(start)), line});
      continue;
    }
    if (c == '\'') {
      const std::size_t start = cursor.pos();
      cursor.advance();
      skip_quoted(cursor, '\'');
      result.tokens.push_back(
          {TokenKind::kChar, std::string(cursor.slice(start)), line});
      continue;
    }

    if (is_ident_start(c)) {
      const std::size_t start = cursor.pos();
      while (!cursor.done() && is_ident_char(cursor.peek())) {
        cursor.advance();
      }
      std::string text(cursor.slice(start));
      // Literal prefixes: R"...", u8"...", L'x', ...
      if (!cursor.done() && (cursor.peek() == '"' || cursor.peek() == '\'')) {
        const bool raw = !text.empty() && text.back() == 'R';
        const char quote = cursor.peek();
        if (raw && quote == '"') {
          cursor.advance();
          skip_raw_string(cursor);
          result.tokens.push_back({TokenKind::kString, "R\"...\"", line});
          continue;
        }
        if (text == "u8" || text == "u" || text == "U" || text == "L") {
          cursor.advance();
          skip_quoted(cursor, quote);
          result.tokens.push_back({quote == '"' ? TokenKind::kString
                                                : TokenKind::kChar,
                                   std::string(cursor.slice(start)), line});
          continue;
        }
      }
      result.tokens.push_back({TokenKind::kIdentifier, std::move(text), line});
      continue;
    }

    if (is_digit(c) || (c == '.' && is_digit(cursor.peek(1)))) {
      const std::size_t start = cursor.pos();
      // pp-number: digits, identifier chars, '.', and exponent signs.
      while (!cursor.done()) {
        const char n = cursor.peek();
        if (is_ident_char(n) || n == '.') {
          cursor.advance();
          continue;
        }
        if ((n == '+' || n == '-') && cursor.pos() > start) {
          const char prev = cursor.slice(start).back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            cursor.advance();
            continue;
          }
        }
        break;
      }
      result.tokens.push_back(
          {TokenKind::kNumber, std::string(cursor.slice(start)), line});
      continue;
    }

    // Punctuation; keep the few multi-character operators rules care about.
    const std::size_t start = cursor.pos();
    cursor.advance();
    const char second = cursor.peek();
    if ((c == ':' && second == ':') || (c == '<' && second == '<') ||
        (c == '>' && second == '>') || (c == '-' && second == '>')) {
      cursor.advance();
    }
    result.tokens.push_back(
        {TokenKind::kPunct, std::string(cursor.slice(start)), line});
  }

  return result;
}

}  // namespace marsit_lint
