// Token scanner behind marsit_lint (see linter.hpp for the tool overview).
//
// This is deliberately a *lexer*, not a parser: every project invariant the
// linter enforces (RNG discipline, determinism hygiene, kernel safety, header
// hygiene, obs gating) is recognizable from the token stream plus brace
// depth, and a lexer never goes out of sync with the C++ grammar the way a
// hand-rolled parser would.  Comments and string/char literals are consumed
// (so fixture code embedded in test strings can never trigger rules), but
// two comment-adjacent artifacts are surfaced because rules need them:
//
//   * `#include` directives, for the include-what-you-use-lite rule;
//   * `// marsit-lint: allow(<rule>): <reason>` suppression comments, which
//     disable one rule on their own line (trailing comment) or on the next
//     code line (standalone comment line).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace marsit_lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords, undistinguished
  kNumber,      // integer / floating literals, suffix included in text
  kPunct,       // operators & punctuation; "::", "<<", ">>", "->" kept whole
  kString,      // string literal (text is the raw spelling, quotes included)
  kChar,        // character literal
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;
};

struct Include {
  std::string header;  // spelling between the delimiters
  bool angled = false;
  int line = 0;
};

struct Suppression {
  std::string rule;    // rule id inside allow(...)
  std::string reason;  // text after the closing paren; empty = malformed
  int line = 0;        // line of the comment itself
  /// A comment alone on its line suppresses the next *code* line (so the
  /// marker may sit anywhere in a multi-line comment block); a trailing
  /// comment suppresses its own line.
  bool standalone = false;
};

struct LexResult {
  std::vector<Token> tokens;  // preprocessor lines excluded
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;
};

/// Tokenizes one translation unit.  Never fails: unrecognized bytes become
/// single-character punctuation tokens, unterminated literals run to EOF.
LexResult lex(std::string_view source);

}  // namespace marsit_lint
