// marsit_tune — CLI for exploring (task, model, method, hyperparameters)
// combinations without recompiling.  Used to calibrate the bench configs;
// kept in-tree because it is the fastest way for a user to sanity-check a
// new configuration.
//
//   ./build/tools/marsit_tune --task images --model alexnet --method psgd
//       --eta_l 0.05 --rounds 200 --workers 4 --batch 16 --opt momentum
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/sync_strategy.hpp"
#include "data/synthetic_digits.hpp"
#include "data/synthetic_images.hpp"
#include "data/synthetic_sentiment.hpp"
#include "nn/models.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace marsit;

namespace {

const char* get_arg(int argc, char** argv, const char* key,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) {
      return argv[i + 1];
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarning);

  const std::string task = get_arg(argc, argv, "--task", "digits");
  const std::string model = get_arg(argc, argv, "--model", "mlp");
  const std::string method = get_arg(argc, argv, "--method", "psgd");
  const std::string opt = get_arg(argc, argv, "--opt", "sgd");
  const float eta_l = std::atof(get_arg(argc, argv, "--eta_l", "0.05"));
  const float eta_s = std::atof(get_arg(argc, argv, "--eta_s", "0.002"));
  const std::size_t rounds = std::atol(get_arg(argc, argv, "--rounds", "200"));
  const std::size_t workers = std::atol(get_arg(argc, argv, "--workers", "4"));
  const std::size_t batch = std::atol(get_arg(argc, argv, "--batch", "16"));
  const std::size_t k = std::atol(get_arg(argc, argv, "--k", "0"));
  const std::size_t local = std::atol(get_arg(argc, argv, "--local", "1"));
  const std::string fabric = get_arg(argc, argv, "--fabric", "ring");
  const std::uint64_t seed = std::atol(get_arg(argc, argv, "--seed", "7"));
  const float clip = std::atof(get_arg(argc, argv, "--clip", "0"));
  const bool nocomp = std::atoi(get_arg(argc, argv, "--nocomp", "0")) != 0;
  const float fpclip = std::atof(get_arg(argc, argv, "--fpclip", "0"));

  std::unique_ptr<Dataset> dataset;
  ImageDims dims{};
  if (task == "digits") {
    auto d = std::make_unique<SyntheticDigits>();
    dims = d->image_dims();
    dataset = std::move(d);
  } else if (task == "images") {
    auto d = std::make_unique<SyntheticImages>();
    dims = d->image_dims();
    dataset = std::move(d);
  } else if (task == "images_l") {
    auto d = std::make_unique<SyntheticImages>(
        SyntheticImagesConfig::imagenet_like());
    dims = d->image_dims();
    dataset = std::move(d);
  } else if (task == "sentiment") {
    dataset = std::make_unique<SyntheticSentiment>();
  } else {
    std::cerr << "unknown --task " << task << "\n";
    return 1;
  }

  std::function<Sequential()> factory;
  if (model == "mlp") {
    factory = [&] {
      return make_mlp(dataset->sample_size(), {48}, dataset->num_classes());
    };
  } else if (model == "mlp_small") {
    factory = [&] {
      return make_mlp(dataset->sample_size(), {12}, dataset->num_classes());
    };
  } else if (model == "alexnet") {
    factory = [&] { return make_alexnet_mini(dims, dataset->num_classes()); };
  } else if (model == "resnet20") {
    factory = [&] { return make_resnet20_mini(dims, dataset->num_classes()); };
  } else if (model == "resnet18") {
    factory = [&] { return make_resnet18_mini(dims, dataset->num_classes()); };
  } else if (model == "resnet50") {
    factory = [&] { return make_resnet50_mini(dims, dataset->num_classes()); };
  } else if (model == "text") {
    auto* s = dynamic_cast<SyntheticSentiment*>(dataset.get());
    if (s == nullptr) {
      std::cerr << "--model text requires --task sentiment\n";
      return 1;
    }
    factory = [s] {
      return make_text_classifier(s->vocab_size(), s->seq_len(), 16, 2);
    };
  } else {
    std::cerr << "unknown --model " << model << "\n";
    return 1;
  }

  SyncMethod sync_method;
  MarParadigm paradigm = MarParadigm::kRing;
  std::size_t torus_rows = 0, torus_cols = 0;
  if (fabric == "tree") {
    paradigm = MarParadigm::kTree;
  } else if (fabric == "torus") {
    paradigm = MarParadigm::kTorus2d;
    torus_rows = 2;
    torus_cols = workers / 2;
    if (torus_rows * torus_cols != workers || torus_cols < 2) {
      std::cerr << "--fabric torus needs an even worker count >= 4\n";
      return 1;
    }
  } else if (fabric != "ring") {
    std::cerr << "unknown --fabric " << fabric << "\n";
    return 1;
  }
  if (method == "psgd") sync_method = SyncMethod::kPsgd;
  else if (method == "signsgd") sync_method = SyncMethod::kSignSgdMv;
  else if (method == "ef") sync_method = SyncMethod::kEfSignSgd;
  else if (method == "ssdm") sync_method = SyncMethod::kSsdm;
  else if (method == "cascading") sync_method = SyncMethod::kCascading;
  else if (method == "marsit") sync_method = SyncMethod::kMarsit;
  else {
    std::cerr << "unknown --method " << method << "\n";
    return 1;
  }

  SyncConfig sync_config;
  sync_config.num_workers = workers;
  sync_config.paradigm = paradigm;
  sync_config.torus_rows = torus_rows;
  sync_config.torus_cols = torus_cols;
  sync_config.seed = seed;
  std::unique_ptr<SyncStrategy> strategy;
  if (sync_method == SyncMethod::kMarsit) {
    MarsitOptions marsit_options;
    marsit_options.eta_s = eta_s;
    marsit_options.full_precision_period = k;
    marsit_options.use_compensation = !nocomp;
    marsit_options.full_precision_max_norm = fpclip;
    strategy = std::make_unique<MarsitSync>(sync_config, marsit_options);
  } else {
    MethodOptions options;
    options.eta_s = eta_s;
    options.full_precision_period = k;
    strategy = make_sync_strategy(sync_method, sync_config, options);
  }

  TrainerConfig config;
  config.batch_size_per_worker = batch;
  config.optimizer = opt == "momentum" ? OptimizerKind::kMomentum
                     : opt == "adam"   ? OptimizerKind::kAdam
                                       : OptimizerKind::kSgd;
  config.eta_l = eta_l;
  config.clip_grad_norm = clip;
  config.local_steps = local;
  config.rounds = rounds;
  config.eval_interval = std::max<std::size_t>(1, rounds / 10);
  config.eval_samples = 512;
  config.seed = seed;

  DistributedTrainer trainer(*dataset, factory, *strategy, config);
  std::cout << strategy->name() << " on " << task << "/" << model << " ("
            << trainer.param_count() << " params), eta_l=" << eta_l
            << " eta_s=" << eta_s << " opt=" << opt << "\n";
  const TrainResult result = trainer.train();
  TextTable table({"round", "acc (%)", "loss", "sim time"});
  for (const EvalPoint& p : result.evals) {
    table.add_row({std::to_string(p.round),
                   format_fixed(100.0 * p.test_accuracy, 1),
                   format_fixed(p.test_loss, 3),
                   format_duration(p.sim_seconds)});
  }
  table.print(std::cout);
  if (result.diverged) std::cout << "DIVERGED\n";
  return 0;
}
