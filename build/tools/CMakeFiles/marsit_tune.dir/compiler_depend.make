# Empty compiler generated dependencies file for marsit_tune.
# This may be replaced when dependencies are built.
