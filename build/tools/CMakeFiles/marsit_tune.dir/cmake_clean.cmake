file(REMOVE_RECURSE
  "CMakeFiles/marsit_tune.dir/tune.cpp.o"
  "CMakeFiles/marsit_tune.dir/tune.cpp.o.d"
  "marsit_tune"
  "marsit_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
