# Empty dependencies file for sentiment_analysis.
# This may be replaced when dependencies are built.
