file(REMOVE_RECURSE
  "CMakeFiles/sentiment_analysis.dir/sentiment_analysis.cpp.o"
  "CMakeFiles/sentiment_analysis.dir/sentiment_analysis.cpp.o.d"
  "sentiment_analysis"
  "sentiment_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentiment_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
