file(REMOVE_RECURSE
  "libmarsit_collectives.a"
)
