file(REMOVE_RECURSE
  "CMakeFiles/marsit_collectives.dir/aggregators.cpp.o"
  "CMakeFiles/marsit_collectives.dir/aggregators.cpp.o.d"
  "CMakeFiles/marsit_collectives.dir/timing.cpp.o"
  "CMakeFiles/marsit_collectives.dir/timing.cpp.o.d"
  "libmarsit_collectives.a"
  "libmarsit_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
