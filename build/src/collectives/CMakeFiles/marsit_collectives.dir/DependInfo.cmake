
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/aggregators.cpp" "src/collectives/CMakeFiles/marsit_collectives.dir/aggregators.cpp.o" "gcc" "src/collectives/CMakeFiles/marsit_collectives.dir/aggregators.cpp.o.d"
  "/root/repo/src/collectives/timing.cpp" "src/collectives/CMakeFiles/marsit_collectives.dir/timing.cpp.o" "gcc" "src/collectives/CMakeFiles/marsit_collectives.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/marsit_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/marsit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/marsit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/marsit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
