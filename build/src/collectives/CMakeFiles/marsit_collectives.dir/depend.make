# Empty dependencies file for marsit_collectives.
# This may be replaced when dependencies are built.
