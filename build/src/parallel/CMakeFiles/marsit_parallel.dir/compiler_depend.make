# Empty compiler generated dependencies file for marsit_parallel.
# This may be replaced when dependencies are built.
