file(REMOVE_RECURSE
  "libmarsit_parallel.a"
)
