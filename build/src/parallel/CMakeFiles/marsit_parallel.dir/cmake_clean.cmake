file(REMOVE_RECURSE
  "CMakeFiles/marsit_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/marsit_parallel.dir/thread_pool.cpp.o.d"
  "libmarsit_parallel.a"
  "libmarsit_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
