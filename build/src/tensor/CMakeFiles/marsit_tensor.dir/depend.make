# Empty dependencies file for marsit_tensor.
# This may be replaced when dependencies are built.
