file(REMOVE_RECURSE
  "libmarsit_tensor.a"
)
