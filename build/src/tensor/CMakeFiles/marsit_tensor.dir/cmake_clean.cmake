file(REMOVE_RECURSE
  "CMakeFiles/marsit_tensor.dir/ops.cpp.o"
  "CMakeFiles/marsit_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/marsit_tensor.dir/tensor.cpp.o"
  "CMakeFiles/marsit_tensor.dir/tensor.cpp.o.d"
  "libmarsit_tensor.a"
  "libmarsit_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
