file(REMOVE_RECURSE
  "libmarsit_core.a"
)
