file(REMOVE_RECURSE
  "CMakeFiles/marsit_core.dir/distributed_sgd.cpp.o"
  "CMakeFiles/marsit_core.dir/distributed_sgd.cpp.o.d"
  "CMakeFiles/marsit_core.dir/one_bit.cpp.o"
  "CMakeFiles/marsit_core.dir/one_bit.cpp.o.d"
  "CMakeFiles/marsit_core.dir/sync_strategy.cpp.o"
  "CMakeFiles/marsit_core.dir/sync_strategy.cpp.o.d"
  "libmarsit_core.a"
  "libmarsit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
