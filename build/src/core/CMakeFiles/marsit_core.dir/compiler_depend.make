# Empty compiler generated dependencies file for marsit_core.
# This may be replaced when dependencies are built.
