file(REMOVE_RECURSE
  "CMakeFiles/marsit_net.dir/network_sim.cpp.o"
  "CMakeFiles/marsit_net.dir/network_sim.cpp.o.d"
  "CMakeFiles/marsit_net.dir/topology.cpp.o"
  "CMakeFiles/marsit_net.dir/topology.cpp.o.d"
  "libmarsit_net.a"
  "libmarsit_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
