file(REMOVE_RECURSE
  "libmarsit_net.a"
)
