# Empty compiler generated dependencies file for marsit_net.
# This may be replaced when dependencies are built.
