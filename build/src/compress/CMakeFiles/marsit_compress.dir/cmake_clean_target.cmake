file(REMOVE_RECURSE
  "libmarsit_compress.a"
)
