# Empty compiler generated dependencies file for marsit_compress.
# This may be replaced when dependencies are built.
