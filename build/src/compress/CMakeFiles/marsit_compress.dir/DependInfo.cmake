
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bit_vector.cpp" "src/compress/CMakeFiles/marsit_compress.dir/bit_vector.cpp.o" "gcc" "src/compress/CMakeFiles/marsit_compress.dir/bit_vector.cpp.o.d"
  "/root/repo/src/compress/elias.cpp" "src/compress/CMakeFiles/marsit_compress.dir/elias.cpp.o" "gcc" "src/compress/CMakeFiles/marsit_compress.dir/elias.cpp.o.d"
  "/root/repo/src/compress/sign_codec.cpp" "src/compress/CMakeFiles/marsit_compress.dir/sign_codec.cpp.o" "gcc" "src/compress/CMakeFiles/marsit_compress.dir/sign_codec.cpp.o.d"
  "/root/repo/src/compress/sign_sum.cpp" "src/compress/CMakeFiles/marsit_compress.dir/sign_sum.cpp.o" "gcc" "src/compress/CMakeFiles/marsit_compress.dir/sign_sum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/marsit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/marsit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
