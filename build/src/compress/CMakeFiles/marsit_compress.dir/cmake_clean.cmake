file(REMOVE_RECURSE
  "CMakeFiles/marsit_compress.dir/bit_vector.cpp.o"
  "CMakeFiles/marsit_compress.dir/bit_vector.cpp.o.d"
  "CMakeFiles/marsit_compress.dir/elias.cpp.o"
  "CMakeFiles/marsit_compress.dir/elias.cpp.o.d"
  "CMakeFiles/marsit_compress.dir/sign_codec.cpp.o"
  "CMakeFiles/marsit_compress.dir/sign_codec.cpp.o.d"
  "CMakeFiles/marsit_compress.dir/sign_sum.cpp.o"
  "CMakeFiles/marsit_compress.dir/sign_sum.cpp.o.d"
  "libmarsit_compress.a"
  "libmarsit_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
