# Empty dependencies file for marsit_sim.
# This may be replaced when dependencies are built.
