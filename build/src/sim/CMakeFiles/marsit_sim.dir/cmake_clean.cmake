file(REMOVE_RECURSE
  "CMakeFiles/marsit_sim.dir/trainer.cpp.o"
  "CMakeFiles/marsit_sim.dir/trainer.cpp.o.d"
  "libmarsit_sim.a"
  "libmarsit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
