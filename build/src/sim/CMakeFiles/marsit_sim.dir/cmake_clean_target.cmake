file(REMOVE_RECURSE
  "libmarsit_sim.a"
)
