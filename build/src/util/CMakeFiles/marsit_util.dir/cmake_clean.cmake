file(REMOVE_RECURSE
  "CMakeFiles/marsit_util.dir/check.cpp.o"
  "CMakeFiles/marsit_util.dir/check.cpp.o.d"
  "CMakeFiles/marsit_util.dir/logging.cpp.o"
  "CMakeFiles/marsit_util.dir/logging.cpp.o.d"
  "CMakeFiles/marsit_util.dir/rng.cpp.o"
  "CMakeFiles/marsit_util.dir/rng.cpp.o.d"
  "CMakeFiles/marsit_util.dir/stats.cpp.o"
  "CMakeFiles/marsit_util.dir/stats.cpp.o.d"
  "CMakeFiles/marsit_util.dir/table.cpp.o"
  "CMakeFiles/marsit_util.dir/table.cpp.o.d"
  "libmarsit_util.a"
  "libmarsit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
