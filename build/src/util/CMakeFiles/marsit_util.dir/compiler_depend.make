# Empty compiler generated dependencies file for marsit_util.
# This may be replaced when dependencies are built.
