file(REMOVE_RECURSE
  "libmarsit_util.a"
)
