file(REMOVE_RECURSE
  "CMakeFiles/marsit_data.dir/dataset.cpp.o"
  "CMakeFiles/marsit_data.dir/dataset.cpp.o.d"
  "CMakeFiles/marsit_data.dir/synthetic_digits.cpp.o"
  "CMakeFiles/marsit_data.dir/synthetic_digits.cpp.o.d"
  "CMakeFiles/marsit_data.dir/synthetic_images.cpp.o"
  "CMakeFiles/marsit_data.dir/synthetic_images.cpp.o.d"
  "CMakeFiles/marsit_data.dir/synthetic_sentiment.cpp.o"
  "CMakeFiles/marsit_data.dir/synthetic_sentiment.cpp.o.d"
  "libmarsit_data.a"
  "libmarsit_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
