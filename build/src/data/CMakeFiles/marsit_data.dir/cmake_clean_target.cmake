file(REMOVE_RECURSE
  "libmarsit_data.a"
)
