# Empty dependencies file for marsit_data.
# This may be replaced when dependencies are built.
