file(REMOVE_RECURSE
  "CMakeFiles/marsit_nn.dir/activation.cpp.o"
  "CMakeFiles/marsit_nn.dir/activation.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/conv.cpp.o"
  "CMakeFiles/marsit_nn.dir/conv.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/embedding.cpp.o"
  "CMakeFiles/marsit_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/layer.cpp.o"
  "CMakeFiles/marsit_nn.dir/layer.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/linear.cpp.o"
  "CMakeFiles/marsit_nn.dir/linear.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/loss.cpp.o"
  "CMakeFiles/marsit_nn.dir/loss.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/models.cpp.o"
  "CMakeFiles/marsit_nn.dir/models.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/optimizer.cpp.o"
  "CMakeFiles/marsit_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/residual.cpp.o"
  "CMakeFiles/marsit_nn.dir/residual.cpp.o.d"
  "CMakeFiles/marsit_nn.dir/sequential.cpp.o"
  "CMakeFiles/marsit_nn.dir/sequential.cpp.o.d"
  "libmarsit_nn.a"
  "libmarsit_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marsit_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
