
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/marsit_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/marsit_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/marsit_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/marsit_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/marsit_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/marsit_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/marsit_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/marsit_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/marsit_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/marsit_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/marsit_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/marsit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/marsit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
