file(REMOVE_RECURSE
  "libmarsit_nn.a"
)
