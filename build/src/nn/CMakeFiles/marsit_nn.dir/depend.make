# Empty dependencies file for marsit_nn.
# This may be replaced when dependencies are built.
