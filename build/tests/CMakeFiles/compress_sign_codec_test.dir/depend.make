# Empty dependencies file for compress_sign_codec_test.
# This may be replaced when dependencies are built.
