
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compress_sign_codec_test.cpp" "tests/CMakeFiles/compress_sign_codec_test.dir/compress_sign_codec_test.cpp.o" "gcc" "tests/CMakeFiles/compress_sign_codec_test.dir/compress_sign_codec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/marsit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/marsit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/marsit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/marsit_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/marsit_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/marsit_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/marsit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/marsit_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/marsit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/marsit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
