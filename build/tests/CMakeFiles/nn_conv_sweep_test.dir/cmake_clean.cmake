file(REMOVE_RECURSE
  "CMakeFiles/nn_conv_sweep_test.dir/nn_conv_sweep_test.cpp.o"
  "CMakeFiles/nn_conv_sweep_test.dir/nn_conv_sweep_test.cpp.o.d"
  "nn_conv_sweep_test"
  "nn_conv_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_conv_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
