# Empty dependencies file for core_marsit_dynamics_test.
# This may be replaced when dependencies are built.
