file(REMOVE_RECURSE
  "CMakeFiles/core_marsit_dynamics_test.dir/core_marsit_dynamics_test.cpp.o"
  "CMakeFiles/core_marsit_dynamics_test.dir/core_marsit_dynamics_test.cpp.o.d"
  "core_marsit_dynamics_test"
  "core_marsit_dynamics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_marsit_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
