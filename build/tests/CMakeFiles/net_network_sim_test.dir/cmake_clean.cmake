file(REMOVE_RECURSE
  "CMakeFiles/net_network_sim_test.dir/net_network_sim_test.cpp.o"
  "CMakeFiles/net_network_sim_test.dir/net_network_sim_test.cpp.o.d"
  "net_network_sim_test"
  "net_network_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_network_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
