# Empty dependencies file for sim_local_steps_test.
# This may be replaced when dependencies are built.
