file(REMOVE_RECURSE
  "CMakeFiles/sim_local_steps_test.dir/sim_local_steps_test.cpp.o"
  "CMakeFiles/sim_local_steps_test.dir/sim_local_steps_test.cpp.o.d"
  "sim_local_steps_test"
  "sim_local_steps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_local_steps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
