file(REMOVE_RECURSE
  "CMakeFiles/collectives_tree_test.dir/collectives_tree_test.cpp.o"
  "CMakeFiles/collectives_tree_test.dir/collectives_tree_test.cpp.o.d"
  "collectives_tree_test"
  "collectives_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
