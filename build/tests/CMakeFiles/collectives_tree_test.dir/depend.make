# Empty dependencies file for collectives_tree_test.
# This may be replaced when dependencies are built.
