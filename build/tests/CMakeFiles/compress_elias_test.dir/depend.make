# Empty dependencies file for compress_elias_test.
# This may be replaced when dependencies are built.
