file(REMOVE_RECURSE
  "CMakeFiles/compress_elias_test.dir/compress_elias_test.cpp.o"
  "CMakeFiles/compress_elias_test.dir/compress_elias_test.cpp.o.d"
  "compress_elias_test"
  "compress_elias_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_elias_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
