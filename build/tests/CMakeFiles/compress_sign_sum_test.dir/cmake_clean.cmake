file(REMOVE_RECURSE
  "CMakeFiles/compress_sign_sum_test.dir/compress_sign_sum_test.cpp.o"
  "CMakeFiles/compress_sign_sum_test.dir/compress_sign_sum_test.cpp.o.d"
  "compress_sign_sum_test"
  "compress_sign_sum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_sign_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
