# Empty compiler generated dependencies file for compress_sign_sum_test.
# This may be replaced when dependencies are built.
