file(REMOVE_RECURSE
  "CMakeFiles/core_distributed_sgd_test.dir/core_distributed_sgd_test.cpp.o"
  "CMakeFiles/core_distributed_sgd_test.dir/core_distributed_sgd_test.cpp.o.d"
  "core_distributed_sgd_test"
  "core_distributed_sgd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_distributed_sgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
