file(REMOVE_RECURSE
  "CMakeFiles/compress_bit_vector_test.dir/compress_bit_vector_test.cpp.o"
  "CMakeFiles/compress_bit_vector_test.dir/compress_bit_vector_test.cpp.o.d"
  "compress_bit_vector_test"
  "compress_bit_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_bit_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
