# Empty dependencies file for compress_bit_vector_test.
# This may be replaced when dependencies are built.
