file(REMOVE_RECURSE
  "CMakeFiles/sim_trainer_test.dir/sim_trainer_test.cpp.o"
  "CMakeFiles/sim_trainer_test.dir/sim_trainer_test.cpp.o.d"
  "sim_trainer_test"
  "sim_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
