file(REMOVE_RECURSE
  "CMakeFiles/collectives_aggregators_test.dir/collectives_aggregators_test.cpp.o"
  "CMakeFiles/collectives_aggregators_test.dir/collectives_aggregators_test.cpp.o.d"
  "collectives_aggregators_test"
  "collectives_aggregators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_aggregators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
