# Empty dependencies file for collectives_aggregators_test.
# This may be replaced when dependencies are built.
