file(REMOVE_RECURSE
  "CMakeFiles/core_one_bit_test.dir/core_one_bit_test.cpp.o"
  "CMakeFiles/core_one_bit_test.dir/core_one_bit_test.cpp.o.d"
  "core_one_bit_test"
  "core_one_bit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_one_bit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
