# Empty compiler generated dependencies file for core_one_bit_test.
# This may be replaced when dependencies are built.
