# Empty dependencies file for ablation_compensation.
# This may be replaced when dependencies are built.
