file(REMOVE_RECURSE
  "CMakeFiles/ablation_fabrics.dir/ablation_fabrics.cpp.o"
  "CMakeFiles/ablation_fabrics.dir/ablation_fabrics.cpp.o.d"
  "ablation_fabrics"
  "ablation_fabrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fabrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
