# Empty dependencies file for ablation_fabrics.
# This may be replaced when dependencies are built.
