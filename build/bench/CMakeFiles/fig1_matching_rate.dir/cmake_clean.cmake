file(REMOVE_RECURSE
  "CMakeFiles/fig1_matching_rate.dir/fig1_matching_rate.cpp.o"
  "CMakeFiles/fig1_matching_rate.dir/fig1_matching_rate.cpp.o.d"
  "fig1_matching_rate"
  "fig1_matching_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_matching_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
