# Empty dependencies file for fig1_matching_rate.
# This may be replaced when dependencies are built.
