# Empty dependencies file for fig4_resnet_imagenet.
# This may be replaced when dependencies are built.
