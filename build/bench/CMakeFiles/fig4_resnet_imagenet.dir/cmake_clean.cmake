file(REMOVE_RECURSE
  "CMakeFiles/fig4_resnet_imagenet.dir/fig4_resnet_imagenet.cpp.o"
  "CMakeFiles/fig4_resnet_imagenet.dir/fig4_resnet_imagenet.cpp.o.d"
  "fig4_resnet_imagenet"
  "fig4_resnet_imagenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_resnet_imagenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
