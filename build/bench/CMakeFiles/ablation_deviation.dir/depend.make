# Empty dependencies file for ablation_deviation.
# This may be replaced when dependencies are built.
