file(REMOVE_RECURSE
  "CMakeFiles/ablation_deviation.dir/ablation_deviation.cpp.o"
  "CMakeFiles/ablation_deviation.dir/ablation_deviation.cpp.o.d"
  "ablation_deviation"
  "ablation_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
