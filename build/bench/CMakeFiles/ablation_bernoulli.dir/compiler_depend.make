# Empty compiler generated dependencies file for ablation_bernoulli.
# This may be replaced when dependencies are built.
