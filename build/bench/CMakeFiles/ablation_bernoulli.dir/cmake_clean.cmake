file(REMOVE_RECURSE
  "CMakeFiles/ablation_bernoulli.dir/ablation_bernoulli.cpp.o"
  "CMakeFiles/ablation_bernoulli.dir/ablation_bernoulli.cpp.o.d"
  "ablation_bernoulli"
  "ablation_bernoulli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bernoulli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
