# Empty dependencies file for table1_cascading.
# This may be replaced when dependencies are built.
