file(REMOVE_RECURSE
  "CMakeFiles/table1_cascading.dir/table1_cascading.cpp.o"
  "CMakeFiles/table1_cascading.dir/table1_cascading.cpp.o.d"
  "table1_cascading"
  "table1_cascading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cascading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
