file(REMOVE_RECURSE
  "CMakeFiles/fig1_iteration_time.dir/fig1_iteration_time.cpp.o"
  "CMakeFiles/fig1_iteration_time.dir/fig1_iteration_time.cpp.o.d"
  "fig1_iteration_time"
  "fig1_iteration_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_iteration_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
