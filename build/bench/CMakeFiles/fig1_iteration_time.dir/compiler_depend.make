# Empty compiler generated dependencies file for fig1_iteration_time.
# This may be replaced when dependencies are built.
