# Empty dependencies file for ablation_elias.
# This may be replaced when dependencies are built.
