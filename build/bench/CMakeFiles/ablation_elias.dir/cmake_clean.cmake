file(REMOVE_RECURSE
  "CMakeFiles/ablation_elias.dir/ablation_elias.cpp.o"
  "CMakeFiles/ablation_elias.dir/ablation_elias.cpp.o.d"
  "ablation_elias"
  "ablation_elias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_elias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
