file(REMOVE_RECURSE
  "CMakeFiles/ablation_speedup.dir/ablation_speedup.cpp.o"
  "CMakeFiles/ablation_speedup.dir/ablation_speedup.cpp.o.d"
  "ablation_speedup"
  "ablation_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
