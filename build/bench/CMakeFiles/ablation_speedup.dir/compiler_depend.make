# Empty compiler generated dependencies file for ablation_speedup.
# This may be replaced when dependencies are built.
