#include "obs/exporter.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <set>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace marsit::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

void write_event_common(JsonWriter& json, const TraceSpan& span) {
  json.kv("name", span.name);
  json.kv("cat", span.cat);
  json.kv("ts", span.start_seconds * kMicrosPerSecond);
  json.kv("pid", std::uint64_t{0});
  json.kv("tid", std::uint64_t{span.track});
}

}  // namespace

void write_chrome_trace(const TraceSession& session, std::ostream& out) {
  const std::vector<TraceSpan> spans = session.spans();

  JsonWriter json(out, /*pretty=*/false);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();

  // Name the tracks: 0 is the trainer/schedule timeline, 1+n is fabric
  // node n (hop spans land on their sender's track).
  std::set<std::uint32_t> tracks;
  for (const TraceSpan& span : spans) {
    tracks.insert(span.track);
  }
  for (const std::uint32_t track : tracks) {
    json.begin_object();
    json.kv("name", "thread_name");
    json.kv("ph", "M");
    json.kv("pid", std::uint64_t{0});
    json.kv("tid", std::uint64_t{track});
    json.key("args");
    json.begin_object();
    json.kv("name", track == 0 ? std::string("trainer")
                               : "node " + std::to_string(track - 1));
    json.end_object();
    json.end_object();
  }

  for (const TraceSpan& span : spans) {
    json.begin_object();
    write_event_common(json, span);
    if (span.instant) {
      json.kv("ph", "i");
      json.kv("s", "t");  // thread-scoped instant
    } else {
      json.kv("ph", "X");
      json.kv("dur", (span.end_seconds - span.start_seconds) *
                         kMicrosPerSecond);
    }
    json.end_object();
  }
  json.end_array();
  json.kv("displayTimeUnit", "ms");

  // Non-standard extras (chrome://tracing ignores unknown top-level keys):
  // the per-round records and a metrics scrape, so one file carries the
  // whole observation.
  json.key("roundMetrics");
  json.begin_array();
  for (const RoundRecord& record : session.rounds()) {
    json.begin_object();
    json.kv("round", record.round);
    for (const auto& [key, value] : record.fields) {
      json.kv(key, value);
    }
    json.end_object();
  }
  json.end_array();

  json.key("metrics");
  json.begin_array();
  for (const MetricSnapshot& snap : MetricsRegistry::global().scrape()) {
    json.begin_object();
    json.kv("name", snap.name);
    json.kv("kind", metric_kind_name(snap.kind));
    json.kv("value", snap.value);
    json.kv("count", snap.count);
    if (snap.kind == MetricKind::kHistogram && snap.count > 0) {
      json.kv("min", snap.min);
      json.kv("max", snap.max);
      json.kv("mean", snap.value / static_cast<double>(snap.count));
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_round_jsonl(const TraceSession& session, std::ostream& out) {
  for (const RoundRecord& record : session.rounds()) {
    JsonWriter json(out, /*pretty=*/false);
    json.begin_object();
    json.kv("round", record.round);
    for (const auto& [key, value] : record.fields) {
      json.kv(key, value);
    }
    json.end_object();
    out << '\n';
  }
}

void ChromeTraceExporter::export_session(const TraceSession& session) {
  std::ofstream out(path_);
  MARSIT_CHECK(out.good()) << "cannot open trace output " << path_;
  write_chrome_trace(session, out);
}

void JsonlMetricsExporter::export_session(const TraceSession& session) {
  std::ofstream out(path_);
  MARSIT_CHECK(out.good()) << "cannot open metrics output " << path_;
  write_round_jsonl(session, out);
}

ScopedTrace::ScopedTrace(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace") {
      path_ = argv[i + 1];
      break;
    }
  }
  if (!path_.empty()) {
    set_metrics_enabled(true);
    TraceSession::install(&session_);
  }
}

ScopedTrace::~ScopedTrace() {
  if (path_.empty()) {
    return;
  }
  TraceSession::install(nullptr);
  set_metrics_enabled(false);
  ChromeTraceExporter(path_).export_session(session_);
  std::cerr << "chrome trace written to " << path_
            << " (load via chrome://tracing or ui.perfetto.dev)\n";
  if (!session_.rounds().empty()) {
    JsonlMetricsExporter(path_ + ".jsonl").export_session(session_);
    std::cerr << "per-round metrics written to " << path_ << ".jsonl\n";
  }
}

}  // namespace marsit::obs
