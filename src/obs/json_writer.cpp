#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace marsit::obs {

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

JsonWriter::~JsonWriter() {
  // A throwing destructor would terminate during unwinding; report misuse
  // in tests via the stream state instead of throwing here.
  if (!stack_.empty()) {
    out_.setstate(std::ios::failbit);
  }
}

void JsonWriter::newline_indent() {
  if (!pretty_) {
    return;
  }
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    out_ << "  ";
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;  // value follows its key inline
    return;
  }
  if (stack_.empty()) {
    MARSIT_CHECK(values_at_root_ == 0)
        << "JSON document already has a root value";
    ++values_at_root_;
    return;
  }
  Level& level = stack_.back();
  MARSIT_CHECK(level.bracket == '[')
      << "object members need key() before each value";
  if (level.has_items) {
    out_ << ',';
  }
  level.has_items = true;
  newline_indent();
}

void JsonWriter::open(char bracket) {
  before_value();
  out_ << bracket;
  stack_.push_back(Level{bracket, false});
}

void JsonWriter::close(char bracket) {
  MARSIT_CHECK(!stack_.empty() && stack_.back().bracket == bracket)
      << "mismatched JSON container close";
  MARSIT_CHECK(!pending_key_) << "dangling key before container close";
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    newline_indent();
  }
  out_ << (bracket == '{' ? '}' : ']');
  if (stack_.empty() && pretty_) {
    out_ << '\n';
  }
}

void JsonWriter::begin_object() { open('{'); }
void JsonWriter::end_object() { close('{'); }
void JsonWriter::begin_array() { open('['); }
void JsonWriter::end_array() { close('['); }

void JsonWriter::key(std::string_view name) {
  MARSIT_CHECK(!stack_.empty() && stack_.back().bracket == '{')
      << "key() outside of an object";
  MARSIT_CHECK(!pending_key_) << "two keys in a row";
  Level& level = stack_.back();
  if (level.has_items) {
    out_ << ',';
  }
  level.has_items = true;
  newline_indent();
  write_string(name);
  out_ << (pretty_ ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::write_string(std::string_view text) {
  out_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\r':
        out_ << "\\r";
        break;
      case '\t':
        out_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out_ << buffer;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

void JsonWriter::value(std::string_view text) {
  before_value();
  write_string(text);
}

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out_ << "null";
    return;
  }
  char buffer[32];
  // %.17g round-trips every double; trim to the shortest representation
  // that still round-trips for readability.
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, number);
    double back = 0.0;
    std::sscanf(buffer, "%lf", &back);
    if (back == number) {
      break;
    }
  }
  out_ << buffer;
}

void JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
}

}  // namespace marsit::obs
