// Minimal streaming JSON writer — the one JSON emitter for the exporters
// and the bench binaries (fault_sweep, fig5_time_breakdown), replacing
// hand-concatenated string output.  Guarantees structural validity (commas,
// nesting, string escaping) and round-trippable number formatting; it does
// not pretty-print beyond optional two-space indentation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace marsit::obs {

class JsonWriter {
 public:
  /// Writes into `out`; `pretty` adds newlines + two-space indentation.
  explicit JsonWriter(std::ostream& out, bool pretty = false);
  /// The destructor checks that every container was closed.
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value or container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);

  /// key() + value() in one call.
  template <typename T>
  void kv(std::string_view name, T v) {
    key(name);
    value(v);
  }

 private:
  void before_value();
  void open(char bracket);
  void close(char bracket);
  void newline_indent();
  void write_string(std::string_view text);

  std::ostream& out_;
  bool pretty_;
  bool pending_key_ = false;  // a key was just written; value comes inline
  struct Level {
    char bracket;     // '{' or '['
    bool has_items = false;
  };
  std::vector<Level> stack_;
  std::size_t values_at_root_ = 0;
};

}  // namespace marsit::obs
