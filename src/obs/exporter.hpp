// Exporters turn a recorded TraceSession into files:
//
//   * ChromeTraceExporter — chrome://tracing / Perfetto-loadable JSON.  One
//     complete ("ph":"X") event per span with microsecond timestamps on the
//     simulated timeline, instant ("ph":"i") events for markers, thread_name
//     metadata naming the tracks, and two non-standard top-level keys
//     chrome ignores: "roundMetrics" (the per-round records) and "metrics"
//     (a scrape of the global MetricsRegistry at export time);
//
//   * JsonlMetricsExporter — the per-round metrics stream, one JSON object
//     per line in record order (field order preserved).  This is the
//     machine-readable side: summing the stream's `wire_bits` reproduces
//     TrainResult::total_wire_bits exactly.
//
// Both are thin wrappers over the stream-level functions, which tests and
// benches use directly.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>

#include "obs/trace.hpp"

namespace marsit::obs {

class TraceExporter {
 public:
  virtual ~TraceExporter() = default;
  virtual void export_session(const TraceSession& session) = 0;
};

/// Writes the session's spans as a chrome://tracing JSON object.
void write_chrome_trace(const TraceSession& session, std::ostream& out);

/// Writes the session's round records as JSONL (one object per line).
void write_round_jsonl(const TraceSession& session, std::ostream& out);

class ChromeTraceExporter final : public TraceExporter {
 public:
  explicit ChromeTraceExporter(std::string path) : path_(std::move(path)) {}
  void export_session(const TraceSession& session) override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class JsonlMetricsExporter final : public TraceExporter {
 public:
  explicit JsonlMetricsExporter(std::string path) : path_(std::move(path)) {}
  void export_session(const TraceSession& session) override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// `--trace <path>` support for the example binaries: when the flag is
/// present, construction installs a TraceSession and enables the global
/// metrics registry; destruction exports the chrome trace to <path>, the
/// per-round JSONL stream to <path>.jsonl, and uninstalls.  Without the
/// flag the stack runs exactly as before (tracing off, metrics off).
class ScopedTrace {
 public:
  ScopedTrace(int argc, char** argv);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  TraceSession& session() { return session_; }

 private:
  TraceSession session_;
  std::string path_;
};

}  // namespace marsit::obs
