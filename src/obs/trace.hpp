// TraceSession — span recording on the *simulated* timeline, exportable as
// chrome://tracing JSON (see exporter.hpp), plus the per-round metrics
// stream the trainer publishes as JSONL.
//
// Span hierarchy (DESIGN.md §9):
//
//   round t                          track 0 ("trainer")
//   ├─ compute                       track 0
//   └─ sync                          track 0
//      ├─ reduce-scatter / …         track 0 ("phase" spans from the
//      │                             collective schedules)
//      └─ hop a→b                    track 1+a (one track per fabric node,
//                                    emitted by NetworkSim::transfer)
//   pack/transfer/fold chunk c       tracks 1+num_nodes+{0,1,2} ("stage"
//                                    lane spans from the chunked overlap
//                                    pipeline, one lane per stage — see
//                                    pipelined_collective_timing)
//   elias-refresh                    instant events, track 0
//
// Installation follows the same global-pointer pattern as the metrics
// enable flag: `TraceSession::install(&session)` makes `current()` non-null
// and every instrumentation site live; with no session installed the sites
// cost one relaxed atomic load.  Times are simulated seconds.
//
// The collective schedules and the network simulator run with
// collective-local clocks (every round starts at 0); the trainer publishes
// the round's global start through set_time_offset() so nested layers can
// place their spans on the global timeline (they add time_offset()
// explicitly — add_span itself never offsets).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_safety.hpp"

namespace marsit::obs {

struct TraceSpan {
  std::string name;
  /// Category: "round" | "compute" | "sync" | "phase" | "hop" | "stage" |
  /// "refresh".
  std::string cat;
  double start_seconds = 0.0;
  /// == start_seconds for instant events.
  double end_seconds = 0.0;
  /// Chrome tid: 0 = trainer/schedule track, 1+n = fabric node n.
  std::uint32_t track = 0;
  bool instant = false;
};

/// One round's worth of scalar telemetry, streamed as one JSONL object.
/// Field order is preserved in the output.
struct RoundRecord {
  std::size_t round = 0;
  std::vector<std::pair<std::string, double>> fields;

  void set(std::string_view key, double value) {
    fields.emplace_back(key, value);
  }
};

class TraceSession {
 public:
  TraceSession() = default;
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void add_span(std::string name, std::string cat, double start_seconds,
                double end_seconds, std::uint32_t track);
  void add_instant(std::string name, std::string cat, double at_seconds,
                   std::uint32_t track);
  void add_round_record(RoundRecord record);

  /// Global simulated time of the current collective's local t=0.  Set by
  /// the trainer before each synchronize(); added explicitly by the
  /// collective-local emitters (timing schedules, NetworkSim).
  void set_time_offset(double seconds) {
    time_offset_.store(seconds, std::memory_order_relaxed);
  }
  double time_offset() const {
    return time_offset_.load(std::memory_order_relaxed);
  }

  std::vector<TraceSpan> spans() const;
  std::vector<RoundRecord> rounds() const;
  std::size_t span_count() const;
  std::size_t span_count(std::string_view cat) const;

  /// The installed session, or nullptr when tracing is off.
  static TraceSession* current() {
    return current_.load(std::memory_order_acquire);
  }
  /// Installs `session` (nullptr uninstalls).  A session must be
  /// uninstalled before it is destroyed; the destructor checks.
  static void install(TraceSession* session) {
    current_.store(session, std::memory_order_release);
  }

 private:
  mutable Mutex mu_;  // guards the recorded span / round streams
  std::vector<TraceSpan> spans_ MARSIT_GUARDED_BY(mu_);
  std::vector<RoundRecord> rounds_ MARSIT_GUARDED_BY(mu_);
  std::atomic<double> time_offset_{0.0};

  static std::atomic<TraceSession*> current_;
};

inline bool tracing_enabled() { return TraceSession::current() != nullptr; }

}  // namespace marsit::obs
