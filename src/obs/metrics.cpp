#include "obs/metrics.hpp"

#include <cmath>

#include "util/check.hpp"

namespace marsit::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::size_t histogram_bucket(double value) {
  if (!(value > 0.0)) {
    return 0;  // non-positive (and NaN) values land in the first bucket
  }
  int exp = 0;
  std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5, 1)
  const long index = static_cast<long>(exp) - 1 - kHistogramMinExp;
  if (index < 0) {
    return 0;
  }
  if (index >= static_cast<long>(kHistogramBuckets)) {
    return kHistogramBuckets - 1;
  }
  return static_cast<std::size_t>(index);
}

double histogram_bucket_floor(std::size_t index) {
  MARSIT_CHECK(index < kHistogramBuckets) << "bucket " << index
                                          << " out of range";
  return std::ldexp(1.0, static_cast<int>(index) + kHistogramMinExp);
}

namespace {

/// Process-unique registry ids for the thread-local shard cache.  Ids are
/// never reused, so a stale cache entry for a destroyed registry can never
/// be looked up again.
std::atomic<std::uint64_t> next_registry_uid{1};

}  // namespace

/// One thread's private slice of every sharded metric.  All fields are
/// written only by the owning thread (relaxed atomics) and read by
/// scrape(); histogram bucket blocks are allocated lazily on first
/// observation and published with release/acquire so the scraper sees
/// initialized memory.
struct MetricsRegistry::Shard {
  struct Buckets {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> count{};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<bool> has_extrema{false};
  };

  std::array<std::atomic<double>, kMaxMetrics> value{};
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> count{};
  std::array<std::atomic<Buckets*>, kMaxMetrics> buckets{};

  ~Shard() {
    for (auto& slot : buckets) {
      delete slot.load(std::memory_order_acquire);
    }
  }

  void zero() {
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      value[i].store(0.0, std::memory_order_relaxed);
      count[i].store(0, std::memory_order_relaxed);
      if (Buckets* b = buckets[i].load(std::memory_order_acquire)) {
        for (auto& c : b->count) {
          c.store(0, std::memory_order_relaxed);
        }
        b->has_extrema.store(false, std::memory_order_relaxed);
      }
    }
  }
};

MetricsRegistry::MetricsRegistry()
    : uid_(next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Id MetricsRegistry::register_metric(std::string_view name,
                                                     MetricKind kind) {
  MARSIT_CHECK(!name.empty()) << "metric name must be non-empty";
  const MutexLock lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      MARSIT_CHECK(kinds_[i] == kind)
          << "metric '" << names_[i] << "' re-registered as "
          << metric_kind_name(kind) << ", was " << metric_kind_name(kinds_[i]);
      return static_cast<Id>(i);
    }
  }
  MARSIT_CHECK(names_.size() < kMaxMetrics)
      << "metric registry full (" << kMaxMetrics << ")";
  names_.emplace_back(name);
  kinds_.push_back(kind);
  return static_cast<Id>(names_.size() - 1);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // One-entry cache: the global registry is effectively the only publisher,
  // so the fast path is two thread-local loads and a compare.
  thread_local std::uint64_t cached_uid = 0;
  thread_local Shard* cached_shard = nullptr;
  if (cached_uid == uid_) {
    return *cached_shard;
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    const MutexLock lock(mu_);
    shards_.push_back(std::move(shard));
  }
  cached_uid = uid_;
  cached_shard = raw;
  return *raw;
}

void MetricsRegistry::add(Id id, double delta) {
  MARSIT_CHECK(id < kMaxMetrics) << "metric id out of range";
  if (!enabled()) {
    return;
  }
  Shard& shard = local_shard();
  shard.value[id].fetch_add(delta, std::memory_order_relaxed);
  shard.count[id].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::set(Id id, double value) {
  MARSIT_CHECK(id < kMaxMetrics) << "metric id out of range";
  if (!enabled()) {
    return;
  }
  gauges_[id].store(value, std::memory_order_relaxed);
  gauge_counts_[id].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::observe(Id id, double value) {
  MARSIT_CHECK(id < kMaxMetrics) << "metric id out of range";
  if (!enabled()) {
    return;
  }
  Shard& shard = local_shard();
  shard.value[id].fetch_add(value, std::memory_order_relaxed);
  shard.count[id].fetch_add(1, std::memory_order_relaxed);
  Shard::Buckets* buckets =
      shard.buckets[id].load(std::memory_order_acquire);
  if (buckets == nullptr) {
    buckets = new Shard::Buckets();
    shard.buckets[id].store(buckets, std::memory_order_release);
  }
  buckets->count[histogram_bucket(value)].fetch_add(
      1, std::memory_order_relaxed);
  // min/max: the shard is single-writer, so plain load-compare-store on the
  // atomics is race-free within the shard.
  if (!buckets->has_extrema.load(std::memory_order_relaxed)) {
    buckets->min.store(value, std::memory_order_relaxed);
    buckets->max.store(value, std::memory_order_relaxed);
    buckets->has_extrema.store(true, std::memory_order_relaxed);
  } else {
    if (value < buckets->min.load(std::memory_order_relaxed)) {
      buckets->min.store(value, std::memory_order_relaxed);
    }
    if (value > buckets->max.load(std::memory_order_relaxed)) {
      buckets->max.store(value, std::memory_order_relaxed);
    }
  }
}

std::vector<MetricSnapshot> MetricsRegistry::scrape() const {
  const MutexLock lock(mu_);
  std::vector<MetricSnapshot> result(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    MetricSnapshot& snap = result[i];
    snap.name = names_[i];
    snap.kind = kinds_[i];
    if (snap.kind == MetricKind::kGauge) {
      snap.value = gauges_[i].load(std::memory_order_relaxed);
      snap.count = gauge_counts_[i].load(std::memory_order_relaxed);
      continue;
    }
    if (snap.kind == MetricKind::kHistogram) {
      snap.buckets.assign(kHistogramBuckets, 0);
    }
    bool has_extrema = false;
    for (const auto& shard : shards_) {
      snap.value += shard->value[i].load(std::memory_order_relaxed);
      snap.count += shard->count[i].load(std::memory_order_relaxed);
      const Shard::Buckets* buckets =
          shard->buckets[i].load(std::memory_order_acquire);
      if (buckets == nullptr) {
        continue;
      }
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        snap.buckets[b] += buckets->count[b].load(std::memory_order_relaxed);
      }
      if (buckets->has_extrema.load(std::memory_order_relaxed)) {
        const double lo = buckets->min.load(std::memory_order_relaxed);
        const double hi = buckets->max.load(std::memory_order_relaxed);
        if (!has_extrema) {
          snap.min = lo;
          snap.max = hi;
          has_extrema = true;
        } else {
          snap.min = std::min(snap.min, lo);
          snap.max = std::max(snap.max, hi);
        }
      }
    }
  }
  return result;
}

MetricSnapshot MetricsRegistry::find(std::string_view name) const {
  std::vector<MetricSnapshot> snaps = scrape();
  for (MetricSnapshot& snap : snaps) {
    if (snap.name == name) {
      return std::move(snap);
    }
  }
  return {};
}

void MetricsRegistry::reset() {
  const MutexLock lock(mu_);
  for (auto& shard : shards_) {
    shard->zero();
  }
  for (std::size_t i = 0; i < kMaxMetrics; ++i) {
    gauges_[i].store(0.0, std::memory_order_relaxed);
    gauge_counts_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t MetricsRegistry::metric_count() const {
  const MutexLock lock(mu_);
  return names_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  // marsit-lint: allow(concurrency-discipline): function-local static with a
  // thread-safe magic-statics init; the registry itself locks mu_ internally
  // and is deliberately leaked so publishing threads may outlive main().
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

}  // namespace marsit::obs
