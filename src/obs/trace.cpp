#include "obs/trace.hpp"

#include "util/check.hpp"

namespace marsit::obs {

std::atomic<TraceSession*> TraceSession::current_{nullptr};

TraceSession::~TraceSession() {
  MARSIT_CHECK(current() != this)
      << "TraceSession destroyed while still installed";
}

void TraceSession::add_span(std::string name, std::string cat,
                            double start_seconds, double end_seconds,
                            std::uint32_t track) {
  MARSIT_CHECK(end_seconds >= start_seconds)
      << "span '" << name << "' ends before it starts";
  const MutexLock lock(mu_);
  spans_.push_back(TraceSpan{std::move(name), std::move(cat), start_seconds,
                             end_seconds, track, /*instant=*/false});
}

void TraceSession::add_instant(std::string name, std::string cat,
                               double at_seconds, std::uint32_t track) {
  const MutexLock lock(mu_);
  spans_.push_back(TraceSpan{std::move(name), std::move(cat), at_seconds,
                             at_seconds, track, /*instant=*/true});
}

void TraceSession::add_round_record(RoundRecord record) {
  const MutexLock lock(mu_);
  rounds_.push_back(std::move(record));
}

std::vector<TraceSpan> TraceSession::spans() const {
  const MutexLock lock(mu_);
  return spans_;
}

std::vector<RoundRecord> TraceSession::rounds() const {
  const MutexLock lock(mu_);
  return rounds_;
}

std::size_t TraceSession::span_count() const {
  const MutexLock lock(mu_);
  return spans_.size();
}

std::size_t TraceSession::span_count(std::string_view cat) const {
  const MutexLock lock(mu_);
  std::size_t count = 0;
  for (const TraceSpan& span : spans_) {
    if (span.cat == cat) {
      ++count;
    }
  }
  return count;
}

}  // namespace marsit::obs
