// MetricsRegistry — named counters / gauges / histograms for the whole
// stack, designed around two constraints:
//
//   * **zero-cost when disabled** (the default): every publish helper first
//     reads one relaxed atomic flag and returns; no allocation, no lock, no
//     branch into the shards.  Instrumented hot paths (NetworkSim::transfer,
//     SyncStrategy::synchronize, the trainer loop) therefore stay
//     bit-identical — the instrumentation never touches values or RNG
//     streams, only observes them;
//
//   * **lock-free publishing when enabled**: each publishing thread owns a
//     private shard (atomics written only by that thread, relaxed order) and
//     scrape() merges the shards under the registration mutex.  The sharded
//     sync pipeline can publish from pool threads without serializing.
//
// Metric kinds:
//   counter   — monotonically accumulating double (wire bits, retries);
//   gauge     — last-writer-wins value (active workers, compensation norm);
//   histogram — log2-bucketed distribution with sum/count/min/max
//               (per-hop latencies, round completion times).
//
// Metric names are dot-separated lowercase paths ("sync.wire_bits") —
// DESIGN.md §9 lists every name the stack publishes.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_safety.hpp"

namespace marsit::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind);

/// Histogram geometry: power-of-two buckets.  Bucket i counts values in
/// [2^(i + kHistogramMinExp), 2^(i + 1 + kHistogramMinExp)); values below
/// the first floor land in bucket 0, values at or above the last in the
/// final bucket.  With kMinExp = -40 and 64 buckets the range spans ~1e-12
/// (picosecond-scale simulated latencies) to ~1.7e7.
constexpr int kHistogramMinExp = -40;
constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index for `value` (values <= 0 land in bucket 0).
std::size_t histogram_bucket(double value);
/// Inclusive lower bound of bucket `index`.
double histogram_bucket_floor(std::size_t index);

/// Merged view of one metric across all shards, returned by scrape().
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter total or gauge value; histogram sum of observations.
  double value = 0.0;
  /// Publish count (counter adds / gauge sets / histogram observations).
  std::uint64_t count = 0;
  double min = 0.0;  // histogram only
  double max = 0.0;  // histogram only
  /// kHistogramBuckets entries for histograms, empty otherwise.
  std::vector<std::uint64_t> buckets;
};

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  /// Registrations are capped so shards can be fixed-size atomic arrays
  /// (atomics cannot live in resizable vectors).
  static constexpr std::size_t kMaxMetrics = 128;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) `name`.  Re-registering an existing name with
  /// the same kind returns the existing id; a kind mismatch throws.
  Id register_metric(std::string_view name, MetricKind kind);

  /// Publishing.  All are no-ops while the registry is disabled; when
  /// enabled they touch only the calling thread's shard (counters,
  /// histograms) or a single central atomic (gauges).
  void add(Id id, double delta);
  void set(Id id, double value);
  void observe(Id id, double value);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Merges every shard into per-metric snapshots, in registration order.
  std::vector<MetricSnapshot> scrape() const;

  /// Snapshot of one metric by name; a zeroed snapshot with an empty name
  /// when unregistered.  Convenience for tests and exporters.
  MetricSnapshot find(std::string_view name) const;

  /// Counter/gauge value by name (0 when unregistered).
  double value(std::string_view name) const { return find(name).value; }

  /// Zeroes every shard and gauge, keeping registrations.  Callers must
  /// quiesce publishing threads first (test/scrape-cycle use only).
  void reset();

  std::size_t metric_count() const;

  /// The process-wide registry every instrumentation site publishes into.
  static MetricsRegistry& global();

 private:
  struct Shard;

  Shard& local_shard();
  const Shard* shard_for_scrape(std::size_t index) const;

  std::atomic<bool> enabled_{false};
  const std::uint64_t uid_;  // process-unique; keys the thread-local cache

  mutable Mutex mu_;  // guards names_/kinds_/shards_ structure
  std::vector<std::string> names_ MARSIT_GUARDED_BY(mu_);
  std::vector<MetricKind> kinds_ MARSIT_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Shard>> shards_ MARSIT_GUARDED_BY(mu_);
  /// Gauges are last-writer-wins; one central slot each (not sharded).
  std::array<std::atomic<double>, kMaxMetrics> gauges_{};
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> gauge_counts_{};
};

inline bool metrics_enabled() { return MetricsRegistry::global().enabled(); }
inline void set_metrics_enabled(bool enabled) {
  MetricsRegistry::global().set_enabled(enabled);
}

/// Typed handles binding a name in the global registry at construction.
/// Instrumentation sites declare them `static const` so registration runs
/// once; publishing is enabled-gated and therefore free when off.
class Counter {
 public:
  explicit Counter(std::string_view name)
      : id_(MetricsRegistry::global().register_metric(name,
                                                      MetricKind::kCounter)) {}
  void add(double delta) const {
    auto& registry = MetricsRegistry::global();
    if (registry.enabled()) {
      registry.add(id_, delta);
    }
  }
  void increment() const { add(1.0); }

 private:
  MetricsRegistry::Id id_;
};

class Gauge {
 public:
  explicit Gauge(std::string_view name)
      : id_(MetricsRegistry::global().register_metric(name,
                                                      MetricKind::kGauge)) {}
  void set(double value) const {
    auto& registry = MetricsRegistry::global();
    if (registry.enabled()) {
      registry.set(id_, value);
    }
  }

 private:
  MetricsRegistry::Id id_;
};

class Histogram {
 public:
  explicit Histogram(std::string_view name)
      : id_(MetricsRegistry::global().register_metric(
            name, MetricKind::kHistogram)) {}
  void observe(double value) const {
    auto& registry = MetricsRegistry::global();
    if (registry.enabled()) {
      registry.observe(id_, value);
    }
  }

 private:
  MetricsRegistry::Id id_;
};

}  // namespace marsit::obs
