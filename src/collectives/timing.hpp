// Timing schedules for the three synchronization paradigms the paper
// evaluates: ring all-reduce (RAR), 2-D torus all-reduce (TAR), and the
// parameter server (PS).
//
// A schedule answers "how long does one synchronization of a D-element
// gradient take, and how many bits cross the wire" for a given *wire
// format*.  The wire format abstracts what a method transmits per hop:
// full-precision floats (PSGD), growing sign-sums (signSGD/EF/SSDM under
// MAR), constant one-bit vectors (Marsit), or compressed segments with a
// serial decompress-recompress stage (cascading compression).
//
// The actual aggregation arithmetic runs separately on full vectors (see
// aggregators.hpp and src/core): elementwise aggregation is invariant to how
// a vector is chunked into segments, so values and timing can be computed
// independently without loss of fidelity.  DESIGN.md §5 records this
// decoupling.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "net/cost_model.hpp"
#include "net/network_sim.hpp"
#include "net/topology.hpp"

namespace marsit {

/// What a synchronization method puts on the wire and what it costs to
/// produce.  All rates come from CostModel; WireFormat carries *per-element
/// seconds* so schedules stay independent of the model struct.
struct WireFormat {
  /// Bits of a reduce-phase message carrying `elements` elements aggregated
  /// from `contributions` workers.  For Marsit this is `elements` (constant);
  /// for sign-sums it grows with ⌈log2(c+1)⌉+1; floats are 32·elements.
  std::function<double(std::size_t elements, std::size_t contributions)>
      reduce_bits;

  /// Bits of a gather/broadcast-phase message of `elements` finalized
  /// elements.
  std::function<double(std::size_t elements)> gather_bits;

  /// Per-element seconds of processing that sits on the hop critical path
  /// (cascading compression's decompress-add-recompress).
  double serial_seconds_per_element = 0.0;

  /// Per-element seconds of processing that overlaps with the receive
  /// (Marsit's transient-vector generation + bit-wise combine: paper §4.1.1
  /// "reception and compression processes can take place in parallel").
  /// Counted in the compression phase but not on the critical path.
  double overlapped_seconds_per_element = 0.0;

  /// One-time per-element pack cost before the first send (sign packing).
  double initial_pack_seconds_per_element = 0.0;

  /// Per-element cost to decode the final aggregate at each worker.
  double final_unpack_seconds_per_element = 0.0;
};

// Ready-made wire formats ----------------------------------------------------

/// 32-bit float payloads, no compression cost (PSGD).
WireFormat full_precision_wire();

/// Sign-sum payloads with fixed-width ⌈log2(c+1)⌉+1 bits/element;
/// `scalars_per_message` extra floats ride along (SSDM's norms, EF's scales).
WireFormat sign_sum_wire(const CostModel& model,
                         std::size_t scalars_per_message = 0);

/// Sign-sum payloads recoded with Elias-γ.  `elias_bits_per_element(c)` must
/// return the measured average code length at contribution count c (the
/// aggregators record it from real data).
WireFormat sign_sum_elias_wire(
    const CostModel& model,
    std::function<double(std::size_t contributions)> elias_bits_per_element);

/// Marsit's constant one-bit payloads; combine overlaps with receive.
WireFormat marsit_wire(const CostModel& model);

/// Cascading compression: one-bit payload + a 32-bit norm per message, with
/// the full decompress-add-recompress on the critical path of every hop.
WireFormat cascading_wire(const CostModel& model);

// Schedules -------------------------------------------------------------------

struct CollectiveTiming {
  /// Wall-clock (simulated) seconds from start to every worker holding the
  /// final aggregate.
  double completion_seconds = 0.0;
  /// Payload bits that crossed the wire, summed over all messages.
  double total_wire_bits = 0.0;
  /// Bits sent by one (representative) worker — the per-worker communication
  /// budget axis of Figure 4b.
  double bits_per_worker = 0.0;
  /// Compression work on one worker's critical path (initial pack, per-hop
  /// serial processing, final unpack) — included in completion_seconds, so
  /// `completion − serial` is the pure communication share.
  double serial_compression_seconds_per_worker = 0.0;
  /// Compression work hidden behind receives (Marsit's ⊙ combine) — NOT part
  /// of completion_seconds.
  double overlapped_compression_seconds_per_worker = 0.0;
  /// Payload bits burned by lost attempts (fault injection): retransmitted
  /// on top of total_wire_bits.  Zero without an attached FaultPlan.
  double retransmitted_wire_bits = 0.0;
  /// Lost-and-retried transmission attempts this collective.
  std::size_t retransmissions = 0;
  /// Sum-of-stages serial reference of a pipelined collective: what the
  /// same chunks would cost run strictly pack → transfer → fold, one chunk
  /// after another (measured fault-free on a scratch simulator).  0 when
  /// the collective was not pipelined; then completion_seconds IS the
  /// serial figure.  completion_seconds <= serial_completion_seconds on
  /// every fault-free pipelined round (DESIGN.md §12).
  double serial_completion_seconds = 0.0;
  /// Chunks the pipelined composition priced (0 = unpipelined).
  std::size_t pipeline_chunks = 0;

  /// Total per-worker compression seconds — the red bars of Figures 1a/5.
  double compression_seconds_per_worker() const {
    return serial_compression_seconds_per_worker +
           overlapped_compression_seconds_per_worker;
  }
  /// The serial round figure: the sum-of-stages reference when pipelined,
  /// completion itself otherwise.
  double serial_or_completion_seconds() const {
    return serial_completion_seconds > 0.0 ? serial_completion_seconds
                                           : completion_seconds;
  }
  /// Pure transfer share of the serial decomposition (what the blue bars
  /// show).  Uses the serial reference so the phase bars of a pipelined
  /// run still sum to the serial total, with the overlap reported
  /// separately (PhaseTimes::overlapped).
  double communication_seconds() const {
    const double value =
        serial_or_completion_seconds() - serial_compression_seconds_per_worker;
    return value > 0.0 ? value : 0.0;
  }
};

/// Per-chunk lane times of one pipelined collective, all collective-local
/// seconds (the installed trace session's time_offset places them
/// globally).  pack is the sender-side sign/stochastic packing, transfer
/// the chunk's whole sub-collective on the shared fabric, fold the
/// receiver-side unpack/apply.  Surfaced on SyncStepResult so fig5-style
/// plots can draw serial vs overlapped bars from one run.
struct ChunkStageTiming {
  std::size_t chunk = 0;
  std::size_t elements = 0;
  double pack_start = 0.0;
  double pack_end = 0.0;
  /// When the chunk's payload was handed to the fabric (the transfer lane
  /// may additionally wait for NICs still busy with earlier chunks; that
  /// wait is part of [transfer_start, transfer_end]).
  double transfer_start = 0.0;
  double transfer_end = 0.0;
  double fold_start = 0.0;
  double fold_end = 0.0;
};

/// Ring all-reduce: reduce-scatter (M−1 steps) + all-gather (M−1 steps) over
/// M segments of ⌈D/M⌉ elements.  `start_time` is when every worker's
/// payload is ready (gradient computed).
CollectiveTiming ring_allreduce_timing(std::size_t num_workers, std::size_t d,
                                       const WireFormat& wire,
                                       NetworkSim& net,
                                       double start_time = 0.0);

/// 2-D torus all-reduce: row reduce-scatter, column all-reduce, row
/// all-gather (Mikami et al.).  Workers = rows×cols.
CollectiveTiming torus_allreduce_timing(std::size_t rows, std::size_t cols,
                                        std::size_t d, const WireFormat& wire,
                                        NetworkSim& net,
                                        double start_time = 0.0);

/// Parameter server: M pushes serialized through the server ingress NIC,
/// aggregation, M broadcasts serialized through its egress NIC.  The network
/// must have been built with num_workers+1 nodes (last = server).
CollectiveTiming ps_allreduce_timing(std::size_t num_workers, std::size_t d,
                                     const WireFormat& wire, NetworkSim& net,
                                     double start_time = 0.0);

/// Binomial-tree all-reduce (the paper's "can be easily extended to ...
/// tree all-reduce"): ⌈log2 M⌉ reduce levels (node i+2^l sends its
/// aggregate to node i) followed by ⌈log2 M⌉ broadcast levels.  Whole-vector
/// messages — fewer, larger transfers than the ring: wins when α dominates,
/// loses bandwidth-bound.  Reduce-level messages carry 2^l-contribution
/// aggregates, so sign-sum payloads grow just like on the ring.
CollectiveTiming tree_allreduce_timing(std::size_t num_workers, std::size_t d,
                                       const WireFormat& wire,
                                       NetworkSim& net,
                                       double start_time = 0.0);

// Pipelined composition ------------------------------------------------------

/// One chunk's sub-collective: schedule a full collective for `elements`
/// elements on `net`, with every worker's (already packed) payload ready at
/// `start_time`.  The pipelined composition invokes it with a wire format
/// whose initial-pack and final-unpack rates are zeroed — those phases live
/// in the pack and fold lanes.  `chunk_index` is the chunk's position in the
/// ShardPlan grid so mixed-geometry chunk plans (e.g. a different topology
/// or schedule per chunk) are expressible; uniform callers ignore it.
using ChunkCollectiveFn = std::function<CollectiveTiming(
    std::size_t chunk_index, std::size_t elements, const WireFormat& wire,
    NetworkSim& net, double start_time)>;

/// Prices a d-element collective as a chunked three-lane pipeline
/// (DESIGN.md §12).  The chunk grid is ShardPlan(d, chunk_elements) — the
/// same grid the execution pipeline shards over.  Lanes:
///
///   pack:     one worker packs chunks in order;
///             pack_end(c) = max(pack_end(c−1), chunk_ready[c]) + pack·n_c
///   transfer: chunk c's whole sub-collective issued on the *shared* `net`
///             at pack_end(c) — NICs still draining chunk c−1 delay it
///             naturally, and the attached fault plan applies per
///             chunk-message (a retry stalls only that chunk's slot)
///   fold:     unpacks finished chunks in order;
///             fold_end(c) = max(transfer_end(c), fold_end(c−1)) + unpack·n_c
///
/// completion_seconds is fold_end(last) — the max-of-stages round time.
/// serial_completion_seconds is Σ_c (pack·n_c + T_serial(c) + unpack·n_c)
/// with T_serial measured fault-free on a scratch simulator: the strictly
/// sequential sum-of-stages reference over the same chunks (readiness gaps
/// from `chunk_ready` are excluded — callers modelling compute add it to
/// the serial figure themselves).  The serial reference is cached per chunk
/// *geometry* — element count plus the live run's observed hop count and
/// wire bits — so two same-size chunks scheduled over different topologies
/// each get their own measurement.
///
/// `chunk_ready` (optional, else all 0) gives per-chunk payload readiness —
/// e.g. per-bucket gradient availability — letting pack overlap compute.
/// Emits per-chunk "stage" trace spans on three lanes above the fabric-node
/// tracks when a trace session is installed.  Outputs of the round are
/// unaffected: this function only prices time.
CollectiveTiming pipelined_collective_timing(
    std::size_t d, std::size_t chunk_elements, const WireFormat& wire,
    NetworkSim& net, const ChunkCollectiveFn& collective,
    std::span<const double> chunk_ready = {},
    std::vector<ChunkStageTiming>* stages_out = nullptr);

}  // namespace marsit
