#include "collectives/timing.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "compress/sign_sum.hpp"
#include "net/crc32.hpp"
#include "obs/trace.hpp"
#include "parallel/shard.hpp"
#include "util/check.hpp"

namespace marsit {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Emits a "phase" span on the schedule track when tracing is on.  Times
/// are collective-local; the installed session's time_offset places them on
/// the global simulated timeline (see obs/trace.hpp).
void trace_phase(const char* name, double local_start, double local_end) {
  if (obs::TraceSession* trace = obs::TraceSession::current()) {
    const double offset = trace->time_offset();
    trace->add_span(name, "phase", offset + local_start, offset + local_end,
                    /*track=*/0);
  }
}

double max_ready(const std::vector<double>& ready, double floor) {
  double done = floor;
  for (const double r : ready) {
    done = std::max(done, r);
  }
  return done;
}

double rate_to_seconds(double rate) {
  MARSIT_CHECK(rate > 0) << "cost-model rate must be positive";
  return 1.0 / rate;
}

/// Snapshot of the simulator's retransmission counters at schedule entry;
/// the delta at exit is what this collective burned on lost attempts.
struct RetransBaseline {
  explicit RetransBaseline(const NetworkSim& net)
      : bytes(net.retransmitted_bytes()),
        count(net.retransmissions()),
        messages(net.total_messages()) {}

  void record_into(CollectiveTiming& timing, const NetworkSim& net) const {
    timing.retransmitted_wire_bits =
        (net.retransmitted_bytes() - bytes) * 8.0;
    timing.retransmissions = net.retransmissions() - count;
    // Wire integrity under corruption faults appends a CRC32 footer to every
    // delivered message (network_sim.cpp charges it per attempt).  The
    // schedule loops above sum payload bits only, so the footer of each
    // *successful* delivery is charged here, exactly once per message;
    // retried attempts' footers already live in retransmitted_wire_bits.
    const FaultPlan* plan = net.fault_plan();
    if (plan != nullptr && plan->corruption_rate > 0.0) {
      timing.total_wire_bits += kCrcFooterBits *
          static_cast<double>(net.total_messages() - messages);
    }
  }

  double bytes;
  std::size_t count;
  std::size_t messages;
};

}  // namespace

WireFormat full_precision_wire() {
  WireFormat wire;
  wire.reduce_bits = [](std::size_t elements, std::size_t) {
    return 32.0 * static_cast<double>(elements);
  };
  wire.gather_bits = [](std::size_t elements) {
    return 32.0 * static_cast<double>(elements);
  };
  return wire;
}

WireFormat sign_sum_wire(const CostModel& model,
                         std::size_t scalars_per_message) {
  WireFormat wire;
  const double extra = 32.0 * static_cast<double>(scalars_per_message);
  wire.reduce_bits = [extra](std::size_t elements,
                             std::size_t contributions) {
    return static_cast<double>(elements) *
               static_cast<double>(sign_sum_bits_per_element(contributions)) +
           extra;
  };
  wire.gather_bits = [extra](std::size_t elements) {
    // The gather phase broadcasts the final majority/mean decision as one
    // bit per element (the sums are no longer needed once finalized).
    return static_cast<double>(elements) + extra;
  };
  wire.initial_pack_seconds_per_element = rate_to_seconds(model.sign_pack_rate);
  // Integer accumulate per received element, off the critical path is not
  // possible for sums (the add must finish before forwarding), but it is
  // cheap; model it as serial.
  wire.serial_seconds_per_element = rate_to_seconds(model.sign_unpack_rate);
  wire.final_unpack_seconds_per_element =
      rate_to_seconds(model.sign_unpack_rate);
  return wire;
}

WireFormat sign_sum_elias_wire(
    const CostModel& model,
    std::function<double(std::size_t contributions)> elias_bits_per_element) {
  WireFormat wire;
  auto bits_fn = std::move(elias_bits_per_element);
  wire.reduce_bits = [bits_fn](std::size_t elements,
                               std::size_t contributions) {
    return static_cast<double>(elements) * bits_fn(contributions);
  };
  wire.gather_bits = [](std::size_t elements) {
    return static_cast<double>(elements);
  };
  wire.initial_pack_seconds_per_element = rate_to_seconds(model.sign_pack_rate);
  // Elias decode + integer add + Elias re-encode sits on the hop critical
  // path, like any transcoding step.
  wire.serial_seconds_per_element =
      2.0 * rate_to_seconds(model.elias_code_rate);
  wire.final_unpack_seconds_per_element =
      rate_to_seconds(model.sign_unpack_rate);
  return wire;
}

WireFormat marsit_wire(const CostModel& model) {
  WireFormat wire;
  wire.reduce_bits = [](std::size_t elements, std::size_t) {
    return static_cast<double>(elements);
  };
  wire.gather_bits = [](std::size_t elements) {
    return static_cast<double>(elements);
  };
  wire.initial_pack_seconds_per_element = rate_to_seconds(model.sign_pack_rate);
  // The ⊙ combine (transient Bernoulli word + three logical word ops)
  // overlaps with the receive — the paper's key pipelining claim.
  wire.overlapped_seconds_per_element =
      rate_to_seconds(model.one_bit_combine_rate);
  wire.final_unpack_seconds_per_element =
      rate_to_seconds(model.sign_unpack_rate);
  return wire;
}

WireFormat cascading_wire(const CostModel& model) {
  WireFormat wire;
  wire.reduce_bits = [](std::size_t elements, std::size_t) {
    return static_cast<double>(elements) + 32.0;  // sign bits + ℓ2 norm
  };
  wire.gather_bits = [](std::size_t elements) {
    return static_cast<double>(elements) + 32.0;
  };
  wire.initial_pack_seconds_per_element =
      rate_to_seconds(model.stochastic_sign_rate);
  // Decompress + add + renorm + stochastic recompress on every hop, fully
  // serial: the next hop cannot start until the recompressed segment exists.
  wire.serial_seconds_per_element =
      rate_to_seconds(model.cascade_recompress_rate);
  wire.final_unpack_seconds_per_element =
      rate_to_seconds(model.sign_unpack_rate);
  return wire;
}

CollectiveTiming ring_allreduce_timing(std::size_t num_workers, std::size_t d,
                                       const WireFormat& wire,
                                       NetworkSim& net, double start_time) {
  const std::size_t m = num_workers;
  MARSIT_CHECK(m >= 2) << "ring all-reduce needs >= 2 workers";
  MARSIT_CHECK(net.num_nodes() >= m) << "network smaller than worker count";
  MARSIT_CHECK(d >= 1) << "empty gradient";

  const std::size_t seg_len = ceil_div(d, m);
  const double seg = static_cast<double>(seg_len);

  CollectiveTiming timing;
  const RetransBaseline retrans(net);

  // Reduce-scatter.  Segment `s` starts at worker (s+1) mod M and is folded
  // once per hop until it completes at worker s with M contributions.
  std::vector<double> ready(m);
  for (std::size_t s = 0; s < m; ++s) {
    ready[s] = start_time + wire.initial_pack_seconds_per_element * seg;
  }
  for (std::size_t step = 0; step + 1 < m; ++step) {
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t holder = (s + 1 + step) % m;
      const std::size_t next = (holder + 1) % m;
      const double bits = wire.reduce_bits(seg_len, step + 1);
      const double arrival = net.transfer_bits(holder, next, bits, ready[s]);
      ready[s] = arrival + wire.serial_seconds_per_element * seg;
      timing.total_wire_bits += bits;
    }
  }
  const double reduce_done = max_ready(ready, start_time);
  trace_phase("reduce-scatter", start_time, reduce_done);

  // All-gather.  Finalized segment s leaves worker s and circulates M−1 hops.
  for (std::size_t step = 0; step + 1 < m; ++step) {
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t holder = (s + step) % m;
      const std::size_t next = (holder + 1) % m;
      const double bits = wire.gather_bits(seg_len);
      const double arrival = net.transfer_bits(holder, next, bits, ready[s]);
      ready[s] = arrival;
      timing.total_wire_bits += bits;
    }
  }

  const double last_arrival = max_ready(ready, start_time);
  trace_phase("all-gather", reduce_done, last_arrival);
  const double dd = static_cast<double>(d);
  timing.completion_seconds =
      last_arrival + wire.final_unpack_seconds_per_element * dd - start_time;
  timing.bits_per_worker = timing.total_wire_bits / static_cast<double>(m);
  // Critical path carries the first segment's pack, every hop's serial
  // processing, and the final unpack; packing the remaining segments and the
  // ⊙-style combines hide behind transfers.
  timing.serial_compression_seconds_per_worker =
      wire.initial_pack_seconds_per_element * seg +
      static_cast<double>(m - 1) * seg * wire.serial_seconds_per_element +
      wire.final_unpack_seconds_per_element * dd;
  timing.overlapped_compression_seconds_per_worker =
      wire.initial_pack_seconds_per_element * (dd - seg) +
      static_cast<double>(m - 1) * seg * wire.overlapped_seconds_per_element;
  retrans.record_into(timing, net);
  return timing;
}

CollectiveTiming torus_allreduce_timing(std::size_t rows, std::size_t cols,
                                        std::size_t d, const WireFormat& wire,
                                        NetworkSim& net, double start_time) {
  MARSIT_CHECK(rows >= 2 && cols >= 2) << "torus needs rows, cols >= 2";
  MARSIT_CHECK(net.num_nodes() >= rows * cols)
      << "network smaller than torus";
  MARSIT_CHECK(d >= 1) << "empty gradient";

  const Topology topo = Topology::torus2d(rows, cols);
  const std::size_t len_a = ceil_div(d, cols);          // row-phase chunk
  const std::size_t len_b = ceil_div(len_a, rows);      // column sub-chunk
  const double seg_a = static_cast<double>(len_a);
  const double seg_b = static_cast<double>(len_b);

  CollectiveTiming timing;
  const RetransBaseline retrans(net);

  // Phase A: reduce-scatter along each row ring (cols segments of len_a).
  // ready_a[r][c]: when node (r,c)'s finished chunk c is available.
  std::vector<std::vector<double>> ready_a(
      rows, std::vector<double>(cols, 0.0));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> ready(cols,
                              start_time +
                                  wire.initial_pack_seconds_per_element *
                                      seg_a);
    for (std::size_t step = 0; step + 1 < cols; ++step) {
      for (std::size_t s = 0; s < cols; ++s) {
        const std::size_t holder = topo.torus_node(r, (s + 1 + step) % cols);
        const std::size_t next = topo.torus_node(r, (s + 2 + step) % cols);
        const double bits = wire.reduce_bits(len_a, step + 1);
        const double arrival = net.transfer_bits(holder, next, bits, ready[s]);
        ready[s] = arrival + wire.serial_seconds_per_element * seg_a;
        timing.total_wire_bits += bits;
      }
    }
    for (std::size_t c = 0; c < cols; ++c) {
      ready_a[r][c] = ready[c];
    }
  }
  double phase_a_done = start_time;
  for (const auto& row : ready_a) {
    phase_a_done = max_ready(row, phase_a_done);
  }
  trace_phase("row reduce-scatter", start_time, phase_a_done);

  // Phase B: all-reduce along each column ring over the len_a chunk
  // (reduce-scatter into rows sub-chunks of len_b, then all-gather).  A
  // message at column step `step` merges aggregates of cols·(step+1)
  // worker contributions.
  std::vector<std::vector<double>> ready_b(
      rows, std::vector<double>(cols, 0.0));
  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<double> ready(rows);
    for (std::size_t s = 0; s < rows; ++s) {
      ready[s] = ready_a[(s + 1) % rows][c];
    }
    for (std::size_t step = 0; step + 1 < rows; ++step) {
      for (std::size_t s = 0; s < rows; ++s) {
        const std::size_t holder = topo.torus_node((s + 1 + step) % rows, c);
        const std::size_t next = topo.torus_node((s + 2 + step) % rows, c);
        const double bits = wire.reduce_bits(len_b, cols * (step + 1));
        const double arrival = net.transfer_bits(holder, next, bits, ready[s]);
        ready[s] = arrival + wire.serial_seconds_per_element * seg_b;
        timing.total_wire_bits += bits;
      }
    }
    // Column all-gather of finalized sub-chunks.
    for (std::size_t step = 0; step + 1 < rows; ++step) {
      for (std::size_t s = 0; s < rows; ++s) {
        const std::size_t holder = topo.torus_node((s + step) % rows, c);
        const std::size_t next = topo.torus_node((s + 1 + step) % rows, c);
        const double bits = wire.gather_bits(len_b);
        const double arrival = net.transfer_bits(holder, next, bits, ready[s]);
        ready[s] = arrival;
        timing.total_wire_bits += bits;
      }
    }
    // Node (r,c) has its full finalized len_a chunk when every sub-chunk has
    // passed through it; the chain structure guarantees that is the max of
    // the sub-chunk completion times.
    double done = 0.0;
    for (std::size_t s = 0; s < rows; ++s) {
      done = std::max(done, ready[s]);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      ready_b[r][c] = done;
    }
  }
  double phase_b_done = start_time;
  for (const auto& row : ready_b) {
    phase_b_done = max_ready(row, phase_b_done);
  }
  trace_phase("column all-reduce", phase_a_done, phase_b_done);

  // Phase C: all-gather along each row ring (cols chunks of len_a).
  double last_arrival = start_time;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> ready(cols);
    for (std::size_t s = 0; s < cols; ++s) {
      ready[s] = ready_b[r][s];
    }
    for (std::size_t step = 0; step + 1 < cols; ++step) {
      for (std::size_t s = 0; s < cols; ++s) {
        const std::size_t holder = topo.torus_node(r, (s + step) % cols);
        const std::size_t next = topo.torus_node(r, (s + 1 + step) % cols);
        const double bits = wire.gather_bits(len_a);
        const double arrival = net.transfer_bits(holder, next, bits, ready[s]);
        ready[s] = arrival;
        timing.total_wire_bits += bits;
      }
    }
    for (std::size_t s = 0; s < cols; ++s) {
      last_arrival = std::max(last_arrival, ready[s]);
    }
  }
  trace_phase("row all-gather", phase_b_done, last_arrival);

  const double dd = static_cast<double>(d);
  const std::size_t m = rows * cols;
  timing.completion_seconds =
      last_arrival + wire.final_unpack_seconds_per_element * dd - start_time;
  timing.bits_per_worker = timing.total_wire_bits / static_cast<double>(m);
  const double hop_elems = static_cast<double>(cols - 1) * seg_a +
                           static_cast<double>(rows - 1) * seg_b;
  timing.serial_compression_seconds_per_worker =
      wire.initial_pack_seconds_per_element * seg_a +
      hop_elems * wire.serial_seconds_per_element +
      wire.final_unpack_seconds_per_element * dd;
  timing.overlapped_compression_seconds_per_worker =
      wire.initial_pack_seconds_per_element * (dd - seg_a) +
      hop_elems * wire.overlapped_seconds_per_element;
  retrans.record_into(timing, net);
  return timing;
}

CollectiveTiming ps_allreduce_timing(std::size_t num_workers, std::size_t d,
                                     const WireFormat& wire, NetworkSim& net,
                                     double start_time) {
  const std::size_t m = num_workers;
  MARSIT_CHECK(m >= 1) << "PS needs at least one worker";
  MARSIT_CHECK(net.num_nodes() >= m + 1)
      << "PS network needs num_workers+1 nodes";
  MARSIT_CHECK(d >= 1) << "empty gradient";

  const std::size_t server = m;  // by convention the last node
  const double dd = static_cast<double>(d);

  CollectiveTiming timing;
  const RetransBaseline retrans(net);

  // Push: every worker sends its whole (single-contribution) payload; the
  // server ingress NIC serializes them.
  double all_pushed = start_time;
  for (std::size_t w = 0; w < m; ++w) {
    const double ready =
        start_time + wire.initial_pack_seconds_per_element * dd;
    const double bits = wire.reduce_bits(d, 1);
    const double arrival =
        net.transfer_bits(w, server, bits, ready, /*server_endpoint=*/true);
    all_pushed = std::max(all_pushed, arrival);
    timing.total_wire_bits += bits;
  }

  trace_phase("push", start_time, all_pushed);

  // Server-side aggregation of M payloads.
  const double aggregated =
      all_pushed +
      wire.serial_seconds_per_element * dd * static_cast<double>(m);
  trace_phase("server aggregate", all_pushed, aggregated);

  // Broadcast: serialized through the server egress NIC.
  double last_arrival = aggregated;
  const double down_bits = wire.gather_bits(d);
  for (std::size_t w = 0; w < m; ++w) {
    const double arrival = net.transfer_bits(server, w, down_bits, aggregated,
                                             /*server_endpoint=*/true);
    last_arrival = std::max(last_arrival, arrival);
    timing.total_wire_bits += down_bits;
  }
  trace_phase("broadcast", aggregated, last_arrival);

  timing.completion_seconds =
      last_arrival + wire.final_unpack_seconds_per_element * dd - start_time;
  timing.bits_per_worker = timing.total_wire_bits / static_cast<double>(m);
  // PS workers pack the whole payload before pushing (no segment
  // pipelining) and unpack the broadcast at the end: all serial.
  timing.serial_compression_seconds_per_worker =
      wire.initial_pack_seconds_per_element * dd +
      wire.final_unpack_seconds_per_element * dd;
  retrans.record_into(timing, net);
  return timing;
}

CollectiveTiming tree_allreduce_timing(std::size_t num_workers, std::size_t d,
                                       const WireFormat& wire,
                                       NetworkSim& net, double start_time) {
  const std::size_t m = num_workers;
  MARSIT_CHECK(m >= 2) << "tree all-reduce needs >= 2 workers";
  MARSIT_CHECK(net.num_nodes() >= m) << "network smaller than worker count";
  MARSIT_CHECK(d >= 1) << "empty gradient";

  const double dd = static_cast<double>(d);
  CollectiveTiming timing;
  const RetransBaseline retrans(net);

  // ready[w]: when worker w's current aggregate is available;
  // weight[w]: how many workers that aggregate stands for.
  std::vector<double> ready(m,
                            start_time +
                                wire.initial_pack_seconds_per_element * dd);
  std::vector<std::size_t> weight(m, 1);
  std::size_t levels = 0;

  // Reduce: at level l, node i+2^l (for i multiple of 2^(l+1)) sends its
  // whole aggregate to node i.
  for (std::size_t stride = 1; stride < m; stride *= 2) {
    ++levels;
    for (std::size_t i = 0; i + stride < m; i += 2 * stride) {
      const std::size_t src = i + stride;
      const double bits = wire.reduce_bits(d, weight[src]);
      const double arrival = net.transfer_bits(
          src, i, bits, std::max(ready[i], ready[src]));
      ready[i] = arrival + wire.serial_seconds_per_element * dd;
      weight[i] += weight[src];
      timing.total_wire_bits += bits;
    }
  }
  const double reduce_done = max_ready(ready, start_time);
  trace_phase("tree reduce", start_time, reduce_done);

  // Broadcast the finalized aggregate back down the same tree (largest
  // reduce stride first).
  for (std::size_t stride = std::bit_floor(m - 1); stride >= 1;
       stride /= 2) {
    for (std::size_t i = 0; i + stride < m; i += 2 * stride) {
      const double bits = wire.gather_bits(d);
      const double arrival = net.transfer_bits(i, i + stride, bits, ready[i]);
      ready[i + stride] = arrival;
      timing.total_wire_bits += bits;
    }
    if (stride == 1) {
      break;
    }
  }

  double last_arrival = start_time;
  for (std::size_t w = 0; w < m; ++w) {
    last_arrival = std::max(last_arrival, ready[w]);
  }
  timing.completion_seconds =
      last_arrival + wire.final_unpack_seconds_per_element * dd - start_time;
  timing.bits_per_worker = timing.total_wire_bits / static_cast<double>(m);
  // Interior nodes fold up to ⌈log2 M⌉ aggregates; charge the root's share
  // as the representative worker.
  timing.serial_compression_seconds_per_worker =
      wire.initial_pack_seconds_per_element * dd +
      static_cast<double>(levels) * dd * wire.serial_seconds_per_element +
      wire.final_unpack_seconds_per_element * dd;
  timing.overlapped_compression_seconds_per_worker =
      static_cast<double>(levels) * dd * wire.overlapped_seconds_per_element;
  retrans.record_into(timing, net);
  return timing;
}

namespace {

/// Temporarily uninstalls the trace session.  The pipelined composition's
/// serial-reference measurement replays every chunk on a scratch simulator;
/// without this guard those phantom schedules would emit phase/hop spans.
class TraceSuppressScope {
 public:
  TraceSuppressScope() : saved_(obs::TraceSession::current()) {
    obs::TraceSession::install(nullptr);
  }
  ~TraceSuppressScope() { obs::TraceSession::install(saved_); }
  TraceSuppressScope(const TraceSuppressScope&) = delete;
  TraceSuppressScope& operator=(const TraceSuppressScope&) = delete;

 private:
  obs::TraceSession* saved_;
};

/// Emits one pipeline-lane span ("stage" category).  Lane tracks sit above
/// the fabric-node tracks: 1 + num_nodes + lane.
void trace_stage(const char* name, std::size_t chunk, double local_start,
                 double local_end, std::size_t num_nodes, std::size_t lane) {
  if (obs::TraceSession* trace = obs::TraceSession::current()) {
    const double offset = trace->time_offset();
    trace->add_span(std::string(name) + " chunk " + std::to_string(chunk),
                    "stage", offset + local_start, offset + local_end,
                    static_cast<std::uint32_t>(1 + num_nodes + lane));
  }
}

}  // namespace

CollectiveTiming pipelined_collective_timing(
    std::size_t d, std::size_t chunk_elements, const WireFormat& wire,
    NetworkSim& net, const ChunkCollectiveFn& collective,
    std::span<const double> chunk_ready,
    std::vector<ChunkStageTiming>* stages_out) {
  const ShardPlan plan(d, chunk_elements);
  const std::size_t num_chunks = plan.num_chunks();
  MARSIT_CHECK(num_chunks >= 1) << "pipelined timing over an empty payload";
  MARSIT_CHECK(chunk_ready.empty() || chunk_ready.size() == num_chunks)
      << "chunk_ready carries " << chunk_ready.size() << " entries for "
      << num_chunks << " chunks";

  // Pack and fold live in their own lanes; the sub-collectives must not
  // charge them again.
  WireFormat wire_chunk = wire;
  wire_chunk.initial_pack_seconds_per_element = 0.0;
  wire_chunk.final_unpack_seconds_per_element = 0.0;

  // Serial reference: the same chunk on a fresh, fault-free fabric.  Cached
  // per chunk *geometry*, not per element count alone — a ChunkCollectiveFn
  // may dispatch different topologies/schedules by chunk index, and two
  // same-size chunks on different schedules must not share a serial time.
  // The key is the geometry fingerprint observed on the live run: element
  // count, hop (message) count, and wire bits, which together pin topology,
  // schedule shape, and payload width without callers having to declare
  // them.  For uniform plans this still collapses to at most two entries
  // (body and tail).
  NetworkSim scratch(net.num_nodes(), net.cost_model());
  using SerialKey = std::tuple<std::size_t, std::size_t, double>;
  std::map<SerialKey, double> serial_cache;
  const auto serial_transfer_seconds = [&](std::size_t chunk_index,
                                           std::size_t elements,
                                           std::size_t live_messages,
                                           double live_wire_bits) {
    const SerialKey key{elements, live_messages, live_wire_bits};
    const auto found = serial_cache.find(key);
    if (found != serial_cache.end()) {
      return found->second;
    }
    const TraceSuppressScope quiet;
    scratch.reset();
    const double seconds =
        collective(chunk_index, elements, wire_chunk, scratch, 0.0)
            .completion_seconds;
    serial_cache.emplace(key, seconds);
    return seconds;
  };

  const double pack_spe = wire.initial_pack_seconds_per_element;
  const double unpack_spe = wire.final_unpack_seconds_per_element;

  CollectiveTiming total;
  if (stages_out != nullptr) {
    stages_out->clear();
    stages_out->reserve(num_chunks);
  }
  double pack_cursor = 0.0;
  double fold_cursor = 0.0;
  double serial_total = 0.0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const Shard shard = plan.chunk(c);
    const double n = static_cast<double>(shard.size());

    ChunkStageTiming stage;
    stage.chunk = c;
    stage.elements = shard.size();
    const double ready = chunk_ready.empty() ? 0.0 : chunk_ready[c];
    stage.pack_start = std::max(pack_cursor, ready);
    stage.pack_end = stage.pack_start + pack_spe * n;
    pack_cursor = stage.pack_end;

    // The shared simulator serializes this chunk behind whatever NIC time
    // earlier chunks still hold, and applies the attached fault plan per
    // chunk-message — a lost chunk-message's retry stalls only this slot.
    const std::size_t messages_before = net.total_messages();
    const CollectiveTiming t =
        collective(c, shard.size(), wire_chunk, net, stage.pack_end);
    const std::size_t chunk_messages = net.total_messages() - messages_before;
    stage.transfer_start = stage.pack_end;
    stage.transfer_end = stage.pack_end + t.completion_seconds;

    stage.fold_start = std::max(stage.transfer_end, fold_cursor);
    stage.fold_end = stage.fold_start + unpack_spe * n;
    fold_cursor = stage.fold_end;

    serial_total += pack_spe * n +
                    serial_transfer_seconds(c, shard.size(), chunk_messages,
                                            t.total_wire_bits) +
                    unpack_spe * n;

    total.total_wire_bits += t.total_wire_bits;
    total.bits_per_worker += t.bits_per_worker;
    total.retransmitted_wire_bits += t.retransmitted_wire_bits;
    total.retransmissions += t.retransmissions;
    // With pack/unpack zeroed in wire_chunk the sub-collective's serial
    // share is the per-hop processing only; the pack and fold lanes are
    // this worker's remaining critical-path compression work.
    total.serial_compression_seconds_per_worker +=
        pack_spe * n + t.serial_compression_seconds_per_worker +
        unpack_spe * n;
    total.overlapped_compression_seconds_per_worker +=
        t.overlapped_compression_seconds_per_worker;

    trace_stage("pack", c, stage.pack_start, stage.pack_end, net.num_nodes(),
                0);
    trace_stage("transfer", c, stage.transfer_start, stage.transfer_end,
                net.num_nodes(), 1);
    trace_stage("fold", c, stage.fold_start, stage.fold_end, net.num_nodes(),
                2);
    if (stages_out != nullptr) {
      stages_out->push_back(stage);
    }
  }

  total.completion_seconds = fold_cursor;
  total.serial_completion_seconds = serial_total;
  total.pipeline_chunks = num_chunks;
  return total;
}

}  // namespace marsit
