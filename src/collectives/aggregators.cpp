#include "collectives/aggregators.hpp"

#include <cmath>

#include "compress/elias.hpp"
#include "compress/sign_codec.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

namespace {

void check_inputs(const WorkerSpans& inputs, std::size_t out_size) {
  MARSIT_CHECK(!inputs.empty()) << "aggregate over zero workers";
  for (const auto& in : inputs) {
    MARSIT_CHECK(in.size() == out_size)
        << "worker extent " << in.size() << " vs output " << out_size;
  }
}

}  // namespace

void aggregate_mean(const WorkerSpans& inputs, std::span<float> out) {
  check_inputs(inputs, out.size());
  zero(out);
  for (const auto& in : inputs) {
    axpy(1.0f, in, out);
  }
  scale(out, 1.0f / static_cast<float>(inputs.size()));
}

SignSumAggregate aggregate_sign_sum(const std::vector<BitVector>& signs,
                                    bool record_elias_sizes) {
  MARSIT_CHECK(!signs.empty()) << "aggregate over zero workers";
  SignSumAggregate result;
  result.sum = SignSum(signs.front().size());
  for (const auto& bits : signs) {
    result.sum.accumulate(bits);
    if (record_elias_sizes) {
      result.elias_bits_per_element.push_back(
          static_cast<double>(result.sum.wire_bits_elias()) /
          static_cast<double>(result.sum.size()));
    }
  }
  return result;
}

std::vector<double> measure_elias_bits_per_element(
    const std::vector<BitVector>& signs, const SignSum* final_sum) {
  MARSIT_CHECK(!signs.empty()) << "measure over zero workers";
  const auto bits_per_element = [](const SignSum& sum) {
    return static_cast<double>(sum.wire_bits_elias()) /
           static_cast<double>(sum.size());
  };
  std::vector<double> sizes;
  sizes.reserve(signs.size());
  if (final_sum != nullptr) {
    MARSIT_CHECK(final_sum->size() == signs.front().size() &&
                 final_sum->contributions() == signs.size())
        << "final sum (" << final_sum->size() << " elements, "
        << final_sum->contributions() << " contributions) does not match "
        << signs.size() << " sign vectors of " << signs.front().size();
  }
  SignSum partial(signs.front().size());
  for (std::size_t c = 0; c < signs.size(); ++c) {
    if (final_sum != nullptr && c + 1 == signs.size()) {
      sizes.push_back(bits_per_element(*final_sum));
      break;
    }
    partial.accumulate(signs[c]);
    sizes.push_back(bits_per_element(partial));
  }
  return sizes;
}

void cascading_aggregate(const WorkerSpans& inputs, Rng& rng,
                         std::span<float> out, CascadeDecode decode) {
  check_inputs(inputs, out.size());
  const float decode_factor =
      decode == CascadeDecode::kUnbiased
          ? 1.0f
          : 1.0f / std::sqrt(static_cast<float>(out.size()));
  // `out` doubles as the running decompressed state w.
  zero(out);
  std::vector<float> assembled(out.size());
  for (const auto& in : inputs) {
    // Aggregate: w + v (w is the decoded value of the previous hop's
    // compressed message; zero at the chain head).
    add(out, in, {assembled.data(), assembled.size()});
    // Compress: Q(w + v) = ‖·‖₂ · stochastic-sign(·); Recover for the next
    // hop's aggregation.
    const float norm = ssdm_norm({assembled.data(), assembled.size()});
    const BitVector bits = ssdm_pack({assembled.data(), assembled.size()}, rng);
    unpack_signs(bits, norm * decode_factor, out);
  }
  scale(out, 1.0f / static_cast<float>(inputs.size()));
}

void ssdm_ps_aggregate(const WorkerSpans& inputs, Rng& rng,
                       std::span<float> out) {
  check_inputs(inputs, out.size());
  zero(out);
  for (const auto& in : inputs) {
    const float norm = ssdm_norm(in);
    const BitVector bits = ssdm_pack(in, rng);
    accumulate_signs(bits, norm, out);
  }
  scale(out, 1.0f / static_cast<float>(inputs.size()));
}

double sign_matching_rate(std::span<const float> reference,
                          std::span<const float> value) {
  MARSIT_CHECK(reference.size() == value.size() && !reference.empty())
      << "matching rate over mismatched/empty spans";
  std::size_t matches = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const bool ref_positive = reference[i] >= 0.0f;
    const bool val_positive = value[i] >= 0.0f;
    if (ref_positive == val_positive) {
      ++matches;
    }
  }
  return static_cast<double>(matches) / static_cast<double>(reference.size());
}

double weighted_sign_matching_rate(std::span<const float> reference,
                                   std::span<const float> value) {
  MARSIT_CHECK(reference.size() == value.size() && !reference.empty())
      << "matching rate over mismatched/empty spans";
  double matched_mass = 0.0;
  double total_mass = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double weight = std::fabs(static_cast<double>(reference[i]));
    total_mass += weight;
    const bool ref_positive = reference[i] >= 0.0f;
    const bool val_positive = value[i] >= 0.0f;
    if (ref_positive == val_positive) {
      matched_mass += weight;
    }
  }
  MARSIT_CHECK(total_mass > 0.0) << "all-zero reference vector";
  return matched_mass / total_mass;
}

}  // namespace marsit
