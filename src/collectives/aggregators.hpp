// Aggregation data planes for the baseline synchronization methods.
//
// These compute the *values* an all-reduce produces; the matching timing
// comes from collectives/timing.hpp (see the decoupling note there).  The
// Marsit one-bit data plane lives in src/core — it is the paper's
// contribution, not a baseline.
//
// All functions take one span per worker, of equal extent D.
#pragma once

#include <span>
#include <vector>

#include "compress/bit_vector.hpp"
#include "compress/sign_sum.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace marsit {

using WorkerSpans = std::vector<std::span<const float>>;

/// Exact mean of the workers' vectors (PSGD / full-precision rounds).
void aggregate_mean(const WorkerSpans& inputs, std::span<float> out);

/// Folds per-worker sign bit-vectors into a sign-sum, optionally recording
/// the measured Elias-γ bits/element after each contribution (used by the
/// Elias wire format; costs one encode pass per contribution, so callers
/// sample it rather than running it every round).
struct SignSumAggregate {
  SignSum sum;
  /// elias_bits_per_element[c-1] = measured γ-code bits per element when the
  /// sum carries c contributions.  Empty unless requested.
  std::vector<double> elias_bits_per_element;
};

SignSumAggregate aggregate_sign_sum(const std::vector<BitVector>& signs,
                                    bool record_elias_sizes = false);

/// Measures the Elias-γ bits/element of the growing sign-sum at every
/// contribution count 1..M without handing back an aggregate — the
/// size-measurement half of aggregate_sign_sum, for callers whose sum was
/// already computed elsewhere (the sharded majority pipeline).  When
/// `final_sum` is non-null it must be the full M-contribution sum of
/// `signs`; the last entry is then measured from it directly and the final
/// accumulate is skipped (the sum is reused, not re-folded).  Entries are
/// bit-identical to aggregate_sign_sum(signs, true).elias_bits_per_element.
std::vector<double> measure_elias_bits_per_element(
    const std::vector<BitVector>& signs, const SignSum* final_sum = nullptr);

/// How a cascading hop decodes the incoming (norm, signs) message.
enum class CascadeDecode {
  /// Appendix A's s₃ exactly: element = ±‖w‖₂.  Unbiased, but the decoded
  /// norm multiplies by √D per hop, so the deviation explodes as Theorem 3
  /// proves — usable for the theory bench, unusable for training.
  kUnbiased,
  /// Element = ±‖w‖₂/√D: preserves the vector norm at the cost of a 1/√D
  /// signal attenuation per hop.  This is what a deployable implementation
  /// must do, and it reproduces Table 1's behaviour (trains poorly at M=3,
  /// collapses as M grows) without numeric blow-up.
  kNormPreserving,
};

/// Cascading compression over a ring (the paper's Section 3.2 baseline):
///   state ← Q(state_decoded + s_m) at every hop, Q = SSDM's stochastic
///   sign with its ℓ2 norm; the final update is the decoded outermost Q
///   divided by M.
void cascading_aggregate(const WorkerSpans& inputs, Rng& rng,
                         std::span<float> out,
                         CascadeDecode decode = CascadeDecode::kNormPreserving);

/// SSDM under a parameter server (Appendix A's s₂): mean of Q(s_m).  Used by
/// the deviation bench that reproduces Theorems 2/3.
void ssdm_ps_aggregate(const WorkerSpans& inputs, Rng& rng,
                       std::span<float> out);

/// Fraction of elements whose sign matches between `reference` and `value`
/// (zero treated as +, consistent with pack_signs).  Figure 1b's metric.
double sign_matching_rate(std::span<const float> reference,
                          std::span<const float> value);

/// Sign matching rate with each element weighted by |reference_i| — the
/// magnitude-weighted variant, which measures how well the aggregate tracks
/// the gradient mass rather than the coordinate count (real gradients are
/// heavy-tailed, so this is the optimization-relevant number).
double weighted_sign_matching_rate(std::span<const float> reference,
                                   std::span<const float> value);

}  // namespace marsit
