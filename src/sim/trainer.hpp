// DistributedTrainer — the end-to-end training simulator.
//
// Simulates M workers doing data-parallel training with a pluggable
// synchronization strategy (Marsit or any baseline):
//
//   * every worker owns a full model replica, initialized from the same seed
//     (bit-identical start) and updated with the identical global update
//     every round, so replicas stay consistent — exactly the MAR invariant;
//   * per round, workers draw i.i.d. minibatches (the paper's shuffled-cloud
//     data assumption), compute real gradients (forward/backward on the
//     synthetic datasets), run their local optimizer (Momentum/Adam/SGD) and
//     scale by the local stepsize;
//   * the SyncStrategy aggregates and returns both the global update and the
//     round's simulated timing (communication + compression), to which the
//     trainer adds the simulated compute time from the cost model;
//   * gradient computation fans out over a thread pool (real parallelism for
//     wall-clock speed; simulated time is unaffected).
//
// All reported times are SIMULATED seconds from the cost model, not host
// wall-clock (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/sync_strategy.hpp"
#include "data/dataset.hpp"
#include "net/cost_model.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace marsit {

/// Disjoint train/test index ranges carved out of the unbounded procedural
/// datasets, and the seed salts deriving the sampler and model-init streams
/// from TrainerConfig::seed.  Public so an out-of-process worker
/// (src/dist) can reproduce the trainer's exact data and init streams.
inline constexpr std::uint64_t kTrainSampleRange = 1u << 22;
inline constexpr std::uint64_t kTestSampleRange = 1u << 16;
inline constexpr std::uint64_t kSamplerSeedSalt = 0xda7a;
inline constexpr std::uint64_t kModelInitSeedSalt = 0x1417;

struct TrainerConfig {
  std::size_t batch_size_per_worker = 32;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  /// Local stepsize η_l.
  float eta_l = 0.05f;
  /// Per-worker gradient clipping: raw gradients with ℓ2 norm above this
  /// are rescaled to it before the local optimizer (0 disables).  Deep
  /// unnormalized nets need it to keep the first momentum steps from
  /// killing every ReLU.
  float clip_grad_norm = 0.0f;
  /// Local updates per synchronization (the paper's "clients perform
  /// multiple local updates between two successive synchronizations").
  /// With H > 1 each worker takes H local optimizer steps on its replica,
  /// the synchronized vector u_m is the accumulated local movement, and the
  /// replica is rewound before the (consistent) global update is applied.
  std::size_t local_steps = 1;
  std::size_t rounds = 200;
  /// Evaluate on held-out data every `eval_interval` rounds.
  std::size_t eval_interval = 20;
  std::size_t eval_samples = 512;
  std::uint64_t seed = 7;
  /// Rounds at which η_l is multiplied by lr_decay_factor.
  std::vector<std::size_t> lr_decay_rounds;
  float lr_decay_factor = 0.1f;
  /// Stop as soon as an evaluation reaches this accuracy (Table 1's
  /// rounds-to-converge protocol); unset = run all rounds.
  std::optional<double> stop_accuracy;
  /// Record the per-round sign matching rate between the global update and
  /// the exact mean update (Figure 1b's metric).  Adds O(M·D) per round.
  bool track_matching_rate = false;
  /// Compute worker gradients on the global thread pool.
  bool parallel_workers = true;
  /// Samples used for the train_* running metrics (0 disables).
  std::size_t train_metric_samples = 0;

  // --- checkpoint/restore (DESIGN.md §11) ----------------------------------
  /// Write a checkpoint to `checkpoint_path` every this-many completed
  /// rounds (0 disables).  Checkpoints land after the round's evaluation,
  /// at the round boundary where all replicas are bit-identical.
  std::size_t checkpoint_every = 0;
  /// Destination for cadenced checkpoints.  A "{round}" placeholder expands
  /// to the completed-round count (per-round history); without it the one
  /// file is overwritten each time.
  std::string checkpoint_path;
  /// Resume from this checkpoint file before round 0 (empty = fresh run).
  /// The checkpoint's meta must match the live run (shape, seeds, strategy
  /// name); training then continues from the stored round and is
  /// bit-identical to the uninterrupted run.
  std::string resume_from;
};

struct EvalPoint {
  std::size_t round = 0;            // rounds completed when evaluated
  double sim_seconds = 0.0;         // cumulative simulated time
  double wire_gigabits = 0.0;       // cumulative wire traffic
  double test_accuracy = 0.0;
  double test_loss = 0.0;
};

struct TrainResult {
  std::vector<EvalPoint> evals;
  double final_test_accuracy = 0.0;
  double best_test_accuracy = 0.0;
  std::size_t rounds_completed = 0;
  bool diverged = false;
  bool reached_stop_accuracy = false;

  // Cumulative simulated accounting.
  double sim_seconds = 0.0;
  double total_wire_bits = 0.0;
  /// Mean per-round phase split (compute / compression / communication) —
  /// the stacked bars of Figures 1a and 5.
  PhaseTimes mean_round_phases;
  /// Mean wire-format bits per element per round (Figure 3's "Bits").
  double mean_bits_per_element = 0.0;
  /// Mean sign matching rate (only if track_matching_rate).
  double mean_matching_rate = 0.0;

  // Fault accounting (all zero when the strategy's FaultPlan is empty).
  /// Rounds where membership faults removed at least one worker.
  std::size_t degraded_rounds = 0;
  /// Mean surviving-worker count per round (== num_workers when fault-free).
  double mean_active_workers = 0.0;
  /// Wire bits resent due to simulated packet loss or detected payload
  /// corruption, on top of total_wire_bits (which counts each payload once).
  double total_retransmitted_wire_bits = 0.0;
  /// Number of simulated retransmissions across all rounds.
  std::size_t total_retransmissions = 0;
  /// Workers re-admitted after sitting out at least one round (includes the
  /// flush-gated subset below).
  std::size_t total_rejoins = 0;
  /// Rejoins that waited for the K-round full-precision flush barrier
  /// (FaultPlan::DropOut::rejoin_at_flush).
  std::size_t total_flush_rejoins = 0;
  /// Senders excluded from a round because their payload stayed corrupted
  /// past the retry budget (never folded into the aggregate).
  std::size_t total_corruption_demotions = 0;
  /// Round this run resumed from (0 = fresh run); informational only, not
  /// part of the golden digests.
  std::size_t resumed_from_round = 0;
};

class DistributedTrainer {
 public:
  /// `model_factory` must build identical architectures; each replica is
  /// initialized from config.seed so all workers start at the same point.
  DistributedTrainer(const Dataset& dataset,
                     std::function<Sequential()> model_factory,
                     SyncStrategy& strategy, TrainerConfig config);

  /// Parameter count of the model (the synchronized dimension D).
  std::size_t param_count() const { return param_count_; }

  /// Simulated seconds of one worker's forward+backward per round.
  double compute_seconds_per_round() const;

  TrainResult train();

  /// Evaluates replica 0 on `samples` held-out examples.
  EvalPoint evaluate(std::size_t samples);

  /// Copies replica 0's current parameters into `out` (extent must equal
  /// param_count()); the golden determinism test hashes these.
  void copy_params_into(std::span<float> out) const;

 private:
  /// Accumulators that live across rounds and must survive a
  /// checkpoint/resume cycle together with TrainResult (everything train()
  /// folds into the final means is derived from these at the end).
  struct RunningTotals {
    PhaseTimes phase_totals;
    double bits_per_element_total = 0.0;
    double matching_total = 0.0;
    double active_workers_total = 0.0;
    float eta_l = 0.0f;
    /// First round index the loop should execute (0 unless resumed).
    std::size_t start_round = 0;
  };

  void worker_round(std::size_t worker, std::size_t round, float eta_l);
  /// Serializes the complete run state after `rounds_done` rounds to
  /// config_.checkpoint_path (with "{round}" expanded).
  void write_checkpoint(std::size_t rounds_done, const TrainResult& result,
                        const RunningTotals& totals) const;
  /// Restores a run from config_.resume_from, rejecting checkpoints whose
  /// meta does not match this trainer/strategy (always-on checks).
  void restore_checkpoint(TrainResult& result, RunningTotals& totals);

  const Dataset& dataset_;
  SyncStrategy& strategy_;
  TrainerConfig config_;
  ShardedSampler sampler_;
  std::vector<Sequential> replicas_;
  std::vector<std::unique_ptr<LocalOptimizer>> optimizers_;
  std::vector<Tensor> updates_;     // per-worker u_m = η_l · direction
  std::vector<Batch> batches_;      // per-worker scratch
  std::vector<Tensor> grad_scratch_;
  std::vector<Tensor> dlogits_;     // per-worker ∂L/∂logits scratch
  std::vector<Tensor> snapshots_;   // pre-round params (local_steps > 1)
  Tensor global_update_;
  std::size_t param_count_ = 0;

  // Running totals (populated during train()).
  double cumulative_seconds_ = 0.0;
  double cumulative_bits_ = 0.0;
};

}  // namespace marsit
