#include "sim/trainer.hpp"

#include <algorithm>

#include "ckpt/checkpoint.hpp"
#include "ckpt/snapshot.hpp"
#include "collectives/aggregators.hpp"
#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace marsit {

DistributedTrainer::DistributedTrainer(
    const Dataset& dataset, std::function<Sequential()> model_factory,
    SyncStrategy& strategy, TrainerConfig config)
    : dataset_(dataset),
      strategy_(strategy),
      config_(config),
      sampler_(dataset, strategy.config().num_workers,
               config.batch_size_per_worker, kTrainSampleRange,
               kTestSampleRange, derive_seed(config.seed, kSamplerSeedSalt)) {
  const std::size_t m = strategy_.config().num_workers;
  MARSIT_CHECK(m >= 2) << "trainer needs at least two workers";
  MARSIT_CHECK(model_factory != nullptr) << "null model factory";

  replicas_.reserve(m);
  for (std::size_t w = 0; w < m; ++w) {
    replicas_.push_back(model_factory());
    Rng init_rng(derive_seed(config_.seed, kModelInitSeedSalt));
    replicas_.back().init(init_rng);  // same seed => identical replicas
  }
  param_count_ = replicas_.front().param_count();
  MARSIT_CHECK(param_count_ > 0) << "model has no parameters";
  MARSIT_CHECK(replicas_.front().in_size() == dataset_.sample_size())
      << "model input " << replicas_.front().in_size()
      << " vs dataset sample " << dataset_.sample_size();
  MARSIT_CHECK(replicas_.front().out_size() == dataset_.num_classes())
      << "model output " << replicas_.front().out_size()
      << " vs dataset classes " << dataset_.num_classes();

  optimizers_.reserve(m);
  for (std::size_t w = 0; w < m; ++w) {
    optimizers_.push_back(make_optimizer(config_.optimizer));
  }
  updates_.assign(m, Tensor(param_count_));
  grad_scratch_.assign(m, Tensor(param_count_));
  dlogits_.resize(m);
  snapshots_.resize(m);
  batches_.resize(m);
  global_update_ = Tensor(param_count_);
}

double DistributedTrainer::compute_seconds_per_round() const {
  const double flops =
      replicas_.front().flops_per_sample() *
      static_cast<double>(config_.batch_size_per_worker) *
      static_cast<double>(std::max<std::size_t>(1, config_.local_steps));
  return strategy_.config().cost_model.compute_seconds(flops);
}

void DistributedTrainer::worker_round(std::size_t worker, std::size_t round,
                                      float eta_l) {
  Sequential& model = replicas_[worker];
  Batch& batch = batches_[worker];
  const std::size_t local_steps = std::max<std::size_t>(1, config_.local_steps);

  if (local_steps > 1 && snapshots_[worker].size() != param_count_) {
    snapshots_[worker] = Tensor(param_count_);
  }
  if (local_steps > 1) {
    model.copy_params_into(snapshots_[worker].span());
  }

  for (std::size_t h = 0; h < local_steps; ++h) {
    sampler_.worker_batch(worker, round * local_steps + h, batch);

    model.zero_grads();
    const auto logits = model.forward(batch.inputs.span(), batch.size());
    Tensor& dlogits = dlogits_[worker];
    if (dlogits.size() != logits.size()) {
      dlogits = Tensor(logits.size());  // sized once; reused every step
    }
    softmax_cross_entropy(logits, {batch.labels.data(), batch.labels.size()},
                          dataset_.num_classes(), dlogits.span());
    model.backward(dlogits.span(), batch.size());

    model.copy_grads_into(grad_scratch_[worker].span());
    if (config_.clip_grad_norm > 0.0f) {
      const float norm = l2_norm(grad_scratch_[worker].span());
      if (norm > config_.clip_grad_norm) {
        scale(grad_scratch_[worker].span(), config_.clip_grad_norm / norm);
      }
    }
    optimizers_[worker]->transform(grad_scratch_[worker].span(),
                                   updates_[worker].span());
    scale(updates_[worker].span(), eta_l);
    if (local_steps > 1) {
      // Walk the replica locally; the synchronized vector is the total
      // movement, computed below.
      model.apply_update(updates_[worker].span());
    }
  }

  if (local_steps > 1) {
    // u_m = x_before − x_after (so x ← x − u replays the local walk), then
    // rewind: the *global* update must be the only state change so replicas
    // stay consistent.
    model.copy_params_into(grad_scratch_[worker].span());
    sub(snapshots_[worker].span(), grad_scratch_[worker].span(),
        updates_[worker].span());
    model.load_params(snapshots_[worker].span());
  }
}

void DistributedTrainer::copy_params_into(std::span<float> out) const {
  MARSIT_CHECK(out.size() == param_count_)
      << "param copy extent " << out.size() << " vs " << param_count_;
  replicas_.front().copy_params_into(out);
}

EvalPoint DistributedTrainer::evaluate(std::size_t samples) {
  EvalPoint point;
  point.sim_seconds = cumulative_seconds_;
  point.wire_gigabits = cumulative_bits_ / 1e9;

  Sequential& model = replicas_.front();
  Batch batch;
  std::size_t done = 0;
  std::size_t correct = 0;
  double loss = 0.0;
  std::size_t block = 0;
  const std::size_t chunk = std::min<std::size_t>(samples, 256);
  while (done < samples) {
    const std::size_t take = std::min(chunk, samples - done);
    sampler_.test_batch(take, block++, batch);
    const auto logits = model.forward(batch.inputs.span(), batch.size());
    const LossResult result = softmax_cross_entropy_eval(
        logits, {batch.labels.data(), batch.labels.size()},
        dataset_.num_classes());
    correct += result.correct;
    loss += result.loss * static_cast<double>(take);
    done += take;
  }
  point.test_accuracy =
      static_cast<double>(correct) / static_cast<double>(samples);
  point.test_loss = loss / static_cast<double>(samples);
  return point;
}

TrainResult DistributedTrainer::train() {
  const std::size_t m = strategy_.config().num_workers;
  const double compute_seconds = compute_seconds_per_round();

  TrainResult result;
  RunningTotals totals;
  totals.eta_l = config_.eta_l;
  Tensor exact_mean(param_count_);
  // O(log n) decay lookup per round instead of a linear scan of the
  // (unordered) configured list.
  std::vector<std::size_t> decay_rounds = config_.lr_decay_rounds;
  std::sort(decay_rounds.begin(), decay_rounds.end());

  cumulative_seconds_ = 0.0;
  cumulative_bits_ = 0.0;

  if (!config_.resume_from.empty()) {
    // Crash-restart equivalence: everything the loop below reads or folds
    // into the result is restored here, so continuing from round
    // totals.start_round reproduces the uninterrupted run bit for bit.
    restore_checkpoint(result, totals);
  }

  for (std::size_t t = totals.start_round; t < config_.rounds; ++t) {
    if (std::binary_search(decay_rounds.begin(), decay_rounds.end(), t)) {
      totals.eta_l *= config_.lr_decay_factor;
    }
    const float eta_l = totals.eta_l;

    if (config_.parallel_workers) {
      parallel_for(global_thread_pool(), m, [&](std::size_t w) {
        worker_round(w, t, eta_l);
      });
    } else {
      for (std::size_t w = 0; w < m; ++w) {
        worker_round(w, t, eta_l);
      }
    }

    WorkerSpans spans;
    spans.reserve(m);
    for (std::size_t w = 0; w < m; ++w) {
      spans.push_back(updates_[w].span());
    }
    // Round timeline: [round_start, sync_start] is compute, the collective
    // runs from sync_start with a local clock.  Publishing sync_start as the
    // session's time offset lets the nested emitters (timing schedules,
    // NetworkSim) place their spans on the global simulated timeline.
    const double round_start = cumulative_seconds_;
    const double sync_start = round_start + compute_seconds;
    obs::TraceSession* const trace = obs::TraceSession::current();
    if (trace != nullptr) {
      trace->set_time_offset(sync_start);
    }
    const SyncStepResult step =
        strategy_.synchronize(spans, global_update_.span());
    const double sync_end = sync_start + step.timing.completion_seconds;
    if (trace != nullptr) {
      trace->add_span("round " + std::to_string(t), "round", round_start,
                      sync_end, /*track=*/0);
      trace->add_span("compute", "compute", round_start, sync_start,
                      /*track=*/0);
      trace->add_span("sync", "sync", sync_start, sync_end, /*track=*/0);
    }

    double round_matching_rate = 0.0;
    if (config_.track_matching_rate) {
      aggregate_mean(spans, exact_mean.span());
      round_matching_rate =
          sign_matching_rate(exact_mean.span(), global_update_.span());
      totals.matching_total += round_matching_rate;
    }

    for (auto& replica : replicas_) {
      replica.apply_update(global_update_.span());
    }

    cumulative_seconds_ += compute_seconds + step.timing.completion_seconds;
    cumulative_bits_ += step.timing.total_wire_bits;
    totals.bits_per_element_total += step.bits_per_element;
    totals.active_workers_total += static_cast<double>(step.active_workers);
    if (step.active_workers < m) {
      ++result.degraded_rounds;
    }
    result.total_retransmitted_wire_bits +=
        step.timing.retransmitted_wire_bits;
    result.total_retransmissions += step.timing.retransmissions;
    result.total_rejoins += step.rejoined_workers;
    result.total_flush_rejoins += step.flush_rejoined_workers;
    result.total_corruption_demotions += step.demoted_workers;
    totals.phase_totals.compute += compute_seconds;
    totals.phase_totals.compression +=
        step.timing.compression_seconds_per_worker();
    totals.phase_totals.communication += step.timing.communication_seconds();
    if (step.timing.serial_completion_seconds > 0.0) {
      // Pipelined round: completion_seconds is the max-of-stages wall clock
      // (what cumulative_seconds_ advanced by); the serial bars above came
      // from the sum-of-stages reference, so one run reports both.
      totals.phase_totals.overlapped +=
          compute_seconds + step.timing.completion_seconds;
    }
    result.rounds_completed = t + 1;

    if (trace != nullptr) {
      // One JSONL object per round.  `wire_bits` carries exactly the value
      // accumulated into cumulative_bits_ above, so summing the stream
      // reproduces TrainResult::total_wire_bits bit-for-bit.
      obs::RoundRecord record;
      record.round = t;
      record.set("sim_seconds", cumulative_seconds_);
      record.set("compute_seconds", compute_seconds);
      record.set("sync_seconds", step.timing.completion_seconds);
      record.set("wire_bits", step.timing.total_wire_bits);
      record.set("retransmitted_wire_bits",
                 step.timing.retransmitted_wire_bits);
      record.set("retransmissions",
                 static_cast<double>(step.timing.retransmissions));
      record.set("active_workers",
                 static_cast<double>(step.active_workers));
      record.set("bits_per_element", step.bits_per_element);
      record.set("full_precision", step.full_precision ? 1.0 : 0.0);
      record.set("compression_seconds",
                 step.timing.compression_seconds_per_worker());
      record.set("communication_seconds",
                 step.timing.communication_seconds());
      if (config_.track_matching_rate) {
        record.set("matching_rate", round_matching_rate);
      }
      if (step.timing.pipeline_chunks > 0) {
        // Only pipelined rounds carry the overlap keys (sync_seconds above
        // is then the overlapped figure), so the default trace shape stays
        // byte-identical to unpipelined builds.
        record.set("serial_sync_seconds",
                   step.timing.serial_completion_seconds);
        record.set("pipeline_chunks",
                   static_cast<double>(step.timing.pipeline_chunks));
      }
      if (strategy_.config().fault_plan.has_faults()) {
        // Only fault-configured runs carry the recovery keys, so the
        // default trace shape stays byte-identical to pre-fault builds.
        record.set("rejoined_workers",
                   static_cast<double>(step.rejoined_workers));
        record.set("flush_rejoined_workers",
                   static_cast<double>(step.flush_rejoined_workers));
        record.set("demoted_workers",
                   static_cast<double>(step.demoted_workers));
      }
      trace->add_round_record(std::move(record));
    }
    if (obs::metrics_enabled()) {
      static const obs::Counter rounds_counter("trainer.rounds");
      static const obs::Gauge sim_seconds("trainer.sim_seconds");
      static const obs::Gauge eta_l_gauge("trainer.eta_l");
      rounds_counter.increment();
      sim_seconds.set(cumulative_seconds_);
      eta_l_gauge.set(static_cast<double>(eta_l));
      if (config_.track_matching_rate) {
        static const obs::Histogram matching_rate("trainer.matching_rate");
        matching_rate.observe(round_matching_rate);
      }
    }

    if (!all_finite(global_update_.span()) ||
        !all_finite(updates_.front().span())) {
      result.diverged = true;
      MARSIT_LOG(kWarning) << "training diverged at round " << t;
      break;
    }

    const bool eval_now = config_.eval_interval > 0 &&
                          ((t + 1) % config_.eval_interval == 0 ||
                           t + 1 == config_.rounds);
    if (eval_now) {
      EvalPoint point = evaluate(config_.eval_samples);
      point.round = t + 1;
      result.best_test_accuracy =
          std::max(result.best_test_accuracy, point.test_accuracy);
      result.evals.push_back(point);
      if (obs::metrics_enabled()) {
        static const obs::Counter evals("trainer.evals");
        static const obs::Gauge test_accuracy("trainer.test_accuracy");
        evals.increment();
        test_accuracy.set(point.test_accuracy);
      }
      if (config_.stop_accuracy &&
          point.test_accuracy >= *config_.stop_accuracy) {
        result.reached_stop_accuracy = true;
        break;
      }
    }

    if (config_.checkpoint_every > 0 && !config_.checkpoint_path.empty() &&
        (t + 1) % config_.checkpoint_every == 0) {
      // After the round's evaluation, at the round boundary: replicas are
      // bit-identical (MAR invariant) and the evals list is consistent with
      // rounds_completed.
      write_checkpoint(t + 1, result, totals);
    }
  }

  if (result.evals.empty() || result.evals.back().round !=
                                  result.rounds_completed) {
    if (!result.diverged) {
      EvalPoint point = evaluate(config_.eval_samples);
      point.round = result.rounds_completed;
      result.best_test_accuracy =
          std::max(result.best_test_accuracy, point.test_accuracy);
      result.evals.push_back(point);
    }
  }
  if (!result.evals.empty()) {
    result.final_test_accuracy = result.evals.back().test_accuracy;
  }

  const double rounds = static_cast<double>(
      std::max<std::size_t>(1, result.rounds_completed));
  result.sim_seconds = cumulative_seconds_;
  result.total_wire_bits = cumulative_bits_;
  result.mean_round_phases.compute = totals.phase_totals.compute / rounds;
  result.mean_round_phases.compression =
      totals.phase_totals.compression / rounds;
  result.mean_round_phases.communication =
      totals.phase_totals.communication / rounds;
  result.mean_round_phases.overlapped = totals.phase_totals.overlapped / rounds;
  result.mean_bits_per_element = totals.bits_per_element_total / rounds;
  result.mean_matching_rate =
      config_.track_matching_rate ? totals.matching_total / rounds : 0.0;
  result.mean_active_workers = totals.active_workers_total / rounds;
  return result;
}

void DistributedTrainer::write_checkpoint(std::size_t rounds_done,
                                          const TrainResult& result,
                                          const RunningTotals& totals) const {
  const SyncConfig& sync = strategy_.config();
  ckpt::Checkpoint checkpoint;
  checkpoint.meta.round = rounds_done;
  checkpoint.meta.param_count = param_count_;
  checkpoint.meta.num_workers = sync.num_workers;
  checkpoint.meta.trainer_seed = config_.seed;
  checkpoint.meta.strategy_seed = sync.seed;
  checkpoint.meta.fault_seed = sync.fault_plan.seed;
  checkpoint.meta.strategy_name = strategy_.name();

  // All replicas are bit-identical at a round boundary (the MAR invariant),
  // so one copy of replica 0's parameters restores every worker.
  checkpoint.params.resize(param_count_);
  replicas_.front().copy_params_into(
      {checkpoint.params.data(), checkpoint.params.size()});

  ckpt::SnapshotWriter optimizer_state;
  optimizer_state.u8(static_cast<std::uint8_t>(config_.optimizer));
  optimizer_state.u64(static_cast<std::uint64_t>(optimizers_.size()));
  for (const auto& optimizer : optimizers_) {
    optimizer->save_state(optimizer_state);
  }
  checkpoint.optimizer_state = optimizer_state.bytes();

  ckpt::SnapshotWriter strategy_state;
  strategy_.save_state(strategy_state);
  checkpoint.strategy_state = strategy_state.bytes();

  // Cumulative accounting: stored, not replayed, so the resumed run's
  // TrainResult equals the uninterrupted one exactly (replaying would need
  // the skipped rounds' step results).
  ckpt::SnapshotWriter trainer_state;
  trainer_state.f32(totals.eta_l);
  trainer_state.f64(cumulative_seconds_);
  trainer_state.f64(cumulative_bits_);
  // PhaseTimes::overlapped is deliberately NOT serialized (checkpoint format
  // stability): it is a reporting-only figure, and a pipelined run that
  // checkpoints mid-stream under-reports the overlapped mean after resume
  // while every load-bearing total above stays exact.
  trainer_state.f64(totals.phase_totals.compute);
  trainer_state.f64(totals.phase_totals.compression);
  trainer_state.f64(totals.phase_totals.communication);
  trainer_state.f64(totals.bits_per_element_total);
  trainer_state.f64(totals.matching_total);
  trainer_state.f64(totals.active_workers_total);
  trainer_state.u64(static_cast<std::uint64_t>(result.rounds_completed));
  trainer_state.u64(static_cast<std::uint64_t>(result.degraded_rounds));
  trainer_state.u64(static_cast<std::uint64_t>(result.total_retransmissions));
  trainer_state.u64(static_cast<std::uint64_t>(result.total_rejoins));
  trainer_state.u64(static_cast<std::uint64_t>(result.total_flush_rejoins));
  trainer_state.u64(
      static_cast<std::uint64_t>(result.total_corruption_demotions));
  trainer_state.f64(result.total_retransmitted_wire_bits);
  trainer_state.f64(result.best_test_accuracy);
  trainer_state.u8(result.diverged ? 1 : 0);
  trainer_state.u8(result.reached_stop_accuracy ? 1 : 0);
  trainer_state.u64(static_cast<std::uint64_t>(result.evals.size()));
  for (const EvalPoint& eval : result.evals) {
    trainer_state.u64(static_cast<std::uint64_t>(eval.round));
    trainer_state.f64(eval.sim_seconds);
    trainer_state.f64(eval.wire_gigabits);
    trainer_state.f64(eval.test_accuracy);
    trainer_state.f64(eval.test_loss);
  }
  checkpoint.trainer_state = trainer_state.bytes();

  const std::string path =
      ckpt::expand_checkpoint_path(config_.checkpoint_path, rounds_done);
  ckpt::save_checkpoint(path, checkpoint);
  if (obs::metrics_enabled()) {
    static const obs::Counter checkpoints("trainer.checkpoints");
    checkpoints.increment();
  }
}

void DistributedTrainer::restore_checkpoint(TrainResult& result,
                                            RunningTotals& totals) {
  const SyncConfig& sync = strategy_.config();
  const ckpt::Checkpoint checkpoint =
      ckpt::load_checkpoint(config_.resume_from);

  // A checkpoint restores only into the run that produced it: same shape,
  // same seeds, same strategy.  Anything else would resume *a* run, not
  // *this* run — reject loudly instead.
  const ckpt::CheckpointMeta& meta = checkpoint.meta;
  MARSIT_CHECK(meta.param_count == param_count_)
      << "checkpoint has " << meta.param_count << " parameters, model has "
      << param_count_;
  MARSIT_CHECK(meta.num_workers == sync.num_workers)
      << "checkpoint ran " << meta.num_workers << " workers, config says "
      << sync.num_workers;
  MARSIT_CHECK(meta.strategy_name == strategy_.name())
      << "checkpoint strategy '" << meta.strategy_name << "' vs live '"
      << strategy_.name() << "'";
  MARSIT_CHECK(meta.trainer_seed == config_.seed)
      << "checkpoint trainer seed " << meta.trainer_seed << " vs "
      << config_.seed;
  MARSIT_CHECK(meta.strategy_seed == sync.seed)
      << "checkpoint strategy seed " << meta.strategy_seed << " vs "
      << sync.seed;
  MARSIT_CHECK(meta.fault_seed == sync.fault_plan.seed)
      << "checkpoint fault seed " << meta.fault_seed << " vs "
      << sync.fault_plan.seed;
  MARSIT_CHECK(meta.round <= config_.rounds)
      << "checkpoint at round " << meta.round << " is past the configured "
      << config_.rounds;

  for (auto& replica : replicas_) {
    replica.load_params({checkpoint.params.data(), checkpoint.params.size()});
  }

  ckpt::SnapshotReader optimizer_state({checkpoint.optimizer_state.data(),
                                        checkpoint.optimizer_state.size()});
  const auto kind = static_cast<OptimizerKind>(optimizer_state.u8());
  MARSIT_CHECK(kind == config_.optimizer)
      << "checkpoint optimizer kind differs from the configured one";
  const std::uint64_t optimizer_count = optimizer_state.u64();
  MARSIT_CHECK(optimizer_count == optimizers_.size())
      << "checkpoint has " << optimizer_count << " optimizer states for "
      << optimizers_.size() << " workers";
  for (auto& optimizer : optimizers_) {
    optimizer->load_state(optimizer_state);
  }
  MARSIT_CHECK(optimizer_state.done())
      << "optimizer section has trailing bytes";

  ckpt::SnapshotReader strategy_state({checkpoint.strategy_state.data(),
                                       checkpoint.strategy_state.size()});
  strategy_.load_state(strategy_state);
  MARSIT_CHECK(strategy_state.done()) << "strategy section has trailing bytes";

  ckpt::SnapshotReader trainer_state({checkpoint.trainer_state.data(),
                                      checkpoint.trainer_state.size()});
  totals.eta_l = trainer_state.f32();
  cumulative_seconds_ = trainer_state.f64();
  cumulative_bits_ = trainer_state.f64();
  totals.phase_totals.compute = trainer_state.f64();
  totals.phase_totals.compression = trainer_state.f64();
  totals.phase_totals.communication = trainer_state.f64();
  totals.bits_per_element_total = trainer_state.f64();
  totals.matching_total = trainer_state.f64();
  totals.active_workers_total = trainer_state.f64();
  result.rounds_completed =
      static_cast<std::size_t>(trainer_state.u64());
  result.degraded_rounds = static_cast<std::size_t>(trainer_state.u64());
  result.total_retransmissions =
      static_cast<std::size_t>(trainer_state.u64());
  result.total_rejoins = static_cast<std::size_t>(trainer_state.u64());
  result.total_flush_rejoins = static_cast<std::size_t>(trainer_state.u64());
  result.total_corruption_demotions =
      static_cast<std::size_t>(trainer_state.u64());
  result.total_retransmitted_wire_bits = trainer_state.f64();
  result.best_test_accuracy = trainer_state.f64();
  result.diverged = trainer_state.u8() != 0;
  result.reached_stop_accuracy = trainer_state.u8() != 0;
  const std::uint64_t eval_count = trainer_state.u64();
  result.evals.clear();
  result.evals.reserve(static_cast<std::size_t>(eval_count));
  for (std::uint64_t i = 0; i < eval_count; ++i) {
    EvalPoint eval;
    eval.round = static_cast<std::size_t>(trainer_state.u64());
    eval.sim_seconds = trainer_state.f64();
    eval.wire_gigabits = trainer_state.f64();
    eval.test_accuracy = trainer_state.f64();
    eval.test_loss = trainer_state.f64();
    result.evals.push_back(eval);
  }
  MARSIT_CHECK(trainer_state.done()) << "trainer section has trailing bytes";
  MARSIT_CHECK(result.rounds_completed == meta.round)
      << "trainer section rounds_completed " << result.rounds_completed
      << " disagrees with meta round " << meta.round;

  totals.start_round = static_cast<std::size_t>(meta.round);
  result.resumed_from_round = totals.start_round;
  MARSIT_LOG(kInfo) << "resumed from " << config_.resume_from << " at round "
                    << totals.start_round;
}

}  // namespace marsit
