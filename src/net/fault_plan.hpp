// Deterministic, seeded fault injection for the network simulator and the
// synchronization strategies.
//
// A FaultPlan describes everything that can go wrong with the fleet during a
// simulated run, at two levels:
//
//   * **link/NIC level**, consumed by NetworkSim::transfer(): per-link packet
//     loss (each lost attempt costs a retry timeout with exponential
//     backoff and puts the payload on the wire again), uniform latency
//     jitter per message, transient NIC outages (a node's ingress+egress are
//     down for a window of simulated seconds within a round), and per-node
//     straggler slowdowns (the node's link serialization runs slower by a
//     factor);
//   * **membership level**, consumed by SyncStrategy::synchronize(): workers
//     absent for whole rounds, either from explicit [from, to) drop-out
//     windows or from a per-round Bernoulli drop-out rate.  Strategies
//     re-form the reduction over the survivors (see sync_strategy.hpp).
//
// Determinism contract: every stochastic decision is a pure function of
// (plan.seed, round, entity) — membership via hashed per-(round, worker)
// streams, link-level draws via a per-round stream consumed in transfer call
// order (the schedules issue transfers in a deterministic order).  Replaying
// a run with the same plan reproduces the same faults bit-for-bit.
//
// A default-constructed plan has no faults (`has_faults()` is false): the
// simulator and strategies take exactly their original code paths, so the
// layer is zero-cost — and bit-identical — when off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace marsit {

struct FaultPlan {
  /// Root seed for every stochastic fault decision.  Independent of the
  /// SyncConfig seed so fault schedules can be varied against a fixed
  /// training trajectory and vice versa.
  std::uint64_t seed = 0;

  // --- link level -----------------------------------------------------------
  /// Probability in [0, 1) that one transmission attempt of a message is
  /// lost.  Lost attempts are retried (see retry_timeout) up to max_retries;
  /// the payload bits of every failed attempt count as retransmitted.
  double packet_loss = 0.0;
  /// Seconds the sender waits before retrying a lost attempt (covers the
  /// wasted transmission + the timeout detection).
  double retry_timeout = 1e-3;
  /// Multiplier applied to retry_timeout after every consecutive loss of the
  /// same message (exponential backoff).
  double retry_backoff = 2.0;
  /// Retry budget per message; after this many losses the message goes
  /// through regardless (the simulator models delivery-after-degradation,
  /// not permanent partition).
  std::size_t max_retries = 16;

  /// Each message's delivery gains Uniform[0, latency_jitter) extra seconds.
  double latency_jitter = 0.0;

  /// Straggler: node's link serialization runs `slowdown`× slower
  /// (slowdown >= 1).  Applied when the node is either endpoint.
  struct Straggler {
    std::size_t node = 0;
    double slowdown = 1.0;
  };
  std::vector<Straggler> stragglers;

  /// Transient NIC outage: both of `node`'s NICs are down during
  /// [start, end) simulated seconds of every round; transfers touching the
  /// node wait for the window to close.
  struct Outage {
    std::size_t node = 0;
    double start = 0.0;
    double end = 0.0;
  };
  std::vector<Outage> outages;

  // --- membership level -----------------------------------------------------
  /// Worker `worker` is absent for rounds [from_round, to_round).
  struct DropOut {
    std::size_t worker = 0;
    std::size_t from_round = 0;
    std::size_t to_round = 0;
  };
  std::vector<DropOut> dropouts;

  /// Additionally, every worker is independently absent in any given round
  /// with this probability (deterministic in (seed, round, worker)).
  double dropout_rate = 0.0;

  // --- queries --------------------------------------------------------------
  /// True when any fault knob is set; false selects the zero-cost path.
  bool has_faults() const;
  /// True when any link-level knob is set (loss, jitter, stragglers,
  /// outages).
  bool has_link_faults() const;
  /// True when any membership knob is set (dropouts, dropout_rate).
  bool has_membership_faults() const;

  /// Whether `worker` sits out round `round` (explicit windows plus the
  /// seeded Bernoulli drop-out).  Callers are responsible for quorum: see
  /// SyncStrategy::synchronize, which re-admits workers when fewer than two
  /// would survive.
  bool worker_absent(std::size_t worker, std::size_t round) const;

  /// Straggler slowdown factor for `node` (1.0 when not a straggler).
  double node_slowdown(std::size_t node) const;

  /// Validates ranges (probabilities in [0, 1), slowdowns >= 1, outage
  /// windows ordered); throws CheckError on violation.
  void validate() const;
};

}  // namespace marsit
