// Deterministic, seeded fault injection for the network simulator and the
// synchronization strategies.
//
// A FaultPlan describes everything that can go wrong with the fleet during a
// simulated run, at two levels:
//
//   * **link/NIC level**, consumed by NetworkSim::transfer(): per-link packet
//     loss (each lost attempt costs a retry timeout with exponential
//     backoff and puts the payload on the wire again), uniform latency
//     jitter per message, transient NIC outages (a node's ingress+egress are
//     down for a window of simulated seconds within a round), and per-node
//     straggler slowdowns (the node's link serialization runs slower by a
//     factor);
//   * **membership level**, consumed by SyncStrategy::synchronize(): workers
//     absent for whole rounds, either from explicit [from, to) drop-out
//     windows or from a per-round Bernoulli drop-out rate.  Strategies
//     re-form the reduction over the survivors (see sync_strategy.hpp).
//
// Determinism contract: every stochastic decision is a pure function of
// (plan.seed, round, entity) — membership via hashed per-(round, worker)
// streams, link-level draws via a per-round stream consumed in transfer call
// order (the schedules issue transfers in a deterministic order).  Replaying
// a run with the same plan reproduces the same faults bit-for-bit.
//
// A default-constructed plan has no faults (`has_faults()` is false): the
// simulator and strategies take exactly their original code paths, so the
// layer is zero-cost — and bit-identical — when off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace marsit {

struct FaultPlan {
  /// Root seed for every stochastic fault decision.  Independent of the
  /// SyncConfig seed so fault schedules can be varied against a fixed
  /// training trajectory and vice versa.
  std::uint64_t seed = 0;

  // --- link level -----------------------------------------------------------
  /// Probability in [0, 1) that one transmission attempt of a message is
  /// lost.  Lost attempts are retried (see retry_timeout) up to max_retries;
  /// the payload bits of every failed attempt count as retransmitted.
  double packet_loss = 0.0;
  /// Seconds the sender waits before retrying a lost attempt (covers the
  /// wasted transmission + the timeout detection).
  double retry_timeout = 1e-3;
  /// Multiplier applied to retry_timeout after every consecutive loss of the
  /// same message (exponential backoff).
  double retry_backoff = 2.0;
  /// Retry budget per message; after this many losses the message goes
  /// through regardless (the simulator models delivery-after-degradation,
  /// not permanent partition).
  std::size_t max_retries = 16;

  /// Each message's delivery gains Uniform[0, latency_jitter) extra seconds.
  double latency_jitter = 0.0;

  /// Probability in [0, 1) that one transmission attempt delivers a
  /// corrupted payload.  With corruption enabled every message carries a
  /// CRC32 footer (net/crc32.hpp; 32 extra wire bits per message) and the
  /// receiver detects the corruption by checksum — detected corruption takes
  /// the same retry/backoff path as packet loss (each corrupted attempt's
  /// bits count as retransmitted).  Corruption that persists past
  /// max_retries does NOT deliver garbage: the sender is demoted to
  /// absent-for-this-round through the survivor path (see sender_demoted and
  /// SyncStrategy::synchronize), so a corrupted payload is never folded into
  /// the ⊙ chain.
  double corruption_rate = 0.0;

  /// Straggler: node's link serialization runs `slowdown`× slower
  /// (slowdown >= 1).  Applied when the node is either endpoint.
  struct Straggler {
    std::size_t node = 0;
    double slowdown = 1.0;
  };
  std::vector<Straggler> stragglers;

  /// Transient NIC outage: both of `node`'s NICs are down during
  /// [start, end) simulated seconds of every round; transfers touching the
  /// node wait for the window to close.
  struct Outage {
    std::size_t node = 0;
    double start = 0.0;
    double end = 0.0;
  };
  std::vector<Outage> outages;

  // --- membership level -----------------------------------------------------
  /// Worker `worker` is absent for rounds [from_round, to_round).
  ///
  /// Rejoin semantics: with `rejoin_at_flush` set, a worker whose window has
  /// closed does not re-enter immediately — it waits for the next
  /// full-precision flush boundary (the strategy's flush period K, paper
  /// §Periodic sync), the barrier where compensation is zero and the global
  /// state is identical on every worker, so re-admission needs no per-worker
  /// history.  The effective absence window is [from_round, to') where to'
  /// is the smallest multiple of the flush period >= to_round; a strategy
  /// with no flush period (K = 0) re-admits at to_round as before.
  struct DropOut {
    std::size_t worker = 0;
    std::size_t from_round = 0;
    std::size_t to_round = 0;
    bool rejoin_at_flush = false;
  };
  std::vector<DropOut> dropouts;

  /// Additionally, every worker is independently absent in any given round
  /// with this probability (deterministic in (seed, round, worker)).
  double dropout_rate = 0.0;

  // --- queries --------------------------------------------------------------
  /// True when any fault knob is set; false selects the zero-cost path.
  bool has_faults() const;
  /// True when any link-level knob is set (loss, jitter, corruption,
  /// stragglers, outages).
  bool has_link_faults() const;
  /// True when any membership knob is set (dropouts, dropout_rate).
  bool has_membership_faults() const;
  /// True when this round's membership can differ from the full fleet:
  /// membership faults, or corruption (whose past-retry-budget demotions
  /// remove senders through the survivor path).
  bool affects_membership() const;

  /// Whether `worker` sits out round `round` (explicit windows plus the
  /// seeded Bernoulli drop-out).  `flush_period` is the strategy's
  /// full-precision period K: rejoin_at_flush windows extend to the next
  /// multiple of K (0 = no flush, windows end at to_round).  Callers are
  /// responsible for quorum: see SyncStrategy::synchronize, which re-admits
  /// workers when fewer than two would survive.
  bool worker_absent(std::size_t worker, std::size_t round,
                     std::size_t flush_period = 0) const;

  /// True when a rejoin_at_flush window of `worker` ends exactly at `round`
  /// under the given flush period — i.e. the worker re-enters at the flush
  /// barrier and its pre-drop per-worker history (Marsit compensation) must
  /// be discarded, matching the paper's argument that the flush state is
  /// globally identical.
  bool flush_rejoin_at(std::size_t worker, std::size_t round,
                       std::size_t flush_period) const;

  /// True when round `round`'s payload from `worker` is corrupted on the
  /// initial attempt AND all max_retries retries (a pure function of
  /// (seed, round, worker)) — the sender is then demoted to
  /// absent-for-this-round instead of folding garbage into the aggregate.
  bool sender_demoted(std::size_t worker, std::size_t round) const;

  /// Straggler slowdown factor for `node` (1.0 when not a straggler).
  double node_slowdown(std::size_t node) const;

  /// Validates ranges (probabilities in [0, 1), slowdowns >= 1, outage
  /// windows ordered); throws CheckError on violation.
  void validate() const;
};

}  // namespace marsit
