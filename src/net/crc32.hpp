// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) payload footers.
//
// Wire integrity: when a FaultPlan injects payload corruption
// (corruption_rate > 0), every simulated message carries a 4-byte CRC32
// footer (kCrcFooterBytes is priced into NetworkSim::transfer), and a
// receiver detects a corrupted delivery by recomputing the checksum — the
// single-bit and burst-error detection guarantees of CRC32 are exactly what
// the sign-bit payloads need, since a flipped sign bit would otherwise fold
// silently into the ⊙ chain.  The simulator models the detect-and-retry
// protocol (detection always succeeds for the injected single-payload
// corruption class); this module provides the real checksum so tests and
// tools can exercise detection on actual payload buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace marsit {

/// CRC32 footer size as priced on the simulated wire.
inline constexpr double kCrcFooterBytes = 4.0;
inline constexpr double kCrcFooterBits = 32.0;

/// CRC32 of `size` bytes at `data` (init 0xFFFFFFFF, final xor-out —
/// the standard IEEE checksum).
std::uint32_t crc32(const void* data, std::size_t size);

/// Span convenience overload.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// True when `footer` matches the payload's recomputed checksum — the
/// receiver-side acceptance test of the corruption-detection protocol.
bool crc32_matches(const void* data, std::size_t size, std::uint32_t footer);

}  // namespace marsit
