// Event-based network timing simulator.
//
// Models each node with one ingress NIC and one egress NIC.  A transfer
// serializes on both endpoints' NICs: it starts when the payload is ready,
// the sender's egress is free, and the receiver's ingress is free; it then
// occupies both for alpha + bytes/bandwidth seconds.  That single rule
// produces the phenomena the paper's timing figures rest on:
//
//   * ring steps run fully in parallel (disjoint NIC pairs),
//   * the PS server's ingress serializes M concurrent pushes (Figure 1a's
//     congestion at a single node),
//   * cascading compression's per-hop recompute delays the downstream
//     transfer (its compression bar dominating Figure 1a).
//
// Simulated time is double seconds.  The simulator carries no payloads —
// data movement is executed by the collectives on in-memory buffers; this
// class only answers "when".
//
// Fault injection: an attached FaultPlan (set_fault_plan) makes transfer()
// model packet loss with retry/timeout/exponential backoff, latency jitter,
// per-node straggler slowdown, and transient NIC outage windows.  Callers
// must call begin_round(round) once per round so the link-level fault stream
// is a deterministic function of (plan seed, round, transfer order).  With
// no plan attached — or a plan with no link faults — transfer() computes
// exactly the original α–β arithmetic, bit for bit.
#pragma once

#include <cstddef>
#include <vector>

#include "net/cost_model.hpp"
#include "net/fault_plan.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace marsit {

class NetworkSim {
 public:
  NetworkSim(std::size_t num_nodes, CostModel model);

  std::size_t num_nodes() const { return nodes_.size(); }
  const CostModel& cost_model() const { return model_; }

  /// Attaches a fault plan (nullptr detaches).  The plan is borrowed; it
  /// must outlive the simulator.  Validates the plan's ranges.
  void set_fault_plan(const FaultPlan* plan);
  const FaultPlan* fault_plan() const { return fault_plan_; }

  /// Resets NIC occupancy/statistics and reseeds the link-level fault
  /// stream for `round`.  Equivalent to reset() when no plan is attached.
  void begin_round(std::size_t round);

  /// Schedules a transfer of `bytes` from src to dst whose payload becomes
  /// available at `ready_time`.  Returns the delivery completion time.
  /// `server_endpoint` marks transfers to/from the PS server so they use the
  /// (possibly different) server NIC bandwidth.
  double transfer(std::size_t src, std::size_t dst, double bytes,
                  double ready_time, bool server_endpoint = false);

  /// Convenience: transfer measured in bits (sign-bit messages).
  double transfer_bits(std::size_t src, std::size_t dst, double bits,
                       double ready_time, bool server_endpoint = false) {
    return transfer(src, dst, bits / 8.0, ready_time, server_endpoint);
  }

  /// Total payload bytes moved since construction/reset (including
  /// retransmissions).
  double total_bytes() const { return total_bytes_; }
  std::size_t total_messages() const { return total_messages_; }

  /// Payload bytes burned by lost attempts since construction/reset.
  double retransmitted_bytes() const { return retransmitted_bytes_; }
  /// Lost attempts (= retries paid) since construction/reset.
  std::size_t retransmissions() const { return retransmissions_; }

  /// Earliest time a new transfer out of `node` could start.
  double egress_free(std::size_t node) const;
  /// Earliest time a new transfer into `node` could start.
  double ingress_free(std::size_t node) const;

  /// Clears NIC occupancy and statistics (new round/new experiment).
  void reset();

 private:
  struct NodeNics {
    double egress_free = 0.0;
    double ingress_free = 0.0;
  };

  /// Pushes `start` past every outage window of src/dst it falls inside.
  double defer_past_outages(std::size_t src, std::size_t dst,
                            double start) const;

  /// Shared retry engine for the packet-loss and corruption fault paths.
  /// Each failed attempt burns `bytes` on the wire (charged to both the
  /// retransmission and total counters) and delays `start` by the
  /// exponentially backed-off retry timeout.  Both fault kinds route
  /// through here so an identical (seed, attempts) draw always charges
  /// identical retransmitted-bit and elapsed-time totals.
  double charge_retries(double fault_rate, double bytes, double start);

  CostModel model_;
  std::vector<NodeNics> nodes_;
  const FaultPlan* fault_plan_ = nullptr;
  Rng fault_rng_{0};
  double total_bytes_ = 0.0;
  std::size_t total_messages_ = 0;
  double retransmitted_bytes_ = 0.0;
  std::size_t retransmissions_ = 0;
};

}  // namespace marsit
