// Simulated-time cost model.
//
// The paper measured wall-clock on a 32-node Huawei-Cloud cluster (2×T4 per
// node, datacenter Ethernet).  We have no cluster, so every timing figure in
// this reproduction is *simulated seconds* produced by this model:
//
//   message time   = alpha + bytes / link_bandwidth        (α–β model)
//   compute time   = flops / flop_rate
//   compression    = elements / <per-operation element rate>
//
// Absolute constants are calibrated to T4-class hardware (defaults below)
// but every figure we reproduce only depends on *ratios* — e.g. that a ring
// step moves D/M elements while PS ingest serializes M·D elements, or that
// cascading decompress+recompress costs ~10x a plain sign pack.  DESIGN.md
// §2 documents this substitution.
#pragma once

#include <cstddef>

namespace marsit {

struct CostModel {
  // --- link (per point-to-point message) -----------------------------------
  /// Per-message fixed latency, seconds.  25 µs ≈ datacenter TCP RTT/2.
  double link_alpha = 25e-6;
  /// Link bandwidth, bytes/second.  10 Gbit/s Ethernet.
  double link_bandwidth = 1.25e9;
  /// The PS server's aggregate NIC bandwidth.  Real PS deployments shard
  /// the server over a few NICs/hosts, so it is faster than one worker link
  /// — but all M flows still share it, which is Figure 1a's congestion
  /// point.
  double server_bandwidth = 4.0e9;

  // --- compute --------------------------------------------------------------
  /// Sustained training throughput, flops/second (T4 fp32 ≈ 8 TFLOPS, ~50 %
  /// utilization).
  double flop_rate = 4.0e12;

  // --- compression kernels (elements/second, T4-class GPU) ------------------
  /// Packing a float vector to sign bits (memory-bound on the GPU:
  /// ~300 GB/s over 4-byte reads).
  double sign_pack_rate = 20.0e9;
  /// Unpacking bits to floats.
  double sign_unpack_rate = 20.0e9;
  /// SSDM stochastic sign (an RNG draw + compare per element).
  double stochastic_sign_rate = 5.0e9;
  /// Generating the ⊙ operator's Bernoulli transient word + three logical
  /// word ops (64 elements per word — this is why Marsit's compression bar
  /// in Figure 5 is small).
  double one_bit_combine_rate = 50.0e9;
  /// Full decompress-add-recompress of cascading compression per element
  /// (unpack + add + ℓ2 norm + stochastic re-pack, serialized on the hop
  /// critical path — the paper's §3.2.1 overhead).
  double cascade_recompress_rate = 1.0e9;
  /// Elias decode-add-reencode of a sign-sum per element per hop.
  double elias_code_rate = 8.0e9;

  // --- derived helpers -------------------------------------------------------
  double message_seconds(double bytes) const {
    return link_alpha + bytes / link_bandwidth;
  }
  double message_seconds_bits(double bits) const {
    return message_seconds(bits / 8.0);
  }
  double compute_seconds(double flops) const { return flops / flop_rate; }
};

/// Per-round time decomposition reported by Figures 1a and 5.
///
/// compute/compression/communication are the *serial* decomposition: what
/// the round costs when the phases run back to back (their sum is total()).
/// When the chunked overlap pipeline is on (SyncConfig::pipeline_overlap),
/// `overlapped` additionally records the max-of-stages round time — the
/// simulated wall clock when chunk i+1 packs while chunk i is in flight and
/// chunk i−1 folds — so one run yields both the serial bars and the
/// overlapped bar (DESIGN.md §12).
struct PhaseTimes {
  double compute = 0.0;
  double compression = 0.0;
  double communication = 0.0;
  /// Pipelined round time (0 when the round was not pipelined; then the
  /// serial total is also the wall clock).
  double overlapped = 0.0;

  double total() const { return compute + compression + communication; }

  /// Wall-clock round time: the pipelined figure when one was recorded,
  /// else the serial sum.  overlapped_total() <= total() always.
  double overlapped_total() const {
    return overlapped > 0.0 ? overlapped : total();
  }

  PhaseTimes& operator+=(const PhaseTimes& other) {
    compute += other.compute;
    compression += other.compression;
    communication += other.communication;
    overlapped += other.overlapped;
    return *this;
  }
};

}  // namespace marsit
