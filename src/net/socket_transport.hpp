// SocketTransport — the real-OS-socket Transport backend (DESIGN.md §14).
//
// One endpoint per worker process (or per thread in tests), fully meshed
// over loopback TCP: rank r holds one connected stream socket per peer.
// Messages travel as net/frame.hpp frames; every data frame is acked by the
// receiving endpoint, and send() blocks until the matching ack arrives, so
// the simulator's "send completes when the payload is accepted" semantics
// hold on real sockets too.
//
// Each connection owns a reader thread that decodes incoming frames
// autonomously: data frames land in per-tag FIFO mailboxes (and are acked
// immediately), ack frames release blocked senders.  Because acking never
// waits on the application, two peers may both send() before either
// recv()s — the deadlock that kills naive blocking-socket rings.
//
// Determinism note: the transport carries bytes and never consumes rng or
// clocks; all nondeterminism (thread scheduling, TCP timing) is confined to
// *when* payloads arrive, not *what* they contain, and the collective
// schedules impose a total order per stream via tags.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "util/thread_safety.hpp"

namespace marsit {

class SocketTransport final : public Transport {
 public:
  /// Takes ownership of `peer_fds`: one connected stream socket per peer,
  /// indexed by peer rank, -1 at `rank` (self).  Spawns one reader thread
  /// per connection.
  SocketTransport(std::size_t rank, std::vector<int> peer_fds);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::size_t rank() const override { return rank_; }
  std::size_t world_size() const override { return connections_.size(); }

  void send(std::size_t peer, std::uint32_t tag,
            std::span<const std::uint8_t> payload) override;
  std::vector<std::uint8_t> recv(std::size_t peer, std::uint32_t tag) override;

  /// Payload bytes this endpoint has send()t so far (frame headers, CRC
  /// footers and acks excluded).  With the frame overhead formula —
  /// data_frames_sent() · (kFrameHeaderBytes + kFrameFooterBytes) — tests
  /// can pin the exact number of bytes written to the wire
  /// (tests/dist_wire_volume_test).
  std::uint64_t payload_bytes_sent() const {
    return payload_bytes_sent_.load(std::memory_order_relaxed);
  }
  /// Data frames this endpoint has send()t so far (acks excluded).
  std::uint64_t data_frames_sent() const {
    return data_frames_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    /// Set once before the reader thread starts, closed only after it has
    /// joined — effectively immutable while any thread can see it.
    int fd = -1;
    std::thread reader;
    /// Serializes frame writes (data vs acks).  Guards the write side of fd,
    /// which the analysis cannot see through the write(2) syscall; the
    /// discipline is "hold write_mutex across every encode+write pair".
    Mutex write_mutex;
    Mutex mutex;  // guards everything below
    CondVar cv;
    std::map<std::uint32_t, std::deque<std::vector<std::uint8_t>>> mailbox
        MARSIT_GUARDED_BY(mutex);
    /// Data frames the peer has acknowledged.
    std::size_t acks MARSIT_GUARDED_BY(mutex) = 0;
    /// Data frames written to the peer.
    std::size_t sent MARSIT_GUARDED_BY(mutex) = 0;
    /// Frames mailboxed but not yet acked by our reader.  The destructor
    /// waits for this to drain before shutting the socket down: the final
    /// recv() of a run can return (and the whole endpoint destruct) while
    /// the reader is still between the mailbox push and the ack write, and
    /// shutting down in that window would strand the peer's blocked send().
    std::size_t acks_pending MARSIT_GUARDED_BY(mutex) = 0;
    bool closed MARSIT_GUARDED_BY(mutex) = false;
    /// First framing/IO failure, re-thrown at callers.
    std::string error MARSIT_GUARDED_BY(mutex);
  };

  Connection& connection(std::size_t peer);
  void reader_loop(Connection& conn);

  std::size_t rank_;
  std::vector<std::unique_ptr<Connection>> connections_;  // [peer], self null
  std::atomic<std::uint64_t> payload_bytes_sent_{0};
  std::atomic<std::uint64_t> data_frames_sent_{0};
};

/// Binds a listening TCP socket on 127.0.0.1 with an OS-assigned port
/// (written to *port_out).  Returns the listening fd.  Transient
/// EADDRINUSE (ephemeral-port churn under parallel test load) is retried
/// with exponential backoff before giving up.
int bind_loopback_listener(std::uint16_t* port_out);

/// Builds rank's side of the full mesh: connects to every lower rank's
/// listener (announcing itself with a 4-byte little-endian rank hello) and
/// accepts one connection from every higher rank (reading its hello to slot
/// the fd).  Closes `listen_fd` before returning.  `ports[r]` is rank r's
/// listener port.  Returns fds indexed by peer rank, -1 at `rank`.
std::vector<int> connect_socket_mesh(std::size_t rank, std::size_t world_size,
                                     int listen_fd,
                                     std::span<const std::uint16_t> ports);

}  // namespace marsit
