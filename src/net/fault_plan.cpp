#include "net/fault_plan.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace marsit {

namespace {

/// Salt separating the membership stream from every other use of the plan
/// seed (the link-level stream salts with kLinkSalt in network_sim.cpp, the
/// demotion stream with kCorruptionSalt below).
constexpr std::uint64_t kDropoutSalt = 0xd20b0a7eULL;

/// Salt for the per-(round, worker) payload-corruption demotion stream.
constexpr std::uint64_t kCorruptionSalt = 0xc0bb1e5aULL;

/// Smallest multiple of `period` that is >= `round` (period > 0).
std::size_t next_flush_boundary(std::size_t round, std::size_t period) {
  return ((round + period - 1) / period) * period;
}

/// End of a drop-out window under the strategy's flush period: a
/// rejoin_at_flush window holds the worker out until the next
/// full-precision flush boundary.
std::size_t effective_to_round(const FaultPlan::DropOut& drop,
                               std::size_t flush_period) {
  if (!drop.rejoin_at_flush || flush_period == 0) {
    return drop.to_round;
  }
  return next_flush_boundary(drop.to_round, flush_period);
}

}  // namespace

bool FaultPlan::has_faults() const {
  return has_link_faults() || has_membership_faults();
}

bool FaultPlan::has_link_faults() const {
  return packet_loss > 0.0 || latency_jitter > 0.0 || corruption_rate > 0.0 ||
         !stragglers.empty() || !outages.empty();
}

bool FaultPlan::has_membership_faults() const {
  return dropout_rate > 0.0 || !dropouts.empty();
}

bool FaultPlan::affects_membership() const {
  return has_membership_faults() || corruption_rate > 0.0;
}

bool FaultPlan::worker_absent(std::size_t worker, std::size_t round,
                              std::size_t flush_period) const {
  for (const DropOut& drop : dropouts) {
    if (drop.worker == worker && round >= drop.from_round &&
        round < effective_to_round(drop, flush_period)) {
      return true;
    }
  }
  if (dropout_rate > 0.0) {
    // Pure function of (seed, round, worker): the same worker drops in the
    // same rounds on every replay, independent of query order.
    Rng rng(derive_seed(derive_seed(seed, kDropoutSalt ^ round), worker));
    return rng.next_double() < dropout_rate;
  }
  return false;
}

bool FaultPlan::flush_rejoin_at(std::size_t worker, std::size_t round,
                                std::size_t flush_period) const {
  if (flush_period == 0 || round == 0) {
    return false;
  }
  for (const DropOut& drop : dropouts) {
    if (drop.worker == worker && drop.rejoin_at_flush &&
        drop.to_round > drop.from_round &&
        effective_to_round(drop, flush_period) == round) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::sender_demoted(std::size_t worker, std::size_t round) const {
  if (corruption_rate <= 0.0) {
    return false;
  }
  // Pure function of (seed, round, worker), like the drop-out stream: the
  // initial attempt plus every retry must all come up corrupted for the
  // retry budget to run out.
  Rng rng(derive_seed(derive_seed(seed, kCorruptionSalt ^ round), worker));
  for (std::size_t attempt = 0; attempt <= max_retries; ++attempt) {
    if (!rng.bernoulli(corruption_rate)) {
      return false;
    }
  }
  return true;
}

double FaultPlan::node_slowdown(std::size_t node) const {
  double slowdown = 1.0;
  for (const Straggler& straggler : stragglers) {
    if (straggler.node == node && straggler.slowdown > slowdown) {
      slowdown = straggler.slowdown;
    }
  }
  return slowdown;
}

void FaultPlan::validate() const {
  MARSIT_CHECK(packet_loss >= 0.0 && packet_loss < 1.0)
      << "packet_loss " << packet_loss << " outside [0, 1)";
  MARSIT_CHECK(dropout_rate >= 0.0 && dropout_rate < 1.0)
      << "dropout_rate " << dropout_rate << " outside [0, 1)";
  MARSIT_CHECK(latency_jitter >= 0.0) << "negative latency_jitter";
  MARSIT_CHECK(corruption_rate >= 0.0 && corruption_rate < 1.0)
      << "corruption_rate " << corruption_rate << " outside [0, 1)";
  MARSIT_CHECK((packet_loss == 0.0 && corruption_rate == 0.0) ||
               retry_timeout > 0.0)
      << "retried faults need a positive retry_timeout";
  MARSIT_CHECK((packet_loss == 0.0 && corruption_rate == 0.0) ||
               retry_backoff >= 1.0)
      << "retry_backoff must be >= 1";
  for (const Straggler& straggler : stragglers) {
    MARSIT_CHECK(straggler.slowdown >= 1.0)
        << "straggler slowdown " << straggler.slowdown << " below 1";
  }
  for (const Outage& outage : outages) {
    MARSIT_CHECK(outage.start >= 0.0 && outage.end >= outage.start)
        << "outage window [" << outage.start << ", " << outage.end
        << ") is not ordered";
  }
  for (const DropOut& drop : dropouts) {
    MARSIT_CHECK(drop.to_round >= drop.from_round)
        << "drop-out rounds [" << drop.from_round << ", " << drop.to_round
        << ") are not ordered";
  }
}

}  // namespace marsit
