// Cluster topologies for multi-hop all-reduce.
//
// Three shapes cover the paper: a ring (RAR), a 2-D torus (TAR), and a star
// (parameter server).  A Topology knows node count, neighbor relations, and
// the torus row/column decomposition the TAR collective schedules over.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace marsit {

enum class TopologyKind { kRing, kTorus2d, kStar };

const char* topology_kind_name(TopologyKind kind);

class Topology {
 public:
  /// Unidirectional ring over `num_nodes` >= 2 workers; messages flow from
  /// node i to node (i+1) mod M.
  static Topology ring(std::size_t num_nodes);

  /// rows × cols torus, both >= 2.  Node id = r*cols + c.
  static Topology torus2d(std::size_t rows, std::size_t cols);

  /// Star with `num_workers` >= 1 leaves plus a dedicated server.  The server
  /// is node id num_workers (the last id); leaves are 0..num_workers-1.
  static Topology star(std::size_t num_workers);

  TopologyKind kind() const { return kind_; }
  /// Total node count including the PS server for star.
  std::size_t num_nodes() const { return num_nodes_; }
  /// Worker count (excludes the star's server node).
  std::size_t num_workers() const;

  // Ring accessors.
  std::size_t ring_next(std::size_t node) const;
  std::size_t ring_prev(std::size_t node) const;

  // Torus accessors.
  std::size_t torus_rows() const;
  std::size_t torus_cols() const;
  std::size_t torus_node(std::size_t row, std::size_t col) const;
  std::size_t torus_row_of(std::size_t node) const;
  std::size_t torus_col_of(std::size_t node) const;
  /// Next node along the same row ring / column ring.
  std::size_t torus_row_next(std::size_t node) const;
  std::size_t torus_col_next(std::size_t node) const;

  // Star accessors.
  std::size_t star_server() const;

  std::string debug_string() const;

 private:
  Topology(TopologyKind kind, std::size_t num_nodes, std::size_t rows,
           std::size_t cols)
      : kind_(kind), num_nodes_(num_nodes), rows_(rows), cols_(cols) {}

  TopologyKind kind_;
  std::size_t num_nodes_;
  std::size_t rows_;  // torus only
  std::size_t cols_;  // torus only
};

}  // namespace marsit
