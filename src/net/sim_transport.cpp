#include "net/sim_transport.hpp"

#include "util/check.hpp"

namespace marsit {

SimFabric::SimFabric(std::size_t world_size, const CostModel& cost_model)
    : world_size_(world_size), net_(world_size, cost_model) {
  MARSIT_CHECK(world_size >= 2) << "fabric needs at least 2 endpoints";
}

std::unique_ptr<SimTransport> SimFabric::endpoint(std::size_t rank) {
  MARSIT_CHECK(rank < world_size_)
      << "rank " << rank << " outside the " << world_size_ << "-node fabric";
  // unique_ptr over make_unique: the constructor is private to SimFabric.
  return std::unique_ptr<SimTransport>(new SimTransport(this, rank));
}

double SimFabric::simulated_seconds() const {
  const MutexLock lock(mutex_);
  return simulated_seconds_;
}

double SimFabric::total_bytes() const {
  const MutexLock lock(mutex_);
  return net_.total_bytes();
}

void SimFabric::send(std::size_t src, std::size_t dst, std::uint32_t tag,
                     std::span<const std::uint8_t> payload) {
  MARSIT_CHECK(src < world_size_ && dst < world_size_ && src != dst)
      << "bad simulated transfer " << src << " -> " << dst;
  {
    const MutexLock lock(mutex_);
    // Price the message on the α–β model; the NIC-occupancy state inside
    // NetworkSim extends the per-node timelines exactly like the collective
    // schedules do, so the prediction matches ring/torus arithmetic.
    const double done = net_.transfer(
        src, dst, static_cast<double>(payload.size()), simulated_seconds_);
    if (done > simulated_seconds_) {
      simulated_seconds_ = done;
    }
    mail_[StreamKey{src, dst, tag}].emplace_back(payload.begin(),
                                                 payload.end());
  }
  cv_.notify_all();
}

std::vector<std::uint8_t> SimFabric::recv(std::size_t src, std::size_t dst,
                                          std::uint32_t tag) {
  const MutexLock lock(mutex_);
  const StreamKey key{src, dst, tag};
  cv_.wait(mutex_, [&]() MARSIT_REQUIRES(mutex_) {
    const auto found = mail_.find(key);
    return found != mail_.end() && !found->second.empty();
  });
  const auto found = mail_.find(key);
  std::vector<std::uint8_t> payload = std::move(found->second.front());
  found->second.pop_front();
  return payload;
}

}  // namespace marsit
