// SimTransport — the Transport backend over NetworkSim (DESIGN.md §14).
//
// A SimFabric owns one NetworkSim shared by all endpoints, the same way the
// collective schedules in src/collectives share one: every send() is priced
// through NetworkSim::transfer on the α–β cost model (including the CRC
// footer under corruption plans and per-NIC serialization), and the payload
// itself is handed over through an in-memory mailbox.  Delivery is
// immediate from the caller's perspective — the simulator's transfer()
// already accounts for when the bytes land — which satisfies the Transport
// contract that send() returns once the peer's transport accepted the
// message.
//
// This is the deterministic oracle the socket backend is checked against: a
// distributed worker run over SimTransport must produce bit-identical
// parameters to the same run over SocketTransport, because both carry the
// same bytes through the same schedules (tests/dist_cross_backend_test).
//
// Endpoints may live on different threads (the in-process cross-backend
// test does this); the fabric serializes all state under one mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "net/cost_model.hpp"
#include "net/network_sim.hpp"
#include "net/transport.hpp"
#include "util/thread_safety.hpp"

namespace marsit {

class SimTransport;

/// The shared medium: one NetworkSim plus the in-memory mailboxes of every
/// (src, dst, tag) stream.
class SimFabric {
 public:
  SimFabric(std::size_t world_size, const CostModel& cost_model);

  std::size_t world_size() const { return world_size_; }

  /// Creates the endpoint for `rank` (each rank exactly once).
  std::unique_ptr<SimTransport> endpoint(std::size_t rank);

  /// Total simulated seconds the fabric has charged across all transfers —
  /// the α–β prediction the trainer reports next to measured wall-clock.
  double simulated_seconds() const;

  /// Total bytes priced on the simulated wire.
  double total_bytes() const;

 private:
  friend class SimTransport;

  void send(std::size_t src, std::size_t dst, std::uint32_t tag,
            std::span<const std::uint8_t> payload);
  std::vector<std::uint8_t> recv(std::size_t src, std::size_t dst,
                                 std::uint32_t tag);

  using StreamKey = std::tuple<std::size_t, std::size_t, std::uint32_t>;

  std::size_t world_size_;
  mutable Mutex mutex_;
  CondVar cv_;
  NetworkSim net_ MARSIT_GUARDED_BY(mutex_);
  /// Monotone fabric clock: every send is scheduled ready at the latest
  /// completion so far, and the maximum completion is the fabric's total.
  double simulated_seconds_ MARSIT_GUARDED_BY(mutex_) = 0.0;
  std::map<StreamKey, std::deque<std::vector<std::uint8_t>>> mail_
      MARSIT_GUARDED_BY(mutex_);
};

class SimTransport final : public Transport {
 public:
  std::size_t rank() const override { return rank_; }
  std::size_t world_size() const override { return fabric_->world_size(); }

  void send(std::size_t peer, std::uint32_t tag,
            std::span<const std::uint8_t> payload) override {
    fabric_->send(rank_, peer, tag, payload);
  }
  std::vector<std::uint8_t> recv(std::size_t peer,
                                 std::uint32_t tag) override {
    return fabric_->recv(peer, rank_, tag);
  }

 private:
  friend class SimFabric;
  SimTransport(SimFabric* fabric, std::size_t rank)
      : fabric_(fabric), rank_(rank) {}

  SimFabric* fabric_;
  std::size_t rank_;
};

}  // namespace marsit
