// SocketTransport wire format: length-prefixed frames with the same CRC32
// footer the simulator prices (net/crc32.hpp), so both backends carry the
// identical integrity overhead.
//
// Frame layout (all integers little-endian):
//
//   magic   u32   kDataMagic ("MRSF") or kAckMagic ("MRSA")
//   tag     u32   stream tag (collective phase / round)
//   length  u32   payload byte count (0 for acks)
//   payload length bytes
//   crc32   u32   CRC32 over everything after the magic (tag | length |
//                 payload) — the magic is the resynchronization sentinel
//                 and stays outside the checksum.
//
// Decoding is hostile-reader safe (the ckpt_snapshot_test discipline): a
// short buffer is "wait for more bytes", but a bad magic, an oversized
// declared length, or a checksum mismatch throws CheckError — a framing
// error on a stream socket is unrecoverable desynchronization, never
// something to guess past.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace marsit {

inline constexpr std::uint32_t kDataMagic = 0x4d525346;  // "MRSF"
inline constexpr std::uint32_t kAckMagic = 0x4d525341;   // "MRSA"

/// Hard ceiling on a frame's declared payload size: anything larger is a
/// corrupted or hostile length prefix, rejected before any allocation.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 1u << 30;

/// magic + tag + length.
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// The CRC32 footer.
inline constexpr std::size_t kFrameFooterBytes = 4;

struct Frame {
  std::uint32_t magic = 0;
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;

  bool is_ack() const { return magic == kAckMagic; }
};

/// Serializes one frame (header | payload | crc32 footer).
std::vector<std::uint8_t> encode_frame(std::uint32_t magic, std::uint32_t tag,
                                       std::span<const std::uint8_t> payload);

/// Attempts to decode one frame from the front of `buffer`.  Returns the
/// number of bytes consumed (header + payload + footer) with `out` filled,
/// or 0 when the buffer holds only a prefix (caller reads more bytes and
/// retries).  Throws CheckError on an unknown magic, a length above
/// kMaxFramePayloadBytes, or a CRC mismatch.
std::size_t try_decode_frame(std::span<const std::uint8_t> buffer, Frame& out);

}  // namespace marsit
