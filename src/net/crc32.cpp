#include "net/crc32.hpp"

#include <array>

namespace marsit {

namespace {

/// 256-entry lookup table for the reflected IEEE polynomial, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  return kTable;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  return crc32(bytes.data(), bytes.size());
}

bool crc32_matches(const void* data, std::size_t size, std::uint32_t footer) {
  return crc32(data, size) == footer;
}

}  // namespace marsit
