#include "net/network_sim.hpp"

#include <algorithm>

namespace marsit {

NetworkSim::NetworkSim(std::size_t num_nodes, CostModel model)
    : model_(model), nodes_(num_nodes) {
  MARSIT_CHECK(num_nodes >= 2) << "network needs at least 2 nodes";
  MARSIT_CHECK(model_.link_bandwidth > 0 && model_.server_bandwidth > 0)
      << "bandwidths must be positive";
}

double NetworkSim::transfer(std::size_t src, std::size_t dst, double bytes,
                            double ready_time, bool server_endpoint) {
  MARSIT_CHECK(src < nodes_.size() && dst < nodes_.size())
      << "transfer endpoints " << src << "->" << dst << " out of range";
  MARSIT_CHECK(src != dst) << "self-transfer on node " << src;
  MARSIT_CHECK(bytes >= 0.0) << "negative transfer size";

  const double bandwidth =
      server_endpoint ? model_.server_bandwidth : model_.link_bandwidth;
  const double start = std::max({ready_time, nodes_[src].egress_free,
                                 nodes_[dst].ingress_free});
  const double end = start + model_.link_alpha + bytes / bandwidth;
  nodes_[src].egress_free = end;
  nodes_[dst].ingress_free = end;
  total_bytes_ += bytes;
  ++total_messages_;
  return end;
}

double NetworkSim::egress_free(std::size_t node) const {
  MARSIT_CHECK(node < nodes_.size()) << "node out of range";
  return nodes_[node].egress_free;
}

double NetworkSim::ingress_free(std::size_t node) const {
  MARSIT_CHECK(node < nodes_.size()) << "node out of range";
  return nodes_[node].ingress_free;
}

void NetworkSim::reset() {
  for (auto& nics : nodes_) {
    nics = NodeNics{};
  }
  total_bytes_ = 0.0;
  total_messages_ = 0;
}

}  // namespace marsit
