#include "net/network_sim.hpp"

#include <algorithm>
#include <string>

#include "net/crc32.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace marsit {

namespace {

/// Salt separating the link-level fault stream from the membership stream
/// (kDropoutSalt in fault_plan.cpp).
constexpr std::uint64_t kLinkSalt = 0x11c4fa17ULL;

}  // namespace

NetworkSim::NetworkSim(std::size_t num_nodes, CostModel model)
    : model_(model), nodes_(num_nodes) {
  MARSIT_CHECK(num_nodes >= 2) << "network needs at least 2 nodes";
  MARSIT_CHECK(model_.link_bandwidth > 0 && model_.server_bandwidth > 0)
      << "bandwidths must be positive";
}

void NetworkSim::set_fault_plan(const FaultPlan* plan) {
  if (plan != nullptr) {
    plan->validate();
  }
  fault_plan_ = plan;
}

void NetworkSim::begin_round(std::size_t round) {
  reset();
  if (fault_plan_ != nullptr && fault_plan_->has_link_faults()) {
    fault_rng_ = Rng(derive_seed(derive_seed(fault_plan_->seed, kLinkSalt),
                                 round));
  }
}

double NetworkSim::defer_past_outages(std::size_t src, std::size_t dst,
                                      double start) const {
  // Windows can abut or overlap; iterate until the start time is outside
  // every window touching either endpoint.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const FaultPlan::Outage& outage : fault_plan_->outages) {
      if ((outage.node == src || outage.node == dst) &&
          start >= outage.start && start < outage.end) {
        start = outage.end;
        moved = true;
      }
    }
  }
  return start;
}

double NetworkSim::charge_retries(double fault_rate, double bytes,
                                  double start) {
  const FaultPlan& plan = *fault_plan_;
  double timeout = plan.retry_timeout;
  for (std::size_t attempt = 0;
       attempt < plan.max_retries && fault_rng_.bernoulli(fault_rate);
       ++attempt) {
    retransmitted_bytes_ += bytes;
    total_bytes_ += bytes;
    ++retransmissions_;
    start += timeout;
    timeout *= plan.retry_backoff;
  }
  return start;
}

double NetworkSim::transfer(std::size_t src, std::size_t dst, double bytes,
                            double ready_time, bool server_endpoint) {
  MARSIT_CHECK(src < nodes_.size() && dst < nodes_.size())
      << "transfer endpoints " << src << "->" << dst << " out of range";
  MARSIT_CHECK(src != dst) << "self-transfer on node " << src;
  MARSIT_CHECK(bytes >= 0.0) << "negative transfer size";

  const double bandwidth =
      server_endpoint ? model_.server_bandwidth : model_.link_bandwidth;
  double start = std::max({ready_time, nodes_[src].egress_free,
                           nodes_[dst].ingress_free});
  double end;
  if (fault_plan_ == nullptr || !fault_plan_->has_link_faults()) {
    // Fault-free fast path: the original α–β arithmetic, untouched.
    end = start + model_.link_alpha + bytes / bandwidth;
  } else {
    const FaultPlan& plan = *fault_plan_;
    if (plan.corruption_rate > 0.0) {
      // Wire integrity costs a CRC32 footer on every message; the footer
      // rides along on retransmissions too.
      bytes += kCrcFooterBytes;
    }
    if (!plan.outages.empty()) {
      start = defer_past_outages(src, dst, start);
    }
    // A straggling endpoint serializes the payload slower; the slower end
    // gates the link.
    const double slowdown =
        std::max(plan.node_slowdown(src), plan.node_slowdown(dst));
    double duration = model_.link_alpha + bytes * slowdown / bandwidth;
    if (plan.latency_jitter > 0.0) {
      duration += fault_rng_.next_double() * plan.latency_jitter;
    }
    // Packet loss: each lost attempt burns the payload on the wire and the
    // sender waits out the (exponentially backed-off) retry timeout before
    // transmitting again.
    if (plan.packet_loss > 0.0) {
      start = charge_retries(plan.packet_loss, bytes, start);
    }
    // Corruption: the receiver's CRC32 check rejects the delivery and the
    // sender retransmits after the same backed-off timeout as packet loss.
    // (Persisting past max_retries is handled one level up: FaultPlan::
    // sender_demoted routes the sender through the survivor path instead of
    // delivering garbage.)
    if (plan.corruption_rate > 0.0) {
      start = charge_retries(plan.corruption_rate, bytes, start);
    }
    end = start + duration;
  }
  nodes_[src].egress_free = end;
  nodes_[dst].ingress_free = end;
  total_bytes_ += bytes;
  ++total_messages_;

  // Observability: one "hop" span per transfer on the sender's track, and
  // the per-hop latency/byte distributions.  Pure observation — the timing
  // arithmetic above is untouched, so disabled runs stay bit-identical.
  if (obs::TraceSession* trace = obs::TraceSession::current()) {
    const double offset = trace->time_offset();
    trace->add_span(
        "hop " + std::to_string(src) + "→" + std::to_string(dst), "hop",
        offset + start, offset + end,
        /*track=*/1 + static_cast<std::uint32_t>(src));
  }
  if (obs::metrics_enabled()) {
    static const obs::Histogram hop_seconds("net.hop_seconds");
    static const obs::Histogram hop_bytes("net.hop_bytes");
    static const obs::Counter messages("net.messages");
    hop_seconds.observe(end - start);
    hop_bytes.observe(bytes);
    messages.increment();
  }
  return end;
}

double NetworkSim::egress_free(std::size_t node) const {
  MARSIT_CHECK(node < nodes_.size()) << "node out of range";
  return nodes_[node].egress_free;
}

double NetworkSim::ingress_free(std::size_t node) const {
  MARSIT_CHECK(node < nodes_.size()) << "node out of range";
  return nodes_[node].ingress_free;
}

void NetworkSim::reset() {
  for (auto& nics : nodes_) {
    nics = NodeNics{};
  }
  total_bytes_ = 0.0;
  total_messages_ = 0;
  retransmitted_bytes_ = 0.0;
  retransmissions_ = 0;
}

}  // namespace marsit
