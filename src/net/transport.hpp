// Transport — the point-to-point message layer underneath the collective
// schedules (DESIGN.md §14).
//
// The collectives in src/collectives describe *who* sends *what* to *whom*
// per step; a Transport carries the bytes.  Two backends implement it:
//
//   SimTransport     the deterministic oracle — endpoints share a SimFabric
//                    whose NetworkSim prices every message on the α–β cost
//                    model, in-memory queues deliver the payloads;
//   SocketTransport  real OS sockets — one process (or thread) per worker,
//                    length-prefixed CRC-checked frames, acks for
//                    flow-control (see net/frame.hpp for the wire format).
//
// Contract:
//   * send() blocks until the payload is accepted by the peer's transport
//     (acked on sockets; enqueued-and-priced on the simulator).  After
//     send() returns the bytes are guaranteed to be eventually recv()able
//     exactly once by the peer.
//   * recv() blocks until a message from `peer` with tag `tag` is
//     available and returns its payload.  Messages with equal (peer, tag)
//     form a FIFO stream; distinct tags are independent streams, so two
//     overlapping collective phases cannot steal each other's payloads.
//   * Implementations must be callable from one thread per endpoint (the
//     worker loop); they need not support concurrent send/recv races on a
//     single endpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace marsit {

class Transport {
 public:
  virtual ~Transport() = default;

  /// This endpoint's rank in [0, world_size).
  virtual std::size_t rank() const = 0;
  virtual std::size_t world_size() const = 0;

  /// Delivers `payload` to `peer` on the (sender, tag) stream.  Blocks
  /// until the peer's transport has accepted the bytes.
  virtual void send(std::size_t peer, std::uint32_t tag,
                    std::span<const std::uint8_t> payload) = 0;

  /// Returns the next payload of the (peer, tag) stream, blocking until
  /// one arrives.
  virtual std::vector<std::uint8_t> recv(std::size_t peer,
                                         std::uint32_t tag) = 0;
};

}  // namespace marsit
