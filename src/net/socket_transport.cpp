#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/frame.hpp"
#include "util/check.hpp"

namespace marsit {

namespace {

/// strerror(3) shares one static buffer across threads (clang-tidy
/// concurrency-mt-unsafe), so errno is rendered through strerror_r instead.
/// glibc's _GNU_SOURCE variant returns char* (possibly ignoring the caller
/// buffer) while the POSIX variant returns int and fills the buffer; the
/// overload pair dispatches on whichever signature the platform provides.
[[maybe_unused]] const char* describe_errno_result(const char* result,
                                                   const char* /*buf*/) {
  return result;
}
[[maybe_unused]] const char* describe_errno_result(int /*rc*/,
                                                   const char* buf) {
  return buf;
}

std::string errno_message(int err) {
  char buf[256] = "unknown error";
  return describe_errno_result(::strerror_r(err, buf, sizeof(buf)), buf);
}

/// write(2) until every byte is out, retrying EINTR.  Returns false on any
/// other error (peer gone); callers surface it as a closed connection.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// read(2) exactly `size` bytes, retrying EINTR.  False on EOF or error.
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketTransport::SocketTransport(std::size_t rank, std::vector<int> peer_fds)
    : rank_(rank) {
  MARSIT_CHECK(rank < peer_fds.size())
      << "rank " << rank << " outside the " << peer_fds.size()
      << "-endpoint mesh";
  connections_.resize(peer_fds.size());
  for (std::size_t peer = 0; peer < peer_fds.size(); ++peer) {
    if (peer == rank) {
      MARSIT_CHECK(peer_fds[peer] < 0) << "self slot must carry fd -1";
      continue;
    }
    MARSIT_CHECK(peer_fds[peer] >= 0)
        << "missing socket for peer " << peer;
    connections_[peer] = std::make_unique<Connection>();
    Connection& conn = *connections_[peer];
    conn.fd = peer_fds[peer];
    // Sign payloads are latency-sensitive small frames; never Nagle-delay
    // the ack behind them.
    const int one = 1;
    (void)::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn.reader = std::thread([this, &conn] { reader_loop(conn); });
  }
}

SocketTransport::~SocketTransport() {
  for (auto& conn : connections_) {
    if (conn == nullptr) {
      continue;
    }
    // Let the reader finish acking anything it has already mailboxed —
    // a peer may still be blocked in send() on that ack.
    {
      const MutexLock lock(conn->mutex);
      conn->cv.wait(conn->mutex, [&conn]() MARSIT_REQUIRES(conn->mutex) {
        return conn->acks_pending == 0 || conn->closed;
      });
    }
    // Wake the reader out of its blocking read; it marks the connection
    // closed and exits.
    ::shutdown(conn->fd, SHUT_RDWR);
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
    ::close(conn->fd);
  }
}

SocketTransport::Connection& SocketTransport::connection(std::size_t peer) {
  MARSIT_CHECK(peer < connections_.size() && peer != rank_)
      << "rank " << rank_ << " has no connection to peer " << peer;
  return *connections_[peer];
}

void SocketTransport::reader_loop(Connection& conn) {
  std::string error;
  while (true) {
    // Frames are read header-first: the fixed 12 bytes name the payload
    // size, then the remainder arrives in one exact read.  try_decode_frame
    // re-validates the whole thing (magic, length ceiling, CRC).
    std::vector<std::uint8_t> bytes(kFrameHeaderBytes);
    if (!read_all(conn.fd, bytes.data(), bytes.size())) {
      break;  // EOF / peer shutdown: a clean close, not an error
    }
    Frame frame;
    try {
      std::size_t consumed = try_decode_frame(
          {bytes.data(), bytes.size()}, frame);
      if (consumed == 0) {
        const std::uint32_t length = static_cast<std::uint32_t>(bytes[8]) |
            (static_cast<std::uint32_t>(bytes[9]) << 8) |
            (static_cast<std::uint32_t>(bytes[10]) << 16) |
            (static_cast<std::uint32_t>(bytes[11]) << 24);
        // Length was not yet ceiling-checked if the header alone decoded to
        // "need more": fetch body + footer, then decode for real.
        MARSIT_CHECK(length <= kMaxFramePayloadBytes)
            << "frame declares a " << length << "-byte payload";
        const std::size_t rest =
            static_cast<std::size_t>(length) + kFrameFooterBytes;
        bytes.resize(kFrameHeaderBytes + rest);
        if (!read_all(conn.fd, bytes.data() + kFrameHeaderBytes, rest)) {
          error = "connection dropped mid-frame";
          break;
        }
        consumed = try_decode_frame({bytes.data(), bytes.size()}, frame);
        MARSIT_CHECK(consumed == bytes.size())
            << "frame decode consumed " << consumed << " of " << bytes.size();
      }
    } catch (const CheckError& failure) {
      error = failure.what();
      break;
    }
    if (frame.is_ack()) {
      {
        const MutexLock lock(conn.mutex);
        ++conn.acks;
      }
      conn.cv.notify_all();
      continue;
    }
    // Data frame: mailbox it, then ack.  Acking from the reader thread —
    // never from recv() — keeps send/recv order on the two endpoints
    // independent, which is what makes symmetric exchanges deadlock-free.
    {
      const MutexLock lock(conn.mutex);
      conn.mailbox[frame.tag].push_back(std::move(frame.payload));
      ++conn.acks_pending;
    }
    conn.cv.notify_all();
    bool acked = false;
    {
      const MutexLock lock(conn.write_mutex);
      const std::vector<std::uint8_t> ack =
          encode_frame(kAckMagic, frame.tag, {});
      acked = write_all(conn.fd, ack.data(), ack.size());
    }
    {
      const MutexLock lock(conn.mutex);
      --conn.acks_pending;
    }
    conn.cv.notify_all();
    if (!acked) {
      error = "peer vanished before ack";
      break;
    }
  }
  {
    const MutexLock lock(conn.mutex);
    conn.closed = true;
    conn.error = error;
  }
  conn.cv.notify_all();
}

void SocketTransport::send(std::size_t peer, std::uint32_t tag,
                           std::span<const std::uint8_t> payload) {
  Connection& conn = connection(peer);
  const std::vector<std::uint8_t> frame =
      encode_frame(kDataMagic, tag, payload);
  std::size_t seq = 0;
  {
    const MutexLock lock(conn.write_mutex);
    MARSIT_CHECK(write_all(conn.fd, frame.data(), frame.size()))
        << "rank " << rank_ << " failed to write to peer " << peer;
    const MutexLock state(conn.mutex);
    seq = ++conn.sent;
  }
  payload_bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
  data_frames_sent_.fetch_add(1, std::memory_order_relaxed);
  const MutexLock lock(conn.mutex);
  conn.cv.wait(conn.mutex, [&conn, seq]() MARSIT_REQUIRES(conn.mutex) {
    return conn.acks >= seq || conn.closed;
  });
  MARSIT_CHECK(conn.acks >= seq)
      << "rank " << rank_ << " lost peer " << peer << " awaiting ack"
      << (conn.error.empty() ? "" : ": ") << conn.error;
}

std::vector<std::uint8_t> SocketTransport::recv(std::size_t peer,
                                                std::uint32_t tag) {
  Connection& conn = connection(peer);
  const MutexLock lock(conn.mutex);
  conn.cv.wait(conn.mutex, [&conn, tag]() MARSIT_REQUIRES(conn.mutex) {
    const auto found = conn.mailbox.find(tag);
    return (found != conn.mailbox.end() && !found->second.empty()) ||
           conn.closed;
  });
  const auto found = conn.mailbox.find(tag);
  MARSIT_CHECK(found != conn.mailbox.end() && !found->second.empty())
      << "rank " << rank_ << " lost peer " << peer << " awaiting tag " << tag
      << (conn.error.empty() ? "" : ": ") << conn.error;
  std::vector<std::uint8_t> payload = std::move(found->second.front());
  found->second.pop_front();
  return payload;
}

int bind_loopback_listener(std::uint16_t* port_out) {
  // Under heavy parallel test load the kernel can transiently refuse even
  // an OS-assigned port (ephemeral range exhausted by TIME_WAIT churn).
  // That is a flake, not a bug: retry with exponential backoff.
  constexpr int kMaxAttempts = 8;
  constexpr useconds_t kInitialBackoffUs = 10'000;  // 10ms, doubling
  useconds_t backoff = kInitialBackoffUs;
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MARSIT_CHECK(fd >= 0) << "socket(): " << errno_message(errno);
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // OS-assigned
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const int bind_errno = errno;
      ::close(fd);
      MARSIT_CHECK(bind_errno == EADDRINUSE && attempt + 1 < kMaxAttempts)
          << "bind(): " << errno_message(bind_errno) << " (attempt "
          << attempt + 1 << "/" << kMaxAttempts << ")";
      ::usleep(backoff);
      backoff *= 2;
      continue;
    }
    socklen_t len = sizeof(addr);
    MARSIT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0)
        << "getsockname(): " << errno_message(errno);
    MARSIT_CHECK(::listen(fd, SOMAXCONN) == 0)
        << "listen(): " << errno_message(errno);
    *port_out = ntohs(addr.sin_port);
    return fd;
  }
}

std::vector<int> connect_socket_mesh(std::size_t rank, std::size_t world_size,
                                     int listen_fd,
                                     std::span<const std::uint16_t> ports) {
  MARSIT_CHECK(world_size >= 2 && rank < world_size &&
               ports.size() == world_size)
      << "mesh of " << world_size << " needs " << world_size
      << " ports and rank " << rank << " in range";
  std::vector<int> fds(world_size, -1);
  // Connect downward: rank r dials every lower rank and announces itself.
  for (std::size_t peer = 0; peer < rank; ++peer) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MARSIT_CHECK(fd >= 0) << "socket(): " << errno_message(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ports[peer]);
    int rc = -1;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    MARSIT_CHECK(rc == 0) << "rank " << rank << " cannot reach rank " << peer
                          << ": " << errno_message(errno);
    const std::uint32_t hello = static_cast<std::uint32_t>(rank);
    std::uint8_t wire[4] = {
        static_cast<std::uint8_t>(hello & 0xff),
        static_cast<std::uint8_t>((hello >> 8) & 0xff),
        static_cast<std::uint8_t>((hello >> 16) & 0xff),
        static_cast<std::uint8_t>((hello >> 24) & 0xff),
    };
    MARSIT_CHECK(write_all(fd, wire, sizeof(wire)))
        << "rank " << rank << " hello to " << peer << " failed";
    fds[peer] = fd;
  }
  // Accept upward: every higher rank dials us and says who it is.
  for (std::size_t expected = rank + 1; expected < world_size; ++expected) {
    int fd = -1;
    do {
      fd = ::accept(listen_fd, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    MARSIT_CHECK(fd >= 0) << "accept(): " << errno_message(errno);
    std::uint8_t wire[4] = {0, 0, 0, 0};
    MARSIT_CHECK(read_all(fd, wire, sizeof(wire))) << "hello read failed";
    const std::uint32_t peer = static_cast<std::uint32_t>(wire[0]) |
                               (static_cast<std::uint32_t>(wire[1]) << 8) |
                               (static_cast<std::uint32_t>(wire[2]) << 16) |
                               (static_cast<std::uint32_t>(wire[3]) << 24);
    MARSIT_CHECK(peer > rank && peer < world_size && fds[peer] == -1)
        << "mesh hello names rank " << peer << ", which rank " << rank
        << " does not expect";
    fds[peer] = fd;
  }
  ::close(listen_fd);
  return fds;
}

}  // namespace marsit
