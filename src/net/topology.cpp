#include "net/topology.hpp"

#include <sstream>

namespace marsit {

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kTorus2d:
      return "torus2d";
    case TopologyKind::kStar:
      return "star";
  }
  return "?";
}

Topology Topology::ring(std::size_t num_nodes) {
  MARSIT_CHECK(num_nodes >= 2) << "ring needs at least 2 nodes";
  return Topology(TopologyKind::kRing, num_nodes, 0, 0);
}

Topology Topology::torus2d(std::size_t rows, std::size_t cols) {
  MARSIT_CHECK(rows >= 2 && cols >= 2)
      << "torus needs rows, cols >= 2 (got " << rows << "x" << cols << ")";
  return Topology(TopologyKind::kTorus2d, rows * cols, rows, cols);
}

Topology Topology::star(std::size_t num_workers) {
  MARSIT_CHECK(num_workers >= 1) << "star needs at least one worker";
  return Topology(TopologyKind::kStar, num_workers + 1, 0, 0);
}

std::size_t Topology::num_workers() const {
  return kind_ == TopologyKind::kStar ? num_nodes_ - 1 : num_nodes_;
}

std::size_t Topology::ring_next(std::size_t node) const {
  MARSIT_CHECK(kind_ == TopologyKind::kRing) << "ring_next on non-ring";
  MARSIT_CHECK(node < num_nodes_) << "node out of range";
  return (node + 1) % num_nodes_;
}

std::size_t Topology::ring_prev(std::size_t node) const {
  MARSIT_CHECK(kind_ == TopologyKind::kRing) << "ring_prev on non-ring";
  MARSIT_CHECK(node < num_nodes_) << "node out of range";
  return (node + num_nodes_ - 1) % num_nodes_;
}

std::size_t Topology::torus_rows() const {
  MARSIT_CHECK(kind_ == TopologyKind::kTorus2d) << "torus accessor on non-torus";
  return rows_;
}

std::size_t Topology::torus_cols() const {
  MARSIT_CHECK(kind_ == TopologyKind::kTorus2d) << "torus accessor on non-torus";
  return cols_;
}

std::size_t Topology::torus_node(std::size_t row, std::size_t col) const {
  MARSIT_CHECK(kind_ == TopologyKind::kTorus2d) << "torus accessor on non-torus";
  MARSIT_CHECK(row < rows_ && col < cols_) << "torus coordinate out of range";
  return row * cols_ + col;
}

std::size_t Topology::torus_row_of(std::size_t node) const {
  MARSIT_CHECK(kind_ == TopologyKind::kTorus2d) << "torus accessor on non-torus";
  MARSIT_CHECK(node < num_nodes_) << "node out of range";
  return node / cols_;
}

std::size_t Topology::torus_col_of(std::size_t node) const {
  MARSIT_CHECK(kind_ == TopologyKind::kTorus2d) << "torus accessor on non-torus";
  MARSIT_CHECK(node < num_nodes_) << "node out of range";
  return node % cols_;
}

std::size_t Topology::torus_row_next(std::size_t node) const {
  const std::size_t row = torus_row_of(node);
  const std::size_t col = torus_col_of(node);
  return torus_node(row, (col + 1) % cols_);
}

std::size_t Topology::torus_col_next(std::size_t node) const {
  const std::size_t row = torus_row_of(node);
  const std::size_t col = torus_col_of(node);
  return torus_node((row + 1) % rows_, col);
}

std::size_t Topology::star_server() const {
  MARSIT_CHECK(kind_ == TopologyKind::kStar) << "star_server on non-star";
  return num_nodes_ - 1;
}

std::string Topology::debug_string() const {
  std::ostringstream out;
  out << topology_kind_name(kind_) << "(";
  if (kind_ == TopologyKind::kTorus2d) {
    out << rows_ << "x" << cols_;
  } else {
    out << num_workers() << " workers";
  }
  out << ")";
  return out.str();
}

}  // namespace marsit
