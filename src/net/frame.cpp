#include "net/frame.hpp"

#include "net/crc32.hpp"
#include "util/check.hpp"

namespace marsit {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xff));
}

std::uint32_t get_u32(const std::uint8_t* at) {
  return static_cast<std::uint32_t>(at[0]) |
         (static_cast<std::uint32_t>(at[1]) << 8) |
         (static_cast<std::uint32_t>(at[2]) << 16) |
         (static_cast<std::uint32_t>(at[3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(std::uint32_t magic, std::uint32_t tag,
                                       std::span<const std::uint8_t> payload) {
  MARSIT_CHECK(magic == kDataMagic || magic == kAckMagic)
      << "unknown frame magic " << magic;
  MARSIT_CHECK(payload.size() <= kMaxFramePayloadBytes)
      << "frame payload of " << payload.size() << " bytes exceeds the "
      << kMaxFramePayloadBytes << " ceiling";
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size() + kFrameFooterBytes);
  put_u32(bytes, magic);
  put_u32(bytes, tag);
  put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  // CRC over tag | length | payload — everything after the magic.
  const std::uint32_t footer = crc32(bytes.data() + 4, bytes.size() - 4);
  put_u32(bytes, footer);
  return bytes;
}

std::size_t try_decode_frame(std::span<const std::uint8_t> buffer,
                             Frame& out) {
  if (buffer.size() < kFrameHeaderBytes) {
    return 0;
  }
  const std::uint32_t magic = get_u32(buffer.data());
  MARSIT_CHECK(magic == kDataMagic || magic == kAckMagic)
      << "frame stream desynchronized: unknown magic " << magic;
  const std::uint32_t tag = get_u32(buffer.data() + 4);
  const std::uint32_t length = get_u32(buffer.data() + 8);
  MARSIT_CHECK(length <= kMaxFramePayloadBytes)
      << "frame declares a " << length << "-byte payload, above the "
      << kMaxFramePayloadBytes << " ceiling";
  const std::size_t total =
      kFrameHeaderBytes + static_cast<std::size_t>(length) + kFrameFooterBytes;
  if (buffer.size() < total) {
    return 0;
  }
  const std::uint32_t footer = get_u32(buffer.data() + total - 4);
  MARSIT_CHECK(crc32_matches(buffer.data() + 4, total - 8, footer))
      << "frame CRC mismatch on tag " << tag;
  out.magic = magic;
  out.tag = tag;
  out.payload.assign(buffer.begin() + kFrameHeaderBytes,
                     buffer.begin() + static_cast<std::ptrdiff_t>(
                                          kFrameHeaderBytes + length));
  return total;
}

}  // namespace marsit
