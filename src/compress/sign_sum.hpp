// Sign-sum messages: the bit-length-expanding aggregation the paper's
// Section 3.1 describes for extending signSGD/SSDM to multi-hop all-reduce.
//
// Each element carries the integer sum of ±1 contributions from the workers
// aggregated so far.  After m contributions the value lies in
// {−m, −m+2, ..., m}, which needs ⌈log2(m+1)⌉ + 1 bits on the wire (the "+1"
// is the sign) — the growth that makes these baselines slower than
// single-hop PS and that Marsit's ⊙ operator eliminates.  An optional
// Elias-γ recoding (see elias.hpp) compacts the wire image, mirroring the
// paper's use of Elias coding for the baselines.
//
// accumulate() and majority() run the word-parallel kernels from
// compress/kernels.hpp (64 elements per packed word, branch-free); the
// `*_scalar` twins are the original loops, kept as bit-exactness oracles.
// merge() and mean_into() are plain contiguous element-wise loops that the
// compiler already vectorizes — there is no packed-bit structure to exploit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/bit_vector.hpp"

namespace marsit {

class SignSum {
 public:
  SignSum() = default;

  /// Zero-initialized sums over `size` elements with no contributions yet.
  explicit SignSum(std::size_t size);

  /// Starts a sign-sum from one worker's sign bits (each counts ±1).
  static SignSum from_signs(const BitVector& bits);

  std::size_t size() const { return values_.size(); }
  /// Number of worker contributions accumulated.
  std::size_t contributions() const { return contributions_; }

  std::int32_t value(std::size_t i) const { return values_[i]; }
  std::span<const std::int32_t> values() const {
    return {values_.data(), values_.size()};
  }

  /// Mutable view of the per-element sums — the sharded aggregator writes
  /// disjoint chunks of this span concurrently, then records the
  /// contribution count once via set_contributions().
  std::span<std::int32_t> values_mut() {
    return {values_.data(), values_.size()};
  }

  /// Sets the contribution count directly (sharded aggregation accumulates
  /// chunks without going through accumulate()).
  void set_contributions(std::size_t contributions) {
    contributions_ = contributions;
  }

  /// Zeroes every sum and the contribution count, keeping the extent —
  /// round-to-round reuse without reallocation.
  void reset();

  /// Adds another worker's sign bits.
  void accumulate(const BitVector& bits);

  /// Scalar reference for accumulate (bit-identical).
  void accumulate_scalar(const BitVector& bits);

  /// Adds another sign-sum (segment merge in torus reduction).
  void merge(const SignSum& other);

  /// Majority decision per element: +1 when the sum is >= 0 (ties to +1,
  /// matching the pack_signs convention), encoded as bits.
  BitVector majority() const;

  /// Scalar reference for majority (bit-identical).
  BitVector majority_scalar() const;

  /// Mean contribution per element: value_i / contributions.
  void mean_into(std::span<float> out) const;

  /// Fixed-width wire size in bits: size() * (⌈log2(contributions+1)⌉ + 1).
  std::size_t wire_bits_fixed() const;

  /// Wire size after Elias-γ entropy coding of the zig-zag mapped values —
  /// computed exactly by encoding (compress/elias.hpp).
  std::size_t wire_bits_elias() const;

 private:
  std::vector<std::int32_t> values_;
  std::size_t contributions_ = 0;
};

/// Bits per element of a fixed-width sign-sum with m contributions:
/// ⌈log2(m+1)⌉ + 1.  The cost model and Figure 1/5 benches use this.
std::size_t sign_sum_bits_per_element(std::size_t contributions);

}  // namespace marsit
