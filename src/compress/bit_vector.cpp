#include "compress/bit_vector.hpp"

#include <bit>

#include "util/check.hpp"

namespace marsit {

BitVector::BitVector(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

bool BitVector::get(std::size_t i) const {
  MARSIT_CHECK(i < size_) << "bit index " << i << " out of size " << size_;
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void BitVector::set(std::size_t i, bool value) {
  MARSIT_CHECK(i < size_) << "bit index " << i << " out of size " << size_;
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t word : words_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  check_compatible(other);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(
        std::popcount(words_[w] ^ other.words_[w]));
  }
  return total;
}

void BitVector::fill(bool value) {
  const std::uint64_t word = value ? ~std::uint64_t{0} : 0;
  for (auto& w : words_) {
    w = word;
  }
  clear_tail();
}

BitVector& BitVector::operator&=(const BitVector& other) {
  check_compatible(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  check_compatible(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  check_compatible(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
  return *this;
}

void BitVector::clear_tail() {
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

void BitVector::check_compatible(const BitVector& other) const {
  MARSIT_CHECK(size_ == other.size_)
      << "bit-vector extents " << size_ << " vs " << other.size_;
}

}  // namespace marsit
