// Packed sign-bit vector: the wire format of every one-bit message in
// marsit.  Bit value 1 encodes sign +1 and bit value 0 encodes sign −1
// (matching Eq. 2 of the paper, which speaks of marking elements "as 1").
//
// Storage is 64-bit words; bit i lives in word i/64 at position i%64 (LSB
// first).  Tail bits of the last word beyond size() are kept zero — the
// word-wise operators rely on that canonical form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace marsit {

class BitVector {
 public:
  BitVector() = default;

  /// `size` bits, all zero.
  explicit BitVector(std::size_t size);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t num_words() const { return words_.size(); }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);

  std::span<std::uint64_t> words() { return {words_.data(), words_.size()}; }
  std::span<const std::uint64_t> words() const {
    return {words_.data(), words_.size()};
  }

  /// Number of set bits.
  std::size_t popcount() const;

  /// Number of positions where *this and other differ.  Extents must match.
  std::size_t hamming_distance(const BitVector& other) const;

  void fill(bool value);

  // Word-wise logical ops (extents must match).  These are the substrate of
  // the ⊙ operator:  v ⊙ v* = (v AND v*) OR ((v XOR v*) AND b).
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator^=(const BitVector& other);

  bool operator==(const BitVector& other) const = default;

  /// Bits occupied on the wire (= size(); provided for symmetry with the
  /// other message types' bit accounting).
  std::size_t wire_bits() const { return size_; }

 private:
  void clear_tail();
  void check_compatible(const BitVector& other) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace marsit
