// Conversions between float gradients and packed sign bits, and the three
// sign compressors the paper evaluates:
//
//  * deterministic sign      — signSGD [21]: bit_i = [g_i >= 0]
//  * stochastic sign (SSDM)  — [14]: P(bit_i = 1) = 1/2 + g_i / (2‖g‖₂),
//                              decoded as ±‖g‖₂ so E[decode] = g
//  * scaled sign (EF-signSGD)— [30]: (‖g‖₁/d)·sign(g), the compressor used
//                              with error feedback
//
// Sign convention everywhere: bit 1 ⇔ +1, bit 0 ⇔ −1 (see bit_vector.hpp).
//
// The default entry points run the word-parallel kernels (compress/
// kernels.hpp): 64 elements per std::uint64_t word, branch-free.  Each has a
// `*_scalar` reference twin — the original one-element-per-iteration code —
// kept as the bit-exactness oracle for tests/compress_kernels_test.cpp and
// the baseline for bench/micro_kernels.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "compress/bit_vector.hpp"
#include "util/rng.hpp"

namespace marsit {

/// bit_i = [g_i >= 0].  Zero maps to +1, matching sgn() as the paper's
/// Algorithm 1 uses it (a zero gradient element transmits "+").
BitVector pack_signs(std::span<const float> g);

/// Scalar reference for pack_signs (bit-identical, one element per step).
BitVector pack_signs_scalar(std::span<const float> g);

/// out_i = scale · (bits_i ? +1 : −1).
void unpack_signs(const BitVector& bits, float scale, std::span<float> out);

/// Scalar reference for unpack_signs.
void unpack_signs_scalar(const BitVector& bits, float scale,
                         std::span<float> out);

/// out_i += scale · (bits_i ? +1 : −1) — fused form used by the optimizers.
void accumulate_signs(const BitVector& bits, float scale,
                      std::span<float> out);

/// Scalar reference for accumulate_signs.
void accumulate_signs_scalar(const BitVector& bits, float scale,
                             std::span<float> out);

/// SSDM stochastic sign: P(bit=1) = clamp(1/2 + g_i/(2‖g‖₂), 0, 1).
/// A zero-norm input packs deterministic signs (all +1), matching the
/// convention above.  Draws one uniform per element from rng.
///
/// `block` > 0 computes the ℓ2 norm over blocks of that many elements
/// instead of the whole vector — the deployable form: with a whole-vector
/// norm on a 10⁵⁺-dimensional gradient the probability shift per element is
/// O(1/√D) ≈ 0, so the signs are coin flips and carry no information;
/// block-wise norms (like per-tensor/per-layer norms in real systems) keep
/// them informative.  block = 0 is the paper-exact whole-vector form used
/// by the theory benches.
BitVector ssdm_pack(std::span<const float> g, Rng& rng,
                    std::size_t block = 0);

/// Scalar reference for ssdm_pack — consumes rng identically (one
/// next_double per element of every nonzero-norm block), so equal seeds give
/// bit-identical packings.
BitVector ssdm_pack_scalar(std::span<const float> g, Rng& rng,
                           std::size_t block = 0);

/// Word-span form of ssdm_pack for the sharded pipeline: packs `g` (which
/// must start on a block boundary of the *caller's* blocking scheme) into
/// `words`, words.size() == ⌈g.size()/64⌉.  block = 0 treats g as one block.
void ssdm_pack_words(std::span<const float> g, Rng& rng, std::size_t block,
                     std::span<std::uint64_t> words);

/// The ℓ2 norm SSDM transmits alongside the bits; decode is
/// unpack_signs(bits, norm, out).
float ssdm_norm(std::span<const float> g);

/// EF-signSGD compressor: returns the scale s = ‖g‖₁/d; the bits are the
/// deterministic signs; decode is unpack_signs(bits, s, out).
float scaled_sign_scale(std::span<const float> g);

}  // namespace marsit
