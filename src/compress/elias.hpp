// Elias universal codes (γ and δ) over a bit stream.
//
// The paper compacts the baselines' growing sign-sum messages with Elias
// coding [31]; this module provides the exact codec so the communication
// accounting in Figures 1, 4 and 5 uses real encoded sizes rather than
// fixed-width upper bounds.
//
// Codes operate on positive integers (>= 1).  Signed sign-sum values are
// first zig-zag mapped: 0→1, −1→2, +1→3, −2→4, ... (shifted by one since
// Elias codes cannot express 0).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace marsit {

/// Append-only bit stream writer (LSB-first within bytes).
class BitWriter {
 public:
  void write_bit(bool bit);
  /// Writes the low `count` bits of `value`, most-significant first
  /// (the conventional order for Elias codes).
  void write_bits_msb_first(std::uint64_t value, unsigned count);

  std::size_t bit_count() const { return bit_count_; }
  std::span<const std::uint8_t> bytes() const {
    return {bytes_.data(), bytes_.size()};
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// Sequential reader over a BitWriter's output.
class BitReader {
 public:
  BitReader(std::span<const std::uint8_t> bytes, std::size_t bit_count)
      : bytes_(bytes), bit_count_(bit_count) {}

  bool read_bit();
  std::uint64_t read_bits_msb_first(unsigned count);
  bool exhausted() const { return position_ >= bit_count_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_count_;
  std::size_t position_ = 0;
};

// ---- Elias gamma ----------------------------------------------------------

/// γ(n) for n >= 1: ⌊log2 n⌋ zeros, then n's ⌊log2 n⌋+1 bits.
void elias_gamma_encode(std::uint64_t n, BitWriter& writer);
std::uint64_t elias_gamma_decode(BitReader& reader);
/// Code length in bits: 2⌊log2 n⌋ + 1.
std::size_t elias_gamma_length(std::uint64_t n);

// ---- Elias delta ----------------------------------------------------------

/// δ(n) for n >= 1: γ(⌊log2 n⌋+1) then n's remaining ⌊log2 n⌋ bits.
void elias_delta_encode(std::uint64_t n, BitWriter& writer);
std::uint64_t elias_delta_decode(BitReader& reader);
std::size_t elias_delta_length(std::uint64_t n);

// ---- zig-zag --------------------------------------------------------------

/// Signed → positive mapping for Elias coding: 0→1, −1→2, 1→3, −2→4, 2→5...
std::uint64_t zigzag_map(std::int64_t value);
std::int64_t zigzag_unmap(std::uint64_t mapped);

/// Encodes a signed sequence with γ codes; returns total bit length.
std::size_t elias_gamma_encode_signed(std::span<const std::int32_t> values,
                                      BitWriter& writer);

/// Decodes `count` signed values encoded by elias_gamma_encode_signed.
std::vector<std::int32_t> elias_gamma_decode_signed(BitReader& reader,
                                                    std::size_t count);

}  // namespace marsit
