#include "compress/sign_sum.hpp"

#include <algorithm>
#include <bit>

#include "compress/elias.hpp"
#include "compress/kernels.hpp"
#include "util/check.hpp"

namespace marsit {

SignSum::SignSum(std::size_t size) : values_(size, 0) {}

SignSum SignSum::from_signs(const BitVector& bits) {
  SignSum sum(bits.size());
  sum.accumulate(bits);
  return sum;
}

void SignSum::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  contributions_ = 0;
}

void SignSum::accumulate(const BitVector& bits) {
  MARSIT_CHECK(bits.size() == values_.size())
      << "sign-sum extent " << values_.size() << " vs bits " << bits.size();
  kernels::accumulate_counts_words(bits.words(),
                                   {values_.data(), values_.size()});
  ++contributions_;
}

void SignSum::accumulate_scalar(const BitVector& bits) {
  MARSIT_CHECK(bits.size() == values_.size())
      << "sign-sum extent " << values_.size() << " vs bits " << bits.size();
  auto words = bits.words();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const bool positive = (words[i / 64] >> (i % 64)) & 1u;
    values_[i] += positive ? 1 : -1;
  }
  ++contributions_;
}

void SignSum::merge(const SignSum& other) {
  MARSIT_CHECK(other.values_.size() == values_.size())
      << "sign-sum extent mismatch in merge";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += other.values_[i];
  }
  contributions_ += other.contributions_;
}

BitVector SignSum::majority() const {
  BitVector bits(values_.size());
  kernels::majority_words({values_.data(), values_.size()}, bits.words());
  return bits;
}

BitVector SignSum::majority_scalar() const {
  BitVector bits(values_.size());
  auto words = bits.words();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] >= 0) {
      words[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
  return bits;
}

void SignSum::mean_into(std::span<float> out) const {
  MARSIT_CHECK(out.size() == values_.size()) << "mean_into extent mismatch";
  MARSIT_CHECK(contributions_ > 0) << "mean of zero contributions";
  const float inv = 1.0f / static_cast<float>(contributions_);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out[i] = static_cast<float>(values_[i]) * inv;
  }
}

std::size_t SignSum::wire_bits_fixed() const {
  return values_.size() * sign_sum_bits_per_element(contributions_);
}

std::size_t SignSum::wire_bits_elias() const {
  BitWriter writer;
  return elias_gamma_encode_signed({values_.data(), values_.size()}, writer);
}

std::size_t sign_sum_bits_per_element(std::size_t contributions) {
  if (contributions <= 1) {
    return 1;
  }
  // Values live in [−m, m]; magnitude needs ⌈log2(m+1)⌉ bits plus a sign bit.
  const auto m = static_cast<std::uint64_t>(contributions);
  const unsigned magnitude_bits =
      64u - static_cast<unsigned>(std::countl_zero(m));  // = ⌈log2(m+1)⌉
  return magnitude_bits + 1;
}

}  // namespace marsit
