#include "compress/elias.hpp"

#include <bit>

#include "util/check.hpp"

namespace marsit {

void BitWriter::write_bit(bool bit) {
  const std::size_t byte_index = bit_count_ / 8;
  if (byte_index == bytes_.size()) {
    bytes_.push_back(0);
  }
  if (bit) {
    bytes_[byte_index] |= static_cast<std::uint8_t>(1u << (bit_count_ % 8));
  }
  ++bit_count_;
}

void BitWriter::write_bits_msb_first(std::uint64_t value, unsigned count) {
  MARSIT_CHECK(count <= 64) << "cannot write " << count << " bits";
  for (unsigned i = count; i > 0; --i) {
    write_bit((value >> (i - 1)) & 1u);
  }
}

bool BitReader::read_bit() {
  MARSIT_CHECK(position_ < bit_count_) << "bit stream exhausted";
  const bool bit = (bytes_[position_ / 8] >> (position_ % 8)) & 1u;
  ++position_;
  return bit;
}

std::uint64_t BitReader::read_bits_msb_first(unsigned count) {
  MARSIT_CHECK(count <= 64) << "cannot read " << count << " bits";
  std::uint64_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    value = (value << 1) | (read_bit() ? 1u : 0u);
  }
  return value;
}

namespace {

unsigned floor_log2(std::uint64_t n) {
  return 63u - static_cast<unsigned>(std::countl_zero(n));
}

}  // namespace

void elias_gamma_encode(std::uint64_t n, BitWriter& writer) {
  MARSIT_CHECK(n >= 1) << "Elias gamma is defined for n >= 1";
  const unsigned len = floor_log2(n);
  for (unsigned i = 0; i < len; ++i) {
    writer.write_bit(false);
  }
  writer.write_bits_msb_first(n, len + 1);
}

std::uint64_t elias_gamma_decode(BitReader& reader) {
  unsigned zeros = 0;
  while (!reader.read_bit()) {
    ++zeros;
    MARSIT_CHECK(zeros < 64) << "malformed gamma code";
  }
  std::uint64_t n = 1;
  if (zeros > 0) {
    n = (n << zeros) | reader.read_bits_msb_first(zeros);
  }
  return n;
}

std::size_t elias_gamma_length(std::uint64_t n) {
  MARSIT_CHECK(n >= 1) << "Elias gamma is defined for n >= 1";
  return 2 * static_cast<std::size_t>(floor_log2(n)) + 1;
}

void elias_delta_encode(std::uint64_t n, BitWriter& writer) {
  MARSIT_CHECK(n >= 1) << "Elias delta is defined for n >= 1";
  const unsigned len = floor_log2(n);
  elias_gamma_encode(len + 1, writer);
  if (len > 0) {
    writer.write_bits_msb_first(n & ((std::uint64_t{1} << len) - 1), len);
  }
}

std::uint64_t elias_delta_decode(BitReader& reader) {
  const auto len_plus_one = elias_gamma_decode(reader);
  MARSIT_CHECK(len_plus_one >= 1 && len_plus_one <= 64)
      << "malformed delta code";
  const unsigned len = static_cast<unsigned>(len_plus_one - 1);
  std::uint64_t n = std::uint64_t{1} << len;
  if (len > 0) {
    n |= reader.read_bits_msb_first(len);
  }
  return n;
}

std::size_t elias_delta_length(std::uint64_t n) {
  MARSIT_CHECK(n >= 1) << "Elias delta is defined for n >= 1";
  const unsigned len = floor_log2(n);
  return elias_gamma_length(len + 1) + len;
}

std::uint64_t zigzag_map(std::int64_t value) {
  // 0→1, −1→2, 1→3, −2→4, 2→5, ...
  if (value >= 0) {
    return 2 * static_cast<std::uint64_t>(value) + 1;
  }
  return 2 * static_cast<std::uint64_t>(-value);
}

std::int64_t zigzag_unmap(std::uint64_t mapped) {
  MARSIT_CHECK(mapped >= 1) << "zig-zag codes start at 1";
  if (mapped % 2 == 1) {
    return static_cast<std::int64_t>((mapped - 1) / 2);
  }
  return -static_cast<std::int64_t>(mapped / 2);
}

std::size_t elias_gamma_encode_signed(std::span<const std::int32_t> values,
                                      BitWriter& writer) {
  const std::size_t before = writer.bit_count();
  for (std::int32_t v : values) {
    elias_gamma_encode(zigzag_map(v), writer);
  }
  return writer.bit_count() - before;
}

std::vector<std::int32_t> elias_gamma_decode_signed(BitReader& reader,
                                                    std::size_t count) {
  std::vector<std::int32_t> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(
        static_cast<std::int32_t>(zigzag_unmap(elias_gamma_decode(reader))));
  }
  return values;
}

}  // namespace marsit
