#include "compress/sign_codec.hpp"

#include <algorithm>

#include "compress/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

BitVector pack_signs(std::span<const float> g) {
  BitVector bits(g.size());
  kernels::pack_signs_words(g, bits.words());
  return bits;
}

BitVector pack_signs_scalar(std::span<const float> g) {
  BitVector bits(g.size());
  auto words = bits.words();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g[i] >= 0.0f) {
      words[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
  return bits;
}

void unpack_signs(const BitVector& bits, float scale, std::span<float> out) {
  MARSIT_CHECK(bits.size() == out.size())
      << "unpack_signs: " << bits.size() << " bits into " << out.size()
      << " floats";
  kernels::unpack_signs_words(bits.words(), scale, out);
}

void unpack_signs_scalar(const BitVector& bits, float scale,
                         std::span<float> out) {
  MARSIT_CHECK(bits.size() == out.size())
      << "unpack_signs: " << bits.size() << " bits into " << out.size()
      << " floats";
  auto words = bits.words();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool positive = (words[i / 64] >> (i % 64)) & 1u;
    out[i] = positive ? scale : -scale;
  }
}

void accumulate_signs(const BitVector& bits, float scale,
                      std::span<float> out) {
  MARSIT_CHECK(bits.size() == out.size())
      << "accumulate_signs: " << bits.size() << " bits into " << out.size()
      << " floats";
  kernels::accumulate_signs_words(bits.words(), scale, out);
}

void accumulate_signs_scalar(const BitVector& bits, float scale,
                             std::span<float> out) {
  MARSIT_CHECK(bits.size() == out.size())
      << "accumulate_signs: " << bits.size() << " bits into " << out.size()
      << " floats";
  auto words = bits.words();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool positive = (words[i / 64] >> (i % 64)) & 1u;
    out[i] += positive ? scale : -scale;
  }
}

void ssdm_pack_words(std::span<const float> g, Rng& rng, std::size_t block,
                     std::span<std::uint64_t> words) {
  MARSIT_CHECK(words.size() == kernels::words_for(g.size()))
      << "ssdm_pack_words span " << words.size() << " vs " << g.size()
      << " elements";
  // Overwrite semantics: callers reuse scratch words across rounds.
  std::fill(words.begin(), words.end(), std::uint64_t{0});
  const std::size_t block_size = block == 0 ? g.size() : block;
  for (std::size_t begin = 0; begin < g.size(); begin += block_size) {
    const std::size_t len = std::min(block_size, g.size() - begin);
    const float norm = l2_norm(g.subspan(begin, len));
    if (norm == 0.0f) {
      // Degenerate block: deterministic +1, per the sign convention.
      for (std::size_t i = begin; i < begin + len; ++i) {
        words[i / 64] |= std::uint64_t{1} << (i % 64);
      }
      continue;
    }
    const float inv_two_norm = 0.5f / norm;
    for (std::size_t i = begin; i < begin + len; ++i) {
      const double p = std::clamp(0.5 + static_cast<double>(g[i]) *
                                            static_cast<double>(inv_two_norm),
                                  0.0, 1.0);
      // Branch-free set: same draw (one next_double) as rng.bernoulli(p),
      // so this path is bit-identical to ssdm_pack_scalar at equal seeds.
      words[i / 64] |= static_cast<std::uint64_t>(rng.next_double() < p)
                       << (i % 64);
    }
  }
}

BitVector ssdm_pack(std::span<const float> g, Rng& rng, std::size_t block) {
  BitVector bits(g.size());
  ssdm_pack_words(g, rng, block, bits.words());
  return bits;
}

BitVector ssdm_pack_scalar(std::span<const float> g, Rng& rng,
                           std::size_t block) {
  const std::size_t block_size = block == 0 ? g.size() : block;
  BitVector bits(g.size());
  auto words = bits.words();
  for (std::size_t begin = 0; begin < g.size(); begin += block_size) {
    const std::size_t len = std::min(block_size, g.size() - begin);
    const float norm = l2_norm(g.subspan(begin, len));
    if (norm == 0.0f) {
      for (std::size_t i = begin; i < begin + len; ++i) {
        words[i / 64] |= std::uint64_t{1} << (i % 64);
      }
      continue;
    }
    const float inv_two_norm = 0.5f / norm;
    for (std::size_t i = begin; i < begin + len; ++i) {
      const double p = std::clamp(0.5 + static_cast<double>(g[i]) *
                                            static_cast<double>(inv_two_norm),
                                  0.0, 1.0);
      if (rng.bernoulli(p)) {
        words[i / 64] |= std::uint64_t{1} << (i % 64);
      }
    }
  }
  return bits;
}

float ssdm_norm(std::span<const float> g) { return l2_norm(g); }

float scaled_sign_scale(std::span<const float> g) {
  MARSIT_CHECK(!g.empty()) << "scaled_sign_scale of empty gradient";
  return l1_norm(g) / static_cast<float>(g.size());
}

}  // namespace marsit
