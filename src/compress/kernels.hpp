// Word-parallel bit-plane kernels: the hot inner loops shared by the sign
// codecs (sign_codec.hpp), the sign-sum aggregation (sign_sum.hpp) and the
// sharded synchronization pipeline (core/sync_strategy.cpp).
//
// Every kernel processes 64 elements per std::uint64_t word: sign bits are
// produced with branch-free float comparisons packed movemask-style into a
// register-resident word, and consumed by XOR-ing the ±scale sign bit into
// the float bit pattern (std::bit_cast) — no per-element branches, no
// per-element memory read-modify-write on the packed words.  On AVX-512
// hardware the packed words map directly onto 16-lane predicate masks
// (one kmov per 16 elements, no byte-splat/compare expansion); AVX2 runs 8
// lanes at a time via movemask/cmpeq; the generic fallback is the same
// branch-free arithmetic, one element per iteration.
//
// All kernels operate on *word spans* rather than whole BitVectors so the
// sharded pipeline can hand each chunk a word-aligned slice:
//   elements [64·w0, 64·w1) of the vector ↔ words [w0, w1) of the packing.
// A kernel's element span may end mid-word (the global tail); bits beyond
// the element count are left untouched by producers writing a full word
// (they write zeros, preserving BitVector's canonical zero-tail form).
//
// Bit-exactness contract (tested in tests/compress_kernels_test.cpp): every
// kernel here produces bit-identical results to the *_scalar reference in
// sign_codec.hpp / sign_sum.hpp for all finite inputs including ±0.  (For
// NaN inputs pack_signs matches the scalar `x >= 0` convention too: NaN
// packs as −1.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace marsit::kernels {

/// Number of elements packed per word — the alignment quantum every sharded
/// chunk boundary must respect.
inline constexpr std::size_t kWordBits = 64;

/// Words needed to hold `elements` packed bits.
constexpr std::size_t words_for(std::size_t elements) {
  return (elements + kWordBits - 1) / kWordBits;
}

/// bit_i = [g_i >= 0] packed LSB-first; words.size() must equal
/// words_for(g.size()).  Full words are overwritten; a trailing partial
/// word's high bits are written as zero.
void pack_signs_words(std::span<const float> g,
                      std::span<std::uint64_t> words);

/// out_i = scale · (bit_i ? +1 : −1).  words.size() == words_for(out.size()).
void unpack_signs_words(std::span<const std::uint64_t> words, float scale,
                        std::span<float> out);

/// out_i += scale · (bit_i ? +1 : −1).
void accumulate_signs_words(std::span<const std::uint64_t> words, float scale,
                            std::span<float> out);

/// values_i += bit_i ? +1 : −1 — the sign-sum accumulation primitive.
void accumulate_counts_words(std::span<const std::uint64_t> words,
                             std::span<std::int32_t> values);

/// bit_i = [values_i >= 0] (ties to +1) packed LSB-first.
void majority_words(std::span<const std::int32_t> values,
                    std::span<std::uint64_t> words);

}  // namespace marsit::kernels
