#include "compress/kernels.hpp"

#include <bit>

#include "util/check.hpp"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace marsit::kernels {

namespace {

void check_extents(std::size_t elements, std::size_t words) {
  MARSIT_CHECK(words == words_for(elements))
      << "kernel word span " << words << " vs " << elements << " elements";
}

}  // namespace

void pack_signs_words(std::span<const float> g,
                      std::span<std::uint64_t> words) {
  check_extents(g.size(), words.size());
  const std::size_t full = g.size() / kWordBits;
  const float* data = g.data();
  for (std::size_t w = 0; w < full; ++w) {
    const float* base = data + w * kWordBits;
    std::uint64_t bits = 0;
#if defined(__AVX512F__)
    const __m512 zero = _mm512_setzero_ps();
    for (std::size_t k = 0; k < kWordBits; k += 16) {
      // NaN compares false under _CMP_GE_OQ, matching the scalar `x >= 0`;
      // the 16-lane predicate mask IS the next 16 bits of the word.
      const __mmask16 ge = _mm512_cmp_ps_mask(_mm512_loadu_ps(base + k),
                                              zero, _CMP_GE_OQ);
      bits |= static_cast<std::uint64_t>(_cvtmask16_u32(ge)) << k;
    }
#elif defined(__AVX2__)
    const __m256 zero = _mm256_setzero_ps();
    for (std::size_t k = 0; k < kWordBits; k += 8) {
      // NaN compares false under _CMP_GE_OQ, matching the scalar `x >= 0`.
      const __m256 ge = _mm256_cmp_ps(_mm256_loadu_ps(base + k), zero,
                                      _CMP_GE_OQ);
      bits |= static_cast<std::uint64_t>(
                  static_cast<unsigned>(_mm256_movemask_ps(ge)))
              << k;
    }
#else
    for (std::size_t j = 0; j < kWordBits; ++j) {
      bits |= static_cast<std::uint64_t>(base[j] >= 0.0f) << j;
    }
#endif
    words[w] = bits;
  }
  const std::size_t tail = g.size() % kWordBits;
  if (tail != 0) {
    const float* base = data + full * kWordBits;
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < tail; ++j) {
      bits |= static_cast<std::uint64_t>(base[j] >= 0.0f) << j;
    }
    words[full] = bits;
  }
}

void unpack_signs_words(std::span<const std::uint64_t> words, float scale,
                        std::span<float> out) {
  check_extents(out.size(), words.size());
  const std::uint32_t scale_bits = std::bit_cast<std::uint32_t>(scale);
  const std::size_t full = out.size() / kWordBits;
  float* data = out.data();
  for (std::size_t w = 0; w < full; ++w) {
    const std::uint64_t bits = words[w];
    float* base = data + w * kWordBits;
#if defined(__AVX512F__)
    const __m512 pos = _mm512_set1_ps(scale);
    // Float negation is a sign-bit flip, bit-exact with the scalar
    // `bit ? scale : -scale` for every bit pattern including NaN.
    const __m512 neg = _mm512_set1_ps(-scale);
    for (std::size_t k = 0; k < kWordBits; k += 16) {
      const auto mask =
          static_cast<__mmask16>((bits >> k) & std::uint64_t{0xffff});
      _mm512_storeu_ps(base + k, _mm512_mask_mov_ps(neg, mask, pos));
    }
#elif defined(__AVX2__)
    const __m256i lane = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256 pos = _mm256_set1_ps(scale);
    const __m256 sign = _mm256_set1_ps(-0.0f);
    for (std::size_t k = 0; k < kWordBits; k += 8) {
      const __m256i byte =
          _mm256_set1_epi32(static_cast<int>((bits >> k) & 0xff));
      const __m256i set =
          _mm256_cmpeq_epi32(_mm256_and_si256(byte, lane), lane);
      // Clear bits flip the sign: ±scale is a sign-bit XOR, bit-exact with
      // the scalar `bit ? scale : -scale`.
      const __m256 flip = _mm256_andnot_ps(_mm256_castsi256_ps(set), sign);
      _mm256_storeu_ps(base + k, _mm256_xor_ps(pos, flip));
    }
#else
    for (std::size_t j = 0; j < kWordBits; ++j) {
      const auto negative =
          static_cast<std::uint32_t>(~(bits >> j) & std::uint64_t{1});
      base[j] = std::bit_cast<float>(scale_bits ^ (negative << 31));
    }
#endif
  }
  const std::size_t tail = out.size() % kWordBits;
  if (tail != 0) {
    const std::uint64_t bits = words[full];
    float* base = data + full * kWordBits;
    for (std::size_t j = 0; j < tail; ++j) {
      const auto negative =
          static_cast<std::uint32_t>(~(bits >> j) & std::uint64_t{1});
      base[j] = std::bit_cast<float>(scale_bits ^ (negative << 31));
    }
  }
}

void accumulate_signs_words(std::span<const std::uint64_t> words, float scale,
                            std::span<float> out) {
  check_extents(out.size(), words.size());
  const std::uint32_t scale_bits = std::bit_cast<std::uint32_t>(scale);
  const std::size_t full = out.size() / kWordBits;
  float* data = out.data();
  for (std::size_t w = 0; w < full; ++w) {
    const std::uint64_t bits = words[w];
    float* base = data + w * kWordBits;
#if defined(__AVX512F__)
    const __m512 pos = _mm512_set1_ps(scale);
    const __m512 neg = _mm512_set1_ps(-scale);
    for (std::size_t k = 0; k < kWordBits; k += 16) {
      const auto mask =
          static_cast<__mmask16>((bits >> k) & std::uint64_t{0xffff});
      const __m512 cur = _mm512_loadu_ps(base + k);
      _mm512_storeu_ps(
          base + k, _mm512_add_ps(cur, _mm512_mask_mov_ps(neg, mask, pos)));
    }
#elif defined(__AVX2__)
    const __m256i lane = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256 pos = _mm256_set1_ps(scale);
    const __m256 sign = _mm256_set1_ps(-0.0f);
    for (std::size_t k = 0; k < kWordBits; k += 8) {
      const __m256i byte =
          _mm256_set1_epi32(static_cast<int>((bits >> k) & 0xff));
      const __m256i set =
          _mm256_cmpeq_epi32(_mm256_and_si256(byte, lane), lane);
      const __m256 flip = _mm256_andnot_ps(_mm256_castsi256_ps(set), sign);
      const __m256 cur = _mm256_loadu_ps(base + k);
      _mm256_storeu_ps(base + k,
                       _mm256_add_ps(cur, _mm256_xor_ps(pos, flip)));
    }
#else
    for (std::size_t j = 0; j < kWordBits; ++j) {
      const auto negative =
          static_cast<std::uint32_t>(~(bits >> j) & std::uint64_t{1});
      base[j] += std::bit_cast<float>(scale_bits ^ (negative << 31));
    }
#endif
  }
  const std::size_t tail = out.size() % kWordBits;
  if (tail != 0) {
    const std::uint64_t bits = words[full];
    float* base = data + full * kWordBits;
    for (std::size_t j = 0; j < tail; ++j) {
      const auto negative =
          static_cast<std::uint32_t>(~(bits >> j) & std::uint64_t{1});
      base[j] += std::bit_cast<float>(scale_bits ^ (negative << 31));
    }
  }
}

void accumulate_counts_words(std::span<const std::uint64_t> words,
                             std::span<std::int32_t> values) {
  check_extents(values.size(), words.size());
  const std::size_t full = values.size() / kWordBits;
  std::int32_t* data = values.data();
  for (std::size_t w = 0; w < full; ++w) {
    const std::uint64_t bits = words[w];
    std::int32_t* base = data + w * kWordBits;
#if defined(__AVX512F__)
    const __m512i plus_one = _mm512_set1_epi32(1);
    const __m512i minus_one = _mm512_set1_epi32(-1);
    for (std::size_t k = 0; k < kWordBits; k += 16) {
      const auto mask =
          static_cast<__mmask16>((bits >> k) & std::uint64_t{0xffff});
      const __m512i cur = _mm512_loadu_si512(base + k);
      _mm512_storeu_si512(
          base + k,
          _mm512_add_epi32(cur,
                           _mm512_mask_mov_epi32(minus_one, mask, plus_one)));
    }
#elif defined(__AVX2__)
    const __m256i lane = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i two = _mm256_set1_epi32(2);
    for (std::size_t k = 0; k < kWordBits; k += 8) {
      const __m256i byte =
          _mm256_set1_epi32(static_cast<int>((bits >> k) & 0xff));
      const __m256i set =
          _mm256_cmpeq_epi32(_mm256_and_si256(byte, lane), lane);
      // set lanes: (−1 & 2) − 1 = +1; clear lanes: 0 − 1 = −1.
      const __m256i delta =
          _mm256_sub_epi32(_mm256_and_si256(set, two), one);
      const __m256i cur = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + k));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(base + k),
                          _mm256_add_epi32(cur, delta));
    }
#else
    for (std::size_t j = 0; j < kWordBits; ++j) {
      base[j] += static_cast<std::int32_t>((bits >> j) & 1u) * 2 - 1;
    }
#endif
  }
  const std::size_t tail = values.size() % kWordBits;
  if (tail != 0) {
    const std::uint64_t bits = words[full];
    std::int32_t* base = data + full * kWordBits;
    for (std::size_t j = 0; j < tail; ++j) {
      base[j] += static_cast<std::int32_t>((bits >> j) & 1u) * 2 - 1;
    }
  }
}

void majority_words(std::span<const std::int32_t> values,
                    std::span<std::uint64_t> words) {
  check_extents(values.size(), words.size());
  const std::size_t full = values.size() / kWordBits;
  const std::int32_t* data = values.data();
  for (std::size_t w = 0; w < full; ++w) {
    const std::int32_t* base = data + w * kWordBits;
    std::uint64_t bits = 0;
#if defined(__AVX512F__)
    const __m512i zero = _mm512_setzero_si512();
    for (std::size_t k = 0; k < kWordBits; k += 16) {
      const __m512i v = _mm512_loadu_si512(base + k);
      // v >= 0 (ties to +1): signed not-less-than zero.
      const __mmask16 nonneg =
          _mm512_cmp_epi32_mask(v, zero, _MM_CMPINT_NLT);
      bits |= static_cast<std::uint64_t>(_cvtmask16_u32(nonneg)) << k;
    }
#elif defined(__AVX2__)
    for (std::size_t k = 0; k < kWordBits; k += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + k));
      // movemask of v's int32 sign bits = the "negative" lanes; the packed
      // bit is its complement (>= 0, ties to +1).
      const unsigned negative = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(v)));
      bits |= static_cast<std::uint64_t>(~negative & 0xffu) << k;
    }
#else
    for (std::size_t j = 0; j < kWordBits; ++j) {
      bits |= static_cast<std::uint64_t>(base[j] >= 0) << j;
    }
#endif
    words[w] = bits;
  }
  const std::size_t tail = values.size() % kWordBits;
  if (tail != 0) {
    const std::int32_t* base = data + full * kWordBits;
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < tail; ++j) {
      bits |= static_cast<std::uint64_t>(base[j] >= 0) << j;
    }
    words[full] = bits;
  }
}

}  // namespace marsit::kernels
