// Versioned run-state checkpoints over the snapshot primitives.
//
// A checkpoint captures the complete state of a training run at a round
// boundary — everything needed to resume bit-identically (DESIGN.md §11):
//
//   meta       round counter, shape (param/worker counts), the three root
//              seeds (trainer / strategy / fault plan) and the strategy
//              name.  The seeds double as the RNG stream positions: every
//              stream in marsit is keyed by (seed, round, entity), so
//              (seeds, round) IS the cursor of every stream, including the
//              FaultPlan's membership and link-fault draws.
//   params     the model parameters (all replicas are bit-identical at a
//              round boundary — the MAR invariant — so one copy suffices).
//   optimizer  per-worker local-optimizer state (momentum velocity, Adam
//              moments + step), written by LocalOptimizer::save_state.
//   strategy   cross-round strategy state (Marsit compensation, EF
//              residuals, Elias size caches), written by
//              SyncStrategy::save_state.
//   trainer    cumulative accounting (simulated seconds, wire bits, phase
//              totals, fault/rejoin counters, evaluation history, η_l).
//
// The optimizer/strategy/trainer sections are opaque byte blobs here: their
// layouts belong to the layers that own the state, and this module only
// guarantees framing, versioning, and integrity.  Restore sites must reject
// a checkpoint whose meta does not match the live run (see the always-on
// checks in DistributedTrainer plus validate::snapshot_header under
// MARSIT_VALIDATE).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace marsit::ckpt {

/// Current checkpoint format version.  Bump on any layout change; readers
/// reject versions they do not understand rather than guessing.
inline constexpr std::uint32_t kFormatVersion = 1;

struct CheckpointMeta {
  /// Rounds completed when the snapshot was taken == the next round index
  /// to run on resume.
  std::uint64_t round = 0;
  std::uint64_t param_count = 0;
  std::uint64_t num_workers = 0;
  std::uint64_t trainer_seed = 0;
  std::uint64_t strategy_seed = 0;
  /// FaultPlan root seed; with `round` this is the fault cursor (the plan's
  /// draws are pure functions of (seed, round, entity)).
  std::uint64_t fault_seed = 0;
  std::string strategy_name;
};

struct Checkpoint {
  CheckpointMeta meta;
  std::vector<float> params;
  std::vector<std::uint8_t> optimizer_state;
  std::vector<std::uint8_t> strategy_state;
  std::vector<std::uint8_t> trainer_state;
  /// Format version the file on disk carried (set by load_checkpoint;
  /// kFormatVersion when assembled in-process).
  std::uint32_t version = kFormatVersion;
  /// Payload integrity digest of the file on disk (set by load_checkpoint).
  std::uint64_t payload_digest = 0;
};

/// Serializes and writes `checkpoint` to `path` (atomic overwrite of the
/// final bytes; the payload digest is computed here).
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads, integrity-checks (magic / version / truncation / digest) and
/// parses a checkpoint.  Throws CheckError on any violation.
Checkpoint load_checkpoint(const std::string& path);

/// Expands every "{round}" in a checkpoint path template to the round
/// number, so a cadenced writer can either overwrite one file (no
/// placeholder) or keep a per-round history (including round-numbered
/// directories like "{round}/ckpt-{round}.bin").
std::string expand_checkpoint_path(const std::string& path_template,
                                   std::uint64_t round);

}  // namespace marsit::ckpt
