// Byte-stable binary snapshot primitives for checkpoint/restore.
//
// A snapshot is a flat byte payload framed by a fixed header:
//
//   offset  size  field
//   0       8     magic "MARSITCK"
//   8       4     format version (little-endian u32)
//   12      8     payload byte count (u64)
//   20      8     FNV-1a digest of the payload bytes (u64)
//   28      —     payload
//
// The payload is produced by SnapshotWriter and consumed by SnapshotReader:
// fixed-width little-endian scalars, length-prefixed strings/arrays, and
// tagged length-prefixed sections.  Every write has exactly one byte
// encoding (no padding, no host-dependent widths), so serializing the same
// state twice yields identical bytes — the byte-stability the resume
// machinery's digests rest on.
//
// Integrity: read_snapshot_file rejects wrong magic, unsupported versions,
// truncated payloads (declared size vs bytes on disk) and payload bit-flips
// (recomputed FNV-1a vs the header digest) with always-on MARSIT_CHECKs —
// a corrupted snapshot must never restore silently, in any build mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace marsit::ckpt {

/// FNV-1a offset basis; snapshots digest from this seed.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// Incremental FNV-1a over raw bytes (seedable so digests can chain).
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = kFnvOffset);

/// Appends fixed-width little-endian values to a growing byte payload.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  /// Length-prefixed (u64) UTF-8 bytes.
  void str(std::string_view s);
  /// Length-prefixed (u64 element count) float array.
  void f32_span(std::span<const float> values);
  /// Length-prefixed (u64 element count) double array.
  void f64_vec(const std::vector<double>& values);
  /// Length-prefixed (u64) raw bytes.
  void blob(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads a SnapshotWriter payload back; every read is bounds-checked and a
/// mismatch (overrun, bad length prefix) throws CheckError rather than
/// reading garbage.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  std::string str();
  std::vector<float> f32_vec();
  std::vector<double> f64_vec();
  std::vector<std::uint8_t> blob();

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool done() const { return cursor_ == bytes_.size(); }

 private:
  const std::uint8_t* take(std::size_t count);

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// Writes `header(version) + payload` to `path` (overwriting), computing the
/// payload digest.  Throws CheckError on I/O failure.
void write_snapshot_file(const std::string& path, std::uint32_t version,
                         std::span<const std::uint8_t> payload);

struct SnapshotFile {
  std::uint32_t version = 0;
  /// Digest declared in the header (== recomputed digest after a successful
  /// read; kept so restore sites can re-assert header consistency).
  std::uint64_t payload_digest = 0;
  std::vector<std::uint8_t> payload;
};

/// Reads and integrity-checks a snapshot file: magic, version within
/// [1, max_version], declared payload size vs bytes present (truncation),
/// and the FNV-1a digest (bit-flips).  Always-on checks; throws CheckError
/// with a message naming the failed property.
SnapshotFile read_snapshot_file(const std::string& path,
                                std::uint32_t max_version);

}  // namespace marsit::ckpt
