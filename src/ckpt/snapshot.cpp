#include "ckpt/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/check.hpp"

namespace marsit::ckpt {

namespace {

constexpr char kMagic[8] = {'M', 'A', 'R', 'S', 'I', 'T', 'C', 'K'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

/// Little-endian scalar encode/decode.  Byte-by-byte shifts rather than
/// memcpy so the wire layout is identical on any host endianness.
template <typename T, std::size_t N = sizeof(T)>
void put_le(std::vector<std::uint8_t>& out, T value) {
  for (std::size_t i = 0; i < N; ++i) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

template <typename T, std::size_t N = sizeof(T)>
T get_le(const std::uint8_t* bytes) {
  T value = 0;
  for (std::size_t i = 0; i < N; ++i) {
    value |= static_cast<T>(bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void SnapshotWriter::u8(std::uint8_t v) { bytes_.push_back(v); }

void SnapshotWriter::u32(std::uint32_t v) { put_le(bytes_, v); }

void SnapshotWriter::u64(std::uint64_t v) { put_le(bytes_, v); }

void SnapshotWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void SnapshotWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void SnapshotWriter::str(std::string_view s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void SnapshotWriter::f32_span(std::span<const float> values) {
  u64(values.size());
  for (const float v : values) {
    f32(v);
  }
}

void SnapshotWriter::f64_vec(const std::vector<double>& values) {
  u64(values.size());
  for (const double v : values) {
    f64(v);
  }
}

void SnapshotWriter::blob(std::span<const std::uint8_t> bytes) {
  u64(bytes.size());
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

const std::uint8_t* SnapshotReader::take(std::size_t count) {
  MARSIT_CHECK(count <= remaining())
      << "snapshot underrun: need " << count << " bytes, " << remaining()
      << " remain";
  const std::uint8_t* at = bytes_.data() + cursor_;
  cursor_ += count;
  return at;
}

std::uint8_t SnapshotReader::u8() { return *take(1); }

std::uint32_t SnapshotReader::u32() {
  return get_le<std::uint32_t>(take(4));
}

std::uint64_t SnapshotReader::u64() {
  return get_le<std::uint64_t>(take(8));
}

float SnapshotReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double SnapshotReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::str() {
  const std::uint64_t size = u64();
  const std::uint8_t* at = take(size);
  return std::string(reinterpret_cast<const char*>(at),
                     static_cast<std::size_t>(size));
}

std::vector<float> SnapshotReader::f32_vec() {
  const std::uint64_t count = u64();
  MARSIT_CHECK(count <= remaining() / 4)
      << "snapshot float array declares " << count << " elements but only "
      << remaining() << " bytes remain";
  std::vector<float> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = f32();
  }
  return values;
}

std::vector<double> SnapshotReader::f64_vec() {
  const std::uint64_t count = u64();
  MARSIT_CHECK(count <= remaining() / 8)
      << "snapshot double array declares " << count << " elements but only "
      << remaining() << " bytes remain";
  std::vector<double> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = f64();
  }
  return values;
}

std::vector<std::uint8_t> SnapshotReader::blob() {
  const std::uint64_t size = u64();
  const std::uint8_t* at = take(size);
  return std::vector<std::uint8_t>(at, at + size);
}

void write_snapshot_file(const std::string& path, std::uint32_t version,
                         std::span<const std::uint8_t> payload) {
  MARSIT_CHECK(version >= 1) << "snapshot version must be >= 1";
  std::vector<std::uint8_t> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  put_le<std::uint32_t>(header, version);
  put_le<std::uint64_t>(header, payload.size());
  put_le<std::uint64_t>(header, fnv1a(payload.data(), payload.size()));

  // Crash atomicity: a process killed mid-write must never leave a torn
  // file at the published path (a resume would then read a truncated
  // snapshot).  Write to a sibling temp path and rename into place — rename
  // within a directory is atomic on POSIX, so `path` either holds the old
  // complete snapshot or the new complete one.
  const std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    MARSIT_CHECK(out.good()) << "cannot open snapshot file " << temp_path
                             << " for writing";
    out.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    MARSIT_CHECK(out.good()) << "short write to snapshot file " << temp_path;
  }
  MARSIT_CHECK(std::rename(temp_path.c_str(), path.c_str()) == 0)
      << "cannot publish snapshot " << temp_path << " -> " << path;
}

SnapshotFile read_snapshot_file(const std::string& path,
                                std::uint32_t max_version) {
  std::ifstream in(path, std::ios::binary);
  MARSIT_CHECK(in.good()) << "cannot open snapshot file " << path;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  MARSIT_CHECK(bytes.size() >= kHeaderBytes)
      << "snapshot " << path << " truncated: " << bytes.size()
      << " bytes is smaller than the " << kHeaderBytes << "-byte header";
  MARSIT_CHECK(std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0)
      << "snapshot " << path << " has wrong magic (not a marsit snapshot)";

  SnapshotFile file;
  file.version = get_le<std::uint32_t>(bytes.data() + 8);
  MARSIT_CHECK(file.version >= 1 && file.version <= max_version)
      << "snapshot " << path << " format version " << file.version
      << " is unsupported (this build reads versions 1.." << max_version
      << ")";
  const std::uint64_t declared_size = get_le<std::uint64_t>(bytes.data() + 12);
  file.payload_digest = get_le<std::uint64_t>(bytes.data() + 20);
  const std::size_t actual_size = bytes.size() - kHeaderBytes;
  MARSIT_CHECK(declared_size == actual_size)
      << "snapshot " << path << " truncated or padded: header declares "
      << declared_size << " payload bytes, file carries " << actual_size;
  const std::uint64_t actual_digest =
      fnv1a(bytes.data() + kHeaderBytes, actual_size);
  MARSIT_CHECK(actual_digest == file.payload_digest)
      << "snapshot " << path
      << " failed its integrity digest (payload corrupted)";
  file.payload.assign(bytes.begin() + kHeaderBytes, bytes.end());
  return file;
}

}  // namespace marsit::ckpt
