#include "ckpt/checkpoint.hpp"

#include <span>

#include "ckpt/snapshot.hpp"
#include "util/check.hpp"
#include "util/validate.hpp"

namespace marsit::ckpt {

namespace {

/// Section tags: fixed order in the payload, checked on read so a shuffled
/// or spliced payload is rejected instead of mis-parsed.
enum SectionTag : std::uint32_t {
  kMetaSection = 0x4d455441,       // "META"
  kParamsSection = 0x50415241,     // "PARA"
  kOptimizerSection = 0x4f505449,  // "OPTI"
  kStrategySection = 0x53545241,   // "STRA"
  kTrainerSection = 0x5452414e,    // "TRAN"
};

void write_section(SnapshotWriter& out, SectionTag tag,
                   const SnapshotWriter& body) {
  out.u32(tag);
  out.blob({body.bytes().data(), body.bytes().size()});
}

std::vector<std::uint8_t> read_section(SnapshotReader& in, SectionTag tag,
                                       const char* name) {
  const std::uint32_t got = in.u32();
  MARSIT_CHECK(got == tag) << "checkpoint section order broken: expected the "
                           << name << " section";
  return in.blob();
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  SnapshotWriter meta;
  meta.u64(checkpoint.meta.round);
  meta.u64(checkpoint.meta.param_count);
  meta.u64(checkpoint.meta.num_workers);
  meta.u64(checkpoint.meta.trainer_seed);
  meta.u64(checkpoint.meta.strategy_seed);
  meta.u64(checkpoint.meta.fault_seed);
  meta.str(checkpoint.meta.strategy_name);

  SnapshotWriter params;
  params.f32_span({checkpoint.params.data(), checkpoint.params.size()});

  SnapshotWriter payload;
  write_section(payload, kMetaSection, meta);
  write_section(payload, kParamsSection, params);
  payload.u32(kOptimizerSection);
  payload.blob({checkpoint.optimizer_state.data(),
                checkpoint.optimizer_state.size()});
  payload.u32(kStrategySection);
  payload.blob({checkpoint.strategy_state.data(),
                checkpoint.strategy_state.size()});
  payload.u32(kTrainerSection);
  payload.blob({checkpoint.trainer_state.data(),
                checkpoint.trainer_state.size()});

  write_snapshot_file(path, kFormatVersion,
                      {payload.bytes().data(), payload.bytes().size()});
}

Checkpoint load_checkpoint(const std::string& path) {
  const SnapshotFile file = read_snapshot_file(path, kFormatVersion);

  Checkpoint checkpoint;
  checkpoint.version = file.version;
  checkpoint.payload_digest = file.payload_digest;

  SnapshotReader payload({file.payload.data(), file.payload.size()});
  const std::vector<std::uint8_t> meta_bytes =
      read_section(payload, kMetaSection, "meta");
  SnapshotReader meta({meta_bytes.data(), meta_bytes.size()});
  checkpoint.meta.round = meta.u64();
  checkpoint.meta.param_count = meta.u64();
  checkpoint.meta.num_workers = meta.u64();
  checkpoint.meta.trainer_seed = meta.u64();
  checkpoint.meta.strategy_seed = meta.u64();
  checkpoint.meta.fault_seed = meta.u64();
  checkpoint.meta.strategy_name = meta.str();
  MARSIT_CHECK(meta.done()) << "checkpoint meta section has trailing bytes";

  const std::vector<std::uint8_t> params_bytes =
      read_section(payload, kParamsSection, "params");
  SnapshotReader params({params_bytes.data(), params_bytes.size()});
  checkpoint.params = params.f32_vec();
  MARSIT_CHECK(params.done())
      << "checkpoint params section has trailing bytes";
  MARSIT_CHECK(checkpoint.params.size() == checkpoint.meta.param_count)
      << "checkpoint carries " << checkpoint.params.size()
      << " parameters but its meta declares " << checkpoint.meta.param_count;

  checkpoint.optimizer_state =
      read_section(payload, kOptimizerSection, "optimizer");
  checkpoint.strategy_state =
      read_section(payload, kStrategySection, "strategy");
  checkpoint.trainer_state =
      read_section(payload, kTrainerSection, "trainer");
  MARSIT_CHECK(payload.done()) << "checkpoint payload has trailing bytes";

  // Contract re-assertion at the restore boundary (gated; the always-on
  // checks above already rejected structural corruption).
  MARSIT_VALIDATE_CALL(validate::snapshot_header(
      checkpoint.version, kFormatVersion, checkpoint.payload_digest,
      checkpoint.payload_digest, checkpoint.meta.param_count,
      checkpoint.meta.num_workers));
  return checkpoint;
}

std::string expand_checkpoint_path(const std::string& path_template,
                                   std::uint64_t round) {
  const std::string placeholder = "{round}";
  const std::string value = std::to_string(round);
  std::string path = path_template;
  // Every occurrence expands — a template like "{round}/ckpt-{round}.bin"
  // must not leave a literal "{round}" directory component behind.
  std::size_t at = path.find(placeholder);
  while (at != std::string::npos) {
    path.replace(at, placeholder.size(), value);
    at = path.find(placeholder, at + value.size());
  }
  return path;
}

}  // namespace marsit::ckpt
