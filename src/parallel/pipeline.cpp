#include "parallel/pipeline.hpp"

#include <algorithm>
#include <deque>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/thread_safety.hpp"

namespace marsit {

namespace {

std::atomic<std::uint64_t> g_arena_grows{0};

}  // namespace

void ScratchArena::reset() {
  for (auto& block : word_blocks_) {
    block.in_use = false;
  }
  for (auto& block : float_blocks_) {
    block.in_use = false;
  }
}

template <typename T>
std::span<T> ScratchArena::take(std::vector<Block<T>>& blocks,
                                std::size_t count) {
  // First-fit over the free blocks.  The stage bodies issue the same request
  // sequence every round, so after one warm round every take() hits.
  for (auto& block : blocks) {
    if (!block.in_use && block.data.size() >= count) {
      block.in_use = true;
      return std::span<T>{block.data.data(), count};
    }
  }
  g_arena_grows.fetch_add(1, std::memory_order_relaxed);
  // emplace_back may move existing Block structs; the moved std::vector
  // keeps its heap buffer, so spans handed out earlier stay valid.
  blocks.emplace_back();
  blocks.back().data.resize(count);
  blocks.back().in_use = true;
  return std::span<T>{blocks.back().data.data(), count};
}

std::span<std::uint64_t> ScratchArena::words(std::size_t count) {
  return take(word_blocks_, count);
}

std::span<float> ScratchArena::floats(std::size_t count) {
  return take(float_blocks_, count);
}

std::uint64_t ScratchArena::total_grows() {
  return g_arena_grows.load(std::memory_order_relaxed);
}

ScratchArena& this_thread_arena() {
  thread_local ScratchArena arena;
  return arena;
}

namespace {

/// Shared state of one run_chunk_pipeline invocation.  Tasks are identified
/// by id = stage * num_chunks + chunk; `deps` counts unmet dependencies.
struct PipelineState {
  Mutex mu;
  CondVar cv;
  /// ids whose dependencies are all met
  std::deque<std::size_t> ready MARSIT_GUARDED_BY(mu);
  /// remaining dependency count per id
  std::vector<std::uint8_t> deps MARSIT_GUARDED_BY(mu);
  /// tasks not yet finished
  std::size_t remaining MARSIT_GUARDED_BY(mu) = 0;
  std::size_t num_chunks = 0;  // immutable after setup
  std::size_t num_stages = 0;  // immutable after setup
};

/// Decrements the dependency count of (stage, chunk) and enqueues it when it
/// reaches zero.
void release_dependency(PipelineState& state, std::size_t stage,
                        std::size_t chunk) MARSIT_REQUIRES(state.mu) {
  const std::size_t id = stage * state.num_chunks + chunk;
  MARSIT_CHECK(state.deps[id] > 0) << "pipeline dependency underflow";
  if (--state.deps[id] == 0) {
    state.ready.push_back(id);
  }
}

/// Work loop run by every participant (pool workers and the caller): pop a
/// ready task, execute its stage body, release its successors, repeat until
/// every task has finished.  The mutex hand-off on completion is what gives
/// cross-stage writes their happens-before edge (TSan-clean by
/// construction).
void pipeline_worker(PipelineState& state,
                     std::span<const PipelineStage> stages) {
  ScratchArena& arena = this_thread_arena();
  MutexLock lock(state.mu);
  while (state.remaining > 0) {
    if (state.ready.empty()) {
      state.cv.wait(state.mu, [&state]() MARSIT_REQUIRES(state.mu) {
        return !state.ready.empty() || state.remaining == 0;
      });
      continue;
    }
    const std::size_t id = state.ready.front();
    state.ready.pop_front();
    lock.unlock();

    const std::size_t stage = id / state.num_chunks;
    const std::size_t chunk = id % state.num_chunks;
    arena.reset();
    stages[stage].run(chunk, arena);

    lock.lock();
    --state.remaining;
    if (stage + 1 < state.num_stages) {
      release_dependency(state, stage + 1, chunk);
    }
    if (chunk + 1 < state.num_chunks) {
      release_dependency(state, stage, chunk + 1);
    }
    // At most two tasks became ready, but a draining worker might be about
    // to sleep and the other wake-up target might be exiting: notify_all is
    // the simple safe choice at this task granularity.
    if (state.remaining == 0 || !state.ready.empty()) {
      state.cv.notify_all();
    }
  }
}

}  // namespace

void run_chunk_pipeline(ThreadPool& pool, std::size_t num_chunks,
                        std::span<const PipelineStage> stages) {
  const std::size_t num_stages = stages.size();
  if (num_chunks == 0 || num_stages == 0) {
    return;
  }
  for (const PipelineStage& stage : stages) {
    MARSIT_CHECK(static_cast<bool>(stage.run)) << "empty pipeline stage";
  }
  // Inline fast path: with one chunk or one pool thread the wavefront
  // degenerates to the sequential topological order — run it here without
  // scheduler traffic.  (Identical outputs: see the determinism note in
  // pipeline.hpp.)
  if (num_chunks == 1 || pool.num_threads() == 1) {
    ScratchArena& arena = this_thread_arena();
    for (std::size_t c = 0; c < num_chunks; ++c) {
      for (std::size_t s = 0; s < num_stages; ++s) {
        arena.reset();
        stages[s].run(c, arena);
      }
    }
    return;
  }

  PipelineState state;
  state.num_chunks = num_chunks;
  state.num_stages = num_stages;
  {
    // No worker exists yet, but the guarded fields are locked for the setup
    // writes anyway: uncontended, and the analysis stays unconditional.
    const MutexLock lock(state.mu);
    state.remaining = num_stages * num_chunks;
    state.deps.resize(state.remaining);
    for (std::size_t s = 0; s < num_stages; ++s) {
      for (std::size_t c = 0; c < num_chunks; ++c) {
        state.deps[s * num_chunks + c] =
            static_cast<std::uint8_t>((s > 0 ? 1 : 0) + (c > 0 ? 1 : 0));
      }
    }
    state.ready.push_back(0);  // (stage 0, chunk 0) is the only root
  }

  // The wavefront admits at most min(num_stages, num_chunks) concurrent
  // tasks; extra loop workers would only sleep on the cv.
  const std::size_t helpers =
      std::min(pool.num_threads(), std::min(num_stages, num_chunks));
  for (std::size_t i = 0; i + 1 < helpers; ++i) {
    pool.submit([&state, stages] { pipeline_worker(state, stages); });
  }
  // The caller is the last participant; single-producer contract of the
  // pool holds (all submits above happened on this thread).
  pipeline_worker(state, stages);
  // Loop tasks hold references to `state` on this stack frame — wait for
  // them to drain before returning.
  pool.wait_idle();
}

}  // namespace marsit
