#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace marsit {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  MARSIT_CHECK(task != nullptr) << "null task submitted to pool";
  {
    const MutexLock lock(mutex_);
    MARSIT_CHECK(!stopping_) << "submit after shutdown";
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  const MutexLock lock(mutex_);
  // Predicate lambdas touch guarded members, and the analysis checks a
  // lambda body as its own function — hence the REQUIRES on the lambda.
  idle_.wait(mutex_, [this]() MARSIT_REQUIRES(mutex_) {
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      task_available_.wait(mutex_, [this]() MARSIT_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (count == 1 || pool.num_threads() == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  const std::size_t blocks = std::min(count, pool.num_threads());
  const std::size_t per_block = (count + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * per_block;
    const std::size_t end = std::min(count, begin + per_block);
    if (begin >= end) {
      break;
    }
    pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

ThreadPool& global_thread_pool() {
  // marsit-lint: allow(concurrency-discipline): function-local static with a
  // thread-safe magic-statics init; ThreadPool synchronizes internally via
  // its own Mutex/CondVar members.
  static ThreadPool pool;
  return pool;
}

}  // namespace marsit
