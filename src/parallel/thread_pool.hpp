// Fixed-size worker thread pool.
//
// The distributed-training simulator computes M workers' gradients per round;
// those computations are independent, so DistributedTrainer fans them out
// over this pool.  The pool is deliberately simple: a mutex-guarded deque and
// a blocking wait — task granularity in this project is milliseconds, so a
// work-stealing scheduler would be complexity without benefit.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace marsit {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency,
  /// at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task.  Tasks must not throw: the simulator's tasks report
  /// errors through their captured state, and an escaping exception would
  /// otherwise terminate the process inside a pool thread.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  Safe to call
  /// repeatedly; concurrent submit from other threads during wait_idle is
  /// not supported (the simulator is a single-producer).
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ MARSIT_GUARDED_BY(mutex_);
  CondVar task_available_;
  CondVar idle_;
  std::size_t in_flight_ MARSIT_GUARDED_BY(mutex_) = 0;
  bool stopping_ MARSIT_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [0, count) across the pool, blocking until all
/// iterations finish.  Iterations are distributed in contiguous blocks, one
/// block per pool thread, which keeps each simulated worker's RNG use on a
/// stable thread.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Global pool shared by the simulator (constructed on first use).
ThreadPool& global_thread_pool();

}  // namespace marsit
