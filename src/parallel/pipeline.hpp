// Chunk-pipeline scheduler and per-thread scratch arenas.
//
// The sharded synchronization path used to run each ShardPlan chunk as one
// monolithic parallel_for task (pack → fold → unpack back to back).  The
// overlap pipeline splits a chunk's work into ordered *stages* and runs them
// as a software wavefront over the thread pool: stage s of chunk c may start
// once stage s of chunk c−1 and stage s−1 of chunk c are done.  Chunk i+1
// therefore packs while chunk i folds — the execution-side mirror of the
// max-of-stages timing model in collectives/timing.hpp (DESIGN.md §12).
//
// Determinism: the wavefront changes only *when* a (stage, chunk) task runs,
// never what it computes.  Chunks own disjoint word-aligned ranges of every
// buffer they touch (parallel/shard.hpp) and each chunk derives its own RNG
// stream, so any topological order of the task DAG — including the fully
// sequential one the single-thread fast path takes — produces bit-identical
// outputs.
//
// ScratchArena replaces the per-chunk heap allocations that used to live
// inside the hot lambda (the `std::vector<std::uint64_t> scratch` of
// sharded_majority_sync): each worker thread keeps a thread-local arena of
// reusable blocks, and a global grow counter lets tests assert that warm
// rounds allocate nothing (tests/core_pipeline_overlap_test.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace marsit {

class ThreadPool;

/// Reusable scratch blocks for pipeline stage bodies.  take-style accessors
/// hand out spans backed by pooled buffers; reset() returns every block to
/// the free list without releasing memory, so a steady-state round performs
/// zero heap allocations.  Not thread-safe — each thread uses its own arena
/// (see this_thread_arena()).
class ScratchArena {
 public:
  /// Marks every block free.  Spans handed out earlier must no longer be
  /// used.  Called by the pipeline runner before each stage body.
  void reset();

  /// A word block of exactly `count` elements (grows the arena on a cold
  /// miss; warm rounds reuse).  Contents are unspecified.
  std::span<std::uint64_t> words(std::size_t count);

  /// A float block of exactly `count` elements.
  std::span<float> floats(std::size_t count);

  /// Process-wide count of arena block allocations (cold-path grows).  A
  /// warm pipeline round must leave this unchanged — the counting hook the
  /// zero-allocation test asserts on.
  static std::uint64_t total_grows();

 private:
  template <typename T>
  struct Block {
    std::vector<T> data;
    bool in_use = false;
  };

  template <typename T>
  static std::span<T> take(std::vector<Block<T>>& blocks, std::size_t count);

  std::vector<Block<std::uint64_t>> word_blocks_;
  std::vector<Block<float>> float_blocks_;
};

/// The calling thread's arena (thread-local, created on first use).  Pool
/// worker threads are long-lived, so their arenas stay warm across rounds.
ScratchArena& this_thread_arena();

/// One stage of the chunk pipeline.  `run` must be safe to call from any
/// pool thread and must not throw; it receives the chunk index and the
/// executing thread's (already reset) scratch arena.
struct PipelineStage {
  std::function<void(std::size_t chunk, ScratchArena& arena)> run;
};

/// Executes stages[s].run(c) for every stage s and chunk c, subject to the
/// wavefront dependencies
///
///   (s, c) waits for (s−1, c)   — a chunk flows through stages in order —
///   (s, c) waits for (s, c−1)   — a stage processes chunks in order,
///
/// which bounds concurrency to min(num_stages, num_chunks) in-flight tasks
/// (the "double buffer" at two stages).  Blocks until every task has
/// finished.  The caller thread participates in the work.  Runs inline —
/// chunk by chunk, stage by stage — when the pool has one thread or there is
/// a single chunk; outputs are identical either way (see file comment).
void run_chunk_pipeline(ThreadPool& pool, std::size_t num_chunks,
                        std::span<const PipelineStage> stages);

}  // namespace marsit
