// Fixed-geometry chunking for sharded vector pipelines.
//
// A ShardPlan splits [0, total) element indices into chunks whose boundaries
// are multiples of a fixed alignment (64 — one packed sign word, see
// compress/kernels.hpp), so each chunk owns whole words of every packed
// BitVector it touches: concurrent chunks never share a word, hence no
// atomics and no false sharing on the packed planes.
//
// The grid depends only on (total, chunk_hint) — never on the thread count —
// which is what makes sharded synchronization deterministic: chunk c always
// covers the same element range and always derives the same RNG stream
// (derive_seed(round_seed, c)), whether it runs on 1 thread or 64.
#pragma once

#include <cstddef>
#include <string>

#include "util/validate.hpp"

namespace marsit {

struct Shard {
  std::size_t index = 0;
  /// Element range [begin, end); begin is always a multiple of 64.
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  /// First packed word of the chunk (= begin / 64).
  std::size_t word_begin() const { return begin / 64; }
  /// Number of packed words the chunk owns (= ⌈size/64⌉).
  std::size_t num_words() const { return (size() + 63) / 64; }
};

class ShardPlan {
 public:
  /// Plans chunks of ~chunk_hint elements (rounded up to a multiple of 64,
  /// minimum one word) over [0, total).
  ShardPlan(std::size_t total, std::size_t chunk_hint)
      : total_(total), chunk_((chunk_hint + 63) / 64 * 64) {
    if (chunk_ == 0) {
      chunk_ = 64;
    }
  }

  std::size_t total() const { return total_; }
  std::size_t chunk_elements() const { return chunk_; }

  std::size_t num_chunks() const {
    return total_ == 0 ? 0 : (total_ + chunk_ - 1) / chunk_;
  }

  Shard chunk(std::size_t index) const {
    Shard shard;
    shard.index = index;
    shard.begin = index * chunk_;
    shard.end = shard.begin + chunk_ < total_ ? shard.begin + chunk_ : total_;
    return shard;
  }

 private:
  std::size_t total_;
  std::size_t chunk_;
};

/// MARSIT_VALIDATE contract: the chunk grid tiles [0, total()) exactly once
/// — word-aligned begins, contiguous non-empty ranges, nothing dropped or
/// double-covered.  Sharded sync calls this (gated behind
/// MARSIT_VALIDATE_CALL) before fanning chunks out to the pool; it is always
/// compiled so tests can exercise it in any build mode.
inline void validate_shard_plan(const ShardPlan& plan) {
  std::size_t expected_begin = 0;
  const std::size_t chunks = plan.num_chunks();
  for (std::size_t c = 0; c < chunks; ++c) {
    const Shard shard = plan.chunk(c);
    if (shard.index != c || shard.begin != expected_begin ||
        shard.begin % 64 != 0 || shard.end <= shard.begin ||
        shard.end > plan.total()) {
      validate::fail("shard-plan",
                     "chunk " + std::to_string(c) + " covers [" +
                         std::to_string(shard.begin) + ", " +
                         std::to_string(shard.end) + ") but [" +
                         std::to_string(expected_begin) +
                         ", ...) was expected in the tile of [0, " +
                         std::to_string(plan.total()) + ")");
    }
    expected_begin = shard.end;
  }
  if (expected_begin != plan.total()) {
    validate::fail("shard-plan",
                   "grid ends at " + std::to_string(expected_begin) +
                       " leaving [" + std::to_string(expected_begin) + ", " +
                       std::to_string(plan.total()) + ") uncovered");
  }
}

}  // namespace marsit
