#include "data/dataset.hpp"

#include "util/check.hpp"

namespace marsit {

void Dataset::fill_batch(std::span<const std::uint64_t> indices,
                         Batch& batch) const {
  const std::size_t n = indices.size();
  const std::size_t sample = sample_size();
  if (batch.inputs.size() != n * sample) {
    batch.inputs = Tensor(n * sample);
  }
  batch.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.labels[i] =
        fill_sample(indices[i], batch.inputs.span().subspan(i * sample,
                                                            sample));
  }
}

ShardedSampler::ShardedSampler(const Dataset& dataset,
                               std::size_t num_workers,
                               std::size_t batch_size,
                               std::uint64_t train_range,
                               std::uint64_t test_range, std::uint64_t seed)
    : dataset_(dataset),
      num_workers_(num_workers),
      batch_size_(batch_size),
      train_range_(train_range),
      test_range_(test_range),
      seed_(seed) {
  MARSIT_CHECK(num_workers_ >= 1) << "sampler needs at least one worker";
  MARSIT_CHECK(batch_size_ >= 1) << "empty batch size";
  MARSIT_CHECK(train_range_ >= batch_size_) << "train range too small";
  MARSIT_CHECK(test_range_ >= 1) << "empty test range";
}

void ShardedSampler::worker_batch(std::size_t worker, std::size_t round,
                                  Batch& batch) const {
  MARSIT_CHECK(worker < num_workers_) << "worker index out of range";
  Rng rng(derive_seed(seed_, round * num_workers_ + worker + 1));
  std::vector<std::uint64_t> indices(batch_size_);
  for (auto& index : indices) {
    index = rng.next_below(train_range_);
  }
  dataset_.fill_batch(indices, batch);
}

void ShardedSampler::test_batch(std::size_t count, std::size_t block,
                                Batch& batch) const {
  MARSIT_CHECK(count >= 1) << "empty test batch";
  std::vector<std::uint64_t> indices(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Sequential walk through the held-out range, past the train range.
    indices[i] = train_range_ + (block * count + i) % test_range_;
  }
  dataset_.fill_batch(indices, batch);
}

}  // namespace marsit
