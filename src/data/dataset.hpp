// Dataset abstraction for the synthetic workloads.
//
// Every dataset here is *procedural*: sample `index` is generated
// deterministically from (dataset seed, index), so datasets are unbounded,
// need no storage, and train/test splits are just disjoint index ranges.
// This replaces MNIST / CIFAR-10 / ImageNet / IMDb, which are unavailable in
// this environment (DESIGN.md §2 documents each substitution).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace marsit {

struct Batch {
  Tensor inputs;  // batch × sample_size, row-major
  std::vector<std::size_t> labels;

  std::size_t size() const { return labels.size(); }
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  /// Per-sample input element count.
  virtual std::size_t sample_size() const = 0;
  virtual std::size_t num_classes() const = 0;

  /// Generates sample `index` into `out` (extent sample_size()) and returns
  /// its label.  Thread-safe: generation is pure in (seed, index).
  virtual std::size_t fill_sample(std::uint64_t index,
                                  std::span<float> out) const = 0;

  /// Fills a batch from explicit indices.
  void fill_batch(std::span<const std::uint64_t> indices, Batch& batch) const;
};

/// Deterministic i.i.d. batch sampling for M workers — the paper's cloud
/// setting where "data can be shuffled and formed an identical distribution
/// among workers".  Worker w's round-t batch draws indices uniformly from
/// the train range using a stream seeded by (seed, w, t); the test range is
/// disjoint.
class ShardedSampler {
 public:
  ShardedSampler(const Dataset& dataset, std::size_t num_workers,
                 std::size_t batch_size, std::uint64_t train_range,
                 std::uint64_t test_range, std::uint64_t seed);

  std::size_t batch_size() const { return batch_size_; }

  /// Worker `w`'s minibatch for round `t` (resizes `batch` as needed).
  void worker_batch(std::size_t worker, std::size_t round,
                    Batch& batch) const;

  /// Deterministic evaluation batch of `count` samples from the held-out
  /// test range (chunk `block` selects disjoint eval subsets).
  void test_batch(std::size_t count, std::size_t block, Batch& batch) const;

 private:
  const Dataset& dataset_;
  std::size_t num_workers_;
  std::size_t batch_size_;
  std::uint64_t train_range_;
  std::uint64_t test_range_;
  std::uint64_t seed_;
};

}  // namespace marsit
