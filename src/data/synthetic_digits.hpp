// SyntheticDigits — the MNIST stand-in.
//
// Ten seven-segment digit glyphs rendered onto a 14×14 grayscale canvas with
// per-sample random translation, intensity jitter, pixel dropout and
// Gaussian noise.  Like MNIST it is a 10-way, nearly separable task that a
// small conv net fits to ≥99 % test accuracy — the property Table 1 relies
// on (non-compressed training converges fast and high; cascading compression
// visibly degrades or diverges).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "data/dataset.hpp"
#include "nn/conv.hpp"

namespace marsit {

struct SyntheticDigitsConfig {
  std::uint64_t seed = 41;
  /// Maximum |translation| in pixels along each axis.
  std::size_t max_shift = 1;
  float noise_stddev = 0.12f;
  /// Probability a lit pixel is dropped.
  float dropout = 0.03f;
};

class SyntheticDigits final : public Dataset {
 public:
  static constexpr std::size_t kHeight = 14;
  static constexpr std::size_t kWidth = 14;

  explicit SyntheticDigits(SyntheticDigitsConfig config = {});

  std::size_t sample_size() const override { return kHeight * kWidth; }
  std::size_t num_classes() const override { return 10; }
  ImageDims image_dims() const { return {1, kHeight, kWidth}; }

  std::size_t fill_sample(std::uint64_t index,
                          std::span<float> out) const override;

 private:
  SyntheticDigitsConfig config_;
};

}  // namespace marsit
