// SyntheticImages — the CIFAR-10 / ImageNet stand-in.
//
// Each class is a fixed multi-grating color texture (a sum of sinusoidal
// gratings with class-specific frequencies, orientations and phases per
// channel).  A sample is its class texture under a random phase translation,
// per-channel amplitude jitter and additive Gaussian noise.  With the
// default noise the task is markedly harder than SyntheticDigits — models
// must average over many noisy minibatches, which is where compression
// error separates the methods (Table 2, Figures 3/4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "nn/conv.hpp"

namespace marsit {

struct SyntheticImagesConfig {
  std::uint64_t seed = 42;
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  /// Gratings summed per channel.
  std::size_t gratings = 3;
  /// Magnitude of the per-(class, channel) DC offset — the "color
  /// statistics" component of a class (real CIFAR/ImageNet classes differ
  /// in channel means, which is what global-average-pooled nets key on
  /// first).  0 disables it.
  float channel_bias = 0.6f;
  float noise_stddev = 0.55f;
  /// Maximum phase translation in pixels (cyclic).
  float max_translation = 4.0f;
  float amplitude_jitter = 0.3f;

  /// The larger "ImageNet-class" configuration used by the ResNet-18/50
  /// rows: more classes, bigger images, weaker color cue (so the task is
  /// textural and the deep models' accuracy lands in the paper's 70-90 %
  /// band rather than saturating).
  static SyntheticImagesConfig imagenet_like() {
    SyntheticImagesConfig config;
    config.seed = 43;
    config.num_classes = 16;
    config.height = 20;
    config.width = 20;
    config.channel_bias = 0.3f;
    config.noise_stddev = 0.8f;
    return config;
  }
};

class SyntheticImages final : public Dataset {
 public:
  explicit SyntheticImages(SyntheticImagesConfig config = {});

  std::size_t sample_size() const override {
    return config_.channels * config_.height * config_.width;
  }
  std::size_t num_classes() const override { return config_.num_classes; }
  ImageDims image_dims() const {
    return {config_.channels, config_.height, config_.width};
  }

  std::size_t fill_sample(std::uint64_t index,
                          std::span<float> out) const override;

 private:
  struct Grating {
    float fx, fy, phase, amplitude;
  };

  SyntheticImagesConfig config_;
  /// [class][channel][grating] — fixed at construction from the seed.
  std::vector<std::vector<std::vector<Grating>>> textures_;
  /// [class][channel] DC offsets.
  std::vector<std::vector<float>> channel_bias_;
};

}  // namespace marsit
