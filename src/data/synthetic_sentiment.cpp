#include "data/synthetic_sentiment.hpp"

#include "util/check.hpp"

namespace marsit {

SyntheticSentiment::SyntheticSentiment(SyntheticSentimentConfig config)
    : config_(config) {
  MARSIT_CHECK(config_.vocab_size > 2 * config_.lexicon)
      << "vocabulary must contain neutral tokens beyond both lexicons";
  MARSIT_CHECK(config_.seq_len >= 1) << "empty sequences";
  MARSIT_CHECK(config_.lexicon >= 1) << "empty sentiment lexicon";
  MARSIT_CHECK(config_.sentiment_rate > 0.0f && config_.sentiment_rate <= 1.0f)
      << "sentiment rate out of (0,1]";
  MARSIT_CHECK(config_.contradiction_rate >= 0.0f &&
               config_.contradiction_rate < 0.5f)
      << "contradiction rate must be < 0.5 or classes are unlearnable";
}

std::size_t SyntheticSentiment::fill_sample(std::uint64_t index,
                                            std::span<float> out) const {
  MARSIT_CHECK(out.size() == config_.seq_len) << "sample buffer extent";
  Rng rng(derive_seed(config_.seed, index));

  const std::size_t label = rng.next_below(2);  // 0 = negative, 1 = positive
  const std::size_t neutral_base = 2 * config_.lexicon;
  const std::size_t neutral_count = config_.vocab_size - neutral_base;

  for (std::size_t t = 0; t < config_.seq_len; ++t) {
    std::size_t token;
    if (rng.bernoulli(config_.sentiment_rate)) {
      const bool contradict = rng.bernoulli(config_.contradiction_rate);
      const std::size_t effective = contradict ? 1 - label : label;
      // Positive lexicon at [0, lexicon); negative at [lexicon, 2·lexicon).
      const std::size_t base = effective == 1 ? 0 : config_.lexicon;
      token = base + rng.next_below(config_.lexicon);
    } else {
      token = neutral_base + rng.next_below(neutral_count);
    }
    out[t] = static_cast<float>(token);
  }
  return label;
}

}  // namespace marsit
