#include "data/synthetic_images.hpp"

#include <cmath>

#include "util/check.hpp"

namespace marsit {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}

SyntheticImages::SyntheticImages(SyntheticImagesConfig config)
    : config_(config) {
  MARSIT_CHECK(config_.num_classes >= 2) << "need at least two classes";
  MARSIT_CHECK(config_.channels >= 1 && config_.height >= 4 &&
               config_.width >= 4)
      << "degenerate image geometry";
  MARSIT_CHECK(config_.gratings >= 1) << "need at least one grating";

  Rng rng(derive_seed(config_.seed, 0xface));
  channel_bias_.resize(config_.num_classes);
  for (auto& per_channel : channel_bias_) {
    per_channel.resize(config_.channels);
    for (auto& bias : per_channel) {
      bias = static_cast<float>(
          rng.uniform(-config_.channel_bias, config_.channel_bias));
    }
  }
  textures_.resize(config_.num_classes);
  for (auto& class_textures : textures_) {
    class_textures.resize(config_.channels);
    for (auto& channel_gratings : class_textures) {
      channel_gratings.resize(config_.gratings);
      for (auto& grating : channel_gratings) {
        // Spatial frequencies in cycles per image, low enough for a 3×3
        // conv stack to resolve.
        grating.fx = static_cast<float>(rng.uniform(0.5, 3.0)) *
                     (rng.bernoulli(0.5) ? 1.0f : -1.0f);
        grating.fy = static_cast<float>(rng.uniform(0.5, 3.0)) *
                     (rng.bernoulli(0.5) ? 1.0f : -1.0f);
        grating.phase = static_cast<float>(rng.uniform(0.0, kTwoPi));
        grating.amplitude = static_cast<float>(rng.uniform(0.4, 1.0));
      }
    }
  }
}

std::size_t SyntheticImages::fill_sample(std::uint64_t index,
                                         std::span<float> out) const {
  MARSIT_CHECK(out.size() == sample_size()) << "sample buffer extent";
  Rng rng(derive_seed(config_.seed, index));

  const std::size_t label = rng.next_below(config_.num_classes);
  const float dx = static_cast<float>(
      rng.uniform(-config_.max_translation, config_.max_translation));
  const float dy = static_cast<float>(
      rng.uniform(-config_.max_translation, config_.max_translation));

  const float inv_h = 1.0f / static_cast<float>(config_.height);
  const float inv_w = 1.0f / static_cast<float>(config_.width);
  const std::size_t plane = config_.height * config_.width;

  for (std::size_t c = 0; c < config_.channels; ++c) {
    const float jitter =
        1.0f + static_cast<float>(rng.uniform(-config_.amplitude_jitter,
                                              config_.amplitude_jitter));
    float* out_plane = out.data() + c * plane;
    const auto& gratings = textures_[label][c];
    for (std::size_t y = 0; y < config_.height; ++y) {
      const float fy_pos = (static_cast<float>(y) + dy) * inv_h;
      for (std::size_t x = 0; x < config_.width; ++x) {
        const float fx_pos = (static_cast<float>(x) + dx) * inv_w;
        double value = 0.0;
        for (const Grating& g : gratings) {
          value += g.amplitude *
                   std::sin(kTwoPi * (g.fx * fx_pos + g.fy * fy_pos) +
                            g.phase);
        }
        out_plane[y * config_.width + x] =
            static_cast<float>(value) * jitter + channel_bias_[label][c];
      }
    }
  }

  if (config_.noise_stddev > 0.0f) {
    for (float& pixel : out) {
      pixel += static_cast<float>(rng.normal(0.0, config_.noise_stddev));
    }
  }
  return label;
}

}  // namespace marsit
