// SyntheticSentiment — the IMDb-reviews stand-in.
//
// Binary sentiment over token sequences: the vocabulary has a positive
// lexicon, a negative lexicon and a neutral bulk.  A review of class c draws
// each token from the neutral bulk with probability (1 − sentiment_rate),
// otherwise from c's lexicon — with a small "contradiction" probability of
// drawing from the *opposite* lexicon so the task is not trivially
// separable.  Trained with Adam like the paper's DistilBERT task.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "data/dataset.hpp"

namespace marsit {

struct SyntheticSentimentConfig {
  std::uint64_t seed = 44;
  std::size_t vocab_size = 2000;
  std::size_t seq_len = 32;
  /// Tokens [0, lexicon) are positive, [lexicon, 2·lexicon) negative.
  std::size_t lexicon = 200;
  /// Probability a token carries sentiment at all.
  float sentiment_rate = 0.25f;
  /// Probability a sentiment token comes from the opposite lexicon.
  float contradiction_rate = 0.2f;
};

class SyntheticSentiment final : public Dataset {
 public:
  explicit SyntheticSentiment(SyntheticSentimentConfig config = {});

  std::size_t sample_size() const override { return config_.seq_len; }
  std::size_t num_classes() const override { return 2; }
  std::size_t vocab_size() const { return config_.vocab_size; }
  std::size_t seq_len() const { return config_.seq_len; }

  /// Emits seq_len token ids as floats (the Embedding layer's input
  /// convention).
  std::size_t fill_sample(std::uint64_t index,
                          std::span<float> out) const override;

 private:
  SyntheticSentimentConfig config_;
};

}  // namespace marsit
