#include "data/synthetic_digits.hpp"

#include <array>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

namespace {

// Seven-segment rendering: segments a(top) b(top-right) c(bottom-right)
// d(bottom) e(bottom-left) f(top-left) g(middle) on a 12-tall × 8-wide
// glyph box.
constexpr std::size_t kGlyphH = 10;
constexpr std::size_t kGlyphW = 7;

struct Segments {
  bool a, b, c, d, e, f, g;
};

constexpr std::array<Segments, 10> kDigitSegments = {{
    {true, true, true, true, true, true, false},     // 0
    {false, true, true, false, false, false, false}, // 1
    {true, true, false, true, true, false, true},    // 2
    {true, true, true, true, false, false, true},    // 3
    {false, true, true, false, false, true, true},   // 4
    {true, false, true, true, false, true, true},    // 5
    {true, false, true, true, true, true, true},     // 6
    {true, true, true, false, false, false, false},  // 7
    {true, true, true, true, true, true, true},      // 8
    {true, true, true, true, false, true, true},     // 9
}};

/// Renders digit `d` as kGlyphH×kGlyphW intensities in {0,1}.
std::array<float, kGlyphH * kGlyphW> render_glyph(std::size_t digit) {
  std::array<float, kGlyphH * kGlyphW> glyph{};
  const Segments& seg = kDigitSegments[digit];
  auto set = [&glyph](std::size_t y, std::size_t x) {
    glyph[y * kGlyphW + x] = 1.0f;
  };
  for (std::size_t x = 1; x + 1 < kGlyphW; ++x) {
    if (seg.a) set(0, x);
    if (seg.g) set(kGlyphH / 2, x);
    if (seg.d) set(kGlyphH - 1, x);
  }
  for (std::size_t y = 1; y < kGlyphH / 2; ++y) {
    if (seg.f) set(y, 0);
    if (seg.b) set(y, kGlyphW - 1);
  }
  for (std::size_t y = kGlyphH / 2 + 1; y + 1 < kGlyphH; ++y) {
    if (seg.e) set(y, 0);
    if (seg.c) set(y, kGlyphW - 1);
  }
  return glyph;
}

const std::array<std::array<float, kGlyphH * kGlyphW>, 10>& glyph_table() {
  static const auto table = [] {
    std::array<std::array<float, kGlyphH * kGlyphW>, 10> t{};
    for (std::size_t d = 0; d < 10; ++d) {
      t[d] = render_glyph(d);
    }
    return t;
  }();
  return table;
}

}  // namespace

SyntheticDigits::SyntheticDigits(SyntheticDigitsConfig config)
    : config_(config) {
  MARSIT_CHECK(kGlyphH + 2 * config_.max_shift <= kHeight &&
               kGlyphW + 2 * config_.max_shift <= kWidth)
      << "shift range pushes the glyph off the canvas";
}

std::size_t SyntheticDigits::fill_sample(std::uint64_t index,
                                         std::span<float> out) const {
  MARSIT_CHECK(out.size() == sample_size()) << "sample buffer extent";
  Rng rng(derive_seed(config_.seed, index));

  const std::size_t label = rng.next_below(10);
  const auto& glyph = glyph_table()[label];

  const std::size_t shift_span = 2 * config_.max_shift + 1;
  const std::size_t base_y = rng.next_below(shift_span);
  const std::size_t base_x = rng.next_below(shift_span);
  const float intensity = static_cast<float>(rng.uniform(0.7, 1.0));

  zero(out);
  for (std::size_t gy = 0; gy < kGlyphH; ++gy) {
    for (std::size_t gx = 0; gx < kGlyphW; ++gx) {
      const float v = glyph[gy * kGlyphW + gx];
      if (v == 0.0f) {
        continue;
      }
      if (config_.dropout > 0.0f && rng.bernoulli(config_.dropout)) {
        continue;
      }
      out[(base_y + gy) * kWidth + (base_x + gx)] = v * intensity;
    }
  }
  if (config_.noise_stddev > 0.0f) {
    for (float& pixel : out) {
      pixel += static_cast<float>(rng.normal(0.0, config_.noise_stddev));
    }
  }
  return label;
}

}  // namespace marsit
