// Segment-seeded ⊙ folds — the reduce-scatter form of Marsit's reduction.
//
// The legacy fold (marsit_fold_signs_words) consumes ONE sequential rng
// stream, which forces whoever folds to see every hop's draws in order.  On
// a real wire that means all-gather-and-fold-locally: M(M−1)·D bits instead
// of the paper's 2(M−1)·D.  The folds in this header remove the sequential
// dependency by giving every (segment, fold-op) pair its own derived
// generator (core/one_bit.hpp: segment_fold_seed / segment_op_rng), so a
// rank can fold exactly the segments it owns in a reduce-scatter schedule
// while all other ranks — and the single-process trainer emulating them —
// reproduce the identical aggregate bit-for-bit.
//
// Each fold here is the trainer-side (single-process) replay of a concrete
// wire schedule run by src/dist/worker.cpp over a Transport:
//
//   segmented_ring_fold   ring reduce-scatter: W words split into `count`
//                         segments; segment s's chain starts at rank s and
//                         its op k folds at rank (s+k+1) mod count, merging
//                         the arriving partial (weight k+1) with that rank's
//                         local signs (weight 1).
//   segmented_torus_fold  two-level reduce-scatter: row rings over `cols`
//                         segments, then column rings over `rows`
//                         sub-segments, with whole-row weights (multiples of
//                         cols) in the column phase.
//   segmented_chain_fold  parameter server: the server folds workers in rank
//                         order over one whole-payload segment.
//   segmented_tree_fold   binomial tree: the legacy merge enumeration with a
//                         per-merge op ordinal (tree_merge_schedule).
//
// All folds leave the final aggregate in signs.front() (the local image of
// the all-gather phase), matching marsit_fold_signs_words' convention, and
// all are order-independent across segments: chains write disjoint
// (vector, word-range) pairs and never read a range another chain writes.
//
// The statistical contract — both Eq. 2 branches unbiased for every segment
// split — is proven in tests/core_one_bit_stat_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/bit_vector.hpp"
#include "core/sync_strategy.hpp"

namespace marsit {

/// One word-aligned segment of a reduce-scatter partition.
struct WordSegment {
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Deterministic partition of `num_words` words into `parts` segments: the
/// first (num_words mod parts) segments get one extra word.  Segments may be
/// empty when num_words < parts; empty segments cost no wire bytes and no
/// rng.  Every backend derives ownership from this single function.
WordSegment word_segment(std::size_t num_words, std::size_t parts,
                         std::size_t index);

/// One merge of the binomial-tree reduction: `src`'s aggregate (weight
/// src_weight) folds into `dst`'s (weight dst_weight), as the op-th ⊙ of the
/// round (rng = segment_op_rng(segment_fold_seed(seed, 0), op)).
struct TreeMerge {
  std::size_t dst = 0;
  std::size_t src = 0;
  std::size_t dst_weight = 0;
  std::size_t src_weight = 0;
  std::size_t op = 0;
};

/// The canonical merge order of the binomial tree over `count` ranks —
/// exactly the legacy kTree enumeration (stride doubling, ascending dst)
/// with a running op ordinal.  Both the trainer fold and the distributed
/// worker replay this schedule so their rng draws line up.
std::vector<TreeMerge> tree_merge_schedule(std::size_t count);

/// Ring reduce-scatter fold of the first `count` sign vectors' leading
/// `num_words` words.  Aggregate lands in signs.front().
void segmented_ring_fold(std::vector<BitVector>& signs, std::size_t count,
                         std::size_t num_words, std::uint64_t round_seed);

/// Torus reduce-scatter fold (requires rows*cols == count).  Segment seeds:
/// the row phase uses id r·cols + j for (row r, segment j); the column phase
/// uses id count + c·rows + i for (column c, sub-segment i).
void segmented_torus_fold(std::vector<BitVector>& signs, std::size_t count,
                          std::size_t rows, std::size_t cols,
                          std::size_t num_words, std::uint64_t round_seed);

/// Parameter-server fold: chain in rank order over one whole-payload
/// segment (segment id 0), one derived generator per hop.
void segmented_chain_fold(std::vector<BitVector>& signs, std::size_t count,
                          std::size_t num_words, std::uint64_t round_seed);

/// Binomial-tree fold following tree_merge_schedule(count).
void segmented_tree_fold(std::vector<BitVector>& signs, std::size_t count,
                         std::size_t num_words, std::uint64_t round_seed);

/// Paradigm dispatcher for SyncMode::kReduceScatter rounds — the
/// segment-seeded counterpart of marsit_fold_signs_words.  A torus whose
/// membership no longer tiles rows×cols falls back to the segmented ring
/// over the survivors (the same degradation rule the wire schedule uses).
void marsit_fold_signs_segmented(MarParadigm paradigm, std::size_t torus_rows,
                                 std::size_t torus_cols,
                                 std::vector<BitVector>& signs,
                                 std::size_t count, std::size_t num_words,
                                 std::uint64_t round_seed);

}  // namespace marsit
