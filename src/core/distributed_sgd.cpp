#include "core/distributed_sgd.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

DistributedSgdTrace run_distributed_sgd(SyncStrategy& strategy,
                                        const StochasticObjective& objective,
                                        const Tensor& x0,
                                        const DistributedSgdOptions& options) {
  MARSIT_CHECK(objective.dimension > 0) << "objective has no dimension";
  MARSIT_CHECK(x0.size() == objective.dimension)
      << "x0 extent " << x0.size() << " vs dimension " << objective.dimension;
  MARSIT_CHECK(objective.gradient != nullptr) << "objective lacks gradients";
  MARSIT_CHECK(options.rounds > 0) << "zero training rounds";

  const std::size_t m = strategy.config().num_workers;
  const std::size_t d = objective.dimension;

  Tensor x = x0;
  std::vector<Tensor> grads(m, Tensor(d));
  Tensor global_update(d);
  Tensor mean_grad(d);

  DistributedSgdTrace trace;

  auto evaluate = [&](std::size_t round) {
    if (objective.loss) {
      trace.losses.emplace_back(round, objective.loss(x.span()));
    }
    trace.grad_norms_sq.push_back(
        static_cast<double>(squared_l2_norm(mean_grad.span())));
  };

  // Round-0 baseline so traces (and convergence tests) can compare against
  // the starting loss; the gradient-norm slot is 0 because no gradient has
  // been computed yet.
  evaluate(0);

  for (std::size_t t = 0; t < options.rounds; ++t) {
    WorkerSpans spans;
    spans.reserve(m);
    for (std::size_t w = 0; w < m; ++w) {
      objective.gradient(w, t, x.span(), grads[w].span());
      scale(grads[w].span(), options.eta_l);
      spans.push_back(grads[w].span());
    }
    aggregate_mean(spans, mean_grad.span());
    scale(mean_grad.span(), 1.0f / options.eta_l);  // undo η_l for the trace

    const SyncStepResult step =
        strategy.synchronize(spans, global_update.span());
    trace.simulated_seconds += step.timing.completion_seconds;
    trace.total_wire_bits += step.timing.total_wire_bits;

    axpy(-1.0f, global_update.span(), x.span());
    if (!all_finite(x.span())) {
      trace.diverged = true;
      break;
    }

    if (options.eval_interval > 0 && (t + 1) % options.eval_interval == 0) {
      evaluate(t + 1);
    }
  }

  if (!trace.diverged &&
      (trace.losses.empty() ||
       trace.losses.back().first != options.rounds)) {
    evaluate(options.rounds);
  }
  trace.final_point = std::move(x);
  return trace;
}

StochasticObjective make_quadratic_objective(std::size_t dimension,
                                             std::size_t num_workers,
                                             double sigma,
                                             std::uint64_t seed) {
  MARSIT_CHECK(dimension > 0 && num_workers > 0)
      << "degenerate quadratic objective";

  // Worker targets b_m ~ N(0, 1)^d; F(x) = (1/M) Σ ½‖x − b_m‖², whose
  // gradient is x − mean(b).
  // Stream discipline: the root seed is never fed to an Rng directly.
  // Stream 0 draws the worker targets; stream 1 parents the per-(round,
  // worker) gradient-noise streams below.
  auto targets = std::make_shared<std::vector<Tensor>>();
  Rng rng(derive_seed(seed, 0));
  for (std::size_t w = 0; w < num_workers; ++w) {
    Tensor b(dimension);
    fill_normal(b.span(), rng, 0.0f, 1.0f);
    targets->push_back(std::move(b));
  }

  StochasticObjective objective;
  objective.dimension = dimension;
  objective.gradient = [targets, sigma, seed, dimension](
                           std::size_t worker, std::size_t round,
                           std::span<const float> x, std::span<float> grad) {
    MARSIT_CHECK(worker < targets->size()) << "worker index out of range";
    const Tensor& b = (*targets)[worker];
    sub(x, b.span(), grad);
    if (sigma > 0.0) {
      // (seed, round, entity) derivation: noise for (round, worker) is a
      // child of stream 1, independent of the target stream regardless of
      // how many draws that stream consumed.
      Rng noise(derive_seed(derive_seed(seed, 1),
                            round * targets->size() + worker));
      for (std::size_t i = 0; i < dimension; ++i) {
        grad[i] += static_cast<float>(noise.normal(0.0, sigma));
      }
    }
  };
  objective.loss = [targets](std::span<const float> x) {
    double total = 0.0;
    std::vector<float> diff(x.size());
    for (const auto& b : *targets) {
      sub(x, b.span(), {diff.data(), diff.size()});
      total += 0.5 * static_cast<double>(
                         squared_l2_norm({diff.data(), diff.size()}));
    }
    return total / static_cast<double>(targets->size());
  };
  return objective;
}

}  // namespace marsit
