#include "core/segmented_fold.hpp"

#include <algorithm>

#include "core/one_bit.hpp"
#include "util/check.hpp"

namespace marsit {

WordSegment word_segment(std::size_t num_words, std::size_t parts,
                         std::size_t index) {
  MARSIT_CHECK(parts > 0) << "word_segment over zero parts";
  MARSIT_CHECK(index < parts)
      << "word_segment index " << index << " of " << parts;
  const std::size_t base = num_words / parts;
  const std::size_t rem = num_words % parts;
  WordSegment seg;
  seg.begin = index * base + std::min(index, rem);
  seg.count = base + (index < rem ? 1 : 0);
  return seg;
}

std::vector<TreeMerge> tree_merge_schedule(std::size_t count) {
  MARSIT_CHECK(count > 0) << "tree schedule over zero ranks";
  std::vector<TreeMerge> merges;
  std::vector<std::size_t> weights(count, 1);
  std::size_t op = 0;
  for (std::size_t stride = 1; stride < count; stride *= 2) {
    for (std::size_t i = 0; i + stride < count; i += 2 * stride) {
      merges.push_back(
          {i, i + stride, weights[i], weights[i + stride], op++});
      weights[i] += weights[i + stride];
    }
  }
  return merges;
}

void segmented_ring_fold(std::vector<BitVector>& signs, std::size_t count,
                         std::size_t num_words, std::uint64_t round_seed) {
  MARSIT_CHECK(count > 0 && count <= signs.size())
      << "segmented_ring_fold over " << count << " of " << signs.size();
  // Chain for segment s accumulates in signs[s]'s own segment-s words — the
  // buffer the chain-starting rank would hold on the wire.  Chains touch
  // disjoint (vector, word-range) pairs, so any execution order matches.
  for (std::size_t s = 0; s < count; ++s) {
    const WordSegment seg = word_segment(num_words, count, s);
    if (seg.count == 0) continue;
    const std::uint64_t seg_seed = segment_fold_seed(round_seed, s);
    const auto acc = signs[s].words().subspan(seg.begin, seg.count);
    for (std::size_t k = 0; k + 1 < count; ++k) {
      const std::size_t b = (s + k + 1) % count;
      Rng rng = segment_op_rng(seg_seed, k);
      one_bit_combine_words(
          acc, k + 1, signs[b].words().subspan(seg.begin, seg.count), 1, rng);
    }
  }
  // Local image of the all-gather phase: finalized segments move into
  // signs.front() so downstream unpacking reads one vector, exactly as with
  // the legacy fold.
  for (std::size_t s = 1; s < count; ++s) {
    const WordSegment seg = word_segment(num_words, count, s);
    if (seg.count == 0) continue;
    const auto src = signs[s].words().subspan(seg.begin, seg.count);
    const auto dst = signs[0].words().subspan(seg.begin, seg.count);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

void segmented_torus_fold(std::vector<BitVector>& signs, std::size_t count,
                          std::size_t rows, std::size_t cols,
                          std::size_t num_words, std::uint64_t round_seed) {
  MARSIT_CHECK(rows > 0 && cols > 0 && rows * cols == count)
      << "torus " << rows << "x" << cols << " does not tile " << count;
  MARSIT_CHECK(count <= signs.size())
      << "segmented_torus_fold over " << count << " of " << signs.size();
  // Phase A — row reduce-scatter: within row r, segment j's chain starts at
  // column j and accumulates in signs[r·cols + j].
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < cols; ++j) {
      const WordSegment seg = word_segment(num_words, cols, j);
      if (seg.count == 0) continue;
      const std::uint64_t seg_seed =
          segment_fold_seed(round_seed, r * cols + j);
      const auto acc = signs[r * cols + j].words().subspan(seg.begin,
                                                           seg.count);
      for (std::size_t k = 0; k + 1 < cols; ++k) {
        const std::size_t b = r * cols + (j + k + 1) % cols;
        Rng rng = segment_op_rng(seg_seed, k);
        one_bit_combine_words(
            acc, k + 1, signs[b].words().subspan(seg.begin, seg.count), 1,
            rng);
      }
    }
  }
  // Phase B — column reduce-scatter: column c owns segment j = (c+1) mod
  // cols after phase A; its rows-sized chains merge whole-row aggregates, so
  // weights are multiples of cols.  Row i's aggregate of segment j lives in
  // signs[i·cols + j] (where its phase-A chain accumulated).
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t j = (c + 1) % cols;
    const WordSegment seg = word_segment(num_words, cols, j);
    for (std::size_t i = 0; i < rows; ++i) {
      const WordSegment sub = word_segment(seg.count, rows, i);
      if (sub.count == 0) continue;
      const std::uint64_t seg_seed =
          segment_fold_seed(round_seed, count + c * rows + i);
      const auto acc = signs[i * cols + j].words().subspan(
          seg.begin + sub.begin, sub.count);
      for (std::size_t k = 0; k + 1 < rows; ++k) {
        const std::size_t b_row = (i + k + 1) % rows;
        Rng rng = segment_op_rng(seg_seed, k);
        one_bit_combine_words(acc, (k + 1) * cols,
                              signs[b_row * cols + j].words().subspan(
                                  seg.begin + sub.begin, sub.count),
                              cols, rng);
      }
    }
  }
  // Local image of phases C/D (column then row all-gather).
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t j = (c + 1) % cols;
    const WordSegment seg = word_segment(num_words, cols, j);
    for (std::size_t i = 0; i < rows; ++i) {
      const WordSegment sub = word_segment(seg.count, rows, i);
      if (sub.count == 0 || i * cols + j == 0) continue;
      const auto src = signs[i * cols + j].words().subspan(
          seg.begin + sub.begin, sub.count);
      const auto dst =
          signs[0].words().subspan(seg.begin + sub.begin, sub.count);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
}

void segmented_chain_fold(std::vector<BitVector>& signs, std::size_t count,
                          std::size_t num_words, std::uint64_t round_seed) {
  MARSIT_CHECK(count > 0 && count <= signs.size())
      << "segmented_chain_fold over " << count << " of " << signs.size();
  const std::uint64_t seg_seed = segment_fold_seed(round_seed, 0);
  const auto acc = signs[0].words().subspan(0, num_words);
  for (std::size_t k = 0; k + 1 < count; ++k) {
    Rng rng = segment_op_rng(seg_seed, k);
    one_bit_combine_words(
        acc, k + 1, signs[k + 1].words().subspan(0, num_words), 1, rng);
  }
}

void segmented_tree_fold(std::vector<BitVector>& signs, std::size_t count,
                         std::size_t num_words, std::uint64_t round_seed) {
  MARSIT_CHECK(count > 0 && count <= signs.size())
      << "segmented_tree_fold over " << count << " of " << signs.size();
  const std::uint64_t seg_seed = segment_fold_seed(round_seed, 0);
  for (const TreeMerge& merge : tree_merge_schedule(count)) {
    Rng rng = segment_op_rng(seg_seed, merge.op);
    one_bit_combine_words(signs[merge.dst].words().subspan(0, num_words),
                          merge.dst_weight,
                          signs[merge.src].words().subspan(0, num_words),
                          merge.src_weight, rng);
  }
}

void marsit_fold_signs_segmented(MarParadigm paradigm, std::size_t torus_rows,
                                 std::size_t torus_cols,
                                 std::vector<BitVector>& signs,
                                 std::size_t count, std::size_t num_words,
                                 std::uint64_t round_seed) {
  MARSIT_CHECK(count > 0 && count <= signs.size())
      << "segmented fold over " << count << " of " << signs.size();
  if (count == 1) return;
  switch (paradigm) {
    case MarParadigm::kTorus2d:
      if (torus_rows * torus_cols == count) {
        segmented_torus_fold(signs, count, torus_rows, torus_cols, num_words,
                             round_seed);
      } else {
        // Survivors no longer tile the torus: re-form as a segmented ring,
        // the same degradation the wire schedule applies (DESIGN.md §14).
        segmented_ring_fold(signs, count, num_words, round_seed);
      }
      return;
    case MarParadigm::kParameterServer:
      segmented_chain_fold(signs, count, num_words, round_seed);
      return;
    case MarParadigm::kTree:
      segmented_tree_fold(signs, count, num_words, round_seed);
      return;
    case MarParadigm::kRing:
      segmented_ring_fold(signs, count, num_words, round_seed);
      return;
  }
  segmented_ring_fold(signs, count, num_words, round_seed);
}

}  // namespace marsit
