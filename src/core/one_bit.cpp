#include "core/one_bit.hpp"

#include "util/check.hpp"

namespace marsit {

BitVector one_bit_combine(const BitVector& a, std::size_t weight_a,
                          const BitVector& b, std::size_t weight_b,
                          Rng& rng) {
  MARSIT_CHECK(a.size() == b.size())
      << "one_bit_combine extents " << a.size() << " vs " << b.size();
  MARSIT_CHECK(weight_a > 0 && weight_b > 0)
      << "aggregate weights must be positive";

  const double p_take_a = static_cast<double>(weight_a) /
                          static_cast<double>(weight_a + weight_b);
  BitVector result(a.size());
  auto ra = a.words();
  auto rb = b.words();
  auto out = result.words();
  for (std::size_t w = 0; w < out.size(); ++w) {
    const std::uint64_t wa = ra[w];
    const std::uint64_t wb = rb[w];
    const std::uint64_t v = rng.bernoulli_word(p_take_a);
    const std::uint64_t chosen = (wa & v) | (wb & ~v);
    out[w] = (wa & wb) | ((wa ^ wb) & chosen);
  }
  // Tail bits beyond size() stay zero because both operands keep them zero
  // and (0&0)|((0^0)&x) == 0.
  return result;
}

BitVector one_bit_fold(const std::vector<BitVector>& signs, Rng& rng) {
  MARSIT_CHECK(!signs.empty()) << "one_bit_fold over zero workers";
  BitVector aggregate = signs.front();
  for (std::size_t m = 1; m < signs.size(); ++m) {
    aggregate = one_bit_combine(aggregate, m, signs[m], 1, rng);
  }
  return aggregate;
}

}  // namespace marsit
