#include "core/one_bit.hpp"

#include "util/check.hpp"
#include "util/validate.hpp"

namespace marsit {

void one_bit_combine_words(std::span<std::uint64_t> a, std::size_t weight_a,
                           std::span<const std::uint64_t> b,
                           std::size_t weight_b, Rng& rng) {
  MARSIT_CHECK(a.size() == b.size())
      << "one_bit_combine word spans " << a.size() << " vs " << b.size();
  MARSIT_CHECK(weight_a > 0 && weight_b > 0)
      << "aggregate weights must be positive";
  MARSIT_VALIDATE_CALL(validate::hop_weights(weight_a, weight_b));
  const double p_take_a = static_cast<double>(weight_a) /
                          static_cast<double>(weight_a + weight_b);
  // Eq. 2 contract: the take-probability pair is a distribution — each bit
  // keeps a's value with p_take_a, b's with the complement.
  MARSIT_VALIDATE_CALL({
    const double take[] = {p_take_a, 1.0 - p_take_a};
    validate::probability_table(take, "one_bit_combine take-probabilities");
  });
  for (std::size_t w = 0; w < a.size(); ++w) {
    const std::uint64_t wa = a[w];
    const std::uint64_t wb = b[w];
    const std::uint64_t v = rng.bernoulli_word(p_take_a);
    const std::uint64_t chosen = (wa & v) | (wb & ~v);
    a[w] = (wa & wb) | ((wa ^ wb) & chosen);
  }
}

void one_bit_combine_into(BitVector& a, std::size_t weight_a,
                          const BitVector& b, std::size_t weight_b,
                          Rng& rng) {
  MARSIT_CHECK(a.size() == b.size())
      << "one_bit_combine extents " << a.size() << " vs " << b.size();
  one_bit_combine_words(a.words(), weight_a, b.words(), weight_b, rng);
  // Tail bits beyond size() stay zero because both operands keep them zero
  // and (0&0)|((0^0)&x) == 0.
}

BitVector one_bit_combine(const BitVector& a, std::size_t weight_a,
                          const BitVector& b, std::size_t weight_b,
                          Rng& rng) {
  BitVector result = a;
  one_bit_combine_into(result, weight_a, b, weight_b, rng);
  return result;
}

BitVector one_bit_fold(const std::vector<BitVector>& signs, Rng& rng) {
  MARSIT_CHECK(!signs.empty()) << "one_bit_fold over zero workers";
  BitVector aggregate = signs.front();
  for (std::size_t m = 1; m < signs.size(); ++m) {
    one_bit_combine_into(aggregate, m, signs[m], 1, rng);
  }
  return aggregate;
}

void one_bit_fold_into(std::vector<BitVector>& signs, Rng& rng) {
  MARSIT_CHECK(!signs.empty()) << "one_bit_fold over zero workers";
  BitVector& aggregate = signs.front();
  for (std::size_t m = 1; m < signs.size(); ++m) {
    one_bit_combine_into(aggregate, m, signs[m], 1, rng);
  }
}

std::uint64_t segment_fold_seed(std::uint64_t round_seed,
                                std::uint64_t segment_index) {
  return derive_seed(round_seed, segment_index);
}

Rng segment_op_rng(std::uint64_t segment_seed, std::uint64_t op_index) {
  return Rng(derive_seed(segment_seed, op_index));
}

}  // namespace marsit
