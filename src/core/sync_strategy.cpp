#include "core/sync_strategy.hpp"

#include <cmath>

#include "compress/sign_codec.hpp"
#include "core/one_bit.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

const char* mar_paradigm_name(MarParadigm paradigm) {
  switch (paradigm) {
    case MarParadigm::kRing:
      return "RAR";
    case MarParadigm::kTorus2d:
      return "TAR";
    case MarParadigm::kParameterServer:
      return "PS";
    case MarParadigm::kTree:
      return "TREE";
  }
  return "?";
}

namespace {

/// Block length for the SSDM strategies' stochastic-sign norms (see
/// ssdm_pack): per-block norms keep the sign probabilities informative at
/// training-scale dimensions, like the per-tensor norms of deployed
/// systems.
constexpr std::size_t kSsdmBlock = 64;

std::size_t network_nodes(const SyncConfig& config) {
  return config.paradigm == MarParadigm::kParameterServer
             ? config.num_workers + 1
             : config.num_workers;
}

}  // namespace

SyncStrategy::SyncStrategy(SyncConfig config)
    : config_(config), net_(network_nodes(config), config.cost_model) {
  MARSIT_CHECK(config_.num_workers >= 2)
      << "synchronization needs at least 2 workers";
  if (config_.paradigm == MarParadigm::kTorus2d) {
    MARSIT_CHECK(config_.torus_rows >= 2 && config_.torus_cols >= 2 &&
                 config_.torus_rows * config_.torus_cols ==
                     config_.num_workers)
        << "torus " << config_.torus_rows << "x" << config_.torus_cols
        << " does not tile " << config_.num_workers << " workers";
  }
}

SyncStepResult SyncStrategy::synchronize(const WorkerSpans& inputs,
                                         std::span<float> out) {
  MARSIT_CHECK(inputs.size() == config_.num_workers)
      << "got " << inputs.size() << " worker inputs, expected "
      << config_.num_workers;
  MARSIT_CHECK(!out.empty()) << "empty output span";
  for (const auto& in : inputs) {
    MARSIT_CHECK(in.size() == out.size())
        << "worker input extent " << in.size() << " vs output " << out.size();
  }
  net_.reset();  // rounds are timed independently
  SyncStepResult result = do_synchronize(inputs, out);
  ++round_;
  return result;
}

CollectiveTiming SyncStrategy::mar_timing(std::size_t d,
                                          const WireFormat& wire) {
  switch (config_.paradigm) {
    case MarParadigm::kRing:
      return ring_allreduce_timing(config_.num_workers, d, wire, net_);
    case MarParadigm::kTorus2d:
      return torus_allreduce_timing(config_.torus_rows, config_.torus_cols, d,
                                    wire, net_);
    case MarParadigm::kParameterServer:
      return ps_allreduce_timing(config_.num_workers, d, wire, net_);
    case MarParadigm::kTree:
      return tree_allreduce_timing(config_.num_workers, d, wire, net_);
  }
  MARSIT_CHECK(false) << "unreachable paradigm";
  return {};
}

Rng SyncStrategy::round_rng() const {
  return Rng(derive_seed(config_.seed, round_));
}

// --- PSGD ----------------------------------------------------------------

PsgdSync::PsgdSync(SyncConfig config) : SyncStrategy(config) {}

std::string PsgdSync::name() const {
  return std::string("PSGD-") + mar_paradigm_name(config_.paradigm);
}

SyncStepResult PsgdSync::do_synchronize(const WorkerSpans& inputs,
                                        std::span<float> out) {
  aggregate_mean(inputs, out);
  SyncStepResult result;
  result.timing = mar_timing(out.size(), full_precision_wire());
  result.full_precision = true;
  result.bits_per_element = 32.0;
  return result;
}

// --- shared sign-sum plumbing ----------------------------------------------

namespace {

/// Runs a sign-sum aggregation and builds the matching wire format,
/// refreshing the Elias size cache when due.
struct SignSumRound {
  SignSum sum;
  WireFormat wire;
  double bits_per_element = 0.0;
};

SignSumRound run_sign_sum_round(const std::vector<BitVector>& signs,
                                const SyncConfig& config, std::size_t round,
                                std::vector<double>& elias_cache,
                                std::size_t scalars_per_message) {
  const bool refresh =
      config.use_elias &&
      (elias_cache.empty() ||
       (config.elias_refresh_interval > 0 &&
        round % config.elias_refresh_interval == 0));
  SignSumAggregate aggregate = aggregate_sign_sum(signs, refresh);
  if (refresh) {
    elias_cache = aggregate.elias_bits_per_element;
  }

  SignSumRound result;
  result.sum = std::move(aggregate.sum);
  if (config.use_elias) {
    // Copy the cache into the closure: the wire format must stay valid and
    // self-contained for the duration of the timing pass.
    std::vector<double> cache = elias_cache;
    result.wire = sign_sum_elias_wire(
        config.cost_model, [cache](std::size_t contributions) {
          if (cache.empty()) {
            return 2.0;  // cold-start fallback, replaced on first refresh
          }
          const std::size_t index =
              std::min(contributions, cache.size()) - 1;
          return cache[index];
        });
    result.bits_per_element =
        elias_cache.empty() ? 2.0 : elias_cache.back();
  } else {
    result.wire = sign_sum_wire(config.cost_model, scalars_per_message);
    result.bits_per_element = static_cast<double>(
        sign_sum_bits_per_element(config.num_workers));
  }
  return result;
}

std::vector<BitVector> pack_all_signs(const WorkerSpans& inputs) {
  std::vector<BitVector> signs;
  signs.reserve(inputs.size());
  for (const auto& in : inputs) {
    signs.push_back(pack_signs(in));
  }
  return signs;
}

}  // namespace

// --- signSGD with majority vote ---------------------------------------------

SignSgdMvSync::SignSgdMvSync(SyncConfig config, float eta_s)
    : SyncStrategy(config), eta_s_(eta_s) {
  MARSIT_CHECK(eta_s_ > 0.0f) << "signSGD-MV needs a positive global stepsize";
}

std::string SignSgdMvSync::name() const {
  return std::string("signSGD-") + mar_paradigm_name(config_.paradigm);
}

SyncStepResult SignSgdMvSync::do_synchronize(const WorkerSpans& inputs,
                                             std::span<float> out) {
  const std::vector<BitVector> signs = pack_all_signs(inputs);
  SignSumRound round_data = run_sign_sum_round(signs, config_, round_,
                                               cached_elias_bpe_, 0);
  unpack_signs(round_data.sum.majority(), eta_s_, out);

  SyncStepResult result;
  result.timing = mar_timing(out.size(), round_data.wire);
  result.bits_per_element = round_data.bits_per_element;
  return result;
}

// --- EF-signSGD ---------------------------------------------------------------

EfSignSgdSync::EfSignSgdSync(SyncConfig config) : SyncStrategy(config) {}

std::string EfSignSgdSync::name() const {
  return std::string("EF-signSGD-") + mar_paradigm_name(config_.paradigm);
}

SyncStepResult EfSignSgdSync::do_synchronize(const WorkerSpans& inputs,
                                             std::span<float> out) {
  const std::size_t d = out.size();
  if (error_.empty()) {
    error_.assign(config_.num_workers, Tensor(d));
  }

  std::vector<BitVector> signs;
  signs.reserve(inputs.size());
  double scale_sum = 0.0;
  std::vector<float> p(d);
  std::vector<float> delta(d);
  for (std::size_t m = 0; m < inputs.size(); ++m) {
    // p = u_m + e_m; compress to (scale, signs); e_m ← p − decode.
    add(inputs[m], error_[m].span(), {p.data(), d});
    const float scale = scaled_sign_scale({p.data(), d});
    BitVector bits = pack_signs({p.data(), d});
    unpack_signs(bits, scale, {delta.data(), d});
    sub({p.data(), d}, {delta.data(), d}, error_[m].span());
    scale_sum += scale;
    signs.push_back(std::move(bits));
  }

  // One float scale rides along per message (the running scale sum).
  SignSumRound round_data = run_sign_sum_round(signs, config_, round_,
                                               cached_elias_bpe_, 1);
  round_data.sum.mean_into(out);
  scale(out, static_cast<float>(scale_sum / static_cast<double>(
                                                inputs.size())));

  SyncStepResult result;
  result.timing = mar_timing(d, round_data.wire);
  result.bits_per_element = round_data.bits_per_element;
  return result;
}

// --- SSDM under MAR -------------------------------------------------------------

SsdmMarSync::SsdmMarSync(SyncConfig config, float eta_s)
    : SyncStrategy(config), eta_s_(eta_s) {
  MARSIT_CHECK(eta_s_ > 0.0f) << "SSDM needs a positive global stepsize";
}

std::string SsdmMarSync::name() const {
  return std::string("SSDM-") + mar_paradigm_name(config_.paradigm);
}

SyncStepResult SsdmMarSync::do_synchronize(const WorkerSpans& inputs,
                                           std::span<float> out) {
  Rng rng = round_rng();
  std::vector<BitVector> signs;
  signs.reserve(inputs.size());
  for (const auto& in : inputs) {
    signs.push_back(ssdm_pack(in, rng, kSsdmBlock));
  }

  SignSumRound round_data = run_sign_sum_round(signs, config_, round_,
                                               cached_elias_bpe_, 0);
  unpack_signs(round_data.sum.majority(), eta_s_, out);

  SyncStepResult result;
  result.timing = mar_timing(out.size(), round_data.wire);
  result.bits_per_element = round_data.bits_per_element;
  return result;
}

// --- SSDM under PS ---------------------------------------------------------------

SsdmPsSync::SsdmPsSync(SyncConfig config, float eta_s)
    : SyncStrategy(config), eta_s_(eta_s) {
  MARSIT_CHECK(config_.paradigm == MarParadigm::kParameterServer)
      << "SsdmPsSync requires the parameter-server paradigm";
  MARSIT_CHECK(eta_s_ > 0.0f) << "SSDM needs a positive global stepsize";
}

std::string SsdmPsSync::name() const { return "SSDM-PS"; }

SyncStepResult SsdmPsSync::do_synchronize(const WorkerSpans& inputs,
                                          std::span<float> out) {
  Rng rng = round_rng();
  // Uplink: each worker's stochastic signs; server majority-votes them and
  // broadcasts the one-bit decision.
  std::vector<BitVector> signs;
  signs.reserve(inputs.size());
  for (const auto& in : inputs) {
    signs.push_back(ssdm_pack(in, rng, kSsdmBlock));
  }
  const SignSumAggregate aggregate = aggregate_sign_sum(signs);
  unpack_signs(aggregate.sum.majority(), eta_s_, out);

  WireFormat wire;
  wire.reduce_bits = [](std::size_t elements, std::size_t) {
    return static_cast<double>(elements) + 32.0;
  };
  wire.gather_bits = [](std::size_t elements) {
    return static_cast<double>(elements) + 32.0;
  };
  wire.initial_pack_seconds_per_element =
      1.0 / config_.cost_model.stochastic_sign_rate;
  wire.serial_seconds_per_element =
      1.0 / config_.cost_model.sign_unpack_rate;
  wire.final_unpack_seconds_per_element =
      1.0 / config_.cost_model.sign_unpack_rate;

  SyncStepResult result;
  result.timing = mar_timing(out.size(), wire);
  result.bits_per_element = 1.0;
  return result;
}

// --- cascading compression --------------------------------------------------------

CascadingSync::CascadingSync(SyncConfig config) : SyncStrategy(config) {
  MARSIT_CHECK(config_.paradigm == MarParadigm::kRing)
      << "cascading compression is defined on the ring paradigm";
}

std::string CascadingSync::name() const { return "Cascading-RAR"; }

SyncStepResult CascadingSync::do_synchronize(const WorkerSpans& inputs,
                                             std::span<float> out) {
  Rng rng = round_rng();
  cascading_aggregate(inputs, rng, out);

  SyncStepResult result;
  result.timing = mar_timing(out.size(), cascading_wire(config_.cost_model));
  result.bits_per_element = 1.0;
  return result;
}

// --- Marsit -------------------------------------------------------------------------

MarsitSync::MarsitSync(SyncConfig config, MarsitOptions options)
    : SyncStrategy(config), options_(options) {
  MARSIT_CHECK(config_.paradigm != MarParadigm::kParameterServer)
      << "Marsit is a multi-hop all-reduce framework; use ring or torus";
  MARSIT_CHECK(options_.eta_s > 0.0f) << "Marsit needs a positive eta_s";
}

std::string MarsitSync::name() const {
  std::string base = "Marsit";
  if (options_.full_precision_period > 0) {
    base += "-" + std::to_string(options_.full_precision_period);
  }
  return base + "-" + mar_paradigm_name(config_.paradigm);
}

double MarsitSync::mean_compensation_norm() const {
  if (compensation_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& c : compensation_) {
    total += l2_norm(c.span());
  }
  return total / static_cast<double>(compensation_.size());
}

void MarsitSync::mean_compensation_into(std::span<float> out) const {
  zero(out);
  if (compensation_.empty()) {
    return;
  }
  for (const auto& c : compensation_) {
    MARSIT_CHECK(c.size() == out.size())
        << "compensation extent " << c.size() << " vs out " << out.size();
    axpy(1.0f, c.span(), out);
  }
  scale(out, 1.0f / static_cast<float>(compensation_.size()));
}

BitVector MarsitSync::fold_signs(const std::vector<BitVector>& signs,
                                 Rng& rng) const {
  if (config_.paradigm == MarParadigm::kTree) {
    // Binomial-tree reduction: level-l merges combine aggregates of equal
    // weight 2^l (plus a possibly lighter tail aggregate).
    std::vector<BitVector> nodes = signs;
    std::vector<std::size_t> weights(nodes.size(), 1);
    for (std::size_t stride = 1; stride < nodes.size(); stride *= 2) {
      for (std::size_t i = 0; i + stride < nodes.size(); i += 2 * stride) {
        nodes[i] = one_bit_combine(nodes[i], weights[i], nodes[i + stride],
                                   weights[i + stride], rng);
        weights[i] += weights[i + stride];
      }
    }
    return nodes.front();
  }
  if (config_.paradigm == MarParadigm::kTorus2d) {
    // Row folds (weights 1..cols within each row), then weighted column
    // merges of whole-row aggregates — the torus reduction structure.
    const std::size_t rows = config_.torus_rows;
    const std::size_t cols = config_.torus_cols;
    BitVector aggregate;
    for (std::size_t r = 0; r < rows; ++r) {
      BitVector row_aggregate = signs[r * cols];
      for (std::size_t c = 1; c < cols; ++c) {
        row_aggregate =
            one_bit_combine(row_aggregate, c, signs[r * cols + c], 1, rng);
      }
      if (r == 0) {
        aggregate = std::move(row_aggregate);
      } else {
        aggregate =
            one_bit_combine(aggregate, r * cols, row_aggregate, cols, rng);
      }
    }
    return aggregate;
  }
  return one_bit_fold(signs, rng);
}

SyncStepResult MarsitSync::do_synchronize(const WorkerSpans& inputs,
                                          std::span<float> out) {
  const std::size_t d = out.size();
  const std::size_t m = config_.num_workers;
  if (compensation_.empty()) {
    compensation_.assign(m, Tensor(d));
  }
  MARSIT_CHECK(compensation_.front().size() == d)
      << "gradient dimension changed between rounds";

  // Line 1 of Algorithm 1: fold the compensation into the update.
  std::vector<Tensor> adjusted(m, Tensor(d));
  WorkerSpans adjusted_spans;
  adjusted_spans.reserve(m);
  for (std::size_t w = 0; w < m; ++w) {
    add(inputs[w], compensation_[w].span(), adjusted[w].span());
    adjusted_spans.push_back(adjusted[w].span());
  }

  SyncStepResult result;
  const bool full_precision =
      options_.full_precision_period > 0 &&
      round_ % options_.full_precision_period == 0;

  if (full_precision) {
    // Lines 12–13: exact mean, compensation reset.
    aggregate_mean(adjusted_spans, out);
    if (options_.full_precision_max_norm > 0.0f) {
      const float norm = l2_norm(out);
      if (norm > options_.full_precision_max_norm) {
        scale(out, options_.full_precision_max_norm / norm);
      }
    }
    for (auto& c : compensation_) {
      c.zero();
    }
    result.timing = mar_timing(d, full_precision_wire());
    result.full_precision = true;
    result.bits_per_element = 32.0;
    return result;
  }

  // Lines 4–8: one-bit synchronization with the ⊙ operator.
  Rng rng = round_rng();
  std::vector<BitVector> signs;
  signs.reserve(m);
  for (std::size_t w = 0; w < m; ++w) {
    signs.push_back(pack_signs(adjusted_spans[w]));
  }
  const BitVector aggregate = fold_signs(signs, rng);

  // Line 9: g_t = eta_s · sign-vector.
  unpack_signs(aggregate, options_.eta_s, out);

  // Line 10: c_{t+1}^{(m)} = g_t^{(m)} − g_t.
  if (options_.use_compensation) {
    for (std::size_t w = 0; w < m; ++w) {
      sub(adjusted_spans[w], out, compensation_[w].span());
    }
  }

  result.timing = mar_timing(d, marsit_wire(config_.cost_model));
  result.bits_per_element = 1.0;
  return result;
}

// --- factory ---------------------------------------------------------------------

const char* sync_method_name(SyncMethod method) {
  switch (method) {
    case SyncMethod::kPsgd:
      return "PSGD";
    case SyncMethod::kSignSgdMv:
      return "signSGD";
    case SyncMethod::kEfSignSgd:
      return "EF-signSGD";
    case SyncMethod::kSsdm:
      return "SSDM";
    case SyncMethod::kSsdmPs:
      return "SSDM-PS";
    case SyncMethod::kCascading:
      return "Cascading";
    case SyncMethod::kMarsit:
      return "Marsit";
  }
  return "?";
}

std::unique_ptr<SyncStrategy> make_sync_strategy(SyncMethod method,
                                                 SyncConfig config,
                                                 MethodOptions options) {
  switch (method) {
    case SyncMethod::kPsgd:
      return std::make_unique<PsgdSync>(config);
    case SyncMethod::kSignSgdMv:
      return std::make_unique<SignSgdMvSync>(config, options.eta_s);
    case SyncMethod::kEfSignSgd:
      return std::make_unique<EfSignSgdSync>(config);
    case SyncMethod::kSsdm:
      return std::make_unique<SsdmMarSync>(config, options.eta_s);
    case SyncMethod::kSsdmPs:
      return std::make_unique<SsdmPsSync>(config, options.eta_s);
    case SyncMethod::kCascading:
      return std::make_unique<CascadingSync>(config);
    case SyncMethod::kMarsit: {
      MarsitOptions marsit_options;
      marsit_options.eta_s = options.eta_s;
      marsit_options.full_precision_period = options.full_precision_period;
      marsit_options.full_precision_max_norm =
          options.full_precision_max_norm;
      return std::make_unique<MarsitSync>(config, marsit_options);
    }
  }
  MARSIT_CHECK(false) << "unknown sync method";
  return nullptr;
}

}  // namespace marsit
