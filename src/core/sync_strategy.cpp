#include "core/sync_strategy.hpp"

#include <algorithm>
#include <cmath>

#include "compress/kernels.hpp"
#include "compress/sign_codec.hpp"
#include "core/one_bit.hpp"
#include "core/segmented_fold.hpp"
#include "net/crc32.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/pipeline.hpp"
#include "parallel/shard.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/validate.hpp"

namespace marsit {

const char* mar_paradigm_name(MarParadigm paradigm) {
  switch (paradigm) {
    case MarParadigm::kRing:
      return "RAR";
    case MarParadigm::kTorus2d:
      return "TAR";
    case MarParadigm::kParameterServer:
      return "PS";
    case MarParadigm::kTree:
      return "TREE";
  }
  return "?";
}

const char* sync_mode_name(SyncMode mode) {
  switch (mode) {
    case SyncMode::kLegacyAllGather:
      return "all-gather";
    case SyncMode::kReduceScatter:
      return "reduce-scatter";
  }
  return "?";
}

namespace {

/// Block length for the SSDM strategies' stochastic-sign norms (see
/// ssdm_pack): per-block norms keep the sign probabilities informative at
/// training-scale dimensions, like the per-tensor norms of deployed
/// systems.
constexpr std::size_t kSsdmBlock = 64;

std::size_t network_nodes(const SyncConfig& config) {
  return config.paradigm == MarParadigm::kParameterServer
             ? config.num_workers + 1
             : config.num_workers;
}

ThreadPool& strategy_pool(const SyncConfig& config) {
  return config.pool != nullptr ? *config.pool : global_thread_pool();
}

/// Records an Elias refresh round: a counter tick and a trace instant
/// (refreshes are O(M·D) re-encodes, worth spotting on a timeline).
void note_elias_refresh(std::size_t round) {
  if (obs::metrics_enabled()) {
    static const obs::Counter refreshes("sync.elias_refreshes");
    refreshes.increment();
  }
  if (obs::TraceSession* trace = obs::TraceSession::current()) {
    trace->add_instant("elias-refresh round " + std::to_string(round),
                       "refresh", trace->time_offset(), /*track=*/0);
  }
}

/// Publishes the per-round synchronization metrics.  Pure observation of the
/// already-computed step result.
void publish_sync_metrics(const SyncStepResult& result, bool degraded) {
  // Self-contained guard (the caller also checks): keeps the helper safe to
  // call from anywhere without re-paying metric registration.
  if (!obs::metrics_enabled()) {
    return;
  }
  static const obs::Counter rounds("sync.rounds");
  static const obs::Counter degraded_rounds("sync.degraded_rounds");
  static const obs::Counter full_precision_rounds(
      "sync.full_precision_rounds");
  static const obs::Counter wire_bits("sync.wire_bits");
  static const obs::Counter retransmitted_wire_bits(
      "sync.retransmitted_wire_bits");
  static const obs::Counter retransmissions("sync.retransmissions");
  static const obs::Counter rejoins("sync.rejoins");
  static const obs::Counter flush_rejoins("sync.flush_rejoins");
  static const obs::Counter demotions("sync.corruption_demotions");
  static const obs::Gauge active_workers("sync.active_workers");
  static const obs::Gauge bits_per_element("sync.bits_per_element");
  static const obs::Histogram completion_seconds("sync.completion_seconds");
  rounds.increment();
  if (degraded) {
    degraded_rounds.increment();
  }
  rejoins.add(static_cast<double>(result.rejoined_workers));
  flush_rejoins.add(static_cast<double>(result.flush_rejoined_workers));
  demotions.add(static_cast<double>(result.demoted_workers));
  if (result.full_precision) {
    full_precision_rounds.increment();
  }
  wire_bits.add(result.timing.total_wire_bits);
  retransmitted_wire_bits.add(result.timing.retransmitted_wire_bits);
  retransmissions.add(static_cast<double>(result.timing.retransmissions));
  active_workers.set(static_cast<double>(result.active_workers));
  bits_per_element.set(result.bits_per_element);
  completion_seconds.observe(result.timing.completion_seconds);
}

}  // namespace

SyncStrategy::SyncStrategy(SyncConfig config)
    : config_(config), net_(network_nodes(config), config.cost_model) {
  MARSIT_CHECK(config_.num_workers >= 2)
      << "synchronization needs at least 2 workers";
  if (config_.paradigm == MarParadigm::kTorus2d) {
    MARSIT_CHECK(config_.torus_rows >= 2 && config_.torus_cols >= 2 &&
                 config_.torus_rows * config_.torus_cols ==
                     config_.num_workers)
        << "torus " << config_.torus_rows << "x" << config_.torus_cols
        << " does not tile " << config_.num_workers << " workers";
  }
  config_.fault_plan.validate();
  // The plan lives inside config_, which is pinned for the strategy's
  // lifetime (strategies are non-copyable).
  net_.set_fault_plan(&config_.fault_plan);
  active_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    active_.push_back(w);
  }
}

SyncStepResult SyncStrategy::synchronize(const WorkerSpans& inputs,
                                         std::span<float> out) {
  MARSIT_CHECK(inputs.size() == config_.num_workers)
      << "got " << inputs.size() << " worker inputs, expected "
      << config_.num_workers;
  MARSIT_CHECK(!out.empty()) << "empty output span";
  for (const auto& in : inputs) {
    MARSIT_CHECK(in.size() == out.size())
        << "worker input extent " << in.size() << " vs output " << out.size();
  }
  net_.begin_round(round_);  // rounds are timed independently
  const FaultPlan& plan = config_.fault_plan;
  const std::size_t k = flush_period();
  std::vector<std::size_t> demoted;       // corruption past the retry budget
  std::vector<std::size_t> flush_rejoins; // rejoins landing on a flush
  std::vector<std::size_t> carry_rejoins; // rejoins with carried-over state
  std::size_t corruption_victims = 0;     // demoted before quorum re-admission
  if (plan.affects_membership()) {
    active_.clear();
    for (std::size_t w = 0; w < config_.num_workers; ++w) {
      if (plan.worker_absent(w, round_, k)) {
        continue;
      }
      if (plan.sender_demoted(w, round_)) {
        // The payload stayed corrupted through every retry; the sender sits
        // this round out rather than folding garbage into the aggregate.
        demoted.push_back(w);
        continue;
      }
      active_.push_back(w);
    }
    corruption_victims = demoted.size();
    // Quorum: a reduction needs at least two members.  Re-admit the
    // lowest-indexed absent workers (deterministic) rather than letting the
    // fabric collapse; demoted senders are re-admitted only as a last
    // resort (modeling retransmit-until-clean — their burned attempts are
    // still charged below).
    for (std::size_t w = 0; active_.size() < 2 && w < config_.num_workers;
         ++w) {
      if (std::find(active_.begin(), active_.end(), w) == active_.end() &&
          std::find(demoted.begin(), demoted.end(), w) == demoted.end()) {
        active_.insert(std::lower_bound(active_.begin(), active_.end(), w),
                       w);
      }
    }
    while (active_.size() < 2 && !demoted.empty()) {
      const std::size_t w = demoted.front();
      demoted.erase(demoted.begin());
      active_.insert(std::lower_bound(active_.begin(), active_.end(), w), w);
    }
    // Contract: whatever degradation + quorum re-admission produced must be
    // a valid membership — sorted unique ids in range, at least 2 of them —
    // before any paradigm re-forms over it.
    MARSIT_VALIDATE_CALL(validate::membership(active_, config_.num_workers));
    // Rejoins: workers present now that sat out the previous round.  A
    // rejoin_at_flush window closing exactly here re-enters at the barrier —
    // the strategy discards the worker's stale per-worker state, which is
    // exact because the flush state is replicated on every worker.
    if (round_ > 0) {
      for (const std::size_t w : active_) {
        if (!plan.worker_absent(w, round_ - 1, k)) {
          continue;
        }
        if (plan.flush_rejoin_at(w, round_, k)) {
          flush_rejoins.push_back(w);
          on_flush_rejoin(w);
        } else {
          carry_rejoins.push_back(w);
        }
      }
    }
    MARSIT_VALIDATE_CALL(
        validate::rejoin_membership(flush_rejoins, config_.num_workers,
                                    round_, k));
    MARSIT_VALIDATE_CALL(
        validate::rejoin_membership(carry_rejoins, config_.num_workers,
                                    round_, 0));
  }
  SyncStepResult result = do_synchronize(inputs, out);
  result.active_workers = active_.size();
  result.rejoined_workers = flush_rejoins.size() + carry_rejoins.size();
  result.flush_rejoined_workers = flush_rejoins.size();
  result.demoted_workers = demoted.size();
  if (corruption_victims > 0) {
    // Every demoted sender burned its payload (plus the CRC footer) on the
    // initial attempt and all retries before giving up; those bits hit the
    // wire even though the round excluded the sender.
    const double attempts = static_cast<double>(plan.max_retries + 1);
    const double burned_bits =
        attempts * (result.bits_per_element * static_cast<double>(out.size()) +
                    kCrcFooterBits);
    result.timing.retransmitted_wire_bits +=
        burned_bits * static_cast<double>(corruption_victims);
    result.timing.total_wire_bits +=
        burned_bits * static_cast<double>(corruption_victims);
    result.timing.retransmissions +=
        (plan.max_retries + 1) * corruption_victims;
  }
  if (obs::TraceSession* trace = obs::TraceSession::current()) {
    for (const std::size_t w : flush_rejoins) {
      trace->add_instant("flush-rejoin worker " + std::to_string(w),
                         "rejoin", trace->time_offset(), /*track=*/0);
    }
    for (const std::size_t w : carry_rejoins) {
      trace->add_instant("rejoin worker " + std::to_string(w), "rejoin",
                         trace->time_offset(), /*track=*/0);
    }
    for (const std::size_t w : demoted) {
      trace->add_instant("corruption-demoted worker " + std::to_string(w),
                         "demote", trace->time_offset(), /*track=*/0);
    }
  }
  if (obs::metrics_enabled()) {
    publish_sync_metrics(result, degraded_round());
  }
  ++round_;
  return result;
}

void SyncStrategy::on_flush_rejoin(std::size_t /*worker*/) {}

void SyncStrategy::save_state(ckpt::SnapshotWriter& writer) const {
  writer.u64(static_cast<std::uint64_t>(round_));
}

void SyncStrategy::load_state(ckpt::SnapshotReader& reader) {
  round_ = static_cast<std::size_t>(reader.u64());
}

const WorkerSpans& SyncStrategy::active_inputs(const WorkerSpans& inputs) {
  if (!degraded_round()) {
    return inputs;
  }
  active_scratch_.clear();
  active_scratch_.reserve(active_.size());
  for (std::size_t w : active_) {
    active_scratch_.push_back(inputs[w]);
  }
  return active_scratch_;
}

CollectiveTiming SyncStrategy::base_collective_timing(std::size_t d,
                                                      const WireFormat& wire,
                                                      NetworkSim& net,
                                                      double start_time) {
  const std::size_t m = active_.size();
  switch (config_.paradigm) {
    case MarParadigm::kRing:
      return ring_allreduce_timing(m, d, wire, net, start_time);
    case MarParadigm::kTorus2d:
      // A degraded torus re-forms as a smaller torus while the survivors
      // still fill whole rows, else the round runs as a ring of survivors.
      if (m == config_.num_workers) {
        MARSIT_VALIDATE_CALL(validate::torus_shape(config_.torus_rows,
                                                   config_.torus_cols, m));
        return torus_allreduce_timing(config_.torus_rows, config_.torus_cols,
                                      d, wire, net, start_time);
      }
      if (m % config_.torus_cols == 0 && m / config_.torus_cols >= 2) {
        MARSIT_VALIDATE_CALL(
            validate::torus_shape(m / config_.torus_cols, config_.torus_cols,
                                  m));
        return torus_allreduce_timing(m / config_.torus_cols,
                                      config_.torus_cols, d, wire, net,
                                      start_time);
      }
      return ring_allreduce_timing(m, d, wire, net, start_time);
    case MarParadigm::kParameterServer:
      return ps_allreduce_timing(m, d, wire, net, start_time);
    case MarParadigm::kTree:
      return tree_allreduce_timing(m, d, wire, net, start_time);
  }
  MARSIT_CHECK(false) << "unreachable paradigm";
  return {};
}

CollectiveTiming SyncStrategy::mar_timing(
    std::size_t d, const WireFormat& wire,
    std::vector<ChunkStageTiming>* chunk_stages) {
  if (chunk_stages != nullptr) {
    chunk_stages->clear();
  }
  if (!config_.pipeline_overlap) {
    return base_collective_timing(d, wire, net_, 0.0);
  }
  return pipelined_collective_timing(
      d, config_.shard_chunk_elements, wire, net_,
      [this](std::size_t /*chunk_index*/, std::size_t elements,
             const WireFormat& chunk_wire, NetworkSim& net,
             double start_time) {
        return base_collective_timing(elements, chunk_wire, net, start_time);
      },
      /*chunk_ready=*/{}, chunk_stages);
}

Rng SyncStrategy::round_rng() const {
  return Rng(derive_seed(config_.seed, round_));
}

double elias_cache_bits_per_element(const std::vector<double>& cache,
                                    std::size_t contributions) {
  if (cache.empty()) {
    return 2.0;  // cold-start fallback, replaced on first refresh
  }
  // Clamp at both ends: contributions == 0 must not wrap to SIZE_MAX, and a
  // membership larger than the (degraded-round) measurement reads the last
  // entry.
  const std::size_t clamped =
      std::clamp<std::size_t>(contributions, 1, cache.size());
  return cache[clamped - 1];
}

// --- PSGD ----------------------------------------------------------------

PsgdSync::PsgdSync(SyncConfig config) : SyncStrategy(config) {}

std::string PsgdSync::name() const {
  return std::string("PSGD-") + mar_paradigm_name(config_.paradigm);
}

SyncStepResult PsgdSync::do_synchronize(const WorkerSpans& inputs,
                                        std::span<float> out) {
  // Mean over the survivors: dropping absent workers renormalizes the
  // denominator automatically.
  aggregate_mean(active_inputs(inputs), out);
  SyncStepResult result;
  result.timing =
      mar_timing(out.size(), full_precision_wire(), &result.chunk_stages);
  result.full_precision = true;
  result.bits_per_element = 32.0;
  return result;
}

// --- shared sign-sum plumbing ----------------------------------------------

Rng marsit_chunk_rng(std::uint64_t round_seed, std::size_t chunk_index) {
  return Rng(chunk_index == 0 ? round_seed
                              : derive_seed(round_seed, chunk_index));
}

namespace {

bool elias_refresh_due(const SyncConfig& config, std::size_t round,
                       const std::vector<double>& elias_cache) {
  return config.use_elias &&
         (elias_cache.empty() ||
          (config.elias_refresh_interval > 0 &&
           round % config.elias_refresh_interval == 0));
}

/// The wire format (and headline bits/element) of a sign-sum round, from the
/// configured encoding and the cached Elias measurements.
struct SignSumWireInfo {
  WireFormat wire;
  double bits_per_element = 0.0;
};

SignSumWireInfo sign_sum_wire_info(const SyncConfig& config,
                                   const std::vector<double>& elias_cache,
                                   std::size_t scalars_per_message,
                                   std::size_t contributing_workers) {
  SignSumWireInfo info;
  if (config.use_elias) {
    // Copy the cache into the closure: the wire format must stay valid and
    // self-contained for the duration of the timing pass.
    std::vector<double> cache = elias_cache;
    info.wire = sign_sum_elias_wire(
        config.cost_model, [cache](std::size_t contributions) {
          return elias_cache_bits_per_element(cache, contributions);
        });
    info.bits_per_element = elias_cache.empty() ? 2.0 : elias_cache.back();
  } else {
    info.wire = sign_sum_wire(config.cost_model, scalars_per_message);
    info.bits_per_element = static_cast<double>(
        sign_sum_bits_per_element(contributing_workers));
  }
  return info;
}

/// Geometry + knobs of one sharded majority round (signSGD-MV, SSDM-MAR,
/// SSDM-PS): every chunk packs all workers, accumulates the sign-sum,
/// majority-votes and unpacks — chunk-locally, with its own rng stream.
struct MajorityPipeline {
  float eta_s = 0.0f;
  /// false → deterministic signs (rng untouched); true → SSDM stochastic
  /// signs with block-local norms.
  bool stochastic = false;
  std::size_t ssdm_block = 0;
  std::uint64_t round_seed = 0;
  ThreadPool* pool = nullptr;
  std::size_t chunk_elements = 0;
};

/// out = eta_s · sign(Σ_m pack(u_m)), sharded over word-aligned chunks.
/// `sum` receives the full sign-sum (sized by the caller).  When `signs_out`
/// is non-null the per-worker packed vectors are also materialized there
/// (Elias refresh rounds measure their incremental wire sizes); packing
/// consumes rng identically either way, so the round's output does not
/// depend on whether a refresh happened.
void sharded_majority_sync(const WorkerSpans& inputs, SignSum& sum,
                           std::vector<BitVector>* signs_out,
                           std::span<float> out,
                           const MajorityPipeline& cfg) {
  const std::size_t d = out.size();
  const std::size_t m = inputs.size();
  const ShardPlan plan(d, cfg.chunk_elements);
  MARSIT_CHECK(!cfg.stochastic || cfg.ssdm_block > 0)
      << "sharded stochastic packing needs block-local norms";
  MARSIT_CHECK(!cfg.stochastic ||
               plan.chunk_elements() % cfg.ssdm_block == 0)
      << "shard chunk " << plan.chunk_elements()
      << " must be a multiple of the SSDM block " << cfg.ssdm_block;
  // Reallocate on *either* geometry change: the dimension, or the worker
  // count — degraded rounds shrink and re-grow M while d stays fixed, and a
  // stale vector count would index out of bounds when M grows back.
  if (signs_out != nullptr &&
      (signs_out->size() != m || signs_out->front().size() != d)) {
    signs_out->assign(m, BitVector(d));
  }
  MARSIT_VALIDATE_CALL(validate_shard_plan(plan));
  // Two-lane pipeline over the chunk grid: while chunk c's votes are being
  // tallied, chunk c+1 is already packing — the same wavefront the timing
  // model prices (DESIGN.md §12).  Stage scratch comes from the per-thread
  // arena, so the steady-state hot loop performs zero heap allocations
  // (ScratchArena::total_grows() is the counting hook the tests pin).
  const PipelineStage stages[] = {
      // pack: compress every worker's chunk and accumulate the sign-sum.
      // All rng consumption lives here, in worker order, exactly as the
      // serial loop consumed it.
      {[&](std::size_t c, ScratchArena& arena) {
        const Shard shard = plan.chunk(c);
        const std::size_t n = shard.size();
        const std::size_t w0 = shard.word_begin();
        const std::size_t nw = shard.num_words();
        auto values = sum.values_mut().subspan(shard.begin, n);
        std::fill(values.begin(), values.end(), 0);
        Rng rng = marsit_chunk_rng(cfg.round_seed, c);
        const std::span<std::uint64_t> scratch_span =
            signs_out == nullptr ? arena.words(nw)
                                 : std::span<std::uint64_t>{};
        for (std::size_t w = 0; w < m; ++w) {
          const std::span<std::uint64_t> words =
              signs_out != nullptr ? (*signs_out)[w].words().subspan(w0, nw)
                                   : scratch_span;
          if (cfg.stochastic) {
            ssdm_pack_words(inputs[w].subspan(shard.begin, n), rng,
                            cfg.ssdm_block, words);
          } else {
            kernels::pack_signs_words(inputs[w].subspan(shard.begin, n),
                                      words);
          }
          kernels::accumulate_counts_words(words, values);
        }
      }},
      // vote: majority over the tallied counts, decoded into the output.
      {[&](std::size_t c, ScratchArena& arena) {
        const Shard shard = plan.chunk(c);
        const std::size_t n = shard.size();
        const std::span<std::uint64_t> verdict =
            arena.words(shard.num_words());
        kernels::majority_words(sum.values_mut().subspan(shard.begin, n),
                                verdict);
        kernels::unpack_signs_words(verdict, cfg.eta_s,
                                    out.subspan(shard.begin, n));
      }},
  };
  run_chunk_pipeline(*cfg.pool, plan.num_chunks(), stages);
  sum.set_contributions(m);
}

}  // namespace

// --- signSGD with majority vote ---------------------------------------------

SignSgdMvSync::SignSgdMvSync(SyncConfig config, float eta_s)
    : SyncStrategy(config), eta_s_(eta_s) {
  MARSIT_CHECK(eta_s_ > 0.0f) << "signSGD-MV needs a positive global stepsize";
}

std::string SignSgdMvSync::name() const {
  return std::string("signSGD-") + mar_paradigm_name(config_.paradigm);
}

void SignSgdMvSync::save_state(ckpt::SnapshotWriter& writer) const {
  SyncStrategy::save_state(writer);
  writer.f64_vec(cached_elias_bpe_);
}

void SignSgdMvSync::load_state(ckpt::SnapshotReader& reader) {
  SyncStrategy::load_state(reader);
  cached_elias_bpe_ = reader.f64_vec();
}

SyncStepResult SignSgdMvSync::do_synchronize(const WorkerSpans& inputs,
                                             std::span<float> out) {
  const std::size_t d = out.size();
  if (sum_.size() != d) {
    sum_ = SignSum(d);
  }
  const bool refresh = elias_refresh_due(config_, round_, cached_elias_bpe_);
  MajorityPipeline pipeline;
  pipeline.eta_s = eta_s_;
  pipeline.pool = &strategy_pool(config_);
  pipeline.chunk_elements = config_.shard_chunk_elements;
  // Majority-vote over the survivors; absent workers simply cast no vote.
  sharded_majority_sync(active_inputs(inputs), sum_,
                        refresh ? &signs_ : nullptr, out, pipeline);
  if (refresh) {
    // Size measurement only — the sign-sum itself was already computed by
    // the sharded pipeline and is reused, not re-folded.
    cached_elias_bpe_ = measure_elias_bits_per_element(signs_, &sum_);
    note_elias_refresh(round_);
  }
  const SignSumWireInfo info =
      sign_sum_wire_info(config_, cached_elias_bpe_, 0, active_workers().size());

  SyncStepResult result;
  result.timing = mar_timing(d, info.wire, &result.chunk_stages);
  result.bits_per_element = info.bits_per_element;
  return result;
}

// --- EF-signSGD ---------------------------------------------------------------

EfSignSgdSync::EfSignSgdSync(SyncConfig config) : SyncStrategy(config) {}

std::string EfSignSgdSync::name() const {
  return std::string("EF-signSGD-") + mar_paradigm_name(config_.paradigm);
}

void EfSignSgdSync::save_state(ckpt::SnapshotWriter& writer) const {
  SyncStrategy::save_state(writer);
  writer.u64(static_cast<std::uint64_t>(error_.size()));
  for (const Tensor& e : error_) {
    writer.f32_span(e.span());
  }
  writer.f64_vec(cached_elias_bpe_);
}

void EfSignSgdSync::load_state(ckpt::SnapshotReader& reader) {
  SyncStrategy::load_state(reader);
  const std::uint64_t count = reader.u64();
  MARSIT_CHECK(count == 0 || count == config_.num_workers)
      << "EF state for " << count << " workers, expected "
      << config_.num_workers;
  error_.clear();
  error_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    error_.push_back(Tensor::from_vector(reader.f32_vec()));
  }
  cached_elias_bpe_ = reader.f64_vec();
}

SyncStepResult EfSignSgdSync::do_synchronize(const WorkerSpans& inputs,
                                             std::span<float> out) {
  const std::size_t d = out.size();
  if (error_.empty()) {
    error_.assign(config_.num_workers, Tensor(d));
  }
  // Only the survivors compress and contribute; an absent worker's EF
  // memory e_m is carried forward untouched and re-enters the feedback loop
  // when the worker returns.
  const std::vector<std::size_t>& active = active_workers();
  const std::size_t s = active.size();
  if (sum_.size() != d) {
    sum_ = SignSum(d);
  }
  if (adjusted_.empty() || adjusted_.front().size() != d) {
    adjusted_.assign(config_.num_workers, Tensor(d));
  }
  // Reallocate on either geometry change (see sharded_majority_sync).
  if (signs_.size() != s || signs_.front().size() != d) {
    signs_.assign(s, BitVector(d));
  }
  scales_.resize(s);

  // Whole-vector pre-pass: the compressor scale is the *global* ‖p‖₁/d, so
  // it cannot be computed chunk-locally.  Float order matches the previous
  // serial loop (add, then the scale reduction, per worker in turn).
  double scale_sum = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t w = active[i];
    add(inputs[w], error_[w].span(), adjusted_[w].span());
    scales_[i] = scaled_sign_scale(adjusted_[w].span());
    scale_sum += scales_[i];
  }
  const float mean_scale =
      static_cast<float>(scale_sum / static_cast<double>(s));

  // Sharded two-lane pipeline (same wavefront as sharded_majority_sync):
  // pack accumulates the sign-sum, finalize decodes the mean and runs the
  // per-worker error-feedback update — all chunk-local, no rng anywhere, so
  // the outputs are bit-identical to the old whole-vector loop.
  const ShardPlan plan(d, config_.shard_chunk_elements);
  MARSIT_VALIDATE_CALL(validate_shard_plan(plan));
  const float inv_s = 1.0f / static_cast<float>(s);
  ThreadPool& pool = strategy_pool(config_);
  const PipelineStage stages[] = {
      {[&](std::size_t c, ScratchArena& /*arena*/) {
        const Shard shard = plan.chunk(c);
        const std::size_t n = shard.size();
        const std::size_t w0 = shard.word_begin();
        const std::size_t nw = shard.num_words();
        auto values = sum_.values_mut().subspan(shard.begin, n);
        std::fill(values.begin(), values.end(), 0);
        for (std::size_t i = 0; i < s; ++i) {
          const std::size_t w = active[i];
          const std::span<std::uint64_t> words =
              signs_[i].words().subspan(w0, nw);
          kernels::pack_signs_words(
              adjusted_[w].span().subspan(shard.begin, n), words);
          kernels::accumulate_counts_words(words, values);
        }
      }},
      {[&](std::size_t c, ScratchArena& arena) {
        const Shard shard = plan.chunk(c);
        const std::size_t n = shard.size();
        const std::size_t w0 = shard.word_begin();
        const std::size_t nw = shard.num_words();
        // Decode the mean exactly as SignSum::mean_into + scale() did:
        // int sum → ·(1/s) first, the mean scale as a separate multiply.
        const auto values = sum_.values_mut().subspan(shard.begin, n);
        const auto out_chunk = out.subspan(shard.begin, n);
        for (std::size_t el = 0; el < n; ++el) {
          out_chunk[el] = static_cast<float>(values[el]) * inv_s;
        }
        scale(out_chunk, mean_scale);
        // e_m ← p − decode(scale_m, signs_m), chunk-locally per survivor.
        const std::span<float> delta = arena.floats(n);
        for (std::size_t i = 0; i < s; ++i) {
          const std::size_t w = active[i];
          kernels::unpack_signs_words(signs_[i].words().subspan(w0, nw),
                                      scales_[i], delta);
          sub(adjusted_[w].span().subspan(shard.begin, n), delta,
              error_[w].span().subspan(shard.begin, n));
        }
      }},
  };
  run_chunk_pipeline(pool, plan.num_chunks(), stages);
  sum_.set_contributions(s);

  if (elias_refresh_due(config_, round_, cached_elias_bpe_)) {
    // Size measurement only — bit-identical to the aggregate the pipeline
    // already produced, so the round's output does not depend on whether a
    // refresh happened.
    cached_elias_bpe_ = measure_elias_bits_per_element(signs_, &sum_);
    note_elias_refresh(round_);
  }
  // One float scale rides along per message (the running scale sum).  The
  // decoded mean renormalizes by the survivor count on degraded rounds.
  const SignSumWireInfo info =
      sign_sum_wire_info(config_, cached_elias_bpe_, 1, s);

  SyncStepResult result;
  result.timing = mar_timing(d, info.wire, &result.chunk_stages);
  result.bits_per_element = info.bits_per_element;
  return result;
}

// --- SSDM under MAR -------------------------------------------------------------

SsdmMarSync::SsdmMarSync(SyncConfig config, float eta_s)
    : SyncStrategy(config), eta_s_(eta_s) {
  MARSIT_CHECK(eta_s_ > 0.0f) << "SSDM needs a positive global stepsize";
}

std::string SsdmMarSync::name() const {
  return std::string("SSDM-") + mar_paradigm_name(config_.paradigm);
}

void SsdmMarSync::save_state(ckpt::SnapshotWriter& writer) const {
  SyncStrategy::save_state(writer);
  writer.f64_vec(cached_elias_bpe_);
}

void SsdmMarSync::load_state(ckpt::SnapshotReader& reader) {
  SyncStrategy::load_state(reader);
  cached_elias_bpe_ = reader.f64_vec();
}

SyncStepResult SsdmMarSync::do_synchronize(const WorkerSpans& inputs,
                                           std::span<float> out) {
  const std::size_t d = out.size();
  if (sum_.size() != d) {
    sum_ = SignSum(d);
  }
  const bool refresh = elias_refresh_due(config_, round_, cached_elias_bpe_);
  MajorityPipeline pipeline;
  pipeline.eta_s = eta_s_;
  pipeline.stochastic = true;
  pipeline.ssdm_block = kSsdmBlock;
  pipeline.round_seed = derive_seed(config_.seed, round_);
  pipeline.pool = &strategy_pool(config_);
  pipeline.chunk_elements = config_.shard_chunk_elements;
  sharded_majority_sync(active_inputs(inputs), sum_,
                        refresh ? &signs_ : nullptr, out, pipeline);
  if (refresh) {
    // Size measurement only — the sharded pipeline's sum is reused.
    cached_elias_bpe_ = measure_elias_bits_per_element(signs_, &sum_);
    note_elias_refresh(round_);
  }
  const SignSumWireInfo info =
      sign_sum_wire_info(config_, cached_elias_bpe_, 0, active_workers().size());

  SyncStepResult result;
  result.timing = mar_timing(d, info.wire, &result.chunk_stages);
  result.bits_per_element = info.bits_per_element;
  return result;
}

// --- SSDM under PS ---------------------------------------------------------------

SsdmPsSync::SsdmPsSync(SyncConfig config, float eta_s)
    : SyncStrategy(config), eta_s_(eta_s) {
  MARSIT_CHECK(config_.paradigm == MarParadigm::kParameterServer)
      << "SsdmPsSync requires the parameter-server paradigm";
  MARSIT_CHECK(eta_s_ > 0.0f) << "SSDM needs a positive global stepsize";
}

std::string SsdmPsSync::name() const { return "SSDM-PS"; }

SyncStepResult SsdmPsSync::do_synchronize(const WorkerSpans& inputs,
                                          std::span<float> out) {
  // Uplink: each worker's stochastic signs; server majority-votes them and
  // broadcasts the one-bit decision.
  const std::size_t d = out.size();
  if (sum_.size() != d) {
    sum_ = SignSum(d);
  }
  MajorityPipeline pipeline;
  pipeline.eta_s = eta_s_;
  pipeline.stochastic = true;
  pipeline.ssdm_block = kSsdmBlock;
  pipeline.round_seed = derive_seed(config_.seed, round_);
  pipeline.pool = &strategy_pool(config_);
  pipeline.chunk_elements = config_.shard_chunk_elements;
  sharded_majority_sync(active_inputs(inputs), sum_, nullptr, out, pipeline);

  WireFormat wire;
  wire.reduce_bits = [](std::size_t elements, std::size_t) {
    return static_cast<double>(elements) + 32.0;
  };
  wire.gather_bits = [](std::size_t elements) {
    return static_cast<double>(elements) + 32.0;
  };
  wire.initial_pack_seconds_per_element =
      1.0 / config_.cost_model.stochastic_sign_rate;
  wire.serial_seconds_per_element =
      1.0 / config_.cost_model.sign_unpack_rate;
  wire.final_unpack_seconds_per_element =
      1.0 / config_.cost_model.sign_unpack_rate;

  SyncStepResult result;
  result.timing = mar_timing(d, wire, &result.chunk_stages);
  result.bits_per_element = 1.0;
  return result;
}

// --- cascading compression --------------------------------------------------------

CascadingSync::CascadingSync(SyncConfig config) : SyncStrategy(config) {
  MARSIT_CHECK(config_.paradigm == MarParadigm::kRing)
      << "cascading compression is defined on the ring paradigm";
}

std::string CascadingSync::name() const { return "Cascading-RAR"; }

SyncStepResult CascadingSync::do_synchronize(const WorkerSpans& inputs,
                                             std::span<float> out) {
  Rng rng = round_rng();
  // The cascade chain re-forms over the survivors (its 1/M normalization
  // follows the chain length).
  cascading_aggregate(active_inputs(inputs), rng, out);

  SyncStepResult result;
  result.timing = mar_timing(out.size(), cascading_wire(config_.cost_model),
                             &result.chunk_stages);
  result.bits_per_element = 1.0;
  return result;
}

// --- Marsit -------------------------------------------------------------------------

MarsitSync::MarsitSync(SyncConfig config, MarsitOptions options)
    : SyncStrategy(config), options_(options) {
  // All four paradigms are supported: ring and torus are the paper's
  // multi-hop schedules; the parameter server (server colocated at rank 0)
  // and binomial tree exist as comparison baselines with the same ⊙ fold
  // semantics, so the cross-backend conformance matrix can cover them.
  MARSIT_CHECK(options_.eta_s > 0.0f) << "Marsit needs a positive eta_s";
}

std::string MarsitSync::name() const {
  // Appends (not operator+ chains): gcc 12's -Wrestrict misfires on
  // libstdc++'s operator+(const char*, string&&) when it inlines here.
  std::string base = "Marsit";
  if (options_.full_precision_period > 0) {
    base += '-';
    base += std::to_string(options_.full_precision_period);
  }
  base += '-';
  base += mar_paradigm_name(config_.paradigm);
  return base;
}

void MarsitSync::save_state(ckpt::SnapshotWriter& writer) const {
  SyncStrategy::save_state(writer);
  writer.u64(static_cast<std::uint64_t>(compensation_.size()));
  for (const Tensor& c : compensation_) {
    writer.f32_span(c.span());
  }
}

void MarsitSync::load_state(ckpt::SnapshotReader& reader) {
  SyncStrategy::load_state(reader);
  const std::uint64_t count = reader.u64();
  MARSIT_CHECK(count == 0 || count == config_.num_workers)
      << "compensation for " << count << " workers, expected "
      << config_.num_workers;
  compensation_.clear();
  compensation_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    compensation_.push_back(Tensor::from_vector(reader.f32_vec()));
  }
}

void MarsitSync::on_flush_rejoin(std::size_t worker) {
  // The worker re-enters at the flush barrier: its pre-drop residual is
  // stale history of a trajectory it did not follow — discard it before the
  // flush mean folds compensations in.  The global flush state is identical
  // on every worker, so the fresh start is exact.
  if (worker < compensation_.size()) {
    compensation_[worker].zero();
  }
}

double MarsitSync::mean_compensation_norm() const {
  if (compensation_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& c : compensation_) {
    total += l2_norm(c.span());
  }
  return total / static_cast<double>(compensation_.size());
}

void MarsitSync::mean_compensation_into(std::span<float> out) const {
  zero(out);
  if (compensation_.empty()) {
    return;
  }
  for (const auto& c : compensation_) {
    MARSIT_CHECK(c.size() == out.size())
        << "compensation extent " << c.size() << " vs out " << out.size();
    axpy(1.0f, c.span(), out);
  }
  scale(out, 1.0f / static_cast<float>(compensation_.size()));
}

void marsit_fold_signs_words(MarParadigm paradigm, std::size_t torus_cols,
                             std::vector<BitVector>& signs, std::size_t count,
                             std::size_t word_begin, std::size_t num_words,
                             Rng& rng) {
  const auto words_of = [&](std::size_t i) {
    return signs[i].words().subspan(word_begin, num_words);
  };
  if (paradigm == MarParadigm::kTree) {
    // Binomial-tree reduction: level-l merges combine aggregates of equal
    // weight 2^l (plus a possibly lighter tail aggregate).  The structure
    // is defined for any count, so a degraded tree just shrinks.
    std::vector<std::size_t> weights(count, 1);
    for (std::size_t stride = 1; stride < count; stride *= 2) {
      for (std::size_t i = 0; i + stride < count; i += 2 * stride) {
        one_bit_combine_words(words_of(i), weights[i], words_of(i + stride),
                              weights[i + stride], rng);
        weights[i] += weights[i + stride];
      }
    }
    return;
  }
  if (paradigm == MarParadigm::kTorus2d) {
    // Row folds (weights 1..len within each row), then weighted column
    // merges of whole-row aggregates — the torus reduction structure.  The
    // row aggregate accumulates in the row's first vector; rows merge into
    // signs[0] carrying their true accumulated weights, so a degraded round
    // (count < rows·cols) re-forms as ragged rows of torus_cols survivors
    // with the last row possibly short — the weighted ⊙ stays unbiased for
    // any merge shape.  With full membership this is exactly the original
    // rows×cols schedule.
    const std::size_t cols = torus_cols;
    std::size_t merged_weight = 0;
    for (std::size_t base = 0; base < count; base += cols) {
      const std::size_t len = std::min(cols, count - base);
      for (std::size_t c = 1; c < len; ++c) {
        one_bit_combine_words(words_of(base), c, words_of(base + c), 1, rng);
      }
      if (base == 0) {
        merged_weight = len;
      } else {
        one_bit_combine_words(words_of(0), merged_weight, words_of(base), len,
                              rng);
        merged_weight += len;
      }
    }
    return;
  }
  // Ring: sequential chain fold into signs[0].
  for (std::size_t m = 1; m < count; ++m) {
    one_bit_combine_words(words_of(0), m, words_of(m), 1, rng);
  }
}

void MarsitSync::fold_signs_words(std::vector<BitVector>& signs,
                                  std::size_t count, std::size_t word_begin,
                                  std::size_t num_words, Rng& rng) const {
  marsit_fold_signs_words(config_.paradigm, config_.torus_cols, signs, count,
                          word_begin, num_words, rng);
}

SyncStepResult MarsitSync::do_synchronize(const WorkerSpans& inputs,
                                          std::span<float> out) {
  const std::size_t d = out.size();
  const std::size_t m = config_.num_workers;
  if (compensation_.empty()) {
    compensation_.assign(m, Tensor(d));
  }
  MARSIT_CHECK(compensation_.front().size() == d)
      << "gradient dimension changed between rounds";
  if (adjusted_.empty() || adjusted_.front().size() != d) {
    adjusted_.assign(m, Tensor(d));
  }

  SyncStepResult result;
  const bool full_precision =
      options_.full_precision_period > 0 &&
      round_ % options_.full_precision_period == 0;

  // On a degraded round only the survivors contribute; absent workers keep
  // their compensation untouched, so their residual re-enters the aggregate
  // when they return (Algorithm 1's line 1 still folds it in).
  const auto& active = active_workers();
  const std::size_t s = active.size();

  if (full_precision) {
    // Lines 12–13: exact mean of u_m + c_m, compensation reset.
    WorkerSpans adjusted_spans;
    adjusted_spans.reserve(s);
    for (const std::size_t w : active) {
      add(inputs[w], compensation_[w].span(), adjusted_[w].span());
      adjusted_spans.push_back(adjusted_[w].span());
    }
    aggregate_mean(adjusted_spans, out);
    if (options_.full_precision_max_norm > 0.0f) {
      const float norm = l2_norm(out);
      if (norm > options_.full_precision_max_norm) {
        scale(out, options_.full_precision_max_norm / norm);
      }
    }
    for (const std::size_t w : active) {
      compensation_[w].zero();
    }
    result.timing =
        mar_timing(d, full_precision_wire(), &result.chunk_stages);
    result.full_precision = true;
    result.bits_per_element = 32.0;
    return result;
  }

  // One-bit round, sharded over word-aligned chunks: each chunk runs the
  // whole of Algorithm 1's lines 1 and 4–10 — compensation fold-in, sign
  // packing, the ⊙ reduction, unpacking, and the compensation update —
  // chunk-locally, with an rng stream derived from (seed, round, chunk) so
  // the result is bit-identical for any pool size.  Survivors pack into
  // signs_[0..s): the fold re-forms over them with the same rng stream a
  // native s-worker run would consume, so a degraded M-worker ring matches
  // an s-worker ring bit-for-bit.
  if (signs_.empty() || signs_.front().size() != d) {
    signs_.assign(m, BitVector(d));
  }
  const std::uint64_t round_seed = derive_seed(config_.seed, round_);
  const ShardPlan plan(d, config_.shard_chunk_elements);
  MARSIT_VALIDATE_CALL(validate_shard_plan(plan));
  // Three-lane pipeline mirroring the wire's pack → transfer → fold shape:
  // chunk c+1 packs while chunk c runs its ⊙ reduction and chunk c−1
  // unpacks/compensates.  Sign packing consumes no rng, so creating the
  // chunk's stream at the head of the fold stage draws exactly the values
  // the old single-loop body drew — outputs stay bit-identical.
  // Line 1 of Algorithm 1: fold the compensation into the update and
  // pack the signs, per survivor.
  const PipelineStage pack_stage{[&](std::size_t c, ScratchArena& /*arena*/) {
    const Shard shard = plan.chunk(c);
    const std::size_t n = shard.size();
    const std::size_t w0 = shard.word_begin();
    const std::size_t nw = shard.num_words();
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t w = active[i];
      const auto adjusted_chunk = adjusted_[w].span().subspan(shard.begin, n);
      add(inputs[w].subspan(shard.begin, n),
          compensation_[w].span().subspan(shard.begin, n), adjusted_chunk);
      kernels::pack_signs_words(adjusted_chunk,
                                signs_[i].words().subspan(w0, nw));
    }
  }};
  // Lines 4–8 (legacy mode): the ⊙ reduction, in place over this chunk's
  // words, with the chunk's own rng stream.
  const PipelineStage fold_stage{[&](std::size_t c, ScratchArena& /*arena*/) {
    const Shard shard = plan.chunk(c);
    Rng rng = marsit_chunk_rng(round_seed, c);
    fold_signs_words(signs_, s, shard.word_begin(), shard.num_words(), rng);
  }};
  // Lines 9–10: g_t = eta_s · sign-vector; c_{t+1}^{(m)} = g_t^{(m)} − g_t.
  const PipelineStage unpack_stage{[&](std::size_t c,
                                       ScratchArena& /*arena*/) {
    const Shard shard = plan.chunk(c);
    const std::size_t n = shard.size();
    const auto out_chunk = out.subspan(shard.begin, n);
    kernels::unpack_signs_words(
        signs_.front().words().subspan(shard.word_begin(),
                                       shard.num_words()),
        options_.eta_s, out_chunk);
    if (options_.use_compensation) {
      for (const std::size_t w : active) {
        sub(adjusted_[w].span().subspan(shard.begin, n), out_chunk,
            compensation_[w].span().subspan(shard.begin, n));
      }
    }
  }};
  if (config_.sync_mode == SyncMode::kReduceScatter) {
    // Reduce-scatter rounds keep the pack and unpack stages chunk-parallel
    // (they consume no rng), but fold once over the full word range: the
    // segment-seeded chains partition the words by fabric segment — the
    // reduce-scatter ownership grid — not by shard chunk.
    const PipelineStage pack_only[] = {pack_stage};
    run_chunk_pipeline(strategy_pool(config_), plan.num_chunks(), pack_only);
    marsit_fold_signs_segmented(config_.paradigm, config_.torus_rows,
                                config_.torus_cols, signs_, s,
                                signs_.front().words().size(), round_seed);
    const PipelineStage unpack_only[] = {unpack_stage};
    run_chunk_pipeline(strategy_pool(config_), plan.num_chunks(),
                       unpack_only);
  } else {
    const PipelineStage stages[] = {pack_stage, fold_stage, unpack_stage};
    run_chunk_pipeline(strategy_pool(config_), plan.num_chunks(), stages);
  }

  result.timing = mar_timing(d, marsit_wire(config_.cost_model),
                             &result.chunk_stages);
  result.bits_per_element = 1.0;
  // The residual-magnitude gauge costs an O(M·D) norm pass, so it is
  // computed only when someone is listening.
  if (obs::metrics_enabled()) {
    static const obs::Gauge compensation_norm("marsit.compensation_norm");
    compensation_norm.set(mean_compensation_norm());
  }
  return result;
}

// --- factory ---------------------------------------------------------------------

const char* sync_method_name(SyncMethod method) {
  switch (method) {
    case SyncMethod::kPsgd:
      return "PSGD";
    case SyncMethod::kSignSgdMv:
      return "signSGD";
    case SyncMethod::kEfSignSgd:
      return "EF-signSGD";
    case SyncMethod::kSsdm:
      return "SSDM";
    case SyncMethod::kSsdmPs:
      return "SSDM-PS";
    case SyncMethod::kCascading:
      return "Cascading";
    case SyncMethod::kMarsit:
      return "Marsit";
  }
  return "?";
}

std::unique_ptr<SyncStrategy> make_sync_strategy(SyncMethod method,
                                                 SyncConfig config,
                                                 MethodOptions options) {
  switch (method) {
    case SyncMethod::kPsgd:
      return std::make_unique<PsgdSync>(config);
    case SyncMethod::kSignSgdMv:
      return std::make_unique<SignSgdMvSync>(config, options.eta_s);
    case SyncMethod::kEfSignSgd:
      return std::make_unique<EfSignSgdSync>(config);
    case SyncMethod::kSsdm:
      return std::make_unique<SsdmMarSync>(config, options.eta_s);
    case SyncMethod::kSsdmPs:
      return std::make_unique<SsdmPsSync>(config, options.eta_s);
    case SyncMethod::kCascading:
      return std::make_unique<CascadingSync>(config);
    case SyncMethod::kMarsit: {
      MarsitOptions marsit_options;
      marsit_options.eta_s = options.eta_s;
      marsit_options.full_precision_period = options.full_precision_period;
      marsit_options.full_precision_max_norm =
          options.full_precision_max_norm;
      return std::make_unique<MarsitSync>(config, marsit_options);
    }
  }
  MARSIT_CHECK(false) << "unknown sync method";
  return nullptr;
}

}  // namespace marsit
