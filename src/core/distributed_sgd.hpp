// Algorithm 2 of the paper (Marsit-driven SGD) generalized over any
// SyncStrategy and any stochastic objective.
//
// Every round t, each worker m draws a stochastic gradient of F at the
// shared iterate x̃_t, scales it by the local stepsize η_l, the strategy
// aggregates (Algorithm 1 for Marsit; the baseline aggregations otherwise),
// and all workers apply the identical global update x̃_{t+1} = x̃_t − g_t.
//
// The neural-network training path lives in src/sim (it adds datasets,
// models, local optimizers and metrics); this driver is the minimal,
// mathematically transparent form used by the convergence/speedup tests and
// the theory-validation benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/sync_strategy.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

/// A distributed stochastic objective: worker-local gradient oracles plus a
/// deterministic full loss for evaluation.
struct StochasticObjective {
  std::size_t dimension = 0;
  /// Writes worker `m`'s stochastic gradient at x into grad (pre-sized to
  /// `dimension`).  `round` lets oracles vary their sample deterministically.
  std::function<void(std::size_t worker, std::size_t round,
                     std::span<const float> x, std::span<float> grad)>
      gradient;
  /// Exact objective value F(x) (for traces; never fed back into training).
  std::function<double(std::span<const float> x)> loss;
};

struct DistributedSgdOptions {
  /// Local stepsize η_l applied to each stochastic gradient before
  /// synchronization.
  float eta_l = 0.01f;
  std::size_t rounds = 100;
  /// Record F(x̃_t) every `eval_interval` rounds (and at the end).  0 = only
  /// at the end.
  std::size_t eval_interval = 1;
};

struct DistributedSgdTrace {
  /// (round, loss) evaluation points.
  std::vector<std::pair<std::size_t, double>> losses;
  /// Squared gradient-norm proxy ‖∇F(x̃_t)‖² at the eval points (from the
  /// mean of worker gradients).
  std::vector<double> grad_norms_sq;
  double simulated_seconds = 0.0;
  double total_wire_bits = 0.0;
  Tensor final_point;
  bool diverged = false;  // non-finite iterate encountered; run aborted
};

/// Runs T rounds of strategy-synchronized SGD from x0.
DistributedSgdTrace run_distributed_sgd(SyncStrategy& strategy,
                                        const StochasticObjective& objective,
                                        const Tensor& x0,
                                        const DistributedSgdOptions& options);

/// The paper's theory-friendly test problem: a sum of M worker-local
/// quadratics F_m(x) = ½‖x − b_m‖², with Gaussian gradient noise of stddev
/// `sigma`.  Global optimum at mean(b_m).  Used to validate the O(1/√(MT))
/// linear-speedup claim empirically.
StochasticObjective make_quadratic_objective(std::size_t dimension,
                                             std::size_t num_workers,
                                             double sigma,
                                             std::uint64_t seed);

}  // namespace marsit
