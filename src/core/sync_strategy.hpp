// Synchronization strategies: Marsit (paper Algorithm 1) and every baseline
// the evaluation compares against, behind one interface.
//
// Contract shared by all strategies: each round, every worker produces a
// local update vector u_m (its stochastic gradient with the local stepsize
// already applied, possibly transformed by a local optimizer).  The strategy
// aggregates them into one global update g_t that *every* worker applies as
// x ← x − g_t, so model replicas stay bit-identical — the invariant all MAR
// methods share and the reason the trainer can keep a single model copy.
//
// synchronize() also returns the round's simulated timing and wire-bit
// accounting, computed by the matching collective schedule on this
// strategy's topology (ring / 2-D torus / parameter server).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "collectives/aggregators.hpp"
#include "collectives/timing.hpp"
#include "net/cost_model.hpp"
#include "net/fault_plan.hpp"
#include "net/network_sim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace marsit {

class ThreadPool;

/// Which synchronization fabric carries the update.  kTree is the paper's
/// claimed extension target ("easily extended to ... tree all-reduce"): the
/// weighted ⊙ operator folds binomial-tree merges exactly like torus ones.
enum class MarParadigm { kRing, kTorus2d, kParameterServer, kTree };

const char* mar_paradigm_name(MarParadigm paradigm);

/// How a one-bit Marsit round traverses the fabric.
///
///   kLegacyAllGather  every rank gathers all M sign vectors and folds
///                     locally along ONE sequential rng stream
///                     (marsit_chunk_rng) — M(M−1)·D bits on a real wire.
///                     This is the historical mode and reproduces the
///                     committed goldens byte-for-byte.
///   kReduceScatter    the paper's schedule: per-segment independently
///                     seeded fold chains (core/segmented_fold.hpp) let each
///                     rank fold only the segments it owns, so the wire
///                     carries 2(M−1)·D bits.  Digests differ from legacy
///                     mode (different rng discipline) but are identical
///                     across trainer / simulator / socket backends.
///
/// Full-precision flush rounds use the all-gather data plane in BOTH modes:
/// float summation is order-sensitive, so the flush keeps the single
/// local-mean ordering everywhere.
enum class SyncMode { kLegacyAllGather, kReduceScatter };

const char* sync_mode_name(SyncMode mode);

struct SyncConfig {
  std::size_t num_workers = 0;
  MarParadigm paradigm = MarParadigm::kRing;
  /// Required when paradigm == kTorus2d; rows*cols must equal num_workers.
  std::size_t torus_rows = 0;
  std::size_t torus_cols = 0;
  /// One-bit round data plane + rng discipline (see SyncMode).  Part of the
  /// deterministic geometry: changing it changes the fold's rng streams, so
  /// digests are only comparable between runs with equal modes.
  SyncMode sync_mode = SyncMode::kLegacyAllGather;
  CostModel cost_model;
  std::uint64_t seed = 1;
  /// Sign-sum baselines: Elias-γ recode the growing messages (the paper
  /// compacts baseline transmissions with Elias coding).
  bool use_elias = false;
  /// How often (rounds) the Elias wire image is re-measured from real data;
  /// between refreshes the cached per-contribution sizes are reused.
  std::size_t elias_refresh_interval = 50;
  /// Pool carrying the sharded pack → ⊙/sign-sum → unpack pipeline;
  /// nullptr uses global_thread_pool().  Results are bit-identical for any
  /// pool size: the chunk grid and per-chunk RNG streams depend only on the
  /// payload size and shard_chunk_elements (see parallel/shard.hpp).
  ThreadPool* pool = nullptr;
  /// Elements per sharded chunk (rounded up to whole 64-bit sign words).
  /// Part of the deterministic geometry: changing it changes the per-chunk
  /// RNG streams, so treat it as a tuning constant, not a runtime knob.
  std::size_t shard_chunk_elements = std::size_t{1} << 16;
  /// Price each round as a chunked compute/comm overlap pipeline: chunk i+1
  /// packs while chunk i is in flight and chunk i−1 folds, composing as
  /// max-of-stages instead of sum-of-phases (DESIGN.md §12).  The timing
  /// chunk grid is the execution grid above (shard_chunk_elements), so the
  /// trace lanes line up with the sharded work.  Purely a timing/reporting
  /// switch: round *outputs* are bit-identical with it on or off — the
  /// serial phase decomposition is still reported, with the overlapped
  /// round time alongside (CollectiveTiming::serial_completion_seconds,
  /// PhaseTimes::overlapped).
  bool pipeline_overlap = false;
  /// Fault injection (see net/fault_plan.hpp).  Link-level faults flow into
  /// NetworkSim (retries, jitter, outages, stragglers inflate the timing);
  /// membership faults mark workers absent for whole rounds, and every
  /// strategy degrades gracefully: the reduction re-forms over the survivors
  /// with correct ⊙ weights / majority thresholds / mean normalization,
  /// while per-worker state (compensation, EF memory) of absent workers is
  /// carried forward untouched.  The default (empty) plan takes exactly the
  /// fault-free code paths: outputs and timings are bit-identical to a build
  /// without the fault layer.
  FaultPlan fault_plan;
};

struct SyncStepResult {
  CollectiveTiming timing;
  /// True when this round transmitted full-precision values (PSGD always;
  /// Marsit every K rounds).
  bool full_precision = false;
  /// Wire-format bits used to encode one element this round (the paper's
  /// Figure 3 "Bits" column): 32 for full precision, 1 for one-bit rounds,
  /// ⌈log2(M+1)⌉+1-ish for sign-sums.
  double bits_per_element = 0.0;
  /// Workers that contributed this round (== num_workers unless the fault
  /// plan dropped some).
  std::size_t active_workers = 0;
  /// Workers returning this round after sitting out the previous one
  /// (includes the flush-gated subset below).
  std::size_t rejoined_workers = 0;
  /// Rejoins that landed on a full-precision flush boundary (rejoin_at_flush
  /// windows): the worker's stale per-round state was discarded at the
  /// barrier (see SyncStrategy::on_flush_rejoin).
  std::size_t flush_rejoined_workers = 0;
  /// Senders whose payload stayed corrupted past the retry budget and were
  /// excluded from the round through the survivor path.
  std::size_t demoted_workers = 0;
  /// Per-chunk pack/transfer/fold lane times of a pipelined round (empty
  /// when SyncConfig::pipeline_overlap is off or the round priced a single
  /// chunk trivially).  One run yields both the serial bars and the
  /// overlapped bars of a Figure-5-style plot.
  std::vector<ChunkStageTiming> chunk_stages;
};

class SyncStrategy {
 public:
  explicit SyncStrategy(SyncConfig config);
  virtual ~SyncStrategy() = default;

  SyncStrategy(const SyncStrategy&) = delete;
  SyncStrategy& operator=(const SyncStrategy&) = delete;

  virtual std::string name() const = 0;

  const SyncConfig& config() const { return config_; }
  std::size_t round() const { return round_; }

  /// Aggregates the workers' update vectors into the global update.
  /// `inputs` holds num_workers spans of identical extent; `out` receives
  /// g_t.  Advances the round counter.
  SyncStepResult synchronize(const WorkerSpans& inputs, std::span<float> out);

  /// Full-precision flush period K of this strategy (0 = no flush rounds).
  /// Rejoin barriers and rejoin_at_flush drop-out windows key off this: at a
  /// multiple of K the global state is identical on every worker, so a
  /// returning worker needs no per-worker history.
  virtual std::size_t flush_period() const { return 0; }

  /// Checkpointing: serializes the strategy's cross-round state (round
  /// counter, Marsit compensation, EF residuals, Elias size caches) so a
  /// resumed run continues bit-identically.  Per-round scratch is excluded —
  /// it is lazily rebuilt.  load_state must be paired with the same strategy
  /// and configuration that produced the bytes (the trainer checks names and
  /// seeds).
  virtual void save_state(ckpt::SnapshotWriter& writer) const;
  virtual void load_state(ckpt::SnapshotReader& reader);

 protected:
  virtual SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                        std::span<float> out) = 0;

  /// Hook invoked when `worker` re-enters exactly at a flush boundary (a
  /// rejoin_at_flush window closed here).  Strategies with per-worker
  /// history discard the worker's stale state — at the barrier the global
  /// state is replicated everywhere, so the fresh-start is exact (Marsit
  /// zeros the worker's compensation).  Default: nothing to discard.
  virtual void on_flush_rejoin(std::size_t worker);

  /// Timing of one MAR collective for a d-element payload in the given wire
  /// format, over this round's *surviving* membership: on degraded rounds
  /// the schedule re-forms over active_workers().size() participants (a
  /// torus that no longer tiles re-forms as a smaller torus when the
  /// survivor count still fills whole rows, else as a ring).  Survivors are
  /// renumbered densely onto nodes 0..S−1, so per-node fault attributes
  /// follow re-formed fabric positions, not physical hosts.
  ///
  /// With SyncConfig::pipeline_overlap the round is priced through
  /// pipelined_collective_timing over the shard_chunk_elements grid; the
  /// per-chunk lane times land in `chunk_stages` when non-null (strategies
  /// pass &result.chunk_stages).  Without the flag the collective is priced
  /// in one piece, exactly as before.
  CollectiveTiming mar_timing(
      std::size_t d, const WireFormat& wire,
      std::vector<ChunkStageTiming>* chunk_stages = nullptr);

  /// One unpipelined collective of the configured paradigm (including the
  /// degraded-membership re-forms) for a d-element payload ready at
  /// `start_time`, priced on `net` — both mar_timing paths bottom out here,
  /// the pipelined one once per chunk.
  CollectiveTiming base_collective_timing(std::size_t d,
                                          const WireFormat& wire,
                                          NetworkSim& net, double start_time);

  /// Original indices of the workers present this round, ascending.  Always
  /// the full fleet when the fault plan has no membership faults; never
  /// fewer than two (quorum: the lowest-indexed absent workers are
  /// re-admitted rather than letting the fabric collapse).
  const std::vector<std::size_t>& active_workers() const { return active_; }
  bool degraded_round() const {
    return active_.size() != config_.num_workers;
  }

  /// `inputs` filtered to the active workers.  Returns `inputs` itself on
  /// full-membership rounds (zero-copy); on degraded rounds returns a
  /// member scratch valid until the next call.
  const WorkerSpans& active_inputs(const WorkerSpans& inputs);

  /// Fresh per-round RNG (derived from the config seed and round index) so
  /// strategies are reproducible independent of call interleaving.
  Rng round_rng() const;

  SyncConfig config_;
  NetworkSim net_;
  std::size_t round_ = 0;
  std::vector<std::size_t> active_;  // this round's surviving worker indices
  WorkerSpans active_scratch_;       // filtered-span scratch (degraded rounds)
};

/// Bits/element lookup into a measured per-contribution Elias size cache:
/// cache[c-1] is the measurement at c contributions, clamped at both ends —
/// c == 0 (an empty aggregate, possible when degraded schedules price a
/// not-yet-started segment) reads the 1-contribution entry instead of
/// underflowing, and c beyond the cache (membership grew after the cache
/// was measured on a degraded round) reads the last entry.  An empty cache
/// returns the 2.0 bits/element cold-start fallback.  Exposed for
/// regression tests; the Elias wire closures route through it.
double elias_cache_bits_per_element(const std::vector<double>& cache,
                                    std::size_t contributions);

// --- concrete strategies -----------------------------------------------------

/// PSGD: full-precision aggregation (the non-compression baseline).  Runs on
/// any paradigm, including the parameter server for Figure 1a.
class PsgdSync final : public SyncStrategy {
 public:
  explicit PsgdSync(SyncConfig config);
  std::string name() const override;

 private:
  SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                std::span<float> out) override;
};

/// signSGD with majority vote [21] extended to MAR with growing sign-sums.
/// g_t = eta_s · sign(Σ_m sign(u_m)).
class SignSgdMvSync final : public SyncStrategy {
 public:
  SignSgdMvSync(SyncConfig config, float eta_s);
  std::string name() const override;
  void save_state(ckpt::SnapshotWriter& writer) const override;
  void load_state(ckpt::SnapshotReader& reader) override;

 private:
  SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                std::span<float> out) override;

  float eta_s_;
  std::vector<double> cached_elias_bpe_;
  SignSum sum_;                    // round-to-round sign-sum scratch
  std::vector<BitVector> signs_;  // materialized only on Elias refresh rounds
};

/// EF-signSGD [30] extended to MAR: per-worker error feedback around the
/// scaled-sign compressor; the wire carries sign-sums plus the running scale
/// sum, decoded as (mean scale)·(mean sign).
class EfSignSgdSync final : public SyncStrategy {
 public:
  explicit EfSignSgdSync(SyncConfig config);
  std::string name() const override;
  void save_state(ckpt::SnapshotWriter& writer) const override;
  void load_state(ckpt::SnapshotReader& reader) override;

 private:
  SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                std::span<float> out) override;

  std::vector<Tensor> error_;  // per-worker EF memory, lazily sized
  std::vector<double> cached_elias_bpe_;
  // Round scratch (never serialized): the sharded pipeline materializes
  // every survivor's adjusted vector u_m + e_m and packed signs so the
  // per-chunk finalize stage can run the error-feedback update chunk-locally.
  std::vector<Tensor> adjusted_;   // u_m + e_m, indexed by worker id
  std::vector<float> scales_;      // per-survivor ‖p‖₁/d compressor scales
  SignSum sum_;                    // round-to-round sign-sum scratch
  std::vector<BitVector> signs_;   // per-survivor packed signs
};

/// SSDM [14] extended to MAR: stochastic signs (P(+1) = 1/2 + g_i/(2‖g‖))
/// aggregated in sign-sums; the update is the paper's sign-descent step
/// g_t = eta_s · sign(Σ_m s̃ign(u_m)) — SSDM descends on the sign, the norm
/// only shapes the per-element probability.
class SsdmMarSync final : public SyncStrategy {
 public:
  SsdmMarSync(SyncConfig config, float eta_s);
  std::string name() const override;
  void save_state(ckpt::SnapshotWriter& writer) const override;
  void load_state(ckpt::SnapshotReader& reader) override;

 private:
  SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                std::span<float> out) override;

  float eta_s_;
  std::vector<double> cached_elias_bpe_;
  SignSum sum_;                    // round-to-round sign-sum scratch
  std::vector<BitVector> signs_;  // materialized only on Elias refresh rounds
};

/// SSDM under a parameter server (the single-hop home turf of signSGD
/// methods; Figure 1's comparison point).  Uplink: per-worker stochastic
/// signs; downlink: the aggregated sign decision — one bit each way.
class SsdmPsSync final : public SyncStrategy {
 public:
  SsdmPsSync(SyncConfig config, float eta_s);
  std::string name() const override;

 private:
  SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                std::span<float> out) override;

  float eta_s_;
  SignSum sum_;  // round-to-round sign-sum scratch
};

/// Cascading compression (paper §3.2): decompress-add-recompress at every
/// ring hop.  The negative baseline of Table 1 / Figure 1.  Ring only.
class CascadingSync final : public SyncStrategy {
 public:
  explicit CascadingSync(SyncConfig config);
  std::string name() const override;

 private:
  SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                std::span<float> out) override;
};

/// Per-chunk rng stream of a sharded Marsit round.  Chunk 0 continues the
/// round stream itself — a payload that fits in one chunk therefore consumes
/// rng exactly like the original serial implementation (bit-identical
/// outputs) — and later chunks split off independent derived streams.
/// Shared by MarsitSync and the distributed worker (src/dist), which must
/// replay the identical stream to stay digest-equal with the simulator.
Rng marsit_chunk_rng(std::uint64_t round_seed, std::size_t chunk_index);

/// Folds the word range [word_begin, word_begin + num_words) of the first
/// `count` sign vectors with the weighted ⊙ operator, following `paradigm`'s
/// reduction structure (sequential chain on the ring; row folds then
/// weighted column merges on the torus, shaped by `torus_cols`; binomial
/// level merges on the tree).  Mutates `signs` in place — they are per-round
/// scratch — and leaves the aggregate in signs.front().  This is the exact
/// reduction MarsitSync runs; the distributed worker calls it with the same
/// rng stream so both backends produce bit-identical aggregates.
void marsit_fold_signs_words(MarParadigm paradigm, std::size_t torus_cols,
                             std::vector<BitVector>& signs, std::size_t count,
                             std::size_t word_begin, std::size_t num_words,
                             Rng& rng);

/// Marsit (paper Algorithm 1): one-bit ⊙ aggregation with global
/// compensation, full-precision synchronization every K rounds.
struct MarsitOptions {
  /// Global stepsize η_s multiplying the aggregated sign vector.
  float eta_s = 1e-3f;
  /// Full-precision synchronization period; 0 disables it (the paper's
  /// "Marsit" row; K=∞).  K=1 degenerates to PSGD.
  std::size_t full_precision_period = 0;
  /// Ablation switch: disable the global compensation mechanism (the c
  /// vectors stay zero).  Used by bench/ablation_compensation.
  bool use_compensation = true;
  /// Trust region on the periodic full-precision update: the flushed mean
  /// (which carries ~K rounds of compensation mass) is rescaled to this ℓ2
  /// norm when larger (0 disables).  The paper's protocol controls the same
  /// hazard by decaying the learning rate at every full-precision
  /// synchronization; at this reproduction's aggressive per-round stepsizes
  /// an explicit cap is the stabler equivalent (see EXPERIMENTS.md).
  float full_precision_max_norm = 0.0f;
};

class MarsitSync final : public SyncStrategy {
 public:
  MarsitSync(SyncConfig config, MarsitOptions options);
  std::string name() const override;

  const MarsitOptions& options() const { return options_; }

  std::size_t flush_period() const override {
    return options_.full_precision_period;
  }
  void save_state(ckpt::SnapshotWriter& writer) const override;
  void load_state(ckpt::SnapshotReader& reader) override;

  /// Mean compensation-vector ℓ2 norm across workers (0 before the first
  /// one-bit round) — the error-accumulation diagnostic Figure 3 discusses.
  double mean_compensation_norm() const;

  /// Writes c̄_t = (1/M)Σ_m c_t^{(m)} into `out` (zeros before the first
  /// round).  Diagnostic: the paper's proof tracks the auxiliary sequence
  /// ỹ_t = x̃_t − c̄_t, which must follow exact SGD —
  /// tests/core_marsit_dynamics_test.cpp checks that identity numerically.
  void mean_compensation_into(std::span<float> out) const;

 private:
  SyncStepResult do_synchronize(const WorkerSpans& inputs,
                                std::span<float> out) override;
  void on_flush_rejoin(std::size_t worker) override;

  /// Delegates to marsit_fold_signs_words with this strategy's configured
  /// paradigm and torus shape.  On degraded rounds `count` is the survivor
  /// count and the fold re-forms over them — the torus becomes ragged rows
  /// of torus_cols survivors whose row aggregates merge with their true
  /// accumulated weights, which the weighted ⊙ operator keeps unbiased for
  /// any shape.  The sharded pipeline calls this once per chunk with that
  /// chunk's own rng stream.
  void fold_signs_words(std::vector<BitVector>& signs, std::size_t count,
                        std::size_t word_begin, std::size_t num_words,
                        Rng& rng) const;

  MarsitOptions options_;
  std::vector<Tensor> compensation_;  // per-worker c_t, lazily sized
  std::vector<Tensor> adjusted_;      // u_m + c_m scratch, lazily sized
  std::vector<BitVector> signs_;      // per-worker packed signs scratch
};

// --- factory ------------------------------------------------------------------

enum class SyncMethod {
  kPsgd,
  kSignSgdMv,
  kEfSignSgd,
  kSsdm,
  kSsdmPs,
  kCascading,
  kMarsit,
};

const char* sync_method_name(SyncMethod method);

struct MethodOptions {
  /// Global stepsize for sign-valued updates (signSGD-MV, SSDM, Marsit).
  float eta_s = 1e-3f;
  /// Marsit's K; 0 = never full precision.
  std::size_t full_precision_period = 0;
  /// Marsit's flush trust region (see MarsitOptions).
  float full_precision_max_norm = 0.0f;
};

std::unique_ptr<SyncStrategy> make_sync_strategy(SyncMethod method,
                                                 SyncConfig config,
                                                 MethodOptions options = {});

}  // namespace marsit
