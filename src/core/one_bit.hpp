// The ⊙ operator — Marsit's unbiased one-bit sign aggregation (paper §4.1.1,
// Eq. 2).
//
// Combining rule between an incoming sign vector `a` (an aggregate standing
// for `weight_a` workers) and a vector `b` standing for `weight_b` workers:
//
//   * bits that agree are kept;
//   * bits that disagree take a's value with probability
//     weight_a / (weight_a + weight_b), drawn from a packed Bernoulli
//     transient vector v:
//
//       result = (a AND b) OR ((a XOR b) AND ((a AND v) OR (b AND NOT v)))
//
// With weight_b = 1 this is exactly the paper's Eq. 2 (their worker-position
// probabilities (m−1)/m and 1/m are weight_a/(weight_a+1) for the two
// disagreement cases).  The weighted generalization is what lets the same
// operator run the 2-D torus reduction, where the column phase merges two
// aggregates that each already stand for a whole row of workers.
//
// Invariant (proved by induction, tested in tests/core_one_bit_test.cpp):
// after folding all M workers the bit is 1 with probability exactly
// (#workers whose sign is +1)/M, so mapping bits to ±1 gives an unbiased
// one-bit estimate of the mean sign — with zero bit-width growth.
//
// The `*_words` / `*_into` variants combine **in place** (a ⊙= b): the
// RAR/TAR/tree reduction chains in core/sync_strategy.cpp fold M workers
// without allocating a fresh BitVector per hop, and the word-span form lets
// the sharded pipeline fold one word-aligned chunk at a time.  All variants
// consume rng identically (one exact Bernoulli word per 64 elements), so
// in-place and allocating folds are bit-identical at equal seeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/bit_vector.hpp"
#include "util/rng.hpp"

namespace marsit {

/// In-place word-span ⊙: a ⊙= b over matching word spans.  Tail bits stay
/// zero when both operands keep them zero ((0&0)|((0^0)&x) == 0).
void one_bit_combine_words(std::span<std::uint64_t> a, std::size_t weight_a,
                           std::span<const std::uint64_t> b,
                           std::size_t weight_b, Rng& rng);

/// In-place ⊙ on whole BitVectors: a becomes the combined aggregate (weight
/// weight_a + weight_b).  Extents must match; weights must be positive.
void one_bit_combine_into(BitVector& a, std::size_t weight_a,
                          const BitVector& b, std::size_t weight_b, Rng& rng);

/// Combines two weighted sign aggregates; returns the new aggregate (weight
/// weight_a + weight_b).  Extents must match; weights must be positive.
/// Consumes rng word-wise (one exact Bernoulli word per 64 elements).
BitVector one_bit_combine(const BitVector& a, std::size_t weight_a,
                          const BitVector& b, std::size_t weight_b, Rng& rng);

/// Folds M workers' sign vectors in chain order (the ring reduce order) and
/// returns the final one-bit aggregate.  Equivalent to repeated
/// one_bit_combine with weight_b = 1.
BitVector one_bit_fold(const std::vector<BitVector>& signs, Rng& rng);

/// In-place fold: accumulates signs[1..] into signs.front() in chain order
/// with zero per-hop allocations; the result lives in signs.front().
/// Bit-identical to one_bit_fold at equal seeds.
void one_bit_fold_into(std::vector<BitVector>& signs, Rng& rng);

// --- Segment seeding ---------------------------------------------------
//
// `bernoulli_word` consumes a *variable* number of raw generator words per
// call (bit-plane rejection, ~8 on average), so a single sequential stream
// cannot be fast-forwarded to "the rng state at segment s, hop k".  That is
// what forced PR 7's socket worker to all-gather and fold locally.  The
// segment-seeded discipline removes the sequential dependency: every
// (segment, fold-op) pair gets its own short-lived generator,
//
//   segment_seed = segment_fold_seed(round_seed, segment_index)
//   op rng       = segment_op_rng(segment_seed, op_index)
//
// so any rank can fold any segment's k-th ⊙ without replaying anyone
// else's draws.  All ranks that fold the same (segment, op) pair produce
// identical words — the property the reduce-scatter digests rely on.

/// Seed for one word-segment's fold chain within a round.
std::uint64_t segment_fold_seed(std::uint64_t round_seed,
                                std::uint64_t segment_index);

/// Fresh generator for the op_index-th ⊙ applied to a segment's chain.
/// One generator per op (not per segment) keeps the draw sequence
/// independent of how many words earlier ops consumed.
Rng segment_op_rng(std::uint64_t segment_seed, std::uint64_t op_index);

}  // namespace marsit
