// The ⊙ operator — Marsit's unbiased one-bit sign aggregation (paper §4.1.1,
// Eq. 2).
//
// Combining rule between an incoming sign vector `a` (an aggregate standing
// for `weight_a` workers) and a vector `b` standing for `weight_b` workers:
//
//   * bits that agree are kept;
//   * bits that disagree take a's value with probability
//     weight_a / (weight_a + weight_b), drawn from a packed Bernoulli
//     transient vector v:
//
//       result = (a AND b) OR ((a XOR b) AND ((a AND v) OR (b AND NOT v)))
//
// With weight_b = 1 this is exactly the paper's Eq. 2 (their worker-position
// probabilities (m−1)/m and 1/m are weight_a/(weight_a+1) for the two
// disagreement cases).  The weighted generalization is what lets the same
// operator run the 2-D torus reduction, where the column phase merges two
// aggregates that each already stand for a whole row of workers.
//
// Invariant (proved by induction, tested in tests/core_one_bit_test.cpp):
// after folding all M workers the bit is 1 with probability exactly
// (#workers whose sign is +1)/M, so mapping bits to ±1 gives an unbiased
// one-bit estimate of the mean sign — with zero bit-width growth.
#pragma once

#include <cstddef>

#include "compress/bit_vector.hpp"
#include "util/rng.hpp"

namespace marsit {

/// Combines two weighted sign aggregates; returns the new aggregate (weight
/// weight_a + weight_b).  Extents must match; weights must be positive.
/// Consumes rng word-wise (one exact Bernoulli word per 64 elements).
BitVector one_bit_combine(const BitVector& a, std::size_t weight_a,
                          const BitVector& b, std::size_t weight_b, Rng& rng);

/// Folds M workers' sign vectors in chain order (the ring reduce order) and
/// returns the final one-bit aggregate.  Equivalent to repeated
/// one_bit_combine with weight_b = 1.
BitVector one_bit_fold(const std::vector<BitVector>& signs, Rng& rng);

}  // namespace marsit
