// Distributed Marsit worker — one rank of a real multi-process (or
// multi-thread) training run over a Transport (DESIGN.md §14).
//
// Each rank owns a full model replica and runs the exact per-round math of
// DistributedTrainer + MarsitSync: same sampler streams (sim/trainer.hpp's
// public seed salts), same local-optimizer transform, same ⊙ reduction
// (core/sync_strategy.hpp's marsit_fold_signs_words with
// marsit_chunk_rng's streams).  A run over SimTransport or SocketTransport
// therefore finishes with parameters bit-identical to the simulator's —
// the cross-backend determinism contract tests/dist_cross_backend_test
// pins via FNV-1a param digests.
//
// Data plane vs the simulator's wire accounting: the weighted ⊙ fold
// consumes one rng stream sequentially, so it cannot be distributed
// across hops without replaying that stream everywhere anyway.  The
// worker therefore all-gathers the packed sign words along the
// paradigm's topology (ring; or rows-then-columns on the torus) and every
// rank runs the identical fold locally — M(M−1)·D sign bits on the wire
// where the simulator prices the paper's 2(M−1)·D all-reduce.  Same
// schedule shape, same aggregate, more bytes; the α–β prediction reported
// per round prices what this backend actually sends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/sync_strategy.hpp"
#include "data/dataset.hpp"
#include "net/cost_model.hpp"
#include "net/transport.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace marsit::dist {

struct WorkerConfig {
  std::size_t batch_size_per_worker = 32;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  float eta_l = 0.05f;
  /// Per-worker gradient clipping before the local optimizer (0 disables);
  /// same semantics as TrainerConfig::clip_grad_norm.
  float clip_grad_norm = 0.0f;
  std::size_t rounds = 10;
  /// Seeds TrainerConfig::seed / SyncConfig::seed would carry in the
  /// simulator run this worker must match.
  std::uint64_t trainer_seed = 7;
  std::uint64_t sync_seed = 7;
  /// kRing or kTorus2d (the transports are peer meshes; the parameter
  /// server and tree schedules are simulator-only for now).
  MarParadigm paradigm = MarParadigm::kRing;
  std::size_t torus_rows = 0;
  std::size_t torus_cols = 0;
  MarsitOptions options;
  /// SyncConfig::shard_chunk_elements — the fold's chunk grid.  Must match
  /// the simulator run being compared against (the per-chunk rng streams
  /// depend on it); the default is SyncConfig's default.
  std::size_t shard_chunk_elements = std::size_t{1} << 16;
  /// Prices the per-round α–β prediction reported next to measured
  /// wall-clock.
  CostModel cost_model;
};

struct RoundReport {
  std::size_t round = 0;
  bool full_precision = false;
  /// Host wall-clock spent in this rank's communication phase.
  double measured_comm_seconds = 0.0;
  /// α–β prediction for the whole round's collective (all ranks), from a
  /// NetworkSim replay of the hop schedule this backend ran.
  double predicted_comm_seconds = 0.0;
  /// Payload bits this rank put on the wire this round.
  double wire_bits = 0.0;
};

struct WorkerResult {
  /// FNV-1a digest over the final parameter bytes — the cross-backend
  /// equality witness.
  std::uint64_t param_digest = 0;
  std::vector<RoundReport> rounds;
};

/// Runs `config.rounds` rounds of Marsit training as rank
/// `transport.rank()` of `transport.world_size()` workers.  Blocking; every
/// rank of the job must call this with identical config, dataset and model
/// factory.
WorkerResult run_marsit_worker(Transport& transport, const Dataset& dataset,
                               const std::function<Sequential()>& model_factory,
                               const WorkerConfig& config);

}  // namespace marsit::dist
