// Distributed Marsit worker — one rank of a real multi-process (or
// multi-thread) training run over a Transport (DESIGN.md §14).
//
// Each rank owns a full model replica and runs the exact per-round math of
// DistributedTrainer + MarsitSync: same sampler streams (sim/trainer.hpp's
// public seed salts), same local-optimizer transform, same ⊙ reduction.  A
// run over SimTransport or SocketTransport therefore finishes with
// parameters bit-identical to the simulator's — the cross-backend
// determinism contract tests/dist_cross_backend_test pins via FNV-1a param
// digests.
//
// Two data planes carry one-bit rounds (WorkerConfig::sync_mode):
//
//   SyncMode::kLegacyAllGather  all ranks gather every sign vector along the
//     topology and run the identical sequential-stream fold locally
//     (marsit_fold_signs_words with marsit_chunk_rng) — M(M−1)·D sign bits
//     on the wire.  Kept for golden compatibility.
//
//   SyncMode::kReduceScatter  the paper's schedule at the paper's wire
//     volume: per-segment independently seeded fold chains
//     (core/segmented_fold.hpp) let each rank fold only the segments it
//     owns, so a ring round moves exactly 2(M−1)·D sign bits — reduce-
//     scatter then all-gather.  The torus runs the same two phases per
//     dimension (row RS, column RS, column AG, row AG); the parameter
//     server folds at a colocated rank-0 server and broadcasts; the
//     binomial tree reduces up and broadcasts down.  All four total
//     2(M−1)·D payload bits per one-bit round.
//
// Full-precision flush rounds use the all-gather plane in both modes (float
// summation is order-sensitive, so the flush keeps the single local-mean
// ordering everywhere); for the PS and tree paradigms the all-gather plane
// routes over the ring — the fold structure, not the gather route, is what
// distinguishes those paradigms' aggregates.
//
// The α–β prediction reported per round replays the exact hop schedule this
// backend ran on a fresh NetworkSim, so RoundReport::total_wire_bits equals
// the sum of every rank's measured payload bits bit-for-bit — the invariant
// tests/dist_wire_volume_test pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/sync_strategy.hpp"
#include "data/dataset.hpp"
#include "net/cost_model.hpp"
#include "net/transport.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace marsit::dist {

struct WorkerConfig {
  std::size_t batch_size_per_worker = 32;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  float eta_l = 0.05f;
  /// Per-worker gradient clipping before the local optimizer (0 disables);
  /// same semantics as TrainerConfig::clip_grad_norm.
  float clip_grad_norm = 0.0f;
  std::size_t rounds = 10;
  /// Seeds TrainerConfig::seed / SyncConfig::seed would carry in the
  /// simulator run this worker must match.
  std::uint64_t trainer_seed = 7;
  std::uint64_t sync_seed = 7;
  /// Any of kRing / kTorus2d / kParameterServer / kTree.
  MarParadigm paradigm = MarParadigm::kRing;
  std::size_t torus_rows = 0;
  std::size_t torus_cols = 0;
  /// One-bit data plane + rng discipline; must match the simulator run being
  /// compared against (SyncConfig::sync_mode — the fold's rng streams differ
  /// between modes).
  SyncMode sync_mode = SyncMode::kLegacyAllGather;
  MarsitOptions options;
  /// SyncConfig::shard_chunk_elements — the legacy fold's chunk grid.  Must
  /// match the simulator run being compared against (the per-chunk rng
  /// streams depend on it); the default is SyncConfig's default.  Unused by
  /// reduce-scatter rounds, whose rng grid is the fabric segment partition.
  std::size_t shard_chunk_elements = std::size_t{1} << 16;
  /// Prices the per-round α–β prediction reported next to measured
  /// wall-clock.
  CostModel cost_model;
};

struct RoundReport {
  std::size_t round = 0;
  bool full_precision = false;
  /// Host wall-clock spent in this rank's communication phase.
  double measured_comm_seconds = 0.0;
  /// α–β prediction for the whole round's collective (all ranks), from a
  /// NetworkSim replay of the hop schedule this backend ran.
  double predicted_comm_seconds = 0.0;
  /// Payload bits this rank put on the wire this round.
  double wire_bits = 0.0;
  /// Payload bits ALL ranks put on the wire this round, from the same
  /// NetworkSim replay as predicted_comm_seconds.  Identical on every rank
  /// and bit-for-bit equal to the sum of per-rank wire_bits: 2(M−1)·D sign
  /// bits on reduce-scatter one-bit rounds, M(M−1)·D on legacy ones.
  double total_wire_bits = 0.0;
};

struct WorkerResult {
  /// FNV-1a digest over the final parameter bytes — the cross-backend
  /// equality witness.
  std::uint64_t param_digest = 0;
  std::vector<RoundReport> rounds;
};

/// Runs `config.rounds` rounds of Marsit training as rank
/// `transport.rank()` of `transport.world_size()` workers.  Blocking; every
/// rank of the job must call this with identical config, dataset and model
/// factory.
WorkerResult run_marsit_worker(Transport& transport, const Dataset& dataset,
                               const std::function<Sequential()>& model_factory,
                               const WorkerConfig& config);

}  // namespace marsit::dist
