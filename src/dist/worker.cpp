#include "dist/worker.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <numeric>

#include "ckpt/snapshot.hpp"
#include "compress/bit_vector.hpp"
#include "compress/kernels.hpp"
#include "core/one_bit.hpp"
#include "core/segmented_fold.hpp"
#include "net/network_sim.hpp"
#include "nn/loss.hpp"
#include "parallel/shard.hpp"
#include "sim/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit::dist {

namespace {

// marsit-lint: allow(determinism): measured wall-clock next to the α–β
// prediction is this backend's deliverable (ISSUE: real-socket timing)
using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

std::vector<std::uint8_t> bytes_of(const void* data, std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  std::memcpy(bytes.data(), data, size);
  return bytes;
}

void send_words(Transport& transport, std::size_t peer, std::uint32_t tag,
                std::span<const std::uint64_t> words, double& sent_bytes) {
  const std::size_t bytes = words.size() * sizeof(std::uint64_t);
  sent_bytes += static_cast<double>(bytes);
  transport.send(peer, tag,
                 {reinterpret_cast<const std::uint8_t*>(words.data()), bytes});
}

void recv_words(Transport& transport, std::size_t peer, std::uint32_t tag,
                std::span<std::uint64_t> into) {
  const std::vector<std::uint8_t> blob = transport.recv(peer, tag);
  MARSIT_CHECK(blob.size() == into.size() * sizeof(std::uint64_t))
      << "word payload " << blob.size() << " bytes, expected "
      << into.size() * sizeof(std::uint64_t);
  std::memcpy(into.data(), blob.data(), blob.size());
}

/// Ring all-gather over `members` (global ranks in ring order): on entry
/// only blobs[my_pos] is filled; on exit every position holds that member's
/// payload.  L−1 steps, each rotating the newest blob one hop rightward.
void ring_all_gather(Transport& transport,
                     const std::vector<std::size_t>& members,
                     std::uint32_t tag,
                     std::vector<std::vector<std::uint8_t>>& blobs,
                     double& sent_bytes) {
  const std::size_t L = members.size();
  const auto self = std::find(members.begin(), members.end(),
                              transport.rank());
  MARSIT_CHECK(self != members.end())
      << "rank " << transport.rank() << " is not a member of this ring";
  const std::size_t my_pos =
      static_cast<std::size_t>(self - members.begin());
  const std::size_t right = members[(my_pos + 1) % L];
  const std::size_t left = members[(my_pos + L - 1) % L];
  for (std::size_t s = 0; s + 1 < L; ++s) {
    const std::size_t send_pos = (my_pos + L - s) % L;
    const std::size_t recv_pos = (my_pos + L - 1 - s) % L;
    const std::vector<std::uint8_t>& outgoing = blobs[send_pos];
    sent_bytes += static_cast<double>(outgoing.size());
    transport.send(right, tag, {outgoing.data(), outgoing.size()});
    blobs[recv_pos] = transport.recv(left, tag);
  }
}

std::vector<std::size_t> ring_members(std::size_t m) {
  std::vector<std::size_t> members(m);
  std::iota(members.begin(), members.end(), std::size_t{0});
  return members;
}

std::vector<std::size_t> row_members(std::size_t row, std::size_t cols) {
  std::vector<std::size_t> members(cols);
  std::iota(members.begin(), members.end(), row * cols);
  return members;
}

std::vector<std::size_t> col_members(std::size_t col, std::size_t rows,
                                     std::size_t cols) {
  std::vector<std::size_t> members(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    members[r] = r * cols + col;
  }
  return members;
}

/// All-gathers this rank's `own` blob so `out[g]` holds rank g's blob for
/// every g.  The torus gathers within the row then bundles along the
/// column; every other paradigm routes over the full ring — the gather
/// route does not affect what each rank ends up holding, and the PS/tree
/// distinction lives entirely in the fold structure.
void all_gather_blobs(Transport& transport, const WorkerConfig& config,
                      std::uint32_t tag, std::vector<std::uint8_t> own,
                      std::size_t blob_bytes,
                      std::vector<std::vector<std::uint8_t>>& out,
                      double& sent_bytes) {
  const std::size_t m = transport.world_size();
  const std::size_t rank = transport.rank();
  MARSIT_CHECK(own.size() == blob_bytes) << "blob extent mismatch";
  if (config.paradigm != MarParadigm::kTorus2d) {
    out.assign(m, {});
    out[rank] = std::move(own);
    ring_all_gather(transport, ring_members(m), tag, out, sent_bytes);
    return;
  }
  // Torus: all-gather within the row, then all-gather the whole-row
  // bundles along the column — the rows-then-columns structure of the
  // torus collective, with phase B moving cols-times larger payloads.
  const std::size_t rows = config.torus_rows;
  const std::size_t cols = config.torus_cols;
  const std::size_t row = rank / cols;
  const std::size_t col = rank % cols;
  std::vector<std::vector<std::uint8_t>> row_blobs(cols);
  row_blobs[col] = std::move(own);
  ring_all_gather(transport, row_members(row, cols), tag, row_blobs,
                  sent_bytes);
  std::vector<std::uint8_t> bundle;
  bundle.reserve(cols * blob_bytes);
  for (const auto& blob : row_blobs) {
    bundle.insert(bundle.end(), blob.begin(), blob.end());
  }
  std::vector<std::vector<std::uint8_t>> bundles(rows);
  bundles[row] = std::move(bundle);
  ring_all_gather(transport, col_members(col, rows, cols), tag | 1u, bundles,
                  sent_bytes);
  out.assign(m, {});
  for (std::size_t g = 0; g < m; ++g) {
    const std::size_t src_row = g / cols;
    const std::size_t src_col = g % cols;
    const auto begin =
        bundles[src_row].begin() +
        static_cast<std::ptrdiff_t>(src_col * blob_bytes);
    out[g].assign(begin, begin + static_cast<std::ptrdiff_t>(blob_bytes));
  }
}

// --- reduce-scatter data planes (SyncMode::kReduceScatter, one-bit rounds) --
//
// Every schedule below carries exactly 2(M−1)·W words of payload per round
// (W = sign words) and folds with the segment-seeded rng discipline of
// core/segmented_fold.hpp, so the aggregate is bit-identical to the
// trainer's marsit_fold_signs_segmented.  Zero-length segments (W < M) are
// skipped on both ends — no frame, no rng.

/// Ring: reduce-scatter over the word_segment(W, M, ·) partition, then
/// all-gather of the finalized segments.  At RS step t this rank sends its
/// partial of segment (r−t) mod M rightward and folds the arriving partial
/// of segment (r−t−1) mod M — op t of that segment's chain — into its own
/// words; after M−1 steps it owns segment (r+1) mod M at weight M.
void ring_rs_ag(Transport& transport, std::uint32_t tag,
                std::span<const std::uint64_t> own,
                std::span<std::uint64_t> result, std::uint64_t round_seed,
                double& sent_bytes) {
  const std::size_t m = transport.world_size();
  const std::size_t r = transport.rank();
  const std::size_t num_words = own.size();
  const std::size_t right = (r + 1) % m;
  const std::size_t left = (r + m - 1) % m;
  std::vector<std::uint64_t> partial;
  std::vector<std::uint64_t> incoming;
  for (std::size_t t = 0; t + 1 < m; ++t) {
    const std::size_t send_seg = (r + m - t) % m;
    const WordSegment ss = word_segment(num_words, m, send_seg);
    if (t == 0) {
      partial.assign(own.begin() + static_cast<std::ptrdiff_t>(ss.begin),
                     own.begin() +
                         static_cast<std::ptrdiff_t>(ss.begin + ss.count));
    }
    if (ss.count > 0) {
      send_words(transport, right, tag, partial, sent_bytes);
    }
    const std::size_t recv_seg = (r + 2 * m - t - 1) % m;
    const WordSegment rs = word_segment(num_words, m, recv_seg);
    incoming.resize(rs.count);
    if (rs.count > 0) {
      recv_words(transport, left, tag, incoming);
      Rng rng = segment_op_rng(segment_fold_seed(round_seed, recv_seg), t);
      one_bit_combine_words(incoming, t + 1, own.subspan(rs.begin, rs.count),
                            1, rng);
    }
    partial = std::move(incoming);
    incoming = {};
  }
  const std::size_t fin = (r + 1) % m;
  const WordSegment fs = word_segment(num_words, m, fin);
  std::copy(partial.begin(), partial.end(),
            result.begin() + static_cast<std::ptrdiff_t>(fs.begin));
  const std::uint32_t ag_tag = tag + 1u;
  for (std::size_t t = 0; t + 1 < m; ++t) {
    const std::size_t send_seg = (r + 1 + 2 * m - t) % m;
    const WordSegment ss = word_segment(num_words, m, send_seg);
    if (ss.count > 0) {
      send_words(transport, right, ag_tag, result.subspan(ss.begin, ss.count),
                 sent_bytes);
    }
    const std::size_t recv_seg = (r + 2 * m - t) % m;
    const WordSegment rs = word_segment(num_words, m, recv_seg);
    if (rs.count > 0) {
      recv_words(transport, left, ag_tag, result.subspan(rs.begin, rs.count));
    }
  }
}

/// Torus: the ring's two phases per dimension.  Phase A row-reduce-scatters
/// the word_segment(W, cols, ·) partition (segment seed id row·cols + j);
/// phase B column-reduce-scatters the owned segment's word_segment(·, rows,
/// ·) sub-partition with whole-row weights (seed id M + col·rows + i);
/// phases C/D all-gather back up, column then row.  Tags tag..tag+3 keep
/// the four phases on independent FIFO streams.
void torus_rs_ag(Transport& transport, const WorkerConfig& config,
                 std::uint32_t tag, std::span<const std::uint64_t> own,
                 std::span<std::uint64_t> result, std::uint64_t round_seed,
                 double& sent_bytes) {
  const std::size_t m = transport.world_size();
  const std::size_t rows = config.torus_rows;
  const std::size_t cols = config.torus_cols;
  const std::size_t rank = transport.rank();
  const std::size_t row = rank / cols;
  const std::size_t col = rank % cols;
  const std::size_t num_words = own.size();
  const std::size_t row_right = row * cols + (col + 1) % cols;
  const std::size_t row_left = row * cols + (col + cols - 1) % cols;
  const std::size_t col_down = ((row + 1) % rows) * cols + col;
  const std::size_t col_up = ((row + rows - 1) % rows) * cols + col;

  // Phase A — row reduce-scatter over `cols` segments.
  std::vector<std::uint64_t> partial;
  std::vector<std::uint64_t> incoming;
  for (std::size_t t = 0; t + 1 < cols; ++t) {
    const std::size_t send_seg = (col + cols - t) % cols;
    const WordSegment ss = word_segment(num_words, cols, send_seg);
    if (t == 0) {
      partial.assign(own.begin() + static_cast<std::ptrdiff_t>(ss.begin),
                     own.begin() +
                         static_cast<std::ptrdiff_t>(ss.begin + ss.count));
    }
    if (ss.count > 0) {
      send_words(transport, row_right, tag, partial, sent_bytes);
    }
    const std::size_t recv_seg = (col + 2 * cols - t - 1) % cols;
    const WordSegment rs = word_segment(num_words, cols, recv_seg);
    incoming.resize(rs.count);
    if (rs.count > 0) {
      recv_words(transport, row_left, tag, incoming);
      Rng rng = segment_op_rng(
          segment_fold_seed(round_seed, row * cols + recv_seg), t);
      one_bit_combine_words(incoming, t + 1, own.subspan(rs.begin, rs.count),
                            1, rng);
    }
    partial = std::move(incoming);
    incoming = {};
  }
  // This rank now owns the whole-row aggregate (weight cols) of segment
  // (col+1) mod cols.
  const std::size_t seg_row = (col + 1) % cols;
  const WordSegment seg_j = word_segment(num_words, cols, seg_row);
  std::vector<std::uint64_t> row_agg = std::move(partial);
  const std::span<const std::uint64_t> row_agg_span(row_agg);
  partial = {};

  // Phase B — column reduce-scatter of the row aggregate over `rows`
  // sub-segments; every contribution stands for a whole row, so weights are
  // multiples of cols.
  for (std::size_t t = 0; t + 1 < rows; ++t) {
    const std::size_t send_sub = (row + rows - t) % rows;
    const WordSegment ss = word_segment(seg_j.count, rows, send_sub);
    if (t == 0) {
      partial.assign(
          row_agg.begin() + static_cast<std::ptrdiff_t>(ss.begin),
          row_agg.begin() + static_cast<std::ptrdiff_t>(ss.begin + ss.count));
    }
    if (ss.count > 0) {
      send_words(transport, col_down, tag + 1u, partial, sent_bytes);
    }
    const std::size_t recv_sub = (row + 2 * rows - t - 1) % rows;
    const WordSegment rs = word_segment(seg_j.count, rows, recv_sub);
    incoming.resize(rs.count);
    if (rs.count > 0) {
      recv_words(transport, col_up, tag + 1u, incoming);
      Rng rng = segment_op_rng(
          segment_fold_seed(round_seed, m + col * rows + recv_sub), t);
      one_bit_combine_words(incoming, (t + 1) * cols,
                            row_agg_span.subspan(rs.begin, rs.count), cols,
                            rng);
    }
    partial = std::move(incoming);
    incoming = {};
  }

  // Phase C — column all-gather of finalized sub-segments: this rank owns
  // sub-segment (row+1) mod rows of its segment at weight M.
  std::vector<std::uint64_t> seg_buf(seg_j.count);
  const std::size_t fin_sub = (row + 1) % rows;
  const WordSegment fsub = word_segment(seg_j.count, rows, fin_sub);
  std::copy(partial.begin(), partial.end(),
            seg_buf.begin() + static_cast<std::ptrdiff_t>(fsub.begin));
  const std::span<std::uint64_t> seg_span(seg_buf);
  for (std::size_t t = 0; t + 1 < rows; ++t) {
    const std::size_t send_sub = (row + 1 + 2 * rows - t) % rows;
    const WordSegment ss = word_segment(seg_j.count, rows, send_sub);
    if (ss.count > 0) {
      send_words(transport, col_down, tag + 2u,
                 seg_span.subspan(ss.begin, ss.count), sent_bytes);
    }
    const std::size_t recv_sub = (row + 2 * rows - t) % rows;
    const WordSegment rs = word_segment(seg_j.count, rows, recv_sub);
    if (rs.count > 0) {
      recv_words(transport, col_up, tag + 2u,
                 seg_span.subspan(rs.begin, rs.count));
    }
  }

  // Phase D — row all-gather of finalized segments.
  std::copy(seg_buf.begin(), seg_buf.end(),
            result.begin() + static_cast<std::ptrdiff_t>(seg_j.begin));
  for (std::size_t t = 0; t + 1 < cols; ++t) {
    const std::size_t send_seg = (col + 1 + 2 * cols - t) % cols;
    const WordSegment ss = word_segment(num_words, cols, send_seg);
    if (ss.count > 0) {
      send_words(transport, row_right, tag + 3u,
                 result.subspan(ss.begin, ss.count), sent_bytes);
    }
    const std::size_t recv_seg = (col + 2 * cols - t) % cols;
    const WordSegment rs = word_segment(num_words, cols, recv_seg);
    if (rs.count > 0) {
      recv_words(transport, row_left, tag + 3u,
                 result.subspan(rs.begin, rs.count));
    }
  }
}

/// Parameter server, colocated at rank 0: workers push their sign words up,
/// the server chain-folds in rank order (segmented_chain_fold's discipline:
/// one whole-payload segment, one derived generator per hop) and broadcasts
/// the aggregate — (M−1)·W words up + (M−1)·W down.
void ps_rs_ag(Transport& transport, std::uint32_t tag,
              std::span<const std::uint64_t> own,
              std::span<std::uint64_t> result, std::uint64_t round_seed,
              double& sent_bytes) {
  const std::size_t m = transport.world_size();
  const std::size_t rank = transport.rank();
  const std::uint32_t down_tag = tag + 1u;
  if (rank == 0) {
    std::copy(own.begin(), own.end(), result.begin());
    const std::uint64_t seg_seed = segment_fold_seed(round_seed, 0);
    std::vector<std::uint64_t> incoming(own.size());
    for (std::size_t k = 0; k + 1 < m; ++k) {
      recv_words(transport, k + 1, tag, incoming);
      Rng rng = segment_op_rng(seg_seed, k);
      one_bit_combine_words(result, k + 1, incoming, 1, rng);
    }
    for (std::size_t g = 1; g < m; ++g) {
      send_words(transport, g, down_tag, result, sent_bytes);
    }
  } else {
    send_words(transport, 0, tag, own, sent_bytes);
    recv_words(transport, 0, down_tag, result);
  }
}

/// Binomial tree: reduce up along tree_merge_schedule (every rank replays
/// the same enumeration, so src/dst agree on each merge's op ordinal), then
/// broadcast rank 0's aggregate down the mirrored tree — (M−1)·W words each
/// way.
void tree_rs_ag(Transport& transport, std::uint32_t tag,
                std::span<const std::uint64_t> own,
                std::span<std::uint64_t> result, std::uint64_t round_seed,
                double& sent_bytes) {
  const std::size_t m = transport.world_size();
  const std::size_t rank = transport.rank();
  std::copy(own.begin(), own.end(), result.begin());
  const std::uint64_t seg_seed = segment_fold_seed(round_seed, 0);
  std::vector<std::uint64_t> incoming(own.size());
  for (const TreeMerge& merge : tree_merge_schedule(m)) {
    if (merge.src == rank) {
      send_words(transport, merge.dst, tag, result, sent_bytes);
    } else if (merge.dst == rank) {
      recv_words(transport, merge.src, tag, incoming);
      Rng rng = segment_op_rng(seg_seed, merge.op);
      one_bit_combine_words(result, merge.dst_weight, incoming,
                            merge.src_weight, rng);
    }
  }
  const std::uint32_t down_tag = tag + 1u;
  for (std::size_t stride = std::bit_floor(m - 1); stride >= 1;
       stride >>= 1) {
    if (rank % (2 * stride) == 0 && rank + stride < m) {
      send_words(transport, rank + stride, down_tag, result, sent_bytes);
    } else if (rank % (2 * stride) == stride) {
      recv_words(transport, rank - stride, down_tag, result);
    }
  }
}

// --- α–β prediction ---------------------------------------------------------
//
// Each predictor replays the exact hop schedule its data plane runs on a
// fresh NetworkSim: predicted seconds = the latest rank-ready time, and
// net.total_bytes() is by construction the sum of every rank's measured
// payload bytes — RoundReport::total_wire_bits comes from here.

struct RoundPrediction {
  double seconds = 0.0;
  double total_bits = 0.0;
};

/// Replays one ring all-gather's hop schedule on `net` (per-rank readiness
/// in `ready`, indexed by global rank).
void predict_ring(NetworkSim& net, const std::vector<std::size_t>& members,
                  double bytes, std::vector<double>& ready) {
  const std::size_t L = members.size();
  std::vector<double> done(L, 0.0);
  for (std::size_t s = 0; s + 1 < L; ++s) {
    for (std::size_t i = 0; i < L; ++i) {
      done[i] = net.transfer(members[i], members[(i + 1) % L], bytes,
                             ready[members[i]]);
    }
    for (std::size_t i = 0; i < L; ++i) {
      // A member starts its next hop once its own send retired and the
      // incoming blob (from its left neighbour) has landed.
      ready[members[i]] = std::max(done[i], done[(i + L - 1) % L]);
    }
  }
}

/// Replays one segmented ring pass over `members`: at step t, position i
/// sends the segment indexed (i + offset − t) mod L, whose byte size
/// `seg_bytes` reports.  offset 0 is a reduce-scatter pass (sends start at
/// the own segment), offset 1 an all-gather pass (sends start at the
/// finalized segment) — exactly the schedules the data planes above run.
template <typename SegBytes>
void predict_ring_pass(NetworkSim& net,
                       const std::vector<std::size_t>& members,
                       std::size_t offset, SegBytes seg_bytes,
                       std::vector<double>& ready) {
  const std::size_t L = members.size();
  std::vector<double> done(L, 0.0);
  for (std::size_t t = 0; t + 1 < L; ++t) {
    for (std::size_t i = 0; i < L; ++i) {
      const double bytes = seg_bytes((i + offset + 2 * L - t) % L);
      done[i] = bytes == 0.0
                    ? ready[members[i]]
                    : net.transfer(members[i], members[(i + 1) % L], bytes,
                                   ready[members[i]]);
    }
    for (std::size_t i = 0; i < L; ++i) {
      ready[members[i]] = std::max(done[i], done[(i + L - 1) % L]);
    }
  }
}

RoundPrediction predict_round(const WorkerConfig& config, std::size_t m,
                              std::size_t d, std::size_t num_words,
                              bool full_precision) {
  NetworkSim net(m, config.cost_model);
  std::vector<double> ready(m, 0.0);
  const bool all_gather_plane =
      full_precision || config.sync_mode == SyncMode::kLegacyAllGather;
  const double word_bytes =
      static_cast<double>(num_words * sizeof(std::uint64_t));
  if (all_gather_plane) {
    const double blob = full_precision
                            ? static_cast<double>(d * sizeof(float))
                            : word_bytes;
    if (config.paradigm == MarParadigm::kTorus2d) {
      const std::size_t rows = config.torus_rows;
      const std::size_t cols = config.torus_cols;
      for (std::size_t r = 0; r < rows; ++r) {
        predict_ring(net, row_members(r, cols), blob, ready);
      }
      for (std::size_t c = 0; c < cols; ++c) {
        predict_ring(net, col_members(c, rows, cols),
                     blob * static_cast<double>(cols), ready);
      }
    } else {
      predict_ring(net, ring_members(m), blob, ready);
    }
  } else if (config.paradigm == MarParadigm::kParameterServer) {
    double server_ready = 0.0;
    for (std::size_t g = 1; g < m; ++g) {
      server_ready =
          std::max(server_ready, net.transfer(g, 0, word_bytes, 0.0, true));
    }
    ready[0] = server_ready;
    for (std::size_t g = 1; g < m; ++g) {
      ready[g] = net.transfer(0, g, word_bytes, server_ready, true);
    }
  } else if (config.paradigm == MarParadigm::kTree) {
    for (const TreeMerge& merge : tree_merge_schedule(m)) {
      const double arrive =
          net.transfer(merge.src, merge.dst, word_bytes, ready[merge.src]);
      ready[merge.dst] = std::max(ready[merge.dst], arrive);
    }
    for (std::size_t stride = std::bit_floor(m - 1); stride >= 1;
         stride >>= 1) {
      for (std::size_t r = 0; r + stride < m; r += 2 * stride) {
        ready[r + stride] =
            net.transfer(r, r + stride, word_bytes, ready[r]);
      }
    }
  } else if (config.paradigm == MarParadigm::kTorus2d) {
    const std::size_t rows = config.torus_rows;
    const std::size_t cols = config.torus_cols;
    const auto seg_of = [&](std::size_t j) {
      return static_cast<double>(word_segment(num_words, cols, j).count *
                                 sizeof(std::uint64_t));
    };
    for (std::size_t r = 0; r < rows; ++r) {
      predict_ring_pass(net, row_members(r, cols), 0, seg_of, ready);
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const WordSegment seg_j =
          word_segment(num_words, cols, (c + 1) % cols);
      const auto sub_of = [&](std::size_t i) {
        return static_cast<double>(word_segment(seg_j.count, rows, i).count *
                                   sizeof(std::uint64_t));
      };
      predict_ring_pass(net, col_members(c, rows, cols), 0, sub_of, ready);
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const WordSegment seg_j =
          word_segment(num_words, cols, (c + 1) % cols);
      const auto sub_of = [&](std::size_t i) {
        return static_cast<double>(word_segment(seg_j.count, rows, i).count *
                                   sizeof(std::uint64_t));
      };
      predict_ring_pass(net, col_members(c, rows, cols), 1, sub_of, ready);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      predict_ring_pass(net, row_members(r, cols), 1, seg_of, ready);
    }
  } else {
    const auto seg_of = [&](std::size_t s) {
      return static_cast<double>(word_segment(num_words, m, s).count *
                                 sizeof(std::uint64_t));
    };
    predict_ring_pass(net, ring_members(m), 0, seg_of, ready);
    predict_ring_pass(net, ring_members(m), 1, seg_of, ready);
  }
  RoundPrediction prediction;
  prediction.seconds = *std::max_element(ready.begin(), ready.end());
  prediction.total_bits = net.total_bytes() * 8.0;
  return prediction;
}

}  // namespace

WorkerResult run_marsit_worker(Transport& transport, const Dataset& dataset,
                               const std::function<Sequential()>& model_factory,
                               const WorkerConfig& config) {
  const std::size_t m = transport.world_size();
  const std::size_t rank = transport.rank();
  MARSIT_CHECK(m >= 2) << "distributed run needs at least 2 workers";
  if (config.paradigm == MarParadigm::kTorus2d) {
    MARSIT_CHECK(config.torus_rows >= 2 && config.torus_cols >= 2 &&
                 config.torus_rows * config.torus_cols == m)
        << "torus " << config.torus_rows << "x" << config.torus_cols
        << " does not tile " << m << " workers";
  }
  MARSIT_CHECK(model_factory != nullptr) << "null model factory";

  // Exactly the simulator's streams: same sampler seed salt, same model
  // init salt, so rank r's gradients equal simulated worker r's.
  const ShardedSampler sampler(
      dataset, m, config.batch_size_per_worker, kTrainSampleRange,
      kTestSampleRange, derive_seed(config.trainer_seed, kSamplerSeedSalt));
  Sequential model = model_factory();
  Rng init_rng(derive_seed(config.trainer_seed, kModelInitSeedSalt));
  model.init(init_rng);
  const std::size_t d = model.param_count();
  MARSIT_CHECK(d > 0) << "model has no parameters";
  MARSIT_CHECK(model.in_size() == dataset.sample_size() &&
               model.out_size() == dataset.num_classes())
      << "model shape does not match the dataset";

  auto optimizer = make_optimizer(config.optimizer);
  Tensor grad(d);
  Tensor update(d);
  Tensor adjusted(d);
  Tensor compensation(d);
  Tensor global(d);
  Tensor dlogits;
  Batch batch;
  const std::size_t num_words = kernels::words_for(d);
  const std::size_t k = config.options.full_precision_period;

  WorkerResult result;
  result.rounds.reserve(config.rounds);
  for (std::size_t t = 0; t < config.rounds; ++t) {
    // --- local step (DistributedTrainer::worker_round, local_steps == 1) --
    sampler.worker_batch(rank, t, batch);
    model.zero_grads();
    const auto logits = model.forward(batch.inputs.span(), batch.size());
    if (dlogits.size() != logits.size()) {
      dlogits = Tensor(logits.size());
    }
    softmax_cross_entropy(logits, {batch.labels.data(), batch.labels.size()},
                          dataset.num_classes(), dlogits.span());
    model.backward(dlogits.span(), batch.size());
    model.copy_grads_into(grad.span());
    if (config.clip_grad_norm > 0.0f) {
      const float norm = l2_norm(grad.span());
      if (norm > config.clip_grad_norm) {
        scale(grad.span(), config.clip_grad_norm / norm);
      }
    }
    optimizer->transform(grad.span(), update.span());
    scale(update.span(), config.eta_l);

    // --- synchronize (MarsitSync::do_synchronize, full membership) --------
    const bool full_precision = k > 0 && t % k == 0;
    RoundReport report;
    report.round = t;
    report.full_precision = full_precision;
    // Four tag streams per round: the reduce-scatter planes use +0..+3
    // (ring RS/AG, the torus' four phases, PS/tree up/down); the legacy
    // all-gather plane uses +0 and +1 (torus row/column rings).
    const std::uint32_t tag = static_cast<std::uint32_t>(t << 2);
    double sent_bytes = 0.0;
    const WallClock::time_point comm_start = WallClock::now();

    add(update.span(), compensation.span(), adjusted.span());
    std::vector<std::vector<std::uint8_t>> gathered;
    if (full_precision) {
      all_gather_blobs(transport, config, tag,
                       bytes_of(adjusted.span().data(), d * sizeof(float)),
                       d * sizeof(float), gathered, sent_bytes);
      std::vector<Tensor> others(m);
      WorkerSpans spans;
      spans.reserve(m);
      for (std::size_t g = 0; g < m; ++g) {
        others[g] = Tensor(d);
        std::memcpy(others[g].span().data(), gathered[g].data(),
                    d * sizeof(float));
        spans.push_back(others[g].span());
      }
      aggregate_mean(spans, global.span());
      if (config.options.full_precision_max_norm > 0.0f) {
        const float norm = l2_norm(global.span());
        if (norm > config.options.full_precision_max_norm) {
          scale(global.span(), config.options.full_precision_max_norm / norm);
        }
      }
      compensation.zero();
    } else {
      BitVector own(d);
      kernels::pack_signs_words(adjusted.span(), own.words());
      const std::uint64_t round_seed = derive_seed(config.sync_seed, t);
      if (config.sync_mode == SyncMode::kReduceScatter) {
        BitVector folded(d);
        switch (config.paradigm) {
          case MarParadigm::kTorus2d:
            torus_rs_ag(transport, config, tag, own.words(), folded.words(),
                        round_seed, sent_bytes);
            break;
          case MarParadigm::kParameterServer:
            ps_rs_ag(transport, tag, own.words(), folded.words(), round_seed,
                     sent_bytes);
            break;
          case MarParadigm::kTree:
            tree_rs_ag(transport, tag, own.words(), folded.words(),
                       round_seed, sent_bytes);
            break;
          case MarParadigm::kRing:
          default:
            ring_rs_ag(transport, tag, own.words(), folded.words(),
                       round_seed, sent_bytes);
            break;
        }
        kernels::unpack_signs_words(folded.words(), config.options.eta_s,
                                    global.span());
      } else {
        all_gather_blobs(
            transport, config, tag,
            bytes_of(own.words().data(), num_words * sizeof(std::uint64_t)),
            num_words * sizeof(std::uint64_t), gathered, sent_bytes);
        std::vector<BitVector> signs(m, BitVector(d));
        for (std::size_t g = 0; g < m; ++g) {
          std::memcpy(signs[g].words().data(), gathered[g].data(),
                      num_words * sizeof(std::uint64_t));
        }
        const ShardPlan plan(d, config.shard_chunk_elements);
        for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
          const Shard shard = plan.chunk(c);
          Rng rng = marsit_chunk_rng(round_seed, c);
          marsit_fold_signs_words(config.paradigm, config.torus_cols, signs,
                                  m, shard.word_begin(), shard.num_words(),
                                  rng);
        }
        kernels::unpack_signs_words(signs.front().words(),
                                    config.options.eta_s, global.span());
      }
      if (config.options.use_compensation) {
        sub(adjusted.span(), global.span(), compensation.span());
      }
    }
    report.measured_comm_seconds = seconds_since(comm_start);
    report.wire_bits = sent_bytes * 8.0;
    const RoundPrediction prediction =
        predict_round(config, m, d, num_words, full_precision);
    report.predicted_comm_seconds = prediction.seconds;
    report.total_wire_bits = prediction.total_bits;

    model.apply_update(global.span());
    result.rounds.push_back(report);
  }

  Tensor params(d);
  model.copy_params_into(params.span());
  result.param_digest =
      ckpt::fnv1a(params.span().data(), d * sizeof(float));
  return result;
}

}  // namespace marsit::dist
