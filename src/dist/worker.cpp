#include "dist/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>

#include "ckpt/snapshot.hpp"
#include "compress/bit_vector.hpp"
#include "compress/kernels.hpp"
#include "net/network_sim.hpp"
#include "nn/loss.hpp"
#include "parallel/shard.hpp"
#include "sim/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit::dist {

namespace {

// marsit-lint: allow(determinism): measured wall-clock next to the α–β
// prediction is this backend's deliverable (ISSUE: real-socket timing)
using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

std::vector<std::uint8_t> bytes_of(const void* data, std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  std::memcpy(bytes.data(), data, size);
  return bytes;
}

/// Ring all-gather over `members` (global ranks in ring order): on entry
/// only blobs[my_pos] is filled; on exit every position holds that member's
/// payload.  L−1 steps, each rotating the newest blob one hop rightward.
void ring_all_gather(Transport& transport,
                     const std::vector<std::size_t>& members,
                     std::uint32_t tag,
                     std::vector<std::vector<std::uint8_t>>& blobs,
                     double& sent_bytes) {
  const std::size_t L = members.size();
  const auto self = std::find(members.begin(), members.end(),
                              transport.rank());
  MARSIT_CHECK(self != members.end())
      << "rank " << transport.rank() << " is not a member of this ring";
  const std::size_t my_pos =
      static_cast<std::size_t>(self - members.begin());
  const std::size_t right = members[(my_pos + 1) % L];
  const std::size_t left = members[(my_pos + L - 1) % L];
  for (std::size_t s = 0; s + 1 < L; ++s) {
    const std::size_t send_pos = (my_pos + L - s) % L;
    const std::size_t recv_pos = (my_pos + L - 1 - s) % L;
    const std::vector<std::uint8_t>& outgoing = blobs[send_pos];
    sent_bytes += static_cast<double>(outgoing.size());
    transport.send(right, tag, {outgoing.data(), outgoing.size()});
    blobs[recv_pos] = transport.recv(left, tag);
  }
}

std::vector<std::size_t> ring_members(std::size_t m) {
  std::vector<std::size_t> members(m);
  std::iota(members.begin(), members.end(), std::size_t{0});
  return members;
}

std::vector<std::size_t> row_members(std::size_t row, std::size_t cols) {
  std::vector<std::size_t> members(cols);
  std::iota(members.begin(), members.end(), row * cols);
  return members;
}

std::vector<std::size_t> col_members(std::size_t col, std::size_t rows,
                                     std::size_t cols) {
  std::vector<std::size_t> members(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    members[r] = r * cols + col;
  }
  return members;
}

/// All-gathers this rank's `own` blob so `out[g]` holds rank g's blob for
/// every g, along the configured paradigm's topology.  All blobs must be
/// `blob_bytes` long (sign words and flush floats both are).
void all_gather_blobs(Transport& transport, const WorkerConfig& config,
                      std::uint32_t tag, std::vector<std::uint8_t> own,
                      std::size_t blob_bytes,
                      std::vector<std::vector<std::uint8_t>>& out,
                      double& sent_bytes) {
  const std::size_t m = transport.world_size();
  const std::size_t rank = transport.rank();
  MARSIT_CHECK(own.size() == blob_bytes) << "blob extent mismatch";
  if (config.paradigm == MarParadigm::kRing) {
    out.assign(m, {});
    out[rank] = std::move(own);
    ring_all_gather(transport, ring_members(m), tag, out, sent_bytes);
    return;
  }
  // Torus: all-gather within the row, then all-gather the whole-row
  // bundles along the column — the rows-then-columns structure of the
  // torus collective, with phase B moving cols-times larger payloads.
  const std::size_t rows = config.torus_rows;
  const std::size_t cols = config.torus_cols;
  const std::size_t row = rank / cols;
  const std::size_t col = rank % cols;
  std::vector<std::vector<std::uint8_t>> row_blobs(cols);
  row_blobs[col] = std::move(own);
  ring_all_gather(transport, row_members(row, cols), tag, row_blobs,
                  sent_bytes);
  std::vector<std::uint8_t> bundle;
  bundle.reserve(cols * blob_bytes);
  for (const auto& blob : row_blobs) {
    bundle.insert(bundle.end(), blob.begin(), blob.end());
  }
  std::vector<std::vector<std::uint8_t>> bundles(rows);
  bundles[row] = std::move(bundle);
  ring_all_gather(transport, col_members(col, rows, cols), tag | 1u, bundles,
                  sent_bytes);
  out.assign(m, {});
  for (std::size_t g = 0; g < m; ++g) {
    const std::size_t src_row = g / cols;
    const std::size_t src_col = g % cols;
    const auto begin =
        bundles[src_row].begin() +
        static_cast<std::ptrdiff_t>(src_col * blob_bytes);
    out[g].assign(begin, begin + static_cast<std::ptrdiff_t>(blob_bytes));
  }
}

/// Replays one ring all-gather's hop schedule on `net` (per-rank readiness
/// in `ready`, indexed by global rank).
void predict_ring(NetworkSim& net, const std::vector<std::size_t>& members,
                  double bytes, std::vector<double>& ready) {
  const std::size_t L = members.size();
  std::vector<double> done(L, 0.0);
  for (std::size_t s = 0; s + 1 < L; ++s) {
    for (std::size_t i = 0; i < L; ++i) {
      done[i] = net.transfer(members[i], members[(i + 1) % L], bytes,
                             ready[members[i]]);
    }
    for (std::size_t i = 0; i < L; ++i) {
      // A member starts its next hop once its own send retired and the
      // incoming blob (from its left neighbour) has landed.
      ready[members[i]] = std::max(done[i], done[(i + L - 1) % L]);
    }
  }
}

/// α–β prediction for one round's collective: the same hop schedule
/// all_gather_blobs runs, priced on a fresh NetworkSim.  Pure in config, so
/// every rank computes the identical figure.
double predict_round_seconds(const WorkerConfig& config, std::size_t m,
                             double blob_bytes) {
  NetworkSim net(m, config.cost_model);
  std::vector<double> ready(m, 0.0);
  if (config.paradigm == MarParadigm::kRing) {
    predict_ring(net, ring_members(m), blob_bytes, ready);
  } else {
    const std::size_t rows = config.torus_rows;
    const std::size_t cols = config.torus_cols;
    for (std::size_t r = 0; r < rows; ++r) {
      predict_ring(net, row_members(r, cols), blob_bytes, ready);
    }
    for (std::size_t c = 0; c < cols; ++c) {
      predict_ring(net, col_members(c, rows, cols),
                   blob_bytes * static_cast<double>(cols), ready);
    }
  }
  return *std::max_element(ready.begin(), ready.end());
}

}  // namespace

WorkerResult run_marsit_worker(Transport& transport, const Dataset& dataset,
                               const std::function<Sequential()>& model_factory,
                               const WorkerConfig& config) {
  const std::size_t m = transport.world_size();
  const std::size_t rank = transport.rank();
  MARSIT_CHECK(m >= 2) << "distributed run needs at least 2 workers";
  MARSIT_CHECK(config.paradigm == MarParadigm::kRing ||
               config.paradigm == MarParadigm::kTorus2d)
      << "the transport data plane implements ring and torus only";
  if (config.paradigm == MarParadigm::kTorus2d) {
    MARSIT_CHECK(config.torus_rows >= 2 && config.torus_cols >= 2 &&
                 config.torus_rows * config.torus_cols == m)
        << "torus " << config.torus_rows << "x" << config.torus_cols
        << " does not tile " << m << " workers";
  }
  MARSIT_CHECK(model_factory != nullptr) << "null model factory";

  // Exactly the simulator's streams: same sampler seed salt, same model
  // init salt, so rank r's gradients equal simulated worker r's.
  const ShardedSampler sampler(
      dataset, m, config.batch_size_per_worker, kTrainSampleRange,
      kTestSampleRange, derive_seed(config.trainer_seed, kSamplerSeedSalt));
  Sequential model = model_factory();
  Rng init_rng(derive_seed(config.trainer_seed, kModelInitSeedSalt));
  model.init(init_rng);
  const std::size_t d = model.param_count();
  MARSIT_CHECK(d > 0) << "model has no parameters";
  MARSIT_CHECK(model.in_size() == dataset.sample_size() &&
               model.out_size() == dataset.num_classes())
      << "model shape does not match the dataset";

  auto optimizer = make_optimizer(config.optimizer);
  Tensor grad(d);
  Tensor update(d);
  Tensor adjusted(d);
  Tensor compensation(d);
  Tensor global(d);
  Tensor dlogits;
  Batch batch;
  const std::size_t num_words = kernels::words_for(d);
  const std::size_t k = config.options.full_precision_period;

  WorkerResult result;
  result.rounds.reserve(config.rounds);
  for (std::size_t t = 0; t < config.rounds; ++t) {
    // --- local step (DistributedTrainer::worker_round, local_steps == 1) --
    sampler.worker_batch(rank, t, batch);
    model.zero_grads();
    const auto logits = model.forward(batch.inputs.span(), batch.size());
    if (dlogits.size() != logits.size()) {
      dlogits = Tensor(logits.size());
    }
    softmax_cross_entropy(logits, {batch.labels.data(), batch.labels.size()},
                          dataset.num_classes(), dlogits.span());
    model.backward(dlogits.span(), batch.size());
    model.copy_grads_into(grad.span());
    if (config.clip_grad_norm > 0.0f) {
      const float norm = l2_norm(grad.span());
      if (norm > config.clip_grad_norm) {
        scale(grad.span(), config.clip_grad_norm / norm);
      }
    }
    optimizer->transform(grad.span(), update.span());
    scale(update.span(), config.eta_l);

    // --- synchronize (MarsitSync::do_synchronize, full membership) --------
    const bool full_precision = k > 0 && t % k == 0;
    RoundReport report;
    report.round = t;
    report.full_precision = full_precision;
    const std::uint32_t tag = static_cast<std::uint32_t>(t << 1);
    double sent_bytes = 0.0;
    const WallClock::time_point comm_start = WallClock::now();

    add(update.span(), compensation.span(), adjusted.span());
    std::vector<std::vector<std::uint8_t>> gathered;
    if (full_precision) {
      all_gather_blobs(transport, config, tag,
                       bytes_of(adjusted.span().data(), d * sizeof(float)),
                       d * sizeof(float), gathered, sent_bytes);
      std::vector<Tensor> others(m);
      WorkerSpans spans;
      spans.reserve(m);
      for (std::size_t g = 0; g < m; ++g) {
        others[g] = Tensor(d);
        std::memcpy(others[g].span().data(), gathered[g].data(),
                    d * sizeof(float));
        spans.push_back(others[g].span());
      }
      aggregate_mean(spans, global.span());
      if (config.options.full_precision_max_norm > 0.0f) {
        const float norm = l2_norm(global.span());
        if (norm > config.options.full_precision_max_norm) {
          scale(global.span(), config.options.full_precision_max_norm / norm);
        }
      }
      compensation.zero();
    } else {
      BitVector own(d);
      kernels::pack_signs_words(adjusted.span(), own.words());
      all_gather_blobs(
          transport, config, tag,
          bytes_of(own.words().data(), num_words * sizeof(std::uint64_t)),
          num_words * sizeof(std::uint64_t), gathered, sent_bytes);
      std::vector<BitVector> signs(m, BitVector(d));
      for (std::size_t g = 0; g < m; ++g) {
        std::memcpy(signs[g].words().data(), gathered[g].data(),
                    num_words * sizeof(std::uint64_t));
      }
      const std::uint64_t round_seed = derive_seed(config.sync_seed, t);
      const ShardPlan plan(d, config.shard_chunk_elements);
      for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
        const Shard shard = plan.chunk(c);
        Rng rng = marsit_chunk_rng(round_seed, c);
        marsit_fold_signs_words(config.paradigm, config.torus_cols, signs, m,
                                shard.word_begin(), shard.num_words(), rng);
      }
      kernels::unpack_signs_words(signs.front().words(),
                                  config.options.eta_s, global.span());
      if (config.options.use_compensation) {
        sub(adjusted.span(), global.span(), compensation.span());
      }
    }
    report.measured_comm_seconds = seconds_since(comm_start);
    report.wire_bits = sent_bytes * 8.0;
    report.predicted_comm_seconds = predict_round_seconds(
        config, m,
        full_precision ? static_cast<double>(d * sizeof(float))
                       : static_cast<double>(num_words * sizeof(std::uint64_t)));

    model.apply_update(global.span());
    result.rounds.push_back(report);
  }

  Tensor params(d);
  model.copy_params_into(params.span());
  result.param_digest =
      ckpt::fnv1a(params.span().data(), d * sizeof(float));
  return result;
}

}  // namespace marsit::dist
