// Numeric kernels over flat float spans: BLAS-1 style vector ops plus a
// blocked GEMM.  These are the only places in the project that touch raw
// float loops; everything above (optimizers, compressors, layers) composes
// them.
//
// All binary ops require equal extents (checked); outputs may alias inputs
// where noted.
#pragma once

#include <cstddef>
#include <span>

#include "util/rng.hpp"

namespace marsit {

// ---- fills / copies -------------------------------------------------------

void copy_into(std::span<const float> src, std::span<float> dst);
void fill(std::span<float> x, float value);
inline void zero(std::span<float> x) { fill(x, 0.0f); }

/// Fills x with i.i.d. N(mean, stddev) draws from rng.
void fill_normal(std::span<float> x, Rng& rng, float mean, float stddev);

/// Fills x with i.i.d. U[lo, hi) draws from rng.
void fill_uniform(std::span<float> x, Rng& rng, float lo, float hi);

// ---- elementwise ----------------------------------------------------------

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

/// out = a + b  (out may alias a or b)
void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/// out = a - b  (out may alias a or b)
void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/// out = a * b elementwise  (out may alias a or b)
void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

// ---- reductions -----------------------------------------------------------

float dot(std::span<const float> a, std::span<const float> b);
float l1_norm(std::span<const float> x);
float l2_norm(std::span<const float> x);
float squared_l2_norm(std::span<const float> x);
float sum(std::span<const float> x);
float mean(std::span<const float> x);
float max_abs(std::span<const float> x);

/// Index of the maximum element (first on ties).  x must be non-empty.
std::size_t argmax(std::span<const float> x);

/// true iff every element is finite (no NaN/Inf) — the trainer's divergence
/// detector.
bool all_finite(std::span<const float> x);

// ---- GEMM -----------------------------------------------------------------

/// c = a(m×k) · b(k×n) + beta·c, all row-major.  Blocked i-k-j loop order so
/// the inner loop is a contiguous axpy; good enough to train the mini models
/// at interactive speed without an external BLAS.
void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
            float beta = 0.0f);

/// c = aᵀ(m×k, stored k×m) · b(k×n) + beta·c — the backward-weights product.
void matmul_at_b(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t m, std::size_t k,
                 std::size_t n, float beta = 0.0f);

/// c = a(m×k) · bᵀ(k×n, stored n×k) + beta·c — the backward-inputs product.
void matmul_a_bt(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t m, std::size_t k,
                 std::size_t n, float beta = 0.0f);

}  // namespace marsit
