#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace marsit {

namespace {

void check_same_size(std::span<const float> a, std::span<const float> b,
                     const char* what) {
  MARSIT_CHECK(a.size() == b.size())
      << what << ": extents " << a.size() << " vs " << b.size();
}

}  // namespace

void copy_into(std::span<const float> src, std::span<float> dst) {
  check_same_size(src, dst, "copy_into");
  std::copy(src.begin(), src.end(), dst.begin());
}

void fill(std::span<float> x, float value) {
  std::fill(x.begin(), x.end(), value);
}

void fill_normal(std::span<float> x, Rng& rng, float mean, float stddev) {
  for (float& v : x) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
}

void fill_uniform(std::span<float> x, Rng& rng, float lo, float hi) {
  for (float& v : x) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check_same_size(x, y, "axpy");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) {
    v *= alpha;
  }
}

void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  check_same_size(a, b, "add");
  check_same_size(a, out, "add");
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] + b[i];
  }
}

void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  check_same_size(a, b, "sub");
  check_same_size(a, out, "sub");
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] - b[i];
  }
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  check_same_size(a, b, "hadamard");
  check_same_size(a, out, "hadamard");
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  check_same_size(a, b, "dot");
  // Accumulate in double: gradient vectors reach 10^6 elements and float
  // accumulation would lose the small tail contributions the compressors
  // depend on.
  double acc = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(acc);
}

float l1_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) {
    acc += std::fabs(static_cast<double>(v));
  }
  return static_cast<float>(acc);
}

float squared_l2_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) {
    acc += static_cast<double>(v) * static_cast<double>(v);
  }
  return static_cast<float>(acc);
}

float l2_norm(std::span<const float> x) {
  return std::sqrt(squared_l2_norm(x));
}

float sum(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) {
    acc += static_cast<double>(v);
  }
  return static_cast<float>(acc);
}

float mean(std::span<const float> x) {
  MARSIT_CHECK(!x.empty()) << "mean of empty span";
  return sum(x) / static_cast<float>(x.size());
}

float max_abs(std::span<const float> x) {
  float best = 0.0f;
  for (float v : x) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

std::size_t argmax(std::span<const float> x) {
  MARSIT_CHECK(!x.empty()) << "argmax of empty span";
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) {
      best = i;
    }
  }
  return best;
}

bool all_finite(std::span<const float> x) {
  for (float v : x) {
    if (!std::isfinite(v)) {
      return false;
    }
  }
  return true;
}

void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
            float beta) {
  MARSIT_CHECK(a.size() == m * k) << "matmul: a extent";
  MARSIT_CHECK(b.size() == k * n) << "matmul: b extent";
  MARSIT_CHECK(c.size() == m * n) << "matmul: c extent";
  if (beta == 0.0f) {
    std::fill(c.begin(), c.end(), 0.0f);
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* c_row = c.data() + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) {
        continue;
      }
      const float* b_row = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void matmul_at_b(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t m, std::size_t k,
                 std::size_t n, float beta) {
  MARSIT_CHECK(a.size() == k * m) << "matmul_at_b: a extent";
  MARSIT_CHECK(b.size() == k * n) << "matmul_at_b: b extent";
  MARSIT_CHECK(c.size() == m * n) << "matmul_at_b: c extent";
  if (beta == 0.0f) {
    std::fill(c.begin(), c.end(), 0.0f);
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  // c(m×n) = aᵀ·b with a stored (k×m): stream over a and b rows together so
  // both reads stay contiguous.
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a.data() + p * m;
    const float* b_row = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) {
        continue;
      }
      float* c_row = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_pi * b_row[j];
      }
    }
  }
}

void matmul_a_bt(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t m, std::size_t k,
                 std::size_t n, float beta) {
  MARSIT_CHECK(a.size() == m * k) << "matmul_a_bt: a extent";
  MARSIT_CHECK(b.size() == n * k) << "matmul_a_bt: b extent";
  MARSIT_CHECK(c.size() == m * n) << "matmul_a_bt: c extent";
  if (beta == 0.0f) {
    std::fill(c.begin(), c.end(), 0.0f);
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  // c(m×n) = a·bᵀ with b stored (n×k).  Materializing bᵀ (k×n) and running
  // the axpy-form kernel beats the dot-product form ~5x: the inner loop
  // becomes a contiguous fused multiply-add stream.  The transpose is
  // O(k·n) against the O(m·k·n) product, negligible for every caller
  // (m = batch·pixels ≫ 1).
  thread_local std::vector<float> transposed;
  transposed.resize(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    const float* b_row = b.data() + j * k;
    for (std::size_t p = 0; p < k; ++p) {
      transposed[p * n + j] = b_row[p];
    }
  }
  // Inline the matmul kernel against `transposed` (beta already applied).
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* c_row = c.data() + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) {
        continue;
      }
      const float* t_row = transposed.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * t_row[j];
      }
    }
  }
}

}  // namespace marsit
