// Dense float32 tensor.
//
// Everything marsit trains or transmits is float32 (matching the paper's
// "single float precision, 32 bits" framing), stored flat and row-major.
// The shape is carried for shape-checking at layer boundaries; all numeric
// kernels operate on flat spans (tensor/ops.hpp).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace marsit {

class Tensor {
 public:
  /// Empty tensor (size 0).
  Tensor() = default;

  /// 1-D tensor of `size` zeros.
  explicit Tensor(std::size_t size) : shape_{size}, data_(size, 0.0f) {}

  /// Zero tensor with the given shape.  NOTE: a braced list of integers
  /// (`Tensor{2, 3}`) selects the initializer_list<float> *value*
  /// constructor below, not this one — pass an explicit
  /// std::vector<std::size_t> (or use zeros()) to construct by shape.
  explicit Tensor(std::vector<std::size_t> shape);

  /// Unambiguous shape-based factory.
  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }

  /// 1-D tensor from explicit values.
  Tensor(std::initializer_list<float> values);

  static Tensor from_vector(std::vector<float> values);

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked element access (API-boundary use; kernels index raw
  /// data()).
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// Reinterprets the buffer with a new shape of identical element count.
  void reshape(std::vector<std::size_t> shape);

  void fill(float value);
  void zero() { fill(0.0f); }

  /// "shape=[a,b,c] size=N" — for log and error messages.
  std::string debug_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape (empty shape -> 0 elements for a
/// default tensor, but an explicit rank-0 shape is disallowed).
std::size_t shape_size(const std::vector<std::size_t>& shape);

}  // namespace marsit
