#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace marsit {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t total = shape.empty() ? 0 : 1;
  for (std::size_t dim : shape) {
    total *= dim;
  }
  return total;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {
  MARSIT_CHECK(!shape_.empty()) << "explicit shape must have rank >= 1";
}

Tensor::Tensor(std::initializer_list<float> values)
    : shape_{values.size()}, data_(values) {}

Tensor Tensor::from_vector(std::vector<float> values) {
  Tensor t;
  t.shape_ = {values.size()};
  t.data_ = std::move(values);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  MARSIT_CHECK(axis < shape_.size())
      << "axis " << axis << " out of rank " << shape_.size();
  return shape_[axis];
}

float& Tensor::at(std::size_t i) {
  MARSIT_CHECK(i < data_.size())
      << "index " << i << " out of size " << data_.size();
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  MARSIT_CHECK(i < data_.size())
      << "index " << i << " out of size " << data_.size();
  return data_[i];
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  MARSIT_CHECK(shape_size(shape) == data_.size())
      << "reshape to incompatible element count";
  shape_ = std::move(shape);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::debug_string() const {
  std::ostringstream out;
  out << "shape=[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << shape_[i];
  }
  out << "] size=" << size();
  return out.str();
}

}  // namespace marsit
